(* Tests for Por (Definition 8) and Lifetime (Theorem 5 helpers). *)

open Helpers
module Graph = Sgraph.Graph
module Gen = Sgraph.Gen
open Temporal

(* --------------------------------------------------------------- *)
(* Por *)

let whp_target_value () =
  check_float ~eps:1e-12 "1 - 1/n" 0.9 (Por.whp_target ~n:10)

let price_value () =
  check_float ~eps:1e-12 "m r / opt" 7.5 (Por.price ~m:5 ~r:3 ~opt:2)

let success_probability_extremes () =
  let g = Gen.star 8 in
  (* r = 0: no labels at all, never reachable. *)
  check_float "r = 0 fails" 0.
    (Por.success_probability (rng ()) g ~a:8 ~r:0 ~trials:10);
  (* r = 200 on a = 8: every edge ends up with every label whp. *)
  check_float "huge r succeeds" 1.
    (Por.success_probability (rng ()) g ~a:8 ~r:200 ~trials:10)

let success_probability_monotone_coarse () =
  let g = Gen.star 16 in
  let p_at r = Por.success_probability (rng ()) g ~a:16 ~r ~trials:60 in
  let low = p_at 1 and high = p_at 32 in
  check_bool
    (Printf.sprintf "p(1)=%.2f < p(32)=%.2f" low high)
    true (low < high)

let min_r_star () =
  let g = Gen.star 16 in
  match Por.min_r (rng ()) g ~a:16 ~target:0.9 ~trials:25 with
  | None -> Alcotest.fail "min_r should exist on a star"
  | Some est ->
    check_bool "r in a plausible band" true (est.r >= 2 && est.r <= 64);
    check_bool "measured rate near target" true (est.success_rate >= 0.7);
    check_int "trials recorded" 25 est.trials;
    check_float ~eps:1e-12 "target recorded" 0.9 est.target;
    check_bool "ci brackets rate" true
      (est.ci.lo <= est.success_rate && est.success_rate <= est.ci.hi)

let min_r_monotone_in_target () =
  (* A strictly easier target can only need fewer or equal labels
     (up to Monte-Carlo noise; use the same seed stream and wide gap). *)
  let g = Gen.star 32 in
  let easy = Por.min_r (Prng.Rng.create 5) g ~a:32 ~target:0.5 ~trials:30 in
  let hard = Por.min_r (Prng.Rng.create 5) g ~a:32 ~target:0.97 ~trials:30 in
  match (easy, hard) with
  | Some e, Some h ->
    check_bool
      (Printf.sprintf "r(0.5)=%d <= r(0.97)=%d" e.r h.r)
      true (e.r <= h.r)
  | _ -> Alcotest.fail "both searches should succeed"

let min_r_cap_returns_none () =
  (* A long path with a tiny cap: unreachable target. *)
  let g = Gen.path 16 in
  check_bool "capped search fails" true
    (Por.min_r ~r_max:1 (rng ()) g ~a:16 ~target:0.99 ~trials:10 = None)

let min_r_validations () =
  let g = Gen.star 4 in
  Alcotest.check_raises "bad target"
    (Invalid_argument "Por.min_r: target must be in (0,1]") (fun () ->
      ignore (Por.min_r (rng ()) g ~a:4 ~target:1.5 ~trials:5));
  Alcotest.check_raises "bad trials"
    (Invalid_argument "Por.min_r: trials must be positive") (fun () ->
      ignore (Por.min_r (rng ()) g ~a:4 ~target:0.5 ~trials:0))

let report_consistency () =
  let g = Gen.star 16 in
  match Por.report (rng ()) ~name:"star" g ~a:16 ~target:0.9 ~trials:20 with
  | None -> Alcotest.fail "report should exist"
  | Some report ->
    check_int "n" 16 report.n;
    check_int "m" 15 report.m;
    check_int "star OPT exact" 30 report.opt_upper;
    check_int "lower bound" 15 report.opt_lower;
    check_bool "por ordering" true (report.por_lower <= report.por_upper);
    check_float ~eps:1e-9 "por lower uses opt upper"
      (Por.price ~m:15 ~r:report.estimate.r ~opt:30)
      report.por_lower;
    check_float ~eps:1e-9 "thm7 for diameter 2"
      (Stats.Bounds.thm7_labels ~diameter:2 ~n:16)
      report.thm7_bound

let report_uses_spanning_tree_bound () =
  let g = Gen.grid 3 3 in
  match Por.report (rng ()) ~name:"grid" g ~a:9 ~target:0.5 ~trials:10 with
  | None -> Alcotest.fail "grid search should succeed at target 0.5"
  | Some report -> check_int "2(n-1) for non-star" 16 report.opt_upper

(* --------------------------------------------------------------- *)
(* Lifetime *)

let prefix_graph_filters () =
  let net = fixture () in
  (* Labels' minima per edge: {0,1}:2 {1,2}:5 {1,3}:3 {0,4}:1 {3,4}:4 {2,4}:2. *)
  let at k = Graph.m (Lifetime.prefix_graph net ~k) in
  check_int "k=0" 0 (at 0);
  check_int "k=1" 1 (at 1);
  check_int "k=2" 3 (at 2);
  check_int "k=5" 6 (at 5)

let prefix_connectivity_witness () =
  let net = fixture () in
  match Lifetime.prefix_connectivity_time net with
  | None -> Alcotest.fail "fixture prefix connects"
  | Some k ->
    check_bool "connected at k" true
      (Sgraph.Components.is_connected (Lifetime.prefix_graph net ~k));
    check_bool "not connected at k-1" false
      (Sgraph.Components.is_connected (Lifetime.prefix_graph net ~k:(k - 1)))

let prefix_connectivity_none () =
  let g = Graph.create Undirected ~n:4 [ (0, 1); (2, 3) ] in
  let net = Tgraph.create g ~lifetime:3 [| Label.singleton 1; Label.singleton 2 |] in
  check_bool "disconnected underlying graph" true
    (Lifetime.prefix_connectivity_time net = None)

let prefix_probability () =
  check_float ~eps:1e-12 "k/a" 0.25
    (Lifetime.expected_prefix_edge_probability ~a:8 ~k:2);
  check_float "clamped" 1. (Lifetime.expected_prefix_edge_probability ~a:4 ~k:9)

let lifetime_bound () =
  check_float ~eps:1e-9 "(a/n) ln n" (2. *. log 16.)
    (Lifetime.lower_bound ~n:16 ~a:32)

let prefix_time_lower_bounds_diameter =
  qcase ~count:40 "prefix connectivity time <= instance diameter"
    ~print:string_of_int
    QCheck2.Gen.(int_range 1 5000)
    (fun seed ->
      let g = Gen.clique Directed 12 in
      let net = Assignment.uniform_single (Prng.Rng.create seed) g ~a:12 in
      match
        (Lifetime.prefix_connectivity_time net, Distance.instance_diameter net)
      with
      | Some k, Some td -> k <= td
      | _ -> false (* the clique always connects and always has a diameter *))

let suites =
  [
    ( "temporal.por",
      [
        case "whp target" whp_target_value;
        case "price" price_value;
        case "success probability extremes" success_probability_extremes;
        case "success probability monotone" success_probability_monotone_coarse;
        case "min_r on star" min_r_star;
        case "min_r monotone in target" min_r_monotone_in_target;
        case "min_r cap" min_r_cap_returns_none;
        case "min_r validations" min_r_validations;
        case "report consistency" report_consistency;
        case "report spanning-tree bound" report_uses_spanning_tree_bound;
      ] );
    ( "temporal.lifetime",
      [
        case "prefix graph filters" prefix_graph_filters;
        case "prefix connectivity witness" prefix_connectivity_witness;
        case "prefix connectivity none" prefix_connectivity_none;
        case "prefix probability" prefix_probability;
        case "bound value" lifetime_bound;
        prefix_time_lower_bounds_diameter;
      ] );
  ]
