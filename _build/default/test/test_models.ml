(* Tests for the alternative availability models: Windows (interval
   availability) and Evolving.Edge_markovian. *)

open Helpers
module Graph = Sgraph.Graph
module Em = Evolving.Edge_markovian
open Temporal

(* --------------------------------------------------------------- *)
(* Windows: schedules *)

let schedule_normalises () =
  let s = Windows.schedule_of_list [ (5, 7); (1, 2); (3, 4); (9, 9) ] in
  (* 1-2 and 3-4 are adjacent -> merge; 3-4 and 5-7 adjacent too. *)
  let windows = Windows.schedule_windows s in
  check_int "merged runs" 2 (List.length windows);
  check_int "duration" 8 (Windows.schedule_duration s)

let schedule_overlaps_merge () =
  let s = Windows.schedule_of_list [ (1, 5); (3, 8) ] in
  check_int "one window" 1 (List.length (Windows.schedule_windows s));
  check_int "duration" 8 (Windows.schedule_duration s)

let schedule_invalid () =
  Alcotest.check_raises "start < 1"
    (Invalid_argument "Windows: window start must be >= 1") (fun () ->
      ignore (Windows.schedule_of_list [ (0, 3) ]));
  Alcotest.check_raises "empty window"
    (Invalid_argument "Windows: empty window") (fun () ->
      ignore (Windows.schedule_of_list [ (4, 3) ]))

let schedule_first_available () =
  let s = Windows.schedule_of_list [ (2, 4); (8, 9) ] in
  check_int_option "before everything" (Some 2) (Windows.first_available_after s 0);
  check_int_option "inside a window" (Some 3) (Windows.first_available_after s 2);
  check_int_option "gap jumps" (Some 8) (Windows.first_available_after s 4);
  check_int_option "after everything" None (Windows.first_available_after s 9)

let schedule_label_roundtrip =
  qcase ~count:100 "labels -> schedule -> labels round-trips"
    ~print:(fun l -> String.concat "," (List.map string_of_int l))
    QCheck2.Gen.(list_size (int_range 0 20) (int_range 1 30))
    (fun labels ->
      let ls = Label.of_list labels in
      Label.to_list (Windows.labels_of_schedule (Windows.schedule_of_labels ls))
      = Label.to_list ls)

let schedule_first_available_matches_label =
  qcase ~count:100 "first_available_after = Label.first_after"
    ~print:(fun (l, t) ->
      Printf.sprintf "(%s after %d)"
        (String.concat "," (List.map string_of_int l))
        t)
    QCheck2.Gen.(
      pair (list_size (int_range 0 15) (int_range 1 25)) (int_range 0 26))
    (fun (labels, t) ->
      let ls = Label.of_list labels in
      Windows.first_available_after (Windows.schedule_of_labels ls) t
      = Label.first_after ls t)

(* --------------------------------------------------------------- *)
(* Windows: networks *)

let windows_net () =
  let g = Graph.create Undirected ~n:3 [ (0, 1); (1, 2) ] in
  Windows.create g ~lifetime:10
    [|
      Windows.schedule_of_list [ (1, 3) ];
      Windows.schedule_of_list [ (5, 6) ];
    |]

let windows_create_validations () =
  let g = Graph.create Undirected ~n:2 [ (0, 1) ] in
  Alcotest.check_raises "arity"
    (Invalid_argument "Windows.create: one schedule per edge required")
    (fun () -> ignore (Windows.create g ~lifetime:5 [||]));
  Alcotest.check_raises "beyond lifetime"
    (Invalid_argument "Windows.create: window beyond the lifetime") (fun () ->
      ignore
        (Windows.create g ~lifetime:5
           [| Windows.schedule_of_list [ (4, 6) ] |]))

let windows_earliest_arrival_basic () =
  let net = windows_net () in
  let arrival = Windows.earliest_arrival net 0 in
  check_int "source" 0 arrival.(0);
  check_int "neighbour at first window moment" 1 arrival.(1);
  check_int "across the gap" 5 arrival.(2)

let windows_tgraph_roundtrip () =
  let net = windows_net () in
  let back = Windows.of_tgraph (Windows.to_tgraph net) in
  check_int "same lifetime" (Windows.lifetime net) (Windows.lifetime back);
  for e = 0 to 1 do
    Alcotest.(check (list int)) "same schedule"
      (Label.to_list (Windows.labels_of_schedule (Windows.schedule net e)))
      (Label.to_list (Windows.labels_of_schedule (Windows.schedule back e)))
  done

let windows_matches_foremost =
  qcase ~count:100 "window Dijkstra = label foremost" ~print:print_params
    gen_params
    (fun params ->
      let tnet = random_tnet params in
      let wnet = Windows.of_tgraph tnet in
      let n = Tgraph.n tnet in
      let ok = ref true in
      for s = 0 to n - 1 do
        let via_windows = Windows.earliest_arrival wnet s in
        let res = Foremost.run tnet s in
        for v = 0 to n - 1 do
          let expected =
            if v = s then 0
            else
              match Foremost.distance res v with Some d -> d | None -> max_int
          in
          if via_windows.(v) <> expected then ok := false
        done
      done;
      !ok)

let windows_compression_wins () =
  (* A dense availability: windows store 1 record where labels store
     many. *)
  let dense = Windows.schedule_of_list [ (1, 1000) ] in
  check_int "one window" 1 (List.length (Windows.schedule_windows dense));
  check_int "a thousand moments" 1000 (Windows.schedule_duration dense)

(* --------------------------------------------------------------- *)
(* Edge-Markovian evolving graphs *)

let em_create_and_density () =
  let chain = Em.create (rng ()) ~n:40 ~p_up:0.3 ~p_down:0.3 in
  check_int "n" 40 (Em.n chain);
  check_int "round 0" 0 (Em.round chain);
  check_float ~eps:1e-9 "stationary" 0.5 (Em.stationary_density chain);
  let d = Em.density chain in
  check_bool "initial density near stationary" true (d > 0.35 && d < 0.65)

let em_validations () =
  Alcotest.check_raises "bad p_up"
    (Invalid_argument "Edge_markovian.create: p_up not in [0,1]") (fun () ->
      ignore (Em.create (rng ()) ~n:4 ~p_up:1.5 ~p_down:0.5));
  Alcotest.check_raises "degenerate chain"
    (Invalid_argument "Edge_markovian.create: p_up + p_down must be positive")
    (fun () -> ignore (Em.create (rng ()) ~n:4 ~p_up:0. ~p_down:0.))

let em_deterministic_extremes () =
  let full = Em.create ~initial_density:1. (rng ()) ~n:10 ~p_up:1. ~p_down:0. in
  check_float "all edges present" 1. (Em.density full);
  Em.step full;
  check_float "stay present" 1. (Em.density full);
  let empty = Em.create ~initial_density:0. (rng ()) ~n:10 ~p_up:0. ~p_down:1. in
  Em.step empty;
  check_float "stay absent" 0. (Em.density empty)

let em_step_counts () =
  let chain = Em.create (rng ()) ~n:12 ~p_up:0.4 ~p_down:0.2 in
  for _ = 1 to 5 do
    Em.step chain
  done;
  check_int "five rounds" 5 (Em.round chain)

let em_density_tracks_stationary () =
  let chain =
    Em.create ~initial_density:0. (rng ()) ~n:48 ~p_up:0.3 ~p_down:0.1
  in
  for _ = 1 to 60 do
    Em.step chain
  done;
  let d = Em.density chain in
  check_bool
    (Printf.sprintf "density %.2f near stationary 0.75" d)
    true
    (abs_float (d -. 0.75) < 0.08)

let em_snapshot_consistent () =
  let chain = Em.create (rng ()) ~n:14 ~p_up:0.5 ~p_down:0.5 in
  let g = Em.snapshot chain in
  check_int "vertices" 14 (Graph.n g);
  let mismatches = ref 0 in
  for u = 0 to 13 do
    for v = u + 1 to 13 do
      if Graph.mem_edge g u v <> Em.edge_present chain u v then incr mismatches
    done
  done;
  check_int "snapshot = state" 0 !mismatches

let em_edge_present_validations () =
  let chain = Em.create (rng ()) ~n:5 ~p_up:0.5 ~p_down:0.5 in
  Alcotest.check_raises "self loop"
    (Invalid_argument "Edge_markovian.edge_present: self-loop") (fun () ->
      ignore (Em.edge_present chain 2 2));
  Alcotest.check_raises "range"
    (Invalid_argument "Edge_markovian.edge_present: endpoint out of range")
    (fun () -> ignore (Em.edge_present chain 0 9))

let em_flood_dense () =
  let chain = Em.create (rng ()) ~n:32 ~p_up:0.5 ~p_down:0.5 in
  let result = Em.flood chain ~source:0 in
  check_bool "completed" true result.completed;
  check_int "everyone informed" 32 result.informed;
  check_bool "fast" true (result.rounds <= 10)

let em_flood_frozen_empty () =
  (* No edges ever: flooding cannot progress and must hit the cap. *)
  let chain =
    Em.create ~initial_density:0. (rng ()) ~n:8 ~p_up:0. ~p_down:1.
  in
  let result = Em.flood ~max_rounds:20 chain ~source:3 in
  check_bool "incomplete" true (not result.completed);
  check_int "only the source" 1 result.informed;
  check_int "capped" 20 result.rounds

let em_flood_single_vertex () =
  let chain = Em.create (rng ()) ~n:1 ~p_up:0.5 ~p_down:0.5 in
  let result = Em.flood chain ~source:0 in
  check_bool "trivially done" true result.completed;
  check_int "zero rounds" 0 result.rounds

(* --------------------------------------------------------------- *)
(* Online foremost *)

let online_matches_batch =
  qcase ~count:100 "online consumer = batch sweep" ~print:print_params
    gen_params
    (fun params ->
      let net = random_tnet params in
      let n = Tgraph.n net in
      let ok = ref true in
      for s = 0 to n - 1 do
        let online = Online.create ~n s in
        Tgraph.iter_time_edges net (fun ~src ~dst ~label ~edge:_ ->
            Online.observe online ~src ~dst ~label);
        let batch = Foremost.run net s in
        for v = 0 to n - 1 do
          if Online.arrival online v <> Foremost.distance batch v then
            ok := false
        done
      done;
      !ok)

let online_incremental_queries () =
  let online = Online.create ~n:3 0 in
  check_int_option "source at once" (Some 0) (Online.arrival online 0);
  check_bool "1 not yet" false (Online.informed online 1);
  Online.observe online ~src:0 ~dst:1 ~label:2;
  check_int_option "1 informed at 2" (Some 2) (Online.arrival online 1);
  check_int "now" 2 (Online.now online);
  check_int "two reached" 2 (Online.reachable_count online);
  Online.observe online ~src:1 ~dst:2 ~label:2;
  check_bool "same-label chain rejected" false (Online.informed online 2);
  Online.observe online ~src:1 ~dst:2 ~label:5;
  check_int_option "2 informed at 5" (Some 5) (Online.arrival online 2)

let online_rejects_disorder () =
  let online = Online.create ~n:2 0 in
  Online.observe online ~src:0 ~dst:1 ~label:4;
  Alcotest.check_raises "labels must be non-decreasing"
    (Invalid_argument "Online.observe: labels must arrive in non-decreasing order")
    (fun () -> Online.observe online ~src:1 ~dst:0 ~label:3)

let online_validations () =
  Alcotest.check_raises "bad source"
    (Invalid_argument "Online.create: source out of range") (fun () ->
      ignore (Online.create ~n:3 7));
  let online = Online.create ~n:2 0 in
  Alcotest.check_raises "bad endpoint"
    (Invalid_argument "Online.observe: endpoint out of range") (fun () ->
      Online.observe online ~src:0 ~dst:9 ~label:1)

(* --------------------------------------------------------------- *)
(* Mobility: waypoint + trace *)

let waypoint_basics () =
  let system = Mobility.Waypoint.create (rng ()) ~agents:10 ~size:6 in
  check_int "agents" 10 (Mobility.Waypoint.agents system);
  check_int "size" 6 (Mobility.Waypoint.size system);
  check_int "tick zero" 0 (Mobility.Waypoint.tick system);
  Array.iter
    (fun (x, y) ->
      check_bool "on the torus" true (x >= 0 && x < 6 && y >= 0 && y < 6))
    (Mobility.Waypoint.positions system);
  Mobility.Waypoint.step system;
  check_int "tick advances" 1 (Mobility.Waypoint.tick system)

let waypoint_moves_one_cell () =
  let system = Mobility.Waypoint.create (rng ()) ~agents:8 ~size:9 in
  let before = Mobility.Waypoint.positions system in
  Mobility.Waypoint.step system;
  let after = Mobility.Waypoint.positions system in
  Array.iteri
    (fun i (x1, y1) ->
      let x0, y0 = before.(i) in
      let torus_step a b = min ((a - b + 9) mod 9) ((b - a + 9) mod 9) <= 1 in
      check_bool "at most one cell per axis" true
        (torus_step x0 x1 && torus_step y0 y1))
    after

let waypoint_contacts_sorted_and_valid () =
  let system = Mobility.Waypoint.create (rng ()) ~agents:20 ~size:4 in
  let contacts = Mobility.Waypoint.run system ~ticks:30 in
  check_bool "some contacts on a tiny torus" true (contacts <> []);
  let rec check_order = function
    | (a : Mobility.Waypoint.contact) :: (b :: _ as rest) ->
      check_bool "chronological" true (a.time <= b.time);
      check_order rest
    | _ -> ()
  in
  check_order contacts;
  List.iter
    (fun { Mobility.Waypoint.a; b; time } ->
      check_bool "ordered pair" true (a < b);
      check_bool "time in range" true (time >= 1 && time <= 30))
    contacts

let waypoint_validations () =
  Alcotest.check_raises "agents"
    (Invalid_argument "Waypoint.create: need agents >= 1") (fun () ->
      ignore (Mobility.Waypoint.create (rng ()) ~agents:0 ~size:5));
  Alcotest.check_raises "size"
    (Invalid_argument "Waypoint.create: need size >= 2") (fun () ->
      ignore (Mobility.Waypoint.create (rng ()) ~agents:3 ~size:1));
  let system = Mobility.Waypoint.create (rng ()) ~agents:3 ~size:5 in
  Alcotest.check_raises "ticks" (Invalid_argument "Waypoint.run: ticks must be >= 0")
    (fun () -> ignore (Mobility.Waypoint.run system ~ticks:(-1)))

let trace_roundtrip () =
  let contacts =
    [
      { Mobility.Waypoint.a = 0; b = 1; time = 2 };
      { Mobility.Waypoint.a = 0; b = 1; time = 5 };
      { Mobility.Waypoint.a = 1; b = 2; time = 3 };
    ]
  in
  let net = Mobility.Trace.of_contacts ~n:3 ~lifetime:6 contacts in
  check_int "labels" 3 (Tgraph.label_count net);
  check_int_option "journey along the trace" (Some 3)
    (Distance.distance net 0 2);
  let s = Mobility.Trace.stats net in
  check_int "contacts" 3 s.contacts;
  check_int "edges" 2 s.edges;
  check_float ~eps:1e-9 "mean labels" 1.5 s.mean_labels_per_edge;
  check_float ~eps:1e-9 "density" (2. /. 3.) s.density

let trace_rejects_bad_contacts () =
  Alcotest.check_raises "time outside lifetime"
    (Invalid_argument "Trace.of_contacts: contact time outside the lifetime")
    (fun () ->
      ignore
        (Mobility.Trace.of_contacts ~n:3 ~lifetime:2
           [ { Mobility.Waypoint.a = 0; b = 1; time = 5 } ]))

let trace_io_roundtrip () =
  let contacts =
    [
      { Mobility.Waypoint.a = 0; b = 3; time = 1 };
      { Mobility.Waypoint.a = 0; b = 3; time = 4 };
      { Mobility.Waypoint.a = 1; b = 2; time = 4 };
    ]
  in
  (* Already in canonical (time, a, b) order, so the round-trip is the
     identity. *)
  let text = Mobility.Trace.contacts_to_string contacts in
  (match Mobility.Trace.contacts_of_string text with
  | Error e -> Alcotest.fail e
  | Ok parsed ->
    check_int "same count" 3 (List.length parsed);
    check_bool "identical after normalisation" true (parsed = contacts))

let trace_io_parses_loose_input () =
  let text = "# a trace\n\n4 2 1\n1 3 0\n" in
  match Mobility.Trace.contacts_of_string text with
  | Error e -> Alcotest.fail e
  | Ok parsed ->
    check_int "two events" 2 (List.length parsed);
    (match parsed with
    | first :: _ ->
      check_int "chronological" 1 first.time;
      check_bool "endpoints normalised" true (first.a < first.b)
    | [] -> Alcotest.fail "expected events")

let trace_io_errors () =
  let expect_error text =
    match Mobility.Trace.contacts_of_string text with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail ("should not parse: " ^ text)
  in
  expect_error "1 2\n";
  expect_error "0 1 2\n" (* time must be >= 1 *);
  expect_error "3 5 5\n" (* self-contact *);
  expect_error "x 1 2\n"

let trace_load_file () =
  let path = Filename.temp_file "trace" ".txt" in
  Out_channel.with_open_text path (fun oc ->
      output_string oc "1 0 1\n3 1 2\n");
  (match Mobility.Trace.load path with
  | Error e -> Alcotest.fail e
  | Ok net ->
    check_int "n inferred" 3 (Tgraph.n net);
    check_int "lifetime inferred" 3 (Tgraph.lifetime net);
    check_int_option "journey across" (Some 3) (Distance.distance net 0 2));
  (match Mobility.Trace.load ~n:10 ~lifetime:9 path with
  | Error e -> Alcotest.fail e
  | Ok net ->
    check_int "n overridden" 10 (Tgraph.n net);
    check_int "lifetime overridden" 9 (Tgraph.lifetime net));
  Sys.remove path;
  check_bool "missing file is an error" true
    (match Mobility.Trace.load "/nonexistent/trace.txt" with
    | Error _ -> true
    | Ok _ -> false)

let trace_of_waypoint_is_coherent () =
  let net = Mobility.Trace.of_waypoint_run (rng ()) ~agents:16 ~size:5 ~ticks:40 in
  check_int "all agents present" 16 (Tgraph.n net);
  check_int "lifetime = ticks" 40 (Tgraph.lifetime net);
  let s = Mobility.Trace.stats net in
  check_bool "some contacts happened" true (s.contacts > 0);
  check_bool "density within [0,1]" true (s.density >= 0. && s.density <= 1.)

(* --------------------------------------------------------------- *)
(* Walker *)

let walker_deterministic_track () =
  (* One forced move per step: 0-1@1, 1-2@2; the walk must ride them. *)
  let g = Graph.create Directed ~n:3 [ (0, 1); (1, 2) ] in
  let net =
    Tgraph.create g ~lifetime:3 [| Label.singleton 1; Label.singleton 2 |]
  in
  let t = Walker.walk (rng ()) net ~source:0 in
  Alcotest.(check (array int)) "positions" [| 0; 1; 2; 2 |] t.positions;
  check_int "visited all" 3 t.visited;
  check_int_option "covered at step 2" (Some 2) t.cover_time;
  check_int "two moves" 2 t.moves;
  Alcotest.(check (array int)) "first visits" [| 0; 1; 2 |] t.first_visit

let walker_stays_without_options () =
  let g = Graph.create Directed ~n:2 [ (0, 1) ] in
  let net = Tgraph.create g ~lifetime:5 [| Label.empty |] in
  let t = Walker.walk (rng ()) net ~source:0 in
  check_int "never moved" 0 t.moves;
  check_int "alone" 1 t.visited;
  check_bool "no cover" true (t.cover_time = None)

let walker_full_laziness_freezes () =
  let g = Sgraph.Gen.clique Directed 6 in
  let net = Temporal.Assignment.all_times g ~a:10 in
  let t = Walker.walk ~laziness:1. (rng ()) net ~source:2 in
  check_int "frozen" 0 t.moves;
  Array.iter (fun p -> check_int "stays home" 2 p) t.positions

let walker_moves_are_available_arcs =
  qcase ~count:60 "every move follows an arc available at that moment"
    ~print:print_params gen_params
    (fun params ->
      let net = random_tnet params in
      let source = 0 in
      let t = Walker.walk (rng ()) net ~source in
      let ok = ref true in
      Array.iteri
        (fun time position ->
          if time > 0 then begin
            let previous = t.positions.(time - 1) in
            if position <> previous then
              if not (Tgraph.can_cross_at net ~src:previous ~dst:position time)
              then ok := false
          end)
        t.positions;
      !ok)

let walker_mean_coverage_sane () =
  let g = Sgraph.Gen.clique Directed 12 in
  let net = Temporal.Assignment.all_times g ~a:100 in
  let coverage, cover_rate = Walker.mean_coverage (rng ()) net ~trials:10 in
  check_bool "high coverage with dense availability" true (coverage > 0.9);
  check_bool "rates in range" true (cover_rate >= 0. && cover_rate <= 1.)

let walker_pack_dominates_single () =
  let g = Sgraph.Gen.clique Directed 16 in
  let net = Temporal.Assignment.all_times g ~a:60 in
  let single = Walker.walk (rng ()) net ~source:0 in
  let joint, cover = Walker.pack (rng ()) net ~sources:[ 0; 5; 10; 15 ] in
  check_bool "joint coverage at least a single walk's" true
    (joint >= single.visited);
  (match cover with
  | Some t -> check_bool "joint cover within lifetime" true (t <= 60)
  | None -> ());
  (* All sources count as visited at step 0. *)
  let visited_only, _ = Walker.pack ~laziness:1. (rng ()) net ~sources:[ 3; 7 ] in
  check_int "frozen pack visits just its sources" 2 visited_only

let walker_validations () =
  let net = fixture () in
  Alcotest.check_raises "bad source"
    (Invalid_argument "Walker.walk: source out of range") (fun () ->
      ignore (Walker.walk (rng ()) net ~source:99));
  Alcotest.check_raises "bad laziness"
    (Invalid_argument "Walker.walk: laziness not in [0,1]") (fun () ->
      ignore (Walker.walk ~laziness:2. (rng ()) net ~source:0))

(* --------------------------------------------------------------- *)
(* Adversary *)

let adversary_budget_zero () =
  let net = fixture () in
  let outcome =
    Adversary.jam (rng ()) net ~budget:0 ~strategy:Adversary.Random_jam
  in
  check_int "nothing cancelled" 0 outcome.cancelled;
  check_int "pairs unchanged" outcome.reachable_before outcome.reachable_after

let adversary_total_budget_destroys () =
  let net = fixture () in
  let total = Tgraph.label_count net in
  let outcome =
    Adversary.jam (rng ()) net ~budget:total ~strategy:Adversary.Random_jam
  in
  check_int "all labels gone" total outcome.cancelled;
  check_int "nothing reachable" 0 outcome.reachable_after;
  check_int "original intact" 20
    (Temporal.Reachability.reachable_pair_count net)

let adversary_never_helps =
  qcase ~count:40 "jamming never increases reachability"
    ~print:print_params gen_small_nets
    (fun params ->
      let net = random_tnet params in
      List.for_all
        (fun strategy ->
          let outcome = Adversary.jam (rng ()) net ~budget:3 ~strategy in
          outcome.reachable_after <= outcome.reachable_before
          && outcome.cancelled <= 3)
        [ Adversary.Random_jam; Adversary.Earliest_first;
          Adversary.Cut_vertex_focus; Adversary.Greedy_damage ])

let adversary_greedy_at_least_random () =
  (* Statistically, the informed adversary should do at least as much
     damage as the blind one on the fixture (exact on this instance). *)
  let net = fixture () in
  let greedy =
    Adversary.jam (rng ()) net ~budget:2 ~strategy:Adversary.Greedy_damage
  in
  let random =
    Adversary.jam (rng ()) net ~budget:2 ~strategy:Adversary.Random_jam
  in
  check_bool "greedy <= random surviving pairs" true
    (greedy.reachable_after <= random.reachable_after)

let adversary_names_and_validation () =
  Alcotest.(check string) "greedy" "greedy"
    (Adversary.strategy_name Adversary.Greedy_damage);
  Alcotest.check_raises "negative budget"
    (Invalid_argument "Adversary.jam: budget must be >= 0") (fun () ->
      ignore
        (Adversary.jam (rng ()) (fixture ()) ~budget:(-1)
           ~strategy:Adversary.Random_jam))

let suites =
  [
    ( "temporal.windows.schedule",
      [
        case "normalises" schedule_normalises;
        case "overlaps merge" schedule_overlaps_merge;
        case "invalid" schedule_invalid;
        case "first_available_after" schedule_first_available;
        schedule_label_roundtrip;
        schedule_first_available_matches_label;
      ] );
    ( "temporal.windows.network",
      [
        case "create validations" windows_create_validations;
        case "earliest arrival basic" windows_earliest_arrival_basic;
        case "tgraph roundtrip" windows_tgraph_roundtrip;
        windows_matches_foremost;
        case "compression" windows_compression_wins;
      ] );
    ( "temporal.walker",
      [
        case "deterministic track" walker_deterministic_track;
        case "stays without options" walker_stays_without_options;
        case "full laziness freezes" walker_full_laziness_freezes;
        walker_moves_are_available_arcs;
        case "mean coverage" walker_mean_coverage_sane;
        case "pack" walker_pack_dominates_single;
        case "validations" walker_validations;
      ] );
    ( "temporal.adversary",
      [
        case "budget zero" adversary_budget_zero;
        case "total budget destroys" adversary_total_budget_destroys;
        adversary_never_helps;
        case "greedy at least random" adversary_greedy_at_least_random;
        case "names and validation" adversary_names_and_validation;
      ] );
    ( "temporal.online",
      [
        online_matches_batch;
        case "incremental queries" online_incremental_queries;
        case "rejects disorder" online_rejects_disorder;
        case "validations" online_validations;
      ] );
    ( "mobility",
      [
        case "waypoint basics" waypoint_basics;
        case "moves one cell" waypoint_moves_one_cell;
        case "contacts sorted and valid" waypoint_contacts_sorted_and_valid;
        case "validations" waypoint_validations;
        case "trace roundtrip" trace_roundtrip;
        case "trace rejects bad contacts" trace_rejects_bad_contacts;
        case "trace io roundtrip" trace_io_roundtrip;
        case "trace io loose input" trace_io_parses_loose_input;
        case "trace io errors" trace_io_errors;
        case "trace load file" trace_load_file;
        case "waypoint run coherent" trace_of_waypoint_is_coherent;
      ] );
    ( "evolving.edge_markovian",
      [
        case "create and density" em_create_and_density;
        case "validations" em_validations;
        case "deterministic extremes" em_deterministic_extremes;
        case "step counts" em_step_counts;
        case "density tracks stationary" em_density_tracks_stationary;
        case "snapshot consistent" em_snapshot_consistent;
        case "edge_present validations" em_edge_present_validations;
        case "flood dense" em_flood_dense;
        case "flood frozen empty" em_flood_frozen_empty;
        case "flood single vertex" em_flood_single_vertex;
      ] );
  ]
