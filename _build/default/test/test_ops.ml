(* Tests for Builder, Ops (network algebra) and Spanner (pruning). *)

open Helpers
module Graph = Sgraph.Graph
open Temporal

(* --------------------------------------------------------------- *)
(* Builder *)

let builder_basic () =
  let b = Builder.create Undirected ~n:4 in
  Builder.add_edge b 0 1 [ 3; 1 ];
  Builder.add_edge b 1 2 [ 2 ];
  Builder.add_label b 2 3 5;
  check_int "edges" 3 (Builder.edge_count b);
  check_int "labels" 4 (Builder.label_count b);
  let net = Builder.build b in
  check_int "n" 4 (Tgraph.n net);
  check_int "lifetime defaults to max label" 5 (Tgraph.lifetime net);
  check_int "labels materialised" 4 (Tgraph.label_count net)

let builder_merges_labels () =
  let b = Builder.create Undirected ~n:3 in
  Builder.add_edge b 0 1 [ 1; 2 ];
  Builder.add_edge b 1 0 [ 2; 4 ];
  check_int "one edge" 1 (Builder.edge_count b);
  check_int "union of labels" 3 (Builder.label_count b);
  let net = Builder.build b in
  Alcotest.(check (list int)) "merged set" [ 1; 2; 4 ]
    (Label.to_list (Tgraph.labels net 0))

let builder_directed_keeps_both () =
  let b = Builder.create Directed ~n:3 in
  Builder.add_edge b 0 1 [ 1 ];
  Builder.add_edge b 1 0 [ 2 ];
  check_int "two arcs" 2 (Builder.edge_count b)

let builder_validations () =
  let b = Builder.create Undirected ~n:3 in
  Alcotest.check_raises "self loop" (Invalid_argument "Builder: self-loop")
    (fun () -> Builder.add_edge b 1 1 [ 1 ]);
  Alcotest.check_raises "range"
    (Invalid_argument "Builder: endpoint out of range") (fun () ->
      Builder.add_edge b 0 7 [ 1 ]);
  Alcotest.check_raises "bad label"
    (Invalid_argument "Builder: labels must be positive") (fun () ->
      Builder.add_edge b 0 1 [ 0 ])

let builder_explicit_lifetime () =
  let b = Builder.create Undirected ~n:2 in
  Builder.add_edge b 0 1 [ 3 ];
  check_int "explicit" 9 (Tgraph.lifetime (Builder.build ~lifetime:9 b));
  Alcotest.check_raises "too small"
    (Invalid_argument "Tgraph.create: label beyond the lifetime") (fun () ->
      ignore (Builder.build ~lifetime:2 b))

let builder_reusable () =
  let b = Builder.create Undirected ~n:2 in
  Builder.add_edge b 0 1 [ 1 ];
  let first = Builder.build b in
  Builder.add_label b 0 1 2;
  let second = Builder.build b in
  check_int "first unchanged" 1 (Tgraph.label_count first);
  check_int "second grew" 2 (Tgraph.label_count second)

(* --------------------------------------------------------------- *)
(* Ops *)

let ops_restrict_window () =
  let net = fixture () in
  let sliced = Ops.restrict_window net ~lo:2 ~hi:5 in
  (* Original labels: 1,2,2,3,4,5,6,7,8 -> kept: 2,2,3,4,5. *)
  check_int "kept labels" 5 (Tgraph.label_count sliced);
  check_int "lifetime unchanged" 8 (Tgraph.lifetime sliced)

let ops_restrict_empty () =
  let net = fixture () in
  check_int "nothing survives" 0
    (Tgraph.label_count (Ops.restrict_window net ~lo:7 ~hi:6))

let ops_shift () =
  let net = fixture () in
  let shifted = Ops.shift net 10 in
  check_int "lifetime grew" 18 (Tgraph.lifetime shifted);
  check_int_option "distances shift by exactly d" (Some 11)
    (Distance.distance shifted 0 4);
  Alcotest.check_raises "negative shift below 1"
    (Invalid_argument "Ops.shift: label would drop below 1") (fun () ->
      ignore (Ops.shift net (-1)))

let ops_shift_down_ok () =
  let net = Ops.shift (fixture ()) 5 in
  let back = Ops.shift net (-5) in
  check_int_option "round trip" (Some 1) (Distance.distance back 0 4)

let ops_scale_distances =
  qcase ~count:80 "scaling labels scales temporal distances"
    ~print:print_params gen_params
    (fun params ->
      let net = random_tnet params in
      let scaled = Ops.scale net 3 in
      let n = Tgraph.n net in
      let ok = ref true in
      for s = 0 to n - 1 do
        let original = Foremost.run net s in
        let after = Foremost.run scaled s in
        for v = 0 to n - 1 do
          let expected =
            Option.map (fun d -> 3 * d) (Foremost.distance original v)
          in
          if Foremost.distance after v <> expected then ok := false
        done
      done;
      !ok)

let ops_scale_invalid () =
  Alcotest.check_raises "k = 0" (Invalid_argument "Ops.scale: k must be >= 1")
    (fun () -> ignore (Ops.scale (fixture ()) 0))

let ops_reverse_time_duality =
  qcase ~count:80
    "foremost in reversed time = latest presence in the original"
    ~print:print_params gen_params
    (fun params ->
      let net = random_tnet params in
      let reversed = Ops.reverse_time net in
      let a = Tgraph.lifetime net in
      let n = Tgraph.n net in
      let ok = ref true in
      for t = 0 to n - 1 do
        (* Earliest arrival v <- t in reversed time at label l corresponds
           to a journey t <- v in the original using labels a+1-l...; the
           latest presence L(v) towards t equals a - (reversed arrival). *)
        let rev_res = Foremost.run reversed t in
        let latest = Reverse_foremost.run net t in
        for v = 0 to n - 1 do
          if v <> t then begin
            let expected =
              match Foremost.distance rev_res v with
              | Some arrival -> Some (a - arrival)
              | None -> None
            in
            if Reverse_foremost.latest_presence latest v <> expected then
              ok := false
          end
        done
      done;
      !ok)

let ops_reverse_time_involutive () =
  let net = fixture () in
  let twice = Ops.reverse_time (Ops.reverse_time net) in
  Alcotest.(check string) "involution (same serialisation)"
    (Serial.to_string net) (Serial.to_string twice)

let ops_union () =
  let g = Sgraph.Gen.path 3 in
  let early = Assignment.constant g ~a:5 (Label.singleton 1) in
  let late = Assignment.constant g ~a:9 (Label.singleton 7) in
  let both = Ops.union early late in
  check_int "lifetime is the max" 9 (Tgraph.lifetime both);
  Alcotest.(check (list int)) "labels merged" [ 1; 7 ]
    (Label.to_list (Tgraph.labels both 0))

let ops_union_mismatch () =
  let a = Assignment.constant (Sgraph.Gen.path 3) ~a:3 (Label.singleton 1) in
  let b = Assignment.constant (Sgraph.Gen.cycle 3) ~a:3 (Label.singleton 1) in
  Alcotest.check_raises "different graphs"
    (Invalid_argument "Ops.union: different underlying graphs") (fun () ->
      ignore (Ops.union a b))

let ops_induced () =
  let net = fixture () in
  let sub, mapping = Ops.induced net [ 0; 1; 4 ] in
  check_int "three vertices" 3 (Tgraph.n sub);
  Alcotest.(check (array int)) "mapping" [| 0; 1; 4 |] mapping;
  (* Edges among {0,1,4}: {0,1} and {0,4}. *)
  check_int "two edges" 2 (Graph.m (Tgraph.graph sub));
  check_int "their labels" 3 (Tgraph.label_count sub)

let ops_induced_invalid () =
  Alcotest.check_raises "empty" (Invalid_argument "Ops.induced: empty vertex list")
    (fun () -> ignore (Ops.induced (fixture ()) []));
  Alcotest.check_raises "range"
    (Invalid_argument "Ops.induced: vertex out of range") (fun () ->
      ignore (Ops.induced (fixture ()) [ 0; 99 ]))

let ops_induced_preserves_journeys =
  qcase ~count:60 "journeys in the induced network exist in the original"
    ~print:print_params gen_params
    (fun params ->
      let net = random_tnet params in
      let n = Tgraph.n net in
      let keep = List.init ((n / 2) + 1) Fun.id in
      let sub, mapping = Ops.induced net keep in
      let ok = ref true in
      for s = 0 to Tgraph.n sub - 1 do
        let res = Foremost.run sub s in
        for v = 0 to Tgraph.n sub - 1 do
          match Foremost.distance res v with
          | None -> ()  (* the restriction can only lose journeys *)
          | Some d ->
            (* The same journey exists in the full network, so the true
               distance is at most d. *)
            (match Distance.distance net mapping.(s) mapping.(v) with
            | Some full -> if full > d then ok := false
            | None -> ok := false)
        done
      done;
      !ok)

(* --------------------------------------------------------------- *)
(* Spanner *)

let spanner_fixture () =
  let net = fixture () in
  let result = Spanner.prune net in
  check_bool "pruned still reaches" true (Reachability.treach result.pruned);
  check_bool "minimal" true (Spanner.is_minimal result.pruned);
  check_int "bookkeeping" (Tgraph.label_count net)
    (result.kept + result.removed)

let spanner_all_times_star () =
  let g = Sgraph.Gen.star 8 in
  let net = Assignment.all_times g ~a:8 in
  let result = Spanner.prune net in
  check_bool "treach preserved" true (Reachability.treach result.pruned);
  (* Leaf-to-leaf journeys both ways force >= 2 labels on all edges but
     possibly one (whose single label the others straddle). *)
  check_bool "at least 2(n-1)-1 labels survive" true (result.kept >= 13);
  check_bool "massive redundancy removed" true (result.removed > 30)

let spanner_already_minimal () =
  let net = Opt.star_two_labels (Sgraph.Gen.star 6) in
  check_bool "star {1,2} scheme is minimal" true (Spanner.is_minimal net);
  let result = Spanner.prune net in
  check_int "nothing removed" 0 result.removed

let spanner_rejects_broken_input () =
  let g = Graph.create Undirected ~n:3 [ (0, 1); (1, 2) ] in
  let net =
    Tgraph.create g ~lifetime:3 [| Label.singleton 2; Label.singleton 1 |]
  in
  Alcotest.check_raises "not reachability-preserving"
    (Invalid_argument "Spanner.prune: input must preserve reachability")
    (fun () -> ignore (Spanner.prune net))

let spanner_clique_single_is_minimal () =
  check_bool "1 label per clique edge is minimal" true
    (Spanner.is_minimal (Opt.clique_single (Sgraph.Gen.clique Undirected 5)))

let spanner_outputs_minimal =
  qcase ~count:25 "prune outputs are inclusion-minimal" ~print:print_params
    gen_small_nets
    (fun params ->
      let net = random_tnet params in
      if not (Reachability.treach net) then true
      else begin
        let result = Spanner.prune net in
        Reachability.treach result.pruned && Spanner.is_minimal result.pruned
        && result.kept <= Tgraph.label_count net
      end)

let spanner_orders_agree_on_validity () =
  let g = Sgraph.Gen.cycle 6 in
  let net = Assignment.all_times g ~a:6 in
  let late = Spanner.prune ~order:`Latest_first net in
  let early = Spanner.prune ~order:`Earliest_first net in
  check_bool "both minimal" true
    (Spanner.is_minimal late.pruned && Spanner.is_minimal early.pruned)

(* --------------------------------------------------------------- *)
(* Design *)

let design_metadata () =
  let g = Sgraph.Gen.grid 3 3 in
  Alcotest.(check string) "backbone name" "backbone"
    (Design.spec_name Backbone_only);
  Alcotest.(check string) "hybrid name" "hybrid r=2"
    (Design.spec_name (Hybrid 2));
  check_int "backbone budget" 16 (Design.label_budget g Backbone_only);
  check_int "random budget" (3 * 12) (Design.label_budget g (Random_only 3));
  check_int "hybrid budget" (16 + 12) (Design.label_budget g (Hybrid 1));
  check_bool "backbone guarantees" true
    (Design.guarantees_reachability Backbone_only);
  check_bool "hybrid guarantees" true (Design.guarantees_reachability (Hybrid 1));
  check_bool "random does not" false
    (Design.guarantees_reachability (Random_only 9))

let design_backbone_certain () =
  let g = Sgraph.Gen.grid 4 4 in
  let net = Design.realise (rng ()) g ~a:16 Backbone_only in
  check_bool "treach" true (Reachability.treach net);
  match Distance.instance_diameter net with
  | Some d -> check_bool "within the 2h horizon" true (d <= 16)
  | None -> Alcotest.fail "backbone must connect"

let design_hybrid_always_certain =
  qcase ~count:40 "hybrid designs always preserve reachability"
    ~print:string_of_int
    QCheck2.Gen.(int_range 1 5_000)
    (fun seed ->
      let g = Sgraph.Gen.hypercube 4 in
      let net =
        Design.realise (Prng.Rng.create seed) g ~a:16 (Hybrid ((seed mod 3) + 1))
      in
      Reachability.treach net)

let design_hybrid_not_slower () =
  (* The hybrid's instance diameter can never exceed the backbone's on
     the same tree: it has strictly more availability. *)
  let g = Sgraph.Gen.hypercube 4 in
  let backbone = Design.realise (rng ()) g ~a:8 Backbone_only in
  let hybrid = Design.realise (rng ()) g ~a:8 (Hybrid 4) in
  match (Distance.instance_diameter backbone, Distance.instance_diameter hybrid)
  with
  | Some b, Some h -> check_bool "hybrid <= backbone" true (h <= b)
  | _ -> Alcotest.fail "both connect"

let design_validations () =
  Alcotest.check_raises "directed"
    (Invalid_argument "Design.realise: directed graph") (fun () ->
      ignore
        (Design.realise (rng ()) (Sgraph.Gen.clique Directed 4) ~a:8
           Backbone_only));
  let disconnected = Graph.create Undirected ~n:4 [ (0, 1); (2, 3) ] in
  Alcotest.check_raises "disconnected"
    (Invalid_argument "Design.realise: disconnected graph") (fun () ->
      ignore (Design.realise (rng ()) disconnected ~a:8 Backbone_only));
  Alcotest.check_raises "lifetime too short"
    (Invalid_argument "Design.realise: lifetime below the backbone horizon")
    (fun () ->
      ignore (Design.realise (rng ()) (Sgraph.Gen.path 8) ~a:3 Backbone_only))

let suites =
  [
    ( "temporal.builder",
      [
        case "basic" builder_basic;
        case "merges labels" builder_merges_labels;
        case "directed keeps both arcs" builder_directed_keeps_both;
        case "validations" builder_validations;
        case "explicit lifetime" builder_explicit_lifetime;
        case "reusable" builder_reusable;
      ] );
    ( "temporal.ops",
      [
        case "restrict window" ops_restrict_window;
        case "restrict to empty" ops_restrict_empty;
        case "shift" ops_shift;
        case "shift down" ops_shift_down_ok;
        ops_scale_distances;
        case "scale invalid" ops_scale_invalid;
        ops_reverse_time_duality;
        case "reverse involutive" ops_reverse_time_involutive;
        case "union" ops_union;
        case "union mismatch" ops_union_mismatch;
        case "induced" ops_induced;
        case "induced invalid" ops_induced_invalid;
        ops_induced_preserves_journeys;
      ] );
    ( "temporal.spanner",
      [
        case "fixture" spanner_fixture;
        case "all-times star" spanner_all_times_star;
        case "already minimal" spanner_already_minimal;
        case "rejects broken input" spanner_rejects_broken_input;
        case "clique single minimal" spanner_clique_single_is_minimal;
        spanner_outputs_minimal;
        case "orders agree" spanner_orders_agree_on_validity;
      ] );
    ( "temporal.design",
      [
        case "metadata" design_metadata;
        case "backbone certain" design_backbone_certain;
        design_hybrid_always_certain;
        case "hybrid not slower" design_hybrid_not_slower;
        case "validations" design_validations;
      ] );
  ]
