(* Tests for the deterministic OPT-side assignments (paper sections 4-5). *)

open Helpers
module Graph = Sgraph.Graph
module Gen = Sgraph.Gen
open Temporal

(* --------------------------------------------------------------- *)
(* Recognisers *)

let recognise_clique () =
  check_bool "directed clique" true (Opt.is_clique (Gen.clique Directed 5));
  check_bool "undirected clique" true (Opt.is_clique (Gen.clique Undirected 5));
  check_bool "path is not" false (Opt.is_clique (Gen.path 5));
  check_bool "K2" true (Opt.is_clique (Gen.clique Undirected 2))

let recognise_star () =
  check_bool "star" true (Opt.is_star (Gen.star 6));
  check_bool "K2 is a star" true (Opt.is_star (Gen.star 2));
  check_bool "path is not" false (Opt.is_star (Gen.path 5));
  check_bool "cycle is not" false (Opt.is_star (Gen.cycle 4))

(* --------------------------------------------------------------- *)
(* Clique: 1 label per edge *)

let clique_single_works () =
  let net = Opt.clique_single (Gen.clique Directed 6) in
  check_bool "treach" true (Reachability.treach net);
  check_int "OPT = m labels" (6 * 5) (Tgraph.label_count net)

let clique_single_undirected () =
  let net = Opt.clique_single (Gen.clique Undirected 6) in
  check_bool "treach" true (Reachability.treach net);
  check_int "OPT = m labels" 15 (Tgraph.label_count net)

let clique_single_rejects () =
  Alcotest.check_raises "not a clique"
    (Invalid_argument "Opt.clique_single: not a clique") (fun () ->
      ignore (Opt.clique_single (Gen.path 4)))

(* --------------------------------------------------------------- *)
(* Star: 2 labels per edge *)

let star_two_works () =
  let net = Opt.star_two_labels (Gen.star 9) in
  check_bool "treach" true (Reachability.treach net);
  check_int "2m labels" 16 (Tgraph.label_count net);
  check_int "value helper" 16 (Opt.star_value ~n:9)

let star_two_rejects () =
  Alcotest.check_raises "not a star"
    (Invalid_argument "Opt.star_two_labels: not a star with centre 0")
    (fun () -> ignore (Opt.star_two_labels (Gen.cycle 5)))

(* One label per star edge can never work for n >= 4: some leaf pair gets
   a non-increasing pair of labels in one direction.  (The paper notes one
   label per edge suffices only for the clique.) *)
let star_one_label_insufficient () =
  let g = Gen.star 4 in
  (* Try every single-label assignment over {1,2}^3 — none preserves
     reachability. *)
  let ok = ref false in
  for l0 = 1 to 2 do
    for l1 = 1 to 2 do
      for l2 = 1 to 2 do
        let net =
          Tgraph.create g ~lifetime:2
            [| Label.singleton l0; Label.singleton l1; Label.singleton l2 |]
        in
        if Reachability.treach net then ok := true
      done
    done
  done;
  check_bool "no single-label assignment works" false !ok

(* --------------------------------------------------------------- *)
(* Trees: up/down scheme *)

let tree_scheme_path () =
  let g = Gen.path 6 in
  let net = Opt.tree_up_down g ~root:0 in
  check_bool "treach" true (Reachability.treach net);
  check_int "2 labels per edge" (2 * 5) (Tgraph.label_count net);
  check_int "lifetime 2h" 10 (Tgraph.lifetime net)

let tree_scheme_star_matches () =
  (* On a star rooted at the centre the scheme degenerates to {1,2}. *)
  let net = Opt.tree_up_down (Gen.star 5) ~root:0 in
  check_bool "treach" true (Reachability.treach net);
  check_int "lifetime 2" 2 (Tgraph.lifetime net)

let tree_scheme_binary () =
  let net = Opt.tree_up_down (Gen.binary_tree 15) ~root:0 in
  check_bool "treach" true (Reachability.treach net)

let tree_scheme_off_root () =
  (* Rooting anywhere still works. *)
  let net = Opt.tree_up_down (Gen.path 7) ~root:3 in
  check_bool "treach" true (Reachability.treach net)

let tree_scheme_random_trees =
  qcase ~count:60 "up/down scheme preserves reachability on random trees"
    ~print:(fun (n, seed) -> Printf.sprintf "(n=%d, seed=%d)" n seed)
    gen_tree_params
    (fun (n, seed) ->
      let n = max 2 n in
      let g = Gen.random_tree (Prng.Rng.create seed) n in
      let net = Opt.tree_up_down g ~root:(seed mod n) in
      Reachability.treach net && Tgraph.label_count net = 2 * (n - 1))

let tree_scheme_rejects_non_tree () =
  Alcotest.check_raises "cycle is not a tree"
    (Invalid_argument "Opt.tree_up_down: not a tree") (fun () ->
      ignore (Opt.tree_up_down (Gen.cycle 4) ~root:0))

(* --------------------------------------------------------------- *)
(* Spanning-tree certificate for general graphs *)

let spanning_tree_upper_families () =
  List.iter
    (fun (name, g) ->
      let net = Opt.spanning_tree_upper g in
      check_bool (name ^ " treach") true (Reachability.treach net);
      check_int
        (name ^ " total = 2(n-1)")
        (2 * (Graph.n g - 1))
        (Tgraph.label_count net))
    [
      ("grid", Gen.grid 4 4);
      ("hypercube", Gen.hypercube 4);
      ("wheel", Gen.wheel 8);
      ("barbell", Gen.barbell 4);
      ("clique", Gen.clique Undirected 6);
    ]

let spanning_tree_upper_rejects_disconnected () =
  let g = Graph.create Undirected ~n:4 [ (0, 1); (2, 3) ] in
  Alcotest.check_raises "disconnected"
    (Invalid_argument "Opt.spanning_tree_upper: disconnected graph")
    (fun () -> ignore (Opt.spanning_tree_upper g))

let spanning_tree_random_graphs =
  qcase ~count:60 "spanning-tree certificate on random connected graphs"
    ~print:print_params gen_params
    (fun (n, seed, _, _) ->
      let g = random_graph ~n ~seed in
      if not (Sgraph.Components.is_connected g) then true
      else Reachability.treach (Opt.spanning_tree_upper g))

(* --------------------------------------------------------------- *)
(* Claim 1 boxes *)

let boxes_families () =
  List.iter
    (fun (name, g) ->
      let d = Sgraph.Metrics.diameter g in
      let q = Stdlib.max d (Graph.n g) in
      let net = Opt.boxes g ~q in
      check_bool (name ^ " treach") true (Reachability.treach net);
      check_int (name ^ " d labels per edge") (d * Graph.m g)
        (Tgraph.label_count net))
    [
      ("path", Gen.path 7);
      ("cycle", Gen.cycle 8);
      ("grid", Gen.grid 3 5);
      ("star", Gen.star 9);
      ("binary tree", Gen.binary_tree 10);
    ]

let boxes_rejects_small_lifetime () =
  Alcotest.check_raises "q below diameter"
    (Invalid_argument "Opt.boxes: lifetime q below the diameter") (fun () ->
      ignore (Opt.boxes (Gen.path 8) ~q:3))

let boxes_rejects_disconnected () =
  let g = Graph.create Undirected ~n:4 [ (0, 1); (2, 3) ] in
  Alcotest.check_raises "disconnected"
    (Invalid_argument "Opt.boxes: disconnected graph") (fun () ->
      ignore (Opt.boxes g ~q:4))

let boxes_custom_pick () =
  (* Claim 1 holds for ANY within-box choice; pick pseudo-randomly. *)
  let g = Gen.grid 3 3 in
  let pick ~edge ~box ~lo ~hi =
    let width = hi - lo in
    lo + 1 + ((edge * 7) + (box * 13)) mod width
  in
  let net = Opt.boxes ~pick g ~q:16 in
  check_bool "treach with arbitrary picks" true (Reachability.treach net)

let boxes_pick_must_stay_inside () =
  let g = Gen.path 4 in
  Alcotest.check_raises "escaping pick"
    (Invalid_argument "Opt.boxes: pick left its box") (fun () ->
      ignore (Opt.boxes ~pick:(fun ~edge:_ ~box:_ ~lo:_ ~hi -> hi + 1) g ~q:9))

let boxes_shortest_paths_are_journeys =
  qcase ~count:40 "boxes make every BFS shortest path a journey"
    ~print:print_params gen_params
    (fun (n, seed, _, _) ->
      let g = random_graph ~n ~seed in
      if not (Sgraph.Components.is_connected g) then true
      else begin
        let d = Stdlib.max 1 (Sgraph.Metrics.diameter g) in
        let net = Opt.boxes g ~q:(d * 3) in
        Reachability.treach net
      end)

(* --------------------------------------------------------------- *)
(* Bounds *)

(* §4.1: one label per edge always works iff the graph is a clique. *)
let single_label_uniqueness () =
  check_bool "K3 always works" true
    (Opt.single_label_always_preserves (Gen.clique Undirected 3) ~a:3);
  check_bool "K4 with a=2" true
    (Opt.single_label_always_preserves (Gen.clique Undirected 4) ~a:2);
  check_bool "directed K3" true
    (Opt.single_label_always_preserves (Gen.clique Directed 3) ~a:2);
  check_bool "path fails" false
    (Opt.single_label_always_preserves (Gen.path 3) ~a:3);
  check_bool "star fails" false
    (Opt.single_label_always_preserves (Gen.star 4) ~a:2);
  check_bool "cycle fails" false
    (Opt.single_label_always_preserves (Gen.cycle 4) ~a:2)

let single_label_counterexample_cases () =
  check_bool "clique has none" true
    (Opt.single_label_counterexample (Gen.clique Undirected 5) = None);
  (match Opt.single_label_counterexample (Gen.star 5) with
  | None -> Alcotest.fail "star must have a counterexample"
  | Some net ->
    check_bool "counterexample indeed breaks Treach" false
      (Reachability.treach net));
  (* No statically-connected non-adjacent pair: nothing to break. *)
  let isolated = Graph.create Undirected ~n:3 [] in
  check_bool "edgeless graph has none" true
    (Opt.single_label_counterexample isolated = None)

let single_label_guard () =
  Alcotest.check_raises "a^m blow-up guarded"
    (Invalid_argument "Opt.single_label_always_preserves: a^m too large")
    (fun () ->
      ignore (Opt.single_label_always_preserves (Gen.clique Undirected 8) ~a:10))

let single_label_matches_is_clique =
  qcase ~count:40 "exhaustive check agrees with is_clique (a = 2)"
    ~print:print_params gen_small_nets
    (fun (n, seed, _, _) ->
      let g = random_graph ~n ~seed in
      if Graph.m g > 12 then true
      else if not (Sgraph.Components.is_connected g) then true
      else Opt.single_label_always_preserves g ~a:2 = Opt.is_clique g)

let opt_bounds () =
  let g = Gen.grid 4 4 in
  check_int "lower n-1" 15 (Opt.lower_bound g);
  check_int "upper 2(n-1)" 30 (Opt.upper_bound g);
  check_int "clique value" (Graph.m (Gen.clique Undirected 5))
    (Opt.clique_value (Gen.clique Undirected 5))

let suites =
  [
    ( "temporal.opt.recognisers",
      [
        case "clique" recognise_clique;
        case "star" recognise_star;
      ] );
    ( "temporal.opt.schemes",
      [
        case "clique single label" clique_single_works;
        case "clique single undirected" clique_single_undirected;
        case "clique single rejects" clique_single_rejects;
        case "star two labels" star_two_works;
        case "star two rejects" star_two_rejects;
        case "star one label insufficient" star_one_label_insufficient;
        case "tree scheme on path" tree_scheme_path;
        case "tree scheme on star" tree_scheme_star_matches;
        case "tree scheme on binary tree" tree_scheme_binary;
        case "tree scheme off-root" tree_scheme_off_root;
        tree_scheme_random_trees;
        case "tree scheme rejects non-tree" tree_scheme_rejects_non_tree;
        case "spanning tree families" spanning_tree_upper_families;
        case "spanning tree rejects disconnected"
          spanning_tree_upper_rejects_disconnected;
        spanning_tree_random_graphs;
      ] );
    ( "temporal.opt.boxes",
      [
        case "families" boxes_families;
        case "rejects small lifetime" boxes_rejects_small_lifetime;
        case "rejects disconnected" boxes_rejects_disconnected;
        case "custom pick" boxes_custom_pick;
        case "pick must stay inside" boxes_pick_must_stay_inside;
        boxes_shortest_paths_are_journeys;
        case "bounds" opt_bounds;
      ] );
    ( "temporal.opt.single_label",
      [
        case "uniqueness of the clique" single_label_uniqueness;
        case "counterexamples" single_label_counterexample_cases;
        case "guard" single_label_guard;
        single_label_matches_is_clique;
      ] );
  ]
