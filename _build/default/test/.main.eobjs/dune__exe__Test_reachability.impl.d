test/test_reachability.ml: Alcotest Array Assignment Distance Foremost Helpers Label List Printf Prng QCheck2 Reachability Sgraph Temporal Tgraph
