test/test_temporal_core.ml: Alcotest Array Format Helpers Journey Label List Sgraph String Temporal Tgraph
