test/helpers.ml: Alcotest Array Assignment Label List Option Printf Prng QCheck2 QCheck_alcotest Sgraph String Temporal Tgraph
