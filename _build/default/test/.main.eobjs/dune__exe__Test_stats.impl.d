test/test_stats.ml: Alcotest Array Float Format Helpers List Prng QCheck2 Stats String
