test/test_opt.ml: Alcotest Helpers Label List Opt Printf Prng Reachability Sgraph Stdlib Temporal Tgraph
