test/main.mli:
