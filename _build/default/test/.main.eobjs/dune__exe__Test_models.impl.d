test/test_models.ml: Adversary Alcotest Array Distance Evolving Filename Foremost Helpers Label List Mobility Online Out_channel Printf QCheck2 Sgraph String Sys Temporal Tgraph Walker Windows
