test/test_foremost.ml: Alcotest Array Distance Flooding Foremost Helpers Journey Label Option Sgraph Temporal Tgraph
