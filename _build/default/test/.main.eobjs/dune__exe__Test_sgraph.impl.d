test/test_sgraph.ml: Alcotest Array Helpers List Prng Sgraph Stdlib
