test/test_connectivity.ml: Alcotest Array Disjoint Expanded Filename Flow Foremost Fun Hashtbl Helpers Label List Printf Prng QCheck2 Serial Sgraph Stdlib Sys Tcc Temporal Tgraph
