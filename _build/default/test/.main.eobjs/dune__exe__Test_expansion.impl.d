test/test_expansion.ml: Alcotest Array Assignment Expansion Helpers Journey Label List Printf Prng QCheck2 Sgraph Temporal
