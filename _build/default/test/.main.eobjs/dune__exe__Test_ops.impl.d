test/test_ops.ml: Alcotest Array Assignment Builder Design Distance Foremost Fun Helpers Label List Ops Opt Option Prng QCheck2 Reachability Reverse_foremost Serial Sgraph Spanner Temporal Tgraph
