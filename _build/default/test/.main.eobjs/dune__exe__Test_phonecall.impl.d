test/test_phonecall.ml: Alcotest Float Helpers List Phonecall Printf Prng Sgraph
