test/test_por.ml: Alcotest Assignment Distance Helpers Label Lifetime Por Printf Prng QCheck2 Sgraph Stats Temporal Tgraph
