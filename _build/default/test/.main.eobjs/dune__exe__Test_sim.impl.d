test/test_sim.ml: Alcotest Filename Helpers List Option Printf Prng Result Sgraph Sim Stats String Sys Temporal
