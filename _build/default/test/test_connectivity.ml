(* Tests for the connectivity stack: Maxflow, Expanded, Disjoint, and
   Serial (I/O). *)

open Helpers
module Graph = Sgraph.Graph
module Maxflow = Flow.Maxflow
open Temporal

(* --------------------------------------------------------------- *)
(* Maxflow *)

let flow_single_edge () =
  let net = Maxflow.create 2 in
  let e = Maxflow.add_edge net ~src:0 ~dst:1 ~capacity:7 in
  check_int "value" 7 (Maxflow.max_flow net ~source:0 ~sink:1);
  check_int "edge flow" 7 (Maxflow.flow_on net e)

let flow_series () =
  let net = Maxflow.create 3 in
  ignore (Maxflow.add_edge net ~src:0 ~dst:1 ~capacity:5);
  ignore (Maxflow.add_edge net ~src:1 ~dst:2 ~capacity:3);
  check_int "bottleneck" 3 (Maxflow.max_flow net ~source:0 ~sink:2)

let flow_parallel_paths () =
  let net = Maxflow.create 4 in
  ignore (Maxflow.add_edge net ~src:0 ~dst:1 ~capacity:2);
  ignore (Maxflow.add_edge net ~src:1 ~dst:3 ~capacity:2);
  ignore (Maxflow.add_edge net ~src:0 ~dst:2 ~capacity:3);
  ignore (Maxflow.add_edge net ~src:2 ~dst:3 ~capacity:1);
  check_int "sum of disjoint paths" 3 (Maxflow.max_flow net ~source:0 ~sink:3)

let flow_classic_augmenting () =
  (* The textbook diamond with a cross edge that forces augmentation
     through the residual network. *)
  let net = Maxflow.create 4 in
  ignore (Maxflow.add_edge net ~src:0 ~dst:1 ~capacity:1);
  ignore (Maxflow.add_edge net ~src:0 ~dst:2 ~capacity:1);
  ignore (Maxflow.add_edge net ~src:1 ~dst:2 ~capacity:1);
  ignore (Maxflow.add_edge net ~src:1 ~dst:3 ~capacity:1);
  ignore (Maxflow.add_edge net ~src:2 ~dst:3 ~capacity:1);
  check_int "value 2" 2 (Maxflow.max_flow net ~source:0 ~sink:3)

let flow_disconnected () =
  let net = Maxflow.create 3 in
  ignore (Maxflow.add_edge net ~src:0 ~dst:1 ~capacity:4);
  check_int "no path" 0 (Maxflow.max_flow net ~source:0 ~sink:2)

let flow_unbounded_edges () =
  let net = Maxflow.create 3 in
  ignore (Maxflow.add_edge net ~src:0 ~dst:1 ~capacity:max_int);
  ignore (Maxflow.add_edge net ~src:1 ~dst:2 ~capacity:9);
  check_int "bounded by the finite edge" 9 (Maxflow.max_flow net ~source:0 ~sink:2)

let flow_validations () =
  let net = Maxflow.create 2 in
  Alcotest.check_raises "negative capacity"
    (Invalid_argument "Maxflow.add_edge: negative capacity") (fun () ->
      ignore (Maxflow.add_edge net ~src:0 ~dst:1 ~capacity:(-1)));
  Alcotest.check_raises "bad endpoint"
    (Invalid_argument "Maxflow.add_edge: endpoint out of range") (fun () ->
      ignore (Maxflow.add_edge net ~src:0 ~dst:5 ~capacity:1));
  Alcotest.check_raises "source = sink"
    (Invalid_argument "Maxflow.max_flow: source = sink") (fun () ->
      ignore (Maxflow.max_flow net ~source:0 ~sink:0))

let flow_min_cut () =
  let net = Maxflow.create 4 in
  ignore (Maxflow.add_edge net ~src:0 ~dst:1 ~capacity:10);
  ignore (Maxflow.add_edge net ~src:1 ~dst:2 ~capacity:1);
  ignore (Maxflow.add_edge net ~src:2 ~dst:3 ~capacity:10);
  ignore (Maxflow.max_flow net ~source:0 ~sink:3);
  let side = Maxflow.min_cut_side net ~source:0 in
  check_bool "source side" true side.(0);
  check_bool "1 with source" true side.(1);
  check_bool "2 across the cut" false side.(2);
  check_bool "sink across" false side.(3)

(* Flow value equals min cut capacity on random unit-capacity DAGs:
   verified via the residual-reachability cut. *)
let flow_maxflow_mincut =
  qcase ~count:80 "max flow = capacity across the residual cut"
    ~print:string_of_int
    QCheck2.Gen.(int_range 1 10_000)
    (fun seed ->
      let rng = Prng.Rng.create seed in
      let n = 6 in
      let net = Maxflow.create n in
      let capacities = Hashtbl.create 16 in
      for u = 0 to n - 2 do
        for v = u + 1 to n - 1 do
          if Prng.Rng.bernoulli rng 0.5 then begin
            let c = 1 + Prng.Rng.int rng 3 in
            ignore (Maxflow.add_edge net ~src:u ~dst:v ~capacity:c);
            Hashtbl.add capacities (u, v) c
          end
        done
      done;
      let value = Maxflow.max_flow net ~source:0 ~sink:(n - 1) in
      let side = Maxflow.min_cut_side net ~source:0 in
      let cut = ref 0 in
      Hashtbl.iter
        (fun (u, v) c -> if side.(u) && not side.(v) then cut := !cut + c)
        capacities;
      value = !cut)

(* --------------------------------------------------------------- *)
(* Expanded *)

let expanded_fixture_structure () =
  let net = fixture () in
  let exp = Expanded.build net in
  check_bool "more nodes than vertices" true (Expanded.node_count exp > 5);
  check_bool "has arcs" true (Expanded.arc_count exp > 0);
  (* Every vertex has a start node at time 0. *)
  for v = 0 to 4 do
    Alcotest.(check (pair int int))
      "start node" (v, 0)
      (Expanded.node exp (Expanded.start_node exp v))
  done

let expanded_travel_arcs_match_stream () =
  let net = fixture () in
  let exp = Expanded.build net in
  let travels = ref 0 in
  Array.iter
    (fun arc ->
      match arc with
      | Expanded.Travel { from_id; to_id; stream_index } ->
        incr travels;
        let src, dst, label = Tgraph.time_edge net stream_index in
        let from_vertex, from_time = Expanded.node exp from_id in
        let to_vertex, to_time = Expanded.node exp to_id in
        check_int "arc departs from the stream source" src from_vertex;
        check_int "arc lands on the stream target" dst to_vertex;
        check_int "lands at the label" label to_time;
        check_bool "departs strictly earlier" true (from_time < label)
      | Expanded.Wait { from_id; to_id } ->
        let from_vertex, from_time = Expanded.node exp from_id in
        let to_vertex, to_time = Expanded.node exp to_id in
        check_int "waits stay put" from_vertex to_vertex;
        check_bool "waits go forward" true (from_time < to_time))
    (Expanded.arcs exp);
  check_int "one travel arc per time edge" (Tgraph.time_edge_count net) !travels

let expanded_matches_foremost =
  qcase ~count:100 "expanded-graph BFS = foremost sweep" ~print:print_params
    gen_params
    (fun params ->
      let net = random_tnet params in
      let n = Tgraph.n net in
      let exp = Expanded.build net in
      let ok = ref true in
      for s = 0 to n - 1 do
        let via_expansion = Expanded.earliest_arrival exp s in
        let res = Foremost.run net s in
        for v = 0 to n - 1 do
          let direct =
            if v = s then 0
            else
              match Foremost.distance res v with Some d -> d | None -> max_int
          in
          if via_expansion.(v) <> direct then ok := false
        done
      done;
      !ok)

(* --------------------------------------------------------------- *)
(* Disjoint *)

let edge_disjoint_parallel () =
  (* Two fully parallel timed paths 0->1->3 and 0->2->3. *)
  let g = Graph.create Directed ~n:4 [ (0, 1); (1, 3); (0, 2); (2, 3) ] in
  let net =
    Tgraph.create g ~lifetime:4
      [| Label.singleton 1; Label.singleton 2; Label.singleton 1;
         Label.singleton 2 |]
  in
  check_int "two edge-disjoint journeys" 2 (Disjoint.max_edge_disjoint net ~s:0 ~t:3)

let edge_disjoint_shared_bottleneck () =
  (* Both routes must cross the single time edge (1,3,@2). *)
  let g = Graph.create Directed ~n:4 [ (0, 1); (2, 1); (1, 3) ] in
  let net =
    Tgraph.create g ~lifetime:4
      [| Label.singleton 1; Label.singleton 1; Label.singleton 2 |]
  in
  check_int "bottleneck" 1 (Disjoint.max_edge_disjoint net ~s:0 ~t:3)

let edge_disjoint_multilabel_edge () =
  (* One static edge with two labels = two time edges, hence two
     time-edge-disjoint journeys over the same physical link. *)
  let g = Graph.create Directed ~n:2 [ (0, 1) ] in
  let net = Tgraph.create g ~lifetime:3 [| Label.of_list [ 1; 2 ] |] in
  check_int "two time edges, two journeys" 2
    (Disjoint.max_edge_disjoint net ~s:0 ~t:1)

let edge_disjoint_unreachable () =
  let g = Graph.create Directed ~n:3 [ (0, 1); (1, 2) ] in
  let net =
    Tgraph.create g ~lifetime:3 [| Label.singleton 2; Label.singleton 1 |]
  in
  check_int "labels out of order" 0 (Disjoint.max_edge_disjoint net ~s:0 ~t:2)

let edge_disjoint_validations () =
  let net = fixture () in
  Alcotest.check_raises "s = t" (Invalid_argument "Disjoint: s = t") (fun () ->
      ignore (Disjoint.max_edge_disjoint net ~s:1 ~t:1));
  Alcotest.check_raises "range"
    (Invalid_argument "Disjoint: endpoint out of range") (fun () ->
      ignore (Disjoint.max_edge_disjoint net ~s:0 ~t:9))

let vertex_disjoint_small () =
  (* Two internally disjoint timed routes. *)
  let g = Graph.create Directed ~n:4 [ (0, 1); (1, 3); (0, 2); (2, 3) ] in
  let net =
    Tgraph.create g ~lifetime:4
      [| Label.singleton 1; Label.singleton 2; Label.singleton 1;
         Label.singleton 2 |]
  in
  check_int "two" 2 (Disjoint.max_vertex_disjoint_exhaustive net ~s:0 ~t:3);
  check_int "separator two" 2
    (Disjoint.min_vertex_separator_exhaustive net ~s:0 ~t:3)

let vertex_disjoint_direct_edge () =
  let g = Graph.create Directed ~n:2 [ (0, 1) ] in
  let net = Tgraph.create g ~lifetime:2 [| Label.singleton 1 |] in
  check_int "direct journey, empty internals" 1
    (Disjoint.max_vertex_disjoint_exhaustive net ~s:0 ~t:1);
  check_int "inseparable" max_int
    (Disjoint.min_vertex_separator_exhaustive net ~s:0 ~t:1)

let vertex_disjoint_no_journey () =
  let g = Graph.create Directed ~n:3 [ (0, 1); (1, 2) ] in
  let net =
    Tgraph.create g ~lifetime:3 [| Label.singleton 2; Label.singleton 1 |]
  in
  check_int "zero journeys" 0
    (Disjoint.max_vertex_disjoint_exhaustive net ~s:0 ~t:2);
  check_int "empty separator suffices" 0
    (Disjoint.min_vertex_separator_exhaustive net ~s:0 ~t:2)

let menger_gap () =
  let net, s, t = Disjoint.menger_gap_example () in
  let disjoint = Disjoint.max_vertex_disjoint_exhaustive net ~s ~t in
  let separator = Disjoint.min_vertex_separator_exhaustive net ~s ~t in
  check_int "only one vertex-disjoint journey" 1 disjoint;
  check_int "but two vertices needed to cut" 2 separator;
  check_bool "Menger fails temporally" true (separator > disjoint)

let weak_duality =
  qcase ~count:80 "max disjoint <= min separator (weak duality)"
    ~print:print_params gen_small_nets
    (fun params ->
      let net = random_tnet params in
      let n = Tgraph.n net in
      let s = 0 and t = n - 1 in
      if s = t then true
      else begin
        let disjoint = Disjoint.max_vertex_disjoint_exhaustive net ~s ~t in
        let separator = Disjoint.min_vertex_separator_exhaustive net ~s ~t in
        disjoint <= separator
      end)

let edge_disjoint_dominates_vertex =
  qcase ~count:80 "vertex-disjoint <= edge-disjoint" ~print:print_params
    gen_small_nets
    (fun params ->
      let net = random_tnet params in
      let n = Tgraph.n net in
      let s = 0 and t = n - 1 in
      if s = t then true
      else
        Disjoint.max_vertex_disjoint_exhaustive net ~s ~t
        <= Disjoint.max_edge_disjoint net ~s ~t)

(* --------------------------------------------------------------- *)
(* Serial *)

let serial_roundtrip_fixture () =
  let net = fixture () in
  match Serial.of_string (Serial.to_string net) with
  | Error e -> Alcotest.fail e
  | Ok restored ->
    check_int "n" (Tgraph.n net) (Tgraph.n restored);
    check_int "lifetime" (Tgraph.lifetime net) (Tgraph.lifetime restored);
    Alcotest.(check string) "identical text" (Serial.to_string net)
      (Serial.to_string restored)

let serial_roundtrip_random =
  qcase ~count:100 "serialisation round-trips" ~print:print_params gen_params
    (fun params ->
      let net = random_tnet params in
      match Serial.of_string (Serial.to_string net) with
      | Error _ -> false
      | Ok restored -> Serial.to_string restored = Serial.to_string net)

let serial_parses_comments_and_blanks () =
  let text =
    "# a comment\n\ntemporal undirected n=3 lifetime=5\n# more\n0 1 : 2 4\n\n1 2 : 3\n"
  in
  match Serial.of_string text with
  | Error e -> Alcotest.fail e
  | Ok net ->
    check_int "n" 3 (Tgraph.n net);
    check_int "labels" 3 (Tgraph.label_count net)

let serial_empty_label_set () =
  match Serial.of_string "temporal directed n=2 lifetime=1\n0 1 :\n" with
  | Error e -> Alcotest.fail e
  | Ok net -> check_int "no labels" 0 (Tgraph.label_count net)

let serial_errors () =
  let expect_error text =
    match Serial.of_string text with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail ("should not parse: " ^ text)
  in
  expect_error "";
  expect_error "nonsense header\n";
  expect_error "temporal sideways n=2 lifetime=3\n";
  expect_error "temporal directed n=x lifetime=3\n";
  expect_error "temporal directed n=2 lifetime=3\n0 1 2 4\n";
  expect_error "temporal directed n=2 lifetime=3\n0 9 : 1\n";
  expect_error "temporal directed n=2 lifetime=3\n0 1 : 9\n" (* beyond a *)

let serial_file_roundtrip () =
  let net = fixture () in
  let path = Filename.temp_file "ephemeral" ".tnet" in
  Serial.to_file path net;
  (match Serial.of_file path with
  | Error e -> Alcotest.fail e
  | Ok restored ->
    Alcotest.(check string) "file roundtrip" (Serial.to_string net)
      (Serial.to_string restored));
  Sys.remove path

let serial_of_missing_file () =
  check_bool "missing file is an error" true
    (match Serial.of_file "/nonexistent/x.tnet" with
    | Error _ -> true
    | Ok _ -> false)

let serial_parser_total =
  qcase ~count:300 "parser never raises on arbitrary input"
    ~print:(Printf.sprintf "%S")
    QCheck2.Gen.(string_size ~gen:printable (int_range 0 120))
    (fun text ->
      match Serial.of_string text with Ok _ | Error _ -> true)

let serial_parser_total_structured =
  (* Near-valid inputs stress the edge-line parser specifically. *)
  qcase ~count:200 "parser never raises on near-valid input"
    ~print:(Printf.sprintf "%S")
    QCheck2.Gen.(
      let* n = int_range (-2) 5 in
      let* u = int_range (-1) 5 in
      let* v = int_range (-1) 5 in
      let* l = int_range (-3) 9 in
      return
        (Printf.sprintf "temporal directed n=%d lifetime=3\n%d %d : %d\n" n u v l))
    (fun text ->
      match Serial.of_string text with Ok _ | Error _ -> true)

let serial_gexf () =
  let gexf = Serial.to_gexf (fixture ()) in
  check_bool "xml header" true (contains gexf "<?xml");
  check_bool "dynamic mode" true (contains gexf "mode=\"dynamic\"");
  check_bool "undirected" true (contains gexf "defaultedgetype=\"undirected\"");
  check_bool "lifetime end" true (contains gexf "end=\"8\"");
  check_bool "a spell per label" true (contains gexf "<spell start=\"7\" end=\"7\"/>");
  let directed = Serial.to_gexf (directed_line ()) in
  check_bool "directed type" true (contains directed "defaultedgetype=\"directed\"")

let serial_dot () =
  let dot = Serial.to_dot (fixture ()) in
  check_bool "graph keyword" true (contains dot "graph");
  check_bool "labelled edge" true (contains dot "label=");
  let directed_dot = Serial.to_dot (directed_line ()) in
  check_bool "digraph for directed" true (contains directed_dot "digraph");
  check_bool "arrow" true (contains directed_dot "->")

(* --------------------------------------------------------------- *)
(* Tcc *)

let tcc_fixture () =
  let net = fixture () in
  (* The fixture is fully pairwise reachable (quickstart shows Treach
     and the underlying graph is connected). *)
  check_bool "temporally connected" true (Tcc.is_temporally_connected net);
  check_int "one scc" 1 (Tcc.scc_count net);
  check_int "all ordered pairs mutual" 20 (Tcc.open_connectivity_count net);
  check_int "clique of everyone" 5 (Tcc.largest_mutual_clique_exhaustive net)

let tcc_broken_path () =
  let g = Graph.create Undirected ~n:3 [ (0, 1); (1, 2) ] in
  let net =
    Tgraph.create g ~lifetime:3 [| Label.singleton 2; Label.singleton 1 |]
  in
  (* Journeys: 0<->1, 1<->2, 2->0; missing 0->2. *)
  let reach = Tcc.reachability_graph net in
  check_int "five arcs" 5 (Graph.m reach);
  check_bool "not temporally connected" false (Tcc.is_temporally_connected net);
  (* Chains close the loop: 0->1->...; all three sit in one SCC of the
     reachability digraph even though 0 -> 2 has no direct journey. *)
  check_int "one chain-scc" 1 (Tcc.scc_count net);
  (* Mutual graph: 0-1 and 1-2 only. *)
  check_int "mutual pairs" 4 (Tcc.open_connectivity_count net);
  check_int "largest mutual clique" 2 (Tcc.largest_mutual_clique_exhaustive net)

let tcc_no_labels () =
  let g = Graph.create Undirected ~n:4 [ (0, 1); (2, 3) ] in
  let net = Tgraph.create g ~lifetime:2 [| Label.empty; Label.empty |] in
  check_int "no reachability arcs" 0 (Graph.m (Tcc.reachability_graph net));
  check_int "four singleton sccs" 4 (Tcc.scc_count net);
  check_int "clique size 1" 1 (Tcc.largest_mutual_clique_exhaustive net)

let tcc_nontransitivity_witness () =
  (* 0 -> 1 @3 and 1 -> 2 @1: both arcs exist (0->1, 1->2? journeys:
     1 -> 2 at 1 yes; 0 -> 1 at 3 yes) but 0 -> 2 does not compose. *)
  let g = Graph.create Directed ~n:3 [ (0, 1); (1, 2) ] in
  let net =
    Tgraph.create g ~lifetime:3 [| Label.singleton 3; Label.singleton 1 |]
  in
  let reach = Tcc.reachability_graph net in
  check_bool "0 reaches 1" true (Graph.mem_edge reach 0 1);
  check_bool "1 reaches 2" true (Graph.mem_edge reach 1 2);
  check_bool "0 does NOT reach 2 (non-transitivity)" false
    (Graph.mem_edge reach 0 2)

let tcc_condensation_fixture () =
  let dag, comp = Tcc.condensation (fixture ()) in
  check_int "one class" 1 (Graph.n dag);
  check_int "no arcs" 0 (Graph.m dag);
  Array.iter (fun c -> check_int "all in class 0" 0 c) comp

let tcc_condensation_acyclic =
  qcase ~count:50 "condensations are DAGs consistent with scc"
    ~print:print_params gen_small_nets
    (fun params ->
      let net = random_tnet params in
      let dag, comp = Tcc.condensation net in
      comp = Tcc.scc net
      &&
      (* Acyclic: every SCC of the condensation is a singleton. *)
      let cond_comp = Sgraph.Components.strongly_connected_components dag in
      Array.length (Array.of_list (List.sort_uniq compare (Array.to_list cond_comp)))
      = Graph.n dag)

let tcc_clique_guard () =
  let g = Sgraph.Gen.clique Undirected 30 in
  let net = Temporal.Assignment.all_times g ~a:3 in
  Alcotest.check_raises "size guard"
    (Invalid_argument "Tcc.largest_mutual_clique_exhaustive: network too large")
    (fun () -> ignore (Tcc.largest_mutual_clique_exhaustive net))

let tcc_clique_matches_bruteforce =
  qcase ~count:40 "branch-and-bound = subset enumeration"
    ~print:print_params gen_small_nets
    (fun params ->
      let net = random_tnet params in
      let n = Tgraph.n net in
      let mutual = Tcc.mutual_graph net in
      (* Exhaustive subset check. *)
      let best = ref 1 in
      for mask = 1 to (1 lsl n) - 1 do
        let members = List.filter (fun v -> mask land (1 lsl v) <> 0) (List.init n Fun.id) in
        let is_clique =
          List.for_all
            (fun u ->
              List.for_all
                (fun v -> u = v || Graph.mem_edge mutual u v)
                members)
            members
        in
        if is_clique then best := Stdlib.max !best (List.length members)
      done;
      Tcc.largest_mutual_clique_exhaustive net = !best)

let tcc_scc_refines_mutuality =
  qcase ~count:60 "mutually reachable pairs share a chain-scc"
    ~print:print_params gen_small_nets
    (fun params ->
      let net = random_tnet params in
      let reach = Tcc.reachability_graph net in
      let comp = Tcc.scc net in
      let n = Tgraph.n net in
      let ok = ref true in
      for u = 0 to n - 1 do
        for v = 0 to n - 1 do
          if u <> v && Graph.mem_edge reach u v && Graph.mem_edge reach v u
          then if comp.(u) <> comp.(v) then ok := false
        done
      done;
      !ok)

let suites =
  [
    ( "flow.maxflow",
      [
        case "single edge" flow_single_edge;
        case "series bottleneck" flow_series;
        case "parallel paths" flow_parallel_paths;
        case "classic augmenting" flow_classic_augmenting;
        case "disconnected" flow_disconnected;
        case "unbounded edges" flow_unbounded_edges;
        case "validations" flow_validations;
        case "min cut side" flow_min_cut;
        flow_maxflow_mincut;
      ] );
    ( "temporal.expanded",
      [
        case "fixture structure" expanded_fixture_structure;
        case "travel arcs match stream" expanded_travel_arcs_match_stream;
        expanded_matches_foremost;
      ] );
    ( "temporal.disjoint",
      [
        case "edge-disjoint parallel" edge_disjoint_parallel;
        case "edge-disjoint bottleneck" edge_disjoint_shared_bottleneck;
        case "multi-label edge" edge_disjoint_multilabel_edge;
        case "unreachable" edge_disjoint_unreachable;
        case "validations" edge_disjoint_validations;
        case "vertex-disjoint small" vertex_disjoint_small;
        case "direct edge inseparable" vertex_disjoint_direct_edge;
        case "no journey" vertex_disjoint_no_journey;
        case "Menger gap (KKK phenomenon)" menger_gap;
        weak_duality;
        edge_disjoint_dominates_vertex;
      ] );
    ( "temporal.tcc",
      [
        case "fixture" tcc_fixture;
        case "broken path" tcc_broken_path;
        case "no labels" tcc_no_labels;
        case "non-transitivity witness" tcc_nontransitivity_witness;
        case "condensation fixture" tcc_condensation_fixture;
        tcc_condensation_acyclic;
        case "clique guard" tcc_clique_guard;
        tcc_clique_matches_bruteforce;
        tcc_scc_refines_mutuality;
      ] );
    ( "temporal.serial",
      [
        case "roundtrip fixture" serial_roundtrip_fixture;
        serial_roundtrip_random;
        case "comments and blanks" serial_parses_comments_and_blanks;
        case "empty label set" serial_empty_label_set;
        case "errors" serial_errors;
        case "file roundtrip" serial_file_roundtrip;
        case "missing file" serial_of_missing_file;
        serial_parser_total;
        serial_parser_total_structured;
        case "dot export" serial_dot;
        case "gexf export" serial_gexf;
      ] );
  ]
