(* Tests for lib/sgraph: graphs, generators, traversal, connectivity. *)

open Helpers
module Graph = Sgraph.Graph
module Gen = Sgraph.Gen
module Traverse = Sgraph.Traverse
module Metrics = Sgraph.Metrics
module Components = Sgraph.Components
module Unionfind = Sgraph.Unionfind

let sorted a =
  let c = Array.copy a in
  Array.sort compare c;
  c

(* --------------------------------------------------------------- *)
(* Graph *)

let graph_basic_directed () =
  let g = Graph.create Directed ~n:3 [ (0, 1); (1, 2); (2, 0) ] in
  check_int "n" 3 (Graph.n g);
  check_int "m" 3 (Graph.m g);
  check_int "arc_count" 3 (Graph.arc_count g);
  check_bool "directed" true (Graph.is_directed g);
  Alcotest.(check (array int)) "out 0" [| 1 |] (Graph.out_neighbors g 0);
  Alcotest.(check (array int)) "in 0" [| 2 |] (Graph.in_neighbors g 0);
  check_int "out deg" 1 (Graph.out_degree g 0);
  check_int "in deg" 1 (Graph.in_degree g 0)

let graph_basic_undirected () =
  let g = Graph.create Undirected ~n:3 [ (2, 0); (0, 1) ] in
  check_int "m" 2 (Graph.m g);
  check_int "arc_count" 4 (Graph.arc_count g);
  Alcotest.(check (array int)) "neighbors of 0 (both)" [| 1; 2 |]
    (sorted (Graph.out_neighbors g 0));
  check_bool "mem both ways" true (Graph.mem_edge g 1 0 && Graph.mem_edge g 0 1);
  Alcotest.(check (pair int int)) "normalised endpoints" (0, 2)
    (Graph.edge_endpoints g 0)

let graph_validations () =
  let raises msg f = Alcotest.check_raises msg (Invalid_argument msg) f in
  ignore raises;
  Alcotest.check_raises "out of range"
    (Invalid_argument "Graph.create: endpoint out of range (0,5)") (fun () ->
      ignore (Graph.create Directed ~n:3 [ (0, 5) ]));
  Alcotest.check_raises "self loop"
    (Invalid_argument "Graph.create: self-loop") (fun () ->
      ignore (Graph.create Directed ~n:3 [ (1, 1) ]));
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Graph.create: duplicate edge") (fun () ->
      ignore (Graph.create Directed ~n:3 [ (0, 1); (0, 1) ]));
  Alcotest.check_raises "duplicate after normalisation"
    (Invalid_argument "Graph.create: duplicate edge") (fun () ->
      ignore (Graph.create Undirected ~n:3 [ (0, 1); (1, 0) ]))

let graph_directed_antiparallel_ok () =
  let g = Graph.create Directed ~n:2 [ (0, 1); (1, 0) ] in
  check_int "two arcs" 2 (Graph.m g)

let graph_find_edge () =
  let g = Graph.create Directed ~n:3 [ (0, 1) ] in
  check_int_option "forward" (Some 0) (Graph.find_edge g 0 1);
  check_int_option "no backward arc" None (Graph.find_edge g 1 0)

let graph_reverse () =
  let g = Graph.create Directed ~n:3 [ (0, 1); (1, 2) ] in
  let r = Graph.reverse g in
  check_bool "reversed arc" true (Graph.mem_edge r 1 0);
  check_bool "old direction gone" false (Graph.mem_edge r 0 1);
  Alcotest.(check (pair int int)) "edge id preserved" (1, 0)
    (Graph.edge_endpoints r 0);
  (* Reversing twice restores the original arcs. *)
  let rr = Graph.reverse r in
  check_bool "double reverse" true (Graph.mem_edge rr 0 1)

let graph_reverse_undirected_identity () =
  let g = Gen.cycle 5 in
  check_bool "same structure" true (Graph.reverse g == g)

let graph_iter_edges () =
  let g = Graph.create Directed ~n:3 [ (0, 1); (1, 2) ] in
  let seen = ref [] in
  Graph.iter_edges g (fun e u v -> seen := (e, u, v) :: !seen);
  Alcotest.(check (list (triple int int int))) "all edges"
    [ (1, 1, 2); (0, 0, 1) ] !seen

let graph_out_arcs () =
  let g = Graph.create Undirected ~n:3 [ (0, 1); (0, 2) ] in
  let arcs = Graph.out_arcs g 0 in
  check_int "two arcs out" 2 (Array.length arcs);
  Array.iter
    (fun (e, target) ->
      Alcotest.(check (pair int int)) "edge id matches endpoints"
        (Graph.edge_endpoints g e)
        (0, target))
    arcs

(* --------------------------------------------------------------- *)
(* Generators *)

let gen_clique_directed () =
  let g = Gen.clique Directed 5 in
  check_int "m = n(n-1)" 20 (Graph.m g);
  for v = 0 to 4 do
    check_int "out degree" 4 (Graph.out_degree g v);
    check_int "in degree" 4 (Graph.in_degree g v)
  done

let gen_clique_undirected () =
  let g = Gen.clique Undirected 5 in
  check_int "m = n(n-1)/2" 10 (Graph.m g);
  check_int "degree" 4 (Graph.out_degree g 2)

let gen_clique_trivial () =
  check_int "K1 has no edges" 0 (Graph.m (Gen.clique Directed 1))

let gen_star () =
  let g = Gen.star 6 in
  check_int "m" 5 (Graph.m g);
  check_int "centre degree" 5 (Graph.out_degree g 0);
  for leaf = 1 to 5 do
    check_int "leaf degree" 1 (Graph.out_degree g leaf)
  done

let gen_path_cycle () =
  let p = Gen.path 5 in
  check_int "path m" 4 (Graph.m p);
  check_int "path end degree" 1 (Graph.out_degree p 0);
  check_int "path mid degree" 2 (Graph.out_degree p 2);
  let c = Gen.cycle 5 in
  check_int "cycle m" 5 (Graph.m c);
  for v = 0 to 4 do
    check_int "cycle degree" 2 (Graph.out_degree c v)
  done

let gen_complete_bipartite () =
  let g = Gen.complete_bipartite 3 4 in
  check_int "n" 7 (Graph.n g);
  check_int "m = a*b" 12 (Graph.m g);
  check_int "left degree" 4 (Graph.out_degree g 0);
  check_int "right degree" 3 (Graph.out_degree g 5);
  check_bool "no left-left edge" false (Graph.mem_edge g 0 1)

let gen_grid () =
  let g = Gen.grid 3 4 in
  check_int "n" 12 (Graph.n g);
  check_int "m = r(c-1)+c(r-1)" ((3 * 3) + (4 * 2)) (Graph.m g);
  check_int "corner degree" 2 (Graph.out_degree g 0);
  check_bool "connected" true (Components.is_connected g)

let gen_hypercube () =
  let g = Gen.hypercube 4 in
  check_int "n = 2^d" 16 (Graph.n g);
  check_int "m = d*2^(d-1)" 32 (Graph.m g);
  for v = 0 to 15 do
    check_int "regular" 4 (Graph.out_degree g v)
  done;
  check_int "diameter = d" 4 (Metrics.diameter g)

let gen_binary_tree () =
  let g = Gen.binary_tree 7 in
  check_int "m = n-1" 6 (Graph.m g);
  check_int "root degree" 2 (Graph.out_degree g 0);
  check_bool "connected" true (Components.is_connected g)

let gen_wheel () =
  let g = Gen.wheel 6 in
  check_int "m = 2(n-1)" 10 (Graph.m g);
  check_int "hub degree" 5 (Graph.out_degree g 0);
  check_int "rim degree" 3 (Graph.out_degree g 1);
  check_int "diameter" 2 (Metrics.diameter g)

let gen_barbell () =
  let g = Gen.barbell 4 in
  check_int "n" 8 (Graph.n g);
  check_int "m = 2*C(4,2)+1" 13 (Graph.m g);
  check_bool "bridge" true (Graph.mem_edge g 3 4);
  check_bool "connected" true (Components.is_connected g)

let gen_lollipop () =
  let g = Gen.lollipop 4 3 in
  check_int "n" 7 (Graph.n g);
  check_int "m" (6 + 3) (Graph.m g);
  check_int "tail end degree" 1 (Graph.out_degree g 6)

let gen_random_tree =
  qcase "random tree is a spanning tree" ~print:print_params
    gen_params
    (fun (n, seed, _, _) ->
      let g = Gen.random_tree (Prng.Rng.create seed) n in
      Graph.n g = n && Graph.m g = n - 1 && Components.is_connected g)

let gen_random_tree_larger () =
  let g = Gen.random_tree (rng ()) 100 in
  check_int "m" 99 (Graph.m g);
  check_bool "connected" true (Components.is_connected g)

let gen_gnp_extremes () =
  let empty = Gen.gnp (rng ()) ~n:10 ~p:0. in
  check_int "p=0 empty" 0 (Graph.m empty);
  let full = Gen.gnp (rng ()) ~n:10 ~p:1. in
  check_int "p=1 complete" 45 (Graph.m full)

let gen_gnp_density () =
  let total = ref 0 in
  let trials = 50 in
  let g0 = rng () in
  for _ = 1 to trials do
    total := !total + Graph.m (Gen.gnp (Prng.Rng.split g0) ~n:40 ~p:0.3)
  done;
  let mean = float_of_int !total /. float_of_int trials in
  let expected = 0.3 *. float_of_int (40 * 39 / 2) in
  check_bool "edge count near p*C(n,2)" true
    (abs_float (mean -. expected) < 0.1 *. expected)

let gen_gnm () =
  let g = Gen.gnm (rng ()) ~n:10 ~m:17 in
  check_int "exactly m edges" 17 (Graph.m g)

let gen_gnm_full () =
  let g = Gen.gnm (rng ()) ~n:6 ~m:15 in
  check_int "complete" 15 (Graph.m g);
  check_int "degree" 5 (Graph.out_degree g 0)

let gen_gnm_invalid () =
  Alcotest.check_raises "m too large"
    (Invalid_argument "Gen.gnm: m out of range") (fun () ->
      ignore (Gen.gnm (rng ()) ~n:4 ~m:7))

let gen_barabasi_albert () =
  let n = 60 and m = 3 in
  let g = Gen.barabasi_albert (rng ()) ~n ~m in
  check_int "n" n (Graph.n g);
  check_int "edge count" ((m * (m + 1) / 2) + ((n - m - 1) * m)) (Graph.m g);
  check_bool "connected" true (Components.is_connected g);
  (* Preferential attachment concentrates degree on early vertices. *)
  let degrees = Array.init n (Graph.out_degree g) in
  let max_degree = Array.fold_left Stdlib.max 0 degrees in
  check_bool "hubs emerge" true (max_degree >= 3 * m);
  (* Every late vertex has degree >= m. *)
  for v = m + 1 to n - 1 do
    check_bool "attachment degree" true (degrees.(v) >= m)
  done

let gen_barabasi_invalid () =
  Alcotest.check_raises "m = 0"
    (Invalid_argument "Gen.barabasi_albert: need 1 <= m < n") (fun () ->
      ignore (Gen.barabasi_albert (rng ()) ~n:5 ~m:0));
  Alcotest.check_raises "m >= n"
    (Invalid_argument "Gen.barabasi_albert: need 1 <= m < n") (fun () ->
      ignore (Gen.barabasi_albert (rng ()) ~n:5 ~m:5))

let gen_watts_strogatz_lattice () =
  (* beta = 0: the pure ring lattice, 2k-regular. *)
  let g = Gen.watts_strogatz (rng ()) ~n:20 ~k:2 ~beta:0. in
  check_int "m = n*k" 40 (Graph.m g);
  for v = 0 to 19 do
    check_int "2k-regular" 4 (Graph.out_degree g v)
  done;
  check_bool "connected" true (Components.is_connected g)

let gen_watts_strogatz_rewired () =
  let g = Gen.watts_strogatz (rng ()) ~n:40 ~k:3 ~beta:0.3 in
  check_int "edge count preserved" 120 (Graph.m g);
  (* Rewiring shortens paths: the small-world diameter sits well below
     the lattice's n/(2k) = 6.67-ish bound... compare loosely. *)
  let lattice = Gen.watts_strogatz (rng ()) ~n:40 ~k:3 ~beta:0. in
  check_bool "not slower than the lattice" true
    (Components.is_connected g = false
     || Metrics.diameter g <= Metrics.diameter lattice + 1)

let gen_watts_strogatz_invalid () =
  Alcotest.check_raises "k too large"
    (Invalid_argument "Gen.watts_strogatz: need 2k < n - 1") (fun () ->
      ignore (Gen.watts_strogatz (rng ()) ~n:6 ~k:3 ~beta:0.1));
  Alcotest.check_raises "beta range"
    (Invalid_argument "Gen.watts_strogatz: beta not in [0,1]") (fun () ->
      ignore (Gen.watts_strogatz (rng ()) ~n:10 ~k:2 ~beta:1.5))

(* --------------------------------------------------------------- *)
(* Traverse *)

let bfs_path () =
  let g = Gen.path 5 in
  Alcotest.(check (array int)) "distances" [| 0; 1; 2; 3; 4 |]
    (Traverse.bfs g 0)

let bfs_directed_one_way () =
  let g = Graph.create Directed ~n:3 [ (0, 1); (1, 2) ] in
  Alcotest.(check (array int)) "forward" [| 0; 1; 2 |] (Traverse.bfs g 0);
  let back = Traverse.bfs g 2 in
  check_int "unreachable" Traverse.unreachable back.(0)

let bfs_reverse_directed () =
  let g = Graph.create Directed ~n:3 [ (0, 1); (1, 2) ] in
  Alcotest.(check (array int)) "distances to 2" [| 2; 1; 0 |]
    (Traverse.bfs_reverse g 2)

let bfs_tree_parents () =
  let g = Gen.path 4 in
  let dist, parent = Traverse.bfs_tree g 0 in
  check_int "root parent" (-1) parent.(0);
  for v = 1 to 3 do
    check_int "parent is one closer" (dist.(v) - 1) dist.(parent.(v))
  done

let dfs_order_visits_reachable () =
  let g = Graph.create Directed ~n:4 [ (0, 1); (0, 2); (3, 0) ] in
  let order = Traverse.dfs_order g 0 in
  check_int "three reachable" 3 (List.length order);
  check_bool "3 not visited" false (List.mem 3 order);
  check_int "starts at root" 0 (List.hd order)

let reachable_count () =
  let g = Graph.create Directed ~n:4 [ (0, 1); (2, 3) ] in
  check_int "component of 0" 2 (Traverse.reachable_count g 0);
  check_int "component of 2" 2 (Traverse.reachable_count g 2)

let bfs_bad_source () =
  Alcotest.check_raises "source range"
    (Invalid_argument "Traverse.bfs: source out of range") (fun () ->
      ignore (Traverse.bfs (Gen.path 3) 5))

(* --------------------------------------------------------------- *)
(* Unionfind / Components *)

let unionfind_basic () =
  let uf = Unionfind.create 5 in
  check_int "initial count" 5 (Unionfind.count uf);
  check_bool "union merges" true (Unionfind.union uf 0 1);
  check_bool "second union is a no-op" false (Unionfind.union uf 1 0);
  check_bool "same" true (Unionfind.same uf 0 1);
  check_bool "not same" false (Unionfind.same uf 0 2);
  check_int "count after one merge" 4 (Unionfind.count uf)

let unionfind_chain () =
  let uf = Unionfind.create 10 in
  for i = 0 to 8 do
    ignore (Unionfind.union uf i (i + 1))
  done;
  check_int "one set" 1 (Unionfind.count uf);
  check_bool "ends joined" true (Unionfind.same uf 0 9)

let components_split () =
  let g = Graph.create Undirected ~n:6 [ (0, 1); (1, 2); (3, 4) ] in
  let comp = Components.components g in
  check_int "count" 3 (Components.component_count g);
  check_bool "0 and 2 together" true (comp.(0) = comp.(2));
  check_bool "0 and 3 apart" true (comp.(0) <> comp.(3));
  Alcotest.(check (array int)) "sizes" [| 3; 2; 1 |]
    (Components.component_sizes g);
  check_int "largest" 3 (Components.largest_component g);
  check_bool "not connected" false (Components.is_connected g)

let components_direction_blind () =
  let g = Graph.create Directed ~n:3 [ (0, 1); (2, 1) ] in
  check_bool "weakly connected" true (Components.is_connected g)

let scc_directed_cycle () =
  let g = Graph.create Directed ~n:4 [ (0, 1); (1, 2); (2, 3); (3, 0) ] in
  check_bool "strongly connected" true (Components.is_strongly_connected g)

let scc_directed_path () =
  let g = Graph.create Directed ~n:3 [ (0, 1); (1, 2) ] in
  let comp = Components.strongly_connected_components g in
  check_bool "all separate" true
    (comp.(0) <> comp.(1) && comp.(1) <> comp.(2) && comp.(0) <> comp.(2));
  check_bool "not strongly connected" false (Components.is_strongly_connected g)

let scc_two_cycles () =
  let g =
    Graph.create Directed ~n:6
      [ (0, 1); (1, 2); (2, 0); (3, 4); (4, 5); (5, 3); (0, 3) ]
  in
  let comp = Components.strongly_connected_components g in
  check_bool "cycle 1 together" true (comp.(0) = comp.(1) && comp.(1) = comp.(2));
  check_bool "cycle 2 together" true (comp.(3) = comp.(4) && comp.(4) = comp.(5));
  check_bool "cycles separate" true (comp.(0) <> comp.(3))

let scc_matches_components_on_undirected =
  qcase "SCC = weak components on undirected graphs" ~print:print_params
    gen_params
    (fun (n, seed, _, _) ->
      let g = random_graph ~n ~seed in
      let weak = Components.components g in
      let strong = Components.strongly_connected_components g in
      (* Same partition up to renaming: equal iff pairwise-same agree. *)
      let ok = ref true in
      for u = 0 to n - 1 do
        for v = 0 to n - 1 do
          if weak.(u) = weak.(v) <> (strong.(u) = strong.(v)) then ok := false
        done
      done;
      !ok)

let scc_clique () =
  check_bool "directed clique strongly connected" true
    (Components.is_strongly_connected (Gen.clique Directed 6))

(* --------------------------------------------------------------- *)
(* Metrics *)

let metrics_known () =
  check_int "path diameter" 4 (Metrics.diameter (Gen.path 5));
  check_int "cycle diameter" 3 (Metrics.diameter (Gen.cycle 6));
  check_int "clique diameter" 1 (Metrics.diameter (Gen.clique Undirected 5));
  check_int "star diameter" 2 (Metrics.diameter (Gen.star 6));
  check_int "star radius" 1 (Metrics.radius (Gen.star 6));
  check_int "single vertex" 0 (Metrics.diameter (Gen.path 1))

let metrics_disconnected () =
  let g = Graph.create Undirected ~n:4 [ (0, 1) ] in
  check_int "diameter infinite" Traverse.unreachable (Metrics.diameter g)

let metrics_eccentricity () =
  let g = Gen.path 5 in
  check_int "end" 4 (Metrics.eccentricity g 0);
  check_int "middle" 2 (Metrics.eccentricity g 2)

let metrics_average_distance () =
  (* Path 0-1-2: ordered pairs (6): distances 1,1,1,1,2,2 -> mean 4/3. *)
  check_float ~eps:1e-9 "path of 3" (4. /. 3.)
    (Metrics.average_distance (Gen.path 3))

let metrics_radius_diameter_bounds =
  qcase ~count:80 "radius <= diameter <= 2*radius on connected graphs"
    ~print:print_params gen_params
    (fun (n, seed, _, _) ->
      let g = random_graph ~n ~seed in
      if not (Components.is_connected g) then true
      else begin
        let d = Metrics.diameter g and r = Metrics.radius g in
        r <= d && d <= 2 * r
      end)

let metrics_matrix_symmetric =
  qcase "distance matrix symmetric on undirected graphs" ~print:print_params
    gen_params
    (fun (n, seed, _, _) ->
      let g = random_graph ~n ~seed in
      let d = Metrics.distance_matrix g in
      let ok = ref true in
      for u = 0 to n - 1 do
        for v = 0 to n - 1 do
          if d.(u).(v) <> d.(v).(u) then ok := false
        done
      done;
      !ok)

let suites =
  [
    ( "sgraph.graph",
      [
        case "directed basics" graph_basic_directed;
        case "undirected basics" graph_basic_undirected;
        case "validations" graph_validations;
        case "antiparallel arcs allowed" graph_directed_antiparallel_ok;
        case "find_edge" graph_find_edge;
        case "reverse" graph_reverse;
        case "reverse undirected identity" graph_reverse_undirected_identity;
        case "iter_edges" graph_iter_edges;
        case "out_arcs edge ids" graph_out_arcs;
      ] );
    ( "sgraph.gen",
      [
        case "clique directed" gen_clique_directed;
        case "clique undirected" gen_clique_undirected;
        case "clique trivial" gen_clique_trivial;
        case "star" gen_star;
        case "path and cycle" gen_path_cycle;
        case "complete bipartite" gen_complete_bipartite;
        case "grid" gen_grid;
        case "hypercube" gen_hypercube;
        case "binary tree" gen_binary_tree;
        case "wheel" gen_wheel;
        case "barbell" gen_barbell;
        case "lollipop" gen_lollipop;
        gen_random_tree;
        case "random tree larger" gen_random_tree_larger;
        case "gnp extremes" gen_gnp_extremes;
        case "gnp density" gen_gnp_density;
        case "gnm count" gen_gnm;
        case "gnm full" gen_gnm_full;
        case "gnm invalid" gen_gnm_invalid;
        case "barabasi-albert" gen_barabasi_albert;
        case "barabasi invalid" gen_barabasi_invalid;
        case "watts-strogatz lattice" gen_watts_strogatz_lattice;
        case "watts-strogatz rewired" gen_watts_strogatz_rewired;
        case "watts-strogatz invalid" gen_watts_strogatz_invalid;
      ] );
    ( "sgraph.traverse",
      [
        case "bfs path" bfs_path;
        case "bfs directed one-way" bfs_directed_one_way;
        case "bfs reverse" bfs_reverse_directed;
        case "bfs tree parents" bfs_tree_parents;
        case "dfs order" dfs_order_visits_reachable;
        case "reachable count" reachable_count;
        case "bfs bad source" bfs_bad_source;
      ] );
    ( "sgraph.components",
      [
        case "unionfind basics" unionfind_basic;
        case "unionfind chain" unionfind_chain;
        case "components split" components_split;
        case "direction blind" components_direction_blind;
        case "scc directed cycle" scc_directed_cycle;
        case "scc directed path" scc_directed_path;
        case "scc two cycles" scc_two_cycles;
        scc_matches_components_on_undirected;
        case "scc clique" scc_clique;
      ] );
    ( "sgraph.metrics",
      [
        case "known diameters" metrics_known;
        case "disconnected" metrics_disconnected;
        case "eccentricity" metrics_eccentricity;
        case "average distance" metrics_average_distance;
        metrics_radius_diameter_bounds;
        metrics_matrix_symmetric;
      ] );
  ]
