(* Tests for the Random Phone-Call baseline (paper section 1.1). *)

open Helpers
module Gen = Sgraph.Gen
module Rumor = Phonecall.Rumor

let push_completes_on_clique () =
  let g = Gen.clique Undirected 32 in
  let result = Rumor.spread (rng ()) g Push ~source:0 in
  (match result.rounds with
  | None -> Alcotest.fail "push must finish on a clique"
  | Some rounds ->
    check_bool "at least log2 n rounds" true (rounds >= 5);
    check_bool "not absurdly many" true (rounds < 64));
  check_bool "transmissions at least n-1" true (result.transmissions >= 31)

let pull_completes_on_clique () =
  let result = Rumor.spread (rng ()) (Gen.clique Undirected 32) Pull ~source:3 in
  check_bool "pull finishes" true (result.rounds <> None)

let push_pull_completes () =
  let result =
    Rumor.spread (rng ()) (Gen.clique Undirected 64) Push_pull ~source:1
  in
  check_bool "finishes" true (result.rounds <> None)

let history_monotone () =
  let result = Rumor.spread (rng ()) (Gen.clique Undirected 24) Push ~source:0 in
  let rec check_monotone = function
    | a :: (b :: _ as rest) ->
      check_bool "non-decreasing" true (a <= b);
      check_monotone rest
    | _ -> ()
  in
  check_monotone result.informed_per_round;
  check_int "starts at 1" 1 (List.hd result.informed_per_round);
  check_int "ends with everyone" 24
    (List.nth result.informed_per_round
       (List.length result.informed_per_round - 1))

let single_vertex_trivial () =
  let g = Sgraph.Graph.create Undirected ~n:1 [] in
  let result = Rumor.spread (rng ()) g Push ~source:0 in
  check_int_option "zero rounds" (Some 0) result.rounds;
  check_int "no messages" 0 result.transmissions

let max_rounds_cap () =
  (* A path spreads slowly; 1 round cannot finish n = 16. *)
  let result =
    Rumor.spread ~max_rounds:1 (rng ()) (Gen.path 16) Push ~source:0
  in
  check_bool "capped" true (result.rounds = None)

let bad_source () =
  Alcotest.check_raises "source range"
    (Invalid_argument "Rumor.spread: bad source") (fun () ->
      ignore (Rumor.spread (rng ()) (Gen.path 4) Push ~source:9))

let isolated_vertex_rejected () =
  let g = Sgraph.Graph.create Undirected ~n:3 [ (0, 1) ] in
  Alcotest.check_raises "nobody to call"
    (Invalid_argument "Rumor.spread: vertex without neighbours") (fun () ->
      ignore (Rumor.spread (rng ()) g Push ~source:0))

let strategy_names () =
  Alcotest.(check string) "push" "push" (Rumor.strategy_name Push);
  Alcotest.(check string) "pull" "pull" (Rumor.strategy_name Pull);
  Alcotest.(check string) "push-pull" "push-pull" (Rumor.strategy_name Push_pull)

let mean_rounds_sane () =
  let mean, sd = Rumor.mean_rounds (rng ()) (Gen.clique Undirected 32) Push ~trials:10 in
  check_bool "mean in a plausible band" true (mean > 4. && mean < 40.);
  check_bool "sd finite" true (Float.is_finite sd)

let push_pull_not_slower_much () =
  (* Statistically, push-pull <= push on the clique; allow slack of 2. *)
  let g = Gen.clique Undirected 64 in
  let push, _ = Rumor.mean_rounds (Prng.Rng.create 3) g Push ~trials:20 in
  let both, _ = Rumor.mean_rounds (Prng.Rng.create 3) g Push_pull ~trials:20 in
  check_bool
    (Printf.sprintf "push-pull %.1f <= push %.1f + 2" both push)
    true (both <= push +. 2.)

let suites =
  [
    ( "phonecall.rumor",
      [
        case "push completes" push_completes_on_clique;
        case "pull completes" pull_completes_on_clique;
        case "push-pull completes" push_pull_completes;
        case "history monotone" history_monotone;
        case "single vertex" single_vertex_trivial;
        case "max rounds cap" max_rounds_cap;
        case "bad source" bad_source;
        case "isolated vertex rejected" isolated_vertex_rejected;
        case "strategy names" strategy_names;
        case "mean_rounds" mean_rounds_sane;
        case "push-pull competitive" push_pull_not_slower_much;
      ] );
  ]
