(* Tests for the extended journey taxonomy: Reverse_foremost, Shortest,
   Fastest, plus Centrality and Profile. *)

open Helpers
module Graph = Sgraph.Graph
open Temporal

(* Brute-force references over all journeys of a small network.
   enumerate f: calls f on every journey (as (first_label, last_label,
   hops, target)) starting at s. *)
let enumerate_journeys net s f =
  let rec explore v time ~first ~hops =
    Array.iter
      (fun (_, target, labels) ->
        List.iter
          (fun label ->
            if label > time then begin
              let first = match first with None -> Some label | x -> x in
              f ~first:(Option.get first) ~last:label ~hops:(hops + 1) ~target;
              explore target label ~first ~hops:(hops + 1)
            end)
          (Label.to_list labels))
      (Tgraph.crossings_out net v)
  in
  explore s 0 ~first:None ~hops:0

let brute_min_hops net s t =
  if s = t then Some 0
  else begin
    let best = ref max_int in
    enumerate_journeys net s (fun ~first:_ ~last:_ ~hops ~target ->
        if target = t && hops < !best then best := hops);
    if !best = max_int then None else Some !best
  end

let brute_min_duration net s t =
  if s = t then Some 0
  else begin
    let best = ref max_int in
    enumerate_journeys net s (fun ~first ~last ~hops:_ ~target ->
        if target = t && last - first < !best then best := last - first);
    if !best = max_int then None else Some !best
  end

let brute_latest_departure net s t ~deadline =
  if s = t then None
  else begin
    let best = ref (-1) in
    enumerate_journeys net s (fun ~first ~last ~hops:_ ~target ->
        if target = t && last <= deadline && first > !best then best := first);
    if !best < 0 then None else Some !best
  end

(* Small-but-rich generator: tighter than gen_params so enumeration stays
   cheap (journey counts blow up with labels). *)
let gen_small =
  QCheck2.Gen.(
    let* n = int_range 2 5 in
    let* seed = int_range 0 5_000 in
    let* a = int_range 1 6 in
    return (n, seed, a, 1))

(* --------------------------------------------------------------- *)
(* Reverse_foremost *)

let reverse_fixture () =
  let net = fixture () in
  let r = Reverse_foremost.run net 2 in
  check_int "target" 2 (Reverse_foremost.target r);
  check_int "deadline defaults to lifetime" 8 (Reverse_foremost.deadline r);
  (* Journeys into 2 must end on {1,2}@5 or {2,4}@{2,8}. *)
  check_int_option "latest presence of 4 (direct @8)" (Some 7)
    (Reverse_foremost.latest_presence r 4);
  check_int_option "latest departure of 4" (Some 8)
    (Reverse_foremost.latest_departure r 4);
  check_int_option "target presence = deadline" (Some 8)
    (Reverse_foremost.latest_presence r 2);
  check_bool "target has no departure" true
    (Reverse_foremost.latest_departure r 2 = None)

let reverse_deadline_restricts () =
  let net = fixture () in
  let r = Reverse_foremost.run ~deadline:4 net 2 in
  (* By time 4 the only arcs into 2 used so far are {2,4}@2; 4 must be
     present before 2, and 0 before 1 ({0,4}@1). *)
  check_int_option "4 presence" (Some 1) (Reverse_foremost.latest_presence r 4);
  check_int_option "0 presence" (Some 0) (Reverse_foremost.latest_presence r 0);
  check_bool "3 cannot make it by 4" true
    (Reverse_foremost.latest_presence r 3 = None)

let reverse_bad_args () =
  Alcotest.check_raises "bad target"
    (Invalid_argument "Reverse_foremost.run: target out of range") (fun () ->
      ignore (Reverse_foremost.run (fixture ()) 77));
  Alcotest.check_raises "bad deadline"
    (Invalid_argument "Reverse_foremost.run: deadline must be positive")
    (fun () -> ignore (Reverse_foremost.run ~deadline:0 (fixture ()) 0))

let reverse_reachable_count () =
  let net = fixture () in
  check_int "everyone can reach 2" 5
    (Reverse_foremost.reachable_count (Reverse_foremost.run net 2))

let reverse_matches_brute_force =
  qcase ~count:120 "latest departure = brute force" ~print:print_params
    gen_small
    (fun params ->
      let net = random_tnet params in
      let n = Tgraph.n net in
      let deadline = Tgraph.lifetime net in
      let ok = ref true in
      for t = 0 to n - 1 do
        let r = Reverse_foremost.run net t in
        for s = 0 to n - 1 do
          if s <> t then begin
            let expected = brute_latest_departure net s t ~deadline in
            if Reverse_foremost.latest_departure r s <> expected then ok := false
          end
        done
      done;
      !ok)

let reverse_journeys_valid =
  qcase ~count:120 "reverse witnesses are valid and depart latest"
    ~print:print_params gen_small
    (fun params ->
      let net = random_tnet params in
      let n = Tgraph.n net in
      let ok = ref true in
      for t = 0 to n - 1 do
        let r = Reverse_foremost.run net t in
        for s = 0 to n - 1 do
          match Reverse_foremost.journey_from net r s with
          | None -> if Reverse_foremost.latest_presence r s <> None then ok := false
          | Some [] -> if s <> t then ok := false
          | Some journey ->
            if not (Journey.is_journey net ~source:s ~target:t journey) then
              ok := false;
            if Journey.departure journey <> Reverse_foremost.latest_departure r s
            then ok := false;
            (match Journey.arrival journey with
            | Some a -> if a > Reverse_foremost.deadline r then ok := false
            | None -> ok := false)
        done
      done;
      !ok)

(* --------------------------------------------------------------- *)
(* Shortest *)

let shortest_fixture () =
  let net = fixture () in
  let r = Shortest.run net 0 in
  check_int_option "self" (Some 0) (Shortest.hops r 0);
  check_int_option "direct to 4" (Some 1) (Shortest.hops r 4);
  check_int_option "direct to 1" (Some 1) (Shortest.hops r 1);
  (* 2 is two hops from 0 either way. *)
  check_int_option "two hops to 2" (Some 2) (Shortest.hops r 2);
  check_int_option "two hops to 3" (Some 2) (Shortest.hops r 3);
  check_int_option "max hops" (Some 2) (Shortest.max_hops r)

let shortest_vs_foremost_tradeoff () =
  (* A net where the fewest-hop journey arrives later than the foremost:
     0-2 direct at time 9; 0-1-2 at times 1,2. *)
  let g = Graph.create Undirected ~n:3 [ (0, 2); (0, 1); (1, 2) ] in
  let net =
    Tgraph.create g ~lifetime:9
      [| Label.singleton 9; Label.singleton 1; Label.singleton 2 |]
  in
  let short = Shortest.run net 0 in
  let fore = Foremost.run net 0 in
  check_int_option "one hop suffices" (Some 1) (Shortest.hops short 2);
  check_int_option "but arrives at 9" (Some 9)
    (Shortest.arrival_at_best_hops short 2);
  check_int_option "foremost arrives at 2" (Some 2) (Foremost.distance fore 2)

let shortest_reachability_agrees =
  qcase ~count:120 "hops finite iff foremost-reachable" ~print:print_params
    gen_small
    (fun params ->
      let net = random_tnet params in
      let n = Tgraph.n net in
      let ok = ref true in
      for s = 0 to n - 1 do
        let short = Shortest.run net s in
        let fore = Foremost.run net s in
        for t = 0 to n - 1 do
          if (Shortest.hops short t = None) <> (Foremost.distance fore t = None)
          then ok := false
        done
      done;
      !ok)

let shortest_matches_brute_force =
  qcase ~count:120 "hop counts = brute force" ~print:print_params gen_small
    (fun params ->
      let net = random_tnet params in
      let n = Tgraph.n net in
      let ok = ref true in
      for s = 0 to n - 1 do
        let r = Shortest.run net s in
        for t = 0 to n - 1 do
          if Shortest.hops r t <> brute_min_hops net s t then ok := false
        done
      done;
      !ok)

let shortest_journeys_valid =
  qcase ~count:120 "shortest witnesses are valid with exactly hops steps"
    ~print:print_params gen_small
    (fun params ->
      let net = random_tnet params in
      let n = Tgraph.n net in
      let ok = ref true in
      for s = 0 to n - 1 do
        let r = Shortest.run net s in
        for t = 0 to n - 1 do
          match Shortest.journey_to net r t with
          | None -> if Shortest.hops r t <> None then ok := false
          | Some journey ->
            if not (Journey.is_journey net ~source:s ~target:t journey) then
              ok := false;
            if Some (Journey.length journey) <> Shortest.hops r t then
              ok := false
        done
      done;
      !ok)

let shortest_lower_bounded_by_static =
  qcase ~count:80 "hops >= static hop distance" ~print:print_params gen_small
    (fun params ->
      let net = random_tnet params in
      let g = Tgraph.graph net in
      let n = Tgraph.n net in
      let ok = ref true in
      for s = 0 to n - 1 do
        let static = Sgraph.Traverse.bfs g s in
        let r = Shortest.run net s in
        for t = 0 to n - 1 do
          match Shortest.hops r t with
          | Some h -> if h < static.(t) then ok := false
          | None -> ()
        done
      done;
      !ok)

let shortest_pareto_fixture () =
  let net = fixture () in
  let r = Shortest.run net 0 in
  Alcotest.(check (list (pair int int))) "source" [ (0, 0) ] (Shortest.pareto r 0);
  (* 0 -> 2: two hops arrive at 2, already foremost: a single point. *)
  Alcotest.(check (list (pair int int))) "single point" [ (2, 2) ]
    (Shortest.pareto r 2)

let shortest_pareto_tradeoff () =
  let g = Graph.create Undirected ~n:3 [ (0, 2); (0, 1); (1, 2) ] in
  let net =
    Tgraph.create g ~lifetime:9
      [| Label.singleton 9; Label.singleton 1; Label.singleton 2 |]
  in
  let r = Shortest.run net 0 in
  Alcotest.(check (list (pair int int))) "two-point staircase"
    [ (1, 9); (2, 2) ]
    (Shortest.pareto r 2)

let shortest_pareto_properties =
  qcase ~count:80 "pareto fronts are consistent staircases"
    ~print:print_params gen_params
    (fun params ->
      let net = random_tnet params in
      let n = Tgraph.n net in
      let ok = ref true in
      for s = 0 to n - 1 do
        let r = Shortest.run net s in
        let foremost = Foremost.run net s in
        for v = 0 to n - 1 do
          match Shortest.pareto r v with
          | [] -> if Shortest.hops r v <> None then ok := false
          | front ->
            (* Endpoints anchor to Shortest and Foremost. *)
            let h0, a0 = List.hd front in
            if Some h0 <> Shortest.hops r v then ok := false;
            if v <> s && Some a0 <> Shortest.arrival_at_best_hops r v then
              ok := false;
            let _, last_arrival = List.nth front (List.length front - 1) in
            let expected =
              if v = s then Some 0 else Foremost.distance foremost v
            in
            if Some last_arrival <> expected then ok := false;
            (* Staircase: hops strictly increase, arrivals strictly
               decrease. *)
            let rec monotone = function
              | (h1, a1) :: ((h2, a2) :: _ as rest) ->
                h1 < h2 && a1 > a2 && monotone rest
              | _ -> true
            in
            if not (monotone front) then ok := false
        done
      done;
      !ok)

let shortest_bad_args () =
  Alcotest.check_raises "bad source"
    (Invalid_argument "Shortest.run: source out of range") (fun () ->
      ignore (Shortest.run (fixture ()) 9));
  Alcotest.check_raises "bad start_time"
    (Invalid_argument "Shortest.run: start_time must be >= 1") (fun () ->
      ignore (Shortest.run ~start_time:0 (fixture ()) 0))

(* --------------------------------------------------------------- *)
(* Fastest *)

let fastest_fixture () =
  let net = fixture () in
  let r = Fastest.run net 0 in
  check_int_option "self" (Some 0) (Fastest.duration r 0);
  (* 0 -> 4 direct at 1: transit 0. *)
  check_int_option "direct transit 0" (Some 0) (Fastest.duration r 4);
  check_bool "window of 4" true (Fastest.window r 4 = Some (1, 1))

let fastest_waiting_pays () =
  (* 0-1 at {1, 8}; 1-2 at {9}.  Foremost departs at 1 (duration 8); the
     fastest departs at 8 (duration 1). *)
  let g = Graph.create Undirected ~n:3 [ (0, 1); (1, 2) ] in
  let net =
    Tgraph.create g ~lifetime:9
      [| Label.of_list [ 1; 8 ]; Label.singleton 9 |]
  in
  let r = Fastest.run net 0 in
  check_int_option "duration 1" (Some 1) (Fastest.duration r 2);
  check_bool "window (8,9)" true (Fastest.window r 2 = Some (8, 9));
  let fore = Foremost.run net 0 in
  check_int_option "foremost arrives at 9 anyway" (Some 9)
    (Foremost.distance fore 2)

let fastest_matches_brute_force =
  qcase ~count:120 "durations = brute force" ~print:print_params gen_small
    (fun params ->
      let net = random_tnet params in
      let n = Tgraph.n net in
      let ok = ref true in
      for s = 0 to n - 1 do
        let r = Fastest.run net s in
        for t = 0 to n - 1 do
          if Fastest.duration r t <> brute_min_duration net s t then ok := false
        done
      done;
      !ok)

let fastest_journeys_valid =
  qcase ~count:120 "fastest witnesses are valid and achieve the duration"
    ~print:print_params gen_small
    (fun params ->
      let net = random_tnet params in
      let n = Tgraph.n net in
      let ok = ref true in
      for s = 0 to n - 1 do
        let r = Fastest.run net s in
        for t = 0 to n - 1 do
          match Fastest.journey_to net r t with
          | None -> if Fastest.duration r t <> None then ok := false
          | Some [] -> if t <> s then ok := false
          | Some journey ->
            if not (Journey.is_journey net ~source:s ~target:t journey) then
              ok := false;
            let transit =
              match (Journey.departure journey, Journey.arrival journey) with
              | Some d, Some a -> Some (a - d)
              | _ -> None
            in
            if transit <> Fastest.duration r t then ok := false
        done
      done;
      !ok)

let fastest_never_slower_than_foremost =
  qcase ~count:80 "duration <= foremost arrival - 1 + 1" ~print:print_params
    gen_small
    (fun params ->
      let net = random_tnet params in
      let n = Tgraph.n net in
      let ok = ref true in
      for s = 0 to n - 1 do
        let fast = Fastest.run net s in
        let fore = Foremost.run net s in
        for t = 0 to n - 1 do
          match (Fastest.duration fast t, Foremost.distance fore t) with
          | Some d, Some arrival ->
            (* The foremost journey departs at >= 1, so its transit is at
               most arrival - 1; fastest only improves on it. *)
            if t <> s && d > arrival - 1 then ok := false
          | None, Some _ | Some _, None -> ok := false
          | None, None -> ()
        done
      done;
      !ok)

let fastest_bad_source () =
  Alcotest.check_raises "bad source"
    (Invalid_argument "Fastest.run: source out of range") (fun () ->
      ignore (Fastest.run (fixture ()) (-1)))

(* --------------------------------------------------------------- *)
(* Centrality *)

let centrality_fixture_bounds () =
  let net = fixture () in
  let out = Centrality.out_closeness net in
  let into = Centrality.in_closeness net in
  Array.iter
    (fun score -> check_bool "out in [0,1]" true (score >= 0. && score <= 1.))
    out;
  Array.iter
    (fun score -> check_bool "in in [0,1]" true (score >= 0. && score <= 1.))
    into

let centrality_star_centre_wins () =
  (* Star with labels {1,2} everywhere: the centre reaches every leaf at
     time 1; leaves need 2 steps to cross. *)
  let net = Opt.star_two_labels (Sgraph.Gen.star 8) in
  let out = Centrality.out_closeness net in
  for leaf = 1 to 7 do
    check_bool "centre beats leaves" true (out.(0) > out.(leaf))
  done;
  check_int "rank puts centre first" 0 (Centrality.rank out).(0)

let centrality_broadcast () =
  let net = fixture () in
  let times = Centrality.broadcast_time net in
  check_int "from 0" 3 times.(0);
  let best, time = Centrality.best_broadcaster net in
  check_bool "best is at least as good as 0" true (time <= 3);
  check_int "consistent" time times.(best)

let centrality_reach_counts () =
  let net = fixture () in
  Alcotest.(check (array int)) "everyone reaches everyone" [| 5; 5; 5; 5; 5 |]
    (Centrality.reach_counts net)

let centrality_rank_order () =
  let order = Centrality.rank [| 0.1; 0.9; 0.5 |] in
  Alcotest.(check (array int)) "descending" [| 1; 2; 0 |] order

let centrality_betweenness_star () =
  let net = Opt.star_two_labels (Sgraph.Gen.star 8) in
  let scores = Centrality.betweenness net in
  check_bool "centre carries everything" true (scores.(0) > 0.);
  for leaf = 1 to 7 do
    check_float "leaves carry nothing" 0. scores.(leaf)
  done

let centrality_betweenness_bounds =
  qcase ~count:40 "betweenness scores are non-negative and bounded"
    ~print:print_params gen_small_nets
    (fun params ->
      let net = random_tnet params in
      let n = Tgraph.n net in
      Array.for_all
        (fun s -> s >= 0. && s <= float_of_int n)
        (Centrality.betweenness net))

let centrality_cover_fixture () =
  let net = fixture () in
  (* Vertex 0 floods everyone by time 3, so one source suffices. *)
  check_int "single source" 1 (List.length (Centrality.broadcast_cover net));
  (* With deadline 0 nobody reaches anybody: every vertex is its own
     source. *)
  check_int "degenerate deadline" 5
    (List.length (Centrality.cover_by_time net ~deadline:0))

let centrality_cover_invalid () =
  Alcotest.check_raises "negative deadline"
    (Invalid_argument "Centrality.cover_by_time: negative deadline") (fun () ->
      ignore (Centrality.cover_by_time (fixture ()) ~deadline:(-1)))

let centrality_cover_covers =
  qcase ~count:40 "cover sources jointly inform everyone in time"
    ~print:print_params gen_small_nets
    (fun params ->
      let net = random_tnet params in
      let n = Tgraph.n net in
      let deadline = Tgraph.lifetime net in
      let sources = Centrality.cover_by_time net ~deadline in
      let covered = Array.make n false in
      List.iter
        (fun s ->
          let result = Flooding.run net s in
          Array.iteri
            (fun v t -> if t <= deadline then covered.(v) <- true)
            result.informed_time)
        sources;
      Array.for_all Fun.id covered)

let centrality_closeness_consistent =
  qcase ~count:60 "out-closeness sums match per-pair distances"
    ~print:print_params gen_small
    (fun params ->
      let net = random_tnet params in
      let n = Tgraph.n net in
      let out = Centrality.out_closeness net in
      let ok = ref true in
      for u = 0 to n - 1 do
        let expected = ref 0. in
        for v = 0 to n - 1 do
          if v <> u then
            match Distance.distance net u v with
            | Some d when d > 0 -> expected := !expected +. (1. /. float_of_int d)
            | _ -> ()
        done;
        let expected = !expected /. float_of_int (Stdlib.max 1 (n - 1)) in
        if abs_float (expected -. out.(u)) > 1e-9 then ok := false
      done;
      !ok)

(* --------------------------------------------------------------- *)
(* Profile *)

let profile_fixture () =
  let net = fixture () in
  let steps = Profile.compute net ~source:0 ~target:2 in
  (* Departing at 1: 0-4@1, 4-2@2 -> 2.  Departing at 2: 0-1@2,1-2@5 -> 5.
     Departing later: 0-1@7, then 1-2@5 gone; 0-4 gone -> never...
     check the first values through the evaluator. *)
  check_int_option "depart 1" (Some 2) (Profile.arrival_at steps 1);
  check_int_option "depart 2" (Some 5) (Profile.arrival_at steps 2);
  check_int_option "depart 3" None (Profile.arrival_at steps 3);
  check_int_option "depart 6" None (Profile.arrival_at steps 6);
  check_int_option "latest useful departure time" (Some 2)
    (Profile.latest_useful_departure steps)

let profile_self () =
  let net = fixture () in
  let steps = Profile.compute net ~source:3 ~target:3 in
  check_int_option "always 0" (Some 0) (Profile.arrival_at steps 1)

let profile_monotone_and_consistent =
  qcase ~count:80 "profile = foremost at every departure time"
    ~print:print_params gen_small
    (fun params ->
      let net = random_tnet params in
      let n = Tgraph.n net in
      let a = Tgraph.lifetime net in
      let ok = ref true in
      for s = 0 to n - 1 do
        let t = (s + 1) mod n in
        if t <> s then begin
          let steps = Profile.compute net ~source:s ~target:t in
          let previous = ref (Some 0) in
          for t0 = 1 to a + 1 do
            let direct =
              Foremost.distance (Foremost.run ~start_time:t0 net s) t
            in
            let via_profile = Profile.arrival_at steps t0 in
            if via_profile <> direct then ok := false;
            (* Non-decreasing (None = infinity). *)
            (match (!previous, direct) with
            | Some p, Some d -> if t0 > 1 && d < p then ok := false
            | None, Some _ -> if t0 > 1 then ok := false
            | _ -> ());
            previous := direct
          done
        end
      done;
      !ok)

let profile_bad_args () =
  Alcotest.check_raises "bad endpoints"
    (Invalid_argument "Profile.compute: endpoint out of range") (fun () ->
      ignore (Profile.compute (fixture ()) ~source:0 ~target:9))

(* --------------------------------------------------------------- *)
(* Restless *)

let restless_chain () =
  (* Path 0-1-2-3 with labels 1, 2, 5: delta 1 breaks at the gap 2->5,
     delta 3 crosses it. *)
  let g = Graph.create Undirected ~n:4 [ (0, 1); (1, 2); (2, 3) ] in
  let net =
    Tgraph.create g ~lifetime:5
      [| Label.singleton 1; Label.singleton 2; Label.singleton 5 |]
  in
  let tight = Restless.run ~delta:1 net 0 in
  check_int_option "reaches 2" (Some 2) (Restless.distance tight 2);
  check_bool "gap too wide" true (Restless.distance tight 3 = None);
  check_int "three reachable" 3 (Restless.reachable_count tight);
  let loose = Restless.run ~delta:3 net 0 in
  check_int_option "gap crossed" (Some 5) (Restless.distance loose 3);
  check_int "all reachable" 4 (Restless.reachable_count loose)

let restless_source_launches_late () =
  (* The source may wait arbitrarily long before the first hop. *)
  let g = Graph.create Undirected ~n:2 [ (0, 1) ] in
  let net = Tgraph.create g ~lifetime:9 [| Label.singleton 9 |] in
  let r = Restless.run ~delta:1 net 0 in
  check_int_option "launch at 9" (Some 9) (Restless.distance r 1)

let restless_walks_beat_paths () =
  (* A restless WALK can bounce to refresh its waiting budget where no
     simple path can: 0-1@1, 1-2@{2,3}, 2-3@4 with delta 1 needs the
     bounce 1->2@2, 2->1? no — construct: 0-1@1, 1-2@2, 2-1@3, 1-3@4:
     walk 0,1,2,1,3 arrives; the simple path 0-1-3 needs 1->3 within
     delta of 1, label 4 > 1+1. *)
  let g = Graph.create Undirected ~n:4 [ (0, 1); (1, 2); (1, 3) ] in
  let net =
    Tgraph.create g ~lifetime:4
      [| Label.singleton 1; Label.of_list [ 2; 3 ]; Label.singleton 4 |]
  in
  let walk = Restless.run ~delta:1 net 0 in
  check_int_option "walk reaches 3" (Some 4) (Restless.distance walk 3);
  check_bool "no simple restless path" false
    (Restless.path_exists_exhaustive ~delta:1 net ~s:0 ~t:3)

let restless_path_exhaustive_basic () =
  let net = fixture () in
  check_bool "generous delta finds a path" true
    (Restless.path_exists_exhaustive ~delta:8 net ~s:0 ~t:2);
  check_bool "s = t trivial" true
    (Restless.path_exists_exhaustive ~delta:1 net ~s:3 ~t:3)

let restless_validations () =
  let net = fixture () in
  Alcotest.check_raises "delta < 1"
    (Invalid_argument "Restless.run: delta must be >= 1") (fun () ->
      ignore (Restless.run ~delta:0 net 0));
  Alcotest.check_raises "bad source"
    (Invalid_argument "Restless.run: source out of range") (fun () ->
      ignore (Restless.run ~delta:1 net 77))

let restless_infinite_delta_is_foremost =
  qcase ~count:100 "delta >= lifetime recovers foremost" ~print:print_params
    gen_params
    (fun params ->
      let net = random_tnet params in
      let n = Tgraph.n net in
      let a = Tgraph.lifetime net in
      let ok = ref true in
      for s = 0 to n - 1 do
        let restless = Restless.run ~delta:a net s in
        let foremost = Foremost.run net s in
        for v = 0 to n - 1 do
          if Restless.distance restless v <> Foremost.distance foremost v then
            ok := false
        done
      done;
      !ok)

let restless_monotone_in_delta =
  qcase ~count:80 "larger delta never hurts" ~print:print_params gen_params
    (fun params ->
      let net = random_tnet params in
      let n = Tgraph.n net in
      let ok = ref true in
      for s = 0 to n - 1 do
        let tight = Restless.run ~delta:1 net s in
        let loose = Restless.run ~delta:3 net s in
        for v = 0 to n - 1 do
          match (Restless.distance tight v, Restless.distance loose v) with
          | Some d1, Some d3 -> if d3 > d1 then ok := false
          | Some _, None -> ok := false
          | None, _ -> ()
        done
      done;
      !ok)

let restless_witnesses_valid =
  qcase ~count:80 "restless witnesses are valid journeys within the bound"
    ~print:print_params gen_params
    (fun params ->
      let net = random_tnet params in
      let n = Tgraph.n net in
      let ok = ref true in
      for s = 0 to n - 1 do
        let r = Restless.run ~delta:2 net s in
        for v = 0 to n - 1 do
          match Restless.journey_to r v with
          | None -> if Restless.distance r v <> None then ok := false
          | Some [] -> if v <> s then ok := false
          | Some journey ->
            if not (Journey.is_journey net ~source:s ~target:v journey) then
              ok := false;
            if not (Restless.is_restless r journey) then ok := false;
            if Journey.arrival journey <> Restless.distance r v then ok := false
        done
      done;
      !ok)

let restless_path_implies_walk =
  qcase ~count:80 "a restless simple path implies walk reachability"
    ~print:print_params gen_small_nets
    (fun params ->
      let net = random_tnet params in
      let n = Tgraph.n net in
      let s = 0 and t = n - 1 in
      s = t
      ||
      let path = Restless.path_exists_exhaustive ~delta:2 net ~s ~t in
      let walk = Restless.distance (Restless.run ~delta:2 net s) t <> None in
      (not path) || walk)

(* --------------------------------------------------------------- *)
(* Robustness *)

let robustness_star_attack () =
  (* Degree-targeting a star removes the centre first, collapsing all
     leaf-to-leaf reachability at once. *)
  let net = Opt.star_two_labels (Sgraph.Gen.star 10) in
  match Robustness.targeted_attack net ~by:`Degree ~steps:1 with
  | [ step ] ->
    check_int "the centre dies first" 0 step.removed;
    check_int "nine survivors" 9 step.survivors;
    check_int "no pairs left" 0 step.reachable_pairs;
    check_float "reachability zero" 0. step.reachability
  | _ -> Alcotest.fail "expected exactly one step"

let robustness_random_failures () =
  let net = fixture () in
  let steps = Robustness.random_failures (rng ()) net ~steps:2 in
  check_int "two steps" 2 (List.length steps);
  List.iteri
    (fun i (step : Robustness.step) ->
      check_int "survivor count decreases" (4 - i) step.survivors;
      check_bool "reachability a proportion" true
        (step.reachability >= 0. && step.reachability <= 1.))
    steps

let robustness_stops_at_two () =
  let net = fixture () in
  let steps = Robustness.targeted_attack net ~by:`Closeness ~steps:99 in
  (* From 5 vertices: removals leave 4, 3, 2 — then stop. *)
  check_int "three steps" 3 (List.length steps)

let robustness_invalid () =
  Alcotest.check_raises "negative steps"
    (Invalid_argument "Robustness: steps must be >= 0") (fun () ->
      ignore (Robustness.targeted_attack (fixture ()) ~by:`Degree ~steps:(-1)))

let robustness_names () =
  Alcotest.(check string) "degree" "degree" (Robustness.target_name `Degree);
  Alcotest.(check string) "betweenness" "betweenness"
    (Robustness.target_name `Betweenness)

let robustness_removed_are_original_ids =
  qcase ~count:30 "removed ids are distinct original vertices"
    ~print:print_params gen_small_nets
    (fun params ->
      let net = random_tnet params in
      let n = Tgraph.n net in
      let steps = Robustness.random_failures (rng ()) net ~steps:n in
      let ids = List.map (fun (s : Robustness.step) -> s.removed) steps in
      List.length (List.sort_uniq compare ids) = List.length ids
      && List.for_all (fun v -> v >= 0 && v < n) ids)

let suites =
  [
    ( "temporal.reverse_foremost",
      [
        case "fixture" reverse_fixture;
        case "deadline restricts" reverse_deadline_restricts;
        case "bad args" reverse_bad_args;
        case "reachable count" reverse_reachable_count;
        reverse_matches_brute_force;
        reverse_journeys_valid;
      ] );
    ( "temporal.shortest",
      [
        case "fixture" shortest_fixture;
        case "hops vs arrival tradeoff" shortest_vs_foremost_tradeoff;
        shortest_reachability_agrees;
        shortest_matches_brute_force;
        shortest_journeys_valid;
        shortest_lower_bounded_by_static;
        case "pareto fixture" shortest_pareto_fixture;
        case "pareto tradeoff" shortest_pareto_tradeoff;
        shortest_pareto_properties;
        case "bad args" shortest_bad_args;
      ] );
    ( "temporal.fastest",
      [
        case "fixture" fastest_fixture;
        case "waiting pays" fastest_waiting_pays;
        fastest_matches_brute_force;
        fastest_journeys_valid;
        fastest_never_slower_than_foremost;
        case "bad source" fastest_bad_source;
      ] );
    ( "temporal.centrality",
      [
        case "bounds" centrality_fixture_bounds;
        case "star centre wins" centrality_star_centre_wins;
        case "broadcast" centrality_broadcast;
        case "reach counts" centrality_reach_counts;
        case "rank order" centrality_rank_order;
        centrality_closeness_consistent;
        case "betweenness star" centrality_betweenness_star;
        centrality_betweenness_bounds;
        case "cover fixture" centrality_cover_fixture;
        case "cover invalid" centrality_cover_invalid;
        centrality_cover_covers;
      ] );
    ( "temporal.profile",
      [
        case "fixture" profile_fixture;
        case "self profile" profile_self;
        profile_monotone_and_consistent;
        case "bad args" profile_bad_args;
      ] );
    ( "temporal.restless",
      [
        case "chain and gaps" restless_chain;
        case "late launch" restless_source_launches_late;
        case "walks beat paths" restless_walks_beat_paths;
        case "exhaustive path basics" restless_path_exhaustive_basic;
        case "validations" restless_validations;
        restless_infinite_delta_is_foremost;
        restless_monotone_in_delta;
        restless_witnesses_valid;
        restless_path_implies_walk;
      ] );
    ( "temporal.robustness",
      [
        case "star attack" robustness_star_attack;
        case "random failures" robustness_random_failures;
        case "stops at two" robustness_stops_at_two;
        case "invalid" robustness_invalid;
        case "target names" robustness_names;
        robustness_removed_are_original_ids;
      ] );
  ]
