(* Tests for Foremost, Distance and Flooding — including the two pivotal
   properties: the sweep matches exhaustive search, and flooding attains
   foremost arrival times. *)

open Helpers
module Graph = Sgraph.Graph
open Temporal

(* --------------------------------------------------------------- *)
(* Foremost on fixtures *)

let foremost_fixture () =
  let net = fixture () in
  let res = Foremost.run net 0 in
  check_int_option "self" (Some 0) (Foremost.distance res 0);
  check_int_option "to 4 (direct at 1)" (Some 1) (Foremost.distance res 4);
  check_int_option "to 1 (direct at 2)" (Some 2) (Foremost.distance res 1);
  (* 0 -> 4 @1 -> 2 @2 beats 0 -> 1 @2 -> 2 @5. *)
  check_int_option "to 2" (Some 2) (Foremost.distance res 2);
  check_int_option "to 3" (Some 3) (Foremost.distance res 3)

let foremost_directed () =
  let net = directed_line () in
  let res = Foremost.run net 0 in
  check_int_option "0 to 1" (Some 1) (Foremost.distance res 1);
  check_int_option "0 to 2" (Some 3) (Foremost.distance res 2);
  let back = Foremost.run net 1 in
  (* 1 -> 2 at 3, and 2 -> 0 at 2 < 3: no way back to 0. *)
  check_int_option "1 to 0 blocked in time" None (Foremost.distance back 0)

let foremost_needs_strict_increase () =
  let g = Graph.create Undirected ~n:3 [ (0, 1); (1, 2) ] in
  let net =
    Tgraph.create g ~lifetime:5 [| Label.singleton 3; Label.singleton 3 |]
  in
  let res = Foremost.run net 0 in
  check_int_option "equal labels do not chain" None (Foremost.distance res 2)

let foremost_start_time () =
  let net = fixture () in
  (* Departing at time >= 2 misses the {0,4}@1 edge. *)
  let res = Foremost.run ~start_time:2 net 0 in
  check_int_option "to 1 still 2" (Some 2) (Foremost.distance res 1);
  (* 0 -> 1 @2 -> 3 @3 -> 4 @4. *)
  check_int_option "to 4 now via 1,3" (Some 4) (Foremost.distance res 4)

let foremost_start_time_invalid () =
  Alcotest.check_raises "start_time < 1"
    (Invalid_argument "Foremost.run: start_time must be >= 1") (fun () ->
      ignore (Foremost.run ~start_time:0 (fixture ()) 0))

let foremost_bad_source () =
  Alcotest.check_raises "source range"
    (Invalid_argument "Foremost.run: source out of range") (fun () ->
      ignore (Foremost.run (fixture ()) 9))

let foremost_accessors () =
  let net = fixture () in
  let res = Foremost.run net 0 in
  check_int "source" 0 (Foremost.source res);
  check_int "start_time" 1 (Foremost.start_time res);
  check_int "all reachable" 5 (Foremost.reachable_count res);
  check_int_option "max distance" (Some 3) (Foremost.max_distance res)

let foremost_max_distance_incomplete () =
  let g = Graph.create Undirected ~n:3 [ (0, 1) ] in
  let net = Tgraph.create g ~lifetime:2 [| Label.singleton 1 |] in
  let res = Foremost.run net 0 in
  check_int_option "incomplete -> None" None (Foremost.max_distance res);
  check_int "reachable" 2 (Foremost.reachable_count res)

let foremost_journey_reconstruction () =
  let net = fixture () in
  let res = Foremost.run net 0 in
  for v = 0 to 4 do
    match Foremost.journey_to net res v with
    | None -> Alcotest.fail "fixture is fully reachable"
    | Some journey ->
      check_bool "valid journey" true
        (Journey.is_journey net ~source:0 ~target:v journey);
      if v <> 0 then
        check_int_option "arrival matches distance"
          (Foremost.distance res v)
          (Journey.arrival journey)
  done

let foremost_journey_unreachable () =
  let g = Graph.create Undirected ~n:3 [ (0, 1) ] in
  let net = Tgraph.create g ~lifetime:2 [| Label.singleton 1 |] in
  let res = Foremost.run net 0 in
  check_bool "unreachable journey is None" true
    (Foremost.journey_to net res 2 = None);
  check_bool "self journey is empty" true (Foremost.journey_to net res 0 = Some [])

(* --------------------------------------------------------------- *)
(* The pivotal properties *)

let foremost_matches_brute_force =
  qcase ~count:150 "foremost sweep = exhaustive search" ~print:print_params
    gen_params
    (fun params ->
      let net = random_tnet params in
      let n = Tgraph.n net in
      let ok = ref true in
      for s = 0 to n - 1 do
        let res = Foremost.run net s in
        for t = 0 to n - 1 do
          if Foremost.distance res t <> Foremost.brute_force_distance net s t
          then ok := false
        done
      done;
      !ok)

let foremost_journeys_always_valid =
  qcase ~count:150 "reconstructed journeys are valid and foremost"
    ~print:print_params gen_params
    (fun params ->
      let net = random_tnet params in
      let n = Tgraph.n net in
      let ok = ref true in
      for s = 0 to n - 1 do
        let res = Foremost.run net s in
        for t = 0 to n - 1 do
          match Foremost.journey_to net res t with
          | None -> if Foremost.distance res t <> None then ok := false
          | Some journey ->
            if not (Journey.is_journey net ~source:s ~target:t journey) then
              ok := false;
            if t <> s && Journey.arrival journey <> Foremost.distance res t
            then ok := false
        done
      done;
      !ok)

let flooding_equals_foremost =
  qcase ~count:150 "flooding informs at exactly the temporal distances"
    ~print:print_params gen_params
    (fun params ->
      let net = random_tnet params in
      let n = Tgraph.n net in
      let ok = ref true in
      for s = 0 to n - 1 do
        let foremost = Foremost.run net s in
        let flood = Flooding.run net s in
        for v = 0 to n - 1 do
          if v <> s then begin
            let expected =
              match Foremost.distance foremost v with
              | Some d -> d
              | None -> max_int
            in
            if flood.informed_time.(v) <> expected then ok := false
          end
        done
      done;
      !ok)

(* --------------------------------------------------------------- *)
(* Flooding specifics *)

let flooding_fixture () =
  let net = fixture () in
  let result = Flooding.run net 0 in
  check_int "everyone informed" 5 result.informed_count;
  check_int_option "completion = max distance" (Some 3) result.completion_time;
  check_bool "transmissions positive" true (result.transmissions > 0)

let flooding_transmission_bound () =
  let net = fixture () in
  let result = Flooding.run net 0 in
  check_bool "at most one send per time edge" true
    (result.transmissions <= Tgraph.time_edge_count net)

let flooding_incomplete () =
  let g = Graph.create Undirected ~n:3 [ (0, 1); (1, 2) ] in
  (* 1-2 opens before 0-1: vertex 2 can never hear from 0. *)
  let net =
    Tgraph.create g ~lifetime:3 [| Label.singleton 2; Label.singleton 1 |]
  in
  let result = Flooding.run net 0 in
  check_int "only 0 and 1" 2 result.informed_count;
  check_bool "no completion" true (result.completion_time = None);
  check_int "2 never informed" max_int result.informed_time.(2)

let flooding_broadcast_time () =
  check_int_option "shortcut accessor" (Some 3)
    (Flooding.broadcast_time (fixture ()) 0)

let flooding_source_time () =
  let result = Flooding.run (fixture ()) 0 in
  check_int "source holds it from the start" 0 result.informed_time.(0)

let flooding_bad_args () =
  Alcotest.check_raises "source range"
    (Invalid_argument "Flooding.run: source out of range") (fun () ->
      ignore (Flooding.run (fixture ()) (-1)));
  Alcotest.check_raises "start_time"
    (Invalid_argument "Flooding.run: start_time must be >= 1") (fun () ->
      ignore (Flooding.run ~start_time:0 (fixture ()) 0))

let budgeted_zero () =
  let net = fixture () in
  let result = Flooding.run_budgeted ~k:0 net 0 in
  check_int "only the source" 1 result.informed_count;
  check_int "silent" 0 result.transmissions

let budgeted_unlimited_equals_run =
  qcase ~count:80 "budgeted k=inf = plain flooding" ~print:print_params
    gen_params
    (fun params ->
      let net = random_tnet params in
      let n = Tgraph.n net in
      let ok = ref true in
      for s = 0 to n - 1 do
        let plain = Flooding.run net s in
        let capped = Flooding.run_budgeted ~k:max_int net s in
        if plain.informed_time <> capped.informed_time
           || plain.transmissions <> capped.transmissions
        then ok := false
      done;
      !ok)

(* NOTE: informed times are NOT monotone in k — a vertex informed earlier
   (thanks to a bigger budget upstream) can burn its own budget on early
   useless arcs and miss a later critical one.  What IS guaranteed is
   domination by the unbudgeted protocol: budgeted runs fire a subset of
   the plain run's arcs, so they inform no earlier and send no more. *)
let budgeted_dominated_by_plain =
  qcase ~count:60 "budgeted floods never beat the unbudgeted protocol"
    ~print:print_params gen_params
    (fun params ->
      let net = random_tnet params in
      let n = Tgraph.n net in
      let ok = ref true in
      for s = 0 to n - 1 do
        let plain = Flooding.run net s in
        let capped = Flooding.run_budgeted ~k:2 net s in
        if capped.transmissions > plain.transmissions then ok := false;
        for v = 0 to n - 1 do
          if capped.informed_time.(v) < plain.informed_time.(v) then ok := false
        done
      done;
      !ok)

let budgeted_respects_budget =
  qcase ~count:60 "transmissions <= k * n" ~print:print_params gen_params
    (fun params ->
      let net = random_tnet params in
      let n = Tgraph.n net in
      let result = Flooding.run_budgeted ~k:2 net 0 in
      result.transmissions <= 2 * n)

let budgeted_invalid () =
  Alcotest.check_raises "negative budget"
    (Invalid_argument "Flooding.run_budgeted: k must be >= 0") (fun () ->
      ignore (Flooding.run_budgeted ~k:(-1) (fixture ()) 0))

(* --------------------------------------------------------------- *)
(* Distance *)

let distance_pairwise () =
  let net = fixture () in
  check_int_option "0 to 3" (Some 3) (Distance.distance net 0 3);
  check_int_option "self" (Some 0) (Distance.distance net 2 2)

let distance_eccentricity () =
  let net = fixture () in
  check_int_option "ecc of 0" (Some 3) (Distance.eccentricity net 0)

let distance_instance_diameter () =
  let net = fixture () in
  match Distance.instance_diameter net with
  | None -> Alcotest.fail "fixture connected"
  | Some d ->
    (* Must equal the max over the all-pairs matrix. *)
    let pairs = Distance.all_pairs net in
    let worst = ref 0 in
    Array.iteri
      (fun u row ->
        Array.iteri (fun v x -> if u <> v && x > !worst then worst := x) row)
      pairs;
    check_int "diameter = max pair" !worst d

let distance_diameter_disconnected () =
  let g = Graph.create Undirected ~n:3 [ (0, 1); (1, 2) ] in
  let net =
    Tgraph.create g ~lifetime:3 [| Label.singleton 2; Label.singleton 1 |]
  in
  check_bool "undefined diameter" true (Distance.instance_diameter net = None)

let distance_sampled_lower_bound =
  qcase ~count:60 "sampled diameter <= exact diameter" ~print:print_params
    gen_params
    (fun params ->
      let net = random_tnet params in
      match Distance.instance_diameter net with
      | None -> true (* sampling may or may not hit the broken pair *)
      | Some exact -> (
        match
          Distance.instance_diameter_sampled (rng ()) net ~sources:2
        with
        | None -> false (* exact connected implies every source completes *)
        | Some sampled -> sampled <= exact))

let distance_average () =
  let net = fixture () in
  let avg = Distance.average net in
  let diameter = float_of_int (Option.get (Distance.instance_diameter net)) in
  check_bool "average within [1, diameter]" true (avg >= 1. && avg <= diameter)

let suites =
  [
    ( "temporal.foremost",
      [
        case "fixture distances" foremost_fixture;
        case "directed instance" foremost_directed;
        case "strict increase required" foremost_needs_strict_increase;
        case "start_time" foremost_start_time;
        case "start_time invalid" foremost_start_time_invalid;
        case "bad source" foremost_bad_source;
        case "accessors" foremost_accessors;
        case "max_distance incomplete" foremost_max_distance_incomplete;
        case "journey reconstruction" foremost_journey_reconstruction;
        case "journey unreachable" foremost_journey_unreachable;
        foremost_matches_brute_force;
        foremost_journeys_always_valid;
      ] );
    ( "temporal.flooding",
      [
        case "fixture run" flooding_fixture;
        case "transmission bound" flooding_transmission_bound;
        case "incomplete instance" flooding_incomplete;
        case "broadcast_time" flooding_broadcast_time;
        case "source informed time" flooding_source_time;
        case "bad arguments" flooding_bad_args;
        flooding_equals_foremost;
        case "budgeted k=0" budgeted_zero;
        budgeted_unlimited_equals_run;
        budgeted_dominated_by_plain;
        budgeted_respects_budget;
        case "budgeted invalid" budgeted_invalid;
      ] );
    ( "temporal.distance",
      [
        case "pairwise" distance_pairwise;
        case "eccentricity" distance_eccentricity;
        case "instance diameter" distance_instance_diameter;
        case "disconnected" distance_diameter_disconnected;
        distance_sampled_lower_bound;
        case "average" distance_average;
      ] );
  ]
