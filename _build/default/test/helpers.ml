(* Shared test utilities: deterministic RNGs, tiny fixture networks, and
   QCheck generators for random graphs / temporal networks. *)

module Graph = Sgraph.Graph
module Rng = Prng.Rng
open Temporal

let rng ?(seed = 1234) () = Rng.create seed

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_float ?(eps = 1e-9) msg expected actual =
  Alcotest.(check (float eps)) msg expected actual

let check_int_option = Alcotest.(check (option int))

(* Substring search, for assertions on rendered output. *)
let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  if nl = 0 then true
  else begin
    let rec scan i =
      i + nl <= hl && (String.sub haystack i nl = needle || scan (i + 1))
    in
    scan 0
  end

let case name f = Alcotest.test_case name `Quick f
let qcase ?(count = 100) ?print name gen prop =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count ~name ?print gen prop)

(* A fixed 5-vertex temporal network used across suites:

     0 -1- 4,  0 -2,7- 1,  1 -5- 2,  1 -3,6- 3,  3 -4- 4,  2 -2,8- 4 *)
let fixture () =
  let g =
    Graph.create Undirected ~n:5
      [ (0, 1); (1, 2); (1, 3); (0, 4); (3, 4); (2, 4) ]
  in
  let labelled =
    [
      ((0, 1), [ 2; 7 ]); ((1, 2), [ 5 ]); ((1, 3), [ 3; 6 ]);
      ((0, 4), [ 1 ]); ((3, 4), [ 4 ]); ((2, 4), [ 2; 8 ]);
    ]
  in
  let labels = Array.make (Graph.m g) Label.empty in
  List.iter
    (fun ((u, v), times) ->
      labels.(Option.get (Graph.find_edge g u v)) <- Label.of_list times)
    labelled;
  Tgraph.create g ~lifetime:8 labels

(* A directed 3-cycle where only 0 -> 1 -> 2 works in time. *)
let directed_line () =
  let g = Graph.create Directed ~n:3 [ (0, 1); (1, 2); (2, 0) ] in
  Tgraph.create g ~lifetime:5
    [| Label.singleton 1; Label.singleton 3; Label.singleton 2 |]

(* QCheck generators.  Graphs are generated through our own deterministic
   generators driven by a generated seed: simple, and every failure is
   reproducible from the printed parameters. *)

let gen_params =
  QCheck2.Gen.(
    let* n = int_range 2 8 in
    let* seed = int_range 0 10_000 in
    let* a = int_range 1 12 in
    let* r = int_range 1 3 in
    return (n, seed, a, r))

let print_params (n, seed, a, r) =
  Printf.sprintf "(n=%d, seed=%d, a=%d, r=%d)" n seed a r

let random_graph ~n ~seed =
  let rng = Rng.create seed in
  (* Mix of density regimes, seed-determined. *)
  let p = 0.2 +. (0.6 *. Rng.float rng) in
  let g = Sgraph.Gen.gnp rng ~n ~p in
  if Graph.m g = 0 then Sgraph.Gen.path n else g

let random_tnet (n, seed, a, r) =
  let g = random_graph ~n ~seed in
  Assignment.uniform_multi (Rng.create (seed + 1)) g ~a ~r

(* Tighter variant for exhaustive-search cross-checks (path enumeration
   and subset scans are exponential). *)
let gen_small_nets =
  QCheck2.Gen.(
    let* n = int_range 2 6 in
    let* seed = int_range 0 10_000 in
    let* a = int_range 1 8 in
    let* r = int_range 1 2 in
    return (n, seed, a, r))

let gen_tree_params =
  QCheck2.Gen.(
    let* n = int_range 1 24 in
    let* seed = int_range 0 10_000 in
    return (n, seed))
