(* Cross-module identities: independent implementations must agree.
   Each property here ties at least two modules together, so a silent
   regression in either breaks a visible equation. *)

open Helpers
module Graph = Sgraph.Graph
open Temporal

(* Builder output serialises and parses back to itself. *)
let builder_serial_roundtrip =
  qcase ~count:60 "Builder -> Serial -> Serial round-trips"
    ~print:print_params gen_params
    (fun (n, seed, a, r) ->
      let rng = Prng.Rng.create seed in
      let b = Builder.create Undirected ~n in
      for _ = 1 to n * r do
        let u = Prng.Rng.int rng n and v = Prng.Rng.int rng n in
        if u <> v then Builder.add_label b u v (1 + Prng.Rng.int rng a)
      done;
      let net = Builder.build ~lifetime:a b in
      match Serial.of_string (Serial.to_string net) with
      | Error _ -> false
      | Ok back -> Serial.to_string back = Serial.to_string net)

(* Flooding's transmission count recomputed independently from the
   informed times. *)
let flooding_transmissions_recount =
  qcase ~count:80 "flooding transmissions = arcs firing after infection"
    ~print:print_params gen_params
    (fun params ->
      let net = random_tnet params in
      let n = Tgraph.n net in
      let ok = ref true in
      for s = 0 to n - 1 do
        let result = Flooding.run net s in
        let recount = ref 0 in
        Tgraph.iter_time_edges net (fun ~src ~dst:_ ~label ~edge:_ ->
            let informed_at =
              if src = s then 0 else result.informed_time.(src)
            in
            if informed_at < label then incr recount);
        if !recount <> result.transmissions then ok := false
      done;
      !ok)

(* The reachability graph's out-degrees are the foremost reach counts. *)
let tcc_degrees_match_reach_counts =
  qcase ~count:60 "Tcc.reachability_graph degrees = Centrality.reach_counts"
    ~print:print_params gen_params
    (fun params ->
      let net = random_tnet params in
      let reach = Tcc.reachability_graph net in
      let counts = Centrality.reach_counts net in
      let ok = ref true in
      for v = 0 to Tgraph.n net - 1 do
        (* reach_counts includes the vertex itself. *)
        if Graph.out_degree reach v + 1 <> counts.(v) then ok := false
      done;
      !ok)

(* Pruning is idempotent: a minimal sublabeling has nothing to remove. *)
let spanner_idempotent =
  qcase ~count:20 "Spanner.prune is idempotent" ~print:print_params
    gen_small_nets
    (fun params ->
      let net = random_tnet params in
      if not (Reachability.treach net) then true
      else begin
        let once = Spanner.prune net in
        let twice = Spanner.prune once.pruned in
        twice.removed = 0 && twice.kept = once.kept
      end)

(* Hybrid designs may lose random labels to collisions with the backbone
   but never exceed the budget. *)
let design_budget_bounds =
  qcase ~count:40 "hybrid label count within (backbone, budget]"
    ~print:string_of_int
    QCheck2.Gen.(int_range 1 5_000)
    (fun seed ->
      let g = Sgraph.Gen.grid 4 4 in
      let rng = Prng.Rng.create seed in
      let r = 1 + (seed mod 3) in
      let net = Design.realise rng g ~a:32 (Hybrid r) in
      let count = Tgraph.label_count net in
      count > Design.label_budget g Backbone_only
      && count <= Design.label_budget g (Hybrid r))

(* Shifting the whole schedule shifts every profile step uniformly. *)
let profile_shift_commutes =
  qcase ~count:40 "Ops.shift commutes with Profile arrivals"
    ~print:print_params gen_small_nets
    (fun params ->
      let net = random_tnet params in
      let n = Tgraph.n net in
      let shifted = Ops.shift net 5 in
      let s = 0 and t = n - 1 in
      s = t
      ||
      let base = Profile.compute net ~source:s ~target:t in
      let moved = Profile.compute shifted ~source:s ~target:t in
      (* Compare at matching departure times over the original domain. *)
      List.for_all
        (fun t0 ->
          let before = Profile.arrival_at base t0 in
          let after = Profile.arrival_at moved (t0 + 5) in
          match (before, after) with
          | Some b, Some a -> a = b + 5
          | None, None -> true
          | _ -> false)
        (List.init (Tgraph.lifetime net + 1) (fun i -> i + 1)))

(* The expanded graph has exactly one travel arc per stream entry and
   its wait arcs chain each vertex's events. *)
let expanded_arc_census =
  qcase ~count:60 "Expanded arc counts add up" ~print:print_params gen_params
    (fun params ->
      let net = random_tnet params in
      let exp = Expanded.build net in
      let travels = ref 0 and waits = ref 0 in
      Array.iter
        (fun arc ->
          match arc with
          | Expanded.Travel _ -> incr travels
          | Expanded.Wait _ -> incr waits)
        (Expanded.arcs exp);
      !travels = Tgraph.time_edge_count net
      && !waits = Expanded.node_count exp - Tgraph.n net)

(* Serial and Windows agree on the label multiset. *)
let windows_serial_consistent =
  qcase ~count:60 "Windows.of_tgraph preserves exactly the label content"
    ~print:print_params gen_params
    (fun params ->
      let net = random_tnet params in
      let w = Windows.of_tgraph net in
      let ok = ref true in
      Graph.iter_edges (Tgraph.graph net) (fun e _ _ ->
          let original = Label.to_list (Tgraph.labels net e) in
          let via_windows =
            Label.to_list (Windows.labels_of_schedule (Windows.schedule w e))
          in
          if original <> via_windows then ok := false);
      !ok)

(* Centrality broadcast times = flooding completion = foremost max. *)
let broadcast_three_ways =
  qcase ~count:60 "broadcast time: Centrality = Flooding = Foremost"
    ~print:print_params gen_params
    (fun params ->
      let net = random_tnet params in
      let n = Tgraph.n net in
      let times = Centrality.broadcast_time net in
      let ok = ref true in
      for s = 0 to n - 1 do
        let via_flooding =
          match Flooding.broadcast_time net s with Some t -> t | None -> max_int
        in
        let via_foremost =
          match Foremost.max_distance (Foremost.run net s) with
          | Some t -> t
          | None -> max_int
        in
        if times.(s) <> via_flooding || times.(s) <> via_foremost then
          ok := false
      done;
      !ok)

(* Restless with the trivial bound, online, and batch all coincide. *)
let three_sweeps_agree =
  qcase ~count:60 "batch = online = restless(delta=lifetime)"
    ~print:print_params gen_params
    (fun params ->
      let net = random_tnet params in
      let n = Tgraph.n net in
      let a = Tgraph.lifetime net in
      let ok = ref true in
      for s = 0 to n - 1 do
        let batch = Foremost.run net s in
        let online = Online.create ~n s in
        Tgraph.iter_time_edges net (fun ~src ~dst ~label ~edge:_ ->
            Online.observe online ~src ~dst ~label);
        let restless = Restless.run ~delta:a net s in
        for v = 0 to n - 1 do
          let d = Foremost.distance batch v in
          if Online.arrival online v <> d then ok := false;
          if Restless.distance restless v <> d then ok := false
        done
      done;
      !ok)

(* Edge-disjoint journey count is bounded by both endpoint time-degrees. *)
let disjoint_degree_bound =
  qcase ~count:40 "max edge-disjoint <= min(out-labels(s), in-labels(t))"
    ~print:print_params gen_small_nets
    (fun params ->
      let net = random_tnet params in
      let n = Tgraph.n net in
      let s = 0 and t = n - 1 in
      s = t
      ||
      let label_count arcs =
        Array.fold_left (fun acc (_, _, ls) -> acc + Label.size ls) 0 arcs
      in
      let out_s = label_count (Tgraph.crossings_out net s) in
      let in_t = label_count (Tgraph.crossings_in net t) in
      Disjoint.max_edge_disjoint net ~s ~t <= Stdlib.min out_s in_t)

(* Brute-force count of distinct foremost journeys (exhaustive walk
   enumeration, deduplicated). *)
let brute_foremost_count net s t =
  match Foremost.distance (Foremost.run net s) t with
  | None -> 0
  | Some 0 -> 1
  | Some target_arrival ->
    let journeys = Hashtbl.create 16 in
    let rec explore v time steps =
      if time < target_arrival then
        Array.iter
          (fun (_, target, labels) ->
            List.iter
              (fun label ->
                if label > time && label <= target_arrival then begin
                  let steps = (v, target, label) :: steps in
                  if target = t && label = target_arrival then
                    Hashtbl.replace journeys (List.rev steps) ()
                  else explore target label steps
                end)
              (Label.to_list labels))
          (Tgraph.crossings_out net v)
    in
    explore s 0 [];
    Hashtbl.length journeys

let counting_matches_bruteforce =
  qcase ~count:80 "Counting.foremost_journeys = exhaustive enumeration"
    ~print:print_params gen_small_nets
    (fun params ->
      let net = random_tnet params in
      let n = Tgraph.n net in
      let ok = ref true in
      for s = 0 to n - 1 do
        let counts = Counting.foremost_journeys net s in
        for t = 0 to n - 1 do
          if counts.(t) <> brute_foremost_count net s t then ok := false
        done
      done;
      !ok)

let counting_positive_iff_reachable =
  qcase ~count:60 "count > 0 iff reachable" ~print:print_params gen_params
    (fun params ->
      let net = random_tnet params in
      let n = Tgraph.n net in
      let ok = ref true in
      for s = 0 to n - 1 do
        let counts = Counting.foremost_journeys net s in
        let res = Foremost.run net s in
        for t = 0 to n - 1 do
          if (counts.(t) > 0) <> (Foremost.distance res t <> None) then
            ok := false
        done
      done;
      !ok)

let summary_facade_fixture () =
  let s = Summary_t.compute (fixture ()) in
  check_int "n" 5 s.n;
  check_int "m" 6 s.m;
  check_int "lifetime" 8 s.lifetime;
  check_int "labels" 9 s.labels;
  check_int "time edges" 18 s.time_edges;
  check_bool "static" true s.statically_connected;
  check_bool "treach" true s.treach;
  check_int "pairs" 20 s.reachable_pairs;
  check_int "static pairs" 20 s.static_pairs;
  (* The worst pair is (2,0): 2-1@5 then 1-0@7. *)
  check_int_option "diameter" (Some 7) s.temporal_diameter;
  check_int "one cover source" 1 s.cover_sources;
  check_int "one scc" 1 s.temporal_scc_count;
  check_bool "renders" true
    (String.length (Format.asprintf "%a" Summary_t.pp s) > 0)

let summary_facade_consistent =
  qcase ~count:40 "facade fields = their direct computations"
    ~print:print_params gen_small_nets
    (fun params ->
      let net = random_tnet params in
      let s = Summary_t.compute net in
      s.treach = Reachability.treach net
      && s.reachable_pairs = Reachability.reachable_pair_count net
      && s.temporal_diameter = Distance.instance_diameter net
      && s.temporal_scc_count = Tcc.scc_count net
      && s.labels = Tgraph.label_count net)

let counting_unique_on_fixture () =
  let net = fixture () in
  (* delta(0,4) = 1 via the single time edge {0,4}@1: unique optimum. *)
  check_bool "unique direct journey" true (Counting.unique_optimum net ~s:0 ~t:4)

let suites =
  [
    ( "crosschecks",
      [
        builder_serial_roundtrip;
        flooding_transmissions_recount;
        tcc_degrees_match_reach_counts;
        spanner_idempotent;
        design_budget_bounds;
        profile_shift_commutes;
        expanded_arc_census;
        windows_serial_consistent;
        broadcast_three_ways;
        three_sweeps_agree;
        disjoint_degree_bound;
        counting_matches_bruteforce;
        counting_positive_iff_reachable;
        case "counting unique optimum" counting_unique_on_fixture;
        case "summary facade fixture" summary_facade_fixture;
        summary_facade_consistent;
      ] );
  ]
