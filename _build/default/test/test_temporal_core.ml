(* Tests for the temporal core types: Label, Tgraph, Journey. *)

open Helpers
module Graph = Sgraph.Graph
open Temporal

(* --------------------------------------------------------------- *)
(* Label *)

let label_of_list_normalises () =
  let l = Label.of_list [ 5; 2; 5; 1; 2 ] in
  Alcotest.(check (list int)) "sorted unique" [ 1; 2; 5 ] (Label.to_list l);
  check_int "size" 3 (Label.size l)

let label_invalid () =
  Alcotest.check_raises "non-positive"
    (Invalid_argument "Label: labels must be positive") (fun () ->
      ignore (Label.of_list [ 1; 0 ]))

let label_empty () =
  check_bool "is_empty" true (Label.is_empty Label.empty);
  check_int "max of empty" 0 (Label.max_label Label.empty);
  check_int "min of empty" max_int (Label.min_label Label.empty);
  check_int "size" 0 (Label.size Label.empty)

let label_range () =
  Alcotest.(check (list int)) "range" [ 3; 4; 5 ]
    (Label.to_list (Label.range 3 5));
  check_bool "empty range" true (Label.is_empty (Label.range 5 3));
  Alcotest.check_raises "lo < 1"
    (Invalid_argument "Label.range: lo must be >= 1") (fun () ->
      ignore (Label.range 0 3))

let label_mem () =
  let l = Label.of_list [ 2; 4; 9 ] in
  check_bool "mem 4" true (Label.mem l 4);
  check_bool "not mem 3" false (Label.mem l 3);
  check_bool "not mem 1" false (Label.mem l 1);
  check_bool "not mem 10" false (Label.mem l 10)

let label_first_after () =
  let l = Label.of_list [ 2; 4; 9 ] in
  check_int_option "after 0" (Some 2) (Label.first_after l 0);
  check_int_option "after 2" (Some 4) (Label.first_after l 2);
  check_int_option "after 4" (Some 9) (Label.first_after l 4);
  check_int_option "after 9" None (Label.first_after l 9)

let label_count_in () =
  let l = Label.of_list [ 2; 4; 9 ] in
  (* Intervals are (lo, hi]. *)
  check_int "whole" 3 (Label.count_in l ~lo:0 ~hi:9);
  check_int "excludes lo" 2 (Label.count_in l ~lo:2 ~hi:9);
  check_int "includes hi" 1 (Label.count_in l ~lo:2 ~hi:4);
  check_int "empty interval" 0 (Label.count_in l ~lo:4 ~hi:4);
  check_int "reversed" 0 (Label.count_in l ~lo:9 ~hi:2)

let label_any_in () =
  let l = Label.of_list [ 2; 4; 9 ] in
  check_int_option "smallest in (1,9]" (Some 2) (Label.any_in l ~lo:1 ~hi:9);
  check_int_option "in (2,4]" (Some 4) (Label.any_in l ~lo:2 ~hi:4);
  check_int_option "none in (4,8]" None (Label.any_in l ~lo:4 ~hi:8)

let label_union () =
  Alcotest.(check (list int)) "union merges"
    [ 1; 2; 3 ]
    (Label.to_list (Label.union (Label.of_list [ 1; 3 ]) (Label.of_list [ 2; 3 ])))

let label_lifetime () =
  let l = Label.of_list [ 2; 7 ] in
  check_bool "fits" true (Label.within_lifetime l 7);
  check_bool "too long" false (Label.within_lifetime l 6);
  check_bool "empty fits anything" true (Label.within_lifetime Label.empty 1)

let label_singleton () =
  Alcotest.(check (list int)) "singleton" [ 4 ]
    (Label.to_list (Label.singleton 4))

(* --------------------------------------------------------------- *)
(* Tgraph *)

let tgraph_create_validations () =
  let g = Graph.create Undirected ~n:2 [ (0, 1) ] in
  Alcotest.check_raises "wrong labels length"
    (Invalid_argument "Tgraph.create: one label set per edge required")
    (fun () -> ignore (Tgraph.create g ~lifetime:3 [||]));
  Alcotest.check_raises "label beyond lifetime"
    (Invalid_argument "Tgraph.create: label beyond the lifetime") (fun () ->
      ignore (Tgraph.create g ~lifetime:3 [| Label.singleton 4 |]));
  Alcotest.check_raises "bad lifetime"
    (Invalid_argument "Tgraph.create: lifetime must be positive") (fun () ->
      ignore (Tgraph.create g ~lifetime:0 [| Label.empty |]))

let tgraph_counts () =
  let net = fixture () in
  check_int "n" 5 (Tgraph.n net);
  check_int "lifetime" 8 (Tgraph.lifetime net);
  check_int "label count" 9 (Tgraph.label_count net);
  (* Undirected: each label contributes two stream entries. *)
  check_int "time edges" 18 (Tgraph.time_edge_count net)

let tgraph_directed_counts () =
  let net = directed_line () in
  check_int "one direction each" 3 (Tgraph.time_edge_count net)

let tgraph_stream_sorted () =
  let net = fixture () in
  let last = ref 0 in
  Tgraph.iter_time_edges net (fun ~src:_ ~dst:_ ~label ~edge:_ ->
      check_bool "non-decreasing" true (label >= !last);
      last := label)

let tgraph_stream_entries_valid () =
  let net = fixture () in
  Tgraph.iter_time_edges net (fun ~src ~dst ~label ~edge ->
      let u, v = Graph.edge_endpoints (Tgraph.graph net) edge in
      check_bool "endpoints match edge" true
        ((src = u && dst = v) || (src = v && dst = u));
      check_bool "label in edge set" true (Label.mem (Tgraph.labels net edge) label))

let tgraph_crossings () =
  let net = fixture () in
  check_int "two arcs out of 0" 2 (Array.length (Tgraph.crossings_out net 0));
  check_int "three arcs into 4" 3 (Array.length (Tgraph.crossings_in net 4))

let tgraph_can_cross_at () =
  let net = fixture () in
  check_bool "0-4 at 1" true (Tgraph.can_cross_at net ~src:0 ~dst:4 1);
  check_bool "4-0 at 1 (undirected)" true (Tgraph.can_cross_at net ~src:4 ~dst:0 1);
  check_bool "0-4 at 2" false (Tgraph.can_cross_at net ~src:0 ~dst:4 2);
  check_bool "no arc 0-3" false (Tgraph.can_cross_at net ~src:0 ~dst:3 1)

let tgraph_directed_can_cross () =
  let net = directed_line () in
  check_bool "forward" true (Tgraph.can_cross_at net ~src:0 ~dst:1 1);
  check_bool "not backward" false (Tgraph.can_cross_at net ~src:1 ~dst:0 1)

let tgraph_time_edge_accessor () =
  let net = directed_line () in
  (* Sorted by label: (0,1,1) then (2,0,2) then (1,2,3). *)
  Alcotest.(check (triple int int int)) "first" (0, 1, 1) (Tgraph.time_edge net 0);
  Alcotest.(check (triple int int int)) "second" (2, 0, 2) (Tgraph.time_edge net 1);
  Alcotest.(check (triple int int int)) "third" (1, 2, 3) (Tgraph.time_edge net 2)

(* --------------------------------------------------------------- *)
(* Journey *)

let j steps = List.map (fun (src, dst, label) -> { Journey.src; dst; label }) steps

let journey_accessors () =
  let journey = j [ (0, 1, 2); (1, 3, 3); (3, 4, 4) ] in
  check_int_option "source" (Some 0) (Journey.source journey);
  check_int_option "target" (Some 4) (Journey.target journey);
  check_int_option "arrival" (Some 4) (Journey.arrival journey);
  check_int_option "departure" (Some 2) (Journey.departure journey);
  check_int "length" 3 (Journey.length journey);
  Alcotest.(check (list int)) "vertices" [ 0; 1; 3; 4 ]
    (Journey.vertices journey)

let journey_empty () =
  check_int_option "no source" None (Journey.source []);
  check_int_option "no arrival" None (Journey.arrival []);
  check_int "length" 0 (Journey.length []);
  Alcotest.(check (list int)) "no vertices" [] (Journey.vertices [])

let journey_monotonicity () =
  check_bool "increasing ok" true
    (Journey.strictly_increasing (j [ (0, 1, 1); (1, 2, 3) ]));
  check_bool "equal labels rejected" false
    (Journey.strictly_increasing (j [ (0, 1, 2); (1, 2, 2) ]));
  check_bool "decreasing rejected" false
    (Journey.strictly_increasing (j [ (0, 1, 3); (1, 2, 1) ]))

let journey_connectivity () =
  check_bool "chained" true (Journey.connected (j [ (0, 1, 1); (1, 2, 2) ]));
  check_bool "broken" false (Journey.connected (j [ (0, 1, 1); (2, 3, 2) ]))

let journey_valid_in () =
  let net = fixture () in
  check_bool "real journey" true
    (Journey.valid_in net (j [ (0, 1, 2); (1, 3, 3); (3, 4, 4) ]));
  check_bool "label not available" false
    (Journey.valid_in net (j [ (0, 1, 3) ]));
  check_bool "no such edge" false (Journey.valid_in net (j [ (0, 3, 1) ]))

let journey_is_journey () =
  let net = fixture () in
  let journey = j [ (0, 1, 2); (1, 2, 5) ] in
  check_bool "anchored" true (Journey.is_journey net ~source:0 ~target:2 journey);
  check_bool "wrong source" false
    (Journey.is_journey net ~source:1 ~target:2 journey);
  check_bool "wrong target" false
    (Journey.is_journey net ~source:0 ~target:3 journey);
  check_bool "empty at a vertex" true (Journey.is_journey net ~source:3 ~target:3 []);
  check_bool "empty across vertices" false
    (Journey.is_journey net ~source:3 ~target:4 [])

let journey_direction_matters () =
  let net = directed_line () in
  check_bool "with the arcs" true
    (Journey.valid_in net (j [ (0, 1, 1); (1, 2, 3) ]));
  check_bool "against the arcs" false (Journey.valid_in net (j [ (1, 0, 1) ]))

let journey_walks_allowed () =
  (* Journeys are walks: revisiting a vertex is fine (Definition 2). *)
  let g = Graph.create Undirected ~n:2 [ (0, 1) ] in
  let net = Tgraph.create g ~lifetime:3 [| Label.of_list [ 1; 2; 3 ] |] in
  check_bool "0-1-0-1" true
    (Journey.is_journey net ~source:0 ~target:1
       (j [ (0, 1, 1); (1, 0, 2); (0, 1, 3) ]))

let pp_smoke () =
  let net = fixture () in
  let label_text = Format.asprintf "%a" Label.pp (Tgraph.labels net 0) in
  check_bool "label pp" true (String.length label_text > 0);
  let net_text = Format.asprintf "%a" Tgraph.pp net in
  check_bool "tgraph pp mentions lifetime" true (contains net_text "lifetime");
  let journey = j [ (0, 1, 2); (1, 2, 5) ] in
  let journey_text = Format.asprintf "%a" Journey.pp journey in
  check_bool "journey pp shows a step" true (contains journey_text "-[2]->")

let suites =
  [
    ( "temporal.label",
      [
        case "of_list normalises" label_of_list_normalises;
        case "invalid label" label_invalid;
        case "empty" label_empty;
        case "range" label_range;
        case "mem" label_mem;
        case "first_after" label_first_after;
        case "count_in half-open" label_count_in;
        case "any_in" label_any_in;
        case "union" label_union;
        case "within lifetime" label_lifetime;
        case "singleton" label_singleton;
      ] );
    ( "temporal.tgraph",
      [
        case "create validations" tgraph_create_validations;
        case "counts" tgraph_counts;
        case "directed counts" tgraph_directed_counts;
        case "stream sorted" tgraph_stream_sorted;
        case "stream entries valid" tgraph_stream_entries_valid;
        case "crossings" tgraph_crossings;
        case "can_cross_at" tgraph_can_cross_at;
        case "directed can_cross" tgraph_directed_can_cross;
        case "time_edge accessor" tgraph_time_edge_accessor;
      ] );
    ( "temporal.journey",
      [
        case "accessors" journey_accessors;
        case "empty journey" journey_empty;
        case "monotonicity" journey_monotonicity;
        case "connectivity" journey_connectivity;
        case "valid_in" journey_valid_in;
        case "is_journey" journey_is_journey;
        case "direction matters" journey_direction_matters;
        case "walks allowed" journey_walks_allowed;
        case "pp smoke" pp_smoke;
      ] );
  ]
