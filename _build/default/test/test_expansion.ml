(* Tests for the Expansion Process (Algorithm 1). *)

open Helpers
module Rng = Prng.Rng
open Temporal

let params_exact ~l1 ~c2 ~d = { Expansion.l1; c2; d }

(* --------------------------------------------------------------- *)
(* Parameters and windows *)

let make_params_values () =
  let p = Expansion.make_params ~c1:2.0 ~c2:5 ~d:3 ~n:100 in
  check_int "l1 = round(c1 ln n)" 9 p.l1;
  check_int "c2" 5 p.c2;
  check_int "d" 3 p.d

let make_params_invalid () =
  Alcotest.check_raises "c1 <= 0"
    (Invalid_argument "Expansion.make_params: c1 must be positive") (fun () ->
      ignore (Expansion.make_params ~c1:0. ~c2:2 ~d:1 ~n:10));
  Alcotest.check_raises "c2 < 1"
    (Invalid_argument "Expansion.make_params: c2 must be >= 1") (fun () ->
      ignore (Expansion.make_params ~c1:1. ~c2:0 ~d:1 ~n:10));
  Alcotest.check_raises "d < 0"
    (Invalid_argument "Expansion.make_params: d must be >= 0") (fun () ->
      ignore (Expansion.make_params ~c1:1. ~c2:2 ~d:(-1) ~n:10))

let horizon_formula () =
  let p = params_exact ~l1:7 ~c2:3 ~d:4 in
  check_int "3*l1 + 2*d*c2" ((3 * 7) + (2 * 4 * 3)) (Expansion.horizon p)

(* The window schedule must tile [0, horizon] exactly as in the paper:
   Delta_1 .. Delta_{d+1}, Delta_*, Delta'_{d+1} .. Delta'_1. *)
let windows_tile () =
  let p = params_exact ~l1:6 ~c2:2 ~d:3 in
  let check_adjacent (_, hi) (lo', _) = check_int "windows abut" hi lo' in
  let forward = List.init (p.d + 1) (fun i -> Expansion.delta p (i + 1)) in
  let backward = List.init (p.d + 1) (fun i -> Expansion.delta' p (i + 1)) in
  (* Forward windows chain from 0. *)
  check_int "starts at 0" 0 (fst (List.hd forward));
  List.iteri
    (fun i window ->
      if i > 0 then check_adjacent (List.nth forward (i - 1)) window)
    forward;
  (* Delta* follows the last forward window. *)
  let star = Expansion.delta_star p in
  check_adjacent (List.nth forward p.d) star;
  (* Backward windows run from Delta* up to the horizon, in reverse index
     order: Delta'_{d+1} abuts Delta*, Delta'_1 ends at the horizon. *)
  check_adjacent star (List.nth backward p.d);
  for i = p.d downto 1 do
    check_adjacent (List.nth backward i) (List.nth backward (i - 1))
  done;
  check_int "ends at horizon" (Expansion.horizon p)
    (snd (List.hd backward))

let windows_widths () =
  let p = params_exact ~l1:6 ~c2:2 ~d:3 in
  let width (lo, hi) = hi - lo in
  check_int "Delta_1 width = l1" 6 (width (Expansion.delta p 1));
  check_int "middle width = c2" 2 (width (Expansion.delta p 2));
  check_int "Delta* width = l1" 6 (width (Expansion.delta_star p));
  check_int "Delta'_1 width = l1" 6 (width (Expansion.delta' p 1));
  check_int "Delta'_3 width = c2" 2 (width (Expansion.delta' p 3))

let windows_range_checks () =
  let p = params_exact ~l1:2 ~c2:2 ~d:1 in
  Alcotest.check_raises "delta 0"
    (Invalid_argument "Expansion.delta: index out of range") (fun () ->
      ignore (Expansion.delta p 0));
  Alcotest.check_raises "delta' too big"
    (Invalid_argument "Expansion.delta': index out of range") (fun () ->
      ignore (Expansion.delta' p 3))

let default_params_sane =
  qcase ~count:50 "default params well-formed across n" ~print:string_of_int
    QCheck2.Gen.(int_range 4 2000)
    (fun n ->
      let p = Expansion.default_params ~n () in
      p.l1 >= 1 && p.c2 >= 1 && p.d >= 1 && Expansion.horizon p > 0)

(* --------------------------------------------------------------- *)
(* Runs *)

let run_s_equals_t () =
  let g = Sgraph.Gen.clique Directed 8 in
  let net = Assignment.normalized_uniform (rng ()) g in
  let outcome = Expansion.run net (Expansion.default_params ~n:8 ()) ~s:3 ~t:3 in
  check_bool "trivial success" true outcome.success;
  check_bool "empty journey" true (outcome.journey = Some []);
  check_int_option "arrival 0" (Some 0) outcome.arrival

let run_bad_endpoint () =
  let g = Sgraph.Gen.clique Directed 4 in
  let net = Assignment.normalized_uniform (rng ()) g in
  Alcotest.check_raises "endpoint range"
    (Invalid_argument "Expansion.run: endpoint out of range") (fun () ->
      ignore (Expansion.run net (Expansion.default_params ~n:4 ()) ~s:0 ~t:9))

let run_success_on_all_times () =
  (* With every label present everywhere, depth d = 0 succeeds
     deterministically on a clique: Gamma_1(s) and Gamma'_1(t) are the
     full vertex set and any edge between them matches in Delta*.
     (Deeper layers would be empty here — the first window absorbs every
     vertex — which is faithful to the algorithm, so d = 0 is the only
     deterministic configuration.) *)
  let n = 16 in
  let g = Sgraph.Gen.clique Directed n in
  let p = params_exact ~l1:2 ~c2:2 ~d:0 in
  let net = Assignment.all_times g ~a:(Expansion.horizon p) in
  let outcome = Expansion.run net p ~s:0 ~t:5 in
  check_bool "success" true outcome.success;
  (match outcome.journey with
  | Some journey ->
    check_bool "journey valid" true
      (Journey.is_journey net ~source:0 ~target:5 journey)
  | None -> Alcotest.fail "expected a journey")

let run_failure_without_labels () =
  let n = 8 in
  let g = Sgraph.Gen.clique Directed n in
  let net = Assignment.of_fun g ~a:5 (fun _ -> Label.empty) in
  let outcome =
    Expansion.run net (params_exact ~l1:2 ~c2:1 ~d:1) ~s:0 ~t:3
  in
  check_bool "failure" true (not outcome.success);
  check_bool "no journey" true (outcome.journey = None);
  Alcotest.(check (array int)) "empty layers" [| 0; 0 |] outcome.forward_layers

let run_journeys_valid =
  qcase ~count:60 "successful runs return valid short journeys"
    ~print:string_of_int
    QCheck2.Gen.(int_range 1 10_000)
    (fun seed ->
      let n = 64 in
      let g = Sgraph.Gen.clique Directed n in
      let net = Assignment.normalized_uniform (Rng.create seed) g in
      let p = Expansion.default_params ~n () in
      let s = seed mod n in
      let t = (s + 1 + (seed / 7 mod (n - 1))) mod n in
      let outcome = Expansion.run net p ~s ~t in
      match (outcome.success, outcome.journey, outcome.arrival) with
      | false, None, None -> true (* failure is allowed, whp only *)
      | true, Some journey, Some arrival ->
        Journey.is_journey net ~source:s ~target:t journey
        && arrival <= Expansion.horizon p
        && Journey.arrival journey = Some arrival
      | _ -> false)

let run_layer_sizes_consistent () =
  let n = 64 in
  let g = Sgraph.Gen.clique Directed n in
  let net = Assignment.normalized_uniform (rng ()) g in
  let p = Expansion.default_params ~n () in
  let outcome = Expansion.run net p ~s:0 ~t:1 in
  check_int "d+1 forward layers" (p.d + 1) (Array.length outcome.forward_layers);
  check_int "d+1 backward layers" (p.d + 1)
    (Array.length outcome.backward_layers);
  Array.iter
    (fun size -> check_bool "layer size within n" true (size >= 0 && size < n))
    outcome.forward_layers

let run_succeeds_often () =
  (* Statistical smoke: with default parameters on n = 128, at least 80%
     of pairs succeed (the paper proves -> 1; defaults are tuned well
     above that empirically). *)
  let n = 128 in
  let g = Sgraph.Gen.clique Directed n in
  let p = Expansion.default_params ~n () in
  let root = rng () in
  let successes = ref 0 in
  let attempts = 30 in
  for i = 1 to attempts do
    let net = Assignment.normalized_uniform (Rng.split root) g in
    let s = i mod n and t = (i * 17 + 1) mod n in
    let s, t = if s = t then (s, (t + 1) mod n) else (s, t) in
    if (Expansion.run net p ~s ~t).success then incr successes
  done;
  check_bool
    (Printf.sprintf "%d/%d succeeded" !successes attempts)
    true
    (!successes >= (8 * attempts) / 10)

(* Remark 1: the same result holds for the undirected clique. *)
let run_undirected_clique () =
  let n = 128 in
  let g = Sgraph.Gen.clique Undirected n in
  let p = Expansion.default_params ~n () in
  let root = rng () in
  let successes = ref 0 in
  let attempts = 20 in
  for i = 1 to attempts do
    let net = Assignment.normalized_uniform (Rng.split root) g in
    let s = i mod n and t = ((i * 31) + 7) mod n in
    let s, t = if s = t then (s, (t + 1) mod n) else (s, t) in
    let outcome = Expansion.run net p ~s ~t in
    if outcome.success then begin
      incr successes;
      match outcome.journey with
      | Some journey ->
        check_bool "undirected journey valid" true
          (Journey.is_journey net ~source:s ~target:t journey)
      | None -> Alcotest.fail "success without a journey"
    end
  done;
  check_bool
    (Printf.sprintf "undirected success %d/%d" !successes attempts)
    true
    (!successes >= (7 * attempts) / 10)

let suites =
  [
    ( "temporal.expansion.params",
      [
        case "make_params" make_params_values;
        case "make_params invalid" make_params_invalid;
        case "horizon" horizon_formula;
        case "windows tile [0, horizon]" windows_tile;
        case "window widths" windows_widths;
        case "window range checks" windows_range_checks;
        default_params_sane;
      ] );
    ( "temporal.expansion.run",
      [
        case "s = t" run_s_equals_t;
        case "bad endpoint" run_bad_endpoint;
        case "deterministic success on all-times" run_success_on_all_times;
        case "failure without labels" run_failure_without_labels;
        run_journeys_valid;
        case "layer sizes consistent" run_layer_sizes_consistent;
        case "succeeds often at defaults" run_succeeds_often;
        case "undirected clique (Remark 1)" run_undirected_clique;
      ] );
  ]
