(* Tests for Reachability (Treach, Definition 6) and Assignment. *)

open Helpers
module Graph = Sgraph.Graph
module Rng = Prng.Rng
open Temporal

(* --------------------------------------------------------------- *)
(* Reachability *)

let treach_fixture () =
  check_bool "fixture preserves reachability" true
    (Reachability.treach (fixture ()))

let treach_broken_path () =
  let g = Graph.create Undirected ~n:3 [ (0, 1); (1, 2) ] in
  let net =
    Tgraph.create g ~lifetime:3 [| Label.singleton 2; Label.singleton 1 |]
  in
  check_bool "out-of-order labels break Treach" false (Reachability.treach net);
  let missing = Reachability.missing_pairs net in
  check_bool "0 -> 2 missing" true (List.mem (0, 2) missing);
  check_bool "2 -> 0 fine (2,1 then 1,0? no: 1 then 2 works)" true
    (not (List.mem (2, 0) missing))

let treach_empty_labels_disconnected_static () =
  (* Two static components, no labels at all: Treach holds vacuously
     within the "no static path" pairs and fails inside components. *)
  let g = Graph.create Undirected ~n:4 [ (0, 1); (2, 3) ] in
  let net = Tgraph.create g ~lifetime:2 [| Label.empty; Label.empty |] in
  check_bool "labelless edges break Treach" false (Reachability.treach net);
  check_int "4 missing ordered pairs" 4
    (List.length (Reachability.missing_pairs net))

let treach_isolated_vertices () =
  let g = Graph.create Undirected ~n:3 [] in
  let net = Tgraph.create g ~lifetime:1 [||] in
  check_bool "no static pairs -> Treach" true (Reachability.treach net);
  check_float "ratio 1 by convention" 1. (Reachability.reachability_ratio net)

let reachable_pair_counts () =
  let net = fixture () in
  check_int "all 20 ordered pairs" 20 (Reachability.reachable_pair_count net);
  check_int "static same" 20 (Reachability.static_reachable_pair_count net);
  check_float "ratio" 1. (Reachability.reachability_ratio net)

let reachable_pair_counts_partial () =
  let g = Graph.create Undirected ~n:3 [ (0, 1); (1, 2) ] in
  let net =
    Tgraph.create g ~lifetime:3 [| Label.singleton 2; Label.singleton 1 |]
  in
  (* Journeys: 0<->1, 1<->2, 2 -> 0 (2-1@1 then 1-0@2); missing 0 -> 2. *)
  check_int "five of six" 5 (Reachability.reachable_pair_count net);
  check_int "six static" 6 (Reachability.static_reachable_pair_count net)

let treach_iff_no_missing =
  qcase ~count:120 "treach <=> missing_pairs empty" ~print:print_params
    gen_params
    (fun params ->
      let net = random_tnet params in
      Reachability.treach net = (Reachability.missing_pairs net = []))

let ratio_one_iff_treach =
  qcase ~count:120 "ratio = 1 <=> treach" ~print:print_params gen_params
    (fun params ->
      let net = random_tnet params in
      Reachability.treach net = (Reachability.reachability_ratio net >= 1.))

let temporally_reachable_consistent () =
  let net = fixture () in
  check_bool "0 reaches 3" true (Reachability.temporally_reachable net 0 3);
  let g = Graph.create Undirected ~n:3 [ (0, 1); (1, 2) ] in
  let broken =
    Tgraph.create g ~lifetime:3 [| Label.singleton 2; Label.singleton 1 |]
  in
  check_bool "0 cannot reach 2" false
    (Reachability.temporally_reachable broken 0 2)

(* --------------------------------------------------------------- *)
(* Assignment *)

let assignment_uniform_single () =
  let g = Sgraph.Gen.clique Directed 10 in
  let net = Assignment.uniform_single (rng ()) g ~a:7 in
  check_int "lifetime" 7 (Tgraph.lifetime net);
  Graph.iter_edges g (fun e _ _ ->
      let labels = Tgraph.labels net e in
      check_int "exactly one label" 1 (Label.size labels);
      check_bool "in range" true
        (Label.min_label labels >= 1 && Label.max_label labels <= 7))

let assignment_normalized () =
  let g = Sgraph.Gen.clique Directed 12 in
  let net = Assignment.normalized_uniform (rng ()) g in
  check_int "a = n" 12 (Tgraph.lifetime net)

let assignment_uniform_single_covers =
  qcase ~count:30 "single labels cover {1..a} across many edges"
    ~print:string_of_int
    QCheck2.Gen.(int_range 1 500)
    (fun seed ->
      let g = Sgraph.Gen.clique Directed 20 in
      let net = Assignment.uniform_single (Rng.create seed) g ~a:4 in
      let seen = Array.make 5 false in
      Graph.iter_edges g (fun e _ _ ->
          seen.(Label.min_label (Tgraph.labels net e)) <- true);
      (* 380 draws over 4 values: all hit, overwhelmingly. *)
      seen.(1) && seen.(2) && seen.(3) && seen.(4))

let assignment_multi () =
  let g = Sgraph.Gen.star 8 in
  let net = Assignment.uniform_multi (rng ()) g ~a:50 ~r:5 in
  Graph.iter_edges g (fun e _ _ ->
      let size = Label.size (Tgraph.labels net e) in
      check_bool "between 1 and r (collisions collapse)" true
        (size >= 1 && size <= 5))

let assignment_multi_zero () =
  let g = Sgraph.Gen.star 4 in
  let net = Assignment.uniform_multi (rng ()) g ~a:5 ~r:0 in
  check_int "no labels at all" 0 (Tgraph.label_count net)

let assignment_multi_invalid () =
  Alcotest.check_raises "negative r"
    (Invalid_argument "Assignment.uniform_multi: r must be >= 0") (fun () ->
      ignore (Assignment.uniform_multi (rng ()) (Sgraph.Gen.star 4) ~a:5 ~r:(-1)))

let assignment_of_dist_point () =
  let g = Sgraph.Gen.path 5 in
  let net = Assignment.of_dist (rng ()) (Point 3) g ~a:10 ~r:4 in
  Graph.iter_edges g (fun e _ _ ->
      Alcotest.(check (list int)) "all mass at 3" [ 3 ]
        (Label.to_list (Tgraph.labels net e)))

let assignment_constant () =
  let g = Sgraph.Gen.cycle 4 in
  let net = Assignment.constant g ~a:9 (Label.of_list [ 2; 5 ]) in
  check_int "label count" 8 (Tgraph.label_count net)

let assignment_all_times_collapses_to_hops () =
  (* With every time available, the temporal distance from a vertex equals
     its BFS hop distance (cross one edge per time step, greedily). *)
  let g = Sgraph.Gen.grid 3 3 in
  let net = Assignment.all_times g ~a:(Graph.n g) in
  let hops = Sgraph.Traverse.bfs g 0 in
  let res = Foremost.run net 0 in
  for v = 0 to Graph.n g - 1 do
    check_int_option
      (Printf.sprintf "hop distance to %d" v)
      (Some hops.(v))
      (Foremost.distance res v)
  done

let assignment_of_fun () =
  let g = Sgraph.Gen.path 3 in
  let net = Assignment.of_fun g ~a:4 (fun e -> Label.singleton (e + 1)) in
  check_int_option "chained path" (Some 2) (Distance.distance net 0 2)

let assignment_periodic () =
  let g = Sgraph.Gen.path 6 in
  let net = Assignment.periodic (rng ()) g ~a:20 ~period:5 in
  Graph.iter_edges g (fun e _ _ ->
      let labels = Label.to_list (Tgraph.labels net e) in
      check_bool "at least floor(a/p) ticks" true (List.length labels >= 4);
      match labels with
      | first :: _ ->
        check_bool "phase within the first period" true (first >= 1 && first <= 5);
        List.iteri
          (fun i l -> check_int "arithmetic progression" (first + (5 * i)) l)
          labels
      | [] -> Alcotest.fail "periodic edges are never empty")

let assignment_periodic_invalid () =
  Alcotest.check_raises "period 0"
    (Invalid_argument "Assignment.periodic: period must be >= 1") (fun () ->
      ignore (Assignment.periodic (rng ()) (Sgraph.Gen.path 3) ~a:5 ~period:0))

let assignment_bursty_extremes () =
  let g = Sgraph.Gen.path 4 in
  let never = Assignment.bursty (rng ()) g ~a:10 ~burst:3 ~rate:0. in
  check_int "rate 0: empty" 0 (Tgraph.label_count never);
  let always = Assignment.bursty (rng ()) g ~a:10 ~burst:1 ~rate:1. in
  check_int "rate 1, burst 1: everything" 30 (Tgraph.label_count always)

let assignment_bursty_runs () =
  let g = Sgraph.Gen.path 3 in
  let net = Assignment.bursty (rng ()) g ~a:50 ~burst:5 ~rate:0.1 in
  Graph.iter_edges g (fun e _ _ ->
      List.iter
        (fun l -> check_bool "labels within lifetime" true (l >= 1 && l <= 50))
        (Label.to_list (Tgraph.labels net e)))

let assignment_bursty_invalid () =
  Alcotest.check_raises "burst 0"
    (Invalid_argument "Assignment.bursty: burst must be >= 1") (fun () ->
      ignore (Assignment.bursty (rng ()) (Sgraph.Gen.path 3) ~a:5 ~burst:0 ~rate:0.5));
  Alcotest.check_raises "rate out of range"
    (Invalid_argument "Assignment.bursty: rate not in [0,1]") (fun () ->
      ignore (Assignment.bursty (rng ()) (Sgraph.Gen.path 3) ~a:5 ~burst:2 ~rate:2.))

let suites =
  [
    ( "temporal.reachability",
      [
        case "fixture treach" treach_fixture;
        case "broken path" treach_broken_path;
        case "labelless edges" treach_empty_labels_disconnected_static;
        case "isolated vertices" treach_isolated_vertices;
        case "pair counts" reachable_pair_counts;
        case "partial pair counts" reachable_pair_counts_partial;
        treach_iff_no_missing;
        ratio_one_iff_treach;
        case "temporally_reachable" temporally_reachable_consistent;
      ] );
    ( "temporal.assignment",
      [
        case "uniform single" assignment_uniform_single;
        case "normalized" assignment_normalized;
        assignment_uniform_single_covers;
        case "multi label" assignment_multi;
        case "multi r=0" assignment_multi_zero;
        case "multi invalid" assignment_multi_invalid;
        case "of_dist point" assignment_of_dist_point;
        case "constant" assignment_constant;
        case "all_times = hop distances" assignment_all_times_collapses_to_hops;
        case "of_fun" assignment_of_fun;
        case "periodic" assignment_periodic;
        case "periodic invalid" assignment_periodic_invalid;
        case "bursty extremes" assignment_bursty_extremes;
        case "bursty runs" assignment_bursty_runs;
        case "bursty invalid" assignment_bursty_invalid;
      ] );
  ]
