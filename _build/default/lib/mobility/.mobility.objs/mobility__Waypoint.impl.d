lib/mobility/waypoint.ml: Array Hashtbl List Option Prng Stdlib
