lib/mobility/trace.mli: Prng Temporal Waypoint
