lib/mobility/waypoint.mli: Prng
