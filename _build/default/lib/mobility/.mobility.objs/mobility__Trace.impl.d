lib/mobility/trace.ml: Buffer Builder In_channel List Option Printf Sgraph Stdlib String Temporal Tgraph Waypoint
