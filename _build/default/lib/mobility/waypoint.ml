module Rng = Prng.Rng

type t = {
  rng : Rng.t;
  size : int;
  xs : int array;
  ys : int array;
  wx : int array;  (* waypoints *)
  wy : int array;
  mutable tick : int;
}

let create rng ~agents ~size =
  if agents < 1 then invalid_arg "Waypoint.create: need agents >= 1";
  if size < 2 then invalid_arg "Waypoint.create: need size >= 2";
  let cell () = Rng.int rng size in
  {
    rng;
    size;
    xs = Array.init agents (fun _ -> cell ());
    ys = Array.init agents (fun _ -> cell ());
    wx = Array.init agents (fun _ -> cell ());
    wy = Array.init agents (fun _ -> cell ());
    tick = 0;
  }

let agents t = Array.length t.xs
let size t = t.size
let tick t = t.tick
let positions t = Array.init (agents t) (fun i -> (t.xs.(i), t.ys.(i)))

(* One torus step of coordinate [c] towards [target]: move along the
   shorter wrap-around direction; ties resolve to the +1 direction. *)
let step_towards size c target =
  if c = target then c
  else begin
    let forward = (target - c + size) mod size in
    let backward = (c - target + size) mod size in
    if forward <= backward then (c + 1) mod size else (c - 1 + size) mod size
  end

let step t =
  t.tick <- t.tick + 1;
  for i = 0 to agents t - 1 do
    t.xs.(i) <- step_towards t.size t.xs.(i) t.wx.(i);
    t.ys.(i) <- step_towards t.size t.ys.(i) t.wy.(i);
    if t.xs.(i) = t.wx.(i) && t.ys.(i) = t.wy.(i) then begin
      t.wx.(i) <- Rng.int t.rng t.size;
      t.wy.(i) <- Rng.int t.rng t.size
    end
  done

type contact = { a : int; b : int; time : int }

let contacts_now t =
  (* Bucket agents by cell; emit all intra-cell pairs. *)
  let buckets = Hashtbl.create (agents t) in
  for i = 0 to agents t - 1 do
    let key = (t.xs.(i), t.ys.(i)) in
    Hashtbl.replace buckets key
      (i :: (Option.value (Hashtbl.find_opt buckets key) ~default:[]))
  done;
  Hashtbl.fold
    (fun _ members acc ->
      let rec pairs acc = function
        | [] -> acc
        | x :: rest ->
          pairs
            (List.fold_left
               (fun acc y ->
                 { a = Stdlib.min x y; b = Stdlib.max x y; time = t.tick }
                 :: acc)
               acc rest)
            rest
      in
      pairs acc members)
    buckets []

let run t ~ticks =
  if ticks < 0 then invalid_arg "Waypoint.run: ticks must be >= 0";
  let log = ref [] in
  for _ = 1 to ticks do
    step t;
    log := List.rev_append (contacts_now t) !log
  done;
  List.sort
    (fun c1 c2 -> compare (c1.time, c1.a, c1.b) (c2.time, c2.a, c2.b))
    !log
