(** Contact traces → temporal networks.

    Turns a chronological contact log (from {!Waypoint}, or parsed from
    the outside world) into a {!Temporal.Tgraph}: each contact
    [(a, b, t)] becomes the availability label [t] on the undirected
    edge [{a, b}].  The derived network then answers every question the
    library asks of synthetic ones — foremost journeys, flooding,
    reachability, centrality — which is how the paper's model meets
    trace-driven evaluation. *)

val of_contacts :
  n:int -> lifetime:int -> Waypoint.contact list -> Temporal.Tgraph.t
(** @raise Invalid_argument on endpoints outside [0..n-1], times outside
    [1..lifetime], or a self-contact. *)

val of_waypoint_run :
  Prng.Rng.t -> agents:int -> size:int -> ticks:int -> Temporal.Tgraph.t
(** Simulate a fresh random-waypoint system for [ticks] ticks and
    convert its contact log (lifetime = [ticks]). *)

type stats = {
  contacts : int;  (** total contact events *)
  edges : int;  (** distinct agent pairs that ever met *)
  mean_labels_per_edge : float;
  density : float;  (** edges / C(n,2) *)
}

val stats : Temporal.Tgraph.t -> stats

(** {2 Trace I/O}

    The interchange format real contact datasets ship in: one event per
    line, [time agent agent], ['#'] comments and blank lines ignored. *)

val contacts_to_string : Waypoint.contact list -> string

val contacts_of_string : string -> (Waypoint.contact list, string) result
(** Events are normalised ([a < b]) and returned chronologically sorted;
    [Error] pinpoints the offending line. *)

val load : ?n:int -> ?lifetime:int -> string -> (Temporal.Tgraph.t, string) result
(** [load path] parses a trace file and builds the temporal network;
    the agent count defaults to [max id + 1] and the lifetime to the
    last event time. *)
