(** Random-waypoint mobility on a torus grid.

    The paper motivates random availability with "many networks of today
    have links that are not always available"; the canonical source of
    such schedules is mobility.  This module simulates agents walking a
    [size × size] torus — each picks a uniform waypoint, steps one cell
    per tick towards it (torus-shortest moves), picks a new waypoint on
    arrival — and records a *contact* whenever two agents share a cell
    at a tick.  The contact log is the raw material for trace-driven
    temporal networks ({!Trace}). *)

type t

val create : Prng.Rng.t -> agents:int -> size:int -> t
(** Agents start at uniform cells.
    @raise Invalid_argument unless [agents >= 1] and [size >= 2]. *)

val agents : t -> int
val size : t -> int
val tick : t -> int
(** Ticks simulated so far. *)

val positions : t -> (int * int) array
(** Current cell of each agent (do not mutate). *)

val step : t -> unit
(** Advance one tick: every agent moves one cell towards its waypoint
    (torus metric), re-rolling the waypoint when reached. *)

type contact = { a : int; b : int; time : int }
(** Agents [a < b] shared a cell at [time] (1-based tick index). *)

val run : t -> ticks:int -> contact list
(** Simulate [ticks] further steps, returning all contacts observed, in
    chronological order.
    @raise Invalid_argument if [ticks < 0]. *)
