open Temporal

let of_contacts ~n ~lifetime contacts =
  let builder = Builder.create Undirected ~n in
  List.iter
    (fun { Waypoint.a; b; time } ->
      if time < 1 || time > lifetime then
        invalid_arg "Trace.of_contacts: contact time outside the lifetime";
      Builder.add_label builder a b time)
    contacts;
  Builder.build ~lifetime builder

let of_waypoint_run rng ~agents ~size ~ticks =
  let system = Waypoint.create rng ~agents ~size in
  of_contacts ~n:agents ~lifetime:(Stdlib.max 1 ticks)
    (Waypoint.run system ~ticks)

let contacts_to_string contacts =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "# time agent agent\n";
  List.iter
    (fun { Waypoint.a; b; time } ->
      Buffer.add_string buf (Printf.sprintf "%d %d %d\n" time a b))
    contacts;
  Buffer.contents buf

let contacts_of_string text =
  let parse_line index line =
    match
      String.split_on_char ' ' (String.trim line)
      |> List.filter (fun token -> token <> "")
      |> List.map int_of_string_opt
    with
    | [ Some time; Some a; Some b ] ->
      if time < 1 then Error (Printf.sprintf "line %d: time must be >= 1" index)
      else if a < 0 || b < 0 then
        Error (Printf.sprintf "line %d: negative agent id" index)
      else if a = b then Error (Printf.sprintf "line %d: self-contact" index)
      else
        Ok { Waypoint.a = Stdlib.min a b; b = Stdlib.max a b; time }
    | _ -> Error (Printf.sprintf "line %d: expected 'time agent agent'" index)
  in
  let rec collect index acc = function
    | [] ->
      Ok
        (List.sort
           (fun (c1 : Waypoint.contact) c2 ->
             compare (c1.time, c1.a, c1.b) (c2.time, c2.a, c2.b))
           acc)
    | line :: rest ->
      let trimmed = String.trim line in
      if trimmed = "" || trimmed.[0] = '#' then collect (index + 1) acc rest
      else (
        match parse_line index line with
        | Ok contact -> collect (index + 1) (contact :: acc) rest
        | Error _ as e -> e)
  in
  collect 1 [] (String.split_on_char '\n' text)

let load ?n ?lifetime path =
  match In_channel.with_open_text path In_channel.input_all with
  | exception Sys_error msg -> Error msg
  | text -> (
    match contacts_of_string text with
    | Error _ as e -> e
    | Ok contacts ->
      let max_id =
        List.fold_left
          (fun acc { Waypoint.b; _ } -> Stdlib.max acc b)
          0 contacts
      in
      let max_time =
        List.fold_left
          (fun acc { Waypoint.time; _ } -> Stdlib.max acc time)
          1 contacts
      in
      let n = Option.value n ~default:(max_id + 1) in
      let lifetime = Option.value lifetime ~default:max_time in
      (try Ok (of_contacts ~n ~lifetime contacts)
       with Invalid_argument msg -> Error msg))

type stats = {
  contacts : int;
  edges : int;
  mean_labels_per_edge : float;
  density : float;
}

let stats net =
  let g = Tgraph.graph net in
  let n = Sgraph.Graph.n g in
  let edges = Sgraph.Graph.m g in
  let contacts = Tgraph.label_count net in
  {
    contacts;
    edges;
    mean_labels_per_edge =
      (if edges = 0 then 0. else float_of_int contacts /. float_of_int edges);
    density =
      (if n < 2 then 0.
       else float_of_int edges /. float_of_int (n * (n - 1) / 2));
  }
