lib/flow/maxflow.mli:
