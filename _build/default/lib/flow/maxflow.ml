type edge = { dst : int; mutable capacity : int; rev : int }
(* adjacency.(v) is a growable vector of edges; rev indexes the twin in
   adjacency.(dst). *)

type t = {
  n : int;
  adjacency : edge array ref array;  (* one growable vector per node *)
  sizes : int array;
  mutable handles : (int * int) list;  (* (node, index) per public edge *)
  mutable handle_count : int;
}

(* A tiny growable vector per node keeps the hot loops array-based. *)
let create n =
  if n < 0 then invalid_arg "Maxflow.create: negative node count";
  {
    n;
    adjacency = Array.init n (fun _ -> ref [||]);
    sizes = Array.make n 0;
    handles = [];
    handle_count = 0;
  }

let node_count t = t.n

let push t v edge =
  let vec = t.adjacency.(v) in
  let capacity = Array.length !vec in
  if t.sizes.(v) = capacity then begin
    let grown =
      Array.make (Stdlib.max 4 (2 * capacity)) { dst = 0; capacity = 0; rev = 0 }
    in
    Array.blit !vec 0 grown 0 capacity;
    vec := grown
  end;
  !vec.(t.sizes.(v)) <- edge;
  t.sizes.(v) <- t.sizes.(v) + 1;
  t.sizes.(v) - 1

let add_edge t ~src ~dst ~capacity =
  if src < 0 || src >= t.n || dst < 0 || dst >= t.n then
    invalid_arg "Maxflow.add_edge: endpoint out of range";
  if capacity < 0 then invalid_arg "Maxflow.add_edge: negative capacity";
  let forward_index = t.sizes.(src) in
  let backward_index = if src = dst then t.sizes.(dst) + 1 else t.sizes.(dst) in
  ignore (push t src { dst; capacity; rev = backward_index });
  ignore (push t dst { dst = src; capacity = 0; rev = forward_index });
  let handle = t.handle_count in
  t.handle_count <- handle + 1;
  t.handles <- (src, forward_index) :: t.handles;
  handle

let edge_at t v i = !(t.adjacency.(v)).(i)

(* Dinic: BFS level graph + DFS blocking flows. *)
let max_flow t ~source ~sink =
  if source < 0 || source >= t.n || sink < 0 || sink >= t.n then
    invalid_arg "Maxflow.max_flow: endpoint out of range";
  if source = sink then invalid_arg "Maxflow.max_flow: source = sink";
  let level = Array.make t.n (-1) in
  let iter = Array.make t.n 0 in
  let queue = Queue.create () in
  let bfs () =
    Array.fill level 0 t.n (-1);
    Queue.clear queue;
    level.(source) <- 0;
    Queue.add source queue;
    while not (Queue.is_empty queue) do
      let v = Queue.take queue in
      for i = 0 to t.sizes.(v) - 1 do
        let e = edge_at t v i in
        if e.capacity > 0 && level.(e.dst) < 0 then begin
          level.(e.dst) <- level.(v) + 1;
          Queue.add e.dst queue
        end
      done
    done;
    level.(sink) >= 0
  in
  let rec dfs v limit =
    if v = sink then limit
    else begin
      let pushed = ref 0 in
      while !pushed = 0 && iter.(v) < t.sizes.(v) do
        let e = edge_at t v iter.(v) in
        if e.capacity > 0 && level.(e.dst) = level.(v) + 1 then begin
          let sub = dfs e.dst (Stdlib.min limit e.capacity) in
          if sub > 0 then begin
            e.capacity <- e.capacity - sub;
            let twin = edge_at t e.dst e.rev in
            twin.capacity <-
              (if twin.capacity > max_int - sub then max_int
               else twin.capacity + sub);
            pushed := sub
          end
          else iter.(v) <- iter.(v) + 1
        end
        else iter.(v) <- iter.(v) + 1
      done;
      !pushed
    end
  in
  let total = ref 0 in
  while bfs () do
    Array.fill iter 0 t.n 0;
    let continue = ref true in
    while !continue do
      let pushed = dfs source max_int in
      if pushed = 0 then continue := false
      else total := (if !total > max_int - pushed then max_int else !total + pushed)
    done
  done;
  !total

let flow_on t handle =
  let handles = Array.of_list (List.rev t.handles) in
  if handle < 0 || handle >= Array.length handles then
    invalid_arg "Maxflow.flow_on: bad handle";
  let v, i = handles.(handle) in
  let e = edge_at t v i in
  (* Flow = residual capacity of the twin (what was pushed forward). *)
  (edge_at t e.dst e.rev).capacity

let min_cut_side t ~source =
  let side = Array.make t.n false in
  let queue = Queue.create () in
  side.(source) <- true;
  Queue.add source queue;
  while not (Queue.is_empty queue) do
    let v = Queue.take queue in
    for i = 0 to t.sizes.(v) - 1 do
      let e = edge_at t v i in
      if e.capacity > 0 && not side.(e.dst) then begin
        side.(e.dst) <- true;
        Queue.add e.dst queue
      end
    done
  done;
  side
