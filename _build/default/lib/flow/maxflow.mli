(** Maximum flow (Dinic's algorithm) on integer-capacity networks.

    Substrate for temporal connectivity questions: the number of
    pairwise time-edge-disjoint journeys between two vertices equals a
    max flow on the time-expanded graph ({!Temporal.Expanded}), in the
    tradition of Kempe, Kleinberg & Kumar [19] and Berman's
    flows-over-time.  O(V²·E) in general, O(E·√V) on unit-capacity
    networks — far beyond anything the experiments need. *)

type t
(** A mutable flow network under construction / after solving. *)

val create : int -> t
(** [create n] — an empty network on nodes [0 .. n-1]. *)

val node_count : t -> int

val add_edge : t -> src:int -> dst:int -> capacity:int -> int
(** Adds a directed edge (and its residual twin); returns an edge handle
    for {!flow_on}.  Capacities must be non-negative; [max_int] is
    treated as unbounded.
    @raise Invalid_argument on bad endpoints or negative capacity. *)

val max_flow : t -> source:int -> sink:int -> int
(** Computes (and stores) the maximum flow value.
    @raise Invalid_argument if [source = sink] or out of range. *)

val flow_on : t -> int -> int
(** Flow routed over the edge handle after {!max_flow}. *)

val min_cut_side : t -> source:int -> bool array
(** After {!max_flow}: the source side of a minimum cut (nodes reachable
    from the source in the residual network). *)
