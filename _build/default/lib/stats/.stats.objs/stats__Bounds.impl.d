lib/stats/bounds.ml: Float List
