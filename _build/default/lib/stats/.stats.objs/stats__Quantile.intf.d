lib/stats/quantile.mli:
