lib/stats/histogram.ml: Array Buffer Printf Stdlib String
