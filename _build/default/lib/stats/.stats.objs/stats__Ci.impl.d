lib/stats/ci.ml: Format Summary
