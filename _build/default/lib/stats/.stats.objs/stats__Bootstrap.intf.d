lib/stats/bootstrap.mli: Ci Prng
