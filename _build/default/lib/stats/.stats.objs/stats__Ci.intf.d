lib/stats/ci.mli: Format Summary
