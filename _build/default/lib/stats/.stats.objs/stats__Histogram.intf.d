lib/stats/histogram.mli:
