lib/stats/bounds.mli:
