lib/stats/quantile.ml: Array Float List Stdlib
