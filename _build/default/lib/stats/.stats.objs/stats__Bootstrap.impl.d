lib/stats/bootstrap.ml: Array Ci Prng Quantile
