lib/stats/table.mli:
