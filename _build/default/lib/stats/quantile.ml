let of_sorted xs q =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Quantile.of_sorted: empty sample";
  if not (q >= 0. && q <= 1.) then invalid_arg "Quantile.of_sorted: q not in [0,1]";
  if n = 1 then xs.(0)
  else
    let h = q *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor h) in
    let hi = Stdlib.min (lo + 1) (n - 1) in
    let frac = h -. float_of_int lo in
    xs.(lo) +. (frac *. (xs.(hi) -. xs.(lo)))

let sorted_copy xs =
  let copy = Array.copy xs in
  Array.sort Float.compare copy;
  copy

let quantile xs q = of_sorted (sorted_copy xs) q
let median xs = quantile xs 0.5

let iqr xs =
  let sorted = sorted_copy xs in
  of_sorted sorted 0.75 -. of_sorted sorted 0.25

let quantiles xs qs =
  let sorted = sorted_copy xs in
  List.map (fun q -> (q, of_sorted sorted q)) qs
