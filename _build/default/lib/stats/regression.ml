type fit = { alpha : float; beta : float; r2 : float; n : int }

let pp_fit ppf { alpha; beta; r2; n } =
  Format.fprintf ppf "y = %.4g + %.4g*x (R^2=%.4f, n=%d)" alpha beta r2 n

let fit_arrays xs ys =
  let n = Array.length xs in
  if n <> Array.length ys then invalid_arg "Regression.fit_arrays: length mismatch";
  if n < 2 then invalid_arg "Regression.fit_arrays: need at least two points";
  let fn = float_of_int n in
  let sum = Array.fold_left ( +. ) 0. in
  let mean_x = sum xs /. fn and mean_y = sum ys /. fn in
  let sxx = ref 0. and sxy = ref 0. and syy = ref 0. in
  for i = 0 to n - 1 do
    let dx = xs.(i) -. mean_x and dy = ys.(i) -. mean_y in
    sxx := !sxx +. (dx *. dx);
    sxy := !sxy +. (dx *. dy);
    syy := !syy +. (dy *. dy)
  done;
  if !sxx = 0. then invalid_arg "Regression.fit_arrays: all x equal";
  let beta = !sxy /. !sxx in
  let alpha = mean_y -. (beta *. mean_x) in
  let r2 =
    if !syy = 0. then 1. else 1. -. ((!syy -. (beta *. !sxy)) /. !syy)
  in
  { alpha; beta; r2; n }

let fit points =
  let xs = Array.of_list (List.map fst points) in
  let ys = Array.of_list (List.map snd points) in
  fit_arrays xs ys

let fit_against ~f points = fit (List.map (fun (x, y) -> (f x, y)) points)
let fit_log points = fit_against ~f:log points
let predict { alpha; beta; _ } x = alpha +. (beta *. x)
