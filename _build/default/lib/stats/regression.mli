(** Ordinary least squares on one predictor.

    The experiments test growth laws of the form
    [y ≈ alpha + beta·f(n)] with [f = ln], [f = id], etc.; this module fits
    the line and reports the goodness of fit, which is how "the temporal
    diameter is Θ(log n)" becomes a checkable number. *)

type fit = {
  alpha : float;  (** intercept *)
  beta : float;  (** slope *)
  r2 : float;  (** coefficient of determination; 1 for a perfect line *)
  n : int;  (** number of points *)
}

val pp_fit : Format.formatter -> fit -> unit

val fit : (float * float) list -> fit
(** [fit points] is the least-squares line through [points].
    @raise Invalid_argument with fewer than two distinct x-values. *)

val fit_arrays : float array -> float array -> fit
(** Same on parallel arrays.
    @raise Invalid_argument if lengths differ. *)

val fit_against : f:(float -> float) -> (float * float) list -> fit
(** [fit_against ~f points] fits [y = alpha + beta·f(x)]. *)

val fit_log : (float * float) list -> fit
(** [fit_log points] fits [y = alpha + beta·ln x] — the paper's Θ(log n)
    shape test. *)

val predict : fit -> float -> float
(** [predict fit x] evaluates the fitted line (in the transformed
    coordinate the fit was computed in; for {!fit_log} pass [ln x]). *)
