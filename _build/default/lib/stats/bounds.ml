let chernoff_below ~mean ~beta = exp (-.(beta *. beta) *. mean /. 2.)
let chernoff_two_sided ~mean ~beta = 2. *. exp (-.(beta *. beta) *. mean /. 3.)

let harmonic d =
  let h = ref 0. in
  for k = 1 to d do
    h := !h +. (1. /. float_of_int k)
  done;
  !h

let thm7_labels ~diameter ~n = 2. *. float_of_int diameter *. log (float_of_int n)

let coupon_labels ~diameter ~n ~m =
  let d = float_of_int diameter in
  d *. (log (Float.max 1. d) +. log (float_of_int m *. float_of_int n))

let gnp_connectivity_threshold ~n = log (float_of_int n) /. float_of_int n

let thm5_lower_bound ~n ~a =
  float_of_int a /. float_of_int n *. log (float_of_int n)

let union_bound ps = Float.min 1. (Float.max 0. (List.fold_left ( +. ) 0. ps))
