let interval ?(confidence = 0.95) ?(resamples = 1000) ~statistic rng xs =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Bootstrap.interval: empty sample";
  if not (confidence > 0. && confidence < 1.) then
    invalid_arg "Bootstrap.interval: confidence must be in (0,1)";
  if resamples < 1 then invalid_arg "Bootstrap.interval: resamples must be >= 1";
  let stats =
    Array.init resamples (fun _ ->
        let resample = Array.init n (fun _ -> xs.(Prng.Rng.int rng n)) in
        statistic resample)
  in
  let tail = (1. -. confidence) /. 2. in
  {
    Ci.lo = Quantile.quantile stats tail;
    hi = Quantile.quantile stats (1. -. tail);
  }

let mean xs =
  Array.fold_left ( +. ) 0. xs /. float_of_int (Array.length xs)

let mean_interval ?confidence ?resamples rng xs =
  interval ?confidence ?resamples ~statistic:mean rng xs

let median_interval ?confidence ?resamples rng xs =
  interval ?confidence ?resamples ~statistic:Quantile.median rng xs
