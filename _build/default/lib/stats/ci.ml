type interval = { lo : float; hi : float }

let pp_interval ppf { lo; hi } = Format.fprintf ppf "[%.4g, %.4g]" lo hi

(* Acklam's rational approximation to the standard normal quantile;
   absolute error below 1.15e-9 over (0,1). *)
let normal_quantile p =
  if not (p > 0. && p < 1.) then invalid_arg "Ci: probability must be in (0,1)";
  let a0 = -3.969683028665376e+01 and a1 = 2.209460984245205e+02 in
  let a2 = -2.759285104469687e+02 and a3 = 1.383577518672690e+02 in
  let a4 = -3.066479806614716e+01 and a5 = 2.506628277459239e+00 in
  let b0 = -5.447609879822406e+01 and b1 = 1.615858368580409e+02 in
  let b2 = -1.556989798598866e+02 and b3 = 6.680131188771972e+01 in
  let b4 = -1.328068155288572e+01 in
  let c0 = -7.784894002430293e-03 and c1 = -3.223964580411365e-01 in
  let c2 = -2.400758277161838e+00 and c3 = -2.549732539343734e+00 in
  let c4 = 4.374664141464968e+00 and c5 = 2.938163982698783e+00 in
  let d0 = 7.784695709041462e-03 and d1 = 3.224671290700398e-01 in
  let d2 = 2.445134137142996e+00 and d3 = 3.754408661907416e+00 in
  let tail q =
    ((((((c0 *. q) +. c1) *. q +. c2) *. q +. c3) *. q +. c4) *. q +. c5)
    /. ((((d0 *. q +. d1) *. q +. d2) *. q +. d3) *. q +. 1.)
  in
  let p_low = 0.02425 in
  if p < p_low then tail (sqrt (-2. *. log p))
  else if p <= 1. -. p_low then
    let q = p -. 0.5 in
    let r = q *. q in
    q
    *. (((((a0 *. r +. a1) *. r +. a2) *. r +. a3) *. r +. a4) *. r +. a5)
    /. (((((b0 *. r +. b1) *. r +. b2) *. r +. b3) *. r +. b4) *. r +. 1.)
  else -.tail (sqrt (-2. *. log (1. -. p)))

let z_of_confidence confidence =
  match confidence with
  | 0.80 -> 1.2815515655
  | 0.90 -> 1.6448536270
  | 0.95 -> 1.9599639845
  | 0.98 -> 2.3263478740
  | 0.99 -> 2.5758293035
  | 0.999 -> 3.2905267315
  | c when c > 0. && c < 1. -> normal_quantile (0.5 +. (c /. 2.))
  | _ -> invalid_arg "Ci.z_of_confidence: confidence must be in (0,1)"

let mean_ci ?(confidence = 0.95) summary =
  let z = z_of_confidence confidence in
  let m = Summary.mean summary and se = Summary.stderr_mean summary in
  { lo = m -. (z *. se); hi = m +. (z *. se) }

let wilson ?(confidence = 0.95) ~trials successes =
  if trials <= 0 then invalid_arg "Ci.wilson: trials must be positive";
  if successes < 0 || successes > trials then
    invalid_arg "Ci.wilson: successes out of range";
  let z = z_of_confidence confidence in
  let n = float_of_int trials in
  let p = float_of_int successes /. n in
  let z2 = z *. z in
  let denom = 1. +. (z2 /. n) in
  let centre = p +. (z2 /. (2. *. n)) in
  let margin = z *. sqrt ((p *. (1. -. p) /. n) +. (z2 /. (4. *. n *. n))) in
  { lo = (centre -. margin) /. denom; hi = (centre +. margin) /. denom }

let proportion_point ~successes ~trials =
  float_of_int successes /. float_of_int trials
