(** Confidence intervals.

    Normal-approximation intervals for means and Wilson score intervals for
    proportions — the latter is what the reachability-probability estimates
    report, since success counts near 0 or [trials] are common. *)

type interval = { lo : float; hi : float }

val pp_interval : Format.formatter -> interval -> unit

val z_of_confidence : float -> float
(** [z_of_confidence c] is the two-sided normal critical value for
    confidence level [c] (e.g. [1.96] for [0.95]).  Supported levels:
    0.80, 0.90, 0.95, 0.98, 0.99, 0.999; other inputs fall back to a
    rational approximation of the normal quantile. *)

val mean_ci : ?confidence:float -> Summary.t -> interval
(** Normal-approximation CI for the mean of the summarised sample. *)

val wilson : ?confidence:float -> trials:int -> int -> interval
(** [wilson ~trials successes] is the Wilson score interval for a
    binomial proportion.
    @raise Invalid_argument if [trials <= 0] or [successes] out of range. *)

val proportion_point : successes:int -> trials:int -> float
(** Plain [successes / trials]. *)
