type t = {
  lo : float;
  hi : float;
  bins : int;
  width : float;
  counts : int array;
  mutable underflow : int;
  mutable overflow : int;
  mutable count : int;
}

let create ~lo ~hi ~bins =
  if bins <= 0 then invalid_arg "Histogram.create: bins must be positive";
  if not (hi > lo) then invalid_arg "Histogram.create: need hi > lo";
  {
    lo;
    hi;
    bins;
    width = (hi -. lo) /. float_of_int bins;
    counts = Array.make bins 0;
    underflow = 0;
    overflow = 0;
    count = 0;
  }

let add t x =
  t.count <- t.count + 1;
  if x < t.lo then t.underflow <- t.underflow + 1
  else if x > t.hi then t.overflow <- t.overflow + 1
  else begin
    let raw = int_of_float ((x -. t.lo) /. t.width) in
    let bin = Stdlib.min raw (t.bins - 1) in
    t.counts.(bin) <- t.counts.(bin) + 1
  end

let add_int t x = add t (float_of_int x)
let count t = t.count
let underflow t = t.underflow
let overflow t = t.overflow
let counts t = Array.copy t.counts

let bin_edges t =
  Array.init t.bins (fun i ->
      ( t.lo +. (float_of_int i *. t.width),
        t.lo +. (float_of_int (i + 1) *. t.width) ))

let mode_bin t =
  let best = ref (-1) and best_count = ref 0 in
  Array.iteri
    (fun i c ->
      if c > !best_count then begin
        best := i;
        best_count := c
      end)
    t.counts;
  !best

let render ?(width = 40) t =
  let peak = Array.fold_left Stdlib.max 1 t.counts in
  let buf = Buffer.create 256 in
  let edges = bin_edges t in
  Array.iteri
    (fun i c ->
      let lo, hi = edges.(i) in
      let bar = c * width / peak in
      Buffer.add_string buf
        (Printf.sprintf "[%8.3g, %8.3g) %6d %s\n" lo hi c (String.make bar '#')))
    t.counts;
  if t.underflow > 0 then
    Buffer.add_string buf (Printf.sprintf "underflow %d\n" t.underflow);
  if t.overflow > 0 then
    Buffer.add_string buf (Printf.sprintf "overflow %d\n" t.overflow);
  Buffer.contents buf
