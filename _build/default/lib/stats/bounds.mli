(** Theoretical quantities from the paper, as executable formulas.

    The experiment tables print these side by side with measurements:
    Chernoff tail bounds used throughout §3, the Theorem 7 sufficient
    label count, its coupon-collector refinement (§5, final note), and the
    Erdős–Rényi connectivity threshold that drives Theorem 5. *)

val chernoff_below : mean:float -> beta:float -> float
(** [chernoff_below ~mean ~beta] bounds
    [P(X <= (1-beta)·mean) <= exp(-beta²·mean/2)] for a binomial with the
    given mean — the form used in §3.1–3.2. *)

val chernoff_two_sided : mean:float -> beta:float -> float
(** Bound on [P(|X - mean| >= beta·mean)], [2·exp(-beta²·mean/3)]. *)

val harmonic : int -> float
(** [harmonic d] is [H_d = 1 + 1/2 + ... + 1/d]. *)

val thm7_labels : diameter:int -> n:int -> float
(** Theorem 7: [r > 2·d(G)·ln n] random labels per edge suffice for w.h.p.
    temporal reachability. *)

val coupon_labels : diameter:int -> n:int -> m:int -> float
(** Coupon-collector refinement (§5 note): enough labels that every one of
    the [d(G)] boxes of every edge is hit w.h.p.:
    [d·(ln d + ln(m·n))] — smaller than {!thm7_labels} for large diameters. *)

val gnp_connectivity_threshold : n:int -> float
(** [ln n / n], the sharp threshold for connectivity of [G(n,p)] used in
    the proofs of Theorem 5 and the Ω(log n) remark. *)

val thm5_lower_bound : n:int -> a:int -> float
(** Theorem 5: with lifetime [a >= n], the temporal diameter is
    [Ω((a/n)·ln n)]; this is the bound value [(a/n)·ln n]. *)

val union_bound : float list -> float
(** Sum of failure probabilities, clamped to [\[0, 1\]]. *)
