let marks = [| '*'; '+'; 'o'; 'x'; '@'; '#' |]

let bounds points =
  List.fold_left
    (fun (xlo, xhi, ylo, yhi) (x, y) ->
      (Float.min xlo x, Float.max xhi x, Float.min ylo y, Float.max yhi y))
    (infinity, neg_infinity, infinity, neg_infinity)
    points

let render_series ?(width = 60) ?(height = 16) ?(x_label = "x")
    ?(y_label = "y") ~title series =
  let all_points = List.concat_map snd series in
  let xlo, xhi, ylo, yhi = bounds all_points in
  if List.length all_points < 2 || xhi <= xlo || yhi <= ylo then title ^ "\n"
  else begin
    let grid = Array.make_matrix height width ' ' in
    let place mark (x, y) =
      let cx =
        int_of_float ((x -. xlo) /. (xhi -. xlo) *. float_of_int (width - 1))
      in
      let cy =
        int_of_float ((y -. ylo) /. (yhi -. ylo) *. float_of_int (height - 1))
      in
      grid.(height - 1 - cy).(cx) <- mark
    in
    List.iteri
      (fun i (_, points) ->
        let mark = marks.(i mod Array.length marks) in
        List.iter (place mark) points)
      series;
    let buf = Buffer.create 2048 in
    Buffer.add_string buf title;
    Buffer.add_char buf '\n';
    Buffer.add_string buf
      (Printf.sprintf "%s: [%.4g .. %.4g]\n" y_label ylo yhi);
    Array.iter
      (fun row ->
        Buffer.add_string buf "  |";
        Array.iter (Buffer.add_char buf) row;
        Buffer.add_char buf '\n')
      grid;
    Buffer.add_string buf ("  +" ^ String.make width '-' ^ "\n");
    Buffer.add_string buf
      (Printf.sprintf "   %s: [%.4g .. %.4g]\n" x_label xlo xhi);
    if List.length series > 1 then
      List.iteri
        (fun i (name, _) ->
          Buffer.add_string buf
            (Printf.sprintf "   %c = %s\n" marks.(i mod Array.length marks) name))
        series;
    Buffer.contents buf
  end

let render ?width ?height ?x_label ?y_label ~title points =
  render_series ?width ?height ?x_label ?y_label ~title [ ("series", points) ]
