(** Fixed-bin histograms over a closed interval.

    Used by the report layer to show distributions of per-trial measurements
    (temporal diameters, arrival times) without a plotting stack. *)

type t

val create : lo:float -> hi:float -> bins:int -> t
(** [create ~lo ~hi ~bins] covers [\[lo, hi\]] with [bins] equal bins;
    values outside the range are counted in underflow/overflow.
    @raise Invalid_argument if [bins <= 0] or [hi <= lo]. *)

val add : t -> float -> unit
val add_int : t -> int -> unit
val count : t -> int
val underflow : t -> int
val overflow : t -> int

val counts : t -> int array
(** Per-bin counts, length [bins]. *)

val bin_edges : t -> (float * float) array
(** Inclusive-exclusive edges of each bin (last bin closes the interval). *)

val mode_bin : t -> int
(** Index of the fullest bin; [-1] when the histogram is empty. *)

val render : ?width:int -> t -> string
(** Multi-line ASCII rendering, one row per bin. *)
