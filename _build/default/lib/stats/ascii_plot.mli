(** Minimal ASCII scatter/line plots.

    The paper's figures are schematic, but the experiments benefit from a
    quick visual of e.g. [TD] against [ln n]; this renders an x/y series on
    a character grid with axis annotations — the "plotting stack" for an
    ecosystem without one. *)

val render :
  ?width:int ->
  ?height:int ->
  ?x_label:string ->
  ?y_label:string ->
  title:string ->
  (float * float) list ->
  string
(** [render ~title points] draws the points ('*') on a grid; multiple
    points landing on a cell still print one mark.  Returns [title] alone
    when fewer than two points or degenerate ranges make a plot
    meaningless. *)

val render_series :
  ?width:int ->
  ?height:int ->
  ?x_label:string ->
  ?y_label:string ->
  title:string ->
  (string * (float * float) list) list ->
  string
(** Several named series on one grid; each series gets a distinct mark
    from ['*', '+', 'o', 'x', '@', '#'] (cycled) and a legend line. *)
