lib/phonecall/rumor.ml: Array Float List Option Printf Prng Sgraph Stats Stdlib
