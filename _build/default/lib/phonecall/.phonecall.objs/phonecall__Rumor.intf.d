lib/phonecall/rumor.mli: Prng Sgraph
