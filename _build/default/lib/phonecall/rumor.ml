module Graph = Sgraph.Graph
module Rng = Prng.Rng

type strategy = Push | Pull | Push_pull | Push_pull_memory of int

let strategy_name = function
  | Push -> "push"
  | Pull -> "pull"
  | Push_pull -> "push-pull"
  | Push_pull_memory k -> Printf.sprintf "push-pull/mem%d" k

type result = {
  rounds : int option;
  transmissions : int;
  informed_per_round : int list;
}

let default_max_rounds n =
  64 + (8 * int_of_float (Float.ceil (Float.log2 (float_of_int (Stdlib.max 2 n)))))

let spread ?max_rounds rng g strategy ~source =
  let n = Graph.n g in
  if source < 0 || source >= n then invalid_arg "Rumor.spread: bad source";
  let max_rounds = Option.value max_rounds ~default:(default_max_rounds n) in
  let informed = Array.make n false in
  informed.(source) <- true;
  let informed_count = ref 1 in
  let transmissions = ref 0 in
  let history = ref [ 1 ] in
  (* Hoisted: out_neighbors allocates, and pick_neighbor runs n times per
     round. *)
  let neighbors = Array.init n (Graph.out_neighbors g) in
  let memory_size =
    match strategy with Push_pull_memory k -> Stdlib.max 0 k | _ -> 0
  in
  (* Ring buffers of recent partners, only allocated when used. *)
  let memory = Array.make (if memory_size > 0 then n else 0) [||] in
  let memory_pos = Array.make (Array.length memory) 0 in
  if memory_size > 0 then
    for v = 0 to n - 1 do
      memory.(v) <- Array.make memory_size (-1)
    done;
  let remember v partner =
    if memory_size > 0 then begin
      memory.(v).(memory_pos.(v)) <- partner;
      memory_pos.(v) <- (memory_pos.(v) + 1) mod memory_size
    end
  in
  let remembered v partner =
    memory_size > 0 && Array.exists (( = ) partner) memory.(v)
  in
  let pick_neighbor v =
    let deg = Array.length neighbors.(v) in
    if deg = 0 then invalid_arg "Rumor.spread: vertex without neighbours";
    (* Avoid remembered partners when possible: bounded rejection, then
       fall back to uniform (correct when deg <= memory). *)
    let rec avoid attempts =
      let candidate = neighbors.(v).(Rng.int rng deg) in
      if attempts = 0 || not (remembered v candidate) then candidate
      else avoid (attempts - 1)
    in
    let partner = if memory_size = 0 then avoid 0 else avoid (4 * memory_size) in
    remember v partner;
    partner
  in
  let round = ref 0 in
  while !informed_count < n && !round < max_rounds do
    incr round;
    (* Calls resolve simultaneously: collect the newly informed first. *)
    let fresh = ref [] in
    for v = 0 to n - 1 do
      let callee = pick_neighbor v in
      let transmit target =
        incr transmissions;
        if not informed.(target) then fresh := target :: !fresh
      in
      (match strategy with
      | Push -> if informed.(v) then transmit callee
      | Pull -> if (not informed.(v)) && informed.(callee) then transmit v
      | Push_pull | Push_pull_memory _ ->
        if informed.(v) then transmit callee
        else if informed.(callee) then transmit v)
    done;
    List.iter
      (fun v ->
        if not informed.(v) then begin
          informed.(v) <- true;
          incr informed_count
        end)
      !fresh;
    history := !informed_count :: !history
  done;
  {
    rounds = (if !informed_count = n then Some !round else None);
    transmissions = !transmissions;
    informed_per_round = List.rev !history;
  }

let mean_rounds rng g strategy ~trials =
  let n = Graph.n g in
  let cap = default_max_rounds n in
  let summary = Stats.Summary.create () in
  for _ = 1 to trials do
    let source = Rng.int rng n in
    let result = spread rng g strategy ~source in
    Stats.Summary.add_int summary (Option.value result.rounds ~default:cap)
  done;
  (Stats.Summary.mean summary, Stats.Summary.stddev summary)
