(** The Random Phone-Call model (paper §1.1): the classical baseline the
    random-availability model is contrasted with.

    Synchronous rounds; in each round every vertex calls one neighbour
    chosen uniformly at random.  Under [Push] informed callers transmit
    the rumor, under [Pull] uninformed callers receive it from informed
    callees, [Push_pull] does both (Karp et al. [17]).  On the clique,
    push completes in [log2 n + ln n + o(log n)] rounds w.h.p.
    (Frieze–Grimmett [15]).

    The crucial modelling difference the paper points out: here
    randomness is available *every round* to the algorithm, whereas a
    random temporal network fixes one random moment per link in the
    input.  The experiments put both on the same axis. *)

type strategy =
  | Push
  | Pull
  | Push_pull
  | Push_pull_memory of int
      (** push-pull where each vertex avoids its last [k] call partners
          (Elsässer & Sauerwald [12]; Berenbrink et al. [3]): remembering
          a few previous choices provably cuts the transmission count to
          O(n log log n) while staying O(log n)-fast *)

val strategy_name : strategy -> string

type result = {
  rounds : int option;
      (** rounds until everyone is informed; [None] if [max_rounds] hit *)
  transmissions : int;  (** total rumor-carrying calls *)
  informed_per_round : int list;
      (** cumulative informed count after each round, starting with the
          initial [1] *)
}

val spread :
  ?max_rounds:int ->
  Prng.Rng.t ->
  Sgraph.Graph.t ->
  strategy ->
  source:int ->
  result
(** [spread rng g strategy ~source] simulates until everyone is informed
    or [max_rounds] (default [64 + 8·log2 n]) elapses.
    @raise Invalid_argument on a bad source or a vertex without
    neighbours to call. *)

val mean_rounds :
  Prng.Rng.t ->
  Sgraph.Graph.t ->
  strategy ->
  trials:int ->
  float * float
(** [(mean, stddev)] of the completion round over random sources and
    coin flips; incomplete runs count as the cap. *)
