module Rng = Prng.Rng
module Graph = Sgraph.Graph

type t = {
  n : int;
  p_up : float;
  p_down : float;
  rng : Rng.t;
  present : bool array;  (* indexed by upper-triangular pair index *)
  mutable round : int;
  mutable present_count : int;
}

let pair_index n u v =
  let u, v = if u < v then (u, v) else (v, u) in
  (* Offset of row u plus column within the row. *)
  (u * (n - 1)) - (u * (u - 1) / 2) + (v - u - 1)

let stationary p_up p_down = p_up /. (p_up +. p_down)

let create ?initial_density rng ~n ~p_up ~p_down =
  if n < 1 then invalid_arg "Edge_markovian.create: need n >= 1";
  let proba name p =
    if not (p >= 0. && p <= 1.) then
      invalid_arg ("Edge_markovian.create: " ^ name ^ " not in [0,1]")
  in
  proba "p_up" p_up;
  proba "p_down" p_down;
  if p_up +. p_down <= 0. then
    invalid_arg "Edge_markovian.create: p_up + p_down must be positive";
  let density = Option.value initial_density ~default:(stationary p_up p_down) in
  proba "initial_density" density;
  let total = n * (n - 1) / 2 in
  let present = Array.init total (fun _ -> Rng.bernoulli rng density) in
  let present_count = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 present in
  { n; p_up; p_down; rng; present; round = 0; present_count }

let n t = t.n
let round t = t.round

let edge_present t u v =
  if u = v then invalid_arg "Edge_markovian.edge_present: self-loop";
  if u < 0 || u >= t.n || v < 0 || v >= t.n then
    invalid_arg "Edge_markovian.edge_present: endpoint out of range";
  t.present.(pair_index t.n u v)

let density t =
  if t.n < 2 then 0.
  else float_of_int t.present_count /. float_of_int (Array.length t.present)

let stationary_density t = stationary t.p_up t.p_down

let step t =
  t.round <- t.round + 1;
  for i = 0 to Array.length t.present - 1 do
    if t.present.(i) then begin
      if Rng.bernoulli t.rng t.p_down then begin
        t.present.(i) <- false;
        t.present_count <- t.present_count - 1
      end
    end
    else if Rng.bernoulli t.rng t.p_up then begin
      t.present.(i) <- true;
      t.present_count <- t.present_count + 1
    end
  done

let snapshot t =
  let edges = ref [] in
  for u = 0 to t.n - 2 do
    for v = u + 1 to t.n - 1 do
      if t.present.(pair_index t.n u v) then edges := (u, v) :: !edges
    done
  done;
  Graph.create Undirected ~n:t.n !edges

type flood = { completed : bool; rounds : int; informed : int }

let default_cap t =
  let log_n = Float.log2 (float_of_int (Stdlib.max 2 t.n)) in
  let effective =
    Float.max (stationary_density t) (1. /. float_of_int (Stdlib.max 2 t.n))
  in
  Stdlib.max 32 (int_of_float (8. *. (log_n +. 2.) /. effective))

let flood ?max_rounds t ~source =
  if source < 0 || source >= t.n then
    invalid_arg "Edge_markovian.flood: source out of range";
  let cap = Option.value max_rounds ~default:(default_cap t) in
  let informed = Array.make t.n false in
  informed.(source) <- true;
  let informed_count = ref 1 in
  let rounds = ref 0 in
  while !informed_count < t.n && !rounds < cap do
    step t;
    incr rounds;
    (* New informations this round; simultaneous, so collect first. *)
    let fresh = ref [] in
    for u = 0 to t.n - 2 do
      for v = u + 1 to t.n - 1 do
        if informed.(u) <> informed.(v) && t.present.(pair_index t.n u v)
        then fresh := (if informed.(u) then v else u) :: !fresh
      done
    done;
    List.iter
      (fun v ->
        if not informed.(v) then begin
          informed.(v) <- true;
          incr informed_count
        end)
      !fresh
  done;
  { completed = !informed_count = t.n; rounds = !rounds; informed = !informed_count }
