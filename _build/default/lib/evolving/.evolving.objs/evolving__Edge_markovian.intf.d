lib/evolving/edge_markovian.mli: Prng Sgraph
