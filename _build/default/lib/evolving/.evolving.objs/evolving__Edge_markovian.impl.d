lib/evolving/edge_markovian.ml: Array Float List Option Prng Sgraph Stdlib
