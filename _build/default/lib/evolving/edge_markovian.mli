(** Edge-Markovian evolving graphs (Clementi et al. [8], paper §1.2).

    A dynamic-network model adjacent to the paper's: every potential
    edge of [K_n] flips state independently each round — an absent edge
    appears with probability [p_up], a present edge disappears with
    probability [p_down].  Unlike the random temporal networks of the
    paper (whose whole schedule is fixed by the input), fresh randomness
    arrives every round; the stationary density is
    [p_up / (p_up + p_down)].  The module simulates the chain and its
    flooding time, the quantity [8] proves logarithmic. *)

type t
(** Mutable chain state over the edges of a complete graph. *)

val create :
  ?initial_density:float -> Prng.Rng.t -> n:int -> p_up:float -> p_down:float -> t
(** Each potential edge starts present independently with probability
    [initial_density] (default: the stationary density).
    @raise Invalid_argument unless [n >= 1] and the probabilities are in
    [\[0,1\]] with [p_up + p_down > 0]. *)

val n : t -> int
val round : t -> int
(** Rounds stepped so far. *)

val edge_present : t -> int -> int -> bool
(** Current state of the edge [{u, v}].
    @raise Invalid_argument on [u = v] or out-of-range endpoints. *)

val density : t -> float
(** Fraction of the [n(n-1)/2] potential edges currently present. *)

val stationary_density : t -> float

val step : t -> unit
(** Advance one round (every edge flips per its transition law). *)

val snapshot : t -> Sgraph.Graph.t
(** The current round's graph. *)

type flood = {
  completed : bool;
  rounds : int;  (** rounds used (= the cap when not completed) *)
  informed : int;
}

val flood : ?max_rounds:int -> t -> source:int -> flood
(** Flood a message: each round, first {!step}, then every informed
    vertex informs its current neighbours.  Default cap:
    [8·(log2 n + 2) / max(p_stationary, 1/n)]-ish, generous. *)
