(** Random walks on temporal networks.

    The paper's related work (§1.2) cites Avin, Koucký & Lotker [2] on
    cover times of random walks over evolving graphs — walks that can
    only move when an edge happens to be available.  Here the walker
    lives on a fixed availability schedule: at each time step [t] it
    looks at the arcs leaving its current vertex that are available
    exactly at [t], moves along one uniformly at random, and stays put
    when there is none.  Lazy variants (move with probability [1 - lazy]
    when possible) are supported because pure temporal walks can be
    forced into corners.

    Contrast with {!Flooding}: the walk is a single trajectory, so its
    cover behaviour measures how *navigable* the schedule is, not how
    fast information floods. *)

type trajectory = {
  positions : int array;
      (** [positions.(t)] = vertex occupied after step [t]; index 0 is
          the source before time 1, so length = lifetime + 1 *)
  first_visit : int array;
      (** per vertex: the step of its first visit; [max_int] = never;
          [0] at the source *)
  visited : int;  (** distinct vertices visited *)
  cover_time : int option;
      (** first step by which every vertex was visited *)
  moves : int;  (** steps on which the walker actually moved *)
}

val walk :
  ?laziness:float -> Prng.Rng.t -> Tgraph.t -> source:int -> trajectory
(** Run one walk over the network's whole lifetime.
    @raise Invalid_argument on a bad source or [laziness] outside
    [\[0,1\]]. *)

val mean_coverage :
  ?laziness:float ->
  Prng.Rng.t ->
  Tgraph.t ->
  trials:int ->
  float * float
(** [(mean fraction of vertices visited, cover rate)] over walks from
    uniformly random sources on the given instance. *)

val pack :
  ?laziness:float ->
  Prng.Rng.t ->
  Tgraph.t ->
  sources:int list ->
  int * int option
(** Several independent walkers released simultaneously (the
    multi-walker setting of [2]): [(jointly visited vertices, joint
    cover time)].  Duplicate sources are allowed. *)
