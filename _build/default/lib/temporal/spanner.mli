(** Redundancy removal: minimal reachability-preserving sublabelings.

    The paper's OPT (Definition 8) asks for the fewest labels that
    preserve reachability over *all* assignments — hard to even
    approximate in general (Mertzios et al. [21]).  The tractable
    relative implemented here: given an assignment that already
    preserves reachability, greedily delete labels while [Treach]
    survives, until no single label can be removed.  The result is an
    inclusion-minimal spanning sublabeling — an upper bound on OPT
    *within* the given availability, which is exactly what a network
    operator holding a concrete schedule can act on. *)

type result = {
  pruned : Tgraph.t;  (** the minimal sublabeling *)
  kept : int;  (** labels remaining *)
  removed : int;  (** labels deleted *)
}

val prune : ?order:[ `Latest_first | `Earliest_first ] -> Tgraph.t -> result
(** [prune net] requires [Reachability.treach net]; tries to delete
    labels one at a time (default order: latest labels first — late
    availability is most often redundant) and keeps every deletion that
    preserves [Treach].  O(L²·n·M) worst case with early-exit checks;
    intended for small/medium networks.
    @raise Invalid_argument if the input does not satisfy [Treach]. *)

val is_minimal : Tgraph.t -> bool
(** No single label can be removed without breaking [Treach].  (Every
    {!prune} output satisfies this; property-tested.) *)
