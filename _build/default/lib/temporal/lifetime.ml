module Graph = Sgraph.Graph
module Components = Sgraph.Components

let prefix_graph net ~k =
  let g = Tgraph.graph net in
  let keep = ref [] in
  Graph.iter_edges g (fun e u v ->
      if Label.min_label (Tgraph.labels net e) <= k then keep := (u, v) :: !keep);
  Graph.create (Graph.kind g) ~n:(Graph.n g) !keep

(* Connectivity of the prefix is monotone in k, so binary search on the
   sorted distinct minimum labels would work; a linear scan over the
   label values present keeps it simple and is fast enough (the check
   dominates anyway). *)
let prefix_connectivity_time net =
  let a = Tgraph.lifetime net in
  let rec search lo hi =
    (* Invariant: prefix at hi is connected (when hi < max_int). *)
    if lo >= hi then Some hi
    else
      let mid = (lo + hi) / 2 in
      if Components.is_connected (prefix_graph net ~k:mid) then search lo mid
      else search (mid + 1) hi
  in
  if Components.is_connected (prefix_graph net ~k:a) then search 1 a else None

let expected_prefix_edge_probability ~a ~k =
  Float.min 1. (float_of_int k /. float_of_int a)

let lower_bound ~n ~a = Stats.Bounds.thm5_lower_bound ~n ~a
