(** Temporal paths, a.k.a. journeys (paper, Definition 2).

    A journey is a sequence of time edges
    [(u, u1, l1), (u1, u2, l2), ..., (u_{k-1}, v, l_k)] with strictly
    increasing labels; its arrival time is [l_k].  Journeys are walks —
    vertices may repeat — exactly as the paper's definition permits. *)

type step = { src : int; dst : int; label : int }

type t = step list
(** In travel order; the empty journey stays at its source. *)

val source : t -> int option
val target : t -> int option

val arrival : t -> int option
(** Label of the last step; [None] for the empty journey. *)

val departure : t -> int option
(** Label of the first step. *)

val length : t -> int
(** Number of time edges used. *)

val vertices : t -> int list
(** Visited vertices in order, [src :: dst of every step]; empty for the
    empty journey. *)

val strictly_increasing : t -> bool
(** Labels strictly increase along the journey. *)

val connected : t -> bool
(** Each step departs from the previous step's destination. *)

val valid_in : Tgraph.t -> t -> bool
(** The journey is structurally sound *and* every step crosses an arc of
    the network at one of its labelled times. *)

val is_journey : Tgraph.t -> source:int -> target:int -> t -> bool
(** {!valid_in}, anchored at the given endpoints.  The empty journey is a
    valid [(v, v)]-journey. *)

val pp : Format.formatter -> t -> unit
