(** Reverse-foremost journeys: latest departure towards a target.

    The dual of {!Foremost}: for a fixed target [t] and deadline, how
    late can each vertex still be reached *from*?  One sweep over the
    time-edge stream in decreasing label order.  This is the
    "latest-departure journey" of the taxonomy of Bui-Xuan, Ferreira &
    Jarry [6], which the paper cites for the continuous-time setting;
    here in the discrete-label model.

    The central quantity is the {e latest presence time} [L(v)]: the
    largest [x] such that being at [v] at time [x] still allows reaching
    [t] by the deadline (i.e. some [(v,t)]-journey uses labels in
    [(x, deadline]] only).  [L(t) = deadline] by the empty journey. *)

type result

val run : ?deadline:int -> Tgraph.t -> int -> result
(** [run ?deadline net t] computes latest presence times towards [t];
    the deadline defaults to the network's lifetime.
    @raise Invalid_argument on a bad target or non-positive deadline. *)

val target : result -> int
val deadline : result -> int

val latest_presence : result -> int -> int option
(** [L(v)]; [None] when no journey from [v] reaches [t] by the deadline
    at all.  [Some deadline] for [t] itself. *)

val latest_departure : result -> int -> int option
(** The largest first-label over all [(v,t)]-journeys meeting the
    deadline — how late an actual transmission can start.  [None] when
    unreachable, and for [t] itself (a departure needs an edge). *)

val reachable_count : result -> int
(** Vertices that can reach the target (target included). *)

val journey_from : Tgraph.t -> result -> int -> Journey.t option
(** A witness journey departing at {!latest_departure}; [Some []] for
    the target itself. *)
