(** The Expansion Process (paper, Algorithm 1 and Figure 1).

    Constructive search for a short journey [s → t] in a (random)
    temporal network: grow forward layers [Γ_1(s), .., Γ_{d+1}(s)] whose
    entering labels live in consecutive time windows [Δ_1, .., Δ_{d+1}],
    grow backward layers [Γ'_1(t), .., Γ'_{d+1}(t)] symmetrically from
    the target inside the windows [Δ'_i], and look for one matching edge
    between the two final layers with a label in the middle window [Δ*].
    On the normalized uniform random clique the paper proves this
    succeeds w.h.p. and yields an arrival time of [3·c1·log n + 2·d·c2 =
    Θ(log n)] (Theorem 3).

    The implementation is parameterised exactly by the analysis'
    quantities: [l1 = |Δ_1| = |Δ*| = |Δ'_1| ≈ c1·log n], the middle
    window width [c2], and the depth [d]. *)

type params = {
  l1 : int;  (** width of the first, last and matching windows *)
  c2 : int;  (** width of each middle window *)
  d : int;  (** number of middle expansion steps per side *)
}

val make_params : c1:float -> c2:int -> d:int -> n:int -> params
(** [make_params ~c1 ~c2 ~d ~n] sets [l1 = max 1 (round (c1 · ln n))].
    @raise Invalid_argument if [c2 < 1], [d < 0] or [c1 <= 0]. *)

val default_params : ?c1:float -> ?c2:int -> n:int -> unit -> params
(** Practical defaults ([c1 = 2.0], [c2 = 6]): depth [d] is chosen so the
    layers grow to about [√n], following the geometric-growth step of the
    analysis (§3.2) with the proof's Chernoff slack dropped. *)

val horizon : params -> int
(** [3·l1 + 2·d·c2] — the time by which the constructed journey arrives,
    i.e. the right end of [Δ'_1]. *)

val delta : params -> int -> int * int
(** [delta p i] is the forward window [Δ_i] as [(lo, hi)] meaning
    [(lo, hi]]; [i] in [1 .. d+1]. *)

val delta_star : params -> int * int
val delta' : params -> int -> int * int
(** Backward window [Δ'_i], [i] in [1 .. d+1]. *)

type outcome = {
  success : bool;
  journey : Journey.t option;  (** present iff [success] (or [s = t]) *)
  arrival : int option;  (** its arrival time *)
  forward_layers : int array;  (** [|Γ_1(s)| .. |Γ_{d+1}(s)|] *)
  backward_layers : int array;  (** [|Γ'_1(t)| .. |Γ'_{d+1}(t)|] *)
}

val run : Tgraph.t -> params -> s:int -> t:int -> outcome
(** Execute the process on any temporal network (the paper states it for
    the directed clique; the layer construction is graph-agnostic).  The
    returned journey, when present, always satisfies
    [Journey.is_journey net ~source:s ~target:t] and arrives within
    {!horizon}. *)
