(** One-call summary of a temporal network.

    The facade behind `ephemeral analyze`: everything a user wants to
    know about an instance at a glance, computed with the cheapest exact
    machinery available.  Costs O(n·M) overall (dominated by the
    per-source foremost sweeps). *)

type t = {
  n : int;
  m : int;
  lifetime : int;
  labels : int;
  time_edges : int;
  statically_connected : bool;
  treach : bool;
  reachable_pairs : int;
  static_pairs : int;
  temporal_diameter : int option;
  average_distance : float;  (** [nan] when no reachable pairs *)
  best_broadcaster : int;
  broadcast_time : int option;  (** of the best broadcaster *)
  cover_sources : int;  (** greedy broadcast cover size *)
  temporal_scc_count : int;
}

val compute : Tgraph.t -> t
val pp : Format.formatter -> t -> unit
