(** Temporal connectivity structure.

    The *reachability graph* of a temporal network has an arc [u → v]
    whenever some journey goes from [u] to [v] — the object behind
    Definition 6 and the connectivity questions of Kempe et al. [19] /
    Mertzios et al. [21].

    A crucial subtlety, faithfully exposed here: temporal reachability
    is {e not transitive} — a journey [u → v] and a journey [v → w] need
    not compose (the second may depart before the first arrives).  So
    the reachability graph is not closure-closed, and "temporally
    connected component" splits into inequivalent notions:

    - {!scc}: strongly connected components of the reachability graph —
      classes linked by *chains* of reachability arcs (relay through
      time is allowed at every hop with a fresh departure);
    - maximal sets whose members {e directly} reach each other both ways
      — cliques of {!mutual_graph}, NP-hard in general (Bhadra &
      Ferreira); an exhaustive search is provided for small networks. *)

val reachability_graph : Tgraph.t -> Sgraph.Graph.t
(** Directed graph on the same vertices; arc [u → v] iff a journey
    [u → v] exists ([u ≠ v]).  O(n·M). *)

val scc : Tgraph.t -> int array
(** Component id per vertex: Tarjan on {!reachability_graph}. *)

val scc_count : Tgraph.t -> int

val is_temporally_connected : Tgraph.t -> bool
(** Every ordered pair is joined by a journey — the reachability graph
    is the complete digraph.  (Stronger than {!Reachability.treach},
    which only demands journeys where static paths exist.) *)

val mutual_graph : Tgraph.t -> Sgraph.Graph.t
(** Undirected graph with an edge [{u, v}] iff journeys exist both
    ways. *)

val open_connectivity_count : Tgraph.t -> int
(** Ordered pairs [u ≠ v] with journeys both ways
    ([2 ·] edges of {!mutual_graph}). *)

val condensation : Tgraph.t -> Sgraph.Graph.t * int array
(** The DAG of chain-components: one vertex per {!scc} class, an arc
    [C → C'] when some member of [C] reaches some member of [C'] by a
    journey; returns it with the vertex-to-class mapping.  Acyclic by
    construction (property-tested). *)

val largest_mutual_clique_exhaustive : Tgraph.t -> int
(** Size of the largest set of vertices pairwise joined both ways — the
    "temporal connected component" of Bhadra–Ferreira.  Exhaustive
    (branch and bound over {!mutual_graph} cliques): small networks
    only.
    @raise Invalid_argument for [n > 24]. *)
