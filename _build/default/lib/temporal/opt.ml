module Graph = Sgraph.Graph
module Traverse = Sgraph.Traverse
module Metrics = Sgraph.Metrics
module Components = Sgraph.Components

let is_clique g =
  let n = Graph.n g in
  let expected =
    match Graph.kind g with
    | Directed -> n * (n - 1)
    | Undirected -> n * (n - 1) / 2
  in
  Graph.m g = expected
  &&
  let ok = ref true in
  for u = 0 to n - 1 do
    if Graph.out_degree g u <> n - 1 then ok := false
  done;
  !ok

let is_star g =
  (not (Graph.is_directed g))
  && Graph.n g >= 2
  && Graph.m g = Graph.n g - 1
  && Graph.out_degree g 0 = Graph.n g - 1

let clique_single g =
  if not (is_clique g) then invalid_arg "Opt.clique_single: not a clique";
  Assignment.constant g ~a:1 (Label.singleton 1)

let star_two_labels g =
  if not (is_star g) then
    invalid_arg "Opt.star_two_labels: not a star with centre 0";
  Assignment.constant g ~a:2 (Label.of_list [ 1; 2 ])

let tree_up_down g ~root =
  let n = Graph.n g in
  if Graph.is_directed g then invalid_arg "Opt.tree_up_down: directed graph";
  if Graph.m g <> n - 1 || not (Components.is_connected g) then
    invalid_arg "Opt.tree_up_down: not a tree";
  let depth = Traverse.bfs g root in
  let height = Array.fold_left Stdlib.max 0 depth in
  let h = Stdlib.max 1 height in
  let labels =
    Array.init (Graph.m g) (fun e ->
        let u, v = Graph.edge_endpoints g e in
        (* In a tree every edge joins consecutive depths. *)
        let j = Stdlib.max depth.(u) depth.(v) in
        Label.of_list [ h - j + 1; h + j ])
  in
  Tgraph.create g ~lifetime:(2 * h) labels

let spanning_tree_upper g =
  let n = Graph.n g in
  if Graph.is_directed g then
    invalid_arg "Opt.spanning_tree_upper: directed graph";
  if not (Components.is_connected g) then
    invalid_arg "Opt.spanning_tree_upper: disconnected graph";
  if n = 1 then Assignment.of_fun g ~a:1 (fun _ -> Label.empty)
  else begin
    let depth, parent = Traverse.bfs_tree g 0 in
    let height = Array.fold_left Stdlib.max 0 depth in
    let h = Stdlib.max 1 height in
    let labels = Array.make (Graph.m g) Label.empty in
    for v = 1 to n - 1 do
      match Graph.find_edge g v parent.(v) with
      | Some e -> labels.(e) <- Label.of_list [ h - depth.(v) + 1; h + depth.(v) ]
      | None -> assert false
    done;
    Tgraph.create g ~lifetime:(2 * h) labels
  end

let default_pick ~edge:_ ~box:_ ~lo ~hi:_ = lo + 1

let boxes ?(pick = default_pick) g ~q =
  if not (Components.is_connected g) then
    invalid_arg "Opt.boxes: disconnected graph";
  let d = Stdlib.max 1 (Metrics.diameter g) in
  if q < d then invalid_arg "Opt.boxes: lifetime q below the diameter";
  let lambda = q / d in
  let labels =
    Array.init (Graph.m g) (fun e ->
        Label.of_list
          (List.init d (fun i ->
               let box = i + 1 in
               let lo = (box - 1) * lambda and hi = box * lambda in
               let label = pick ~edge:e ~box ~lo ~hi in
               if label <= lo || label > hi then
                 invalid_arg "Opt.boxes: pick left its box";
               label)))
  in
  Tgraph.create g ~lifetime:q labels

let single_label_counterexample g =
  (* With every edge labelled 1, journeys have length exactly one, so a
     statically-connected non-adjacent pair breaks Treach. *)
  let net = Assignment.constant g ~a:1 (Label.singleton 1) in
  if Reachability.treach net then None else Some net

let single_label_always_preserves g ~a =
  let m = Graph.m g in
  let combos =
    let rec power acc k = if k = 0 then acc else power (acc * a) (k - 1) in
    power 1 m
  in
  if combos > 100_000 then
    invalid_arg "Opt.single_label_always_preserves: a^m too large";
  let labels = Array.make m 1 in
  let rec enumerate e =
    if e = m then
      Reachability.treach
        (Assignment.of_fun g ~a (fun i -> Label.singleton labels.(i)))
    else begin
      let ok = ref true in
      let l = ref 1 in
      while !ok && !l <= a do
        labels.(e) <- !l;
        if not (enumerate (e + 1)) then ok := false;
        incr l
      done;
      !ok
    end
  in
  m = 0 || enumerate 0

let lower_bound g = Graph.n g - 1
let star_value ~n = 2 * (n - 1)
let clique_value g = Graph.m g
let upper_bound g = 2 * (Graph.n g - 1)
