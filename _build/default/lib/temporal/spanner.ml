module Graph = Sgraph.Graph

type result = { pruned : Tgraph.t; kept : int; removed : int }

let with_label_removed net ~edge ~label =
  let g = Tgraph.graph net in
  Assignment.of_fun g ~a:(Tgraph.lifetime net) (fun e ->
      if e = edge then
        Label.of_list
          (List.filter (fun l -> l <> label) (Label.to_list (Tgraph.labels net e)))
      else Tgraph.labels net e)

let all_labels net =
  let acc = ref [] in
  Graph.iter_edges (Tgraph.graph net) (fun e _ _ ->
      List.iter
        (fun l -> acc := (e, l) :: !acc)
        (Label.to_list (Tgraph.labels net e)));
  !acc

let prune ?(order = `Latest_first) net =
  if not (Reachability.treach net) then
    invalid_arg "Spanner.prune: input must preserve reachability";
  let initial = Tgraph.label_count net in
  let candidates =
    let by_label (_, l1) (_, l2) = compare l1 l2 in
    let sorted = List.sort by_label (all_labels net) in
    match order with
    | `Earliest_first -> sorted
    | `Latest_first -> List.rev sorted
  in
  let current = ref net in
  List.iter
    (fun (edge, label) ->
      (* The candidate may already be gone conceptually? No: we only
         ever delete candidates, each exactly once, so it is present. *)
      let attempt = with_label_removed !current ~edge ~label in
      if Reachability.treach attempt then current := attempt)
    candidates;
  let kept = Tgraph.label_count !current in
  { pruned = !current; kept; removed = initial - kept }

let is_minimal net =
  Reachability.treach net
  && List.for_all
       (fun (edge, label) ->
         not (Reachability.treach (with_label_removed net ~edge ~label)))
       (all_labels net)
