lib/temporal/centrality.ml: Array Float Flooding Foremost Fun Journey List Tgraph
