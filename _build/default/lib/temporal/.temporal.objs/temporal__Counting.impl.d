lib/temporal/counting.ml: Array Expanded Foremost Fun List Tgraph
