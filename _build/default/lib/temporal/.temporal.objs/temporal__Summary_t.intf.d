lib/temporal/summary_t.mli: Format Tgraph
