lib/temporal/reverse_foremost.mli: Journey Tgraph
