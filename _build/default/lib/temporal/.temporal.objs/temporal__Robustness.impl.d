lib/temporal/robustness.ml: Array Centrality Distance Fun List Ops Prng Reachability Sgraph Tgraph
