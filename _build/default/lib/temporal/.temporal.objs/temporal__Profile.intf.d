lib/temporal/profile.mli: Format Tgraph
