lib/temporal/walker.ml: Array Label List Prng Tgraph
