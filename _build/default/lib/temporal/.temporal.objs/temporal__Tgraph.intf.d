lib/temporal/tgraph.mli: Format Label Sgraph
