lib/temporal/shortest.mli: Journey Tgraph
