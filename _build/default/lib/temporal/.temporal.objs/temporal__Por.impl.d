lib/temporal/por.ml: Assignment Float Opt Option Reachability Sgraph Stats Stdlib
