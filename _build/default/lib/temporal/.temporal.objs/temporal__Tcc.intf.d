lib/temporal/tcc.mli: Sgraph Tgraph
