lib/temporal/assignment.ml: Array Label List Prng Sgraph Tgraph
