lib/temporal/builder.mli: Sgraph Tgraph
