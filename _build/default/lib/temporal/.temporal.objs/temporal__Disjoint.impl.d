lib/temporal/disjoint.ml: Array Expanded Flow Fun Label List Sgraph Stdlib Tgraph
