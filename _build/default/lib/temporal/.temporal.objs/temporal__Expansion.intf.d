lib/temporal/expansion.mli: Journey Tgraph
