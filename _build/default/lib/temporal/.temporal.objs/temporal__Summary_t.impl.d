lib/temporal/summary_t.ml: Centrality Distance Format List Reachability Sgraph Tcc Tgraph
