lib/temporal/spanner.mli: Tgraph
