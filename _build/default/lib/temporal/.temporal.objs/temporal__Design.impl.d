lib/temporal/design.ml: Assignment Ops Opt Printf Sgraph Tgraph
