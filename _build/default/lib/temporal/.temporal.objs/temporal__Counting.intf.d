lib/temporal/counting.mli: Tgraph
