lib/temporal/foremost.ml: Array Journey Label List Tgraph
