lib/temporal/label.mli: Format
