lib/temporal/walker.mli: Prng Tgraph
