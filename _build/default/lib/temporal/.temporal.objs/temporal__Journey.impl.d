lib/temporal/journey.ml: Fmt Format List Option Tgraph
