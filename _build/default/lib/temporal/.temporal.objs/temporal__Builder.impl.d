lib/temporal/builder.ml: Array Hashtbl Label List Option Sgraph Stdlib Tgraph
