lib/temporal/windows.ml: Array Label List Sgraph Stdlib Tgraph
