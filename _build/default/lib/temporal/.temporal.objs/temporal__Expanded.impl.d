lib/temporal/expanded.ml: Array Hashtbl List Queue Tgraph
