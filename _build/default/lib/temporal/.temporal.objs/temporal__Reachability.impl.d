lib/temporal/reachability.ml: Array Foremost Sgraph Tgraph
