lib/temporal/adversary.ml: Array Assignment Centrality Hashtbl Label List Prng Reachability Sgraph Stdlib Tgraph
