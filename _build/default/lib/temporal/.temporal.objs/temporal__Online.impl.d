lib/temporal/online.ml: Array
