lib/temporal/assignment.mli: Label Prng Sgraph Tgraph
