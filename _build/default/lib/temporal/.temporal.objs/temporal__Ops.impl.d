lib/temporal/ops.ml: Array Assignment Label List Sgraph Stdlib Tgraph
