lib/temporal/distance.ml: Array Float Foremost Fun List Prng Stdlib Tgraph
