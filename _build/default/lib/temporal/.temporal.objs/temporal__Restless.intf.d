lib/temporal/restless.mli: Journey Tgraph
