lib/temporal/journey.mli: Format Tgraph
