lib/temporal/foremost.mli: Journey Tgraph
