lib/temporal/lifetime.ml: Float Label Sgraph Stats Tgraph
