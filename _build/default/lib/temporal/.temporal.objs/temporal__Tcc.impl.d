lib/temporal/tcc.ml: Array Foremost Hashtbl Sgraph Stdlib Tgraph
