lib/temporal/serial.ml: Array Buffer In_channel Label List Out_channel Printf Sgraph String Tgraph
