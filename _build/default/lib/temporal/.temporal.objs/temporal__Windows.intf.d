lib/temporal/windows.mli: Label Sgraph Tgraph
