lib/temporal/shortest.ml: Array Journey Label List Stdlib Tgraph
