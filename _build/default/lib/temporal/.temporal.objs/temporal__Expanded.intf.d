lib/temporal/expanded.mli: Tgraph
