lib/temporal/opt.ml: Array Assignment Label List Reachability Sgraph Stdlib Tgraph
