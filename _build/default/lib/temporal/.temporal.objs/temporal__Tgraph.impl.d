lib/temporal/tgraph.ml: Array Format Label Sgraph
