lib/temporal/reachability.mli: Tgraph
