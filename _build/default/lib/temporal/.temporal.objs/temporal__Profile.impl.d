lib/temporal/profile.ml: Fmt Foremost Format Hashtbl List Stdlib Tgraph
