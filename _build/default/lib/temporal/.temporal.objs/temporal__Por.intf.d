lib/temporal/por.mli: Prng Sgraph Stats
