lib/temporal/distance.mli: Prng Tgraph
