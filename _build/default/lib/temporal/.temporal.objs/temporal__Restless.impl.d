lib/temporal/restless.ml: Array Journey Label List Tgraph
