lib/temporal/expansion.ml: Array Float Journey Label List Stdlib Tgraph
