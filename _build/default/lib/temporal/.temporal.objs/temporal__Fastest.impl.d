lib/temporal/fastest.ml: Array Foremost Label List Tgraph
