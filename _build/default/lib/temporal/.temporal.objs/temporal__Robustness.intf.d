lib/temporal/robustness.mli: Prng Tgraph
