lib/temporal/flooding.mli: Tgraph
