lib/temporal/opt.mli: Sgraph Tgraph
