lib/temporal/ops.mli: Tgraph
