lib/temporal/reverse_foremost.ml: Array Journey List Option Tgraph
