lib/temporal/disjoint.mli: Tgraph
