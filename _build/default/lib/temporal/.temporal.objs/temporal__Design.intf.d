lib/temporal/design.mli: Prng Sgraph Tgraph
