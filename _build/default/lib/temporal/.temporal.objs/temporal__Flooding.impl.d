lib/temporal/flooding.ml: Array Tgraph
