lib/temporal/fastest.mli: Journey Tgraph
