lib/temporal/label.ml: Array Fmt
