lib/temporal/centrality.mli: Tgraph
