lib/temporal/serial.mli: Tgraph
