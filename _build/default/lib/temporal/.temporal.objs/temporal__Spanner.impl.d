lib/temporal/spanner.ml: Assignment Label List Reachability Sgraph Tgraph
