lib/temporal/lifetime.mli: Sgraph Tgraph
