lib/temporal/adversary.mli: Prng Tgraph
