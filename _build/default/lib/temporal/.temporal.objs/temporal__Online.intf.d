lib/temporal/online.mli:
