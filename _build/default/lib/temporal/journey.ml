type step = { src : int; dst : int; label : int }
type t = step list

let source = function [] -> None | s :: _ -> Some s.src

let rec last = function
  | [] -> None
  | [ s ] -> Some s
  | _ :: rest -> last rest

let target t = Option.map (fun s -> s.dst) (last t)
let arrival t = Option.map (fun s -> s.label) (last t)
let departure = function [] -> None | s :: _ -> Some s.label
let length = List.length

let vertices = function
  | [] -> []
  | first :: _ as steps -> first.src :: List.map (fun s -> s.dst) steps

let strictly_increasing t =
  let rec check = function
    | a :: (b :: _ as rest) -> a.label < b.label && check rest
    | _ -> true
  in
  check t

let connected t =
  let rec check = function
    | a :: (b :: _ as rest) -> a.dst = b.src && check rest
    | _ -> true
  in
  check t

let valid_in net t =
  strictly_increasing t && connected t
  && List.for_all
       (fun s -> Tgraph.can_cross_at net ~src:s.src ~dst:s.dst s.label)
       t

let is_journey net ~source:s ~target:v t =
  match t with
  | [] -> s = v
  | first :: _ ->
    first.src = s
    && (match target t with Some dst -> dst = v | None -> false)
    && valid_in net t

let pp ppf t =
  let pp_step ppf s = Format.fprintf ppf "%d -[%d]-> %d" s.src s.label s.dst in
  Format.fprintf ppf "@[<h>%a@]" (Fmt.list ~sep:(Fmt.any "; ") pp_step) t
