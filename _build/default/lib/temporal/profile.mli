(** Arrival profiles: earliest arrival as a function of departure time.

    For a fixed source, [δ_{t0}(s, v)] — the earliest arrival of a
    journey departing at time [>= t0] — is a non-decreasing step
    function of [t0] with breakpoints only at label values.  The profile
    materialises it as a compact list of steps, which is what a sender
    consults to answer "if I wait until [t0], when does my message
    land?" (and what makes the lifetime effects of Theorem 5 visible
    pair by pair). *)

type step = {
  from_time : int;  (** departures in [from_time, until_time] ... *)
  until_time : int;
  arrival : int option;  (** ... arrive at this time ([None]: never) *)
}

val compute : Tgraph.t -> source:int -> target:int -> step list
(** Steps in increasing departure time, covering [1 .. lifetime + 1];
    consecutive steps have distinct arrivals (maximally merged).  The
    final step is always [None]-valued or ends at [lifetime + 1].
    @raise Invalid_argument on bad endpoints. *)

val arrival_at : step list -> int -> int option
(** Evaluate the profile at a departure time.
    @raise Not_found if the time precedes the profile's first step. *)

val latest_useful_departure : step list -> int option
(** The last departure time with a finite arrival, if any. *)

val pp : Format.formatter -> step list -> unit
