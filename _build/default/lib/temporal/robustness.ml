type step = {
  removed : int;
  survivors : int;
  reachable_pairs : int;
  reachability : float;
  diameter : int option;
}

type target = [ `Degree | `Closeness | `Betweenness ]

let target_name = function
  | `Degree -> "degree"
  | `Closeness -> "closeness"
  | `Betweenness -> "betweenness"

let measure net victim_original =
  let survivors = Tgraph.n net in
  let reachable = Reachability.reachable_pair_count net in
  let possible = survivors * (survivors - 1) in
  {
    removed = victim_original;
    survivors;
    reachable_pairs = reachable;
    reachability =
      (if possible = 0 then 1. else float_of_int reachable /. float_of_int possible);
    diameter = Distance.instance_diameter net;
  }

let attack ~pick net ~steps =
  if steps < 0 then invalid_arg "Robustness: steps must be >= 0";
  let rec go net mapping steps acc =
    if steps = 0 || Tgraph.n net <= 2 then List.rev acc
    else begin
      let victim = pick net in
      let keep =
        List.filter (fun v -> v <> victim) (List.init (Tgraph.n net) Fun.id)
      in
      let residual, old_of_new = Ops.induced net keep in
      let original = mapping.(victim) in
      let mapping = Array.map (fun v -> mapping.(v)) old_of_new in
      go residual mapping (steps - 1) (measure residual original :: acc)
    end
  in
  go net (Array.init (Tgraph.n net) Fun.id) steps []

let top_of scores =
  let best = ref 0 in
  Array.iteri (fun v s -> if s > scores.(!best) then best := v) scores;
  !best

let targeted_attack net ~by ~steps =
  let pick net =
    match by with
    | `Degree ->
      top_of
        (Array.init (Tgraph.n net) (fun v ->
             float_of_int (Sgraph.Graph.out_degree (Tgraph.graph net) v)))
    | `Closeness -> top_of (Centrality.out_closeness net)
    | `Betweenness -> top_of (Centrality.betweenness net)
  in
  attack ~pick net ~steps

let random_failures rng net ~steps =
  attack ~pick:(fun net -> Prng.Rng.int rng (Tgraph.n net)) net ~steps
