(** Counting foremost journeys.

    How many *distinct* earliest-arrival journeys does each pair have?
    Redundancy of optimal routes is a robustness signal in its own right
    (one foremost journey = one point of failure), and the counts refine
    betweenness from "a witness passes through v" to "how many optima
    do".  Computed by path counting over the time-expanded DAG
    ({!Expanded}): nodes sorted by time are a topological order, and for
    [v ≠ s] only travel arcs can enter the earliest-arrival node of [v],
    so the count at that node is exactly the number of foremost
    journeys.  Saturating arithmetic (counts cap at {!saturated}) keeps
    dense instances safe. *)

val saturated : int
(** The saturation ceiling ([max_int / 4]). *)

val foremost_journeys : Tgraph.t -> int -> int array
(** [foremost_journeys net s] gives, per vertex, the number of distinct
    foremost [(s,v)]-journeys ([1] at the source by convention, [0] if
    unreachable); values clip at {!saturated}. *)

val unique_optimum : Tgraph.t -> s:int -> t:int -> bool
(** Exactly one foremost journey — the fragile case. *)
