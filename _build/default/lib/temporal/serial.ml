module Graph = Sgraph.Graph

let to_string net =
  let g = Tgraph.graph net in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "temporal %s n=%d lifetime=%d\n"
       (if Graph.is_directed g then "directed" else "undirected")
       (Graph.n g) (Tgraph.lifetime net));
  Graph.iter_edges g (fun e u v ->
      Buffer.add_string buf (Printf.sprintf "%d %d :" u v);
      List.iter
        (fun l -> Buffer.add_string buf (Printf.sprintf " %d" l))
        (Label.to_list (Tgraph.labels net e));
      Buffer.add_char buf '\n');
  Buffer.contents buf

let parse_header line =
  match String.split_on_char ' ' (String.trim line) with
  | [ "temporal"; kind; n_field; lifetime_field ] -> (
    let kind =
      match kind with
      | "directed" -> Ok Graph.Directed
      | "undirected" -> Ok Graph.Undirected
      | other -> Error (Printf.sprintf "unknown kind %S" other)
    in
    let field name s =
      let prefix = name ^ "=" in
      if String.length s > String.length prefix
         && String.sub s 0 (String.length prefix) = prefix
      then
        match
          int_of_string_opt
            (String.sub s (String.length prefix)
               (String.length s - String.length prefix))
        with
        | Some v -> Ok v
        | None -> Error (Printf.sprintf "bad %s value in %S" name s)
      else Error (Printf.sprintf "expected %s=<int>, got %S" name s)
    in
    match (kind, field "n" n_field, field "lifetime" lifetime_field) with
    | Ok kind, Ok n, Ok lifetime -> Ok (kind, n, lifetime)
    | Error e, _, _ | _, Error e, _ | _, _, Error e -> Error e)
  | _ ->
    Error "header must be: temporal <directed|undirected> n=<n> lifetime=<a>"

let parse_edge_line line =
  match String.index_opt line ':' with
  | None -> Error "edge line must contain ':'"
  | Some colon ->
    let endpoints = String.sub line 0 colon in
    let labels =
      String.sub line (colon + 1) (String.length line - colon - 1)
    in
    let ints s =
      String.split_on_char ' ' s
      |> List.filter (fun token -> token <> "")
      |> List.map int_of_string_opt
    in
    (match ints endpoints with
    | [ Some u; Some v ] -> (
      let rec collect acc = function
        | [] -> Ok (List.rev acc)
        | Some l :: rest -> collect (l :: acc) rest
        | None :: _ -> Error "bad label"
      in
      match collect [] (ints labels) with
      | Ok labels -> Ok ((u, v), labels)
      | Error e -> Error e)
    | _ -> Error "edge line must start with two vertex ids")

let of_string text =
  let lines = String.split_on_char '\n' text in
  let content =
    List.filteri
      (fun _ line ->
        let line = String.trim line in
        line <> "" && not (String.length line > 0 && line.[0] = '#'))
      lines
  in
  match content with
  | [] -> Error "empty input"
  | header :: edge_lines -> (
    match parse_header header with
    | Error e -> Error ("line 1: " ^ e)
    | Ok (kind, n, lifetime) -> (
      let rec parse_edges index acc = function
        | [] -> Ok (List.rev acc)
        | line :: rest -> (
          match parse_edge_line line with
          | Ok parsed -> parse_edges (index + 1) (parsed :: acc) rest
          | Error e -> Error (Printf.sprintf "edge line %d: %s" index e))
      in
      match parse_edges 1 [] edge_lines with
      | Error e -> Error e
      | Ok parsed -> (
        try
          let g = Graph.create kind ~n (List.map fst parsed) in
          let labels =
            Array.of_list (List.map (fun (_, ls) -> Label.of_list ls) parsed)
          in
          Ok (Tgraph.create g ~lifetime labels)
        with Invalid_argument msg -> Error msg)))

let to_channel oc net = output_string oc (to_string net)

let of_file path =
  match In_channel.with_open_text path In_channel.input_all with
  | text -> of_string text
  | exception Sys_error msg -> Error msg

let to_file path net =
  Out_channel.with_open_text path (fun oc -> to_channel oc net)

let to_gexf net =
  let g = Tgraph.graph net in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n";
  Buffer.add_string buf
    "<gexf xmlns=\"http://www.gexf.net/1.2draft\" version=\"1.2\">\n";
  Buffer.add_string buf
    (Printf.sprintf
       "  <graph mode=\"dynamic\" defaultedgetype=\"%s\" timeformat=\"integer\" \
        start=\"1\" end=\"%d\">\n"
       (if Graph.is_directed g then "directed" else "undirected")
       (Tgraph.lifetime net));
  Buffer.add_string buf "    <nodes>\n";
  for v = 0 to Graph.n g - 1 do
    Buffer.add_string buf
      (Printf.sprintf "      <node id=\"%d\" label=\"%d\"/>\n" v v)
  done;
  Buffer.add_string buf "    </nodes>\n    <edges>\n";
  Graph.iter_edges g (fun e u v ->
      Buffer.add_string buf
        (Printf.sprintf "      <edge id=\"%d\" source=\"%d\" target=\"%d\">\n"
           e u v);
      Buffer.add_string buf "        <spells>\n";
      List.iter
        (fun l ->
          Buffer.add_string buf
            (Printf.sprintf "          <spell start=\"%d\" end=\"%d\"/>\n" l l))
        (Label.to_list (Tgraph.labels net e));
      Buffer.add_string buf "        </spells>\n      </edge>\n");
  Buffer.add_string buf "    </edges>\n  </graph>\n</gexf>\n";
  Buffer.contents buf

let to_dot ?(name = "temporal") net =
  let g = Tgraph.graph net in
  let directed = Graph.is_directed g in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "%s %S {\n" (if directed then "digraph" else "graph") name);
  for v = 0 to Graph.n g - 1 do
    Buffer.add_string buf (Printf.sprintf "  %d;\n" v)
  done;
  Graph.iter_edges g (fun e u v ->
      let labels =
        String.concat ","
          (List.map string_of_int (Label.to_list (Tgraph.labels net e)))
      in
      Buffer.add_string buf
        (Printf.sprintf "  %d %s %d [label=\"%s\"];\n" u
           (if directed then "->" else "--")
           v labels));
  Buffer.add_string buf "}\n";
  Buffer.contents buf
