type result = {
  source : int;
  start_time : int;
  arrival : int array;
  pred : int array;  (* index into the time-edge stream, or -1 *)
}

let run ?(start_time = 1) net s =
  if start_time < 1 then invalid_arg "Foremost.run: start_time must be >= 1";
  let n = Tgraph.n net in
  if s < 0 || s >= n then invalid_arg "Foremost.run: source out of range";
  let arrival = Array.make n max_int in
  let pred = Array.make n (-1) in
  arrival.(s) <- start_time - 1;
  let stream_pos = ref (-1) in
  Tgraph.iter_time_edges net (fun ~src ~dst ~label ~edge:_ ->
      incr stream_pos;
      if arrival.(src) < label && label < arrival.(dst) then begin
        arrival.(dst) <- label;
        pred.(dst) <- !stream_pos
      end);
  { source = s; start_time; arrival; pred }

let source r = r.source
let start_time r = r.start_time

let distance r v =
  if v = r.source then Some 0
  else if r.arrival.(v) = max_int then None
  else Some r.arrival.(v)

let arrival_array r = Array.copy r.arrival

let reachable_count r =
  Array.fold_left (fun acc a -> if a < max_int then acc + 1 else acc) 0 r.arrival

let max_distance r =
  let worst = ref 0 and complete = ref true in
  Array.iteri
    (fun v a ->
      if v <> r.source then
        if a = max_int then complete := false
        else if a > !worst then worst := a)
    r.arrival;
  if !complete then Some !worst else None

let journey_to net r v =
  if v = r.source then Some []
  else if r.arrival.(v) = max_int then None
  else begin
    let rec walk v acc =
      if v = r.source then acc
      else
        let src, dst, label = Tgraph.time_edge net r.pred.(v) in
        walk src ({ Journey.src; dst; label } :: acc)
    in
    Some (walk v [])
  end

let brute_force_distance net ?(start_time = 1) s t =
  if s = t then Some 0
  else begin
    let best = ref max_int in
    (* DFS over label-respecting walks, pruned by the best arrival so far;
       exponential in the worst case — a reference oracle, not a tool. *)
    let rec explore v time =
      Array.iter
        (fun (_, target, ls) ->
          List.iter
            (fun label ->
              if label > time && label < !best then
                if target = t then best := label else explore target label)
            (Label.to_list ls))
        (Tgraph.crossings_out net v)
    in
    explore s (start_time - 1);
    if !best = max_int then None else Some !best
  end
