(** Deterministic label assignments that preserve reachability, and the
    OPT quantities they certify (paper §4–5).

    [OPT] is the least total number of labels over all edges in an
    assignment with property [Treach] (Definition 8).  It is hard to
    approximate in general [21], but the paper only ever needs:
    the exact values for the clique ([m]) and the star ([2m]), the
    universal lower bound [OPT >= n-1], and constructive upper bounds —
    all provided here, each returning an assignment that the test suite
    verifies satisfies [Treach]. *)

val clique_single : Sgraph.Graph.t -> Tgraph.t
(** One label (time [1]) per edge of a clique — the unique graph family
    where a single label per edge always preserves reachability (§4.1).
    @raise Invalid_argument if the graph is not a clique. *)

val star_two_labels : Sgraph.Graph.t -> Tgraph.t
(** Labels [{1, 2}] on every edge of a star: any leaf-to-leaf journey
    rides [1] then [2].  This realises [OPT = 2m] (Theorem 6 preamble).
    @raise Invalid_argument if the graph is not a star with centre 0. *)

val tree_up_down : Sgraph.Graph.t -> root:int -> Tgraph.t
(** On a tree of height [h] from [root]: the edge joining depth [j] to
    depth [j-1] gets labels [{h - j + 1, h + j}].  Every journey goes up
    (labels [1..h] increasing towards the root) then down (labels
    [h+1..2h] increasing away from it), so two labels per edge preserve
    reachability: [OPT <= 2(n-1)] on trees.
    @raise Invalid_argument if the graph is not a tree. *)

val spanning_tree_upper : Sgraph.Graph.t -> Tgraph.t
(** {!tree_up_down} applied to a BFS spanning tree of a connected graph
    (non-tree edges get no labels): the universal certificate
    [OPT <= 2(n-1)].
    @raise Invalid_argument if the graph is disconnected. *)

val boxes : ?pick:(edge:int -> box:int -> lo:int -> hi:int -> int) ->
  Sgraph.Graph.t -> q:int -> Tgraph.t
(** Claim 1's structure (Figure 3): with lifetime [q] and [d = diam(G)],
    each edge gets one label from each of the [d] consecutive boxes of
    width [λ = q/d] ([Box_i ↦ ((i-1)λ, iλ]]).  Any such assignment makes
    every shortest path a journey, hence guarantees reachability with
    [d·m] labels.  [pick] chooses the label within each box (default: the
    box's first label).
    @raise Invalid_argument if [q < d] or the graph is disconnected. *)

val lower_bound : Sgraph.Graph.t -> int
(** [n - 1]: a labelled spanning structure is unavoidable (§5). *)

val star_value : n:int -> int
(** [2·(n-1)], the exact star OPT. *)

val clique_value : Sgraph.Graph.t -> int
(** [m], the cost of the 1-label-per-edge clique scheme — an upper bound
    on the clique's OPT (the spanning-tree certificate [2(n-1)] is
    smaller for [n >= 5]; §4.1's uniqueness claim is about per-edge
    schemes, not total label minimality). *)

val upper_bound : Sgraph.Graph.t -> int
(** [2·(n-1)] for connected graphs, via {!spanning_tree_upper}. *)

val is_clique : Sgraph.Graph.t -> bool
val is_star : Sgraph.Graph.t -> bool

val single_label_counterexample : Sgraph.Graph.t -> Tgraph.t option
(** §4.1: "the clique is the only graph for which temporal reachability
    is guaranteed even with 1 label per edge".  For a non-clique with
    some statically-joined non-adjacent pair, the all-ones assignment is
    a counterexample (equal labels never chain); returns it.  [None] for
    cliques and for graphs where no non-adjacent pair is statically
    connected. *)

val single_label_always_preserves : Sgraph.Graph.t -> a:int -> bool
(** Exhaustive verification of the same claim: does *every* assignment
    of one label from [{1..a}] per edge preserve reachability?  Cost
    [a^m] — small fixtures only (guarded at [a^m <= 100_000]).
    @raise Invalid_argument beyond the guard. *)
