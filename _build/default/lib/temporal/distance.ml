let distance net u v =
  let res = Foremost.run net u in
  Foremost.distance res v

let eccentricity net s = Foremost.max_distance (Foremost.run net s)

let worst_over_sources net sources =
  let rec scan worst = function
    | [] -> Some worst
    | s :: rest -> (
      match eccentricity net s with
      | None -> None
      | Some e -> scan (Stdlib.max worst e) rest)
  in
  scan 0 sources

let instance_diameter net =
  worst_over_sources net (List.init (Tgraph.n net) Fun.id)

let instance_diameter_sampled rng net ~sources =
  let n = Tgraph.n net in
  let k = Stdlib.min sources n in
  let picks = Prng.Sample.choose_distinct rng ~k ~n in
  worst_over_sources net (Array.to_list picks)

let all_pairs net =
  Array.init (Tgraph.n net) (fun u ->
      let res = Foremost.run net u in
      let row = Foremost.arrival_array res in
      row.(u) <- 0;
      row)

let average net =
  let n = Tgraph.n net in
  let total = ref 0 and pairs = ref 0 in
  for u = 0 to n - 1 do
    let res = Foremost.run net u in
    for v = 0 to n - 1 do
      if v <> u then
        match Foremost.distance res v with
        | Some d ->
          total := !total + d;
          incr pairs
        | None -> ()
    done
  done;
  if !pairs = 0 then Float.nan else float_of_int !total /. float_of_int !pairs
