(** Restless journeys: bounded waiting at intermediate vertices.

    A Δ-restless journey may pause at most [delta] time steps between
    consecutive hops: labels satisfy [l_i < l_{i+1} <= l_i + delta].  In
    the hostile-network story, the message cannot sit on a compromised
    relay indefinitely.  Modern temporal-graph theory (Casteigts,
    Himmel, Molter, Zschoche) separates two problems sharply:

    - restless {e walks} (vertex revisits allowed): earliest arrival is
      polynomial — implemented exactly here by a label-ordered sweep
      that keeps, per vertex, the sorted set of distinct arrival times;
    - restless {e simple paths}: NP-hard; an exhaustive reference is
      provided for small networks.

    [delta >= lifetime] recovers ordinary foremost journeys
    (property-tested against {!Foremost}). *)

type result

val run : ?start_time:int -> delta:int -> Tgraph.t -> int -> result
(** Earliest Δ-restless-walk arrivals out of a source.  The source may
    launch at any moment [>= start_time] without waiting restrictions
    (waiting constrains only intermediate pauses).
    @raise Invalid_argument if [delta < 1], a bad source, or
    [start_time < 1]. *)

val source : result -> int
val delta : result -> int

val distance : result -> int -> int option
(** Earliest restless arrival; [Some 0] at the source, [None] if no
    restless walk reaches the vertex. *)

val reachable_count : result -> int

val journey_to : result -> int -> Journey.t option
(** A witness restless walk arriving at {!distance}; [Some []] at the
    source.  Always satisfies [Journey.is_journey] on the network it was
    computed from, plus the waiting bound ({!is_restless}). *)

val is_restless : result -> Journey.t -> bool
(** Do consecutive labels of the journey respect this result's waiting
    bound [delta]? *)

val path_exists_exhaustive :
  delta:int -> Tgraph.t -> s:int -> t:int -> bool
(** Is there a Δ-restless {e simple path} [s → t]?  Exhaustive search
    (the problem is NP-hard); small networks only.
    @raise Invalid_argument for networks with more than 20 vertices. *)
