let saturated = max_int / 4

let saturating_add a b =
  if a >= saturated - b then saturated else a + b

let foremost_journeys net s =
  let n = Tgraph.n net in
  let expanded = Expanded.build net in
  let node_count = Expanded.node_count expanded in
  let ways = Array.make node_count 0 in
  ways.(Expanded.start_node expanded s) <- 1;
  (* Topological order: node time strictly increases along every arc, so
     sorting node ids by time works; ties carry no arcs between them. *)
  let order = Array.init node_count Fun.id in
  Array.sort
    (fun i j ->
      compare (snd (Expanded.node expanded i)) (snd (Expanded.node expanded j)))
    order;
  (* Arcs grouped by source for a single pass in topological order. *)
  let out = Array.make node_count [] in
  Array.iter
    (fun arc ->
      match arc with
      | Expanded.Wait { from_id; to_id } | Expanded.Travel { from_id; to_id; _ }
        -> out.(from_id) <- to_id :: out.(from_id))
    (Expanded.arcs expanded);
  Array.iter
    (fun id ->
      if ways.(id) > 0 then
        List.iter
          (fun to_id -> ways.(to_id) <- saturating_add ways.(to_id) ways.(id))
          out.(id))
    order;
  (* Earliest-arrival node per vertex. *)
  let res = Foremost.run net s in
  let counts = Array.make n 0 in
  counts.(s) <- 1;
  let arrivals = Foremost.arrival_array res in
  for id = 0 to node_count - 1 do
    let v, time = Expanded.node expanded id in
    if v <> s && time = arrivals.(v) && time > 0 then counts.(v) <- ways.(id)
  done;
  counts

let unique_optimum net ~s ~t = (foremost_journeys net s).(t) = 1
