type step = { from_time : int; until_time : int; arrival : int option }

let compute net ~source ~target =
  let n = Tgraph.n net in
  if source < 0 || source >= n || target < 0 || target >= n then
    invalid_arg "Profile.compute: endpoint out of range";
  let lifetime = Tgraph.lifetime net in
  (* The arrival function only changes when t0 crosses a label value, so
     it suffices to evaluate at 1 and at l+1 for every distinct label l.
     (Evaluating at every t0 would give the same steps, slower.) *)
  let breakpoints = ref [ 1 ] in
  let seen = Hashtbl.create 64 in
  Tgraph.iter_time_edges net (fun ~src:_ ~dst:_ ~label ~edge:_ ->
      if not (Hashtbl.mem seen label) then begin
        Hashtbl.add seen label ();
        if label + 1 <= lifetime + 1 then breakpoints := (label + 1) :: !breakpoints
      end);
  let breakpoints = List.sort_uniq compare !breakpoints in
  let value t0 =
    if source = target then Some 0
    else Foremost.distance (Foremost.run ~start_time:t0 net source) target
  in
  (* Build maximal constant runs over consecutive breakpoints. *)
  let rec build = function
    | [] -> []
    | t0 :: rest ->
      let arrival = value t0 in
      let rec extend last = function
        | t :: more when value t = arrival -> extend t more
        | remaining -> (last, remaining)
      in
      let last, remaining = extend t0 rest in
      let until_time =
        match remaining with
        | next :: _ -> next - 1
        | [] -> Stdlib.max last (lifetime + 1)
      in
      { from_time = t0; until_time; arrival } :: build remaining
  in
  build breakpoints

let arrival_at steps t0 =
  let rec search = function
    | [] -> raise Not_found
    | { from_time; until_time; arrival } :: rest ->
      if t0 < from_time then raise Not_found
      else if t0 <= until_time then arrival
      else if rest = [] then arrival (* beyond the last step: stays flat *)
      else search rest
  in
  search steps

let latest_useful_departure steps =
  List.fold_left
    (fun acc { until_time; arrival; _ } ->
      match arrival with Some _ -> Some until_time | None -> acc)
    None steps

let pp ppf steps =
  let pp_step ppf { from_time; until_time; arrival } =
    match arrival with
    | Some a -> Format.fprintf ppf "[%d..%d] -> %d" from_time until_time a
    | None -> Format.fprintf ppf "[%d..%d] -> never" from_time until_time
  in
  Format.fprintf ppf "@[<h>%a@]" (Fmt.list ~sep:(Fmt.any "; ") pp_step) steps
