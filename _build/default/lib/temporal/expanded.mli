(** The time-expanded (static) view of a temporal network.

    Nodes are (vertex, time) pairs — one per arrival event plus a time-0
    presence node per vertex; *wait* arcs chain a vertex's events
    forward in time, and each time edge [(u, v, l)] becomes one *travel*
    arc from [u]'s latest event before [l] to [(v, l)].  Strictly
    increasing journey labels correspond exactly to directed paths here,
    which turns temporal questions into static ones: reachability,
    and — with unit capacities on travel arcs — the maximum number of
    time-edge-disjoint journeys as a max-flow ({!Disjoint}).  This is
    the classic reduction underlying Kempe, Kleinberg & Kumar [19] and
    Berman's scheduled networks. *)

type t

type arc =
  | Wait of { from_id : int; to_id : int }
      (** stay at the vertex between consecutive events *)
  | Travel of { from_id : int; to_id : int; stream_index : int }
      (** cross the time edge at [Tgraph.time_edge net stream_index] *)

val build : Tgraph.t -> t

val network : t -> Tgraph.t
val node_count : t -> int

val node : t -> int -> int * int
(** [(vertex, time)] of a node id; time 0 is the initial presence. *)

val start_node : t -> int -> int
(** The time-0 node of a vertex. *)

val arcs : t -> arc array
(** All arcs (do not mutate). *)

val arc_count : t -> int

val earliest_arrival : t -> int -> int array
(** [earliest_arrival exp s] recomputes temporal distances from [s] *via
    the static expansion* (per vertex, the minimum event time among
    reachable nodes; [max_int] if none, [0] at the source) — an
    independent cross-check of {!Foremost}, property-tested equal. *)
