module Graph = Sgraph.Graph
module Rng = Prng.Rng

type strategy = Random_jam | Earliest_first | Cut_vertex_focus | Greedy_damage

let strategy_name = function
  | Random_jam -> "random"
  | Earliest_first -> "earliest-first"
  | Cut_vertex_focus -> "cut-vertex"
  | Greedy_damage -> "greedy"

type outcome = {
  jammed : Tgraph.t;
  cancelled : int;
  reachable_before : int;
  reachable_after : int;
}

let all_labels net =
  let acc = ref [] in
  Graph.iter_edges (Tgraph.graph net) (fun e _ _ ->
      List.iter (fun l -> acc := (e, l) :: !acc) (Label.to_list (Tgraph.labels net e)));
  !acc

let without net victims =
  let by_edge = Hashtbl.create 16 in
  List.iter
    (fun (e, l) ->
      Hashtbl.replace by_edge (e, l) ())
    victims;
  Assignment.of_fun (Tgraph.graph net) ~a:(Tgraph.lifetime net) (fun e ->
      Label.of_list
        (List.filter
           (fun l -> not (Hashtbl.mem by_edge (e, l)))
           (Label.to_list (Tgraph.labels net e))))

let pairs net = Reachability.reachable_pair_count net

let jam rng net ~budget ~strategy =
  if budget < 0 then invalid_arg "Adversary.jam: budget must be >= 0";
  let before = pairs net in
  let labels = all_labels net in
  let jammed, cancelled =
    match strategy with
    | Random_jam ->
      let arr = Array.of_list labels in
      Prng.Sample.shuffle rng arr;
      let victims =
        Array.to_list (Array.sub arr 0 (Stdlib.min budget (Array.length arr)))
      in
      (without net victims, List.length victims)
    | Earliest_first ->
      let sorted = List.sort (fun (_, l1) (_, l2) -> compare l1 l2) labels in
      let victims = List.filteri (fun i _ -> i < budget) sorted in
      (without net victims, List.length victims)
    | Cut_vertex_focus ->
      let scores = Centrality.betweenness net in
      let target = (Centrality.rank scores).(0) in
      let g = Tgraph.graph net in
      let incident =
        List.filter
          (fun (e, _) ->
            let u, v = Graph.edge_endpoints g e in
            u = target || v = target)
          labels
      in
      let sorted = List.sort (fun (_, l1) (_, l2) -> compare l1 l2) incident in
      let victims = List.filteri (fun i _ -> i < budget) sorted in
      (without net victims, List.length victims)
    | Greedy_damage ->
      let current = ref net in
      let cancelled = ref 0 in
      (try
         for _ = 1 to budget do
           let candidates = all_labels !current in
           if candidates = [] then raise Exit;
           let baseline = pairs !current in
           let best = ref None and best_pairs = ref max_int in
           List.iter
             (fun victim ->
               let attempt = without !current [ victim ] in
               let remaining = pairs attempt in
               if remaining < !best_pairs then begin
                 best_pairs := remaining;
                 best := Some attempt
               end)
             candidates;
           match !best with
           | Some attempt when !best_pairs <= baseline ->
             current := attempt;
             incr cancelled
           | _ -> raise Exit
         done
       with Exit -> ());
      (!current, !cancelled)
  in
  {
    jammed;
    cancelled;
    reachable_before = before;
    reachable_after = pairs jammed;
  }
