module Graph = Sgraph.Graph

type t = {
  graph : Graph.t;
  lifetime : int;
  labels : Label.t array;
  te_src : int array;
  te_dst : int array;
  te_label : int array;
  te_edge : int array;
  out_cache : (int * int * Label.t) array array;
  in_cache : (int * int * Label.t) array array;
}

let create g ~lifetime labels =
  if lifetime <= 0 then invalid_arg "Tgraph.create: lifetime must be positive";
  if Array.length labels <> Graph.m g then
    invalid_arg "Tgraph.create: one label set per edge required";
  Array.iter
    (fun ls ->
      if not (Label.within_lifetime ls lifetime) then
        invalid_arg "Tgraph.create: label beyond the lifetime")
    labels;
  (* Count stream entries: one per (arc direction, label). *)
  let directions = if Graph.is_directed g then 1 else 2 in
  let total = ref 0 in
  Array.iter (fun ls -> total := !total + (directions * Label.size ls)) labels;
  let total = !total in
  let te_src = Array.make total 0 in
  let te_dst = Array.make total 0 in
  let te_label = Array.make total 0 in
  let te_edge = Array.make total 0 in
  let fill = ref 0 in
  Graph.iter_edges g (fun e u v ->
      let emit src dst label =
        te_src.(!fill) <- src;
        te_dst.(!fill) <- dst;
        te_label.(!fill) <- label;
        te_edge.(!fill) <- e;
        incr fill
      in
      let ls = labels.(e) in
      Array.iter
        (fun label ->
          emit u v label;
          if not (Graph.is_directed g) then emit v u label)
        (ls :> int array));
  (* Sort the stream by label via an index permutation. *)
  let order = Array.init total (fun i -> i) in
  Array.sort (fun i j -> compare te_label.(i) te_label.(j)) order;
  let permute a = Array.map (fun i -> a.(i)) order in
  let te_src = permute te_src
  and te_dst = permute te_dst
  and te_label = permute te_label
  and te_edge = permute te_edge in
  let out_cache =
    Array.init (Graph.n g) (fun v ->
        Array.map (fun (e, target) -> (e, target, labels.(e))) (Graph.out_arcs g v))
  in
  let in_cache =
    Array.init (Graph.n g) (fun v ->
        Array.map (fun (e, source) -> (e, source, labels.(e))) (Graph.in_arcs g v))
  in
  { graph = g; lifetime; labels; te_src; te_dst; te_label; te_edge;
    out_cache; in_cache }

let graph t = t.graph
let lifetime t = t.lifetime
let n t = Graph.n t.graph
let labels t e = t.labels.(e)

let label_count t =
  Array.fold_left (fun acc ls -> acc + Label.size ls) 0 t.labels

let time_edge_count t = Array.length t.te_label

let iter_time_edges t f =
  for i = 0 to time_edge_count t - 1 do
    f ~src:t.te_src.(i) ~dst:t.te_dst.(i) ~label:t.te_label.(i)
      ~edge:t.te_edge.(i)
  done

let time_edge t i = (t.te_src.(i), t.te_dst.(i), t.te_label.(i))
let crossings_out t v = t.out_cache.(v)
let crossings_in t v = t.in_cache.(v)

let can_cross_at t ~src ~dst time =
  Array.exists
    (fun (_, target, ls) -> target = dst && Label.mem ls time)
    t.out_cache.(src)

let pp ppf t =
  Format.fprintf ppf "temporal network on %a, lifetime=%d, labels=%d"
    Graph.pp t.graph t.lifetime (label_count t)
