(** Fastest journeys: minimum time in transit.

    A fastest [(s,v)]-journey minimises [arrival − departure] (departure
    = its first label); the third member of the Bui-Xuan–Ferreira–Jarry
    taxonomy [6].  On the hostile clique this answers "how long is the
    message actually in flight", as opposed to "how early does it land"
    ({!Foremost}) or "how few exposures does it risk" ({!Shortest}).

    Computed by running the foremost sweep once per candidate departure
    time — the distinct labels on arcs leaving the source — and keeping,
    per target, the best [arrival − departure].  Cost O(Δ_s · M) where
    [Δ_s] is the number of distinct labels leaving [s]. *)

type result

val run : Tgraph.t -> int -> result
(** @raise Invalid_argument on a bad source. *)

val source : result -> int

val duration : result -> int -> int option
(** Minimum transit time to the vertex; [Some 0] for the source itself,
    [None] if unreachable. *)

val window : result -> int -> (int * int) option
(** [(departure, arrival)] of a fastest journey to the vertex. *)

val max_duration : result -> int option
(** Worst transit time over all vertices; [None] if some vertex is
    unreachable. *)

val journey_to : Tgraph.t -> result -> int -> Journey.t option
(** Witness journey achieving {!duration}. *)
