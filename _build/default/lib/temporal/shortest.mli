(** Shortest journeys: fewest hops, time-respecting.

    Completes the classic journey taxonomy (foremost / reverse-foremost /
    fastest / shortest) of Bui-Xuan, Ferreira & Jarry [6] in the
    discrete-label model.  A shortest [(s,v)]-journey minimises the
    number of time edges used; its arrival time may be worse than the
    foremost journey's.

    Computed by hop-layered dynamic programming on
    [arr_k(v)] = earliest arrival using at most [k] edges:
    [arr_k(v) = min(arr_{k-1}(v), min over arcs (u,v) of the smallest
    label > arr_{k-1}(u))].  Prefix-optimality holds because an earlier
    arrival never disables a later label.  O(diam · M · log) overall. *)

type result

val run : ?start_time:int -> Tgraph.t -> int -> result
(** [run net s] computes minimal hop counts (and the earliest arrival at
    that hop count) from [s] for journeys departing at [>= start_time].
    @raise Invalid_argument on a bad source or [start_time < 1]. *)

val source : result -> int

val hops : result -> int -> int option
(** Fewest time edges of any journey to the vertex; [Some 0] for the
    source, [None] if unreachable. *)

val arrival_at_best_hops : result -> int -> int option
(** Earliest arrival among journeys using {!hops} edges. *)

val max_hops : result -> int option
(** The instance's hop-eccentricity of the source; [None] if some vertex
    is unreachable. *)

val journey_to : Tgraph.t -> result -> int -> Journey.t option
(** A witness journey with exactly {!hops} steps; [Some []] for the
    source. *)

val pareto : result -> int -> (int * int) list
(** [pareto r v] is the full hops-vs-arrival trade-off to [v]: the
    non-dominated [(hops, earliest arrival using <= hops edges)] pairs,
    in increasing hops / strictly decreasing arrival order.  Its first
    point is [({!hops}, {!arrival_at_best_hops})] and its last arrival
    equals the foremost distance.  Empty when unreachable; [[(0, 0)]]
    at the source. *)
