(** Online (streaming) foremost computation.

    The batch sweep in {!Foremost} is a left-to-right pass over the
    label-sorted time-edge stream; this module exposes that pass as a
    stateful consumer, so earliest arrivals can be maintained while a
    contact trace is still being observed — queries are O(1) between
    observations, and the final state provably equals the batch result
    (property-tested).  Observations must arrive in non-decreasing label
    order, which is how traces naturally come. *)

type t

val create : ?start_time:int -> n:int -> int -> t
(** [create ~n source] tracks earliest arrivals from [source] among
    vertices [0..n-1].
    @raise Invalid_argument on a bad source or [start_time < 1]. *)

val observe : t -> src:int -> dst:int -> label:int -> unit
(** Feed one directed contact: [src] can pass the message to [dst] at
    time [label] (call twice for an undirected contact).
    @raise Invalid_argument if the label precedes an earlier observation
    (the stream must be non-decreasing) or endpoints are out of range. *)

val now : t -> int
(** Largest label observed so far ([0] initially). *)

val arrival : t -> int -> int option
(** Current earliest arrival; [Some 0] for the source. *)

val reachable_count : t -> int
val informed : t -> int -> bool

val arrivals : t -> int array
(** Snapshot of the raw arrival array ([max_int] = not yet reached,
    source holds [start_time - 1]). *)
