(** Temporal reachability and the [Treach] property (paper, Definition 6).

    An assignment *preserves the reachability* of [G] when for every
    ordered pair [(u, v)]: a static path [u → v] exists iff a journey
    [u → v] exists in [(G, L)].  (Labels can never create reachability,
    so only the forward implication can fail.) *)

val temporally_reachable : Tgraph.t -> int -> int -> bool
(** Is there a journey from the first vertex to the second? *)

val treach : Tgraph.t -> bool
(** Does the network satisfy [Treach]?  Checked source by source with
    early exit on the first failing source. *)

val missing_pairs : Tgraph.t -> (int * int) list
(** All ordered pairs that are statically but not temporally reachable
    (empty iff {!treach}). *)

val reachable_pair_count : Tgraph.t -> int
(** Ordered pairs [u <> v] joined by a journey. *)

val static_reachable_pair_count : Tgraph.t -> int
(** Ordered pairs [u <> v] joined by a static path — the denominator
    [Treach] is measured against. *)

val reachability_ratio : Tgraph.t -> float
(** [reachable_pair_count / static_reachable_pair_count]; [1.0] iff
    {!treach} (and for graphs with no static pairs at all). *)
