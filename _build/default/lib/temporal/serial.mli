(** Serialization of temporal networks.

    A line-oriented text format (round-trips exactly) and a Graphviz DOT
    export for visualisation.  The text format:

    {v
    temporal directed n=4 lifetime=9
    # comments and blank lines are ignored
    0 1 : 2 5
    1 2 : 3
    2 3 :
    v}

    one edge per line, its label set after the colon (possibly empty). *)

val to_string : Tgraph.t -> string

val of_string : string -> (Tgraph.t, string) result
(** Parse; [Error message] pinpoints the offending line. *)

val to_channel : out_channel -> Tgraph.t -> unit
val of_file : string -> (Tgraph.t, string) result
val to_file : string -> Tgraph.t -> unit

val to_dot : ?name:string -> Tgraph.t -> string
(** Graphviz source; edges annotated with their label sets. *)

val to_gexf : Tgraph.t -> string
(** GEXF 1.2 with dynamic edges: each availability moment becomes an
    edge spell [<spell start=l end=l/>], which Gephi's timeline can
    animate — the visualization route for temporal networks. *)
