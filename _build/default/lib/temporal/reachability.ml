module Traverse = Sgraph.Traverse

let temporally_reachable net u v =
  Foremost.distance (Foremost.run net u) v <> None

let static_row net u = Traverse.bfs (Tgraph.graph net) u

let source_ok net u =
  let static = static_row net u in
  let res = Foremost.run net u in
  let n = Tgraph.n net in
  let rec scan v =
    v >= n
    || ((static.(v) = Traverse.unreachable || Foremost.distance res v <> None)
        && scan (v + 1))
  in
  scan 0

let treach net =
  let n = Tgraph.n net in
  let rec scan u = u >= n || (source_ok net u && scan (u + 1)) in
  scan 0

let missing_pairs net =
  let n = Tgraph.n net in
  let missing = ref [] in
  for u = n - 1 downto 0 do
    let static = static_row net u in
    let res = Foremost.run net u in
    for v = n - 1 downto 0 do
      if v <> u && static.(v) <> Traverse.unreachable
         && Foremost.distance res v = None
      then missing := (u, v) :: !missing
    done
  done;
  !missing

let count_pairs net ~temporal =
  let n = Tgraph.n net in
  let count = ref 0 in
  for u = 0 to n - 1 do
    if temporal then begin
      let res = Foremost.run net u in
      (* reachable_count includes the source itself. *)
      count := !count + (Foremost.reachable_count res - 1)
    end
    else begin
      let static = static_row net u in
      Array.iteri
        (fun v d -> if v <> u && d <> Traverse.unreachable then incr count)
        static
    end
  done;
  !count

let reachable_pair_count net = count_pairs net ~temporal:true
let static_reachable_pair_count net = count_pairs net ~temporal:false

let reachability_ratio net =
  let static = static_reachable_pair_count net in
  if static = 0 then 1.
  else float_of_int (reachable_pair_count net) /. float_of_int static
