(** Transformations of temporal networks.

    The algebra a user needs to slice and re-time availability
    schedules.  Two of these double as executable duality lemmas,
    property-tested in the suite:

    - {!reverse_time}: mapping every label [l ↦ a+1-l] and flipping arc
      directions turns [(u,v)]-journeys into [(v,u)]-journeys, so
      foremost distances in the reversal encode latest-departure times
      in the original;
    - {!scale}: multiplying labels by [k >= 1] multiplies every temporal
      distance by exactly... nothing so simple — it maps a journey with
      arrival [l] to one with arrival [k·l], so [δ' = k·δ] on the nose. *)

val restrict_window : Tgraph.t -> lo:int -> hi:int -> Tgraph.t
(** Keep only labels in the inclusive window [\[lo, hi\]]; lifetime
    unchanged.
    @raise Invalid_argument if [lo < 1]. *)

val shift : Tgraph.t -> int -> Tgraph.t
(** [shift net d] adds [d] to every label (lifetime becomes
    [lifetime + d]).
    @raise Invalid_argument if some label would leave [>= 1]. *)

val scale : Tgraph.t -> int -> Tgraph.t
(** [scale net k] multiplies every label and the lifetime by [k >= 1].
    @raise Invalid_argument if [k < 1]. *)

val reverse_time : Tgraph.t -> Tgraph.t
(** Labels [l ↦ lifetime + 1 - l]; directed networks also get their arcs
    reversed (undirected ones are their own arc-reversal). *)

val union : Tgraph.t -> Tgraph.t -> Tgraph.t
(** Per-edge union of the label sets of two networks over the *same*
    underlying graph (same kind, vertex count and edge list); the
    lifetime is the max of the two.
    @raise Invalid_argument if the structures differ. *)

val induced : Tgraph.t -> int list -> Tgraph.t * int array
(** [induced net vertices] keeps the given vertices (deduplicated) and
    the edges among them; returns the subnetwork and the mapping from
    new index to original vertex.
    @raise Invalid_argument on out-of-range vertices or an empty list. *)
