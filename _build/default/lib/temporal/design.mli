(** Availability design: combining deterministic and random labels.

    The paper closes (§6) with: "The subject of designing the
    availability of a net (by combining random availabilities and
    optimal local availabilities) is a subject of our current research."
    This module builds that hybrid: a deterministic spanning-tree
    *backbone* (the up/down scheme of {!Opt.spanning_tree_upper}, which
    certifies reachability outright at [2(n-1)] labels) overlaid with
    [r] random labels per edge (which shrink temporal distances).  The
    result keeps the guarantee *and* buys speed — quantified by
    experiment E13. *)

type spec =
  | Backbone_only
      (** spanning-tree up/down labels; reachability certain, slow *)
  | Random_only of int
      (** [r] uniform labels per edge; fast, reachability probabilistic *)
  | Hybrid of int
      (** backbone + [r] uniform labels on every edge: certain and fast *)

val spec_name : spec -> string

val label_budget : Sgraph.Graph.t -> spec -> int
(** Expected total labels of the design (random labels counted before
    collision collapse). *)

val realise : Prng.Rng.t -> Sgraph.Graph.t -> a:int -> spec -> Tgraph.t
(** Materialise the design on a connected graph.  The backbone labels
    are placed in [{1 .. 2h}] as in {!Opt.tree_up_down}; random labels
    are uniform on [{1..a}].
    @raise Invalid_argument if the graph is disconnected or directed,
    or if [a] is below the backbone horizon [2h]. *)

val guarantees_reachability : spec -> bool
(** [true] exactly for designs containing the backbone. *)
