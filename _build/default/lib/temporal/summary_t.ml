type t = {
  n : int;
  m : int;
  lifetime : int;
  labels : int;
  time_edges : int;
  statically_connected : bool;
  treach : bool;
  reachable_pairs : int;
  static_pairs : int;
  temporal_diameter : int option;
  average_distance : float;
  best_broadcaster : int;
  broadcast_time : int option;
  cover_sources : int;
  temporal_scc_count : int;
}

let compute net =
  let g = Tgraph.graph net in
  let best, time = Centrality.best_broadcaster net in
  {
    n = Tgraph.n net;
    m = Sgraph.Graph.m g;
    lifetime = Tgraph.lifetime net;
    labels = Tgraph.label_count net;
    time_edges = Tgraph.time_edge_count net;
    statically_connected = Sgraph.Components.is_connected g;
    treach = Reachability.treach net;
    reachable_pairs = Reachability.reachable_pair_count net;
    static_pairs = Reachability.static_reachable_pair_count net;
    temporal_diameter = Distance.instance_diameter net;
    average_distance = Distance.average net;
    best_broadcaster = best;
    broadcast_time = (if time = max_int then None else Some time);
    cover_sources = List.length (Centrality.broadcast_cover net);
    temporal_scc_count = Tcc.scc_count net;
  }

let pp ppf t =
  let opt ppf = function
    | Some x -> Format.fprintf ppf "%d" x
    | None -> Format.fprintf ppf "-"
  in
  Format.fprintf ppf
    "@[<v>n=%d m=%d lifetime=%d labels=%d time-edges=%d@,\
     statically connected: %b   Treach: %b@,\
     reachable pairs: %d/%d   temporal diameter: %a   mean distance: %.2f@,\
     best broadcaster: %d (time %a)   cover: %d source(s)   temporal sccs: %d@]"
    t.n t.m t.lifetime t.labels t.time_edges t.statically_connected t.treach
    t.reachable_pairs t.static_pairs opt t.temporal_diameter
    t.average_distance t.best_broadcaster opt t.broadcast_time t.cover_sources
    t.temporal_scc_count
