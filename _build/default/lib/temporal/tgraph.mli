(** Temporal networks [G = (V, E, L)] (paper, Definition 1).

    A static graph plus a label assignment and a lifetime [a] (the network
    is ephemeral: no label exceeds [a]).  Construction pre-sorts the
    *time-edge* stream — every [(u, v, l)] triple with [l ∈ L_{(u,v)}],
    both directions for undirected edges — by label, which is what makes
    foremost-journey computation a single linear sweep. *)

type t

val create : Sgraph.Graph.t -> lifetime:int -> Label.t array -> t
(** [create g ~lifetime labels] with [labels.(e)] the label set of edge
    id [e].
    @raise Invalid_argument if the array length differs from [m g], if
    the lifetime is non-positive, or if any label exceeds the lifetime. *)

val graph : t -> Sgraph.Graph.t
val lifetime : t -> int

val n : t -> int
(** Vertex count of the underlying graph. *)

val labels : t -> int -> Label.t
(** Label set of an edge id. *)

val label_count : t -> int
(** Total number of labels over all edges — the quantity compared against
    [OPT] in the Price of Randomness. *)

val time_edge_count : t -> int
(** Number of directed time edges in the sweep stream (undirected edges
    contribute both directions per label). *)

val iter_time_edges : t -> (src:int -> dst:int -> label:int -> edge:int -> unit) -> unit
(** Iterate the stream in non-decreasing label order. *)

val time_edge : t -> int -> int * int * int
(** [time_edge t i] is the [i]-th stream entry as [(src, dst, label)]. *)

val crossings_out : t -> int -> (int * int * Label.t) array
(** [crossings_out t v] lists [(edge id, target, labels)] for each arc
    leaving [v] (do not mutate). *)

val crossings_in : t -> int -> (int * int * Label.t) array
(** [(edge id, source, labels)] for each arc entering [v]. *)

val can_cross_at : t -> src:int -> dst:int -> int -> bool
(** Is some arc [src → dst] available exactly at the given time? *)

val pp : Format.formatter -> t -> unit
