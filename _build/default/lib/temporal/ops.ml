module Graph = Sgraph.Graph

let map_labels net f =
  Assignment.of_fun (Tgraph.graph net) ~a:(Tgraph.lifetime net) (fun e ->
      Label.of_list (List.filter_map f (Label.to_list (Tgraph.labels net e))))

let restrict_window net ~lo ~hi =
  if lo < 1 then invalid_arg "Ops.restrict_window: lo must be >= 1";
  map_labels net (fun l -> if l >= lo && l <= hi then Some l else None)

let shift net d =
  let g = Tgraph.graph net in
  let lifetime = Tgraph.lifetime net + Stdlib.max 0 d in
  let labels =
    Array.init (Graph.m g) (fun e ->
        let shifted = List.map (fun l -> l + d) (Label.to_list (Tgraph.labels net e)) in
        List.iter
          (fun l -> if l < 1 then invalid_arg "Ops.shift: label would drop below 1")
          shifted;
        Label.of_list shifted)
  in
  Tgraph.create g ~lifetime labels

let scale net k =
  if k < 1 then invalid_arg "Ops.scale: k must be >= 1";
  let g = Tgraph.graph net in
  let labels =
    Array.init (Graph.m g) (fun e ->
        Label.of_list (List.map (fun l -> k * l) (Label.to_list (Tgraph.labels net e))))
  in
  Tgraph.create g ~lifetime:(k * Tgraph.lifetime net) labels

let reverse_time net =
  let g = Graph.reverse (Tgraph.graph net) in
  let a = Tgraph.lifetime net in
  (* Graph.reverse preserves edge ids, so the label arrays line up. *)
  let labels =
    Array.init (Graph.m g) (fun e ->
        Label.of_list (List.map (fun l -> a + 1 - l) (Label.to_list (Tgraph.labels net e))))
  in
  Tgraph.create g ~lifetime:a labels

let union a b =
  let ga = Tgraph.graph a and gb = Tgraph.graph b in
  if Graph.kind ga <> Graph.kind gb || Graph.n ga <> Graph.n gb
     || Graph.edges ga <> Graph.edges gb
  then invalid_arg "Ops.union: different underlying graphs";
  let lifetime = Stdlib.max (Tgraph.lifetime a) (Tgraph.lifetime b) in
  Assignment.of_fun ga ~a:lifetime (fun e ->
      Label.union (Tgraph.labels a e) (Tgraph.labels b e))

let induced net vertices =
  let g = Tgraph.graph net in
  let n = Graph.n g in
  let keep = List.sort_uniq compare vertices in
  if keep = [] then invalid_arg "Ops.induced: empty vertex list";
  List.iter
    (fun v ->
      if v < 0 || v >= n then invalid_arg "Ops.induced: vertex out of range")
    keep;
  let old_of_new = Array.of_list keep in
  let new_of_old = Array.make n (-1) in
  Array.iteri (fun idx v -> new_of_old.(v) <- idx) old_of_new;
  let edges = ref [] and labels = ref [] in
  Graph.iter_edges g (fun e u v ->
      if new_of_old.(u) >= 0 && new_of_old.(v) >= 0 then begin
        edges := (new_of_old.(u), new_of_old.(v)) :: !edges;
        labels := Tgraph.labels net e :: !labels
      end);
  let sub =
    Graph.create (Graph.kind g) ~n:(Array.length old_of_new) (List.rev !edges)
  in
  let label_array = Array.of_list (List.rev !labels) in
  (Tgraph.create sub ~lifetime:(Tgraph.lifetime net) label_array, old_of_new)
