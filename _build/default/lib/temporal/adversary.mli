(** Adversarial jamming: removing availability to break the network.

    The paper's hostile links are "unguarded" only at their labelled
    moments; the inverse question is the guard's: given a budget of
    [k] extra guard-slots — each cancels one (edge, time) availability —
    how much reachability can be destroyed?  Strategies range from blind
    to fully informed; measured by experiment E18 against the §6 designs,
    closing the loop: which availability design survives jamming best? *)

type strategy =
  | Random_jam  (** cancel uniformly random labels *)
  | Earliest_first  (** cancel the globally earliest labels *)
  | Cut_vertex_focus
      (** cancel labels on edges incident to the highest temporal-
          betweenness vertex, earliest first *)
  | Greedy_damage
      (** cancel, at each step, the single label whose removal destroys
          the most currently-reachable ordered pairs — the informed
          adversary; O(budget · L · n · M), small networks only *)

val strategy_name : strategy -> string

type outcome = {
  jammed : Tgraph.t;  (** the network after cancellations *)
  cancelled : int;  (** labels actually removed (≤ budget) *)
  reachable_before : int;
  reachable_after : int;
}

val jam :
  Prng.Rng.t -> Tgraph.t -> budget:int -> strategy:strategy -> outcome
(** Remove up to [budget] labels according to the strategy.
    @raise Invalid_argument if [budget < 0]. *)
