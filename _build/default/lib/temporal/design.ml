module Graph = Sgraph.Graph

type spec = Backbone_only | Random_only of int | Hybrid of int

let spec_name = function
  | Backbone_only -> "backbone"
  | Random_only r -> Printf.sprintf "random r=%d" r
  | Hybrid r -> Printf.sprintf "hybrid r=%d" r

let label_budget g = function
  | Backbone_only -> 2 * (Graph.n g - 1)
  | Random_only r -> r * Graph.m g
  | Hybrid r -> (2 * (Graph.n g - 1)) + (r * Graph.m g)

let guarantees_reachability = function
  | Backbone_only | Hybrid _ -> true
  | Random_only _ -> false

let realise rng g ~a spec =
  if Graph.is_directed g then invalid_arg "Design.realise: directed graph";
  if not (Sgraph.Components.is_connected g) then
    invalid_arg "Design.realise: disconnected graph";
  let backbone () =
    let net = Opt.spanning_tree_upper g in
    if Tgraph.lifetime net > a then
      invalid_arg "Design.realise: lifetime below the backbone horizon";
    (* Re-house the backbone labels under the requested lifetime. *)
    Assignment.of_fun g ~a (Tgraph.labels net)
  in
  let random r = Assignment.uniform_multi rng g ~a ~r in
  match spec with
  | Backbone_only -> backbone ()
  | Random_only r -> random r
  | Hybrid r -> Ops.union (backbone ()) (random r)
