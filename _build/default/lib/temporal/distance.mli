(** Temporal distances of a network instance.

    The paper's Temporal Diameter (Definition 5) is the *expectation* of
    the instance quantity computed here — the maximum temporal distance
    over all ordered vertex pairs; the expectation itself is estimated by
    [Sim.Estimators] over sampled instances. *)

val distance : Tgraph.t -> int -> int -> int option
(** δ(u, v) for a single pair; [None] when no journey exists. *)

val eccentricity : Tgraph.t -> int -> int option
(** Max δ(s, v) over all [v]; [None] if some vertex is unreachable. *)

val instance_diameter : Tgraph.t -> int option
(** Max δ over all ordered pairs — one foremost pass per source, so
    O(n·M); [None] as soon as one pair is temporally disconnected. *)

val instance_diameter_sampled : Prng.Rng.t -> Tgraph.t -> sources:int -> int option
(** Same maximum restricted to [sources] distinct random source vertices
    (each still checked against *all* targets) — an unbiased lower bound
    that concentrates fast on symmetric instances such as the clique. *)

val all_pairs : Tgraph.t -> int array array
(** [all_pairs net] has δ(u, v) at [(u, v)], [max_int] when unreachable
    and [0] on the diagonal. *)

val average : Tgraph.t -> float
(** Mean δ over ordered reachable pairs [u <> v]; [nan] when none. *)
