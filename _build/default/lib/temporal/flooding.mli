(** The dissemination protocol of §3.5.

    Every vertex that holds the message forwards it on each of its arcs
    at the moment that arc becomes available:

    {v ∀u: if u has the message, when an arc out of u becomes available,
       send the message through that arc. v}

    Flooding is *foremost-optimal*: the time each vertex is informed
    equals its temporal distance from the source (property-tested against
    {!Foremost}).  The simulation additionally counts transmissions,
    which is what the phone-call comparison (§1.1) reports. *)

type result = {
  source : int;
  informed_time : int array;
      (** time each vertex first holds the message; [start_time - 1] at
          the source, [max_int] if never informed *)
  informed_count : int;  (** vertices ever informed, source included *)
  completion_time : int option;
      (** time by which *all* vertices are informed, if they all are *)
  transmissions : int;
      (** messages sent: available arcs out of already-informed vertices *)
}

val run : ?start_time:int -> Tgraph.t -> int -> result
(** [run net s] simulates the protocol from source [s], with the message
    present at [s] from time [start_time - 1] (default: before time 1).
    @raise Invalid_argument on a bad source or [start_time < 1]. *)

val broadcast_time : Tgraph.t -> int -> int option
(** Just the completion time. *)

val run_budgeted : ?start_time:int -> k:int -> Tgraph.t -> int -> result
(** Budgeted flooding: each informed vertex forwards on at most [k]
    available arcs — its earliest [k] opportunities — then goes silent.
    [k] large enough recovers {!run} exactly (property-tested); small
    [k] trades completion time for a transmission budget of at most
    [k·n] instead of §3.5's every-open-arc Θ(M).
    @raise Invalid_argument if [k < 0], plus {!run}'s conditions. *)
