(** Interval availability: edges available over whole time windows.

    The paper's related work (§1.2) contrasts its discrete labels with
    models where an edge is available for entire intervals [\[t1, t2\]]
    (Bui-Xuan et al. [6], Fleischer–Tardos [14]).  Over discrete time
    the two models coincide semantically — a window is the label set
    [{t1..t2}] — but *representationally* windows are exponentially more
    compact for dense availability.  This module provides the compact
    form: normalised window lists per edge, an earliest-arrival
    algorithm working directly on windows (label-free Dijkstra sweep,
    O((n + W) log n) instead of O(Σ window widths)), and lossless
    conversion to/from {!Tgraph} (property-tested equal distances). *)

type window = { from_time : int; until_time : int }
(** Inclusive bounds. *)

type schedule
(** A normalised window list: sorted, disjoint, non-adjacent. *)

val schedule_of_list : (int * int) list -> schedule
(** Normalises (sorts, merges overlapping/adjacent windows).
    @raise Invalid_argument on a window with [from < 1] or
    [until < from]. *)

val schedule_windows : schedule -> window list
val schedule_duration : schedule -> int
(** Total number of discrete moments covered. *)

val first_available_after : schedule -> int -> int option
(** Smallest covered time [> t] — the window analogue of
    {!Label.first_after}; O(log windows). *)

val schedule_of_labels : Label.t -> schedule
val labels_of_schedule : schedule -> Label.t

type t
(** A window-temporal network: graph + schedule per edge + lifetime. *)

val create : Sgraph.Graph.t -> lifetime:int -> schedule array -> t
(** @raise Invalid_argument on arity mismatch or windows beyond the
    lifetime. *)

val graph : t -> Sgraph.Graph.t
val lifetime : t -> int
val schedule : t -> int -> schedule

val to_tgraph : t -> Tgraph.t
(** Expand windows into explicit labels (can be large!). *)

val of_tgraph : Tgraph.t -> t
(** Compress label sets into windows (lossless). *)

val earliest_arrival : ?start_time:int -> t -> int -> int array
(** Foremost distances directly on the window representation: a
    label-ordered relaxation queue never materialising the labels.
    Entry [v] is the earliest arrival ([0] at the source, [max_int] if
    unreachable) — agrees with {!Foremost.run} on {!to_tgraph}. *)
