type arc =
  | Wait of { from_id : int; to_id : int }
  | Travel of { from_id : int; to_id : int; stream_index : int }

type t = {
  net : Tgraph.t;
  nodes : (int * int) array;  (* id -> (vertex, event time) *)
  ids : (int * int, int) Hashtbl.t;  (* (vertex, event time) -> id *)
  start : int array;  (* vertex -> id of its time-0 node *)
  events : int array array;  (* vertex -> sorted event times, head 0 *)
  arcs : arc array;
  out_adjacency : int array array;  (* node id -> arc indices *)
}

(* Largest event time of v that is strictly below [time]; exists because
   0 is always an event. *)
let previous_event events time =
  let lo = ref 0 and hi = ref (Array.length events - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi + 1) / 2 in
    if events.(mid) < time then lo := mid else hi := mid - 1
  done;
  events.(!lo)

let build net =
  let n = Tgraph.n net in
  (* Collect per-vertex arrival events. *)
  let event_sets = Array.make n [] in
  Tgraph.iter_time_edges net (fun ~src:_ ~dst ~label ~edge:_ ->
      event_sets.(dst) <- label :: event_sets.(dst));
  let events =
    Array.map
      (fun labels -> Array.of_list (List.sort_uniq compare (0 :: labels)))
      event_sets
  in
  let nodes = ref [] and count = ref 0 in
  let ids = Hashtbl.create (4 * n) in
  Array.iteri
    (fun v vertex_events ->
      Array.iter
        (fun time ->
          Hashtbl.add ids (v, time) !count;
          nodes := (v, time) :: !nodes;
          incr count)
        vertex_events)
    events;
  let nodes = Array.of_list (List.rev !nodes) in
  let start = Array.map (fun (_ : int array) -> 0) events in
  Array.iteri (fun v _ -> start.(v) <- Hashtbl.find ids (v, 0)) events;
  (* Arcs: waits along each vertex's event chain, travels per stream
     entry. *)
  let arcs = ref [] in
  Array.iteri
    (fun v vertex_events ->
      for i = 0 to Array.length vertex_events - 2 do
        arcs :=
          Wait
            {
              from_id = Hashtbl.find ids (v, vertex_events.(i));
              to_id = Hashtbl.find ids (v, vertex_events.(i + 1));
            }
          :: !arcs
      done)
    events;
  let stream_index = ref (-1) in
  Tgraph.iter_time_edges net (fun ~src ~dst ~label ~edge:_ ->
      incr stream_index;
      arcs :=
        Travel
          {
            from_id = Hashtbl.find ids (src, previous_event events.(src) label);
            to_id = Hashtbl.find ids (dst, label);
            stream_index = !stream_index;
          }
        :: !arcs);
  let arcs = Array.of_list (List.rev !arcs) in
  let out_count = Array.make (Array.length nodes) 0 in
  let arc_source = function
    | Wait { from_id; _ } | Travel { from_id; _ } -> from_id
  in
  Array.iter (fun arc -> let s = arc_source arc in out_count.(s) <- out_count.(s) + 1) arcs;
  let out_adjacency = Array.map (fun c -> Array.make c 0) out_count in
  let fill = Array.make (Array.length nodes) 0 in
  Array.iteri
    (fun i arc ->
      let s = arc_source arc in
      out_adjacency.(s).(fill.(s)) <- i;
      fill.(s) <- fill.(s) + 1)
    arcs;
  { net; nodes; ids; start; events; arcs; out_adjacency }

let network t = t.net
let node_count t = Array.length t.nodes
let node t id = t.nodes.(id)
let start_node t v = t.start.(v)
let arcs t = t.arcs
let arc_count t = Array.length t.arcs

let earliest_arrival t s =
  let n = Tgraph.n t.net in
  if s < 0 || s >= n then invalid_arg "Expanded.earliest_arrival: bad source";
  let visited = Array.make (node_count t) false in
  let queue = Queue.create () in
  visited.(t.start.(s)) <- true;
  Queue.add t.start.(s) queue;
  while not (Queue.is_empty queue) do
    let id = Queue.take queue in
    Array.iter
      (fun arc_index ->
        let to_id =
          match t.arcs.(arc_index) with
          | Wait { to_id; _ } | Travel { to_id; _ } -> to_id
        in
        if not visited.(to_id) then begin
          visited.(to_id) <- true;
          Queue.add to_id queue
        end)
      t.out_adjacency.(id)
  done;
  (* Only the source's time-0 node is ever visited (waits run forward
     and travel arcs land on labels >= 1), so the minimum visited event
     time per vertex is exactly its earliest arrival. *)
  let arrival = Array.make n max_int in
  Array.iteri
    (fun id (v, time) ->
      if visited.(id) && time < arrival.(v) then arrival.(v) <- time)
    t.nodes;
  arrival
