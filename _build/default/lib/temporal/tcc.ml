module Graph = Sgraph.Graph
module Components = Sgraph.Components

let reachability_graph net =
  let n = Tgraph.n net in
  let edges = ref [] in
  for u = 0 to n - 1 do
    let res = Foremost.run net u in
    for v = 0 to n - 1 do
      if v <> u && Foremost.distance res v <> None then
        edges := (u, v) :: !edges
    done
  done;
  Graph.create Directed ~n !edges

let scc net = Components.strongly_connected_components (reachability_graph net)

let scc_count net =
  let comp = scc net in
  Array.fold_left Stdlib.max (-1) comp + 1

let is_temporally_connected net =
  let n = Tgraph.n net in
  n <= 1 || Graph.m (reachability_graph net) = n * (n - 1)

let condensation net =
  let reach = reachability_graph net in
  let comp = Components.strongly_connected_components reach in
  let k = Array.fold_left Stdlib.max (-1) comp + 1 in
  let arcs = Hashtbl.create 16 in
  Graph.iter_edges reach (fun _ u v ->
      if comp.(u) <> comp.(v) then Hashtbl.replace arcs (comp.(u), comp.(v)) ());
  let edges = Hashtbl.fold (fun arc () acc -> arc :: acc) arcs [] in
  (Graph.create Directed ~n:(Stdlib.max k 0) edges, comp)

let mutual_graph net =
  let reach = reachability_graph net in
  let n = Graph.n reach in
  let edges = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      if Graph.mem_edge reach u v && Graph.mem_edge reach v u then
        edges := (u, v) :: !edges
    done
  done;
  Graph.create Undirected ~n !edges

let open_connectivity_count net = 2 * Graph.m (mutual_graph net)

let popcount mask =
  let rec count mask acc =
    if mask = 0 then acc else count (mask land (mask - 1)) (acc + 1)
  in
  count mask 0

let lowest_bit mask =
  let rec scan i = if mask land (1 lsl i) <> 0 then i else scan (i + 1) in
  scan 0

let largest_mutual_clique_exhaustive net =
  let n = Tgraph.n net in
  if n > 24 then
    invalid_arg "Tcc.largest_mutual_clique_exhaustive: network too large";
  if n = 0 then 0
  else begin
    let mutual = mutual_graph net in
    let neighbor_mask = Array.make n 0 in
    Graph.iter_edges mutual (fun _ u v ->
        neighbor_mask.(u) <- neighbor_mask.(u) lor (1 lsl v);
        neighbor_mask.(v) <- neighbor_mask.(v) lor (1 lsl u));
    (* Branch and bound: grow a clique over candidate vertices >= the
       last chosen one; prune when even taking all candidates loses. *)
    let best = ref 1 in
    let rec extend size candidates =
      if size + popcount candidates > !best then
        if candidates = 0 then best := Stdlib.max !best size
        else begin
          let rest = ref candidates in
          while !rest <> 0 do
            let v = lowest_bit !rest in
            rest := !rest land lnot (1 lsl v);
            (* Either take v (restrict to its neighbours) ... *)
            extend (size + 1) (!rest land neighbor_mask.(v));
            (* ... or skip it: handled by the loop continuing with rest. *)
            if size + popcount !rest <= !best then rest := 0
          done;
          best := Stdlib.max !best size
        end
    in
    extend 0 ((1 lsl n) - 1);
    !best
  end
