(** Lifetime effects (paper §3.6, Theorem 5).

    With one uniform label per edge on [{1..a}], the prefix of the
    network up to time [k] is an Erdős–Rényi graph [G(n, k/a)]; since
    [G(n,p)] is w.h.p. disconnected below [p = ln n / n], the temporal
    diameter must exceed [(a/n)·ln n] asymptotically when [a >> n].
    These helpers expose that coupling. *)

val prefix_graph : Tgraph.t -> k:int -> Sgraph.Graph.t
(** The static graph formed by the edges having at least one label
    [<= k] — the "edge-induced subgraph of arcs with labels up to k" in
    Theorem 5's proof. *)

val prefix_connectivity_time : Tgraph.t -> int option
(** Smallest [k] such that {!prefix_graph} at [k] is connected (ignoring
    direction); [None] if even the full underlying graph is not.  A lower
    bound witness: no temporal network can have finished joining all
    pairs before its prefix is connected. *)

val expected_prefix_edge_probability : a:int -> k:int -> float
(** [min 1 (k/a)]: the [G(n,p)] coupling parameter for UNI-CASE. *)

val lower_bound : n:int -> a:int -> float
(** Theorem 5's bound [(a/n)·ln n] (meaningful for [a >= n]). *)
