(** Disjoint journeys and temporal separators — the connectivity side of
    the Kempe–Kleinberg–Kumar programme [19] the paper builds on.

    The maximum number of pairwise *time-edge-disjoint* journeys between
    two vertices is polynomial: a unit-capacity max-flow on the
    time-expanded graph ({!Expanded} + [Flow.Maxflow]).  The
    *vertex*-disjoint variant is where temporal graphs famously deviate
    from static ones: Menger's theorem fails — the minimum number of
    vertices whose removal disconnects [s] from [t] in time can strictly
    exceed the maximum number of internally vertex-disjoint journeys
    ([19], §2).  Exhaustive reference implementations of both vertex
    quantities are provided for small networks so the gap can be
    exhibited and tested. *)

val max_edge_disjoint : Tgraph.t -> s:int -> t:int -> int
(** Maximum number of journeys from [s] to [t], no two sharing a time
    edge (the same edge at two different labels counts as two time
    edges).  Exact, via max-flow; polynomial.
    @raise Invalid_argument if [s = t] or out of range. *)

val max_vertex_disjoint_exhaustive : Tgraph.t -> s:int -> t:int -> int
(** Maximum number of journeys pairwise sharing no internal vertex.
    Exhaustive (exponential): intended for networks of ≲ 10 vertices,
    as used in tests and demos.
    @raise Invalid_argument if [s = t] or out of range. *)

val min_vertex_separator_exhaustive : Tgraph.t -> s:int -> t:int -> int
(** Minimum size of a vertex set [S ⊆ V \ {s,t}] whose removal leaves no
    [(s,t)]-journey.  Exhaustive over subsets in increasing size.
    Returns [max_int] when even removing everything cannot help (i.e.
    the direct edge [s→t] has a label).
    @raise Invalid_argument if [s = t] or out of range. *)

val menger_gap_example : unit -> Tgraph.t * int * int
(** A fixed small temporal network [(net, s, t)] on which Menger fails:
    [max_vertex_disjoint_exhaustive = 1] but
    [min_vertex_separator_exhaustive = 2] — the phenomenon of [19],
    verified by the test suite via the exhaustive procedures. *)
