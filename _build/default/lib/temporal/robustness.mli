(** Robustness of temporal reachability under vertex loss.

    The hostile-network story in reverse: instead of asking how fast
    information survives the schedule, ask how much reachability
    survives losing vertices — jamming attacks on the most central
    relays versus random failures.  Each step removes one vertex and
    re-measures the temporal connectivity of the residue. *)

type step = {
  removed : int;  (** original id of the vertex removed at this step *)
  survivors : int;  (** vertices remaining after the removal *)
  reachable_pairs : int;  (** ordered pairs still joined by journeys *)
  reachability : float;
      (** [reachable_pairs / (survivors·(survivors-1))]; [1.] when fewer
          than two survivors *)
  diameter : int option;  (** residual temporal diameter, if defined *)
}

type target = [ `Degree | `Closeness | `Betweenness ]

val target_name : target -> string

val targeted_attack : Tgraph.t -> by:target -> steps:int -> step list
(** Greedy attack: at each step, recompute the chosen centrality on the
    residual network and delete the top vertex.  Stops early when two
    vertices remain.
    @raise Invalid_argument if [steps < 0]. *)

val random_failures : Prng.Rng.t -> Tgraph.t -> steps:int -> step list
(** Same bookkeeping, uniformly random victims. *)
