(** Incremental construction of temporal networks.

    [Tgraph.create] wants the whole structure up front; the builder
    accumulates edges and labels in any order (merging labels when an
    edge is mentioned twice) and freezes into an immutable network. *)

type t

val create : Sgraph.Graph.kind -> n:int -> t
(** @raise Invalid_argument if [n < 0]. *)

val add_edge : t -> int -> int -> int list -> unit
(** [add_edge b u v labels] declares the edge (if new) and adds the
    labels to its set; an undirected builder identifies [(u,v)] and
    [(v,u)].
    @raise Invalid_argument on self-loops, bad endpoints, or
    non-positive labels. *)

val add_label : t -> int -> int -> int -> unit
(** [add_label b u v l] is [add_edge b u v [l]]. *)

val edge_count : t -> int
val label_count : t -> int

val build : ?lifetime:int -> t -> Tgraph.t
(** Freeze.  The lifetime defaults to the largest label used (at least
    1); the builder remains usable afterwards.
    @raise Invalid_argument if an explicit lifetime is below some
    label. *)
