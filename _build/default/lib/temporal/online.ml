type t = {
  n : int;
  source : int;
  mutable now : int;
  arrival : int array;
}

let create ?(start_time = 1) ~n source =
  if start_time < 1 then invalid_arg "Online.create: start_time must be >= 1";
  if source < 0 || source >= n then
    invalid_arg "Online.create: source out of range";
  let arrival = Array.make n max_int in
  arrival.(source) <- start_time - 1;
  { n; source; now = 0; arrival }

let observe t ~src ~dst ~label =
  if src < 0 || src >= t.n || dst < 0 || dst >= t.n then
    invalid_arg "Online.observe: endpoint out of range";
  if label < t.now then
    invalid_arg "Online.observe: labels must arrive in non-decreasing order";
  t.now <- label;
  if t.arrival.(src) < label && label < t.arrival.(dst) then
    t.arrival.(dst) <- label

let now t = t.now

let arrival t v =
  if v = t.source then Some 0
  else if t.arrival.(v) = max_int then None
  else Some t.arrival.(v)

let reachable_count t =
  Array.fold_left (fun acc a -> if a < max_int then acc + 1 else acc) 0 t.arrival

let informed t v = t.arrival.(v) < max_int
let arrivals t = Array.copy t.arrival
