(** E9 — The journey taxonomy on sparse random temporal networks.

    An extension beyond the paper's own experiments: the four journey
    optimality notions of Bui-Xuan, Ferreira & Jarry [6] (cited in the
    paper's related work for the continuous case), measured in the
    discrete random-availability model.  On sparse Erdős–Rényi
    underlying graphs with a few uniform labels per edge, the experiment
    contrasts per instance: earliest arrival (foremost), minimum transit
    time (fastest), minimum hop count (shortest) against the static
    diameter, and the latest departure that still reaches a target
    (reverse foremost). *)

val run : quick:bool -> seed:int -> Outcome.t
