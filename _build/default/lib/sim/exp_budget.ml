module Table = Stats.Table
module Summary = Stats.Summary
module Rng = Prng.Rng
open Temporal

let run ~quick ~seed =
  let rng = Rng.create seed in
  let n = if quick then 64 else 256 in
  let trials = if quick then 10 else 25 in
  let g = Sgraph.Gen.clique Directed n in
  let budgets = [ 1; 2; 4; 8; 16; max_int ] in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "E21: budgeted flooding on the normalized U-RTN clique (n = %d, %d \
            trials)"
           n trials)
      ~columns:
        [ "k per vertex"; "complete"; "mean informed"; "completion time";
          "messages"; "msgs/n" ]
  in
  List.iter
    (fun k ->
      let informed = Summary.create () in
      let completion = Summary.create () in
      let messages = Summary.create () in
      let complete = ref 0 in
      Runner.foreach rng ~trials (fun _ trial_rng ->
          let net = Assignment.normalized_uniform trial_rng g in
          let source = Rng.int trial_rng n in
          let result = Flooding.run_budgeted ~k net source in
          Summary.add informed
            (float_of_int result.informed_count /. float_of_int n);
          Summary.add_int messages result.transmissions;
          match result.completion_time with
          | Some t ->
            incr complete;
            Summary.add_int completion t
          | None -> ());
      Table.add_row table
        [
          (if k = max_int then Str "inf (sec. 3.5)" else Int k);
          Pct (float_of_int !complete /. float_of_int trials);
          Pct (Summary.mean informed);
          (if Summary.count completion = 0 then Str "-"
           else Float (Summary.mean completion, 1));
          Float (Summary.mean messages, 0);
          Float (Summary.mean messages /. float_of_int n, 1);
        ])
    budgets;
  let notes =
    [
      "k = inf is exactly the section-3.5 protocol (Theta(n^2) messages, \
       E7); the budget column shows how little of that is load-bearing: a \
       handful of earliest forwards per vertex already informs nearly \
       everyone, at Theta(k n) messages — the availability-model analogue \
       of Karp et al.'s O(n log log n) message frugality [17]";
      "k = 1 fails structurally: each vertex's single earliest arc rarely \
       points at the uninformed frontier — redundancy per vertex, not \
       total volume, is what completes the broadcast";
    ]
  in
  Outcome.make ~notes [ table ]
