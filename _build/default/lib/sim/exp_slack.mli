(** E20 — Departure slack: how long can a sender afford to wait?

    The reverse-foremost view of the hostile clique: for each ordered
    pair, the latest departure that still reaches the target within the
    lifetime.  By time-reversal symmetry (the engine of the paper's
    Theorem 2), the slack [a - latest departure] is distributed like the
    foremost arrival, so its mean should track `gamma·ln n` — measured
    here directly, together with the fraction of pairs that can still
    launch in the second half of the lifetime. *)

val run : quick:bool -> seed:int -> Outcome.t
