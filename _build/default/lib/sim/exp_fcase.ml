module Table = Stats.Table
module Summary = Stats.Summary
module Rng = Prng.Rng
module Dist = Prng.Dist
open Temporal

(* Correlated-label models at (roughly) matched label volume: does the
   *pattern* of availability matter beyond the marginal distribution? *)
let correlated_table ~quick rng ~n ~trials g =
  let a = n in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "E8b: correlated availability patterns on the clique (n = a = %d, \
            %d trials)"
           n trials)
      ~columns:
        [ "pattern"; "mean TD"; "sd"; "TD/ln n"; "disconn"; "labels/edge" ]
  in
  ignore quick;
  let models =
    [
      ("uniform r=8", fun rng -> Assignment.uniform_multi rng g ~a ~r:8);
      ("periodic p=16", fun rng -> Assignment.periodic rng g ~a ~period:16);
      ( "bursty b=4 q=1/60",
        fun rng -> Assignment.bursty rng g ~a ~burst:4 ~rate:(1. /. 60.) );
      ( "bursty b=8 q=1/120",
        fun rng -> Assignment.bursty rng g ~a ~burst:8 ~rate:(1. /. 120.) );
    ]
  in
  List.iter
    (fun (name, model) ->
      let summary = Summary.create () in
      let label_count = Summary.create () in
      let disconnected = ref 0 in
      Runner.foreach rng ~trials (fun _ trial_rng ->
          let net = model trial_rng in
          Summary.add label_count
            (float_of_int (Tgraph.label_count net)
            /. float_of_int (Sgraph.Graph.m g));
          match Distance.instance_diameter net with
          | Some d -> Summary.add_int summary d
          | None -> incr disconnected);
      let mean = Summary.mean summary in
      Table.add_row table
        [
          Str name;
          (if Summary.count summary = 0 then Str "-" else Float (mean, 1));
          Float (Summary.stddev summary, 1);
          (if Summary.count summary = 0 then Str "-"
           else Float (mean /. log (float_of_int n), 2));
          Int !disconnected;
          Float (Summary.mean label_count, 2);
        ])
    models;
  table

let run ~quick ~seed =
  let rng = Rng.create seed in
  let n = if quick then 48 else 128 in
  let trials = if quick then 8 else 20 in
  let g = Sgraph.Gen.clique Directed n in
  let a = n in
  let dists =
    [
      Dist.Uniform;
      Dist.Geometric (4. /. float_of_int a);
      Dist.Geometric (16. /. float_of_int a);
      Dist.Zipf 1.0;
      Dist.Point (a / 2);
    ]
  in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "E8: F-CASE clique, label distribution vs temporal diameter (n = a \
            = %d, %d trials)"
           n trials)
      ~columns:
        [ "distribution"; "r"; "mean TD"; "sd"; "TD/ln n"; "disconn";
          "labels/edge" ]
  in
  List.iter
    (fun dist ->
      List.iter
        (fun r ->
          let summary = Summary.create () in
          let label_count = Summary.create () in
          let disconnected = ref 0 in
          Runner.foreach rng ~trials (fun _ trial_rng ->
              let net = Assignment.of_dist trial_rng dist g ~a ~r in
              Summary.add label_count
                (float_of_int (Tgraph.label_count net)
                /. float_of_int (Sgraph.Graph.m g));
              match Distance.instance_diameter net with
              | Some d -> Summary.add_int summary d
              | None -> incr disconnected);
          let mean = Summary.mean summary in
          Table.add_row table
            [
              Str (Dist.to_string dist);
              Int r;
              Float (mean, 1);
              Float (Summary.stddev summary, 1);
              Float (mean /. log (float_of_int n), 2);
              Int !disconnected;
              Float (Summary.mean label_count, 2);
            ])
        [ 1; 3 ])
    dists;
  let notes =
    [
      "early-mass distributions (geometric, zipf) shrink the temporal \
       diameter: more arcs are available in any early window, so the \
       expansion completes sooner; uniform is the paper's baseline";
      "point(a/2) leaves only one global moment: every pair must use its \
       direct arc, so TD = a/2 exactly and variance 0 — the degenerate \
       sanity row";
      "labels/edge < r where a distribution repeats values (label sets \
       collapse duplicates), most visibly for zipf";
      "E8b holds the label volume roughly fixed (~8/edge) and varies only \
       the correlation pattern: random-phase periodic schedules match \
       i.i.d. uniform (phases decorrelate across edges), while bursts \
       waste labels — consecutive availability on the same edge rarely \
       extends a journey — and the longer the burst, the worse (the E16 \
       mobility effect isolated on the clique)";
    ]
  in
  Outcome.make ~notes [ table; correlated_table ~quick rng ~n ~trials g ]
