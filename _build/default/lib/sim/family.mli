(** Graph-family specifications: the named workloads shared by the CLI
    and the experiment notes.

    A family plus a target vertex count yields a graph; some families
    approximate the count (the hypercube rounds to a power of two, the
    grid to a near-square rectangle). *)

type t =
  | Clique_directed
  | Clique_undirected
  | Star
  | Path
  | Cycle
  | Grid
  | Hypercube
  | Binary_tree
  | Wheel
  | Random_tree
  | Gnp of float  (** coefficient [c] in [p = c·ln n / n] *)

val names : string list
(** The accepted spellings, for help text. *)

val of_string : string -> (t, [ `Msg of string ]) result
(** Case-insensitive; [gnp:<c>] selects the coefficient. *)

val to_string : t -> string
(** Inverse of {!of_string} (canonical spelling). *)

val build : t -> Prng.Rng.t -> n:int -> Sgraph.Graph.t
(** Materialise the family at (roughly) [n] vertices. *)
