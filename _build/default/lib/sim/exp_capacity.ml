module Table = Stats.Table
module Summary = Stats.Summary
module Rng = Prng.Rng
open Temporal

let capacity_table ~quick rng =
  let sizes = if quick then [ 16; 32 ] else [ 16; 32; 64; 128 ] in
  let trials = if quick then 5 else 12 in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "E10a: max time-edge-disjoint journeys on the U-RTN directed \
            clique (random pair, %d trials)"
           trials)
      ~columns:
        [ "n"; "r"; "mean disjoint"; "sd"; "bound r(n-1)"; "fraction" ]
  in
  List.iter
    (fun n ->
      let g = Sgraph.Gen.clique Directed n in
      List.iter
        (fun r ->
          let summary = Summary.create () in
          Runner.foreach rng ~trials (fun _ trial_rng ->
              let net = Assignment.uniform_multi trial_rng g ~a:n ~r in
              let s = Rng.int trial_rng n in
              let t = (s + 1 + Rng.int trial_rng (n - 1)) mod n in
              Summary.add_int summary (Disjoint.max_edge_disjoint net ~s ~t));
          let mean = Summary.mean summary in
          (* At most r(n-1) time edges leave the source (up to label
             collisions), so that is the hard capacity ceiling. *)
          let bound = r * (n - 1) in
          Table.add_row table
            [
              Int n;
              Int r;
              Float (mean, 1);
              Float (Summary.stddev summary, 1);
              Int bound;
              Pct (mean /. float_of_int bound);
            ])
        [ 1; 2; 4 ])
    sizes;
  table

let menger_table () =
  let net, s, t = Disjoint.menger_gap_example () in
  let table =
    Table.create
      ~title:"E10b: Menger's theorem fails temporally (fixed 6-vertex instance)"
      ~columns:[ "quantity"; "value" ]
  in
  Table.add_row table
    [ Str "max vertex-disjoint journeys";
      Int (Disjoint.max_vertex_disjoint_exhaustive net ~s ~t) ];
  Table.add_row table
    [ Str "min temporal vertex separator";
      Int (Disjoint.min_vertex_separator_exhaustive net ~s ~t) ];
  Table.add_row table
    [ Str "max time-edge-disjoint journeys";
      Int (Disjoint.max_edge_disjoint net ~s ~t) ];
  table

let run ~quick ~seed =
  let rng = Rng.create seed in
  let notes =
    [
      "E10a: the routing capacity between a random pair is a substantial \
       constant fraction of the hard ceiling r(n-1) — random availability \
       leaves most of the clique's parallel routing capacity usable";
      "E10b: in static graphs Menger gives max-disjoint = min-separator; \
       temporally the separator can be strictly larger (here 2 vs 1), the \
       phenomenon identified by Kempe, Kleinberg & Kumar [19]";
    ]
  in
  Outcome.make ~notes [ capacity_table ~quick rng; menger_table () ]
