(** E6 — The Erdős–Rényi connectivity threshold.

    Substrate validation for Theorem 5 and the Ω(log n) remark: both
    arguments reduce the temporal question to "G(n, p) is w.h.p.
    disconnected below p = ln n / n".  The experiment sweeps
    [p = c·ln n / n] and shows the empirical connectivity probability
    stepping from ~0 to ~1 around [c = 1]. *)

val run : quick:bool -> seed:int -> Outcome.t
