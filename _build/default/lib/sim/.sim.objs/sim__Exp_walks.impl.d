lib/sim/exp_walks.ml: Assignment List Outcome Printf Prng Runner Sgraph Stats Temporal Walker
