lib/sim/runner.mli: Prng Stats
