lib/sim/exp_redundancy.ml: Assignment List Opt Outcome Prng Reachability Sgraph Spanner Stats Stdlib Temporal Tgraph
