lib/sim/exp_design.mli: Outcome
