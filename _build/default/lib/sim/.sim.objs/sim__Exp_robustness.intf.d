lib/sim/exp_robustness.mli: Outcome
