lib/sim/family.ml: Float Printf Sgraph Stdlib String
