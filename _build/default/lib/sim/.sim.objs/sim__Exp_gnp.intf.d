lib/sim/exp_gnp.mli: Outcome
