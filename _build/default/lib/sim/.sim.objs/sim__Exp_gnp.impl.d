lib/sim/exp_gnp.ml: Estimators Float List Outcome Printf Prng Stats
