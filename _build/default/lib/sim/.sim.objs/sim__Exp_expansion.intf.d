lib/sim/exp_expansion.mli: Outcome
