lib/sim/exp_restless.ml: Assignment Float List Outcome Printf Prng Restless Runner Sgraph Stats Temporal
