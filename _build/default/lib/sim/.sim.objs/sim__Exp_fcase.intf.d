lib/sim/exp_fcase.mli: Outcome
