lib/sim/exp_perf.ml: Array Assignment Distance Foremost List Outcome Prng Reachability Sgraph Stats Stdlib Sys Temporal Tgraph
