lib/sim/exp_fcase.ml: Assignment Distance List Outcome Printf Prng Runner Sgraph Stats Temporal Tgraph
