lib/sim/exp_clique_diameter.mli: Outcome
