lib/sim/exp_lifetime.mli: Outcome
