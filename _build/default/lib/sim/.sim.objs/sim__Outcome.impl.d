lib/sim/outcome.ml: Buffer List Stats
