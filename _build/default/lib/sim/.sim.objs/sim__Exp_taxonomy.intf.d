lib/sim/exp_taxonomy.mli: Outcome
