lib/sim/family.mli: Prng Sgraph
