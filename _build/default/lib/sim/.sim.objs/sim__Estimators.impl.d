lib/sim/estimators.ml: Array Assignment Distance Expansion Flooding Foremost List Option Prng Runner Sgraph Stats Stdlib Temporal
