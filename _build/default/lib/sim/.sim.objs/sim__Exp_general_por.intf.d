lib/sim/exp_general_por.mli: Outcome
