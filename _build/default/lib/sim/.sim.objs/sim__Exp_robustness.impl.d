lib/sim/exp_robustness.ml: Array Assignment List Outcome Printf Prng Robustness Runner Sgraph Stats Temporal
