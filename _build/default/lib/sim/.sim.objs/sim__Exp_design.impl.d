lib/sim/exp_design.ml: Design Distance Float List Outcome Printf Prng Reachability Runner Sgraph Stats Temporal
