lib/sim/report.ml: Experiments Filename List Outcome Printf Stats String Sys
