lib/sim/exp_mobility.mli: Outcome
