lib/sim/exp_phonecall.mli: Outcome
