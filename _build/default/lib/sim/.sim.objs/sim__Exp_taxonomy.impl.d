lib/sim/exp_taxonomy.ml: Assignment Fastest Float Foremost List Outcome Printf Prng Reachability Reverse_foremost Runner Sgraph Shortest Stats Temporal
