lib/sim/exp_slack.mli: Outcome
