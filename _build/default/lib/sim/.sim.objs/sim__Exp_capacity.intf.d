lib/sim/exp_capacity.mli: Outcome
