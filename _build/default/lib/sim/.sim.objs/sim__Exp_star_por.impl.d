lib/sim/exp_star_por.ml: Assignment Float Format Label List Option Outcome Por Printf Prng Reachability Runner Sgraph Stats Temporal Tgraph
