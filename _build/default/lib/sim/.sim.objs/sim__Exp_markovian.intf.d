lib/sim/exp_markovian.mli: Outcome
