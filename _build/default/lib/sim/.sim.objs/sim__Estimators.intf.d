lib/sim/estimators.mli: Prng Sgraph Stats Temporal
