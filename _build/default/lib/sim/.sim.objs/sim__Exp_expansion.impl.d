lib/sim/exp_expansion.ml: Array Assignment Estimators Expansion Float List Outcome Printf Prng Sgraph Stats Temporal
