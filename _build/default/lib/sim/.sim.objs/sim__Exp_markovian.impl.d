lib/sim/exp_markovian.ml: Evolving Float List Outcome Printf Prng Runner Stats
