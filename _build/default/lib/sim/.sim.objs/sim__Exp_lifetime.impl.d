lib/sim/exp_lifetime.ml: Assignment Distance Format Lifetime List Outcome Printf Prng Runner Sgraph Stats Temporal
