lib/sim/exp_jamming.mli: Outcome
