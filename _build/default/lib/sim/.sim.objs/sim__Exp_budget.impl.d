lib/sim/exp_budget.ml: Assignment Flooding List Outcome Printf Prng Runner Sgraph Stats Temporal
