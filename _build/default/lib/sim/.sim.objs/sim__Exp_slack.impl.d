lib/sim/exp_slack.ml: Assignment Format List Outcome Printf Prng Reverse_foremost Runner Sgraph Stats Temporal
