lib/sim/exp_redundancy.mli: Outcome
