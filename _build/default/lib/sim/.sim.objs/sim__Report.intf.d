lib/sim/report.mli: Experiments Outcome
