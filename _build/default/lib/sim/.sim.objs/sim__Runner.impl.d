lib/sim/runner.ml: List Prng Stats
