lib/sim/exp_phonecall.ml: Float List Option Outcome Phonecall Printf Prng Runner Sgraph Stats Temporal
