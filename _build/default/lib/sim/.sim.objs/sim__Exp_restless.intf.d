lib/sim/exp_restless.mli: Outcome
