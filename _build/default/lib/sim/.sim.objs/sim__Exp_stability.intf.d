lib/sim/exp_stability.mli: Outcome
