lib/sim/exp_capacity.ml: Assignment Disjoint List Outcome Printf Prng Runner Sgraph Stats Temporal
