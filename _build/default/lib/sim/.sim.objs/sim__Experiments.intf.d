lib/sim/experiments.mli: Outcome
