lib/sim/exp_clique_diameter.ml: Array Estimators Float Format List Outcome Printf Prng Runner Sgraph Stats Stdlib Temporal
