lib/sim/exp_perf.mli: Outcome
