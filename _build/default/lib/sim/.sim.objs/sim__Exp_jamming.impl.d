lib/sim/exp_jamming.ml: Adversary Design List Outcome Printf Prng Runner Sgraph Stats Stdlib Temporal
