lib/sim/exp_budget.mli: Outcome
