lib/sim/exp_star_por.mli: Outcome
