lib/sim/exp_stability.ml: Estimators List Outcome Por Printf Prng Sgraph Stats Temporal
