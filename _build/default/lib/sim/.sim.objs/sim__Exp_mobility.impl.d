lib/sim/exp_mobility.ml: Assignment Flooding Label List Mobility Outcome Printf Prng Reachability Runner Stats Temporal Tgraph
