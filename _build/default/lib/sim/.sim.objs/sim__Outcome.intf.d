lib/sim/outcome.mli: Stats
