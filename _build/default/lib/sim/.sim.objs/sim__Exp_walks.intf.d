lib/sim/exp_walks.mli: Outcome
