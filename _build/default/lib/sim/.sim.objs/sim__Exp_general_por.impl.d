lib/sim/exp_general_por.ml: List Opt Outcome Por Printf Prng Reachability Sgraph Stats Stdlib Temporal Tgraph
