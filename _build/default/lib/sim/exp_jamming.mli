(** E18 — Jamming the designs: adversarial availability removal.

    Closes the loop between the hostile-network story (§1) and the
    design question (§6): an adversary cancels a budget of (edge, time)
    availabilities; which §6 design — deterministic backbone, pure
    random labels, or the hybrid — keeps the most pairs reachable?
    Strategies range from blind (random, earliest-first) to informed
    (betweenness-focused). *)

val run : quick:bool -> seed:int -> Outcome.t
