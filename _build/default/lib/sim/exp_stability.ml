module Table = Stats.Table
module Summary = Stats.Summary
module Rng = Prng.Rng
open Temporal

(* One headline estimate per family of claims, cheap enough to repeat. *)
let estimates ~quick seed =
  let rng = Rng.create seed in
  let n = if quick then 32 else 64 in
  let trials = if quick then 10 else 30 in
  let td =
    Estimators.clique_temporal_diameter (Rng.split rng) ~n ~a:n ~trials
  in
  let star = Sgraph.Gen.star n in
  let reach =
    Por.success_probability (Rng.split rng) star ~a:n ~r:8 ~trials
  in
  let gnp_connect =
    Estimators.gnp_connectivity (Rng.split rng) ~n
      ~p:(1.2 *. log (float_of_int n) /. float_of_int n)
      ~trials:(4 * trials)
  in
  (Summary.mean td.summary, Summary.stderr_mean td.summary, reach, gnp_connect)

let run ~quick ~seed =
  let seeds = [ seed; seed + 1; 7; 424242; 19590117 ] in
  let table =
    Table.create
      ~title:"E22: headline estimates under five independent master seeds"
      ~columns:
        [ "seed"; "mean TD"; "se"; "P(Treach) star r=8"; "P(gnp connected)" ]
  in
  let tds = Summary.create () in
  let ses = Summary.create () in
  List.iter
    (fun s ->
      let td, se, reach, gnp = estimates ~quick s in
      Summary.add tds td;
      Summary.add ses se;
      Table.add_row table
        [ Int s; Float (td, 2); Float (se, 2); Pct reach; Pct gnp ])
    seeds;
  (* Determinism: the same seed must regenerate identical numbers. *)
  let a = estimates ~quick seed and b = estimates ~quick seed in
  let deterministic = a = b in
  let notes =
    [
      Printf.sprintf
        "bit-level determinism check (same seed re-run twice): %s"
        (if deterministic then "identical" else "MISMATCH — BUG");
      Printf.sprintf
        "cross-seed scatter of mean TD: sd %.2f vs typical per-seed standard \
         error %.2f — of the same order, i.e. seed choice contributes no \
         systematic effect beyond sampling noise"
        (Summary.stddev tds) (Summary.mean ses);
    ]
  in
  Outcome.make ~notes [ table ]
