(** E8 — F-CASE random temporal networks (§2, Note after Definition 4).

    The paper's prospective extension: labels drawn from non-uniform
    distributions [F] over [{1..a}].  The experiment measures how the
    clique's temporal diameter and reachability respond to the label
    distribution's shape — mass concentrated early (truncated geometric,
    Zipf) versus uniform versus degenerate (one common time) — at one and
    several labels per edge. *)

val run : quick:bool -> seed:int -> Outcome.t
