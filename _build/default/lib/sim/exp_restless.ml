module Table = Stats.Table
module Summary = Stats.Summary
module Rng = Prng.Rng
open Temporal

let run ~quick ~seed =
  let rng = Rng.create seed in
  let n = if quick then 32 else 64 in
  let trials = if quick then 10 else 25 in
  let deltas = [ 1; 2; 4; 8; n ] in
  let workloads =
    [
      ("clique r=1 (UNI-CASE)", `Clique, 1);
      ("clique r=3", `Clique, 3);
      ("gnp 3ln n/n r=3", `Gnp, 3);
    ]
  in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "E15: restless reachability, waiting bound delta (n = a = %d, %d \
            trials, random source)"
           n trials)
      ~columns:[ "workload"; "delta"; "reached"; "mean ecc"; "ecc/ln n" ]
  in
  List.iter
    (fun (name, kind, r) ->
      List.iter
        (fun delta ->
          let reached = Summary.create () in
          let ecc = Summary.create () in
          Runner.foreach rng ~trials (fun _ trial_rng ->
              let g =
                match kind with
                | `Clique -> Sgraph.Gen.clique Directed n
                | `Gnp ->
                  Sgraph.Gen.gnp trial_rng ~n
                    ~p:(Float.min 1. (3. *. log (float_of_int n) /. float_of_int n))
              in
              let net = Assignment.uniform_multi trial_rng g ~a:n ~r in
              let s = Rng.int trial_rng n in
              let result = Restless.run ~delta net s in
              Summary.add reached
                (float_of_int (Restless.reachable_count result)
                /. float_of_int n);
              let worst = ref 0 and complete = ref true in
              for v = 0 to n - 1 do
                if v <> s then
                  match Restless.distance result v with
                  | Some d -> if d > !worst then worst := d
                  | None -> complete := false
              done;
              if !complete then Summary.add_int ecc !worst);
          Table.add_row table
            [
              Str name;
              (if delta >= n then Str "inf" else Int delta);
              Pct (Summary.mean reached);
              (if Summary.count ecc = 0 then Str "-"
               else Float (Summary.mean ecc, 1));
              (if Summary.count ecc = 0 then Str "-"
               else Float (Summary.mean ecc /. log (float_of_int n), 2));
            ])
        deltas)
    workloads;
  let notes =
    [
      "delta = inf recovers the unrestricted journeys of the paper \
       (property-tested: the restless sweep then equals Foremost), so each \
       block's last row reproduces the usual single-source picture";
      "the clique stays 100% reachable at every delta — each pair owns a \
       direct arc — but impatience costs time: at delta = 1 (forward \
       immediately or drop) the single-label eccentricity triples, because \
       relaying chains break and late direct arcs must be used instead";
      "on the sparse G(n,p), where relaying is mandatory, small waiting \
       bounds destroy reachability itself; extra labels per edge buy it \
       back — availability density substitutes for patience";
      "restless *walk* reachability is polynomial (this sweep); the \
       simple-path variant is NP-hard (Casteigts et al.), provided only as \
       an exhaustive reference for small n";
    ]
  in
  Outcome.make ~notes [ table ]
