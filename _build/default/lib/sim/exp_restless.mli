(** E15 — Restless dissemination: bounded waiting on hostile relays.

    Extension along modern temporal-graph lines (restless temporal
    walks): if a message may sit at most [delta] steps on any
    intermediate vertex — lingering gets it detected — how much of the
    U-RTN clique stays reachable, and how much slower does
    dissemination get?  Sweeps the waiting bound from 1 to the full
    lifetime (which recovers the paper's unrestricted journeys). *)

val run : quick:bool -> seed:int -> Outcome.t
