(* Parsing of graph-family specifications shared by the CLI commands.

   A family is a name plus the target vertex count; some families can only
   approximate the count (hypercube rounds to a power of two, grid to a
   near-square rectangle). *)

module Graph = Sgraph.Graph
module Gen = Sgraph.Gen

type t =
  | Clique_directed
  | Clique_undirected
  | Star
  | Path
  | Cycle
  | Grid
  | Hypercube
  | Binary_tree
  | Wheel
  | Random_tree
  | Gnp of float  (** coefficient c in p = c * ln n / n *)

let names =
  [ "clique"; "uclique"; "star"; "path"; "cycle"; "grid"; "hypercube";
    "btree"; "wheel"; "rtree"; "gnp"; "gnp:<c>" ]

let of_string s =
  let s = String.lowercase_ascii (String.trim s) in
  match s with
  | "clique" -> Ok Clique_directed
  | "uclique" -> Ok Clique_undirected
  | "star" -> Ok Star
  | "path" -> Ok Path
  | "cycle" -> Ok Cycle
  | "grid" -> Ok Grid
  | "hypercube" | "cube" -> Ok Hypercube
  | "btree" | "tree" -> Ok Binary_tree
  | "wheel" -> Ok Wheel
  | "rtree" -> Ok Random_tree
  | "gnp" -> Ok (Gnp 2.0)
  | _ ->
    (match String.split_on_char ':' s with
    | [ "gnp"; c ] -> (
      match float_of_string_opt c with
      | Some c when c > 0. -> Ok (Gnp c)
      | _ -> Error (`Msg ("bad gnp coefficient: " ^ c)))
    | _ ->
      Error
        (`Msg
           (Printf.sprintf "unknown graph family %S (choose from: %s)" s
              (String.concat ", " names))))

let to_string = function
  | Clique_directed -> "clique"
  | Clique_undirected -> "uclique"
  | Star -> "star"
  | Path -> "path"
  | Cycle -> "cycle"
  | Grid -> "grid"
  | Hypercube -> "hypercube"
  | Binary_tree -> "btree"
  | Wheel -> "wheel"
  | Random_tree -> "rtree"
  | Gnp c -> Printf.sprintf "gnp:%g" c

let build family rng ~n =
  match family with
  | Clique_directed -> Gen.clique Directed n
  | Clique_undirected -> Gen.clique Undirected n
  | Star -> Gen.star n
  | Path -> Gen.path n
  | Cycle -> Gen.cycle (Stdlib.max 3 n)
  | Grid ->
    let rows = int_of_float (Float.sqrt (float_of_int n)) in
    let rows = Stdlib.max 1 rows in
    Gen.grid rows ((n + rows - 1) / rows)
  | Hypercube ->
    let d = Stdlib.max 1 (int_of_float (Float.round (Float.log2 (float_of_int n)))) in
    Gen.hypercube d
  | Binary_tree -> Gen.binary_tree n
  | Wheel -> Gen.wheel (Stdlib.max 4 n)
  | Random_tree -> Gen.random_tree rng n
  | Gnp c ->
    let p = Float.min 1. (c *. log (float_of_int n) /. float_of_int n) in
    Gen.gnp rng ~n ~p
