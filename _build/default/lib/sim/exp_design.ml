module Table = Stats.Table
module Summary = Stats.Summary
module Graph = Sgraph.Graph
module Rng = Prng.Rng
open Temporal

(* The hypercube makes the design trade-off visible: its BFS backbone
   needs the full horizon 2·diam, while its edge-richness lets random
   labels approach the static diameter — so the hybrid strictly beats
   the backbone on speed while keeping its guarantee. *)
let run ~quick ~seed =
  let rng = Rng.create seed in
  let dim = if quick then 5 else 6 in
  let trials = if quick then 8 else 20 in
  let g = Sgraph.Gen.hypercube dim in
  let diameter = dim in
  let a = 2 * diameter in
  let designs =
    [
      Design.Backbone_only;
      Design.Random_only 2;
      Design.Random_only 6;
      Design.Hybrid 2;
      Design.Hybrid 6;
    ]
  in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "E13: availability designs on the %d-cube (n = %d, a = 2*diam = \
            %d, %d trials)"
           dim (Graph.n g) a trials)
      ~columns:
        [ "design"; "labels"; "guaranteed"; "Treach rate"; "mean TD"; "sd";
          "TD vs backbone" ]
  in
  let backbone_td = ref Float.nan in
  List.iter
    (fun spec ->
      let td = Summary.create () in
      let reach = ref 0 in
      Runner.foreach rng ~trials (fun _ trial_rng ->
          let net = Design.realise trial_rng g ~a spec in
          if Reachability.treach net then incr reach;
          match Distance.instance_diameter net with
          | Some d -> Summary.add_int td d
          | None -> ());
      let mean = Summary.mean td in
      if spec = Design.Backbone_only then backbone_td := mean;
      Table.add_row table
        [
          Str (Design.spec_name spec);
          Int (Design.label_budget g spec);
          Str (if Design.guarantees_reachability spec then "yes" else "no");
          Pct (float_of_int !reach /. float_of_int trials);
          (if Summary.count td = 0 then Str "-" else Float (mean, 1));
          Float (Summary.stddev td, 1);
          (if Float.is_nan !backbone_td || Summary.count td = 0 then Str "-"
           else Float (mean /. !backbone_td, 2));
        ])
    designs;
  let notes =
    [
      "three regimes on one frontier: the backbone alone is certain but \
       pays the full 2*diam horizon; random-only at small r is neither \
       safe nor always connected; random-only at larger r is fast but \
       merely probabilistic.  The hybrid keeps the certificate and rides \
       the random shortcuts — certain AND faster than the backbone";
      "this is the paper's closing research direction (section 6): \
       'combining random availabilities and optimal local availabilities'";
    ]
  in
  Outcome.make ~notes [ table ]
