(** E4 — Price of Randomness on the star (Theorem 6, Figure 2).

    Two tables: (a) the measured minimal number [r] of uniform random
    labels per edge that makes the star [K_{1,n-1}] temporally reachable
    with probability [>= 1 - 1/n], against [ln n] — Theorem 6 proves
    [r(n) = Θ(log n)], hence [PoR = m·r/OPT = r/2 = Θ(log n)]; (b) the
    2-split-journey probability between a fixed leaf pair as a function
    of [r], against the closed form [(1 - 2^{-r})²] from the proof of
    part (a). *)

val run : quick:bool -> seed:int -> Outcome.t
