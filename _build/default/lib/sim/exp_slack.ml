module Table = Stats.Table
module Summary = Stats.Summary
module Rng = Prng.Rng
open Temporal

let run ~quick ~seed =
  let rng = Rng.create seed in
  let sizes = if quick then [ 16; 32; 64 ] else [ 16; 32; 64; 128; 256 ] in
  let trials = if quick then 6 else 15 in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "E20: latest viable departures on the normalized U-RTN clique (%d \
            trials, random target)"
           trials)
      ~columns:
        [ "n"; "mean latest dep"; "mean slack"; "slack/ln n";
          "late-half pairs"; "stranded" ]
  in
  let points = ref [] in
  List.iter
    (fun n ->
      let g = Sgraph.Gen.clique Directed n in
      let latest = Summary.create () in
      let slack = Summary.create () in
      let late_half = ref 0 and pairs = ref 0 and stranded = ref 0 in
      Runner.foreach rng ~trials (fun _ trial_rng ->
          let net = Assignment.normalized_uniform trial_rng g in
          let t = Rng.int trial_rng n in
          let rev = Reverse_foremost.run net t in
          for s = 0 to n - 1 do
            if s <> t then begin
              incr pairs;
              match Reverse_foremost.latest_departure rev s with
              | Some d ->
                Summary.add_int latest d;
                Summary.add_int slack (n - d);
                if d > n / 2 then incr late_half
              | None -> incr stranded
            end
          done);
      let mean_slack = Summary.mean slack in
      points := (float_of_int n, mean_slack) :: !points;
      Table.add_row table
        [
          Int n;
          Float (Summary.mean latest, 1);
          Float (mean_slack, 1);
          Float (mean_slack /. log (float_of_int n), 2);
          Pct (float_of_int !late_half /. float_of_int !pairs);
          Int !stranded;
        ])
    sizes;
  let fit = Stats.Regression.fit_log (List.rev !points) in
  let notes =
    [
      Format.asprintf
        "time-reversal symmetry (Ops.reverse_time, the engine of Theorem \
         2) says slack = a - latest departure is distributed like the \
         foremost arrival over a random pair — the MEAN temporal \
         distance, ~1.5 ln n on the clique, not E1's max-pair diameter: \
         fit slack = %a"
        Stats.Regression.pp_fit fit;
      "late-half pairs: fraction that can still launch after time a/2 — \
       approaching 1, because the needed window shrinks to gamma*ln n out \
       of a = n; 'stranded' pairs (no viable departure at all) must be 0 \
       on the clique, whose direct arc always works";
    ]
  in
  Outcome.make ~notes [ table ]
