module Table = Stats.Table
module Graph = Sgraph.Graph
module Gen = Sgraph.Gen
module Metrics = Sgraph.Metrics
module Rng = Prng.Rng
open Temporal

let families ~quick rng =
  let base =
    [
      ("star", Gen.star 64);
      ("wheel", Gen.wheel 64);
      ("hypercube d=6", Gen.hypercube 6);
      ("grid 7x7", Gen.grid 7 7);
      ("binary tree", Gen.binary_tree 63);
      ("random tree", Gen.random_tree rng 48);
      ("cycle", Gen.cycle 32);
      ("path", Gen.path 24);
      ("gnp 2ln n/n", Gen.gnp rng ~n:64 ~p:(2. *. log 64. /. 64.));
    ]
  in
  let keep =
    List.filter (fun (_, g) -> Sgraph.Components.is_connected g) base
  in
  if quick then
    List.filter
      (fun (name, _) ->
        List.mem name [ "star"; "hypercube d=6"; "cycle"; "binary tree" ])
      keep
  else keep

let min_r_table ~quick rng families =
  let trials = if quick then 10 else 30 in
  let target = if quick then 0.9 else 0.95 in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "E5a: minimal r per graph family (target %.2f, %d trials, lifetime \
            a = n)"
           target trials)
      ~columns:
        [ "graph"; "n"; "m"; "diam"; "min r"; "thm7 2d*ln n"; "coupon";
          "r/thm7"; "PoR low"; "PoR high" ]
  in
  List.iter
    (fun (name, g) ->
      let n = Graph.n g in
      match
        Por.report ~r_max:(32 * n) (Rng.split rng) ~name g ~a:n ~target ~trials
      with
      | None ->
        Table.add_row table
          [ Str name; Int n; Int (Graph.m g); Int (Metrics.diameter g);
            Str "-"; Str "-"; Str "-"; Str "-"; Str "-"; Str "-" ]
      | Some report ->
        Table.add_row table
          [
            Str name;
            Int report.n;
            Int report.m;
            Int (Metrics.diameter g);
            Int report.estimate.r;
            Float (report.thm7_bound, 1);
            Float (report.coupon_bound, 1);
            Float (float_of_int report.estimate.r /. report.thm7_bound, 2);
            Float (report.por_lower, 1);
            Float (report.por_upper, 1);
          ])
    families;
  table

let boxes_table families =
  let table =
    Table.create
      ~title:
        "E5b: Claim 1 deterministic box assignment (d(G) labels/edge, q = \
         d*ceil(n/d))"
      ~columns:
        [ "graph"; "n"; "diam d"; "labels/edge"; "total labels"; "Treach";
          "OPT lower n-1"; "OPT upper 2(n-1)" ]
  in
  List.iter
    (fun (name, g) ->
      let n = Graph.n g in
      let d = Stdlib.max 1 (Metrics.diameter g) in
      (* Any q >= d works; round n up to a multiple of d for clean boxes. *)
      let q = d * ((n + d - 1) / d) in
      let net = Opt.boxes g ~q in
      Table.add_row table
        [
          Str name;
          Int n;
          Int d;
          Int d;
          Int (Tgraph.label_count net);
          Str (if Reachability.treach net then "yes" else "NO");
          Int (Opt.lower_bound g);
          Int (Opt.upper_bound g);
        ])
    families;
  table

let run ~quick ~seed =
  let rng = Rng.create seed in
  let families = families ~quick rng in
  let table_a = min_r_table ~quick rng families in
  let table_b = boxes_table families in
  let notes =
    [
      "Theorem 7: measured min r must sit below 2*d(G)*ln n; families with \
       larger diameter need more labels, tracking the box count d(G)";
      "Claim 1 check: the deterministic box assignment must read 'yes' under \
       Treach for every family — this is a certainty, not a probability";
      "PoR low/high bracket m*r/OPT using OPT <= 2(n-1) (spanning-tree \
       certificate) and OPT >= n-1";
    ]
  in
  Outcome.make ~notes [ table_a; table_b ]
