(** E5 — Price of Randomness in general graphs (Theorems 7–8, Claim 1,
    Figure 3).

    Table (a): across graph families, the measured minimal [r] against
    Theorem 7's sufficient [2·d(G)·ln n] and the coupon-collector
    refinement — the measurement must sit below the bounds, and grow with
    the diameter as the box argument predicts.  Table (b): the
    deterministic Claim 1 box assignment ([d(G)] labels per edge, one per
    box) always satisfies [Treach], at total cost [d·m] compared against
    the randomised [r·m]. *)

val run : quick:bool -> seed:int -> Outcome.t
