module Table = Stats.Table
module Graph = Sgraph.Graph
module Gen = Sgraph.Gen
module Rng = Prng.Rng
open Temporal

(* Sample random assignments until one preserves reachability. *)
let rec working_random rng g ~a ~r =
  let net = Assignment.uniform_multi rng g ~a ~r in
  if Reachability.treach net then net else working_random rng g ~a ~r:(r + 1)

let run ~quick ~seed =
  let rng = Rng.create seed in
  let scale = if quick then 8 else 16 in
  let families =
    [
      ("star", Gen.star (2 * scale));
      ("cycle", Gen.cycle scale);
      ("grid", Gen.grid 3 (scale / 2));
      ("clique", Gen.clique Undirected scale);
      ("binary tree", Gen.binary_tree (2 * scale));
    ]
  in
  let table =
    Table.create
      ~title:"E11: greedy label pruning vs the OPT bracket (Spanner.prune)"
      ~columns:
        [ "graph"; "n"; "source"; "initial"; "kept"; "removed"; "OPT low n-1";
          "OPT high"; "kept/high" ]
  in
  List.iter
    (fun (name, g) ->
      let n = Graph.n g in
      let a = n in
      let opt_high =
        if Opt.is_clique g then
          Stdlib.min (Opt.clique_value g) (Opt.upper_bound g)
        else Opt.upper_bound g
      in
      let sources =
        [
          ("all times", Assignment.all_times g ~a);
          ( "random r",
            let r = 2 + int_of_float (2. *. log (float_of_int n)) in
            working_random (Rng.split rng) g ~a ~r );
        ]
      in
      List.iter
        (fun (source_name, net) ->
          let initial = Tgraph.label_count net in
          let result = Spanner.prune net in
          Table.add_row table
            [
              Str name;
              Int n;
              Str source_name;
              Int initial;
              Int result.kept;
              Pct (float_of_int result.removed /. float_of_int initial);
              Int (Opt.lower_bound g);
              Int opt_high;
              Float (float_of_int result.kept /. float_of_int opt_high, 2);
            ])
        sources)
    families;
  let notes =
    [
      "kept counts an inclusion-MINIMAL sublabeling (greedy, latest labels \
       dropped first), an upper bound on OPT within the given schedule; \
       OPT high is the best certificate: 2(n-1) via the spanning tree, or \
       m for small cliques";
      "inclusion-minimal is not minimum: on the all-times clique the \
       greedy collapses every edge to label 1 and then no single label is \
       removable (equal labels never chain), stalling at m = n(n-1)/2 — a \
       clean exhibit of why computing OPT itself is hard [21]";
      "over 90% of full availability is typically redundant: reachability \
       needs a thin temporal skeleton, which is why OPT in the paper sits \
       near n-1 while random assignments must over-provision by the PoR \
       factor";
    ]
  in
  Outcome.make ~notes [ table ]
