(** E19 — Performance scaling of the core algorithms.

    The systems table: wall-clock cost of instance construction (the
    one-off time-edge sort), a single foremost sweep, and the exact
    all-pairs temporal diameter, as the clique grows.  The sweep should
    scale linearly in the stream size M = n(n-1) — the design claim
    behind "one sort, many sweeps" — visible as a flat ns/time-edge
    column.  (Timings are medians of repeated runs; they are measured
    quantities and naturally vary run to run, unlike every other
    experiment in the suite.) *)

val run : quick:bool -> seed:int -> Outcome.t
