type t = {
  tables : Stats.Table.t list;
  notes : string list;
  plots : string list;
}

let make ?(notes = []) ?(plots = []) tables = { tables; notes; plots }

let render t =
  let buf = Buffer.create 4096 in
  List.iter
    (fun table ->
      Buffer.add_string buf (Stats.Table.to_ascii table);
      Buffer.add_char buf '\n')
    t.tables;
  List.iter
    (fun note ->
      Buffer.add_string buf ("note: " ^ note);
      Buffer.add_char buf '\n')
    t.notes;
  List.iter
    (fun plot ->
      Buffer.add_char buf '\n';
      Buffer.add_string buf plot)
    t.plots;
  Buffer.contents buf
