(** E2 — The Expansion Process (Algorithm 1, Figure 1).

    Three views: success rate and arrival time of Algorithm 1 on the
    normalized U-RTN clique as [n] grows; an ablation over the window
    constant [c1] (the analysis demands a large [c1] for its Chernoff
    slack — the experiment shows where success probability actually
    turns); and the per-layer sizes [|Γ_i(s)|], exhibiting the geometric
    growth of §3.2 (the content of Figure 1). *)

val run : quick:bool -> seed:int -> Outcome.t
