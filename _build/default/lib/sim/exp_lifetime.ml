module Table = Stats.Table
module Summary = Stats.Summary
module Rng = Prng.Rng
open Temporal

let run ~quick ~seed =
  let rng = Rng.create seed in
  let n = if quick then 48 else 96 in
  let ratios = if quick then [ 1; 2; 4 ] else [ 1; 2; 4; 8; 16 ] in
  let trials = if quick then 8 else 20 in
  let g = Sgraph.Gen.clique Directed n in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "E3: clique temporal diameter vs lifetime a (n = %d, %d trials)" n
           trials)
      ~columns:
        [ "a"; "a/n"; "mean TD"; "sd"; "bound (a/n)ln n"; "TD/bound";
          "prefix conn time" ]
  in
  let points = ref [] in
  List.iter
    (fun ratio ->
      let a = ratio * n in
      let summary = Summary.create () in
      let prefix_summary = Summary.create () in
      Runner.foreach rng ~trials (fun _ trial_rng ->
          let net = Assignment.uniform_single trial_rng g ~a in
          (match Distance.instance_diameter net with
          | Some d -> Summary.add_int summary d
          | None -> ());
          match Lifetime.prefix_connectivity_time net with
          | Some k -> Summary.add_int prefix_summary k
          | None -> ());
      let mean = Summary.mean summary in
      let bound = Lifetime.lower_bound ~n ~a in
      points := (float_of_int ratio, mean) :: !points;
      Table.add_row table
        [
          Int a;
          Int ratio;
          Float (mean, 1);
          Float (Summary.stddev summary, 1);
          Float (bound, 1);
          Float (mean /. bound, 2);
          Float (Summary.mean prefix_summary, 1);
        ])
    ratios;
  let fit = Stats.Regression.fit (List.rev !points) in
  let notes =
    [
      Format.asprintf
        "fit TD = alpha + beta*(a/n): %a — Theorem 5 predicts at least linear \
         growth in a/n (slope comparable to ln n = %.2f)"
        Stats.Regression.pp_fit fit
        (log (float_of_int n));
      "prefix conn time: the first k at which the arcs labelled <= k connect \
       the clique; no journey can have closed the last pair earlier, making \
       it a per-instance lower-bound witness for the G(n, k/a) argument";
    ]
  in
  let plot =
    Stats.Ascii_plot.render ~x_label:"a/n" ~y_label:"mean TD"
      ~title:"E3: temporal diameter vs lifetime ratio"
      (List.rev !points)
  in
  Outcome.make ~notes ~plots:[ plot ] [ table ]
