(** What one experiment produces: tables (the paper's "results"), free-
    form notes (fits, qualitative checks) and optional ASCII plots. *)

type t = {
  tables : Stats.Table.t list;
  notes : string list;
  plots : string list;
}

val make :
  ?notes:string list -> ?plots:string list -> Stats.Table.t list -> t

val render : t -> string
(** Tables, then notes, then plots, separated by blank lines. *)
