module Table = Stats.Table
module Summary = Stats.Summary
module Rng = Prng.Rng
open Temporal

let run ~quick ~seed =
  let rng = Rng.create seed in
  let n = if quick then 24 else 48 in
  let trials = if quick then 12 else 30 in
  let g = Sgraph.Gen.clique Directed n in
  let horizon = 4 * n in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "E17: one walker on the random temporal clique (n = %d, lifetime \
            = 4n = %d, %d trials)"
           n horizon trials)
      ~columns:
        [ "availability"; "mean coverage"; "cover rate"; "mean moves";
          "moves/lifetime" ]
  in
  let workloads =
    [
      ("r=1 per arc", `Uniform 1);
      ("r=2 per arc", `Uniform 2);
      ("r=4 per arc", `Uniform 4);
      ("r=8 per arc", `Uniform 8);
      ("all times (classical walk)", `All);
    ]
  in
  List.iter
    (fun (name, workload) ->
      let coverage = Summary.create () in
      let covered = ref 0 in
      let moves = Summary.create () in
      Runner.foreach rng ~trials (fun _ trial_rng ->
          let net =
            match workload with
            | `Uniform r -> Assignment.uniform_multi trial_rng g ~a:horizon ~r
            | `All -> Assignment.all_times g ~a:horizon
          in
          let source = Rng.int trial_rng n in
          let trajectory = Walker.walk trial_rng net ~source in
          Summary.add coverage
            (float_of_int trajectory.visited /. float_of_int n);
          if trajectory.cover_time <> None then incr covered;
          Summary.add_int moves trajectory.moves);
      Table.add_row table
        [
          Str name;
          Pct (Summary.mean coverage);
          Pct (float_of_int !covered /. float_of_int trials);
          Float (Summary.mean moves, 1);
          Pct (Summary.mean moves /. float_of_int horizon);
        ])
    workloads;
  let notes =
    [
      Printf.sprintf
        "the all-times row is the classical random walk on K_n: its cover \
         time concentrates around n*H_n = %.0f steps against a lifetime of \
         %d, so even the unconstrained walk only covers about half the \
         runs — that is the ceiling the availability-limited rows chase"
        (float_of_int n *. Stats.Bounds.harmonic n)
        horizon;
      "sparse availability throttles the walker twice: it moves rarely \
       (moves/lifetime ~ 1 - e^{-r/4} per step: an arc out of the current \
       vertex is up with that probability), and its moves are forced along \
       whatever happens to be open rather than chosen — navigability \
       degrades much faster than the flooding speed of E1/E7, which can \
       use every open arc at once";
    ]
  in
  Outcome.make ~notes [ table ]
