(** E21 — Budgeted flooding: how much of Θ(n²) is actually needed?

    §3.5's protocol forwards on *every* open arc — E7 measured its
    Θ(n²) transmissions against push's Θ(n log n).  Capping each vertex
    at its earliest [k] forwarding opportunities interpolates between
    the two: the experiment sweeps [k] on the U-RTN clique and reports
    completion probability, completion time, and messages, locating the
    budget at which random availability matches the phone-call model's
    frugality without its per-round randomness. *)

val run : quick:bool -> seed:int -> Outcome.t
