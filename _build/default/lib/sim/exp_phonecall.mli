(** E7 — Comparison with the Random Phone-Call model (§1.1).

    Push and push-pull rumor spreading on the clique (fresh randomness
    every round, the *stronger* model) against §3.5 flooding on the
    normalized U-RTN clique (randomness fixed once, by the input).  Both
    complete in Θ(log n) — the paper's point is that even the much weaker
    availability model stays logarithmic — but with different constants
    and transmission counts. *)

val run : quick:bool -> seed:int -> Outcome.t
