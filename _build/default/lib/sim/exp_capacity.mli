(** E10 — Temporal routing capacity and the Menger gap.

    Extension along the Kempe–Kleinberg–Kumar connectivity axis [19]
    that the paper departs from: on random temporal networks, how many
    *time-edge-disjoint* journeys can be routed between a random pair
    (exact, via max-flow on the time-expanded graph), as a function of
    the number of random labels per edge?  The second table verifies the
    famous temporal failure of Menger's theorem on a fixed 6-vertex
    instance: max vertex-disjoint journeys 1 vs. minimum separator 2. *)

val run : quick:bool -> seed:int -> Outcome.t
