(** E1 — Temporal diameter of the normalized U-RTN clique.

    Reproduces Theorems 3/4 and the matching Ω(log n) remark: the exact
    instance temporal diameter of directed cliques with one uniform label
    per arc on [{1..n}], swept over [n], compared against [ln n] and
    fitted to [alpha + gamma·ln n]. *)

val run : quick:bool -> seed:int -> Outcome.t
