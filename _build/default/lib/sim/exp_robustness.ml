module Table = Stats.Table
module Summary = Stats.Summary
module Rng = Prng.Rng
open Temporal

let run ~quick ~seed =
  let rng = Rng.create seed in
  let n = if quick then 24 else 48 in
  let trials = if quick then 4 else 10 in
  let steps = n / 4 in
  let strategies =
    [
      ("random", `Random);
      ("degree", `Target `Degree);
      ("closeness", `Target `Closeness);
      ("betweenness", `Target `Betweenness);
    ]
  in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "E14: reachability after removing %d of %d vertices \
            (Barabasi-Albert contacts, r = 3, %d trials)"
           steps n trials)
      ~columns:
        [ "strategy"; "reach @25%"; "reach @50%"; "reach @75%"; "reach @100%" ]
  in
  let checkpoints = [ steps / 4; steps / 2; 3 * steps / 4; steps ] in
  List.iter
    (fun (name, strategy) ->
      let at = Array.init 4 (fun _ -> Summary.create ()) in
      Runner.foreach rng ~trials (fun _ trial_rng ->
          let g = Sgraph.Gen.barabasi_albert trial_rng ~n ~m:2 in
          let net = Assignment.uniform_multi trial_rng g ~a:n ~r:3 in
          let trace =
            match strategy with
            | `Random -> Robustness.random_failures trial_rng net ~steps
            | `Target by -> Robustness.targeted_attack net ~by ~steps
          in
          List.iteri
            (fun i (step : Robustness.step) ->
              List.iteri
                (fun k checkpoint ->
                  if i + 1 = checkpoint then
                    Summary.add at.(k) step.reachability)
                checkpoints)
            trace);
      Table.add_row table
        [
          Str name;
          Pct (Summary.mean at.(0));
          Pct (Summary.mean at.(1));
          Pct (Summary.mean at.(2));
          Pct (Summary.mean at.(3));
        ])
    strategies;
  let notes =
    [
      "scale-free contact structure is resilient to random failures but \
       fragile to targeted ones: removing the few high-centrality relays \
       collapses journey-connectivity far faster than chance — the \
       classic Albert-Jeong-Barabasi asymmetry, here in temporal form";
      "temporal centralities (closeness/betweenness) should match or beat \
       plain degree as attack guides, because they price the *schedule*, \
       not just the wiring";
    ]
  in
  Outcome.make ~notes [ table ]
