(** E22 — Seed stability: are the suite's estimates reproducible facts?

    The meta-experiment behind every other table: re-estimate the
    headline quantities under several independent master seeds and
    check that (a) the same seed regenerates bit-identical results, and
    (b) different seeds scatter within the per-seed confidence
    intervals — i.e. the numbers reported throughout EXPERIMENTS.md are
    properties of the model, not of the randomness used to measure it. *)

val run : quick:bool -> seed:int -> Outcome.t
