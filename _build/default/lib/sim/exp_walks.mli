(** E17 — Random walks on random temporal networks (related work [2]).

    §1.2 cites Avin–Koucký–Lotker's cover times on evolving graphs.
    Here a single walker rides the availability schedule: it may move
    only along an arc available at the current moment.  The experiment
    measures how much of the network one walker covers within the
    lifetime as the availability density ([r] labels per edge) grows,
    against the all-times limit where the walk becomes a classical
    random walk (coupon-collector cover ~ n·H_n steps). *)

val run : quick:bool -> seed:int -> Outcome.t
