let header (exp : Experiments.t) =
  Printf.sprintf "=== %s: %s ===\n(reproduces: %s)\n" (String.uppercase_ascii exp.id)
    exp.title exp.paper_ref

let print_outcome exp outcome =
  print_string (header exp);
  print_newline ();
  print_string (Outcome.render outcome);
  print_newline ()

let run_and_print ~quick ~seed (exp : Experiments.t) =
  let outcome = exp.run ~quick ~seed in
  print_outcome exp outcome;
  outcome

let ensure_dir dir = if not (Sys.file_exists dir) then Sys.mkdir dir 0o755

let save_csv ~dir (exp : Experiments.t) (outcome : Outcome.t) =
  ensure_dir dir;
  List.mapi
    (fun k table ->
      let path = Filename.concat dir (Printf.sprintf "%s_%d.csv" exp.id k) in
      let oc = open_out path in
      output_string oc (Stats.Table.to_csv table);
      close_out oc;
      path)
    outcome.tables

let save_markdown ~dir (exp : Experiments.t) (outcome : Outcome.t) =
  ensure_dir dir;
  let path = Filename.concat dir (exp.id ^ ".md") in
  let oc = open_out path in
  Printf.fprintf oc "# %s: %s\n\nReproduces: %s\n\n"
    (String.uppercase_ascii exp.id) exp.title exp.paper_ref;
  List.iter
    (fun table -> output_string oc (Stats.Table.to_markdown table ^ "\n"))
    outcome.tables;
  List.iter (fun note -> Printf.fprintf oc "- %s\n" note) outcome.notes;
  close_out oc;
  path
