let foreach rng ~trials f =
  for i = 0 to trials - 1 do
    f i (Prng.Rng.split rng)
  done

let collect rng ~trials f =
  List.init trials (fun _ -> f (Prng.Rng.split rng))

let summarize rng ~trials f =
  let summary = Stats.Summary.create () in
  foreach rng ~trials (fun _ trial_rng -> Stats.Summary.add summary (f trial_rng));
  summary

let count rng ~trials f =
  let hits = ref 0 in
  foreach rng ~trials (fun _ trial_rng -> if f trial_rng then incr hits);
  !hits
