module Table = Stats.Table
module Summary = Stats.Summary
module Rng = Prng.Rng
module Em = Evolving.Edge_markovian

let run ~quick ~seed =
  let rng = Rng.create seed in
  let n = if quick then 48 else 128 in
  let trials = if quick then 6 else 20 in
  let ln_n = log (float_of_int n) in
  let regimes =
    [
      ("dense, volatile", 0.5, 0.5);
      ("dense, sticky", 0.05, 0.05);
      ("sparse ~2ln n/n, volatile", 2. *. ln_n /. float_of_int n, 0.9);
      ("sparse ~2ln n/n, sticky", 0.2 *. ln_n /. float_of_int n, 0.09);
      ("very sparse ~2/n, volatile", 2. /. float_of_int n, 0.9);
    ]
  in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "E12: flooding time on edge-Markovian evolving graphs (n = %d, %d \
            trials)"
           n trials)
      ~columns:
        [ "regime"; "p_up"; "p_down"; "stationary"; "mean rounds"; "sd";
          "rounds/ln n"; "incomplete" ]
  in
  List.iter
    (fun (name, p_up, p_down) ->
      let summary = Summary.create () in
      let incomplete = ref 0 in
      Runner.foreach rng ~trials (fun _ trial_rng ->
          let chain = Em.create trial_rng ~n ~p_up ~p_down in
          let result = Em.flood chain ~source:0 in
          if result.completed then Summary.add_int summary result.rounds
          else incr incomplete);
      Table.add_row table
        [
          Str name;
          Float (p_up, 4);
          Float (p_down, 4);
          Float (Em.stationary_density (Em.create (Rng.split rng) ~n ~p_up ~p_down), 4);
          Float (Summary.mean summary, 1);
          Float (Summary.stddev summary, 1);
          Float (Summary.mean summary /. ln_n, 2);
          Int !incomplete;
        ])
    regimes;
  let notes =
    [
      "dense regimes flood in O(log n) rounds regardless of persistence \
       (each round is a supercritical random graph); sparse regimes lean \
       on re-randomisation — volatility reduces the flooding time because \
       fresh edges appear next to the informed set every round [8]";
      Printf.sprintf
        "baselines at this n: U-RTN clique flooding ~ %.1f (E7), push ~ %.1f \
         rounds (E7); the evolving model interpolates between them as \
         density and volatility vary"
        (2.7 *. ln_n)
        (1.8 *. Float.log2 (float_of_int n));
    ]
  in
  Outcome.make ~notes [ table ]
