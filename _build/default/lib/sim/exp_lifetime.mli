(** E3 — Temporal diameter vs. lifetime (Theorem 5).

    Fix the clique size [n] and stretch the lifetime [a]: with one
    uniform label per arc on [{1..a}], Theorem 5 says the temporal
    diameter grows as [Ω((a/n)·ln n)] once [a >> n].  The experiment
    measures the exact instance diameter across [a/n] ratios, the ratio
    to the bound, and the prefix-connectivity witness behind the proof
    (the time at which the [G(n, k/a)] prefix first gets connected). *)

val run : quick:bool -> seed:int -> Outcome.t
