(** E11 — Label redundancy: greedy pruning towards OPT.

    The paper measures the price of buying *random* availability against
    the deterministic optimum OPT (Definition 8), which is hard to even
    approximate in general (Mertzios et al. [21]).  This experiment asks
    the operational converse: given a concrete schedule that already
    works — either full availability or a successful random assignment —
    how much of it is redundant?  Greedy pruning ({!Temporal.Spanner})
    deletes labels while reachability survives; the residue is compared
    against the universal OPT bracket [n-1 <= OPT <= 2(n-1)]. *)

val run : quick:bool -> seed:int -> Outcome.t
