module Table = Stats.Table
module Summary = Stats.Summary
module Rng = Prng.Rng
open Temporal

let run ~quick ~seed =
  let rng = Rng.create seed in
  let dim = if quick then 4 else 5 in
  let trials = if quick then 5 else 12 in
  let g = Sgraph.Gen.hypercube dim in
  let n = Sgraph.Graph.n g in
  let a = 2 * dim in
  let designs =
    [
      (Design.Backbone_only, "backbone");
      (Design.Random_only 4, "random r=4");
      (Design.Hybrid 3, "hybrid r=3");
    ]
  in
  let strategies =
    [ Adversary.Random_jam; Adversary.Earliest_first; Adversary.Cut_vertex_focus ]
  in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "E18: reachable pairs surviving a jamming budget of n = %d labels \
            (%d-cube, a = %d, %d trials)"
           n dim a trials)
      ~columns:
        ("design \\ jammer"
        :: List.map Adversary.strategy_name strategies)
  in
  List.iter
    (fun (spec, name) ->
      let cells =
        List.map
          (fun strategy ->
            let survival = Summary.create () in
            Runner.foreach rng ~trials (fun _ trial_rng ->
                let net = Design.realise trial_rng g ~a spec in
                let outcome =
                  Adversary.jam trial_rng net ~budget:n ~strategy
                in
                Summary.add survival
                  (float_of_int outcome.reachable_after
                  /. float_of_int (Stdlib.max 1 outcome.reachable_before)));
            Stats.Table.Pct (Summary.mean survival))
          strategies
      in
      Table.add_row table (Stats.Table.Str name :: cells))
    designs;
  let notes =
    [
      "cells show the fraction of previously-reachable ordered pairs that \
       survive cancelling n availabilities; higher is more robust";
      "the backbone is brittle — it has no redundancy, so every cancelled \
       label severs tree pairs, and the earliest-first jammer (which \
       kills the up-phase) is devastating; pure random labels degrade \
       gracefully; the hybrid inherits the random layer's redundancy \
       while its guarantee holds whenever the jammer misses the \
       backbone — design for adversaries means buying redundancy, not \
       just coverage";
    ]
  in
  Outcome.make ~notes [ table ]
