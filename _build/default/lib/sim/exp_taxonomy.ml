module Table = Stats.Table
module Summary = Stats.Summary
module Rng = Prng.Rng
open Temporal

let run ~quick ~seed =
  let rng = Rng.create seed in
  let sizes = if quick then [ 32; 64 ] else [ 32; 64; 128; 256 ] in
  let trials = if quick then 6 else 15 in
  let r = 3 in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "E9: journey taxonomy on G(n, 3 ln n/n) with %d uniform labels per \
            edge (a = n, %d trials)"
           r trials)
      ~columns:
        [ "n"; "static diam"; "foremost ecc"; "ecc/ln n"; "fastest worst";
          "shortest worst hops"; "latest departure"; "reach" ]
  in
  List.iter
    (fun n ->
      let diam = Summary.create () in
      let foremost_ecc = Summary.create () in
      let fastest_worst = Summary.create () in
      let hops_worst = Summary.create () in
      let latest_dep = Summary.create () in
      let reach = Summary.create () in
      Runner.foreach rng ~trials (fun _ trial_rng ->
          let p = 3. *. log (float_of_int n) /. float_of_int n in
          let g = Sgraph.Gen.gnp trial_rng ~n ~p:(Float.min 1. p) in
          if Sgraph.Components.is_connected g then begin
            Summary.add_int diam (Sgraph.Metrics.diameter g);
            let net = Assignment.uniform_multi trial_rng g ~a:n ~r in
            let s = Rng.int trial_rng n in
            let t = (s + 1 + Rng.int trial_rng (n - 1)) mod n in
            let fm = Foremost.run net s in
            (match Foremost.max_distance fm with
            | Some e -> Summary.add_int foremost_ecc e
            | None -> ());
            let fast = Fastest.run net s in
            (match Fastest.max_duration fast with
            | Some d -> Summary.add_int fastest_worst d
            | None -> ());
            let short = Shortest.run net s in
            (match Shortest.max_hops short with
            | Some h -> Summary.add_int hops_worst h
            | None -> ());
            let rev = Reverse_foremost.run net t in
            (match Reverse_foremost.latest_departure rev s with
            | Some d -> Summary.add_int latest_dep d
            | None -> ());
            Summary.add reach (Reachability.reachability_ratio net)
          end);
      let ecc = Summary.mean foremost_ecc in
      Table.add_row table
        [
          Int n;
          Float (Summary.mean diam, 1);
          Float (ecc, 1);
          Float (ecc /. log (float_of_int n), 2);
          Float (Summary.mean fastest_worst, 1);
          Float (Summary.mean hops_worst, 1);
          Float (Summary.mean latest_dep, 1);
          Pct (Summary.mean reach);
        ])
    sizes;
  let notes =
    [
      "foremost ecc: earliest time a random source informs its hardest \
       vertex; fastest worst: the longest any vertex keeps a message in \
       transit once optimally timed — much smaller than the foremost \
       eccentricity, because waiting for a good departure is allowed";
      "shortest worst hops tracks the static diameter (a journey cannot use \
       fewer edges than a shortest path), exceeding it when timing forces a \
       detour";
      "latest departure: how long a random source can wait and still reach \
       a random target (reverse-foremost, Bui-Xuan et al. [6])";
    ]
  in
  Outcome.make ~notes [ table ]
