(** E12 — Flooding on edge-Markovian evolving graphs (related work [8]).

    The dynamic-network model nearest to the paper's: edges flip state
    every round with birth/death probabilities.  The experiment measures
    flooding time across the density/persistence landscape and sets it
    against the two fixed-schedule baselines (U-RTN flooding, push) —
    showing that per-round randomness buys speed exactly where the
    stationary graph is too sparse to flood in one shot. *)

val run : quick:bool -> seed:int -> Outcome.t
