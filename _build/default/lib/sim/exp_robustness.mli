(** E14 — Robustness of temporal reachability under vertex loss.

    The hostile-network framing inverted: an adversary who can *capture
    vertices* rather than guard links.  On a scale-free random temporal
    network, targeted attacks on the most temporally central relays are
    compared with random failures: how quickly does the fraction of
    journey-connected pairs collapse? *)

val run : quick:bool -> seed:int -> Outcome.t
