(** E13 — Availability design: the paper's §6 programme.

    "Designing the availability of a net by combining random
    availabilities and optimal local availabilities" — the conclusions'
    stated research direction, built and measured: a deterministic
    spanning-tree backbone guarantees reachability at [2(n-1)] labels
    but with path-like temporal distances; random labels are fast but
    only probabilistically safe; the hybrid buys both, and the
    experiment quantifies the trade-off frontier (label budget vs.
    temporal diameter vs. reachability guarantee). *)

val run : quick:bool -> seed:int -> Outcome.t
