module Table = Stats.Table
module Summary = Stats.Summary
module Rng = Prng.Rng
module Rumor = Phonecall.Rumor

let measure rng g strategy ~trials =
  let n = Sgraph.Graph.n g in
  let rounds = Summary.create () in
  let msgs = Summary.create () in
  Runner.foreach rng ~trials (fun _ trial_rng ->
      let source = Rng.int trial_rng n in
      let result = Rumor.spread trial_rng g strategy ~source in
      Option.iter (Summary.add_int rounds) result.rounds;
      Summary.add_int msgs result.transmissions);
  (Summary.mean rounds, Summary.mean msgs)

(* Memory pays on sparse graphs, where re-calling a recent partner is
   both likely and useless; the clique hides the effect. *)
let memory_table ~quick rng =
  let trials = if quick then 15 else 40 in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "E7b: where memory helps — transmissions to completion (%d trials)"
           trials)
      ~columns:
        [ "graph"; "n"; "pp rounds"; "mem3 rounds"; "pp msgs"; "mem3 msgs";
          "msgs saved" ]
  in
  let families =
    if quick then [ ("cycle", Sgraph.Gen.cycle 64) ]
    else
      [
        ("cycle", Sgraph.Gen.cycle 128);
        ("hypercube d=7", Sgraph.Gen.hypercube 7);
        ("4-regular ring", Sgraph.Gen.watts_strogatz (Rng.split rng) ~n:128 ~k:2 ~beta:0.1);
      ]
  in
  List.iter
    (fun (name, g) ->
      let pp_rounds, pp_msgs = measure (Rng.split rng) g Push_pull ~trials in
      let mem_rounds, mem_msgs =
        measure (Rng.split rng) g (Push_pull_memory 3) ~trials
      in
      Table.add_row table
        [
          Str name;
          Int (Sgraph.Graph.n g);
          Float (pp_rounds, 1);
          Float (mem_rounds, 1);
          Float (pp_msgs, 0);
          Float (mem_msgs, 0);
          Pct (1. -. (mem_msgs /. pp_msgs));
        ])
    families;
  table

let run ~quick ~seed =
  let rng = Rng.create seed in
  let sizes = if quick then [ 16; 64 ] else [ 16; 64; 256; 1024 ] in
  let pc_trials = if quick then 20 else 60 in
  let flood_trials = if quick then 10 else 25 in
  let table =
    Table.create
      ~title:"E7: phone-call model vs random-availability flooding (clique)"
      ~columns:
        [ "n"; "push rounds"; "push-pull rounds"; "pp-mem3 rounds";
          "flood time"; "push/log2 n"; "flood/ln n"; "pp msgs"; "mem3 msgs";
          "flood msgs"; "incomplete" ]
  in
  List.iter
    (fun n ->
      let undirected = Sgraph.Gen.clique Undirected n in
      let push_mean, _ = measure (Rng.split rng) undirected Push ~trials:pc_trials in
      let pushpull_mean, pushpull_msgs =
        measure (Rng.split rng) undirected Push_pull ~trials:pc_trials
      in
      let memory_mean, memory_msgs =
        measure (Rng.split rng) undirected (Push_pull_memory 3) ~trials:pc_trials
      in
      let directed = Sgraph.Gen.clique Directed n in
      let flood_summary = Summary.create () in
      let msgs = Summary.create () in
      let incomplete = ref 0 in
      Runner.foreach rng ~trials:flood_trials (fun _ trial_rng ->
          let net = Temporal.Assignment.normalized_uniform trial_rng directed in
          let source = Rng.int trial_rng n in
          let result = Temporal.Flooding.run net source in
          Summary.add_int msgs result.transmissions;
          match result.completion_time with
          | Some t -> Summary.add_int flood_summary t
          | None -> incr incomplete);
      let flood_mean = Summary.mean flood_summary in
      Table.add_row table
        [
          Int n;
          Float (push_mean, 1);
          Float (pushpull_mean, 1);
          Float (memory_mean, 1);
          Float (flood_mean, 1);
          Float (push_mean /. Float.log2 (float_of_int n), 2);
          Float (flood_mean /. log (float_of_int n), 2);
          Float (pushpull_msgs, 0);
          Float (memory_msgs, 0);
          Float (Summary.mean msgs, 0);
          Int !incomplete;
        ])
    sizes;
  let notes =
    [
      "all four dissemination columns scale logarithmically: push ~ log2 n \
       + ln n rounds (Frieze-Grimmett), push-pull about half (Karp et \
       al.), memory shaves a little more (Elsasser-Sauerwald), and \
       flooding on the U-RTN clique ~ gamma*ln n (Theorem 4) despite \
       availability being fixed by the input";
      "message complexity separates the models: flooding fires Theta(n^2) \
       transmissions (every arc of an informed vertex), the phone-call \
       family Theta(n log n) — and memory trims the redundant calls, the \
       [3,12] effect the paper's related work cites";
      "incomplete counts flooding instances where some vertex was never \
       reached before the lifetime ended (expected: 0 on the clique)";
    ]
  in
  Outcome.make ~notes [ table; memory_table ~quick rng ]
