module Table = Stats.Table
module Summary = Stats.Summary
module Rng = Prng.Rng
open Temporal

(* Keep the graph and per-edge label counts; redraw times uniformly. *)
let time_shuffled rng net =
  let g = Tgraph.graph net in
  let a = Tgraph.lifetime net in
  Assignment.of_fun g ~a (fun e ->
      let k = Label.size (Tgraph.labels net e) in
      Label.of_list (List.init k (fun _ -> 1 + Rng.int rng a)))

let run ~quick ~seed =
  let rng = Rng.create seed in
  let agents = if quick then 24 else 48 in
  let size = if quick then 10 else 16 in
  let ticks = 2 * agents in
  let trials = if quick then 5 else 12 in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "E16: random-waypoint traces vs the uniform-time null model \
            (%d agents, %dx%d torus, %d ticks, %d trials)"
           agents size size ticks trials)
      ~columns:
        [ "variant"; "density"; "labels/edge"; "reach"; "flood time";
          "flood incomplete" ]
  in
  let record name reach flood incomplete density labels =
    Table.add_row table
      [
        Str name;
        Pct (Summary.mean density);
        Float (Summary.mean labels, 1);
        Pct (Summary.mean reach);
        (if Summary.count flood = 0 then Str "-"
         else Float (Summary.mean flood, 1));
        Int incomplete;
      ]
  in
  let variants = [ ("mobility trace", `Trace); ("time-shuffled null", `Null) ] in
  List.iter
    (fun (name, variant) ->
      let reach = Summary.create () in
      let flood = Summary.create () in
      let density = Summary.create () in
      let labels = Summary.create () in
      let incomplete = ref 0 in
      Runner.foreach rng ~trials (fun _ trial_rng ->
          let trace_net =
            Mobility.Trace.of_waypoint_run trial_rng ~agents ~size ~ticks
          in
          let net =
            match variant with
            | `Trace -> trace_net
            | `Null -> time_shuffled trial_rng trace_net
          in
          let s = Mobility.Trace.stats net in
          Summary.add density s.density;
          Summary.add labels s.mean_labels_per_edge;
          Summary.add reach (Reachability.reachability_ratio net);
          let source = Rng.int trial_rng agents in
          match Flooding.broadcast_time net source with
          | Some t -> Summary.add_int flood t
          | None -> incr incomplete);
      record name reach flood !incomplete density labels)
    variants;
  let notes =
    [
      "both variants share graphs and label volumes by construction \
       (density and labels/edge rows must agree up to label collisions); \
       any reachability or speed gap is purely the *timing pattern*";
      "mobility timing is bursty — an edge's labels cluster while two \
       agents travel together — which wastes availability: consecutive \
       labels on the same edge rarely extend a journey.  The uniform null \
       spreads the same budget over the lifetime and reaches more pairs, \
       earlier: a concrete reason the paper's uniform model is an \
       optimistic baseline for real contact processes";
    ]
  in
  Outcome.make ~notes [ table ]
