module Table = Stats.Table
module Rng = Prng.Rng

let run ~quick ~seed =
  let rng = Rng.create seed in
  let sizes = if quick then [ 64 ] else [ 64; 256; 1024 ] in
  let trials = if quick then 60 else 250 in
  let cs = [ 0.4; 0.6; 0.8; 1.0; 1.2; 1.4; 1.8 ] in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "E6: P(G(n, c*ln n/n) connected), %d trials per cell" trials)
      ~columns:("c" :: List.map (fun n -> Printf.sprintf "n=%d" n) sizes)
  in
  let series =
    List.map
      (fun n ->
        ( Printf.sprintf "n=%d" n,
          List.map
            (fun c ->
              let p = c *. log (float_of_int n) /. float_of_int n in
              let prob =
                Estimators.gnp_connectivity (Rng.split rng) ~n
                  ~p:(Float.min 1. p) ~trials
              in
              (c, prob))
            cs ))
      sizes
  in
  List.iteri
    (fun i c ->
      Table.add_row table
        (Stats.Table.Float (c, 1)
        :: List.map
             (fun (_, points) -> Stats.Table.Pct (snd (List.nth points i)))
             series))
    cs;
  let plot =
    Stats.Ascii_plot.render_series ~x_label:"c" ~y_label:"P(connected)"
      ~title:"E6: connectivity probability vs c (threshold at c = 1)" series
  in
  let notes =
    [
      "the step should sharpen around c = 1 as n grows (Erdos-Renyi 1959); \
       this is the disconnection engine behind Theorem 5's lower bound";
    ]
  in
  Outcome.make ~notes ~plots:[ plot ] [ table ]
