module Graph = Sgraph.Graph
module Rng = Prng.Rng
open Temporal

type diameter_stats = {
  trials : int;
  summary : Stats.Summary.t;
  samples : float array;
  disconnected : int;
}

let temporal_diameter rng g ~a ~r ~trials =
  let summary = Stats.Summary.create () in
  let samples = ref [] in
  let disconnected = ref 0 in
  Runner.foreach rng ~trials (fun _ trial_rng ->
      let net = Assignment.uniform_multi trial_rng g ~a ~r in
      match Distance.instance_diameter net with
      | Some d ->
        Stats.Summary.add_int summary d;
        samples := float_of_int d :: !samples
      | None -> incr disconnected);
  {
    trials;
    summary;
    samples = Array.of_list (List.rev !samples);
    disconnected = !disconnected;
  }

let clique_temporal_diameter rng ~n ~a ~trials =
  temporal_diameter rng (Sgraph.Gen.clique Directed n) ~a ~r:1 ~trials

let flooding_time rng g ~a ~r ~trials =
  let summary = Stats.Summary.create () in
  let incomplete = ref 0 in
  Runner.foreach rng ~trials (fun _ trial_rng ->
      let net = Assignment.uniform_multi trial_rng g ~a ~r in
      let source = Rng.int trial_rng (Graph.n g) in
      match Flooding.broadcast_time net source with
      | Some t -> Stats.Summary.add_int summary t
      | None -> incr incomplete);
  (summary, !incomplete)

type expansion_stats = {
  attempts : int;
  success_rate : float;
  arrival : Stats.Summary.t;
  flooding_arrival : Stats.Summary.t;
  horizon : int;
}

let expansion rng ~n ~params ~instances ~pairs_per_instance =
  let g = Sgraph.Gen.clique Directed n in
  let attempts = ref 0 and successes = ref 0 in
  let arrival = Stats.Summary.create () in
  let flooding_arrival = Stats.Summary.create () in
  Runner.foreach rng ~trials:instances (fun _ trial_rng ->
      let net = Assignment.normalized_uniform trial_rng g in
      for _ = 1 to pairs_per_instance do
        let s = Rng.int trial_rng n in
        let t = (s + 1 + Rng.int trial_rng (n - 1)) mod n in
        incr attempts;
        let outcome = Expansion.run net params ~s ~t in
        if outcome.success then begin
          incr successes;
          Option.iter (fun x -> Stats.Summary.add_int arrival x) outcome.arrival
        end;
        (match Foremost.distance (Foremost.run net s) t with
        | Some d -> Stats.Summary.add_int flooding_arrival d
        | None -> ())
      done);
  {
    attempts = !attempts;
    success_rate = float_of_int !successes /. float_of_int (Stdlib.max 1 !attempts);
    arrival;
    flooding_arrival;
    horizon = Expansion.horizon params;
  }

let gnp_connectivity rng ~n ~p ~trials =
  let hits =
    Runner.count rng ~trials (fun trial_rng ->
        Sgraph.Components.is_connected (Sgraph.Gen.gnp trial_rng ~n ~p))
  in
  float_of_int hits /. float_of_int trials
