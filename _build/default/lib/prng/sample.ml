let shuffle rng a =
  for i = Array.length a - 1 downto 1 do
    let j = Rng.int rng (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let permutation rng n =
  let a = Array.init n (fun i -> i) in
  shuffle rng a;
  a

let choose_distinct rng ~k ~n =
  if k < 0 || k > n then invalid_arg "Sample.choose_distinct: need 0 <= k <= n";
  let a = Array.init n (fun i -> i) in
  for i = 0 to k - 1 do
    let j = i + Rng.int rng (n - i) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done;
  Array.sub a 0 k

let geometric rng ~p =
  if not (p > 0. && p <= 1.) then invalid_arg "Sample.geometric: need 0 < p <= 1";
  if p = 1. then 1
  else
    let u = 1. -. Rng.float rng in
    (* u in (0,1]; inversion of the geometric CDF. *)
    1 + int_of_float (Float.log u /. Float.log1p (-.p))

let binomial rng ~n ~p =
  if n < 0 then invalid_arg "Sample.binomial: need n >= 0";
  let count = ref 0 in
  for _ = 1 to n do
    if Rng.bernoulli rng p then incr count
  done;
  !count

module Zipf_cache = struct
  type t = { cumulative : float array }

  let create ~s ~n =
    if n <= 0 then invalid_arg "Sample.Zipf_cache.create: need n > 0";
    let cumulative = Array.make n 0. in
    let total = ref 0. in
    for k = 1 to n do
      total := !total +. (1. /. Float.pow (float_of_int k) s);
      cumulative.(k - 1) <- !total
    done;
    let norm = !total in
    Array.iteri (fun i c -> cumulative.(i) <- c /. norm) cumulative;
    { cumulative }

  let draw t rng =
    let u = Rng.float rng in
    let cumulative = t.cumulative in
    (* Smallest index with cumulative.(i) > u. *)
    let lo = ref 0 and hi = ref (Array.length cumulative - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if cumulative.(mid) > u then hi := mid else lo := mid + 1
    done;
    !lo + 1
end

let zipf rng ~s ~n = Zipf_cache.draw (Zipf_cache.create ~s ~n) rng
