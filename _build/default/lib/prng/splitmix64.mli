(** SplitMix64 pseudo-random generator (Steele, Lea & Flood, OOPSLA'14).

    A tiny, fast, well-distributed 64-bit generator whose main role here is
    seeding and splitting: it expands a single integer seed into as many
    independent-looking 64-bit streams as needed.  All experiment
    reproducibility in this repository bottoms out in this module. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] builds a generator from an arbitrary integer seed. *)

val of_int64 : int64 -> t
(** [of_int64 seed] builds a generator from a full 64-bit seed. *)

val copy : t -> t
(** [copy t] is an independent clone that will replay [t]'s future output. *)

val next : t -> int64
(** [next t] advances the state and returns the next 64-bit output. *)

val next_in : t -> int -> int
(** [next_in t bound] is a uniform integer in [\[0, bound)].
    @raise Invalid_argument if [bound <= 0]. *)
