type t = Uniform | Geometric of float | Zipf of float | Point of int

let pp ppf = function
  | Uniform -> Format.fprintf ppf "uniform"
  | Geometric p -> Format.fprintf ppf "geometric(%g)" p
  | Zipf s -> Format.fprintf ppf "zipf(%g)" s
  | Point k -> Format.fprintf ppf "point(%d)" k

let to_string t = Format.asprintf "%a" pp t

module Sampler = struct
  type compiled =
    | C_uniform
    | C_geometric of float
    | C_zipf of Sample.Zipf_cache.t
    | C_point of int

  type t = { a : int; compiled : compiled }

  let create dist ~a =
    if a <= 0 then invalid_arg "Dist.Sampler.create: lifetime must be positive";
    let compiled =
      match dist with
      | Uniform -> C_uniform
      | Geometric p ->
        if not (p > 0. && p <= 1.) then
          invalid_arg "Dist.Sampler.create: geometric needs 0 < p <= 1";
        C_geometric p
      | Zipf s -> C_zipf (Sample.Zipf_cache.create ~s ~n:a)
      | Point k -> C_point (max 1 (min k a))
    in
    { a; compiled }

  let draw t rng =
    match t.compiled with
    | C_uniform -> 1 + Rng.int rng t.a
    | C_geometric p ->
      let rec truncated () =
        let v = Sample.geometric rng ~p in
        if v <= t.a then v else truncated ()
      in
      truncated ()
    | C_zipf cache -> Sample.Zipf_cache.draw cache rng
    | C_point k -> k
end

let draw dist ~a rng = Sampler.draw (Sampler.create dist ~a) rng
