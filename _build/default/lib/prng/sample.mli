(** Sampling routines on top of {!Rng}.

    Everything the experiments draw — labels, subsets, permutations,
    distribution variates — goes through this module so that tests can pin
    the exact distributional contracts down. *)

val shuffle : Rng.t -> 'a array -> unit
(** [shuffle rng a] permutes [a] in place, uniformly (Fisher–Yates). *)

val permutation : Rng.t -> int -> int array
(** [permutation rng n] is a uniform permutation of [0..n-1]. *)

val choose_distinct : Rng.t -> k:int -> n:int -> int array
(** [choose_distinct rng ~k ~n] is a uniform [k]-subset of [0..n-1], in
    random order (partial Fisher–Yates; O(n) space, O(k) swaps).
    @raise Invalid_argument if [k < 0 || k > n]. *)

val geometric : Rng.t -> p:float -> int
(** [geometric rng ~p] is the number of Bernoulli([p]) trials up to and
    including the first success; support [{1, 2, ...}].
    @raise Invalid_argument unless [0 < p <= 1]. *)

val binomial : Rng.t -> n:int -> p:float -> int
(** [binomial rng ~n ~p] counts successes in [n] Bernoulli([p]) trials.
    Exact (trial-by-trial); intended for the moderate [n] used here. *)

val zipf : Rng.t -> s:float -> n:int -> int
(** [zipf rng ~s ~n] draws from the Zipf distribution with exponent [s] on
    [{1..n}] by inverting the exact CDF (binary search on cumulative
    weights); O(n) set-up cost per call — prefer {!Zipf_cache} in loops. *)

module Zipf_cache : sig
  type t

  val create : s:float -> n:int -> t
  (** Precomputes the cumulative weights once. *)

  val draw : t -> Rng.t -> int
  (** O(log n) per draw. *)
end
