type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }
let of_int64 seed = { state = seed }
let copy t = { state = t.state }

let golden = 0x9E3779B97F4A7C15L
let mix1 = 0xBF58476D1CE4E5B9L
let mix2 = 0x94D049BB133111EBL

let next t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) mix1 in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) mix2 in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next_in t bound =
  if bound <= 0 then invalid_arg "Splitmix64.next_in: bound must be positive";
  (* Take 62 unbiased bits and reject the tail of the range. *)
  let range = Int64.of_int bound in
  let top = Int64.div 0x3FFF_FFFF_FFFF_FFFFL range in
  let limit = Int64.mul top range in
  let rec draw () =
    let v = Int64.shift_right_logical (next t) 2 in
    if v < limit then Int64.to_int (Int64.rem v range) else draw ()
  in
  draw ()
