(** xoshiro256** pseudo-random generator (Blackman & Vigna, 2018).

    The workhorse generator used by {!Rng}: fast, 256 bits of state, passes
    the standard statistical batteries.  Seeded via {!Splitmix64} so that
    nearby integer seeds still give unrelated streams. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] seeds the four state words from a SplitMix64 stream. *)

val of_state : int64 -> int64 -> int64 -> int64 -> t
(** [of_state s0 s1 s2 s3] builds a generator from raw state words.  The
    state must not be all-zero.
    @raise Invalid_argument on the all-zero state. *)

val copy : t -> t
(** [copy t] is an independent clone replaying [t]'s future output. *)

val next : t -> int64
(** [next t] advances the state and returns the next 64-bit output. *)

val jump : t -> unit
(** [jump t] advances the state by 2{^128} steps — equivalent to discarding
    2{^128} outputs — which yields a non-overlapping subsequence usable as
    an independent stream. *)
