lib/prng/dist.ml: Format Rng Sample
