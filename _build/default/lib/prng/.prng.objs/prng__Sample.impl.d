lib/prng/sample.ml: Array Float Rng
