lib/prng/dist.mli: Format Rng
