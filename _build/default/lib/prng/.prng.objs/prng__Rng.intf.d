lib/prng/rng.mli:
