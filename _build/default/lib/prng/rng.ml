type t = Xoshiro256.t

let create seed = Xoshiro256.create seed
let copy = Xoshiro256.copy
let bits64 = Xoshiro256.next

let split t =
  let sm = Splitmix64.of_int64 (Xoshiro256.next t) in
  let s0 = Splitmix64.next sm in
  let s1 = Splitmix64.next sm in
  let s2 = Splitmix64.next sm in
  let s3 = Splitmix64.next sm in
  if s0 = 0L && s1 = 0L && s2 = 0L && s3 = 0L then Xoshiro256.of_state 1L 2L 3L 4L
  else Xoshiro256.of_state s0 s1 s2 s3

let split_n t k = Array.init k (fun _ -> split t)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  let range = Int64.of_int bound in
  let top = Int64.div 0x3FFF_FFFF_FFFF_FFFFL range in
  let limit = Int64.mul top range in
  let rec draw () =
    let v = Int64.shift_right_logical (bits64 t) 2 in
    if v < limit then Int64.to_int (Int64.rem v range) else draw ()
  in
  draw ()

let int_in t lo hi =
  if hi < lo then invalid_arg "Rng.int_in: empty range";
  lo + int t (hi - lo + 1)

let float t =
  let bits = Int64.shift_right_logical (bits64 t) 11 in
  Int64.to_float bits *. 0x1p-53

let bool t = Int64.logand (bits64 t) 1L = 1L
let bernoulli t p = float t < p
