(** Unified random source for the whole repository.

    Wraps {!Xoshiro256} behind the operations the experiments need, and adds
    {!split}: deriving an independent child stream from a parent.  Splitting
    is what makes trial-parallel experiments reproducible — trial [i] always
    receives the same stream no matter how many draws other trials made. *)

type t
(** A mutable stream of pseudo-random values. *)

val create : int -> t
(** [create seed] builds a stream deterministically from [seed]. *)

val copy : t -> t
(** [copy t] clones the stream state. *)

val split : t -> t
(** [split t] draws once from [t] and uses the value to seed a fresh,
    statistically independent child stream. *)

val split_n : t -> int -> t array
(** [split_n t k] is [k] independent child streams. *)

val bits64 : t -> int64
(** [bits64 t] is the next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].
    @raise Invalid_argument if [bound <= 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in the inclusive range [\[lo, hi\]].
    @raise Invalid_argument if [hi < lo]. *)

val float : t -> float
(** [float t] is uniform in [\[0, 1)] with 53 bits of precision. *)

val bool : t -> bool
(** [bool t] is a fair coin flip. *)

val bernoulli : t -> float -> bool
(** [bernoulli t p] is [true] with probability [p]. *)
