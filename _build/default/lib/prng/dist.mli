(** Label distributions for F-CASE random temporal networks (paper §2, Note).

    The paper's main results use UNI-CASE (uniform single label); the note
    after Definition 4 sketches F-RTNs where labels follow an arbitrary
    distribution [F] over [{1..a}].  This module realises that extension:
    a first-class description of a distribution over [{1..a}] plus a
    sampler, so assignments can be swapped per experiment. *)

type t =
  | Uniform  (** every label in [{1..a}] with probability [1/a] — UNI-CASE *)
  | Geometric of float
      (** success probability [p], truncated to [{1..a}] by resampling
          (i.e. conditioned on the value being [<= a]) *)
  | Zipf of float  (** exponent [s], support [{1..a}] *)
  | Point of int
      (** the constant label [min k a] — degenerate, for ablations *)

val pp : Format.formatter -> t -> unit
(** Human-readable name, e.g. ["geometric(0.05)"]. *)

val to_string : t -> string

val draw : t -> a:int -> Rng.t -> int
(** [draw dist ~a rng] samples one label from [dist] restricted to [{1..a}].
    @raise Invalid_argument if [a <= 0]. *)

module Sampler : sig
  type dist := t

  type t
  (** A distribution compiled against a fixed lifetime [a]; amortises
      set-up cost (e.g. Zipf cumulative tables) across many draws. *)

  val create : dist -> a:int -> t
  val draw : t -> Rng.t -> int
end
