(** Connectivity structure.

    Weak components for undirected graphs (the notion behind the
    Erdős–Rényi threshold in Theorem 5) and strong connectivity for
    digraphs (a directed clique is strongly connected, which is what makes
    all-pairs temporal reachability possible at all). *)

val components : Graph.t -> int array
(** [components g] labels every vertex with a component id in
    [0..k-1] (ids in order of discovery).  Edge direction is ignored. *)

val component_count : Graph.t -> int

val is_connected : Graph.t -> bool
(** Ignoring direction; [true] for the empty and 1-vertex graph. *)

val component_sizes : Graph.t -> int array
(** Size of each component, indexed by component id. *)

val largest_component : Graph.t -> int
(** Size of the largest component; [0] for the empty graph. *)

val strongly_connected_components : Graph.t -> int array
(** Tarjan's algorithm; component ids in reverse topological order of the
    condensation.  Equals {!components} on undirected graphs. *)

val is_strongly_connected : Graph.t -> bool
