let eccentricity g v =
  let dist = Traverse.bfs g v in
  let ecc = ref 0 in
  Array.iter
    (fun d ->
      if d = Traverse.unreachable then ecc := Traverse.unreachable
      else if !ecc <> Traverse.unreachable && d > !ecc then ecc := d)
    dist;
  !ecc

let fold_eccentricities g combine init =
  let n = Graph.n g in
  if n = 0 then invalid_arg "Metrics: empty graph";
  let acc = ref init in
  for v = 0 to n - 1 do
    acc := combine !acc (eccentricity g v)
  done;
  !acc

let diameter g = fold_eccentricities g Stdlib.max 0

let radius g = fold_eccentricities g Stdlib.min Traverse.unreachable

let average_distance g =
  let n = Graph.n g in
  let total = ref 0 and pairs = ref 0 in
  for v = 0 to n - 1 do
    let dist = Traverse.bfs g v in
    Array.iteri
      (fun u d ->
        if u <> v && d <> Traverse.unreachable then begin
          total := !total + d;
          incr pairs
        end)
      dist
  done;
  if !pairs = 0 then Float.nan else float_of_int !total /. float_of_int !pairs

let distance_matrix g = Array.init (Graph.n g) (fun v -> Traverse.bfs g v)
