let components g =
  let n = Graph.n g in
  let uf = Unionfind.create n in
  Graph.iter_edges g (fun _ u v -> ignore (Unionfind.union uf u v));
  let label = Array.make n (-1) in
  let next = ref 0 in
  let comp = Array.make n (-1) in
  for v = 0 to n - 1 do
    let root = Unionfind.find uf v in
    if label.(root) = -1 then begin
      label.(root) <- !next;
      incr next
    end;
    comp.(v) <- label.(root)
  done;
  comp

let component_count g =
  let comp = components g in
  Array.fold_left Stdlib.max (-1) comp + 1

let is_connected g = Graph.n g <= 1 || component_count g = 1

let component_sizes g =
  let comp = components g in
  let k = Array.fold_left Stdlib.max (-1) comp + 1 in
  let sizes = Array.make k 0 in
  Array.iter (fun c -> sizes.(c) <- sizes.(c) + 1) comp;
  sizes

let largest_component g =
  if Graph.n g = 0 then 0
  else Array.fold_left Stdlib.max 0 (component_sizes g)

(* Tarjan's SCC, iterative to survive deep graphs. *)
let strongly_connected_components g =
  let n = Graph.n g in
  let index = Array.make n (-1) in
  let lowlink = Array.make n 0 in
  let on_stack = Array.make n false in
  let comp = Array.make n (-1) in
  let stack = Stack.create () in
  let next_index = ref 0 and next_comp = ref 0 in
  let visit root =
    (* Explicit call stack of (vertex, next-neighbour-position). *)
    let calls = Stack.create () in
    Stack.push (root, 0) calls;
    index.(root) <- !next_index;
    lowlink.(root) <- !next_index;
    incr next_index;
    Stack.push root stack;
    on_stack.(root) <- true;
    while not (Stack.is_empty calls) do
      let v, pos = Stack.pop calls in
      let neighbors = Graph.out_neighbors g v in
      if pos < Array.length neighbors then begin
        let w = neighbors.(pos) in
        Stack.push (v, pos + 1) calls;
        if index.(w) = -1 then begin
          index.(w) <- !next_index;
          lowlink.(w) <- !next_index;
          incr next_index;
          Stack.push w stack;
          on_stack.(w) <- true;
          Stack.push (w, 0) calls
        end
        else if on_stack.(w) then
          lowlink.(v) <- Stdlib.min lowlink.(v) index.(w)
      end
      else begin
        if lowlink.(v) = index.(v) then begin
          let continue = ref true in
          while !continue do
            let w = Stack.pop stack in
            on_stack.(w) <- false;
            comp.(w) <- !next_comp;
            if w = v then continue := false
          done;
          incr next_comp
        end;
        if not (Stack.is_empty calls) then begin
          let parent, _ = Stack.top calls in
          lowlink.(parent) <- Stdlib.min lowlink.(parent) lowlink.(v)
        end
      end
    done
  in
  for v = 0 to n - 1 do
    if index.(v) = -1 then visit v
  done;
  comp

let is_strongly_connected g =
  let n = Graph.n g in
  n <= 1
  ||
  let comp = strongly_connected_components g in
  Array.for_all (fun c -> c = comp.(0)) comp
