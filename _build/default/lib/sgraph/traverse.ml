let unreachable = max_int

let bfs_with g s ~neighbors =
  let n = Graph.n g in
  if s < 0 || s >= n then invalid_arg "Traverse.bfs: source out of range";
  let dist = Array.make n unreachable in
  let parent = Array.make n (-1) in
  let queue = Queue.create () in
  dist.(s) <- 0;
  Queue.add s queue;
  while not (Queue.is_empty queue) do
    let u = Queue.take queue in
    Array.iter
      (fun v ->
        if dist.(v) = unreachable then begin
          dist.(v) <- dist.(u) + 1;
          parent.(v) <- u;
          Queue.add v queue
        end)
      (neighbors u)
  done;
  (dist, parent)

let bfs_tree g s = bfs_with g s ~neighbors:(Graph.out_neighbors g)
let bfs g s = fst (bfs_tree g s)
let bfs_reverse g s = fst (bfs_with g s ~neighbors:(Graph.in_neighbors g))

let dfs_order g root =
  let n = Graph.n g in
  if root < 0 || root >= n then invalid_arg "Traverse.dfs_order: root out of range";
  let visited = Array.make n false in
  let order = ref [] in
  let stack = Stack.create () in
  Stack.push root stack;
  while not (Stack.is_empty stack) do
    let u = Stack.pop stack in
    if not visited.(u) then begin
      visited.(u) <- true;
      order := u :: !order;
      let neighbors = Graph.out_neighbors g u in
      (* Push in reverse so lower-indexed neighbours are visited first. *)
      for i = Array.length neighbors - 1 downto 0 do
        if not visited.(neighbors.(i)) then Stack.push neighbors.(i) stack
      done
    end
  done;
  List.rev !order

let reachable_count g s =
  let dist = bfs g s in
  Array.fold_left (fun acc d -> if d <> unreachable then acc + 1 else acc) 0 dist
