(** Static (di)graphs: the underlying graphs [G = (V, E)] of temporal
    networks (paper, Definition 1).

    Vertices are [0 .. n-1].  Edges are stored once each and identified by
    a dense integer id — temporal label assignments are arrays indexed by
    that id.  An undirected edge is crossable in both directions under the
    same labels; a directed edge only from its source to its target
    (paper §2).  Self-loops and parallel edges are rejected: neither
    occurs in any construction of the paper. *)

type kind = Directed | Undirected

type t

val create : kind -> n:int -> (int * int) list -> t
(** [create kind ~n edges] builds a graph on [n] vertices.  For
    [Undirected], edge pairs are normalised to [(min, max)].
    @raise Invalid_argument on out-of-range endpoints, self-loops, or
    duplicate edges (including [(u,v)] vs [(v,u)] when undirected). *)

val kind : t -> kind
val is_directed : t -> bool

val n : t -> int
(** Number of vertices. *)

val m : t -> int
(** Number of stored edges (arcs if directed). *)

val arc_count : t -> int
(** Number of traversable directions: [m] if directed, [2m] otherwise. *)

val edge_endpoints : t -> int -> int * int
(** [edge_endpoints g e] is the endpoint pair of edge id [e].
    @raise Invalid_argument on a bad id. *)

val edges : t -> (int * int) array
(** A copy of the edge array, index = edge id. *)

val iter_edges : t -> (int -> int -> int -> unit) -> unit
(** [iter_edges g f] calls [f e u v] for every edge id [e] = [(u,v)]. *)

val out_neighbors : t -> int -> int array
(** Targets reachable by one traversable arc out of the vertex (do not
    mutate the returned array). *)

val in_neighbors : t -> int -> int array

val out_arcs : t -> int -> (int * int) array
(** [(edge id, target)] pairs for each traversable arc out of the vertex
    (do not mutate). *)

val in_arcs : t -> int -> (int * int) array
(** [(edge id, source)] pairs for each traversable arc into the vertex. *)

val out_degree : t -> int -> int
val in_degree : t -> int -> int

val mem_edge : t -> int -> int -> bool
(** [mem_edge g u v] — is there a traversable arc from [u] to [v]? *)

val find_edge : t -> int -> int -> int option
(** Edge id of the arc from [u] to [v], if any. *)

val reverse : t -> t
(** The reverse digraph; the identity on undirected graphs.  Edge ids are
    preserved. *)

val pp : Format.formatter -> t -> unit
