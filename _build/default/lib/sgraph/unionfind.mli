(** Disjoint-set forest with union by rank and path compression. *)

type t

val create : int -> t
(** [create n] — [n] singleton sets [{0} .. {n-1}]. *)

val find : t -> int -> int
(** Canonical representative of the element's set. *)

val union : t -> int -> int -> bool
(** Merge the two sets; [true] iff they were distinct. *)

val same : t -> int -> int -> bool
val count : t -> int
(** Current number of disjoint sets. *)
