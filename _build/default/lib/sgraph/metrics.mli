(** Static distance metrics.

    The (static) diameter [d(G)] is the quantity the Theorem 7 bound
    [r > 2 d(G) log n] and the Claim 1 box structure are built from. *)

val eccentricity : Graph.t -> int -> int
(** Max hop distance from the vertex to any other; {!Traverse.unreachable}
    if some vertex is unreachable. *)

val diameter : Graph.t -> int
(** Exact diameter via one BFS per vertex; {!Traverse.unreachable} when
    the graph is not (strongly, if directed) connected; [0] for a
    single vertex.
    @raise Invalid_argument on the empty graph. *)

val radius : Graph.t -> int
(** Minimum eccentricity. *)

val average_distance : Graph.t -> float
(** Mean hop distance over ordered reachable pairs [(u <> v)]; [nan] if
    there are none. *)

val distance_matrix : Graph.t -> int array array
(** [n x n] hop distances ({!Traverse.unreachable} where disconnected). *)
