type kind = Directed | Undirected

type t = {
  kind : kind;
  n : int;
  edges : (int * int) array;
  out_adj : (int * int) array array;  (* per vertex: (edge id, target) *)
  in_adj : (int * int) array array;  (* per vertex: (edge id, source) *)
}

let kind t = t.kind
let is_directed t = t.kind = Directed
let n t = t.n
let m t = Array.length t.edges

let arc_count t =
  match t.kind with Directed -> m t | Undirected -> 2 * m t

let create kind ~n edges =
  if n < 0 then invalid_arg "Graph.create: negative vertex count";
  let normalise (u, v) =
    if u < 0 || u >= n || v < 0 || v >= n then
      invalid_arg (Printf.sprintf "Graph.create: endpoint out of range (%d,%d)" u v);
    if u = v then invalid_arg "Graph.create: self-loop";
    match kind with
    | Directed -> (u, v)
    | Undirected -> if u < v then (u, v) else (v, u)
  in
  let edges = Array.of_list (List.map normalise edges) in
  let seen = Hashtbl.create (Array.length edges) in
  Array.iter
    (fun edge ->
      if Hashtbl.mem seen edge then
        invalid_arg "Graph.create: duplicate edge"
      else Hashtbl.add seen edge ())
    edges;
  let out_count = Array.make n 0 and in_count = Array.make n 0 in
  Array.iter
    (fun (u, v) ->
      out_count.(u) <- out_count.(u) + 1;
      in_count.(v) <- in_count.(v) + 1;
      if kind = Undirected then begin
        out_count.(v) <- out_count.(v) + 1;
        in_count.(u) <- in_count.(u) + 1
      end)
    edges;
  let out_adj = Array.init n (fun v -> Array.make out_count.(v) (0, 0)) in
  let in_adj = Array.init n (fun v -> Array.make in_count.(v) (0, 0)) in
  let out_fill = Array.make n 0 and in_fill = Array.make n 0 in
  Array.iteri
    (fun e (u, v) ->
      let add_arc src dst =
        out_adj.(src).(out_fill.(src)) <- (e, dst);
        out_fill.(src) <- out_fill.(src) + 1;
        in_adj.(dst).(in_fill.(dst)) <- (e, src);
        in_fill.(dst) <- in_fill.(dst) + 1
      in
      add_arc u v;
      if kind = Undirected then add_arc v u)
    edges;
  { kind; n; edges; out_adj; in_adj }

let edge_endpoints t e =
  if e < 0 || e >= m t then invalid_arg "Graph.edge_endpoints: bad edge id";
  t.edges.(e)

let edges t = Array.copy t.edges
let iter_edges t f = Array.iteri (fun e (u, v) -> f e u v) t.edges
let out_arcs t v = t.out_adj.(v)
let in_arcs t v = t.in_adj.(v)
let out_neighbors t v = Array.map snd t.out_adj.(v)
let in_neighbors t v = Array.map snd t.in_adj.(v)
let out_degree t v = Array.length t.out_adj.(v)
let in_degree t v = Array.length t.in_adj.(v)

let find_edge t u v =
  let arcs = t.out_adj.(u) in
  let rec scan i =
    if i >= Array.length arcs then None
    else
      let e, target = arcs.(i) in
      if target = v then Some e else scan (i + 1)
  in
  scan 0

let mem_edge t u v = find_edge t u v <> None

let reverse t =
  match t.kind with
  | Undirected -> t
  | Directed ->
    {
      t with
      edges = Array.map (fun (u, v) -> (v, u)) t.edges;
      out_adj = t.in_adj;
      in_adj = t.out_adj;
    }

let pp ppf t =
  Format.fprintf ppf "%s graph: n=%d m=%d"
    (match t.kind with Directed -> "directed" | Undirected -> "undirected")
    t.n (m t)
