lib/sgraph/traverse.ml: Array Graph List Queue Stack
