lib/sgraph/gen.mli: Graph Prng
