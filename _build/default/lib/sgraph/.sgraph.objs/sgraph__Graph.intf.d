lib/sgraph/graph.mli: Format
