lib/sgraph/components.mli: Graph
