lib/sgraph/graph.ml: Array Format Hashtbl List Printf
