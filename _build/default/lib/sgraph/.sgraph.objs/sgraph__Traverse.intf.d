lib/sgraph/traverse.mli: Graph
