lib/sgraph/unionfind.mli:
