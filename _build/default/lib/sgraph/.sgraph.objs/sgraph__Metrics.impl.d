lib/sgraph/metrics.ml: Array Float Graph Stdlib Traverse
