lib/sgraph/unionfind.ml: Array
