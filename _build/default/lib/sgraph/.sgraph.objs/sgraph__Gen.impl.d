lib/sgraph/gen.ml: Array Float Graph Hashtbl Int List Prng Set Stdlib
