lib/sgraph/components.ml: Array Graph Stack Stdlib Unionfind
