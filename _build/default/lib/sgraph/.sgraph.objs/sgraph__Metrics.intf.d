lib/sgraph/metrics.mli: Graph
