(* Designing link availability for a sensor network (sections 4-5).

   A field deployment shaped like a 8x8 grid must guarantee that any
   sensor can relay a report to any other through time.  Global
   coordination is impossible; each adjacent pair can only agree on
   random wake-up times for its link.  How many random times per link
   must they buy (r), and what is the Price of Randomness compared with
   the deterministic optimum a central planner could install?

   Run with: dune exec examples/availability_design.exe *)

open Temporal
module Graph = Sgraph.Graph
module Rng = Prng.Rng

let () =
  let rng = Rng.create 2014 in
  let g = Sgraph.Gen.grid 8 8 in
  let n = Graph.n g and m = Graph.m g in
  let a = n in
  let d = Sgraph.Metrics.diameter g in
  Format.printf "sensor grid: n = %d, m = %d, diameter = %d, lifetime = %d@.@."
    n m d a;

  (* Central planner: Claim 1's box scheme — d labels per edge, certain. *)
  let box_net = Opt.boxes g ~q:(d * (a / d)) in
  Format.printf "deterministic box scheme : %d labels/edge, total %d, Treach = %b@."
    d (Tgraph.label_count box_net)
    (Reachability.treach box_net);

  (* Central planner, cheaper: BFS-tree up/down scheme — 2 labels per
     tree edge, total 2(n-1). *)
  let tree_net = Opt.spanning_tree_upper g in
  Format.printf "spanning-tree scheme     : total %d labels, Treach = %b@."
    (Tgraph.label_count tree_net)
    (Reachability.treach tree_net);

  (* No coordination: r random wake-ups per link. *)
  let target = 0.95 in
  let trials = 30 in
  (match Por.report rng ~name:"grid" g ~a ~target ~trials with
  | None -> Format.printf "random labels never reached the target@."
  | Some report ->
    Format.printf
      "@.random availability      : min r = %d labels/edge (success %.0f%%)@."
      report.estimate.r
      (100. *. report.estimate.success_rate);
    Format.printf "  total random labels    : %d@." (m * report.estimate.r);
    Format.printf "  Theorem 7 bound        : %.0f labels/edge@." report.thm7_bound;
    Format.printf "  Price of Randomness    : %.1f .. %.1f (OPT in [%d, %d])@."
      report.por_lower report.por_upper report.opt_lower report.opt_upper);

  (* What the planner saves: probability of success per r, to see the
     threshold the sensors pay to cross blindly. *)
  Format.printf "@.success probability by r:@.";
  List.iter
    (fun r ->
      let p = Por.success_probability (Rng.split rng) g ~a ~r ~trials:30 in
      Format.printf "  r = %3d : %3.0f%%@." r (100. *. p))
    [ 1; 2; 4; 8; 16; 32; 64 ]
