(* How the network's lifetime stretches its temporal diameter (Theorem 5).

   The same clique, the same single random availability per link — but
   spread over longer and longer time horizons.  Static intuitions
   (e.g. the phone-call model) cannot see this effect: the paper proves
   TD = Omega((a/n) log n) once a >> n, and this study watches it grow.

   Run with: dune exec examples/lifetime_study.exe *)

open Temporal
module Rng = Prng.Rng
module Summary = Stats.Summary

let n = 64
let trials = 12

let () =
  let rng = Rng.create 99 in
  let g = Sgraph.Gen.clique Directed n in
  Format.printf "clique n = %d, one uniform label per arc on {1..a}@.@." n;
  Format.printf "%6s %6s %10s %14s %10s@." "a" "a/n" "mean TD" "(a/n)ln n"
    "TD/bound";
  let points = ref [] in
  List.iter
    (fun ratio ->
      let a = ratio * n in
      let summary = Summary.create () in
      for _ = 1 to trials do
        let trial_rng = Rng.split rng in
        let net = Assignment.uniform_single trial_rng g ~a in
        match Distance.instance_diameter net with
        | Some d -> Summary.add_int summary d
        | None -> ()
      done;
      let mean = Summary.mean summary in
      let bound = Lifetime.lower_bound ~n ~a in
      points := (float_of_int ratio, mean) :: !points;
      Format.printf "%6d %6d %10.1f %14.1f %10.2f@." a ratio mean bound
        (mean /. bound))
    [ 1; 2; 4; 8; 16; 32 ];
  let fit = Stats.Regression.fit (List.rev !points) in
  Format.printf "@.linear fit TD vs a/n: %a@." Stats.Regression.pp_fit fit;
  Format.printf
    "slope ~ c*ln n with ln n = %.2f: the diameter scales linearly in the \
     lifetime ratio, logarithmically in n — exactly Theorem 5's shape.@."
    (log (float_of_int n));
  print_string
    (Stats.Ascii_plot.render ~x_label:"a/n" ~y_label:"mean TD"
       ~title:"temporal diameter vs lifetime ratio"
       (List.rev !points))
