(* Containment planning on a scale-free contact network.

   A health agency watches a contact network whose meetings happen at
   known random times (a temporal network).  Three operational
   questions, all answered by the library:

   1. if something starts spreading from the worst place, how fast does
      it saturate?                                  (flooding / foremost)
   2. how many depots must stockpile antidote so that everyone can be
      reached in time once an outbreak is detected?  (greedy broadcast
      cover over foremost balls)
   3. which individuals relay the most traffic — the ones to vaccinate
      first?                                        (temporal betweenness)

   Run with: dune exec examples/containment_planning.exe *)

open Temporal
module Rng = Prng.Rng
module Graph = Sgraph.Graph

let () =
  let rng = Rng.create 1821 in
  (* Scale-free contacts: preferential attachment; 3 random meeting
     times per contact over a 4-week horizon (28 days). *)
  let n = 40 in
  let g = Sgraph.Gen.barabasi_albert rng ~n ~m:2 in
  let a = 28 in
  let net = Assignment.uniform_multi rng g ~a ~r:3 in
  Format.printf
    "contact network: n = %d, m = %d contacts, 3 meetings each over %d days@.@."
    n (Graph.m g) a;

  (* 1. Worst-case spread. *)
  let broadcast = Centrality.broadcast_time net in
  let worst = ref 0 and fastest = ref 0 in
  Array.iteri
    (fun v t ->
      if t > broadcast.(!worst) && t < max_int then worst := v
      else if t < broadcast.(!fastest) then fastest := v)
    broadcast;
  let describe v =
    match broadcast.(v) with
    | t when t = max_int -> "never saturates"
    | t -> Printf.sprintf "saturates by day %d" t
  in
  Format.printf "outbreak from vertex %d (most central): %s@." !fastest
    (describe !fastest);
  Format.printf "outbreak from vertex %d (most isolated): %s@.@." !worst
    (describe !worst);

  (* 2. Depot placement under a response deadline. *)
  Format.printf "depots needed to reach everyone by a deadline:@.";
  List.iter
    (fun deadline ->
      let depots = Centrality.cover_by_time net ~deadline in
      Format.printf "  by day %2d : %2d depot(s)  %s@." deadline
        (List.length depots)
        (String.concat ","
           (List.map string_of_int
              (List.filteri (fun i _ -> i < 8) depots))))
    [ 7; 14; 21; 28 ];

  (* 3. Vaccination targets: who relays the most journeys? *)
  let scores = Centrality.betweenness net in
  let order = Centrality.rank scores in
  Format.printf "@.top relay vertices (temporal betweenness):@.";
  Array.iteri
    (fun i v ->
      if i < 5 then
        Format.printf "  #%d vertex %2d  score %.3f  degree %d@." (i + 1) v
          scores.(v) (Graph.out_degree g v))
    order;

  (* The structural summary a planner would file. *)
  Format.printf "@.connectivity summary:@.";
  Format.printf "  temporally connected : %b@." (Tcc.is_temporally_connected net);
  Format.printf "  chain components     : %d@." (Tcc.scc_count net);
  Format.printf
    "  (temporal reachability is not transitive: relays may need to wait \
     for the next meeting)@."
