(* The hostile clique of the paper's introduction.

   Every link of a complete network is guarded except at one random
   moment in {1..n}.  A spy at vertex 0 wants to leak a message to
   everyone.  Waiting for each direct link costs ~n/2 in expectation —
   but flooding through intermediaries finishes in Theta(log n)
   (Theorem 4): the hostile clique is not so secure after all.

   Run with: dune exec examples/hostile_clique.exe *)

open Temporal
module Rng = Prng.Rng
module Summary = Stats.Summary

let n = 256
let trials = 25

let () =
  let rng = Rng.create 7 in
  let g = Sgraph.Gen.clique Directed n in
  let direct = Summary.create () in
  let flooding = Summary.create () in
  let expansion_success = ref 0 in
  let params = Expansion.default_params ~n () in
  for _ = 1 to trials do
    let trial_rng = Rng.split rng in
    let net = Assignment.normalized_uniform trial_rng g in
    (* Strategy A: wait for each direct link 0 -> v to be unguarded;
       the last one opens around n * (n-1)/n ~ n. The *average* direct
       wait is ~n/2. *)
    let waits = ref 0 in
    Array.iter
      (fun (e, _, _) ->
        waits := !waits + Label.min_label (Tgraph.labels net e))
      (Tgraph.crossings_out net 0);
    Summary.add direct (float_of_int !waits /. float_of_int (n - 1));
    (* Strategy B: flood — every informed vertex forwards on each arc the
       moment it is unguarded (section 3.5). *)
    (match Flooding.broadcast_time net 0 with
    | Some t -> Summary.add_int flooding t
    | None -> ());
    (* Strategy C: the Expansion Process finds one short journey 0 -> n/2
       explicitly (Algorithm 1). *)
    let outcome = Expansion.run net params ~s:0 ~t:(n / 2) in
    if outcome.success then incr expansion_success
  done;
  Format.printf "hostile clique, n = %d, %d random instances@.@." n trials;
  Format.printf "average direct-link wait : %.1f steps (expected ~ n/2 = %d)@."
    (Summary.mean direct) (n / 2);
  Format.printf "flooding completion      : %.1f steps (gamma*ln n, ln n = %.1f)@."
    (Summary.mean flooding)
    (log (float_of_int n));
  Format.printf "expansion process success: %d/%d within horizon %d@."
    !expansion_success trials (Expansion.horizon params);
  Format.printf
    "@.moral: one random unguarded moment per link already leaks the \
     message to all %d vertices in ~%.0fx less time than waiting for \
     direct links.@."
    n
    (Summary.mean direct /. Summary.mean flooding)
