(* Red-teaming an availability schedule.

   An operator has designed when each link of a command network is up
   (section 6's design problem); an adversary can spend a budget of
   jamming slots, each cancelling one (link, time) availability.  This
   exercise plays both sides:

     blue: backbone (cheap, guaranteed), random labels (redundant,
           probabilistic), and the hybrid of both;
     red : blind jamming, earliest-first, centrality-focused.

   Run with: dune exec examples/red_team_schedule.exe *)

open Temporal
module Rng = Prng.Rng

let () =
  let rng = Rng.create 5150 in
  let g = Sgraph.Gen.hypercube 5 in
  let n = Sgraph.Graph.n g in
  let a = 10 in
  Format.printf "command network: the 5-cube (n = %d, lifetime = %d)@.@." n a;

  let blue_designs =
    [ Design.Backbone_only; Design.Random_only 4; Design.Hybrid 2 ]
  in
  let red_strategies =
    [ Adversary.Random_jam; Adversary.Earliest_first; Adversary.Cut_vertex_focus ]
  in
  let budget = n in

  Format.printf "%-14s %10s" "blue \\ red" "labels";
  List.iter
    (fun strategy ->
      Format.printf " %14s" (Adversary.strategy_name strategy))
    red_strategies;
  Format.printf "@.";
  List.iter
    (fun spec ->
      let net = Design.realise (Rng.split rng) g ~a spec in
      Format.printf "%-14s %10d" (Design.spec_name spec)
        (Tgraph.label_count net);
      List.iter
        (fun strategy ->
          let outcome = Adversary.jam (Rng.split rng) net ~budget ~strategy in
          Format.printf " %13.0f%%"
            (100.
            *. float_of_int outcome.reachable_after
            /. float_of_int (Stdlib.max 1 outcome.reachable_before)))
        red_strategies;
      Format.printf "@.")
    blue_designs;

  Format.printf
    "@.(cells: reachable pairs surviving a %d-slot jamming campaign)@.@."
    budget;

  (* Where is a schedule actually fragile?  Count unique foremost
     journeys: a pair with exactly one optimal route loses its optimum
     to a single well-placed jam. *)
  let net = Design.realise (Rng.split rng) g ~a (Design.Hybrid 2) in
  let fragile = ref 0 and pairs = ref 0 in
  for s = 0 to n - 1 do
    let counts = Counting.foremost_journeys net s in
    for t = 0 to n - 1 do
      if t <> s && counts.(t) > 0 then begin
        incr pairs;
        if counts.(t) = 1 then incr fragile
      end
    done
  done;
  Format.printf
    "hybrid fragility audit: %d of %d reachable pairs have a UNIQUE \
     foremost journey@."
    !fragile !pairs;
  Format.printf
    "(each is one well-aimed jam away from a slower route — though not \
     from disconnection: the backbone still guarantees SOME journey)@."
