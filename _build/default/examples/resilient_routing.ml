(* Resilient routing: how many independent copies of a message can a
   random temporal network carry?

   A dispatcher wants to send k copies of a message along journeys that
   share no transmission opportunity (no time edge), so that jamming any
   single opportunity loses at most one copy.  Max-flow on the
   time-expanded graph answers this exactly.  The example also replays
   the classic temporal surprise: unlike static networks, the minimum
   number of vertices that must be captured to stop ALL routes can
   exceed the number of vertex-disjoint routes (Menger's theorem fails
   in time — Kempe, Kleinberg & Kumar 2000).

   Run with: dune exec examples/resilient_routing.exe *)

open Temporal
module Rng = Prng.Rng

let () =
  let rng = Rng.create 77 in
  let n = 20 in
  let g = Sgraph.Gen.clique Directed n in

  Format.printf "hostile clique, n = %d, one random availability per link@.@." n;
  Format.printf "%4s  %22s  %14s@." "r" "disjoint copies (0->9)" "ceiling r(n-1)";
  List.iter
    (fun r ->
      let net = Assignment.uniform_multi (Rng.split rng) g ~a:n ~r in
      let copies = Disjoint.max_edge_disjoint net ~s:0 ~t:9 in
      Format.printf "%4d  %22d  %14d@." r copies (r * (n - 1)))
    [ 1; 2; 4; 8 ];

  Format.printf
    "@.even a single random moment per link sustains dozens of \
     time-edge-disjoint routes: capacity, like the diameter, survives \
     the hostility.@.@.";

  (* The Menger gap. *)
  let net, s, t = Disjoint.menger_gap_example () in
  Format.printf "--- the temporal Menger gap (6-vertex instance) ---@.";
  Format.printf "%s@." (Serial.to_string net);
  Format.printf "max vertex-disjoint journeys %d -> %d : %d@." s t
    (Disjoint.max_vertex_disjoint_exhaustive net ~s ~t);
  Format.printf "min vertices to cut all journeys    : %d@."
    (Disjoint.min_vertex_separator_exhaustive net ~s ~t);
  Format.printf
    "@.static graphs would force these to be equal (Menger); in temporal \
     graphs the attacker needs MORE vertices than the router can use — \
     every pair of journeys here collides somewhere, yet no single vertex \
     lies on all of them.@.@.";
  Format.printf "Graphviz source of the instance (dot -Tpdf):@.%s@."
    (Serial.to_dot ~name:"menger_gap" net)
