(* When should the message leave?  Journey timing in a random temporal
   network.

   The hostile-clique story asks how *early* a message can land
   (foremost journeys).  A sender with a choice also cares how *late* it
   can wait (reverse-foremost), how *briefly* the message is in transit
   and interceptable (fastest), and through how *few* exposed links it
   travels (shortest).  This example walks one randomly-labelled network
   through all four questions plus the full arrival profile.

   Run with: dune exec examples/message_timing.exe *)

open Temporal
module Rng = Prng.Rng

let () =
  let rng = Rng.create 4242 in
  (* A sparse courier network: a random connected G(n,p). *)
  let n = 24 in
  let rec connected_graph () =
    let g = Sgraph.Gen.gnp rng ~n ~p:(2.5 *. log (float_of_int n) /. float_of_int n) in
    if Sgraph.Components.is_connected g then g else connected_graph ()
  in
  let g = connected_graph () in
  let net = Assignment.uniform_multi rng g ~a:n ~r:3 in
  let s = 0 and t = n - 1 in
  Format.printf "courier network: n=%d, m=%d, 3 random availability times per \
                 link on {1..%d}@.@." n (Sgraph.Graph.m g) n;

  (* 1. Earliest possible arrival. *)
  let fore = Foremost.run net s in
  (match (Foremost.distance fore t, Foremost.journey_to net fore t) with
  | Some d, Some j ->
    Format.printf "foremost   : arrives at %d@.  %a@.@." d Journey.pp j
  | _ -> Format.printf "no journey at all from %d to %d@." s t);

  (* 2. Latest viable departure. *)
  let rev = Reverse_foremost.run net t in
  (match Reverse_foremost.latest_departure rev s with
  | Some d ->
    Format.printf "reverse    : can wait until %d and still make it@." d
  | None -> ());
  (match Reverse_foremost.journey_from net rev s with
  | Some j -> Format.printf "  %a@.@." Journey.pp j
  | None -> ());

  (* 3. Minimum time in flight. *)
  let fast = Fastest.run net s in
  (match (Fastest.duration fast t, Fastest.window fast t) with
  | Some d, Some (dep, arr) ->
    Format.printf
      "fastest    : %d step(s) in transit (depart %d, arrive %d)@.@." d dep arr
  | _ -> ());

  (* 4. Fewest link exposures. *)
  let short = Shortest.run net s in
  (match (Shortest.hops short t, Shortest.arrival_at_best_hops short t) with
  | Some h, Some arr ->
    Format.printf "shortest   : %d hop(s), arriving at %d@.@." h arr
  | _ -> ());

  (* 5. The whole departure-time trade-off. *)
  let profile = Profile.compute net ~source:s ~target:t in
  Format.printf "profile    : %a@.@." Profile.pp profile;
  (match Profile.latest_useful_departure profile with
  | Some d ->
    Format.printf
      "=> any departure after time %d strands the message; the courier's \
       slack is %d step(s).@."
      d (d - 1)
  | None -> ());

  (* 6. Who would be the best originator overall? *)
  let best, time = Centrality.best_broadcaster net in
  Format.printf
    "@.best broadcast origin: vertex %d floods everyone by time %s@." best
    (if time = max_int then "-" else string_of_int time)
