examples/hostile_clique.ml: Array Assignment Expansion Flooding Format Label Prng Sgraph Stats Temporal Tgraph
