examples/hostile_clique.mli:
