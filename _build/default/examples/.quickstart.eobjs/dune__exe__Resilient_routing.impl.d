examples/resilient_routing.ml: Assignment Disjoint Format List Prng Serial Sgraph Temporal
