examples/red_team_schedule.ml: Adversary Array Counting Design Format List Prng Sgraph Stdlib Temporal Tgraph
