examples/containment_planning.mli:
