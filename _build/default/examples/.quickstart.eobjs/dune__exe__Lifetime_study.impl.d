examples/lifetime_study.ml: Assignment Distance Format Lifetime List Prng Sgraph Stats Temporal
