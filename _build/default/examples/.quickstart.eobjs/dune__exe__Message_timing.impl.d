examples/message_timing.ml: Assignment Centrality Fastest Foremost Format Journey Prng Profile Reverse_foremost Sgraph Shortest Temporal
