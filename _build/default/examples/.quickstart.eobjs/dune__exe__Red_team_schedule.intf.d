examples/red_team_schedule.mli:
