examples/availability_design.ml: Format List Opt Por Prng Reachability Sgraph Temporal Tgraph
