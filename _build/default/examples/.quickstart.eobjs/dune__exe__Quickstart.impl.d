examples/quickstart.ml: Array Assignment Distance Foremost Format Journey Label List Option Prng Reachability Sgraph Temporal Tgraph
