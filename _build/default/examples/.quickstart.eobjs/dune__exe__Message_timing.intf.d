examples/message_timing.mli:
