examples/availability_design.mli:
