examples/lifetime_study.mli:
