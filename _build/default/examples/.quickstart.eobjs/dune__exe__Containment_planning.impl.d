examples/containment_planning.ml: Array Assignment Centrality Format List Printf Prng Sgraph String Tcc Temporal
