examples/quickstart.mli:
