(* Quickstart: build a temporal network by hand, ask the core questions.

   Run with: dune exec examples/quickstart.exe *)

open Temporal
module Graph = Sgraph.Graph

let () =
  (* A 5-vertex undirected graph:

        0 --- 1 --- 2
         \    |    /
          \   3   /
           \  |  /
              4                                                       *)
  let g =
    Graph.create Undirected ~n:5
      [ (0, 1); (1, 2); (1, 3); (0, 4); (3, 4); (2, 4) ]
  in
  (* Attach availability times: each edge is usable only at the listed
     moments (Definition 1). *)
  let labels =
    [
      ((0, 1), [ 2; 7 ]);
      ((1, 2), [ 5 ]);
      ((1, 3), [ 3; 6 ]);
      ((0, 4), [ 1 ]);
      ((3, 4), [ 4 ]);
      ((2, 4), [ 2; 8 ]);
    ]
  in
  let label_array = Array.make (Graph.m g) Label.empty in
  List.iter
    (fun ((u, v), times) ->
      match Graph.find_edge g u v with
      | Some e -> label_array.(e) <- Label.of_list times
      | None -> assert false)
    labels;
  let net = Tgraph.create g ~lifetime:8 label_array in
  Format.printf "network: %a@.@." Tgraph.pp net;

  (* 1. Foremost journeys: how early can vertex 0 reach everyone? *)
  let res = Foremost.run net 0 in
  for v = 0 to 4 do
    match Foremost.distance res v with
    | Some d ->
      let journey = Option.get (Foremost.journey_to net res v) in
      Format.printf "delta(0, %d) = %d   via %a@." v d Journey.pp journey
    | None -> Format.printf "delta(0, %d) = unreachable@." v
  done;

  (* 2. Temporal diameter of this instance (max over all ordered pairs). *)
  (match Distance.instance_diameter net with
  | Some d -> Format.printf "@.instance temporal diameter: %d@." d
  | None -> Format.printf "@.some pair has no journey@.");

  (* 3. Does the labelling preserve reachability (Definition 6)? *)
  Format.printf "Treach: %b@." (Reachability.treach net);

  (* 4. Now the random model: one uniform label per edge (UNI-CASE). *)
  let rng = Prng.Rng.create 42 in
  let random_net = Assignment.uniform_single rng g ~a:5 in
  Format.printf "@.random instance (UNI-CASE, a = 5):@.";
  Graph.iter_edges g (fun e u v ->
      Format.printf "  edge {%d,%d} available at %a@." u v Label.pp
        (Tgraph.labels random_net e));
  Format.printf "Treach of this random instance: %b@."
    (Reachability.treach random_net)
