bin/family.ml: Cmdliner Fmt Sim
