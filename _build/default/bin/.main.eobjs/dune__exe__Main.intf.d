bin/main.mli:
