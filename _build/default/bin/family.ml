(* Thin CLI adapter over Sim.Family: adds the cmdliner converter. *)

include Sim.Family

let conv = Cmdliner.Arg.conv (of_string, fun ppf f -> Fmt.string ppf (to_string f))
