(* `ephemeral` — command-line interface to the reproduction.

   `ephemeral run` regenerates the experiment tables; the remaining
   commands are ad-hoc probes into the library (single instances,
   journeys, expansion runs) useful for exploration and debugging. *)

open Cmdliner
module Rng = Prng.Rng
open Temporal

(* ------------------------------------------------------------------ *)
(* Common options *)

let seed_term =
  let doc = "Random seed (experiments are deterministic given the seed)." in
  Arg.(value & opt int Sim.Experiments.default_seed & info [ "seed" ] ~doc)

let quick_term =
  let doc = "Reduced scale: smaller sizes and fewer trials." in
  Arg.(value & flag & info [ "quick" ] ~doc)

let n_term =
  let doc = "Number of vertices." in
  Arg.(value & opt int 64 & info [ "n" ] ~doc)

let family_term =
  let doc = "Graph family: clique, uclique, star, path, cycle, grid, \
             hypercube, btree, wheel, rtree, gnp:<c>." in
  Arg.(value & opt Family.conv Family.Clique_directed & info [ "graph"; "g" ] ~doc)

let trials_term =
  let doc = "Number of Monte-Carlo trials." in
  Arg.(value & opt int 30 & info [ "trials" ] ~doc)

let lifetime_term =
  let doc = "Lifetime a (default: the vertex count, the normalized case)." in
  Arg.(value & opt (some int) None & info [ "a"; "lifetime" ] ~doc)

let r_term =
  let doc = "Random labels per edge." in
  Arg.(value & opt int 1 & info [ "r" ] ~doc)

let jobs_term =
  let doc =
    "Worker domains for trial execution (default: $(b,EPHEMERAL_JOBS) or \
     the recommended domain count). Output is byte-identical at every \
     job count."
  in
  Arg.(value & opt (some int) None & info [ "jobs"; "j" ] ~docv:"N" ~doc)

let backend_term =
  let doc =
    "Temporal-instance representation: $(b,dense) (materialized label \
     arrays and a full counting-sorted time-edge stream) or $(b,implicit) \
     (labels derived on demand from one 64-bit seed behind a lazy prefix \
     stream — O(n) working set on the normalized clique instead of \
     O(n^2)). Both realise label-identical instances, so every table is \
     byte-identical under either; the choice keys the result store and \
     is recorded in the run ledger."
  in
  let choices =
    List.map (fun b -> (Sim.Backend.to_string b, b)) Sim.Backend.all
  in
  Arg.(
    value
    & opt (enum choices) Sim.Backend.Dense
    & info [ "backend" ] ~docv:"BACKEND" ~doc)

let lifetime_of n = function Some a -> a | None -> n

(* ------------------------------------------------------------------ *)
(* Observability options *)

let metrics_term =
  let doc =
    "Collect telemetry and print an end-of-run summary: one row per span \
     (count, total/mean wall ms, GC words) plus every registered metric."
  in
  Arg.(value & flag & info [ "metrics" ] ~doc)

let trace_term =
  let doc =
    "Write every completed span as one JSON object per line to $(docv) \
     (schema v2 fields: name, domain, depth, start_ns, dur_ns, \
     minor_words, major_words). Analyse with $(b,ephemeral trace)."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let report_term =
  let doc =
    "Write a machine-readable run ledger (one JSON document: code \
     fingerprint, seed, jobs, metric and span snapshots) atomically to \
     $(docv). The ledger's $(b,deterministic) section is byte-identical \
     at any --jobs."
  in
  Arg.(value & opt (some string) None & info [ "report" ] ~docv:"FILE" ~doc)

(* Returns the teardown to run after the instrumented work: closes the
   trace sink and prints the summary, in that order.  The sink close
   is also registered as a shutdown hook, so SIGINT/SIGTERM publish
   the partial trace (close renames the tmp file into place and is
   idempotent — whichever of the hook and the teardown runs first
   wins). *)
let setup_obs ~metrics ~trace =
  let sink =
    Option.map
      (fun path ->
        let sink = Obs.Sink.open_jsonl path in
        Obs.Sink.attach sink;
        Fault.Shutdown.on_shutdown (fun () -> Obs.Sink.close sink);
        sink)
      trace
  in
  if metrics || Option.is_some sink then Obs.Control.set_enabled true;
  fun () ->
    Option.iter Obs.Sink.close sink;
    if metrics then Obs.Export.print_summary ()

(* ------------------------------------------------------------------ *)
(* Fault-injection and supervision options *)

let fault_spec_term =
  let doc =
    "Arm a deterministic fault plan: comma-separated key=value over seed, \
     trial, fatal, delay, delay-ms, io, torn, poison (e.g. \
     $(b,seed=7,trial=0.05,io=0.05,torn=0.3)). Faults derive from the plan \
     seed alone, so a plan injects identically at any --jobs."
  in
  Arg.(value & opt (some string) None & info [ "fault-spec" ] ~docv:"SPEC" ~doc)

let max_retries_term =
  let doc =
    "Retry a failed trial up to $(docv) times; each attempt replays the \
     trial's own RNG stream, so output stays byte-identical to a fault-free \
     run."
  in
  Arg.(value & opt int 0 & info [ "max-retries" ] ~docv:"N" ~doc)

let trial_timeout_term =
  let doc =
    "Discard and retry any trial attempt that takes longer than $(docv) \
     seconds (checked after the attempt; OCaml code cannot be preempted)."
  in
  Arg.(value & opt (some float) None & info [ "trial-timeout" ] ~docv:"SECS" ~doc)

let run_deadline_term =
  let doc =
    "After $(docv) seconds of run time, stop starting trial attempts; \
     remaining trials fail (with $(b,--keep-going): are dropped)."
  in
  Arg.(value & opt (some float) None & info [ "run-deadline" ] ~docv:"SECS" ~doc)

let keep_going_term =
  let doc =
    "Degrade instead of aborting when a trial exhausts its retries: finish \
     on the surviving trials, widen bootstrap CIs, flag every table and \
     CSV as degraded, and still exit 0."
  in
  Arg.(value & flag & info [ "keep-going" ] ~doc)

(* Parse/arm the plan and install the supervision config.  [Error]
   means a malformed spec: report and exit non-zero before any work. *)
let setup_faults ~fault_spec ~max_retries ~trial_timeout ~run_deadline ~keep_going
    =
  match Option.map Fault.Spec.parse fault_spec with
  | Some (Error msg) -> Error (Printf.sprintf "bad --fault-spec: %s" msg)
  | (None | Some (Ok _)) as parsed ->
    (match parsed with
    | Some (Ok plan) -> Fault.Inject.arm plan
    | _ -> Fault.Inject.disarm ());
    Sim.Supervise.configure
      { Sim.Supervise.max_retries; trial_timeout; run_deadline; keep_going };
    Ok ()

(* ------------------------------------------------------------------ *)
(* Store options *)

let store_dir_term =
  let doc = "Result store directory." in
  Arg.(value & opt string Store.Objects.default_dir
       & info [ "store" ] ~docv:"DIR" ~doc)

let cache_term =
  let doc =
    "Serve experiment outcomes from the result store when a cached copy \
     matches (same id, seed, scale and code fingerprint), and publish \
     fresh outcomes into it. Cached output is byte-identical to a fresh \
     run."
  in
  Arg.(value & flag & info [ "cache" ] ~doc)

let resume_term =
  let doc =
    "Checkpoint finished trial chunks under the store directory and, on \
     restart after an interruption, load them instead of recomputing. A \
     resumed run is byte-identical to an uninterrupted one."
  in
  Arg.(value & flag & info [ "resume" ] ~doc)

(* ------------------------------------------------------------------ *)
(* run / list *)

let run_cmd =
  let ids_term =
    let doc = "Experiment ids to run (default: all). E.g. e1 e4." in
    Arg.(value & pos_all string [] & info [] ~docv:"ID" ~doc)
  in
  let csv_term =
    let doc = "Also write each table as CSV into $(docv)." in
    Arg.(value & opt (some string) None & info [ "csv" ] ~docv:"DIR" ~doc)
  in
  let md_term =
    let doc = "Also write each experiment as Markdown into $(docv)." in
    Arg.(value & opt (some string) None & info [ "md" ] ~docv:"DIR" ~doc)
  in
  let run ids quick seed backend csv md metrics trace report jobs cache
      store_dir resume fault_spec max_retries trial_timeout run_deadline
      keep_going =
    Option.iter Exec.Pool.set_jobs jobs;
    Sim.Backend.set backend;
    Fault.Shutdown.install ();
    let selected =
      match ids with
      | [] -> Ok Sim.Experiments.all
      | ids ->
        let rec resolve acc = function
          | [] -> Ok (List.rev acc)
          | id :: rest -> (
            match Sim.Experiments.find id with
            | Some e -> resolve (e :: acc) rest
            | None -> Error (Printf.sprintf "unknown experiment id %S" id))
        in
        resolve [] ids
    in
    match selected with
    | Error msg ->
      prerr_endline msg;
      1
    | Ok experiments ->
    match
      setup_faults ~fault_spec ~max_retries ~trial_timeout ~run_deadline
        ~keep_going
    with
    | Error msg ->
      prerr_endline msg;
      1
    | Ok () ->
    match setup_obs ~metrics ~trace with
    | exception Sys_error msg ->
      Printf.eprintf "cannot open trace file: %s\n" msg;
      1
    | teardown ->
      (* The ledger consumes the metrics/span snapshots, so --report
         implies collection even without --metrics/--trace. *)
      if report <> None then Obs.Control.set_enabled true;
      let t0 = Obs.Clock.now () in
      let store = if cache then Some (Store.Objects.open_ ~dir:store_dir) else None in
      let run_one exp =
        let cached =
          match store with
          | Some s -> Sim.Cache.get s exp ~seed ~quick
          | None -> None
        in
        let outcome =
          match cached with
          | Some outcome ->
            (* Cache hit: the stored outcome renders byte-identically
               to a fresh run, with zero trials executed. *)
            Sim.Report.print_outcome exp outcome;
            outcome
          | None ->
            let run_key = Sim.Cache.key exp ~seed ~quick in
            if resume then Store.Checkpoint.activate ~dir:store_dir ~run_key;
            let outcome =
              Fun.protect ~finally:Store.Checkpoint.deactivate (fun () ->
                  Sim.Report.run_and_print ~quick ~seed exp)
            in
            (* The outcome is complete (and, with --cache, published),
               so its chunks have served their purpose. *)
            if resume then Store.Checkpoint.clean ~dir:store_dir ~run_key;
            (* A degraded outcome holds partial results: never publish
               it — a later hit could not be told from a clean run. *)
            if not (Sim.Supervise.degraded ()) then
              Option.iter
                (fun s -> Sim.Cache.put s exp ~seed ~quick outcome)
                store;
            outcome
        in
        Option.iter (fun dir -> ignore (Sim.Report.save_csv ~dir exp outcome)) csv;
        Option.iter
          (fun dir -> ignore (Sim.Report.save_markdown ~dir exp outcome))
          md
      in
      let status =
        (* Without --keep-going, a trial that exhausts its retries (or
           hits the run deadline) aborts the whole command, non-zero. *)
        try
          List.iter run_one experiments;
          0
        with Sim.Supervise.Trial_failed f ->
          Printf.eprintf
            "error: trial %d failed after %d attempt%s: %s\n\
             (use --max-retries to retry transient faults, --keep-going to \
             finish on partial results)\n"
            f.trial f.attempts
            (if f.attempts = 1 then "" else "s")
            f.message;
          1
      in
      let report_status =
        match report with
        | None -> 0
        | Some path -> (
          let run_status =
            if status <> 0 then "failed"
            else if Sim.Supervise.degraded () then "degraded"
            else "ok"
          in
          match
            Sim.Ledger.write ~path ~seed ~quick ~backend:(Sim.Backend.tag ())
              ~jobs:(Exec.Config.jobs ())
              ~experiments:
                (List.map (fun (e : Sim.Experiments.t) -> e.id) experiments)
              ~status:run_status
              ~wall_ns:(Obs.Clock.elapsed_ns ~since:t0)
          with
          | () -> 0
          | exception Sys_error msg ->
            Printf.eprintf "cannot write report: %s\n" msg;
            1)
      in
      teardown ();
      Stdlib.max status report_status
  in
  let doc = "Run reproduction experiments and print their tables." in
  Cmd.v (Cmd.info "run" ~doc)
    Term.(const run $ ids_term $ quick_term $ seed_term $ backend_term
          $ csv_term $ md_term
          $ metrics_term $ trace_term $ report_term $ jobs_term $ cache_term
          $ store_dir_term $ resume_term $ fault_spec_term $ max_retries_term
          $ trial_timeout_term $ run_deadline_term $ keep_going_term)

(* ------------------------------------------------------------------ *)
(* chaos: soak an experiment under seed-varied fault plans *)

let chaos_cmd =
  let id_term =
    let doc = "Experiment id to soak." in
    Arg.(value & pos 0 string "e1" & info [] ~docv:"ID" ~doc)
  in
  let rounds_term =
    let doc = "Fault-injected rounds to run (each with a distinct plan seed)." in
    Arg.(value & opt int 5 & info [ "rounds" ] ~docv:"N" ~doc)
  in
  let chaos_spec_term =
    let doc =
      "Base fault plan; each round bumps its seed. Plans with fatal=0 must \
       reproduce the fault-free bytes under retries; fatal faults require \
       $(b,--keep-going) and must surface as degraded tables."
    in
    Arg.(value
         & opt string "trial=0.05,delay=0.02,delay-ms=1,io=0.05,torn=0.3,poison=0.2"
         & info [ "fault-spec" ] ~docv:"SPEC" ~doc)
  in
  let chaos_retries_term =
    let doc = "Retry budget per trial during the soak." in
    Arg.(value & opt int 5 & info [ "max-retries" ] ~docv:"N" ~doc)
  in
  let contains haystack needle =
    let nl = String.length needle and hl = String.length haystack in
    let rec scan i =
      i + nl <= hl && (String.sub haystack i nl = needle || scan (i + 1))
    in
    nl = 0 || scan 0
  in
  let serve_flag_term =
    let doc =
      "Soak the live query server instead of an experiment: fork \
       $(b,ephemeral serve) with the fault plan armed, drive it through \
       correctness bursts, malformed frames, connection drops, slow-loris \
       reads, overload and SIGTERM mid-burst, and require every reply to \
       be oracle-correct or a clean typed error, a drain exit of 0, an \
       atomically published ledger, and an admission-queue peak within \
       bound."
    in
    Arg.(value & flag & info [ "serve" ] ~doc)
  in
  let serve_dir_term =
    let doc = "Scratch directory for the --serve soak (socket, manifest, \
               store, ledger)." in
    Arg.(value & opt (some string) None & info [ "dir" ] ~docv:"DIR" ~doc)
  in
  let soak_shards_term =
    let doc =
      "With $(b,--serve): run the child as a sharded router over $(docv) \
       shard workers and arm the shard-kill fault, so crash-respawn is \
       soaked under live traffic.  0 (the default) soaks the \
       single-process server."
    in
    Arg.(value & opt int 0 & info [ "shards" ] ~docv:"N" ~doc)
  in
  let run_serve_soak ~quick ~seed ~jobs ~spec ~serve_dir ~backend ~shards =
    let dir =
      match serve_dir with
      | Some d -> d
      | None ->
        Filename.concat
          (Filename.get_temp_dir_name ())
          (Printf.sprintf "ephemeral-soak-%d" (Unix.getpid ()))
    in
    let jobs = Option.value jobs ~default:2 in
    match
      Serve.Soak.run ~exe:Sys.executable_name ~dir ~seed ~quick
        ~fault_spec:(Some spec) ~backend ~jobs ~shards
    with
    | Error m ->
      Printf.eprintf "chaos --serve: %s\n" m;
      1
    | Ok o ->
      Printf.printf "chaos --serve: %d checks, %d violation%s\n" o.Serve.Soak.checks
        (List.length o.Serve.Soak.violations)
        (if List.length o.Serve.Soak.violations = 1 then "" else "s");
      Printf.printf "  %d queries, p50 %.2f ms, p99 %.2f ms, %.0f q/s\n"
        o.Serve.Soak.queries o.Serve.Soak.p50_ms o.Serve.Soak.p99_ms
        o.Serve.Soak.qps;
      Printf.printf "  server exit %s, ledger %s\n"
        (match o.Serve.Soak.server_exit with
        | Some c -> string_of_int c
        | None -> "hung (killed)")
        (if o.Serve.Soak.ledger_ok then "published" else "MISSING");
      List.iter
        (fun v -> Printf.printf "  FAIL %s\n" v)
        o.Serve.Soak.violations;
      if o.Serve.Soak.violations = [] then begin
        print_endline "chaos serve soak passed";
        0
      end
      else 1
  in
  let run id quick seed jobs rounds spec retries keep_going serve_mode
      serve_dir backend shards =
    if serve_mode then
      run_serve_soak ~quick ~seed ~jobs ~spec ~serve_dir ~backend ~shards
    else begin
    Option.iter Exec.Pool.set_jobs jobs;
    Fault.Shutdown.install ();
    match Sim.Experiments.find id with
    | None ->
      Printf.eprintf "unknown experiment id %S\n" id;
      1
    | Some exp -> (
      match Fault.Spec.parse spec with
      | Error msg ->
        Printf.eprintf "bad --fault-spec: %s\n" msg;
        1
      | Ok base ->
        (* Fault-free reference bytes, supervision fully off. *)
        Fault.Inject.disarm ();
        Sim.Supervise.configure Sim.Supervise.default;
        let baseline = Sim.Outcome.render (exp.run ~quick ~seed) in
        let identical = ref 0
        and degraded_rounds = ref 0
        and aborted = ref 0
        and bad = ref [] in
        for round = 1 to rounds do
          let plan = { base with Fault.Plan.seed = Int64.add base.seed (Int64.of_int round) } in
          Fault.Inject.arm plan;
          Sim.Supervise.configure
            { Sim.Supervise.default with max_retries = retries; keep_going };
          (match exp.run ~quick ~seed with
          | outcome ->
            let rendered =
              Sim.Outcome.render (Sim.Report.annotate_degraded outcome)
            in
            if not (Sim.Supervise.degraded ()) then begin
              if rendered = baseline then incr identical
              else
                bad :=
                  Printf.sprintf
                    "round %d (plan %s): output differs from the fault-free \
                     run despite all trials succeeding"
                    round (Fault.Spec.to_string plan)
                  :: !bad
            end
            else begin
              (* Partial results are acceptable only when asked for,
                 and must be visibly flagged. *)
              incr degraded_rounds;
              if not keep_going then
                bad :=
                  Printf.sprintf
                    "round %d (plan %s): degraded without --keep-going" round
                    (Fault.Spec.to_string plan)
                  :: !bad
              else if not (contains rendered "degraded") then
                bad :=
                  Printf.sprintf
                    "round %d (plan %s): partial results not flagged degraded"
                    round (Fault.Spec.to_string plan)
                  :: !bad
            end
          | exception Sim.Supervise.Trial_failed f ->
            incr aborted;
            if base.Fault.Plan.fatal = 0. then
              bad :=
                Printf.sprintf
                  "round %d (plan %s): aborted on trial %d (%s) though every \
                   injected fault was retryable"
                  round (Fault.Spec.to_string plan) f.trial f.message
                :: !bad)
        done;
        Fault.Inject.disarm ();
        Sim.Supervise.configure Sim.Supervise.default;
        let count name = Obs.Metrics.count (Obs.Metrics.counter name) in
        Printf.printf
          "chaos %s: %d round%s — %d byte-identical, %d degraded, %d aborted\n"
          exp.id rounds
          (if rounds = 1 then "" else "s")
          !identical !degraded_rounds !aborted;
        Printf.printf
          "  faults injected %d (trial %d, delay %d, io %d, poison %d)\n"
          (count "faults.injected") (count "faults.trial") (count "faults.delay")
          (count "faults.io") (count "faults.poison");
        Printf.printf "  trials retried %d, failed %d; store io retries %d\n"
          (count "trials.retried") (count "trials.failed")
          (count "store.io_retries");
        List.iter (fun msg -> Printf.printf "  FAIL %s\n" msg) (List.rev !bad);
        if !bad = [] then begin
          print_endline "chaos soak passed";
          0
        end
        else 1)
    end
  in
  let doc =
    "Soak an experiment under deterministic fault injection: repeated runs \
     under seed-varied plans must stay byte-identical to the fault-free run \
     (retryable faults) or finish flagged degraded (--keep-going with fatal \
     faults). With $(b,--serve), soak the live query server instead. \
     Non-zero exit on any unflagged divergence."
  in
  Cmd.v (Cmd.info "chaos" ~doc)
    Term.(const run $ id_term $ quick_term $ seed_term $ jobs_term
          $ rounds_term $ chaos_spec_term $ chaos_retries_term
          $ keep_going_term $ serve_flag_term $ serve_dir_term $ backend_term
          $ soak_shards_term)

(* ------------------------------------------------------------------ *)
(* serve / query: the temporal-reachability service and its client *)

let serve_socket_term =
  let doc =
    "Listening address: a Unix-socket path, or $(b,tcp:HOST:PORT)."
  in
  Arg.(value & opt string "ephemeral.sock" & info [ "socket" ] ~docv:"ADDR" ~doc)

let serve_cmd =
  let manifest_term =
    let doc =
      "Corpus manifest: one instance spec per line \
       ($(b,id=clq,family=clique,n=1024,a=1024,r=1,seed=7)); \
       $(b,#) comments and blank lines are skipped. An instance that \
       fails to load is kept degraded (queries answer Unavailable) while \
       the rest serve."
    in
    Arg.(value & opt (some string) None & info [ "manifest" ] ~docv:"FILE" ~doc)
  in
  let instance_term =
    let doc = "Inline instance spec (repeatable), appended to the manifest." in
    Arg.(value & opt_all string [] & info [ "instance" ] ~docv:"SPEC" ~doc)
  in
  let queue_max_term =
    let doc =
      "Admission-queue bound: a submit against a full queue is shed with \
       a RESOURCE_EXHAUSTED reply, never queued — memory stays bounded \
       under any load."
    in
    Arg.(value & opt int Serve.Engine.default_config.Serve.Engine.queue_max
         & info [ "queue-max" ] ~docv:"N" ~doc)
  in
  let read_timeout_term =
    let doc =
      "Per-frame read deadline in seconds: a peer that trickles bytes \
       (slow loris) holds a connection at most this long."
    in
    Arg.(value & opt float 10. & info [ "read-timeout" ] ~docv:"SECS" ~doc)
  in
  let window_term =
    let doc =
      "Dispatcher coalescing window in milliseconds: wait this long after \
       the first query of a cycle so concurrent clients share one batched \
       sweep."
    in
    Arg.(value & opt float 0. & info [ "batch-window-ms" ] ~docv:"MS" ~doc)
  in
  let cache_rows_term =
    let doc = "In-memory arrival-row cache size (rows; 0 disables)." in
    Arg.(value & opt int 4096 & info [ "cache-rows" ] ~docv:"N" ~doc)
  in
  let serve_store_term =
    let doc =
      "Persist arrival rows in a result store at $(docv): hits skip the \
       sweep; IO is retried with deterministic jitter under a wall-time \
       budget and degrades to recompute."
    in
    Arg.(value & opt (some string) None & info [ "store" ] ~docv:"DIR" ~doc)
  in
  let shards_term =
    let doc =
      "Shard the corpus over $(docv) supervised worker processes, each \
       owning a consistent-hash partition of the manifest with its own \
       Exec pool, row cache, and store handle; this process routes frames \
       by instance id, respawns crashed shards with bounded backoff, and \
       merges per-shard ledgers on drain. 0 = classic single-process \
       serve. Requires a Unix-socket $(b,--socket)."
    in
    Arg.(value & opt int 0 & info [ "shards" ] ~docv:"N" ~doc)
  in
  let shard_index_term =
    let doc =
      "Internal: run as shard $(docv) of $(b,--shards), serving only the \
       manifest lines this shard owns. Spawned by the router — not for \
       direct use."
    in
    Arg.(value & opt (some int) None
         & info [ "shard-index" ] ~docv:"K" ~doc)
  in
  let run socket manifest instances backend jobs queue_max read_timeout
      window_ms cache_rows store_dir report fault_spec metrics trace seed
      shards shard_index =
    Option.iter Exec.Pool.set_jobs jobs;
    Sim.Backend.set backend;
    match Option.map Fault.Spec.parse fault_spec with
    | Some (Error msg) ->
      Printf.eprintf "bad --fault-spec: %s\n" msg;
      1
    | parsed -> (
      let plan =
        match parsed with Some (Ok plan) -> plan | _ -> Fault.Plan.default
      in
      let as_router = shards > 0 && shard_index = None in
      (* Injection arms where the work runs: in the single process, or
         in each shard (the spec rides the respawn argv).  The router
         itself only rolls the shard-kill site from the plan value —
         arming it would let io faults hit the merged-ledger write. *)
      if not as_router then
        if Fault.Plan.active plan then Fault.Inject.arm plan
        else Fault.Inject.disarm ();
      match Serve.Server.parse_address socket with
      | Error m ->
        Printf.eprintf "bad --socket: %s\n" m;
        1
      | Ok address -> (
        let manifest_lines =
          match manifest with
          | None -> Ok []
          | Some path -> (
            match Store.Fsio.read_file path with
            | None -> Error (Printf.sprintf "cannot read manifest %s" path)
            | Some body -> Ok (String.split_on_char '\n' body))
        in
        match manifest_lines with
        | Error m ->
          prerr_endline m;
          1
        | Ok lines ->
          let all_lines = lines @ instances in
          if as_router then begin
            match address with
            | Serve.Server.Tcp _ ->
              prerr_endline "--shards requires a Unix-socket --socket";
              1
            | Serve.Server.Unix_path socket_path -> (
              match Serve.Corpus.manifest_ids all_lines with
              | [] ->
                prerr_endline "no instances: pass --manifest and/or --instance";
                1
              | manifest_ids ->
                let teardown = setup_obs ~metrics ~trace in
                let shard_argv k =
                  Array.of_list
                    ([
                       Sys.executable_name;
                       "serve";
                       "--socket";
                       Serve.Shard.socket_path socket_path k;
                       "--backend";
                       Sim.Backend.to_string backend;
                       "--queue-max";
                       string_of_int queue_max;
                       "--read-timeout";
                       Printf.sprintf "%g" read_timeout;
                       "--batch-window-ms";
                       Printf.sprintf "%g" window_ms;
                       "--cache-rows";
                       string_of_int cache_rows;
                       "--seed";
                       string_of_int seed;
                       "--shards";
                       string_of_int shards;
                       "--shard-index";
                       string_of_int k;
                     ]
                    @ (match manifest with
                      | Some p -> [ "--manifest"; p ]
                      | None -> [])
                    @ List.concat_map (fun s -> [ "--instance"; s ]) instances
                    @ (match jobs with
                      | Some j -> [ "--jobs"; string_of_int j ]
                      | None -> [])
                    @ (match store_dir with
                      | Some d -> [ "--store"; d ]
                      | None -> [])
                    @ (match report with
                      | Some r -> [ "--report"; Serve.Shard.ledger_path r k ]
                      | None -> [])
                    @
                    match fault_spec with
                    | Some f -> [ "--fault-spec"; f ]
                    | None -> [])
                in
                let config =
                  {
                    Serve.Router.address;
                    shards;
                    shard_argv;
                    shard_socket =
                      (fun k -> Serve.Shard.socket_path socket_path k);
                    read_timeout_s = read_timeout;
                    shard_call_timeout_s = 30.;
                    max_conns = 64;
                    queue_max;
                    ledger_path = report;
                    install_signals = true;
                    announce = Some stdout;
                    manifest_ids;
                    backend;
                    shard_ready_timeout_s = 30.;
                    (* Generous: the chaos soak's shard-kill fault can
                       land several early-uptime kills in a row, each of
                       which counts against this budget. *)
                    max_respawns = 20;
                    fault = plan;
                  }
                in
                let code =
                  match Serve.Router.run ~config () with
                  | Ok () -> 0
                  | Error m ->
                    prerr_endline m;
                    1
                in
                teardown ();
                code)
          end
          else begin
            let shard =
              match shard_index with
              | Some k when shards > 0 -> Some (k, shards)
              | _ -> None
            in
            let corpus = Serve.Corpus.load ?shard ~backend all_lines in
            let is_shard = shard <> None in
            match Serve.Corpus.instances corpus with
            | [] when not is_shard ->
              prerr_endline "no instances: pass --manifest and/or --instance";
              1
            | all ->
              List.iter
                (fun (i : Serve.Corpus.instance) ->
                  match i.Serve.Corpus.status with
                  | Serve.Corpus.Failed m ->
                    Printf.eprintf "instance %s failed to load: %s\n"
                      i.Serve.Corpus.spec_id m
                  | Serve.Corpus.Available _ -> ())
                all;
              (* A shard may legitimately own an empty or entirely
                 failed partition; only a whole single-process corpus
                 refuses. *)
              if (not is_shard) && not (Serve.Corpus.healthy corpus) then begin
                prerr_endline
                  "every instance failed to load; refusing to serve";
                1
              end
              else begin
                let store =
                  Option.map (fun dir -> Store.Objects.open_ ~dir) store_dir
                in
                let teardown = setup_obs ~metrics ~trace in
                let engine =
                  {
                    Serve.Engine.queue_max;
                    batch_window_s = window_ms /. 1000.;
                    cache_max = cache_rows;
                    store;
                    jitter_seed = Int64.of_int seed;
                    store_budget_s = 0.25;
                  }
                in
                let config =
                  {
                    Serve.Server.address;
                    read_timeout_s = read_timeout;
                    max_conns = 64;
                    engine;
                    ledger_path = report;
                    install_signals = true;
                    announce = (if is_shard then None else Some stdout);
                  }
                in
                Serve.Server.run ~config corpus;
                teardown ();
                0
              end
          end))
  in
  let doc =
    "Serve temporal-reachability queries (foremost, arrivals, reach, ecc) \
     over a length-prefixed binary protocol on a Unix or TCP socket. \
     Concurrent queries against one instance coalesce into word-parallel \
     batched sweeps; replies are byte-identical at any --jobs and either \
     backend. Robustness: bounded admission with load shedding, \
     per-request deadlines with cooperative cancellation, retried store \
     IO, degraded instances served as Unavailable, and a graceful \
     SIGTERM drain (stop accepting, flush in-flight, publish the ledger \
     atomically, exit 0)."
  in
  Cmd.v (Cmd.info "serve" ~doc)
    Term.(const run $ serve_socket_term $ manifest_term $ instance_term
          $ backend_term $ jobs_term $ queue_max_term $ read_timeout_term
          $ window_term $ cache_rows_term $ serve_store_term $ report_term
          $ fault_spec_term $ metrics_term $ trace_term $ seed_term
          $ shards_term $ shard_index_term)

let query_cmd =
  let script_term =
    let doc =
      "Run the commands in $(docv), one per line ($(b,#) comments \
       skipped), printing one deterministic result line each — the \
       byte-diffable scripted-session mode CI uses."
    in
    Arg.(value & opt (some string) None & info [ "script" ] ~docv:"FILE" ~doc)
  in
  let words_term =
    let doc =
      "A single command: $(b,ping) | $(b,health) | $(b,ready) | $(b,list) \
       | $(b,stats) | $(b,foremost) INST SRC TGT [DEADLINE_MS] | \
       $(b,arrivals) INST SRC | $(b,reach) INST SRC | $(b,ecc) INST SRC."
    in
    Arg.(value & pos_all string [] & info [] ~docv:"COMMAND" ~doc)
  in
  let timeout_term =
    let doc = "Per-call reply timeout in seconds." in
    Arg.(value & opt float 30. & info [ "timeout" ] ~docv:"SECS" ~doc)
  in
  let parse_command line =
    let int_arg what s =
      match int_of_string_opt s with
      | Some v -> Ok v
      | None -> Error (Printf.sprintf "%s %S is not an integer" what s)
    in
    let query ?(target = 0) ?(deadline_ms = 0) instance source =
      { Serve.Proto.instance; source; target; deadline_ms }
    in
    match
      String.split_on_char ' ' line |> List.filter (fun w -> w <> "")
    with
    | [ "ping" ] -> Ok Serve.Proto.Ping
    | [ "health" ] -> Ok Serve.Proto.Health
    | [ "ready" ] -> Ok Serve.Proto.Ready
    | [ "list" ] -> Ok Serve.Proto.List
    | [ "stats" ] -> Ok Serve.Proto.Stats
    | [ "foremost"; inst; src; tgt ] -> (
      match (int_arg "source" src, int_arg "target" tgt) with
      | Ok s, Ok t -> Ok (Serve.Proto.Foremost (query ~target:t inst s))
      | Error m, _ | _, Error m -> Error m)
    | [ "foremost"; inst; src; tgt; dl ] -> (
      match (int_arg "source" src, int_arg "target" tgt, int_arg "deadline" dl)
      with
      | Ok s, Ok t, Ok d ->
        Ok (Serve.Proto.Foremost (query ~target:t ~deadline_ms:d inst s))
      | Error m, _, _ | _, Error m, _ | _, _, Error m -> Error m)
    | [ "arrivals"; inst; src ] -> (
      match int_arg "source" src with
      | Ok s -> Ok (Serve.Proto.Arrivals (query inst s))
      | Error m -> Error m)
    | [ "reach"; inst; src ] -> (
      match int_arg "source" src with
      | Ok s -> Ok (Serve.Proto.Reach (query inst s))
      | Error m -> Error m)
    | [ "ecc"; inst; src ] -> (
      match int_arg "source" src with
      | Ok s -> Ok (Serve.Proto.Ecc (query inst s))
      | Error m -> Error m)
    | [] -> Error "empty command"
    | w :: _ -> Error (Printf.sprintf "unknown command %S" w)
  in
  let run socket script words timeout =
    match Serve.Server.parse_address socket with
    | Error m ->
      Printf.eprintf "bad --socket: %s\n" m;
      1
    | Ok address -> (
      let commands =
        match script with
        | Some path -> (
          match Store.Fsio.read_file path with
          | None -> Error (Printf.sprintf "cannot read script %s" path)
          | Some body ->
            Ok
              (String.split_on_char '\n' body
              |> List.filter (fun l ->
                     let t = String.trim l in
                     t <> "" && t.[0] <> '#')))
        | None -> (
          match words with
          | [] -> Error "no command: pass one, or --script FILE"
          | ws -> Ok [ String.concat " " ws ])
      in
      match commands with
      | Error m ->
        prerr_endline m;
        1
      | Ok commands -> (
        match Serve.Client.connect address with
        | Error m ->
          Printf.eprintf "connect %s: %s\n" socket m;
          1
        | Ok client ->
          let failed = ref false in
          List.iter
            (fun line ->
              let line = String.trim line in
              match parse_command line with
              | Error m -> Printf.printf "%s -> bad command: %s\n" line m
              | Ok req -> (
                match Serve.Client.call ~timeout_s:timeout client req with
                | Ok resp ->
                  Printf.printf "%s -> %s\n" line
                    (Serve.Proto.render_response resp)
                | Error m ->
                  failed := true;
                  Printf.printf "%s -> transport error: %s\n" line m))
            commands;
          Serve.Client.close client;
          if !failed then 1 else 0))
  in
  let doc =
    "Query a running $(b,ephemeral serve): one-shot from the command \
     line, or a scripted session with $(b,--script) whose output is \
     deterministic and byte-diffable across server job counts and \
     backends. Typed server errors render as result lines (exit 0); \
     only transport failures exit non-zero."
  in
  Cmd.v (Cmd.info "query" ~doc)
    Term.(const run $ serve_socket_term $ script_term $ words_term
          $ timeout_term)

let list_cmd =
  let run () =
    List.iter
      (fun (e : Sim.Experiments.t) ->
        Printf.printf "%-4s %-55s [%s]\n" e.id e.title e.paper_ref)
      Sim.Experiments.all;
    0
  in
  let doc = "List available experiments." in
  Cmd.v (Cmd.info "list" ~doc) Term.(const run $ const ())

(* ------------------------------------------------------------------ *)
(* diameter *)

let diameter_cmd =
  let run family n lifetime r trials seed =
    let rng = Rng.create seed in
    let g = Family.build family rng ~n in
    let a = lifetime_of (Sgraph.Graph.n g) lifetime in
    let stats = Sim.Estimators.temporal_diameter rng g ~a ~r ~trials in
    Printf.printf
      "graph=%s n=%d m=%d a=%d r=%d trials=%d\n"
      (Family.to_string family) (Sgraph.Graph.n g) (Sgraph.Graph.m g) a r trials;
    Format.printf "temporal diameter: %a@." Stats.Summary.pp stats.summary;
    Printf.printf "  disconnected instances: %d / %d\n" stats.disconnected trials;
    0
  in
  let doc = "Estimate the temporal diameter of a random temporal network." in
  Cmd.v (Cmd.info "diameter" ~doc)
    Term.(const run $ family_term $ n_term $ lifetime_term $ r_term
          $ trials_term $ seed_term)

(* ------------------------------------------------------------------ *)
(* reach / min-r *)

let reach_cmd =
  let run family n lifetime r trials seed =
    let rng = Rng.create seed in
    let g = Family.build family rng ~n in
    let a = lifetime_of (Sgraph.Graph.n g) lifetime in
    let p = Por.success_probability rng g ~a ~r ~trials in
    Printf.printf
      "P(Treach) for %s, n=%d, a=%d, r=%d: %.3f (%d trials)\n"
      (Family.to_string family) (Sgraph.Graph.n g) a r p trials;
    0
  in
  let doc = "Empirical probability that r random labels per edge preserve \
             reachability." in
  Cmd.v (Cmd.info "reach" ~doc)
    Term.(const run $ family_term $ n_term $ lifetime_term $ r_term
          $ trials_term $ seed_term)

let min_r_cmd =
  let target_term =
    let doc = "Target success probability (default: 1 - 1/n)." in
    Arg.(value & opt (some float) None & info [ "target" ] ~doc)
  in
  let run family n lifetime target trials seed =
    let rng = Rng.create seed in
    let g = Family.build family rng ~n in
    let gn = Sgraph.Graph.n g in
    let a = lifetime_of gn lifetime in
    let target = Option.value target ~default:(Por.whp_target ~n:gn) in
    (match Por.report rng ~name:(Family.to_string family) g ~a ~target ~trials with
    | None -> Printf.printf "no r up to the search cap reached the target\n"
    | Some report ->
      Printf.printf "graph=%s n=%d m=%d a=%d target=%.3f\n" report.graph_name
        report.n report.m a target;
      Printf.printf "  min r        : %d (rate %.3f)\n" report.estimate.r
        report.estimate.success_rate;
      Printf.printf "  thm7 bound   : %.1f   coupon bound: %.1f\n"
        report.thm7_bound report.coupon_bound;
      Printf.printf "  PoR          : %.1f .. %.1f (against OPT in [%d, %d])\n"
        report.por_lower report.por_upper report.opt_lower report.opt_upper);
    0
  in
  let doc = "Search the minimal r that guarantees temporal reachability whp \
             (Definition 8) and report the Price of Randomness." in
  Cmd.v (Cmd.info "min-r" ~doc)
    Term.(const run $ family_term $ n_term $ lifetime_term $ target_term
          $ trials_term $ seed_term)

(* ------------------------------------------------------------------ *)
(* flood *)

let flood_cmd =
  let source_term =
    let doc = "Source vertex." in
    Arg.(value & opt int 0 & info [ "source"; "s" ] ~doc)
  in
  let run family n lifetime r source seed =
    let rng = Rng.create seed in
    let g = Family.build family rng ~n in
    let a = lifetime_of (Sgraph.Graph.n g) lifetime in
    let net = Assignment.uniform_multi rng g ~a ~r in
    let result = Flooding.run net source in
    Printf.printf "flooding from %d on %s (n=%d, a=%d, r=%d):\n" source
      (Family.to_string family) (Sgraph.Graph.n g) a r;
    Printf.printf "  informed: %d/%d   transmissions: %d\n"
      result.informed_count (Sgraph.Graph.n g) result.transmissions;
    (match result.completion_time with
    | Some t -> Printf.printf "  completed at time %d (ln n = %.2f)\n" t
                  (log (float_of_int (Sgraph.Graph.n g)))
    | None -> Printf.printf "  did not reach every vertex within the lifetime\n");
    (* Timeline: how many vertices were informed by each time step. *)
    let informed_by t =
      Array.fold_left
        (fun acc x -> if x <= t then acc + 1 else acc)
        0 result.informed_time
    in
    let horizon =
      Option.value result.completion_time ~default:(Tgraph.lifetime net)
    in
    Printf.printf "  timeline (t: informed):";
    let step = Stdlib.max 1 (horizon / 12) in
    let t = ref 0 in
    while !t <= horizon do
      Printf.printf " %d:%d" !t (informed_by !t);
      t := !t + step
    done;
    print_newline ();
    0
  in
  let doc = "Simulate the section-3.5 flooding protocol on one sampled \
             instance." in
  Cmd.v (Cmd.info "flood" ~doc)
    Term.(const run $ family_term $ n_term $ lifetime_term $ r_term
          $ source_term $ seed_term)

(* ------------------------------------------------------------------ *)
(* expansion *)

let expansion_cmd =
  let c1_term =
    let doc = "Window constant c1." in
    Arg.(value & opt float 2.0 & info [ "c1" ] ~doc)
  in
  let c2_term =
    let doc = "Middle window width c2." in
    Arg.(value & opt int 6 & info [ "c2" ] ~doc)
  in
  let pair_term =
    let doc = "Source and target, e.g. --pair 0,1." in
    Arg.(value & opt (pair int int) (0, 1) & info [ "pair" ] ~doc)
  in
  let run n c1 c2 (s, t) seed =
    let rng = Rng.create seed in
    let g = Sgraph.Gen.clique Directed n in
    let net = Assignment.normalized_uniform rng g in
    let params = Expansion.default_params ~c1 ~c2 ~n () in
    let outcome = Expansion.run net params ~s ~t in
    Printf.printf
      "expansion on the normalized U-RTN clique n=%d: l1=%d c2=%d d=%d \
       horizon=%d\n"
      n params.l1 params.c2 params.d (Expansion.horizon params);
    Printf.printf "  forward layers : %s\n"
      (String.concat " "
         (Array.to_list (Array.map string_of_int outcome.forward_layers)));
    Printf.printf "  backward layers: %s\n"
      (String.concat " "
         (Array.to_list (Array.map string_of_int outcome.backward_layers)));
    (match (outcome.success, outcome.journey) with
    | true, Some j ->
      Format.printf "  journey (%d -> %d, arrival %s):@.    %a@." s t
        (match outcome.arrival with Some x -> string_of_int x | None -> "?")
        Journey.pp j
    | _ ->
      Printf.printf "  FAILED to match (Theorem 3 only promises success whp)\n";
      (match Foremost.distance (Foremost.run net s) t with
      | Some d -> Printf.printf "  (a foremost journey does exist, arrival %d)\n" d
      | None -> Printf.printf "  (no journey exists at all in this instance)\n"));
    0
  in
  let doc = "Run Algorithm 1 (the Expansion Process) on one sampled clique \
             instance." in
  Cmd.v (Cmd.info "expansion" ~doc)
    Term.(const run $ n_term $ c1_term $ c2_term $ pair_term $ seed_term)

(* ------------------------------------------------------------------ *)
(* journey *)

let journey_cmd =
  let pair_term =
    let doc = "Source and target, e.g. --pair 0,5." in
    Arg.(value & opt (pair int int) (0, 1) & info [ "pair" ] ~doc)
  in
  let run family n lifetime r (s, t) seed =
    let rng = Rng.create seed in
    let g = Family.build family rng ~n in
    let a = lifetime_of (Sgraph.Graph.n g) lifetime in
    let net = Assignment.uniform_multi rng g ~a ~r in
    let res = Foremost.run net s in
    (match Foremost.journey_to net res t with
    | Some j ->
      Format.printf "foremost journey %d -> %d (arrival %s):@.  %a@." s t
        (match Foremost.distance res t with
        | Some d -> string_of_int d
        | None -> "?")
        Journey.pp j
    | None -> Printf.printf "no journey from %d to %d in this instance\n" s t);
    0
  in
  let doc = "Compute a foremost journey on one sampled instance." in
  Cmd.v (Cmd.info "journey" ~doc)
    Term.(const run $ family_term $ n_term $ lifetime_term $ r_term
          $ pair_term $ seed_term)

(* ------------------------------------------------------------------ *)
(* taxonomy *)

let taxonomy_cmd =
  let pair_term =
    let doc = "Source and target, e.g. --pair 0,5." in
    Arg.(value & opt (pair int int) (0, 1) & info [ "pair" ] ~doc)
  in
  let run family n lifetime r (s, t) seed =
    let rng = Rng.create seed in
    let g = Family.build family rng ~n in
    let a = lifetime_of (Sgraph.Graph.n g) lifetime in
    let net = Assignment.uniform_multi rng g ~a ~r in
    Printf.printf "journey taxonomy %d -> %d on %s (n=%d, a=%d, r=%d):\n" s t
      (Family.to_string family) (Sgraph.Graph.n g) a r;
    let show name = function
      | Some x -> Printf.printf "  %-18s: %d\n" name x
      | None -> Printf.printf "  %-18s: -\n" name
    in
    show "foremost arrival" (Foremost.distance (Foremost.run net s) t);
    let fast = Fastest.run net s in
    show "fastest duration" (Fastest.duration fast t);
    (match Fastest.window fast t with
    | Some (dep, arr) -> Printf.printf "  %-18s: depart %d, arrive %d\n"
                           "fastest window" dep arr
    | None -> ());
    show "shortest hops" (Shortest.hops (Shortest.run net s) t);
    show "latest departure"
      (Reverse_foremost.latest_departure (Reverse_foremost.run net t) s);
    Format.printf "  %-18s: %a@." "arrival profile" Profile.pp
      (Profile.compute net ~source:s ~target:t);
    0
  in
  let doc = "Foremost / fastest / shortest / reverse-foremost journeys for \
             one pair on a sampled instance." in
  Cmd.v (Cmd.info "taxonomy" ~doc)
    Term.(const run $ family_term $ n_term $ lifetime_term $ r_term
          $ pair_term $ seed_term)

(* ------------------------------------------------------------------ *)
(* centrality *)

let centrality_cmd =
  let top_term =
    let doc = "How many top vertices to list." in
    Arg.(value & opt int 5 & info [ "top" ] ~doc)
  in
  let run family n lifetime r top seed =
    let rng = Rng.create seed in
    let g = Family.build family rng ~n in
    let a = lifetime_of (Sgraph.Graph.n g) lifetime in
    let net = Assignment.uniform_multi rng g ~a ~r in
    let out = Centrality.out_closeness net in
    let order = Centrality.rank out in
    let broadcast = Centrality.broadcast_time net in
    Printf.printf
      "temporal centrality on %s (n=%d, a=%d, r=%d), top %d by out-closeness:\n"
      (Family.to_string family) (Sgraph.Graph.n g) a r top;
    Array.iteri
      (fun i v ->
        if i < top then
          Printf.printf "  #%d vertex %3d  closeness %.4f  broadcast %s\n"
            (i + 1) v out.(v)
            (if broadcast.(v) = max_int then "-" else string_of_int broadcast.(v)))
      order;
    let best, time = Centrality.best_broadcaster net in
    Printf.printf "best broadcaster: vertex %d (completes at %s)\n" best
      (if time = max_int then "-" else string_of_int time);
    0
  in
  let doc = "Rank vertices by temporal closeness and broadcast time on a \
             sampled instance." in
  Cmd.v (Cmd.info "centrality" ~doc)
    Term.(const run $ family_term $ n_term $ lifetime_term $ r_term
          $ top_term $ seed_term)

(* ------------------------------------------------------------------ *)
(* disjoint *)

let disjoint_cmd =
  let pair_term =
    let doc = "Source and target, e.g. --pair 0,5." in
    Arg.(value & opt (pair int int) (0, 1) & info [ "pair" ] ~doc)
  in
  let menger_term =
    let doc = "Instead of sampling, analyse the fixed 6-vertex Menger-gap \
               instance." in
    Arg.(value & flag & info [ "menger" ] ~doc)
  in
  let run family n lifetime r (s, t) menger seed =
    let net, s, t =
      if menger then Disjoint.menger_gap_example ()
      else begin
        let rng = Rng.create seed in
        let g = Family.build family rng ~n in
        let a = lifetime_of (Sgraph.Graph.n g) lifetime in
        (Assignment.uniform_multi rng g ~a ~r, s, t)
      end
    in
    Printf.printf "disjoint journeys %d -> %d (n=%d):\n" s t (Tgraph.n net);
    Printf.printf "  max time-edge-disjoint : %d\n"
      (Disjoint.max_edge_disjoint net ~s ~t);
    if Tgraph.n net <= 10 then begin
      Printf.printf "  max vertex-disjoint    : %d\n"
        (Disjoint.max_vertex_disjoint_exhaustive net ~s ~t);
      let separator = Disjoint.min_vertex_separator_exhaustive net ~s ~t in
      Printf.printf "  min vertex separator   : %s\n"
        (if separator = max_int then "- (direct edge)" else string_of_int separator)
    end
    else
      Printf.printf "  (vertex quantities are exhaustive; skipped for n > 10)\n";
    0
  in
  let doc = "Count disjoint journeys and temporal separators (Menger \
             phenomena of Kempe et al.)." in
  Cmd.v (Cmd.info "disjoint" ~doc)
    Term.(const run $ family_term $ n_term $ lifetime_term $ r_term
          $ pair_term $ menger_term $ seed_term)

(* ------------------------------------------------------------------ *)
(* export *)

let export_cmd =
  let format_term =
    let doc = "Output format: tnet (round-trippable text), dot (Graphviz) \
               or gexf (Gephi dynamic graph)." in
    Arg.(value
         & opt (enum [ ("tnet", `Tnet); ("dot", `Dot); ("gexf", `Gexf) ]) `Tnet
         & info [ "format"; "f" ] ~doc)
  in
  let output_term =
    let doc = "Write to $(docv) instead of stdout." in
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc)
  in
  let run family n lifetime r format output seed =
    let rng = Rng.create seed in
    let g = Family.build family rng ~n in
    let a = lifetime_of (Sgraph.Graph.n g) lifetime in
    let net = Assignment.uniform_multi rng g ~a ~r in
    let text =
      match format with
      | `Tnet -> Serial.to_string net
      | `Dot -> Serial.to_dot ~name:(Family.to_string family) net
      | `Gexf -> Serial.to_gexf net
    in
    (match output with
    | None -> print_string text
    | Some path ->
      let oc = open_out path in
      output_string oc text;
      close_out oc;
      Printf.printf "wrote %s\n" path);
    0
  in
  let doc = "Sample a random temporal network and export it (text or DOT)." in
  Cmd.v (Cmd.info "export" ~doc)
    Term.(const run $ family_term $ n_term $ lifetime_term $ r_term
          $ format_term $ output_term $ seed_term)

(* ------------------------------------------------------------------ *)
(* restless *)

let restless_cmd =
  let delta_term =
    let doc = "Waiting bound per intermediate vertex." in
    Arg.(value & opt int 2 & info [ "delta" ] ~doc)
  in
  let source_term =
    let doc = "Source vertex." in
    Arg.(value & opt int 0 & info [ "source"; "s" ] ~doc)
  in
  let run family n lifetime r delta source seed =
    let rng = Rng.create seed in
    let g = Family.build family rng ~n in
    let gn = Sgraph.Graph.n g in
    let a = lifetime_of gn lifetime in
    let net = Assignment.uniform_multi rng g ~a ~r in
    let restless = Restless.run ~delta net source in
    let unrestricted = Foremost.run net source in
    Printf.printf
      "restless walks from %d on %s (n=%d, a=%d, r=%d, delta=%d):\n" source
      (Family.to_string family) gn a r delta;
    Printf.printf "  reachable (restless)     : %d/%d\n"
      (Restless.reachable_count restless) gn;
    Printf.printf "  reachable (unrestricted) : %d/%d\n"
      (Foremost.reachable_count unrestricted) gn;
    let slower = ref 0 and worst_gap = ref 0 in
    for v = 0 to gn - 1 do
      match (Restless.distance restless v, Foremost.distance unrestricted v) with
      | Some d1, Some d2 when d1 > d2 ->
        incr slower;
        if d1 - d2 > !worst_gap then worst_gap := d1 - d2
      | _ -> ()
    done;
    Printf.printf "  vertices delayed by it   : %d (worst delay %d)\n" !slower
      !worst_gap;
    0
  in
  let doc = "Earliest arrivals when a message may wait at most delta steps \
             per relay (restless temporal walks)." in
  Cmd.v (Cmd.info "restless" ~doc)
    Term.(const run $ family_term $ n_term $ lifetime_term $ r_term
          $ delta_term $ source_term $ seed_term)

(* ------------------------------------------------------------------ *)
(* walk *)

let walk_cmd =
  let source_term =
    let doc = "Source vertex." in
    Arg.(value & opt int 0 & info [ "source"; "s" ] ~doc)
  in
  let run family n lifetime r source seed =
    let rng = Rng.create seed in
    let g = Family.build family rng ~n in
    let a = lifetime_of (Sgraph.Graph.n g) lifetime in
    let net = Assignment.uniform_multi rng g ~a ~r in
    let t = Walker.walk rng net ~source in
    Printf.printf "random walk from %d on %s (n=%d, a=%d, r=%d):\n" source
      (Family.to_string family) (Sgraph.Graph.n g) a r;
    Printf.printf "  visited : %d/%d   moves: %d/%d\n" t.visited
      (Sgraph.Graph.n g) t.moves a;
    (match t.cover_time with
    | Some c -> Printf.printf "  covered by step %d\n" c
    | None -> Printf.printf "  did not cover within the lifetime\n");
    let trail = Array.to_list (Array.sub t.positions 0 (Stdlib.min 25 (a + 1))) in
    Printf.printf "  trail   : %s%s\n"
      (String.concat " " (List.map string_of_int trail))
      (if a + 1 > 25 then " ..." else "");
    0
  in
  let doc = "Ride one random walk along the availability schedule." in
  Cmd.v (Cmd.info "walk" ~doc)
    Term.(const run $ family_term $ n_term $ lifetime_term $ r_term
          $ source_term $ seed_term)

(* ------------------------------------------------------------------ *)
(* jam *)

let jam_cmd =
  let budget_term =
    let doc = "How many (edge, time) availabilities to cancel." in
    Arg.(value & opt int 16 & info [ "budget" ] ~doc)
  in
  let strategy_term =
    let doc = "Jammer: random, earliest, cut-vertex, greedy." in
    Arg.(value
         & opt
             (enum
                [ ("random", Adversary.Random_jam);
                  ("earliest", Adversary.Earliest_first);
                  ("cut-vertex", Adversary.Cut_vertex_focus);
                  ("greedy", Adversary.Greedy_damage) ])
             Adversary.Random_jam
         & info [ "strategy" ] ~doc)
  in
  let run family n lifetime r budget strategy seed =
    let rng = Rng.create seed in
    let g = Family.build family rng ~n in
    let a = lifetime_of (Sgraph.Graph.n g) lifetime in
    let net = Assignment.uniform_multi rng g ~a ~r in
    let outcome = Adversary.jam rng net ~budget ~strategy in
    Printf.printf "jamming %s on %s (n=%d, a=%d, r=%d, budget=%d):\n"
      (Adversary.strategy_name strategy)
      (Family.to_string family) (Sgraph.Graph.n g) a r budget;
    Printf.printf "  cancelled        : %d labels\n" outcome.cancelled;
    Printf.printf "  reachable pairs  : %d -> %d (%.0f%% survive)\n"
      outcome.reachable_before outcome.reachable_after
      (100.
      *. float_of_int outcome.reachable_after
      /. float_of_int (Stdlib.max 1 outcome.reachable_before));
    0
  in
  let doc = "Cancel availabilities adversarially and measure the damage." in
  Cmd.v (Cmd.info "jam" ~doc)
    Term.(const run $ family_term $ n_term $ lifetime_term $ r_term
          $ budget_term $ strategy_term $ seed_term)

(* ------------------------------------------------------------------ *)
(* analyze *)

let analyze_cmd =
  let file_term =
    let doc = "Temporal network file (`export` format), or a contact trace \
               with $(b,--trace)." in
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc)
  in
  let trace_term =
    let doc = "Interpret the file as a contact trace: one 'time agent \
               agent' event per line." in
    Arg.(value & flag & info [ "trace" ] ~doc)
  in
  let run file trace =
    let loaded =
      if trace then Mobility.Trace.load file else Serial.of_file file
    in
    match loaded with
    | Error msg ->
      Printf.eprintf "cannot read %s: %s\n" file msg;
      1
    | Ok net ->
      let n = Tgraph.n net in
      Format.printf "%a@." Summary_t.pp (Summary_t.compute net);
      (match Lifetime.prefix_connectivity_time net with
      | Some k -> Printf.printf "prefix connects at: %d\n" k
      | None -> ());
      if n <= 20 then
        Printf.printf "largest mutual set: %d vertices\n"
          (Tcc.largest_mutual_clique_exhaustive net);
      if n <= 64 && Reachability.treach net then begin
        let result = Spanner.prune net in
        if result.removed = 0 then Printf.printf "labels are minimal\n"
        else
          Printf.printf "prunable to %d labels (-%d)\n" result.kept
            result.removed
      end;
      0
  in
  let doc = "Analyse a temporal network or contact trace stored in a file." in
  Cmd.v (Cmd.info "analyze" ~doc) Term.(const run $ file_term $ trace_term)

(* ------------------------------------------------------------------ *)
(* trace: offline analytics over JSONL trace files *)

let trace_file_term n docv =
  let doc = "Trace file (JSONL, written by $(b,run --trace))." in
  Arg.(required & pos n (some file) None & info [] ~docv ~doc)

(* Strict load: the first malformed line fails the whole command with
   file:line, so a truncated trace can never silently under-report. *)
let load_trace file =
  match Obs.Reader.read_file file with
  | Ok records -> Ok records
  | Error { Obs.Reader.line; message } ->
    Error (Printf.sprintf "%s:%d: %s" file line message)

let trace_summary_cmd =
  let run file =
    match load_trace file with
    | Error msg ->
      prerr_endline msg;
      1
    | Ok records ->
      print_string
        (Stats.Table.to_ascii
           (Obs.Export.span_table_of (Obs.Analysis.totals records)));
      0
  in
  let doc =
    "Aggregate a trace per span path and print the same table the run's \
     $(b,--metrics) flag would (strictly parsing every line)."
  in
  Cmd.v (Cmd.info "summary" ~doc) Term.(const run $ trace_file_term 0 "FILE")

let trace_flame_cmd =
  let output_term =
    let doc = "Write folded stacks to $(docv) instead of stdout." in
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc)
  in
  let run file output =
    match load_trace file with
    | Error msg ->
      prerr_endline msg;
      1
    | Ok records ->
      let emit oc =
        List.iter
          (fun (stack, self_ns) -> Printf.fprintf oc "%s %Ld\n" stack self_ns)
          (Obs.Analysis.folded records)
      in
      (match output with
      | None -> emit stdout
      | Some path ->
        let oc = open_out path in
        emit oc;
        close_out oc;
        Printf.printf "wrote %s\n" path);
      0
  in
  let doc =
    "Emit the trace as folded stacks ($(i,path;to;span self-ns), one per \
     line) for flamegraph.pl or speedscope."
  in
  Cmd.v (Cmd.info "flame" ~doc)
    Term.(const run $ trace_file_term 0 "FILE" $ output_term)

let trace_domains_cmd =
  let run file =
    match load_trace file with
    | Error msg ->
      prerr_endline msg;
      1
    | Ok records -> (
      match Obs.Analysis.domain_stats records with
      | None ->
        Printf.eprintf "%s: empty trace\n" file;
        1
      | Some s ->
        let wall = Float.max 1. (Int64.to_float s.wall_ns) in
        let table =
          Stats.Table.create ~title:"Trace: domains"
            ~columns:[ "domain"; "spans"; "busy ms"; "util %" ]
        in
        List.iter
          (fun (row : Obs.Analysis.domain_row) ->
            Stats.Table.add_row table
              [
                Int row.domain;
                Int row.spans;
                Float (Obs.Clock.ns_to_ms row.busy_ns, 2);
                Float (100. *. Int64.to_float row.busy_ns /. wall, 1);
              ])
          s.rows;
        print_string (Stats.Table.to_ascii table);
        Printf.printf "wall: %.2f ms  distinct domains: %d\n"
          (Obs.Clock.ns_to_ms s.wall_ns)
          (List.length s.rows);
        Printf.printf "concurrency:";
        List.iter
          (fun (k, ns) ->
            Printf.printf " %d-busy %.1f%%" k
              (100. *. Int64.to_float ns /. wall))
          s.concurrency;
        print_newline ();
        0)
  in
  let doc =
    "Per-domain busy time, utilization against the trace's wall window, \
     and the concurrency profile (how long exactly k domains were busy) \
     of a $(b,-j N) trace."
  in
  Cmd.v (Cmd.info "domains" ~doc) Term.(const run $ trace_file_term 0 "FILE")

let trace_diff_cmd =
  let fail_above_term =
    let doc =
      "Exit non-zero if any span path's wall time regressed by more than \
       $(docv) percent (the CI regression gate)."
    in
    Arg.(value & opt (some float) None & info [ "fail-above" ] ~docv:"PCT" ~doc)
  in
  let min_ms_term =
    let doc = "Ignore paths below $(docv) total wall ms in both traces." in
    Arg.(value & opt float 0. & info [ "min-ms" ] ~docv:"MS" ~doc)
  in
  let run old_file new_file fail_above min_ms =
    match (load_trace old_file, load_trace new_file) with
    | Error msg, _ | _, Error msg ->
      prerr_endline msg;
      1
    | Ok old_records, Ok new_records ->
      let rows =
        Obs.Analysis.diff
          (Obs.Analysis.totals old_records)
          (Obs.Analysis.totals new_records)
      in
      let wide_enough (t : Obs.Span.totals option) =
        match t with
        | Some t -> Obs.Clock.ns_to_ms t.total_ns >= min_ms
        | None -> false
      in
      let rows =
        List.filter
          (fun (r : Obs.Analysis.diff_row) ->
            wide_enough r.old_t || wide_enough r.new_t)
          rows
      in
      let table =
        Stats.Table.create ~title:"Trace: diff"
          ~columns:
            [ "span"; "old ms"; "new ms"; "wall %"; "old words"; "new words";
              "alloc %" ]
      in
      let dash = Stats.Table.Str "-" in
      let ms = function
        | Some (t : Obs.Span.totals) ->
          Stats.Table.Float (Obs.Clock.ns_to_ms t.total_ns, 2)
        | None -> dash
      in
      let words = function
        | Some (t : Obs.Span.totals) ->
          Stats.Table.Float (t.minor_words +. t.major_words, 0)
        | None -> dash
      in
      let pct = function
        | Some p -> Stats.Table.Str (Printf.sprintf "%+.1f" p)
        | None -> dash
      in
      List.iter
        (fun (r : Obs.Analysis.diff_row) ->
          Stats.Table.add_row table
            [
              Str r.path; ms r.old_t; ms r.new_t; pct r.wall_pct;
              words r.old_t; words r.new_t; pct r.alloc_pct;
            ])
        rows;
      print_string (Stats.Table.to_ascii table);
      let worst = Obs.Analysis.worst_wall_pct rows in
      if worst > Float.neg_infinity then
        Printf.printf "worst wall regression: %+.1f%%\n" worst;
      (match fail_above with
      | Some limit when worst > limit ->
        Printf.eprintf
          "FAIL: worst wall regression %+.1f%% exceeds --fail-above %.1f%%\n"
          worst limit;
        1
      | _ -> 0)
  in
  let doc =
    "Per-span wall/alloc deltas between two traces, with a threshold exit \
     code for CI ($(b,--fail-above))."
  in
  Cmd.v (Cmd.info "diff" ~doc)
    Term.(const run $ trace_file_term 0 "OLD" $ trace_file_term 1 "NEW"
          $ fail_above_term $ min_ms_term)

let trace_cmd =
  let doc =
    "Analyse JSONL span traces written by $(b,run --trace): per-path \
     summaries, flamegraph folding, per-domain utilization, and a \
     regression-gating diff."
  in
  Cmd.group (Cmd.info "trace" ~doc)
    [ trace_summary_cmd; trace_flame_cmd; trace_domains_cmd; trace_diff_cmd ]

(* ------------------------------------------------------------------ *)
(* version *)

let version_cmd =
  let run () =
    Printf.printf "ephemeral 1.0.0\n";
    Printf.printf "code fingerprint : %s (%d source files)\n"
      (Store.Key.fingerprint ())
      (Store.Key.fingerprinted_sources ());
    Printf.printf "store format     : codec v%d (%s)\n" Store.Codec.format_version
      Store.Codec.magic;
    Printf.printf "backends         : %s (--backend on run; active: %s)\n"
      (String.concat ", " (List.map Sim.Backend.to_string Sim.Backend.all))
      (Sim.Backend.tag ());
    0
  in
  let doc = "Show the version and the build-time code fingerprint (the \
             fingerprint keys the result store, so it tells you why a \
             cache missed)." in
  Cmd.v (Cmd.info "version" ~doc) Term.(const run $ const ())

(* ------------------------------------------------------------------ *)
(* store ls / show / gc *)

let age_string ~now time =
  let s = now -. time in
  if s < 0. then "future"
  else if s < 120. then Printf.sprintf "%.0fs" s
  else if s < 7200. then Printf.sprintf "%.0fm" (s /. 60.)
  else if s < 172800. then Printf.sprintf "%.1fh" (s /. 3600.)
  else Printf.sprintf "%.1fd" (s /. 86400.)

(* The live entries (newest per key), newest first — what ls and show
   operate on. *)
let live_entries store =
  let seen = Hashtbl.create 64 in
  List.fold_left
    (fun acc (e : Store.Objects.entry) ->
      if Hashtbl.mem seen e.key then acc
      else begin
        Hashtbl.add seen e.key ();
        e :: acc
      end)
    []
    (List.rev (Store.Objects.entries store))

let store_ls_cmd =
  let run dir =
    let store = Store.Objects.open_ ~dir in
    let fp = Store.Key.fingerprint () in
    Printf.printf "store: %s\nfingerprint: %s (%d source files)\n" dir fp
      (Store.Key.fingerprinted_sources ());
    let live = live_entries store in
    if live = [] then print_endline "(empty)"
    else begin
      let now = Unix.gettimeofday () in
      Printf.printf "%-12s %-6s %-10s %-6s %-9s %8s %6s  %s\n" "key" "exp"
        "seed" "quick" "backend" "bytes" "age" "build";
      List.iter
        (fun (e : Store.Objects.entry) ->
          let field k = Option.value ~default:"-" (List.assoc_opt k e.meta) in
          let build =
            match List.assoc_opt "fingerprint" e.meta with
            | Some f when f = fp -> "current"
            | Some _ -> "stale"
            | None -> "?"
          in
          Printf.printf "%-12s %-6s %-10s %-6s %-9s %8d %6s  %s\n"
            (String.sub e.key 0 (Stdlib.min 12 (String.length e.key)))
            (field "exp") (field "seed") (field "quick") (field "backend")
            e.size (age_string ~now e.time) build)
        live
    end;
    0
  in
  let doc = "List cached outcomes (newest per key), flagging entries \
             written by a different build as stale." in
  Cmd.v (Cmd.info "ls" ~doc) Term.(const run $ store_dir_term)

let store_show_cmd =
  let what_term =
    let doc = "An experiment id (e.g. e1; combined with --seed/--quick) or \
               a cache-key prefix from $(b,store ls)." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"ID_OR_KEY" ~doc)
  in
  let run dir what seed quick backend =
    Sim.Backend.set backend;
    let store = Store.Objects.open_ ~dir in
    match Sim.Experiments.find what with
    | Some exp -> (
      match Sim.Cache.get store exp ~seed ~quick with
      | Some outcome ->
        Sim.Report.print_outcome exp outcome;
        0
      | None ->
        Printf.eprintf
          "no cached outcome for %s (seed %d, quick %b, backend %s) under \
           this build\n"
          exp.id seed quick (Sim.Backend.tag ());
        1)
    | None -> (
      let matches =
        List.filter
          (fun (e : Store.Objects.entry) ->
            String.length what <= String.length e.key
            && String.sub e.key 0 (String.length what) = what)
          (live_entries store)
      in
      match matches with
      | [] ->
        Printf.eprintf "no experiment or cached key matches %S\n" what;
        1
      | _ :: _ :: _ ->
        Printf.eprintf "key prefix %S is ambiguous (%d matches)\n" what
          (List.length matches);
        1
      | [ entry ] -> (
        match Store.Objects.get store ~key:entry.key with
        | None ->
          Printf.eprintf "object for %s is missing or corrupt (quarantined)\n"
            entry.key;
          1
        | Some (bytes, _) -> (
          match Store.Codec.decode_outcome bytes with
          | Error msg ->
            Printf.eprintf "cannot decode %s: %s\n" entry.key msg;
            1
          | Ok c ->
            List.iter
              (fun (k, v) -> Printf.printf "%s: %s\n" k v)
              entry.meta;
            print_newline ();
            print_string (Sim.Outcome.render (Sim.Cache.of_codec c));
            0)))
  in
  let doc = "Render a cached outcome without running anything." in
  Cmd.v (Cmd.info "show" ~doc)
    Term.(const run $ store_dir_term $ what_term $ seed_term $ quick_term
          $ backend_term)

let store_gc_cmd =
  let max_bytes_term =
    let doc = "Keep at most $(docv) bytes of objects (newest first)." in
    Arg.(value & opt (some int) None & info [ "max-bytes" ] ~docv:"N" ~doc)
  in
  let max_age_term =
    let doc = "Drop entries older than $(docv) days." in
    Arg.(value & opt (some float) None & info [ "max-age-days" ] ~docv:"D" ~doc)
  in
  let run dir max_bytes max_age_days =
    let store = Store.Objects.open_ ~dir in
    let stats =
      Store.Gc.run ?max_bytes
        ?max_age_s:(Option.map (fun d -> d *. 86400.) max_age_days)
        store
    in
    Printf.printf
      "examined %d, kept %d (%d B), removed %d entries / %d objects (%d B)\n"
      stats.examined stats.kept stats.bytes_kept stats.removed_entries
      stats.removed_objects stats.bytes_removed;
    0
  in
  let doc = "Compact the store: drop superseded, oversized or overage \
             entries and delete unreferenced objects." in
  Cmd.v (Cmd.info "gc" ~doc)
    Term.(const run $ store_dir_term $ max_bytes_term $ max_age_term)

let store_cmd =
  let doc = "Inspect and maintain the result store." in
  Cmd.group (Cmd.info "store" ~doc) [ store_ls_cmd; store_show_cmd; store_gc_cmd ]

(* ------------------------------------------------------------------ *)

let default =
  Term.(ret (const (`Help (`Pager, None))))

let () =
  let info =
    Cmd.info "ephemeral" ~version:"1.0.0"
      ~doc:
        "Reproduction of 'Ephemeral networks with random availability of \
         links: diameter and connectivity' (Akrida, Gasieniec, Mertzios, \
         Spirakis; SPAA 2014)"
  in
  let group =
    Cmd.group ~default info
      [ run_cmd; chaos_cmd; serve_cmd; query_cmd; list_cmd; diameter_cmd;
        reach_cmd; min_r_cmd; flood_cmd;
        expansion_cmd; journey_cmd; taxonomy_cmd; centrality_cmd;
        disjoint_cmd; export_cmd; analyze_cmd; restless_cmd; walk_cmd;
        jam_cmd; store_cmd; trace_cmd; version_cmd ]
  in
  exit (Cmd.eval' group)
