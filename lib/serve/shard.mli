(** Shard-worker process management for the sharded {!Router}.

    A shard worker is the running binary re-exec'd as
    [ephemeral serve --shard-index K]: it loads only its
    {!Corpus.shard_of} partition of the manifest and listens on a
    private socket.  Readiness is probed with PING — shards never
    announce on stdout, so the router's READY line stays the only
    one. *)

val socket_path : string -> int -> string
(** [socket_path base k] = ["<base>.shard-<k>"], the private socket of
    shard [k] derived from the router's public socket path. *)

val ledger_path : string -> int -> string
(** Per-shard ledger path derived from the merged-ledger path the same
    way. *)

val spawn : string array -> int
(** [create_process argv.(0) argv] with inherited stdio; returns the
    pid.  Raises on exec failure (missing binary). *)

val wait_ready : ?timeout_s:float -> string -> (unit, string) result
(** Poll PING on a shard socket until it answers or the window
    closes. *)

val poll_exit : int -> Unix.process_status option
(** Non-blocking reap: [None] while the child runs.  [ECHILD] (already
    reaped) counts as exited. *)

val terminate : ?timeout_s:float -> int -> Unix.process_status
(** SIGTERM, wait up to [timeout_s] for the graceful drain, then
    SIGKILL.  The caller must be the only reaper of this pid. *)
