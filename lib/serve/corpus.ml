(* The corpus a server loads at startup: named temporal instances
   described by compact specs, one per manifest line.

   A spec is comma-separated [key=value] pairs:

     id=clq1k,family=clique,n=1024,a=1024,r=1,seed=7

   [id], [family] and [n] are required; [a] defaults to [n], [r] to 1,
   [seed] to 1.  The instance realised is exactly the experiment
   pipeline's: topology from [Family.build] under [Rng.create seed],
   labels the [r] derived draws over [{1..a}] from the same seed — so
   the dense and implicit backends serve label-identical instances and
   every reply is byte-comparable across backends (the chaos oracle
   depends on this).

   Loading is *degraded-tolerant*: a malformed line or a spec whose
   build raises yields a [Failed] instance that the server keeps in
   its table and answers [Unavailable] for, while every healthy
   instance serves normally.  A corpus is unusable only when it is
   empty or every instance failed. *)

type spec = {
  id : string;
  family : Sim.Family.t;
  n : int;
  a : int;
  r : int;
  seed : int;
}

type status = Available of Temporal.Tgraph.t | Failed of string

type instance = { spec_id : string; spec : spec option; status : status }

type t = { backend : Sim.Backend.t; instances : instance array }

let spec_to_string s =
  Printf.sprintf "id=%s,family=%s,n=%d,a=%d,r=%d,seed=%d" s.id
    (Sim.Family.to_string s.family)
    s.n s.a s.r s.seed

(* Best-effort [id=] extraction from a line that failed full parsing,
   so a degraded entry still has a stable name to answer for. *)
let salvage_id line ~lineno =
  let fields = String.split_on_char ',' line in
  let from_field f =
    match String.index_opt f '=' with
    | Some i when String.sub f 0 i |> String.trim |> String.lowercase_ascii
                  = "id" ->
      let v = String.trim (String.sub f (i + 1) (String.length f - i - 1)) in
      if v = "" then None else Some v
    | _ -> None
  in
  match List.find_map from_field fields with
  | Some id -> id
  | None -> Printf.sprintf "line%d" lineno

let parse_spec line =
  let err fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let fields =
    String.split_on_char ',' line
    |> List.map String.trim
    |> List.filter (fun f -> f <> "")
  in
  let rec collect acc = function
    | [] -> Ok (List.rev acc)
    | f :: rest -> (
      match String.index_opt f '=' with
      | None -> err "field %S is not key=value" f
      | Some i ->
        let k = String.lowercase_ascii (String.trim (String.sub f 0 i)) in
        let v = String.trim (String.sub f (i + 1) (String.length f - i - 1)) in
        if List.mem_assoc k acc then err "duplicate key %S" k
        else collect ((k, v) :: acc) rest)
  in
  match collect [] fields with
  | Error _ as e -> e
  | Ok kvs -> (
    let known = [ "id"; "family"; "n"; "a"; "r"; "seed" ] in
    match List.find_opt (fun (k, _) -> not (List.mem k known)) kvs with
    | Some (k, _) -> err "unknown key %S" k
    | None -> (
      let get k = List.assoc_opt k kvs in
      let get_int k default =
        match get k with
        | None -> Ok default
        | Some v -> (
          match int_of_string_opt v with
          | Some i -> Ok i
          | None -> err "%s=%S is not an integer" k v)
      in
      match (get "id", get "family") with
      | None, _ | Some "", _ -> err "missing id"
      | _, None -> err "missing family"
      | Some id, Some fam -> (
        match Sim.Family.of_string fam with
        | Error (`Msg m) -> Error m
        | Ok family -> (
          match get_int "n" 0 with
          | Error _ as e -> e
          | Ok n when n < 1 -> err "missing or non-positive n"
          | Ok n -> (
            match (get_int "a" n, get_int "r" 1, get_int "seed" 1) with
            | Ok a, Ok r, Ok seed ->
              if a < 1 then err "a must be >= 1"
              else if r < 1 then err "r must be >= 1"
              else Ok { id; family; n; a; r; seed }
            | (Error _ as e), _, _ | _, (Error _ as e), _ | _, _, (Error _ as e)
              -> e)))))

let build_spec backend s =
  let g = Sim.Family.build s.family (Prng.Rng.create s.seed) ~n:s.n in
  let net =
    Temporal.Tgraph.of_derived g ~a:s.a ~seed:(Int64.of_int s.seed) ~r:s.r
  in
  match (backend : Sim.Backend.t) with
  | Sim.Backend.Implicit -> net
  | Sim.Backend.Dense -> Temporal.Tgraph.materialize net

let load_spec backend s =
  match build_spec backend s with
  | net -> { spec_id = s.id; spec = Some s; status = Available net }
  | exception e ->
    { spec_id = s.id; spec = Some s; status = Failed (Printexc.to_string e) }

let is_comment line =
  let t = String.trim line in
  t = "" || t.[0] = '#'

(* Consistent-hash routing: FNV-1a 64-bit over the instance id, mod
   the shard count.  The router and every shard worker compute this
   independently from the id alone, so their partition agreement is by
   construction — no routing table is exchanged.  The id used is the
   *post-salvage* one (so even an unparsable manifest line lands on a
   deterministic shard), which is why partition filtering happens
   after id determination, never on the raw line. *)
let shard_of ~shards id =
  if shards <= 1 then 0
  else begin
    let h = ref 0xcbf29ce484222325L in
    String.iter
      (fun c ->
        h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c)))
               0x100000001b3L)
      id;
    Int64.to_int (Int64.unsigned_rem !h (Int64.of_int shards))
  end

(* The id of a manifest line — parsed when possible, salvaged when
   not — without building the instance.  This is the id [load] will
   serve the line under, so routing decisions made from these ids
   match what the owning shard actually loads. *)
let line_id line ~lineno =
  match parse_spec line with
  | Ok s -> s.id
  | Error _ -> salvage_id line ~lineno

let manifest_ids lines =
  let _, ids =
    List.fold_left
      (fun (lineno, acc) line ->
        let lineno = lineno + 1 in
        if is_comment line then (lineno, acc)
        else (lineno, line_id line ~lineno :: acc))
      (0, []) lines
  in
  List.rev ids

let load ?shard ~backend lines =
  let owned id =
    match shard with
    | None -> true
    | Some (index, total) -> shard_of ~shards:total id = index
  in
  let _, instances =
    List.fold_left
      (fun (lineno, acc) line ->
        let lineno = lineno + 1 in
        if is_comment line then (lineno, acc)
        else
          (* Ownership is decided before any building, so a shard
             pays nothing for the (shards-1)/shards of the manifest
             it does not serve. *)
          match parse_spec line with
          | Ok s ->
            if owned s.id then (lineno, load_spec backend s :: acc)
            else (lineno, acc)
          | Error m ->
            let id = salvage_id line ~lineno in
            if owned id then
              ( lineno,
                { spec_id = id;
                  spec = None;
                  status = Failed (Printf.sprintf "bad spec: %s" m) }
                :: acc )
            else (lineno, acc))
      (0, []) lines
  in
  { backend; instances = Array.of_list (List.rev instances) }

let read_file path =
  match open_in path with
  | exception Sys_error m -> Error m
  | ic ->
    let rec read acc =
      match input_line ic with
      | line -> read (line :: acc)
      | exception End_of_file -> List.rev acc
    in
    let lines = read [] in
    close_in ic;
    Ok lines

let load_file ?shard ~backend path =
  Result.map (load ?shard ~backend) (read_file path)

let backend t = t.backend

let find t id =
  Array.find_opt (fun i -> i.spec_id = id) t.instances

let instances t = Array.to_list t.instances

let available t =
  Array.to_list t.instances
  |> List.filter_map (fun i ->
         match i.status with
         | Available net -> Some (i.spec_id, net)
         | Failed _ -> None)

let degraded t =
  Array.exists (fun i -> match i.status with Failed _ -> true | _ -> false)
    t.instances

let healthy t =
  Array.exists
    (fun i -> match i.status with Available _ -> true | _ -> false)
    t.instances

(* Rows for the LIST reply, in manifest order: (id, status, detail). *)
let list_rows t =
  Array.to_list t.instances
  |> List.map (fun i ->
         match i.status with
         | Available net ->
           ( i.spec_id,
             "available",
             Printf.sprintf "n=%d a=%d %s" (Temporal.Tgraph.n net)
               (Temporal.Tgraph.lifetime net)
               (Sim.Backend.to_string t.backend) )
         | Failed m -> (i.spec_id, "failed", m))
