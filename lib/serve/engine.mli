(** The query engine behind [ephemeral serve].

    Every query op (foremost, arrivals, reach, ecc) is a readout of
    one (instance, source) arrival row, so the row is the unit of
    work, caching, and batching.  Connection threads {!submit}
    (instance, source, deadline) jobs into a {e bounded} admission
    queue; a single dispatcher drains it, groups by instance, dedupes
    sources, and computes missing rows on the global {!Exec.Pool} —
    word-parallel {!Temporal.Batch} sweeps on the dense backend, one
    scalar sweep per source on the implicit one (whose O(n)-scratch
    contract batch arrival matrices would break).

    Robustness contract: submissions past [queue_max] are shed with
    [Resource_exhausted] (never queued — {!stats}[.queue_peak] proves
    the bound); expired jobs answer [Deadline_exceeded], re-checked
    cooperatively before every sweep; store IO is retried with
    deterministic jitter under a wall-time budget and degrades to
    recompute on persistent failure; {!drain} flushes every admitted
    job before returning — no ticket is ever left unanswered.

    Rows are pure functions of (instance labelling, source): replies
    are byte-identical at any job count, batching, or backend. *)

type config = {
  queue_max : int;  (** admission bound (jobs queued, not in flight) *)
  batch_window_s : float;
      (** dispatcher coalescing sleep once a cycle has work; [0.] = none *)
  cache_max : int;  (** in-memory rows kept, LRU eviction; [0] = off *)
  store : Store.Objects.t option;  (** persistent row cache *)
  jitter_seed : int64;  (** retry-jitter decorrelation seed *)
  store_budget_s : float;  (** retry wall-time budget per store op *)
}

val default_config : config
(** queue 256, no window, 4096 rows, no store, 0.25 s store budget. *)

type reply =
  | Row of int array
      (** the arrival row, [max_int] = unreachable; shared with the
          cache — do not mutate *)
  | Err of Proto.error_code * string

type ticket
type t

val create : ?config:config -> Corpus.t -> t
(** No dispatcher is started: tests drive {!process_pending} directly;
    servers call {!start}.
    @raise Invalid_argument if [queue_max < 1] or [cache_max < 0]. *)

val corpus : t -> Corpus.t

type admission = Admitted of ticket | Rejected of Proto.error_code * string

val submit :
  t -> instance:string -> source:int -> ?deadline_s:float -> unit -> admission
(** Admit a row request.  Rejections: [Unknown_instance],
    [Unavailable] (instance failed to load), [Bad_arg] (source out of
    range), [Shutting_down] (drain begun), [Resource_exhausted] (queue
    full).  [deadline_s] is relative; absent or [<= 0.] means none. *)

val await : ticket -> reply
(** Block until the dispatcher answers.  Every admitted ticket is
    eventually resolved, including through {!drain}. *)

val process_pending : t -> unit
(** One synchronous dispatch cycle: drain the queue, answer every job
    drained.  What the dispatcher thread runs; exposed so tests can
    drive admission/deadline/batching deterministically without
    threads.  Never raises. *)

val start : t -> unit
(** Spawn the dispatcher thread.
    @raise Invalid_argument if already started. *)

val stop_accepting : t -> unit
(** Flip admission off ([Shutting_down] rejections) without stopping
    the dispatcher — the first phase of a drain. *)

val drain : t -> unit
(** Stop admission, flush every queued job, and join the dispatcher.
    If the dispatcher was never started, flushes inline.  Idempotent. *)

type stats = {
  queries : int;  (** admitted *)
  shed : int;  (** rejected [Resource_exhausted] *)
  expired : int;  (** answered [Deadline_exceeded] *)
  cache_hits : int;
  store_hits : int;
  sweeps : int;  (** kernel sweeps actually run *)
  evictions : int;  (** LRU rows displaced once the cache filled *)
  queue_peak : int;  (** max queue depth ever observed — [<= queue_max] *)
}

val stats : t -> stats
