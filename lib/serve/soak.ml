(* `ephemeral chaos --serve`: a self-checking client soak against a
   live, fault-armed child server.

   The soak forks the real binary (`Sys.executable_name serve ...`),
   waits for its READY line, and drives it through phases that each
   target one robustness claim:

     correctness — sequential queries; every reply must equal the
       local oracle (rows recomputed in-process from the same specs —
       backends are label-identical, so one oracle covers both);
     typed-errors — malformed frames, unknown ops, bad instances and
       arguments must come back as the documented typed error, with
       the connection still usable where the stream stayed in sync;
     drops — half-written frames and abrupt closes must not wedge the
       server (a fresh PING succeeds after each);
     slow-loris — a frame trickled slower than the read deadline gets
       the connection closed, and the server stays healthy;
     overload — a concurrent burst larger than the admission queue:
       every reply is oracle-correct or a clean typed error
       (Resource_exhausted / Deadline_exceeded), nothing hangs;
     sigterm — SIGTERM lands mid-burst: in-flight replies stay
       correct-or-typed (Shutting_down included), stragglers see a
       clean EOF at a frame boundary, the child exits 0, and the
       ledger is published (atomically — it either parses or is
       absent, and the soak requires present).

   A violation is anything outside that contract: a wrong answer, an
   undecodable reply, a hang, a non-zero exit, a missing ledger, or a
   queue peak above the configured bound.  The soak returns them all
   rather than aborting at the first, so one run reports the full
   damage. *)

type outcome = {
  checks : int;
  violations : string list;
  queries : int;  (* client-side query count, burst phases included *)
  p50_ms : float;
  p99_ms : float;
  qps : float;
  server_exit : int option;  (* None = had to be killed *)
  ledger_ok : bool;
}

let queue_max = 32 (* deliberately small so the overload phase sheds *)

let read_timeout_s = 2.0

let manifest_lines ~n1 ~n2 ~seed =
  [
    "# chaos --serve corpus";
    Printf.sprintf "id=clq,family=clique,n=%d,a=%d,r=2,seed=%d" n1 n1 seed;
    Printf.sprintf "id=gnp,family=gnp:4,n=%d,a=%d,r=1,seed=%d" n2 n2 (seed + 1);
    (* A spec that cannot build: keeps the server in degraded mode so
       the Unavailable path is exercised live. *)
    "id=broken,family=clique,n=0";
  ]

(* ------------------------------------------------------------------ *)

type ctx = {
  address : Server.address;
  oracle : (string * int, int array) Hashtbl.t;
  instances : (string * int) list;  (* healthy: (id, n) *)
  kill_armed : bool;
      (* sharded soak with the shard-kill fault rolling: a typed
         Unavailable is then a legitimate answer in any phase (the
         owning shard may be mid-respawn) *)
  cm : Mutex.t;
  mutable checks : int;
  mutable violations : string list;
  mutable latencies : float list;  (* ms *)
  mutable query_count : int;
  c_checks : Obs.Metrics.counter;
  c_violations : Obs.Metrics.counter;
  h_latency : Obs.Metrics.histogram;
}

let check ctx ~phase ok detail =
  Mutex.lock ctx.cm;
  ctx.checks <- ctx.checks + 1;
  if not ok then
    ctx.violations <-
      Printf.sprintf "[%s] %s" phase detail :: ctx.violations;
  Mutex.unlock ctx.cm;
  Obs.Metrics.incr ctx.c_checks;
  if not ok then Obs.Metrics.incr ctx.c_violations

let note_latency ctx ms =
  Mutex.lock ctx.cm;
  ctx.latencies <- ms :: ctx.latencies;
  ctx.query_count <- ctx.query_count + 1;
  Mutex.unlock ctx.cm;
  Obs.Metrics.observe ctx.h_latency ms

(* Expected response for a query op, from the oracle row. *)
let expected ctx op (q : Proto.query) =
  match Hashtbl.find_opt ctx.oracle (q.Proto.instance, q.Proto.source) with
  | None -> None
  | Some row -> (
    match op with
    | `Foremost ->
      Some
        (Proto.Ok_value
           (if row.(q.Proto.target) = max_int then None
            else Some row.(q.Proto.target)))
    | `Arrivals -> Some (Proto.Ok_vector row)
    | `Reach ->
      let c = ref 0 in
      Array.iter (fun v -> if v <> max_int then incr c) row;
      Some (Proto.Ok_count !c)
    | `Ecc ->
      let m = ref 0 and unreachable = ref false in
      Array.iter
        (fun v -> if v = max_int then unreachable := true else m := max !m v)
        row;
      Some (Proto.Ok_value (if !unreachable then None else Some !m)))

let response_equal a b =
  match (a, b) with
  | Proto.Ok_vector x, Proto.Ok_vector y -> x = y
  | a, b -> a = b

let request_of op q =
  match op with
  | `Foremost -> Proto.Foremost q
  | `Arrivals -> Proto.Arrivals q
  | `Reach -> Proto.Reach q
  | `Ecc -> Proto.Ecc q

let op_name = function
  | `Foremost -> "foremost"
  | `Arrivals -> "arrivals"
  | `Reach -> "reach"
  | `Ecc -> "ecc"

(* One checked query.  [lenient] adds the load-shedding codes to the
   acceptable set (burst phases); [draining] additionally accepts
   Shutting_down and clean transport EOF (the SIGTERM phase). *)
let checked_query ctx ~phase ~lenient ~draining client op q =
  let t0 = Unix.gettimeofday () in
  let r = Client.call ~timeout_s:30. client (request_of op q) in
  let ms = (Unix.gettimeofday () -. t0) *. 1000. in
  (match r with Ok _ -> note_latency ctx ms | Error _ -> ());
  match r with
  | Ok resp -> (
    match expected ctx op q with
    | None -> () (* query against a degraded instance: checked elsewhere *)
    | Some want ->
      let ok =
        response_equal resp want
        ||
        match resp with
        | Proto.Error (Proto.Resource_exhausted, _)
        | Proto.Error (Proto.Deadline_exceeded, _) ->
          lenient
        | Proto.Error (Proto.Shutting_down, _) -> draining
        | Proto.Error (Proto.Unavailable, _) -> ctx.kill_armed
        | _ -> false
      in
      check ctx ~phase ok
        (Printf.sprintf "%s %s src=%d tgt=%d: got %s, want %s" (op_name op)
           q.Proto.instance q.Proto.source q.Proto.target
           (Proto.render_response resp)
           (Proto.render_response want)))
  | Error m ->
    let clean_close = draining && m = "connection closed by server" in
    check ctx ~phase clean_close
      (Printf.sprintf "%s %s src=%d: transport: %s" (op_name op)
         q.Proto.instance q.Proto.source m)

let q ?(target = 0) ?(deadline_ms = 0) instance source =
  { Proto.instance; source; target; deadline_ms }

(* ------------------------------------------------------------------ *)
(* Phases *)

let phase_correctness ctx rng ~rounds =
  let phase = "correctness" in
  match Client.connect ctx.address with
  | Error m -> check ctx ~phase false ("connect: " ^ m)
  | Ok client ->
    let ops = [| `Foremost; `Arrivals; `Reach; `Ecc |] in
    for _ = 1 to rounds do
      let id, n =
        List.nth ctx.instances (Prng.Rng.int rng (List.length ctx.instances))
      in
      let src = Prng.Rng.int rng n in
      let tgt = Prng.Rng.int rng n in
      let op = ops.(Prng.Rng.int rng (Array.length ops)) in
      checked_query ctx ~phase ~lenient:false ~draining:false client op
        (q ~target:tgt id src)
    done;
    Client.close client

let phase_typed_errors ctx =
  let phase = "typed-errors" in
  let expect_error client req want detail =
    match Client.call client req with
    | Ok (Proto.Error (code, _)) when code = want -> check ctx ~phase true ""
    | Ok resp ->
      check ctx ~phase false
        (Printf.sprintf "%s: got %s" detail (Proto.render_response resp))
    | Error m -> check ctx ~phase false (Printf.sprintf "%s: %s" detail m)
  in
  match Client.connect ctx.address with
  | Error m -> check ctx ~phase false ("connect: " ^ m)
  | Ok client ->
    let id, n = List.hd ctx.instances in
    expect_error client
      (Proto.Foremost (q "nosuch" 0))
      Proto.Unknown_instance "unknown instance";
    expect_error client
      (Proto.Foremost (q "broken" 0))
      Proto.Unavailable "degraded instance";
    expect_error client
      (Proto.Foremost (q id n))
      Proto.Bad_arg "source out of range";
    expect_error client
      (Proto.Foremost (q ~target:n id 0))
      Proto.Bad_arg "target out of range";
    (* Raw malformed payloads: the framing stays in sync, so the reply
       must be typed and the connection must survive. *)
    let raw payload =
      let fd = Client.fd client in
      Proto.write_frame fd payload;
      match Proto.read_frame ~deadline_s:10. fd with
      | Proto.Frame reply -> Proto.decode_response reply
      | _ -> Stdlib.Error "no reply frame"
    in
    (match raw "\xee" with
    | Ok (Proto.Error (Proto.Unknown_op, _)) -> check ctx ~phase true ""
    | other ->
      check ctx ~phase false
        (Printf.sprintf "unknown opcode: got %s"
           (match other with
           | Ok r -> Proto.render_response r
           | Error m -> m)));
    (match raw "\x10\x00" with
    | Ok (Proto.Error (Proto.Parse_error, _)) -> check ctx ~phase true ""
    | other ->
      check ctx ~phase false
        (Printf.sprintf "truncated payload: got %s"
           (match other with
           | Ok r -> Proto.render_response r
           | Error m -> m)));
    (* Still alive on the same connection? *)
    (match Client.call client Proto.Ping with
    | Ok Proto.Ok_empty -> check ctx ~phase true ""
    | other ->
      check ctx ~phase false
        (Printf.sprintf "ping after malformed payloads: %s"
           (match other with
           | Ok r -> Proto.render_response r
           | Error m -> m)));
    Client.close client

let ping_ok ctx ~phase detail =
  match Client.connect ctx.address with
  | Error m -> check ctx ~phase false (detail ^ ": connect: " ^ m)
  | Ok c ->
    (match Client.call c Proto.Ping with
    | Ok Proto.Ok_empty -> check ctx ~phase true ""
    | Ok r ->
      check ctx ~phase false
        (Printf.sprintf "%s: ping got %s" detail (Proto.render_response r))
    | Error m -> check ctx ~phase false (Printf.sprintf "%s: ping: %s" detail m));
    Client.close c

let phase_drops ctx =
  let phase = "drops" in
  (* Half a frame header, then abrupt close. *)
  (match Client.connect ctx.address with
  | Error m -> check ctx ~phase false ("connect: " ^ m)
  | Ok c ->
    let fd = Client.fd c in
    ignore (Unix.write fd (Bytes.of_string "\x00\x00") 0 2);
    Client.close c);
  ping_ok ctx ~phase "after half-header drop";
  (* A declared length with no payload, then close. *)
  (match Client.connect ctx.address with
  | Error m -> check ctx ~phase false ("connect: " ^ m)
  | Ok c ->
    let fd = Client.fd c in
    ignore (Unix.write fd (Bytes.of_string "\x00\x00\x00\x08") 0 4);
    Client.close c);
  ping_ok ctx ~phase "after headerless-payload drop";
  (* An oversized declaration: one Too_large frame, then closed. *)
  (match Client.connect ctx.address with
  | Error m -> check ctx ~phase false ("connect: " ^ m)
  | Ok c ->
    let fd = Client.fd c in
    ignore (Unix.write fd (Bytes.of_string "\x7f\xff\xff\xff") 0 4);
    (match Proto.read_frame ~deadline_s:10. fd with
    | Proto.Frame reply -> (
      match Proto.decode_response reply with
      | Ok (Proto.Error (Proto.Too_large, _)) -> check ctx ~phase true ""
      | Ok r ->
        check ctx ~phase false
          (Printf.sprintf "oversized: got %s" (Proto.render_response r))
      | Error m -> check ctx ~phase false ("oversized: " ^ m))
    | Proto.Eof -> check ctx ~phase true "" (* close without reply: also clean *)
    | _ -> check ctx ~phase false "oversized: no reply and no close");
    Client.close c);
  ping_ok ctx ~phase "after oversized declaration"

let phase_slow_loris ctx =
  let phase = "slow-loris" in
  match Client.connect ctx.address with
  | Error m -> check ctx ~phase false ("connect: " ^ m)
  | Ok c ->
    let fd = Client.fd c in
    let payload = Proto.encode_request Proto.Ping in
    let len = String.length payload in
    let hdr =
      Bytes.of_string
        (Printf.sprintf "%c%c%c%c"
           (Char.chr ((len lsr 24) land 0xFF))
           (Char.chr ((len lsr 16) land 0xFF))
           (Char.chr ((len lsr 8) land 0xFF))
           (Char.chr (len land 0xFF)))
    in
    ignore (Unix.write fd hdr 0 4);
    (* Trickle nothing past the header for longer than the read
       deadline; the server must close rather than hold the slot. *)
    let t0 = Unix.gettimeofday () in
    let closed =
      match Proto.read_frame ~deadline_s:(read_timeout_s *. 4.) fd with
      | Proto.Eof -> true
      | _ -> false
    in
    let waited = Unix.gettimeofday () -. t0 in
    check ctx ~phase closed
      (Printf.sprintf "stalled frame not closed after %.1fs" waited);
    check ctx ~phase
      (waited <= read_timeout_s *. 3.)
      (Printf.sprintf "close took %.1fs (timeout %.1fs)" waited read_timeout_s);
    Client.close c;
    ping_ok ctx ~phase "after loris connection"

let phase_overload ctx rng ~threads ~per_thread ~deadline_every =
  let phase = "overload" in
  let rngs = Prng.Rng.split_n rng threads in
  let workers =
    List.init threads (fun i ->
        Thread.create
          (fun () ->
            match Client.connect ctx.address with
            | Error m -> check ctx ~phase false ("connect: " ^ m)
            | Ok client ->
              let rng = rngs.(i) in
              let ops = [| `Foremost; `Arrivals; `Reach; `Ecc |] in
              for k = 1 to per_thread do
                let id, n =
                  List.nth ctx.instances
                    (Prng.Rng.int rng (List.length ctx.instances))
                in
                let src = Prng.Rng.int rng n in
                let op = ops.(Prng.Rng.int rng (Array.length ops)) in
                (* A sprinkle of aggressive deadlines provokes the
                   Deadline_exceeded path under load. *)
                let deadline_ms = if k mod deadline_every = 0 then 1 else 0 in
                checked_query ctx ~phase ~lenient:true ~draining:false client
                  op
                  (q ~target:(Prng.Rng.int rng n) ~deadline_ms id src)
              done;
              Client.close client)
          ())
  in
  List.iter Thread.join workers;
  (* The server must still account coherently after the burst. *)
  match Client.connect ctx.address with
  | Error m -> check ctx ~phase false ("post-burst connect: " ^ m)
  | Ok c ->
    (match Client.call c Proto.Stats with
    | Ok (Proto.Ok_text _) -> check ctx ~phase true ""
    | Ok r ->
      check ctx ~phase false
        (Printf.sprintf "post-burst stats: got %s" (Proto.render_response r))
    | Error m -> check ctx ~phase false ("post-burst stats: " ^ m));
    Client.close c

(* Sustained traffic while the router's shard-kill fault SIGKILLs live
   shards: every reply must still be oracle-correct or a clean typed
   error (Unavailable while the owning shard respawns), and the
   connection to the router itself must never die or desync. *)
let phase_shard_kill ctx rng ~threads ~per_thread =
  let phase = "shard-kill" in
  let rngs = Prng.Rng.split_n rng threads in
  let workers =
    List.init threads (fun i ->
        Thread.create
          (fun () ->
            match Client.connect ctx.address with
            | Error m -> check ctx ~phase false ("connect: " ^ m)
            | Ok client ->
              let rng = rngs.(i) in
              let ops = [| `Foremost; `Arrivals; `Reach; `Ecc |] in
              for _ = 1 to per_thread do
                let id, n =
                  List.nth ctx.instances
                    (Prng.Rng.int rng (List.length ctx.instances))
                in
                let src = Prng.Rng.int rng n in
                let op = ops.(Prng.Rng.int rng (Array.length ops)) in
                checked_query ctx ~phase ~lenient:true ~draining:false client
                  op
                  (q ~target:(Prng.Rng.int rng n) id src);
                (* Pace the burst so kills land mid-traffic rather
                   than between two instants of it. *)
                Thread.delay 0.005
              done;
              Client.close client)
          ())
  in
  List.iter Thread.join workers;
  ping_ok ctx ~phase "after shard-kill burst"

let phase_sigterm ctx rng ~pid ~threads ~per_thread =
  let phase = "sigterm" in
  let rngs = Prng.Rng.split_n rng threads in
  let workers =
    List.init threads (fun i ->
        Thread.create
          (fun () ->
            match Client.connect ctx.address with
            | Error m ->
              (* The listener may already be gone — that is a clean
                 refusal, not a violation. *)
              ignore m
            | Ok client ->
              let rng = rngs.(i) in
              let ops = [| `Foremost; `Reach; `Ecc |] in
              (try
                 for _ = 1 to per_thread do
                   let id, n =
                     List.nth ctx.instances
                       (Prng.Rng.int rng (List.length ctx.instances))
                   in
                   let src = Prng.Rng.int rng n in
                   let op = ops.(Prng.Rng.int rng (Array.length ops)) in
                   checked_query ctx ~phase ~lenient:true ~draining:true
                     client op
                     (q ~target:(Prng.Rng.int rng n) id src)
                 done
               with _ -> ());
              Client.close client)
          ())
  in
  (* Let the burst get airborne, then pull the trigger. *)
  Unix.sleepf 0.05;
  Unix.kill pid Sys.sigterm;
  List.iter Thread.join workers

(* ------------------------------------------------------------------ *)
(* Child-server management *)

let spawn_server ~exe ~args =
  let stdout_r, stdout_w = Unix.pipe () in
  let pid =
    Unix.create_process exe
      (Array.of_list (exe :: args))
      Unix.stdin stdout_w Unix.stderr
  in
  Unix.close stdout_w;
  (pid, stdout_r)

let wait_ready fd ~timeout_s =
  let deadline = Unix.gettimeofday () +. timeout_s in
  let buf = Buffer.create 64 in
  let b = Bytes.create 256 in
  let rec go () =
    if Buffer.contents buf |> String.split_on_char '\n'
       |> List.exists (fun l -> String.length l >= 5 && String.sub l 0 5 = "READY")
    then true
    else begin
      let remaining = deadline -. Unix.gettimeofday () in
      if remaining <= 0. then false
      else
        match Unix.select [ fd ] [] [] remaining with
        | [], _, _ -> false
        | _ -> (
          match Unix.read fd b 0 256 with
          | 0 -> false
          | k ->
            Buffer.add_subbytes buf b 0 k;
            go ()
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ())
    end
  in
  go ()

let wait_exit pid ~timeout_s =
  let deadline = Unix.gettimeofday () +. timeout_s in
  let rec go () =
    match Unix.waitpid [ Unix.WNOHANG ] pid with
    | 0, _ ->
      if Unix.gettimeofday () > deadline then None
      else begin
        Unix.sleepf 0.05;
        go ()
      end
    | _, Unix.WEXITED c -> Some c
    | _, Unix.WSIGNALED s -> Some (-s)
    | _, Unix.WSTOPPED _ ->
      Unix.sleepf 0.05;
      go ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
  in
  go ()

let percentile_of sorted qv =
  let n = Array.length sorted in
  if n = 0 then 0.
  else sorted.(min (n - 1) (int_of_float (qv *. float_of_int (n - 1) +. 0.5)))

(* ------------------------------------------------------------------ *)

(* Substring scan, used for both the schema tag and spec keys. *)
let contains body needle =
  let nl = String.length needle and bl = String.length body in
  let rec scan i = i + nl <= bl && (String.sub body i nl = needle || scan (i + 1)) in
  scan 0

let run ~exe ~dir ~seed ~quick ~fault_spec ~backend ~jobs ~shards =
  Store.Fsio.ensure_dir dir;
  (* A sharded soak arms the shard-kill site unless the caller's spec
     already decided the rate: crash-respawn must run under live
     traffic, not just in unit tests.  The rate is low enough that a
     shard essentially never exhausts its respawn budget. *)
  let fault_spec =
    if shards <= 0 then fault_spec
    else
      match fault_spec with
      | Some s when contains s "shard-kill" -> Some s
      | Some s -> Some (s ^ ",shard-kill=0.008")
      | None -> Some (Printf.sprintf "seed=%d,shard-kill=0.008" seed)
  in
  let kill_armed =
    shards > 0
    && (match fault_spec with Some s -> contains s "shard-kill" | None -> false)
  in
  let n1, n2 = if quick then (32, 40) else (96, 128) in
  let manifest_path = Filename.concat dir "manifest.txt" in
  let socket_path = Filename.concat dir "serve.sock" in
  let ledger_path = Filename.concat dir "ledger.json" in
  let store_dir = Filename.concat dir "store" in
  let lines = manifest_lines ~n1 ~n2 ~seed in
  Store.Fsio.write_atomic manifest_path (String.concat "\n" lines ^ "\n");
  (* The oracle: rows computed in-process from the same specs.  The
     implicit backend is label-identical to the dense one, so this
     covers whichever backend the child serves. *)
  let corpus = Corpus.load ~backend:Sim.Backend.Implicit lines in
  let oracle = Hashtbl.create 512 in
  let instances =
    Corpus.available corpus
    |> List.map (fun (id, net) ->
           let n = Temporal.Tgraph.n net in
           for src = 0 to n - 1 do
             let arr = Temporal.Foremost.arrivals_borrowed net src in
             Hashtbl.add oracle (id, src) (Array.sub arr 0 n)
           done;
           (id, n))
  in
  if instances = [] then Stdlib.Error "soak corpus has no healthy instances"
  else begin
    let args =
      [
        "serve";
        "--socket"; socket_path;
        "--manifest"; manifest_path;
        "--backend"; Sim.Backend.to_string backend;
        "--jobs"; string_of_int jobs;
        "--queue-max"; string_of_int queue_max;
        "--read-timeout"; Printf.sprintf "%g" read_timeout_s;
        "--batch-window-ms"; "1";
        "--report"; ledger_path;
        "--store"; store_dir;
        "--seed"; string_of_int seed;
      ]
      @ (if shards > 0 then [ "--shards"; string_of_int shards ] else [])
      @ (match fault_spec with
        | Some s -> [ "--fault-spec"; s ]
        | None -> [])
    in
    let pid, child_out = spawn_server ~exe ~args in
    let ready = wait_ready child_out ~timeout_s:30. in
    if not ready then begin
      (try Unix.kill pid Sys.sigkill with _ -> ());
      ignore (wait_exit pid ~timeout_s:5.);
      (try Unix.close child_out with _ -> ());
      Stdlib.Error "server never announced READY"
    end
    else begin
      let ctx =
        {
          address = Server.Unix_path socket_path;
          oracle;
          instances;
          kill_armed;
          cm = Mutex.create ();
          checks = 0;
          violations = [];
          latencies = [];
          query_count = 0;
          c_checks = Obs.Metrics.counter "soak.checks";
          c_violations = Obs.Metrics.counter "soak.violations";
          h_latency = Obs.Metrics.histogram "soak.latency_ms";
        }
      in
      let rng = Prng.Rng.create seed in
      let t0 = Unix.gettimeofday () in
      phase_correctness ctx (Prng.Rng.split rng)
        ~rounds:(if quick then 60 else 300);
      phase_typed_errors ctx;
      phase_drops ctx;
      phase_slow_loris ctx;
      (* More clients than [queue_max] admission slots: with the
         1 ms coalescing window the queue genuinely overfills, so the
         Resource_exhausted path runs live, not just in unit tests. *)
      phase_overload ctx (Prng.Rng.split rng)
        ~threads:(if quick then 40 else 48)
        ~per_thread:(if quick then 8 else 25)
        ~deadline_every:7;
      if kill_armed then
        phase_shard_kill ctx (Prng.Rng.split rng) ~threads:4
          ~per_thread:(if quick then 120 else 250);
      phase_sigterm ctx (Prng.Rng.split rng) ~pid
        ~threads:(if quick then 3 else 6)
        ~per_thread:(if quick then 15 else 60);
      let wall_s = Unix.gettimeofday () -. t0 in
      let server_exit = wait_exit pid ~timeout_s:30. in
      (match server_exit with
      | Some 0 -> check ctx ~phase:"exit" true ""
      | Some c ->
        check ctx ~phase:"exit" false
          (Printf.sprintf "server exited %d, want 0" c)
      | None ->
        (try Unix.kill pid Sys.sigkill with _ -> ());
        ignore (wait_exit pid ~timeout_s:5.);
        check ctx ~phase:"exit" false "server hung after SIGTERM; killed");
      (try Unix.close child_out with _ -> ());
      (* The ledger must have been published atomically on drain:
         present, schema-tagged, queue peak within the bound. *)
      let ledger_ok =
        match Store.Fsio.read_file ledger_path with
        | None ->
          check ctx ~phase:"ledger" false "ledger not published";
          false
        | Some body ->
          let has_schema =
            let needle = "ephemeral-serve-ledger" in
            let nl = String.length needle and bl = String.length body in
            let rec scan i =
              i + nl <= bl && (String.sub body i nl = needle || scan (i + 1))
            in
            scan 0
          in
          check ctx ~phase:"ledger" has_schema "ledger missing schema tag";
          let peak_ok =
            match
              String.split_on_char '\n' body
              |> List.find_opt (fun l ->
                     String.length l > 0
                     &&
                     let t = String.trim l in
                     String.length t > 13 && String.sub t 0 13 = {|"queue_peak":|})
            with
            | None -> false
            | Some l -> (
              let t = String.trim l in
              let v =
                String.sub t 13 (String.length t - 13)
                |> String.map (fun c -> if c = ',' then ' ' else c)
                |> String.trim
              in
              match int_of_string_opt v with
              | Some p -> p <= queue_max
              | None -> false)
          in
          check ctx ~phase:"ledger" peak_ok
            (Printf.sprintf "queue_peak missing or above bound %d" queue_max);
          has_schema && peak_ok
      in
      let lat = Array.of_list ctx.latencies in
      Array.sort compare lat;
      Stdlib.Ok
        {
          checks = ctx.checks;
          violations = List.rev ctx.violations;
          queries = ctx.query_count;
          p50_ms = percentile_of lat 0.5;
          p99_ms = percentile_of lat 0.99;
          qps =
            (if wall_s > 0. then float_of_int ctx.query_count /. wall_s
             else 0.);
          server_exit;
          ledger_ok;
        }
    end
  end
