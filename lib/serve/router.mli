(** The sharded [ephemeral serve --shards N] parent process: a frame
    router in front of N supervised shard workers.

    Query frames are routed by {!Proto.peek_instance} +
    {!Corpus.shard_of} and their request/reply bytes cross the router
    untouched, so reply byte-identity at any shard count is
    structural.  Control ops are answered from router state: PING
    locally, HEALTH/READY/LIST from a startup snapshot of every
    shard's LIST merged back into manifest order, STATS by fan-out and
    sum.  Unroutable payloads forward opaque to shard 0, whose decoder
    produces the single-process error bytes.

    A supervisor thread reaps crashed shards and respawns them with
    {!Fault.Retry.backoff_delay} under a bounded budget; requests to a
    down shard answer typed [Unavailable].  With
    {!Fault.Plan.t.shard_kill} positive it SIGKILLs live shards on
    deterministic rolls — the chaos soak's crash-respawn site.

    Graceful drain cascades SIGTERM to the shards and publishes one
    merged ledger whose deterministic section is byte-identical at any
    shard count. *)

type config = {
  address : Server.address;
  shards : int;
  shard_argv : int -> string array;
      (** argv to (re)spawn shard [k] — the running binary with
          [--shard-index k] *)
  shard_socket : int -> string;
  read_timeout_s : float;
  shard_call_timeout_s : float;
      (** bound on waiting for a shard's reply to one forwarded frame;
          expiry answers the client [Unavailable] and drops the shard
          link *)
  max_conns : int;
  queue_max : int;  (** the shards' admission bound, for the ledger *)
  ledger_path : string option;
  install_signals : bool;
  announce : out_channel option;
  manifest_ids : string list;
      (** {!Corpus.manifest_ids} of the full manifest, for the LIST
          merge *)
  backend : Sim.Backend.t;
  shard_ready_timeout_s : float;
  max_respawns : int;
  fault : Fault.Plan.t;
}

val default_config : config

val run : ?config:config -> unit -> (unit, string) result
(** Spawn and await the shards, serve until the graceful-shutdown
    signal, drain, and return.  [Error] only for startup failures
    (a shard that never became ready, an unbindable socket) — already
    spawned shards are terminated before returning.
    @raise Invalid_argument if [shards < 1]. *)

(**/**)

(* Exposed for tests. *)
val parse_stats_text : string -> Ledger.volatile option
val render_stats_text : Ledger.volatile -> string

val merge_list_rows :
  manifest_ids:string list ->
  (string * string * string) list list ->
  (string * string * string) list

val snapshot_health : (string * string * string) list -> string
