(* Minimal blocking client: one socket, one request in flight.  Used
   by `ephemeral query`, the chaos soak, and the tests — all of which
   want errors as values, never exceptions (the soak counts protocol
   violations; a raise would abort the count). *)

type t = { fd : Unix.file_descr; mutable closed : bool }

let connect ?(timeout_s = 10.) address =
  let domain, addr =
    match (address : Server.address) with
    | Server.Unix_path p -> (Unix.PF_UNIX, Unix.ADDR_UNIX p)
    | Server.Tcp (host, port) ->
      let a =
        try (Unix.gethostbyname host).Unix.h_addr_list.(0)
        with Not_found -> Unix.inet_addr_of_string host
      in
      (Unix.PF_INET, Unix.ADDR_INET (a, port))
  in
  let deadline = Unix.gettimeofday () +. timeout_s in
  let rec attempt () =
    let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
    match Unix.connect fd addr with
    | () -> Ok { fd; closed = false }
    | exception Unix.Unix_error (e, _, _) ->
      (try Unix.close fd with _ -> ());
      if Unix.gettimeofday () < deadline then begin
        (* The server may still be binding (startup race in the soak
           and CI): retry inside the window. *)
        Unix.sleepf 0.02;
        attempt ()
      end
      else Error (Printf.sprintf "connect: %s" (Unix.error_message e))
  in
  attempt ()

let close t =
  if not t.closed then begin
    t.closed <- true;
    try Unix.close t.fd with _ -> ()
  end

let fd t = t.fd

let call ?(timeout_s = 30.) t request =
  match Proto.write_frame t.fd (Proto.encode_request request) with
  | exception e -> Error (Printf.sprintf "write: %s" (Printexc.to_string e))
  | () -> (
    match Proto.read_frame ~deadline_s:timeout_s t.fd with
    | Proto.Frame payload -> (
      match Proto.decode_response payload with
      | Ok r -> Ok r
      | Error m -> Error (Printf.sprintf "protocol violation: %s" m))
    | Proto.Eof -> Error "connection closed by server"
    | Proto.Timeout -> Error "timed out waiting for reply"
    | Proto.Oversized k ->
      Error (Printf.sprintf "protocol violation: %d-byte reply frame" k))
