(* Shard-worker process management for the sharded router.

   A shard is an ordinary `ephemeral serve` process re-exec'd from the
   running binary with a hidden [--shard-index K] flag: it loads only
   its consistent-hash partition of the manifest and listens on a
   private socket derived from the public one.  Re-exec (not fork) is
   deliberate: the router runs systhreads and an accept loop, and a
   forked child would inherit that mid-flight state; a fresh exec also
   makes crash-respawn identical to first spawn.

   Readiness is probed by PING over the shard's socket, not by parsing
   child stdout — shards announce nothing, so the router's own READY
   line is the only one the parent's supervisor (soak, CI scripts)
   ever sees. *)

let socket_path base k = Printf.sprintf "%s.shard-%d" base k
let ledger_path base k = Printf.sprintf "%s.shard-%d" base k

let spawn argv =
  Unix.create_process argv.(0) argv Unix.stdin Unix.stdout Unix.stderr

(* Poll PING until the shard answers.  Connect failures (socket not
   bound yet, stale socket from a crashed predecessor) and non-PONG
   replies both just retry inside the window. *)
let wait_ready ?(timeout_s = 10.) socket =
  let deadline = Unix.gettimeofday () +. timeout_s in
  let rec loop () =
    if Unix.gettimeofday () >= deadline then
      Error (Printf.sprintf "shard on %s not ready after %.1fs" socket timeout_s)
    else
      match Client.connect ~timeout_s:0.2 (Server.Unix_path socket) with
      | Error _ ->
        Thread.delay 0.02;
        loop ()
      | Ok c ->
        let r = Client.call ~timeout_s:1.0 c Proto.Ping in
        Client.close c;
        (match r with
        | Ok Proto.Ok_empty -> Ok ()
        | _ ->
          Thread.delay 0.02;
          loop ())
  in
  loop ()

(* Reap one pid without blocking.  [None] = still running. *)
let poll_exit pid =
  match Unix.waitpid [ Unix.WNOHANG ] pid with
  | 0, _ -> None
  | _, status -> Some status
  | exception Unix.Unix_error (Unix.ECHILD, _, _) ->
    (* Already reaped (or never ours): treat as exited. *)
    Some (Unix.WEXITED 0)

(* SIGTERM, bounded wait for the graceful drain, SIGKILL escalation.
   Must only run once no other thread is reaping this pid. *)
let terminate ?(timeout_s = 10.) pid =
  (try Unix.kill pid Sys.sigterm with _ -> ());
  let deadline = Unix.gettimeofday () +. timeout_s in
  let rec wait () =
    match poll_exit pid with
    | Some status -> status
    | None ->
      if Unix.gettimeofday () >= deadline then begin
        (try Unix.kill pid Sys.sigkill with _ -> ());
        match Unix.waitpid [] pid with
        | _, status -> status
        | exception Unix.Unix_error (Unix.ECHILD, _, _) -> Unix.WEXITED 0
      end
      else begin
        Thread.delay 0.02;
        wait ()
      end
  in
  wait ()
