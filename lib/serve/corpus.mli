(** The corpus a server loads at startup: named temporal instances
    described by one compact spec per manifest line,

    {[ id=clq1k,family=clique,n=1024,a=1024,r=1,seed=7 ]}

    ([id], [family], [n] required; [a] defaults to [n], [r] to [1],
    [seed] to [1]).  The realised instance is the experiment
    pipeline's: topology from {!Sim.Family.build}, labels the derived
    draws of {!Temporal.Tgraph.of_derived} — so dense and implicit
    backends serve label-identical instances and replies byte-compare
    across backends.

    Loading is degraded-tolerant: a malformed line or a build failure
    yields a [Failed] instance the server answers [Unavailable] for,
    while healthy instances serve normally. *)

type spec = {
  id : string;
  family : Sim.Family.t;
  n : int;
  a : int;  (** lifetime *)
  r : int;  (** label draws per edge *)
  seed : int;
}

type status = Available of Temporal.Tgraph.t | Failed of string

type instance = {
  spec_id : string;
  spec : spec option;  (** [None] when the line didn't even parse *)
  status : status;
}

type t

val parse_spec : string -> (spec, string) result
val spec_to_string : spec -> string

val shard_of : shards:int -> string -> int
(** Which shard owns an instance id: FNV-1a 64-bit of the id mod
    [shards].  Pure, so router and shard workers agree from the id
    alone; [shards <= 1] always answers [0]. *)

val manifest_ids : string list -> string list
(** The ids of every non-comment manifest line, in order, without
    building anything — parsed ids where the line parses, salvaged
    ids where it does not.  Exactly the ids {!load} would serve. *)

val load : ?shard:int * int -> backend:Sim.Backend.t -> string list -> t
(** Build every non-comment line ([#] and blank lines are skipped);
    failures become [Failed] instances, never exceptions.
    [?shard:(index, total)] keeps only the lines whose (post-salvage)
    id satisfies [shard_of ~shards:total id = index], deciding
    ownership {e before} building — a shard pays nothing for lines it
    does not own.  An empty partition is a valid (unhealthy) corpus. *)

val read_file : string -> (string list, string) result
(** The raw lines of a manifest file; [Error] when unreadable. *)

val load_file :
  ?shard:int * int -> backend:Sim.Backend.t -> string -> (t, string) result
(** [Error] only when the file itself cannot be read. *)

val load_spec : Sim.Backend.t -> spec -> instance
val backend : t -> Sim.Backend.t
val find : t -> string -> instance option
val instances : t -> instance list

val available : t -> (string * Temporal.Tgraph.t) list
(** Healthy instances in manifest order. *)

val degraded : t -> bool
(** Did any instance fail to load? *)

val healthy : t -> bool
(** Is at least one instance available? *)

val list_rows : t -> (string * string * string) list
(** [(id, "available"|"failed", detail)] rows for the LIST reply, in
    manifest order. *)
