(** The [ephemeral serve] process: listener, per-connection reader
    threads, the {!Engine} behind them, and the graceful-drain state
    machine (DESIGN.md §15).

    Drain: the first SIGTERM/SIGINT (via
    {!Fault.Shutdown.set_graceful}) flips an atomic and wakes the
    accept thread, which stops accepting, flushes every admitted job
    through {!Engine.drain}, shuts down surviving connections, joins
    their threads, publishes the run ledger atomically, unlinks the
    socket, and returns — so the process exits 0.  A second signal
    takes the immediate exit-130/143 path. *)

type address = Unix_path of string | Tcp of string * int

val parse_address : string -> (address, string) result
(** ["tcp:HOST:PORT"] is TCP; anything else is a Unix socket path. *)

val address_to_string : address -> string

type config = {
  address : address;
  read_timeout_s : float;  (** per-frame deadline on connection reads *)
  max_conns : int;
      (** connection-table bound; an over-limit accept is answered
          with one [Resource_exhausted] frame and closed *)
  engine : Engine.config;
  ledger_path : string option;  (** published atomically on drain *)
  install_signals : bool;
      (** arm {!Fault.Shutdown.set_graceful}; off for in-process tests *)
  announce : out_channel option;
      (** where the ["READY <address>"] line goes once listening *)
}

val default_config : config

val run : ?config:config -> Corpus.t -> unit
(** Bind, announce, serve until drained.  Blocks; returns after a
    complete drain (the caller should then exit 0). *)

val run_background : ?config:config -> Corpus.t -> unit -> unit
(** In-process server on a background thread (signals are never
    installed, the announce line is suppressed).  Returns once the
    listener is bound; the returned thunk initiates the drain and
    joins — for tests and the bench harness. *)
