(** Wire protocol of [ephemeral serve]: length-prefixed binary frames.

    Framing: 4-byte big-endian payload length, then the payload,
    capped at {!max_frame} so a hostile peer cannot force unbounded
    allocation.  Payload integers are big-endian u32 with
    [0xFFFF_FFFF] as the none/unreachable sentinel; strings are
    u16-length-prefixed.  Encoding is a pure function of the value —
    scripted sessions byte-diff across job counts and backends.

    Frame reads take a wall-clock deadline enforced with select(2)
    before every read(2), so a slow-loris peer occupies one connection
    for a bounded time. *)

val max_frame : int
(** Maximum payload size (1 MiB). *)

type query = {
  instance : string;
  source : int;
  target : int;  (** meaningful for [Foremost] only *)
  deadline_ms : int;  (** 0 = no deadline *)
}

type request =
  | Ping
  | Health
  | Ready
  | List
  | Stats
  | Foremost of query  (** earliest arrival source -> target *)
  | Arrivals of query  (** the source's full arrival vector *)
  | Reach of query  (** vertices reachable from the source *)
  | Ecc of query  (** temporal eccentricity of the source *)

type error_code =
  | Parse_error
  | Unknown_op
  | Unknown_instance
  | Unavailable  (** instance failed to load; server is degraded *)
  | Resource_exhausted  (** admission queue full — load shed *)
  | Deadline_exceeded
  | Shutting_down
  | Too_large
  | Bad_arg
  | Internal

type response =
  | Ok_empty
  | Ok_value of int option  (** foremost / ecc; [None] = unreachable *)
  | Ok_count of int
  | Ok_vector of int array  (** arrivals; [max_int] = unreachable *)
  | Ok_list of (string * string * string) list  (** id, status, detail *)
  | Ok_text of string
  | Error of error_code * string

val error_code_to_string : error_code -> string

val encode_request : request -> string
val decode_request : string -> (request, error_code * string) result

val peek_instance : string -> string option
(** The instance-id operand of a query-op request payload, read from
    the fixed prefix alone — the sharded router's routing key.  [None]
    for control ops, unknown opcodes, and payloads too short to carry
    the id (which the router forwards opaque so the owning decoder
    produces its exact error bytes). *)

val encode_response : response -> string

val decode_response : string -> (response, string) result
(** Client side; a decode failure is a protocol violation (the soak
    counts these). *)

type read_result =
  | Frame of string
  | Eof  (** peer closed before/inside a frame *)
  | Timeout  (** deadline elapsed mid-frame (slow loris) *)
  | Oversized of int  (** declared length exceeded {!max_frame} *)

val read_frame : ?deadline_s:float -> Unix.file_descr -> read_result
(** Read one frame.  [deadline_s] (default 30) bounds the whole frame,
    header included. *)

val write_frame : Unix.file_descr -> string -> unit
(** Write one frame (blocking).  @raise Invalid_argument if the
    payload exceeds {!max_frame}.  Unix errors (EPIPE on a dead peer)
    propagate. *)

val render_response : response -> string
(** Deterministic one-line text rendering, used by [ephemeral query]
    scripted sessions and the soak log. *)
