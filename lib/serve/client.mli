(** Minimal blocking client: one socket, one request in flight.
    Errors come back as values — the soak counts protocol violations
    and must never abort on one. *)

type t

val connect :
  ?timeout_s:float -> Server.address -> (t, string) result
(** Retries inside the window (default 10 s) while the server is still
    binding. *)

val close : t -> unit
val fd : t -> Unix.file_descr
(** The raw socket, for fault injection (abrupt close, trickled
    writes) in the soak. *)

val call :
  ?timeout_s:float -> t -> Proto.request -> (Proto.response, string) result
(** One round trip.  [Error] covers transport failures and protocol
    violations (undecodable reply, oversized frame). *)
