(** [ephemeral chaos --serve]: a self-checking client soak against a
    live, fault-armed child server process.

    Forks the real binary, waits for READY, then runs phases targeting
    one robustness claim each: oracle correctness, typed errors on
    malformed input, connection drops, slow-loris reads, overload
    shedding, and SIGTERM mid-burst (clean exit 0 + atomically
    published ledger + admission-queue peak within bound).  Violations
    are collected, not thrown — one run reports the full damage.

    With [shards > 0] the child runs the sharded router, the
    shard-kill fault is armed by default, and a dedicated phase keeps
    query traffic flowing while shards are SIGKILLed and respawned
    underneath it — replies must stay correct or typed
    [Unavailable]. *)

type outcome = {
  checks : int;
  violations : string list;  (** empty = soak passed *)
  queries : int;  (** client-side query count *)
  p50_ms : float;  (** client-observed round-trip latency *)
  p99_ms : float;
  qps : float;
  server_exit : int option;
      (** [Some 0] on a clean drain; [None] = hung and killed *)
  ledger_ok : bool;
}

val run :
  exe:string ->
  dir:string ->
  seed:int ->
  quick:bool ->
  fault_spec:string option ->
  backend:Sim.Backend.t ->
  jobs:int ->
  shards:int ->
  (outcome, string) result
(** [Error] only when the soak could not run at all (server never came
    up); assertion failures land in [violations]. *)
