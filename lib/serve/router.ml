(* The sharded `ephemeral serve --shards N` parent: a frame router in
   front of N shard-worker processes.

   Topology.  Each shard is the binary re-exec'd with a hidden
   [--shard-index K]: it loads only the manifest lines whose id hashes
   to K ({!Corpus.shard_of}) and serves them on a private socket, with
   its own Exec pool, row cache, and store handle.  The router binds
   the public socket, accepts client connections, and forwards frames:

   - query ops are routed by {!Proto.peek_instance} — the instance id
     read from the payload's fixed prefix — and the request/reply
     bytes cross the router *untouched* (no decode, no re-encode), so
     reply byte-identity at any shard count is structural;
   - control ops the router answers itself: PING locally, HEALTH /
     READY / LIST from the startup snapshot of every shard's LIST
     (merged back into manifest order), STATS by fanning out to the
     shards and summing;
   - anything unroutable (unknown opcode, payload too short to carry
     an instance id) is forwarded opaque to shard 0, whose decoder
     produces the exact error bytes a single-process server would.

   Each connection thread keeps its own lazily-connected fd per shard,
   so replies need no multiplexing and per-client ordering is the
   stream order — the same contract as the single-process server.

   Supervision.  A supervisor thread reaps crashed shards (SIGCHLD
   flips an atomic; a WNOHANG scan runs every tick regardless) and
   respawns them under {!Fault.Retry.backoff_delay} with a bounded
   budget; a shard that keeps dying is left down for good.  While a
   shard is down its queries answer a typed UNAVAILABLE — never a
   hang, never a torn frame.  The supervisor is also the shard-kill
   fault site: with [shard_kill > 0] it rolls
   [Plan.roll ~site:"serve.shard_kill" ~a:tick ~b:shard] and SIGKILLs
   live shards, which is how the chaos soak exercises crash-respawn
   under live traffic.

   Drain.  First SIGTERM/SIGINT: stop accepting, join the supervisor,
   shut client connections, collect final STATS from every live
   shard, cascade SIGTERM to the shards (each drains and writes its
   per-shard ledger), and publish one merged ledger whose
   deterministic section — backend, queue bound, manifest-ordered
   instance table — is byte-identical at any shard count. *)

type config = {
  address : Server.address;
  shards : int;
  shard_argv : int -> string array;  (* argv to (re)spawn shard k *)
  shard_socket : int -> string;
  read_timeout_s : float;  (* per-frame deadline on client reads *)
  shard_call_timeout_s : float;  (* per-reply deadline on shard reads *)
  max_conns : int;
  queue_max : int;  (* shards' admission bound, for the ledger *)
  ledger_path : string option;
  install_signals : bool;
  announce : out_channel option;
  manifest_ids : string list;  (* ids in manifest order, for the merge *)
  backend : Sim.Backend.t;
  shard_ready_timeout_s : float;
  max_respawns : int;  (* crash-respawn budget per shard *)
  fault : Fault.Plan.t;
}

let default_config =
  {
    address = Server.Unix_path "ephemeral.sock";
    shards = 2;
    shard_argv = (fun _ -> [||]);
    shard_socket = (fun k -> Shard.socket_path "ephemeral.sock" k);
    read_timeout_s = 10.;
    shard_call_timeout_s = 30.;
    max_conns = 64;
    queue_max = Engine.default_config.Engine.queue_max;
    ledger_path = None;
    install_signals = true;
    announce = Some stdout;
    manifest_ids = [];
    backend = Sim.Backend.Dense;
    shard_ready_timeout_s = 10.;
    max_respawns = 5;
    fault = Fault.Plan.default;
  }

type shard_state =
  | Live of { pid : int; since : float; crashes : int }
  | Down of { crashes : int; next_try : float }
  | Dead  (* respawn budget exhausted *)

type slot = { index : int; socket : string; mutable state : shard_state }

type conn = { c_id : int; c_fd : Unix.file_descr }

type t = {
  cfg : config;
  listen_fd : Unix.file_descr;
  draining : bool Atomic.t;
  listen_closed : bool Atomic.t;
  chld : bool Atomic.t;  (* flipped by the SIGCHLD handler *)
  sm : Mutex.t;  (* guards slots' state *)
  slots : slot array;
  snapshot : (string * string * string) list;  (* merged LIST rows *)
  cm : Mutex.t;
  mutable conns : conn list;
  mutable conn_threads : Thread.t list;
  mutable next_conn : int;
  mutable supervisor : Thread.t option;
  started_at : float;
  h_latency : Obs.Metrics.histogram;  (* end-to-end, router side *)
}

(* ------------------------------------------------------------------ *)
(* STATS text merge

   Shards report tallies as the STATS one-liner ("queries=12 shed=0
   ..."); the router parses that k=v text rather than any JSON, sums
   across shards, and re-renders the identical shape. *)

let parse_stats_text s =
  let kv = Hashtbl.create 8 in
  String.split_on_char ' ' s
  |> List.iter (fun field ->
         match String.index_opt field '=' with
         | None -> ()
         | Some i -> (
           let k = String.sub field 0 i in
           let v = String.sub field (i + 1) (String.length field - i - 1) in
           match int_of_string_opt v with
           | Some n -> Hashtbl.replace kv k n
           | None -> ()));
  let get k = Option.value (Hashtbl.find_opt kv k) ~default:0 in
  if Hashtbl.length kv = 0 then None
  else
    Some
      {
        Ledger.queries = get "queries";
        shed = get "shed";
        expired = get "expired";
        cache_hits = get "cache_hits";
        store_hits = get "store_hits";
        sweeps = get "sweeps";
        evictions = get "evictions";
        queue_peak = get "queue_peak";
        p50_ms = 0.;
        p99_ms = 0.;
        qps = 0.;
        wall_s = 0.;
        shards = None;
      }

let render_stats_text (v : Ledger.volatile) =
  Printf.sprintf
    "queries=%d shed=%d expired=%d cache_hits=%d store_hits=%d sweeps=%d \
     evictions=%d queue_peak=%d"
    v.Ledger.queries v.Ledger.shed v.Ledger.expired v.Ledger.cache_hits
    v.Ledger.store_hits v.Ledger.sweeps v.Ledger.evictions v.Ledger.queue_peak

(* ------------------------------------------------------------------ *)
(* LIST snapshot merge

   Each shard lists only its partition, in its own manifest-relative
   order.  Re-interleaving by the full manifest id sequence restores
   the exact single-process LIST — duplicate ids consume their shard's
   rows in order, so even a manifest that repeats an id merges
   stably.  An id no shard reported (a shard that died before its
   snapshot) is kept as a failed row rather than dropped, so the table
   always has one row per manifest line. *)

let merge_list_rows ~manifest_ids per_shard_rows =
  let queues : (string, (string * string * string) Queue.t) Hashtbl.t =
    Hashtbl.create 16
  in
  List.iter
    (List.iter (fun ((id, _, _) as row) ->
         let q =
           match Hashtbl.find_opt queues id with
           | Some q -> q
           | None ->
             let q = Queue.create () in
             Hashtbl.add queues id q;
             q
         in
         Queue.push row q))
    per_shard_rows;
  List.map
    (fun id ->
      match Hashtbl.find_opt queues id with
      | Some q when not (Queue.is_empty q) -> Queue.pop q
      | _ -> (id, "failed", "shard unavailable at snapshot"))
    manifest_ids

(* ------------------------------------------------------------------ *)
(* Shard calls (router-initiated: snapshot, stats fan-out) *)

let call_shard ?(connect_timeout_s = 1.0) socket request =
  match Client.connect ~timeout_s:connect_timeout_s (Server.Unix_path socket) with
  | Error m -> Error m
  | Ok c ->
    let r = Client.call ~timeout_s:30. c request in
    Client.close c;
    r

(* ------------------------------------------------------------------ *)
(* Lifecycle: spawn, supervise *)

let spawn_slot t slot ~crashes =
  let pid = Shard.spawn (t.cfg.shard_argv slot.index) in
  slot.state <- Live { pid; since = Unix.gettimeofday (); crashes }

let kill_roll_site = "serve.shard_kill"

(* One supervision pass: reap exits, schedule/execute respawns, roll
   the shard-kill fault.  Runs under [t.sm]. *)
let supervise_tick t ~tick =
  let now = Unix.gettimeofday () in
  Array.iter
    (fun slot ->
      match slot.state with
      | Live { pid; since; crashes } -> (
        match Shard.poll_exit pid with
        | Some _status ->
          (* A shard that stayed up a while earned its crash count
             back: only rapid crash loops exhaust the budget. *)
          let crashes = if now -. since >= 5. then 1 else crashes + 1 in
          if crashes > t.cfg.max_respawns then slot.state <- Dead
          else begin
            let delay =
              Fault.Retry.backoff_delay ~base_delay_s:0.05 ~max_delay_s:1.
                ~jitter:0.5
                ~jitter_seed:(Int64.of_int slot.index)
                (crashes - 1)
            in
            slot.state <- Down { crashes; next_try = now +. delay }
          end
        | None ->
          if
            t.cfg.fault.Fault.Plan.shard_kill > 0.
            && Fault.Plan.roll t.cfg.fault ~site:kill_roll_site ~a:tick
                 ~b:slot.index
               < t.cfg.fault.Fault.Plan.shard_kill
          then try Unix.kill pid Sys.sigkill with _ -> ())
      | Down { crashes; next_try } when now >= next_try ->
        (try spawn_slot t slot ~crashes
         with _ -> slot.state <- Down { crashes; next_try = now +. 1. })
      | Down _ | Dead -> ())
    t.slots

let supervisor_loop t =
  let tick = ref 0 in
  while not (Atomic.get t.draining) do
    Thread.delay 0.05;
    if not (Atomic.get t.draining) then begin
      incr tick;
      ignore (Atomic.exchange t.chld false);
      Mutex.lock t.sm;
      supervise_tick t ~tick:!tick;
      Mutex.unlock t.sm
    end
  done

(* ------------------------------------------------------------------ *)
(* Connections *)

let reply fd response = Proto.write_frame fd (Proto.encode_response response)

let unavailable k =
  Proto.encode_response
    (Proto.Error (Proto.Unavailable, Printf.sprintf "shard %d unavailable" k))

(* Per-connection shard links, connected on first use and dropped on
   any stream error (a reply stream that timed out or died mid-frame
   is out of sync — the only safe move is a fresh connection). *)
type links = (int, Unix.file_descr) Hashtbl.t

let link_fd t (links : links) k =
  match Hashtbl.find_opt links k with
  | Some fd -> Some fd
  | None -> (
    let live =
      Mutex.lock t.sm;
      let r =
        match t.slots.(k).state with Live _ -> true | Down _ | Dead -> false
      in
      Mutex.unlock t.sm;
      r
    in
    if not live then None
    else
      match
        Client.connect ~timeout_s:0.25 (Server.Unix_path t.slots.(k).socket)
      with
      | Error _ -> None
      | Ok c ->
        let fd = Client.fd c in
        Hashtbl.replace links k fd;
        Some fd)

let drop_link (links : links) k =
  match Hashtbl.find_opt links k with
  | Some fd ->
    Hashtbl.remove links k;
    (try Unix.close fd with _ -> ())
  | None -> ()

(* Forward one request payload to shard [k] and relay the raw reply
   bytes.  Every failure mode answers a typed UNAVAILABLE — a dead
   shard must never hang the client or leave it a torn frame. *)
let forward t links k payload =
  match link_fd t links k with
  | None -> unavailable k
  | Some fd -> (
    match Proto.write_frame fd payload with
    | exception _ ->
      drop_link links k;
      unavailable k
    | () -> (
      match Proto.read_frame ~deadline_s:t.cfg.shard_call_timeout_s fd with
      | Proto.Frame bytes -> bytes
      | Proto.Eof | Proto.Timeout | Proto.Oversized _ ->
        drop_link links k;
        unavailable k))

let snapshot_health rows =
  let avail = List.exists (fun (_, s, _) -> s = "available") rows in
  let failed = List.exists (fun (_, s, _) -> s = "failed") rows in
  if not avail then "unhealthy" else if failed then "degraded" else "ok"

let merged_stats t links =
  let vols =
    List.init t.cfg.shards (fun k ->
        match link_fd t links k with
        | None -> None
        | Some fd -> (
          match Proto.write_frame fd (Proto.encode_request Proto.Stats) with
          | exception _ ->
            drop_link links k;
            None
          | () -> (
            match
              Proto.read_frame ~deadline_s:t.cfg.shard_call_timeout_s fd
            with
            | Proto.Frame bytes -> (
              match Proto.decode_response bytes with
              | Ok (Proto.Ok_text s) -> parse_stats_text s
              | _ -> None)
            | _ ->
              drop_link links k;
              None)))
    |> List.filter_map (fun x -> x)
  in
  Ledger.merge_volatile vols ~wall_s:0. ~shards:t.cfg.shards

(* Answer one decoded control request from router state. *)
let handle_control t links req =
  match (req : Proto.request) with
  | Proto.Ping -> Proto.Ok_empty
  | Proto.Health -> Proto.Ok_text (snapshot_health t.snapshot)
  | Proto.Ready ->
    if Atomic.get t.draining then Proto.Error (Proto.Shutting_down, "draining")
    else if List.exists (fun (_, s, _) -> s = "available") t.snapshot then
      Proto.Ok_text "ready"
    else Proto.Error (Proto.Unavailable, "no healthy instances")
  | Proto.List -> Proto.Ok_list t.snapshot
  | Proto.Stats -> Proto.Ok_text (render_stats_text (merged_stats t links))
  | Proto.Foremost _ | Proto.Arrivals _ | Proto.Reach _ | Proto.Ecc _ ->
    (* Unreachable: queries are routed by peek, never decoded here. *)
    Proto.Error (Proto.Internal, "query reached control path")

let conn_loop t conn =
  let links : links = Hashtbl.create 4 in
  let rec loop () =
    match Proto.read_frame ~deadline_s:t.cfg.read_timeout_s conn.c_fd with
    | Proto.Eof | Proto.Timeout -> ()
    | Proto.Oversized k ->
      (try
         reply conn.c_fd
           (Proto.Error
              ( Proto.Too_large,
                Printf.sprintf "frame of %d bytes exceeds limit %d" k
                  Proto.max_frame ))
       with _ -> ())
    | Proto.Frame payload ->
      let reply_bytes =
        match Proto.peek_instance payload with
        | Some instance ->
          let k = Corpus.shard_of ~shards:t.cfg.shards instance in
          let t0 = Unix.gettimeofday () in
          let r = forward t links k payload in
          Obs.Metrics.observe t.h_latency ((Unix.gettimeofday () -. t0) *. 1000.);
          r
        | None -> (
          match Proto.decode_request payload with
          | Ok req -> (
            match handle_control t links req with
            | response -> Proto.encode_response response
            | exception e ->
              Proto.encode_response
                (Proto.Error (Proto.Internal, Printexc.to_string e)))
          | Error _ ->
            (* Unknown opcode or malformed query prefix: let shard 0's
               decoder answer, byte-identical to single-process. *)
            forward t links 0 payload)
      in
      Proto.write_frame conn.c_fd reply_bytes;
      loop ()
  in
  (try loop () with _ -> ());
  Hashtbl.iter (fun _ fd -> try Unix.close fd with _ -> ()) links;
  (try Unix.close conn.c_fd with _ -> ());
  Mutex.lock t.cm;
  t.conns <- List.filter (fun c -> c.c_id <> conn.c_id) t.conns;
  Mutex.unlock t.cm

let spawn_conn t fd =
  Mutex.lock t.cm;
  let over = List.length t.conns >= t.cfg.max_conns in
  let conn = { c_id = t.next_conn; c_fd = fd } in
  if not over then begin
    t.next_conn <- t.next_conn + 1;
    t.conns <- conn :: t.conns
  end;
  Mutex.unlock t.cm;
  if over then begin
    (try
       reply fd
         (Proto.Error (Proto.Resource_exhausted, "connection limit reached"))
     with _ -> ());
    try Unix.close fd with _ -> ()
  end
  else begin
    let th = Thread.create (fun () -> conn_loop t conn) () in
    Mutex.lock t.cm;
    t.conn_threads <- th :: t.conn_threads;
    Mutex.unlock t.cm
  end

(* ------------------------------------------------------------------ *)
(* Accept / drain *)

let close_listener t =
  if not (Atomic.exchange t.listen_closed true) then
    try Unix.close t.listen_fd with _ -> ()

let wake_listener t =
  try
    let domain, addr =
      match t.cfg.address with
      | Server.Unix_path p -> (Unix.PF_UNIX, Unix.ADDR_UNIX p)
      | Server.Tcp (_, port) ->
        (Unix.PF_INET, Unix.ADDR_INET (Unix.inet_addr_loopback, port))
    in
    let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
    (try Unix.connect fd addr with _ -> ());
    Unix.close fd
  with _ -> ()

let accept_loop t =
  let rec loop () =
    if Atomic.get t.draining then ()
    else
      match Unix.accept t.listen_fd with
      | fd, _ ->
        spawn_conn t fd;
        loop ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
      | exception Unix.Unix_error ((Unix.EBADF | Unix.EINVAL), _, _) -> ()
      | exception _ when Atomic.get t.draining -> ()
  in
  loop ()

let merged_ledger t ~final_stats ~wall_s =
  let merged =
    Ledger.merge_volatile final_stats ~wall_s ~shards:t.cfg.shards
  in
  let observed = Obs.Metrics.observations t.h_latency > 0 in
  let p q = if observed then Obs.Metrics.percentile t.h_latency q else 0. in
  let merged = { merged with Ledger.p50_ms = p 0.5; p99_ms = p 0.99 } in
  Ledger.render
    ~backend:(Sim.Backend.to_string t.cfg.backend)
    ~queue_max:t.cfg.queue_max ~instances:t.snapshot merged

let drain t =
  Atomic.set t.draining true;
  close_listener t;
  (* Supervisor first: no respawns or fault kills may race the
     shutdown cascade, and joining it leaves this thread the only
     reaper. *)
  (match t.supervisor with Some th -> Thread.join th | None -> ());
  t.supervisor <- None;
  Mutex.lock t.cm;
  let conns = t.conns and threads = t.conn_threads in
  Mutex.unlock t.cm;
  List.iter
    (fun c -> try Unix.shutdown c.c_fd Unix.SHUTDOWN_ALL with _ -> ())
    conns;
  List.iter (fun th -> try Thread.join th with _ -> ()) threads;
  (* Tallies are final now (no client traffic): collect them before
     the shards go down, then cascade the drain. *)
  let final_stats =
    Array.to_list t.slots
    |> List.filter_map (fun slot ->
           match slot.state with
           | Live _ -> (
             match call_shard slot.socket Proto.Stats with
             | Ok (Proto.Ok_text s) -> parse_stats_text s
             | _ -> None)
           | Down _ | Dead -> None)
  in
  Array.iter
    (fun slot ->
      match slot.state with
      | Live { pid; _ } ->
        ignore (Shard.terminate ~timeout_s:10. pid);
        slot.state <- Dead
      | Down _ | Dead -> ())
    t.slots;
  let wall_s = Unix.gettimeofday () -. t.started_at in
  (match t.cfg.ledger_path with
  | None -> ()
  | Some path -> (
    try Store.Fsio.write_atomic path (merged_ledger t ~final_stats ~wall_s)
    with _ -> ()));
  match t.cfg.address with
  | Server.Unix_path path -> ( try Unix.unlink path with _ -> ())
  | Server.Tcp _ -> ()

(* ------------------------------------------------------------------ *)
(* Run *)

let bind_listener = function
  | Server.Unix_path path ->
    if Sys.file_exists path then Unix.unlink path;
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.bind fd (Unix.ADDR_UNIX path);
    Unix.listen fd 64;
    fd
  | Server.Tcp (host, port) ->
    let addr =
      try (Unix.gethostbyname host).Unix.h_addr_list.(0)
      with Not_found -> Unix.inet_addr_of_string host
    in
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.setsockopt fd Unix.SO_REUSEADDR true;
    Unix.bind fd (Unix.ADDR_INET (addr, port));
    Unix.listen fd 64;
    fd

let run ?(config = default_config) () =
  if config.shards < 1 then invalid_arg "Router.run: shards must be >= 1";
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let slots =
    Array.init config.shards (fun k ->
        { index = k; socket = config.shard_socket k; state = Dead })
  in
  (* Spawn everything first, then wait: shard startups overlap. *)
  Array.iter
    (fun slot ->
      let pid = Shard.spawn (config.shard_argv slot.index) in
      slot.state <- Live { pid; since = Unix.gettimeofday (); crashes = 0 })
    slots;
  let kill_all () =
    Array.iter
      (fun slot ->
        match slot.state with
        | Live { pid; _ } -> ignore (Shard.terminate ~timeout_s:2. pid)
        | Down _ | Dead -> ())
      slots
  in
  let not_ready =
    Array.to_list slots
    |> List.filter_map (fun slot ->
           match
             Shard.wait_ready ~timeout_s:config.shard_ready_timeout_s
               slot.socket
           with
           | Ok () -> None
           | Error m -> Some m)
  in
  match not_ready with
  | m :: _ ->
    kill_all ();
    Error m
  | [] -> (
    (* Startup LIST snapshot: one merged, manifest-ordered instance
       table that serves HEALTH/READY/LIST and the deterministic
       ledger section for the whole run. *)
    let per_shard_rows =
      Array.to_list slots
      |> List.map (fun slot ->
             match call_shard slot.socket Proto.List with
             | Ok (Proto.Ok_list rows) -> rows
             | _ -> [])
    in
    let snapshot =
      merge_list_rows ~manifest_ids:config.manifest_ids per_shard_rows
    in
    match bind_listener config.address with
    | exception e ->
      kill_all ();
      Error (Printexc.to_string e)
    | listen_fd ->
      let t =
        {
          cfg = config;
          listen_fd;
          draining = Atomic.make false;
          listen_closed = Atomic.make false;
          chld = Atomic.make false;
          sm = Mutex.create ();
          slots;
          snapshot;
          cm = Mutex.create ();
          conns = [];
          conn_threads = [];
          next_conn = 0;
          supervisor = None;
          started_at = Unix.gettimeofday ();
          h_latency = Obs.Metrics.histogram "serve.latency_ms";
        }
      in
      Sys.set_signal Sys.sigchld
        (Sys.Signal_handle (fun _ -> Atomic.set t.chld true));
      t.supervisor <- Some (Thread.create supervisor_loop t);
      if config.install_signals then begin
        Fault.Shutdown.install ();
        Fault.Shutdown.set_graceful (fun _ ->
            Atomic.set t.draining true;
            wake_listener t)
      end;
      (match config.announce with
      | Some oc ->
        Printf.fprintf oc "READY %s\n" (Server.address_to_string config.address);
        flush oc
      | None -> ());
      accept_loop t;
      drain t;
      Ok ())
