(* The `ephemeral serve` process: accept loop, per-connection reader
   threads, the {!Engine} behind them, and the graceful-drain state
   machine.

   Listening address: a filesystem path (Unix domain socket) or
   ["tcp:HOST:PORT"].  Each accepted connection gets one systhread
   that reads frames under the per-frame deadline (slow-loris bound),
   decodes, submits to the engine, and writes the reply; connection
   count is bounded ([max_conns] — an over-limit accept is answered
   with one [Resource_exhausted] frame and closed, never queued).

   Drain state machine (first SIGTERM/SIGINT via
   {!Fault.Shutdown.set_graceful}, or {!initiate_drain}):

     accepting ──signal──▶ draining ──flush──▶ drained

   - the signal callback only flips the [draining] atomic and closes
     the listening socket (handler context: no locks) — that pops the
     accept loop;
   - the accept thread then runs the drain: engine drain (every
     admitted job answered), shutdown of surviving connection sockets
     (readers see EOF), join of connection threads, ledger publish
     via {!Store.Fsio.write_atomic} (atomic: a crashed drain leaves
     the previous ledger or none, never a torn one), socket unlink;
   - {!run} returns normally, so the process exits 0 — the clean-drain
     contract the chaos soak asserts.  A second signal takes
     {!Fault.Shutdown}'s immediate path (exit 130/143), the escape
     hatch against a wedged drain.

   Degraded mode: a corpus with failed instances still serves — LIST
   shows them as failed, queries against them answer [Unavailable],
   HEALTH says "degraded".  Only an entirely-unhealthy corpus makes
   READY answer [Unavailable]. *)

type address = Unix_path of string | Tcp of string * int

let parse_address s =
  match String.index_opt s ':' with
  | Some _ when String.length s > 4 && String.sub s 0 4 = "tcp:" -> (
    let rest = String.sub s 4 (String.length s - 4) in
    match String.rindex_opt rest ':' with
    | None -> Error "tcp address must be tcp:HOST:PORT"
    | Some i -> (
      let host = String.sub rest 0 i in
      let port = String.sub rest (i + 1) (String.length rest - i - 1) in
      match int_of_string_opt port with
      | Some p when p > 0 && p < 65536 -> Ok (Tcp (host, p))
      | _ -> Error (Printf.sprintf "bad port %S" port)))
  | _ -> Ok (Unix_path s)

let address_to_string = function
  | Unix_path p -> p
  | Tcp (h, p) -> Printf.sprintf "tcp:%s:%d" h p

type config = {
  address : address;
  read_timeout_s : float;  (** per-frame deadline on connection reads *)
  max_conns : int;
  engine : Engine.config;
  ledger_path : string option;  (** published atomically on drain *)
  install_signals : bool;
      (** arm {!Fault.Shutdown.set_graceful}; off in in-process tests *)
  announce : out_channel option;
      (** where to print the READY line once listening *)
}

let default_config =
  {
    address = Unix_path "ephemeral.sock";
    read_timeout_s = 10.;
    max_conns = 64;
    engine = Engine.default_config;
    ledger_path = None;
    install_signals = true;
    announce = Some stdout;
  }

(* ------------------------------------------------------------------ *)

type conn = { c_id : int; c_fd : Unix.file_descr }

type t = {
  cfg : config;
  engine : Engine.t;
  listen_fd : Unix.file_descr;
  draining : bool Atomic.t;
  listen_closed : bool Atomic.t;
  cm : Mutex.t;
  mutable conns : conn list;
  mutable conn_threads : Thread.t list;
  mutable next_conn : int;
  started_at : float;
}

let close_listener t =
  if not (Atomic.exchange t.listen_closed true) then
    try Unix.close t.listen_fd with _ -> ()

(* Wake a thread blocked in accept(2).  Closing the listener does not
   reliably unblock accept on Linux, and the signal that initiated the
   drain may have been delivered to a different thread — so connect to
   ourselves: accept returns the dummy connection, the loop re-checks
   [draining] and exits.  Failure is fine (nobody was blocked). *)
let wake_listener t =
  try
    let domain, addr =
      match t.cfg.address with
      | Unix_path p -> (Unix.PF_UNIX, Unix.ADDR_UNIX p)
      | Tcp (_, port) ->
        (Unix.PF_INET, Unix.ADDR_INET (Unix.inet_addr_loopback, port))
    in
    let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
    (try Unix.connect fd addr with _ -> ());
    Unix.close fd
  with _ -> ()

(* ------------------------------------------------------------------ *)
(* Request handling *)

let max_vector = (Proto.max_frame - 16) / 4

let handle_query t (q : Proto.query) readout =
  let deadline_s =
    if q.Proto.deadline_ms > 0 then
      Some (float_of_int q.Proto.deadline_ms /. 1000.)
    else None
  in
  match
    Engine.submit t.engine ~instance:q.Proto.instance ~source:q.Proto.source
      ?deadline_s ()
  with
  | Engine.Rejected (code, msg) -> Proto.Error (code, msg)
  | Engine.Admitted ticket -> (
    match Engine.await ticket with
    | Engine.Err (code, msg) -> Proto.Error (code, msg)
    | Engine.Row row -> readout row)

let handle_request t req =
  match (req : Proto.request) with
  | Proto.Ping -> Proto.Ok_empty
  | Proto.Health ->
    let corpus = Engine.corpus t.engine in
    Proto.Ok_text
      (if not (Corpus.healthy corpus) then "unhealthy"
       else if Corpus.degraded corpus then "degraded"
       else "ok")
  | Proto.Ready ->
    if Atomic.get t.draining then
      Proto.Error (Proto.Shutting_down, "draining")
    else if Corpus.healthy (Engine.corpus t.engine) then Proto.Ok_text "ready"
    else Proto.Error (Proto.Unavailable, "no healthy instances")
  | Proto.List -> Proto.Ok_list (Corpus.list_rows (Engine.corpus t.engine))
  | Proto.Stats ->
    let s = Engine.stats t.engine in
    Proto.Ok_text
      (Printf.sprintf
         "queries=%d shed=%d expired=%d cache_hits=%d store_hits=%d sweeps=%d \
          evictions=%d queue_peak=%d"
         s.Engine.queries s.Engine.shed s.Engine.expired s.Engine.cache_hits
         s.Engine.store_hits s.Engine.sweeps s.Engine.evictions
         s.Engine.queue_peak)
  | Proto.Foremost q ->
    handle_query t q (fun row ->
        if q.Proto.target < 0 || q.Proto.target >= Array.length row then
          Proto.Error
            ( Proto.Bad_arg,
              Printf.sprintf "target %d out of range [0, %d)" q.Proto.target
                (Array.length row) )
        else
          Proto.Ok_value
            (if row.(q.Proto.target) = max_int then None
             else Some row.(q.Proto.target)))
  | Proto.Arrivals q ->
    handle_query t q (fun row ->
        if Array.length row > max_vector then
          Proto.Error
            ( Proto.Too_large,
              Printf.sprintf "arrival vector of %d entries exceeds frame limit"
                (Array.length row) )
        else Proto.Ok_vector row)
  | Proto.Reach q ->
    handle_query t q (fun row ->
        let c = ref 0 in
        Array.iter (fun v -> if v <> max_int then incr c) row;
        Proto.Ok_count !c)
  | Proto.Ecc q ->
    handle_query t q (fun row ->
        let m = ref 0 and unreachable = ref false in
        Array.iter
          (fun v -> if v = max_int then unreachable := true else m := max !m v)
          row;
        Proto.Ok_value (if !unreachable then None else Some !m))

(* ------------------------------------------------------------------ *)
(* Connections *)

let reply fd response = Proto.write_frame fd (Proto.encode_response response)

let conn_loop t conn =
  let rec loop () =
    match Proto.read_frame ~deadline_s:t.cfg.read_timeout_s conn.c_fd with
    | Proto.Eof -> ()
    | Proto.Timeout ->
      (* Slow loris: the peer stalled mid-frame.  The stream is not at
         a frame boundary, so the only safe move is to close. *)
      ()
    | Proto.Oversized k ->
      (* Header read, payload not: also out of sync — answer and
         close. *)
      (try
         reply conn.c_fd
           (Proto.Error
              ( Proto.Too_large,
                Printf.sprintf "frame of %d bytes exceeds limit %d" k
                  Proto.max_frame ))
       with _ -> ())
    | Proto.Frame payload ->
      let response =
        match Proto.decode_request payload with
        | Error (code, msg) -> Proto.Error (code, msg)
        | Ok req -> (
          try handle_request t req
          with e -> Proto.Error (Proto.Internal, Printexc.to_string e))
      in
      reply conn.c_fd response;
      loop ()
  in
  (try loop () with _ -> ());
  (try Unix.close conn.c_fd with _ -> ());
  Mutex.lock t.cm;
  t.conns <- List.filter (fun c -> c.c_id <> conn.c_id) t.conns;
  Mutex.unlock t.cm

let spawn_conn t fd =
  Mutex.lock t.cm;
  let over = List.length t.conns >= t.cfg.max_conns in
  let conn = { c_id = t.next_conn; c_fd = fd } in
  if not over then begin
    t.next_conn <- t.next_conn + 1;
    t.conns <- conn :: t.conns
  end;
  Mutex.unlock t.cm;
  if over then begin
    (* Bounded connection table: answer with one typed frame and
       close; nothing about this connection is retained. *)
    (try
       reply fd
         (Proto.Error (Proto.Resource_exhausted, "connection limit reached"))
     with _ -> ());
    try Unix.close fd with _ -> ()
  end
  else begin
    let th = Thread.create (fun () -> conn_loop t conn) () in
    Mutex.lock t.cm;
    t.conn_threads <- th :: t.conn_threads;
    Mutex.unlock t.cm
  end

(* ------------------------------------------------------------------ *)
(* Ledger *)

let ledger_json t ~wall_s =
  let s = Engine.stats t.engine in
  let corpus = Engine.corpus t.engine in
  let h = Obs.Metrics.histogram "serve.latency_ms" in
  let observed = Obs.Metrics.observations h > 0 in
  let p q = if observed then Obs.Metrics.percentile h q else 0. in
  let qps =
    if wall_s > 0. then float_of_int s.Engine.queries /. wall_s else 0.
  in
  Ledger.render
    ~backend:(Sim.Backend.to_string (Corpus.backend corpus))
    ~queue_max:t.cfg.engine.Engine.queue_max
    ~instances:(Corpus.list_rows corpus)
    (Ledger.of_stats s ~p50_ms:(p 0.5) ~p99_ms:(p 0.99) ~qps ~wall_s
       ~shards:None)

(* ------------------------------------------------------------------ *)
(* Lifecycle *)

let bind_listener address =
  match address with
  | Unix_path path ->
    if Sys.file_exists path then Unix.unlink path;
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.bind fd (Unix.ADDR_UNIX path);
    Unix.listen fd 64;
    fd
  | Tcp (host, port) ->
    let addr =
      try (Unix.gethostbyname host).Unix.h_addr_list.(0)
      with Not_found -> Unix.inet_addr_of_string host
    in
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.setsockopt fd Unix.SO_REUSEADDR true;
    Unix.bind fd (Unix.ADDR_INET (addr, port));
    Unix.listen fd 64;
    fd

let drain t =
  Atomic.set t.draining true;
  close_listener t;
  (* Flush every admitted job; tickets held by connection threads
     resolve, so their pending writes complete. *)
  Engine.drain t.engine;
  (* Surviving connections are idle readers (or writers about to
     finish): shut their sockets so reads see EOF.  shutdown, not
     close — the thread owns the close, so the descriptor cannot be
     recycled under it. *)
  Mutex.lock t.cm;
  let conns = t.conns and threads = t.conn_threads in
  Mutex.unlock t.cm;
  List.iter
    (fun c -> try Unix.shutdown c.c_fd Unix.SHUTDOWN_ALL with _ -> ())
    conns;
  List.iter (fun th -> try Thread.join th with _ -> ()) threads;
  (* Publish the ledger last, atomically: it reflects the final
     tallies, and a crash mid-drain leaves the previous file or none —
     never a torn one. *)
  let wall_s = Unix.gettimeofday () -. t.started_at in
  (match t.cfg.ledger_path with
  | None -> ()
  | Some path -> (
    try Store.Fsio.write_atomic path (ledger_json t ~wall_s) with _ -> ()));
  match t.cfg.address with
  | Unix_path path -> ( try Unix.unlink path with _ -> ())
  | Tcp _ -> ()

let accept_loop t =
  let rec loop () =
    if Atomic.get t.draining then ()
    else
      match Unix.accept t.listen_fd with
      | fd, _ ->
        spawn_conn t fd;
        loop ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
      | exception Unix.Unix_error ((Unix.EBADF | Unix.EINVAL), _, _) ->
        (* Listener closed under us by the drain callback. *)
        ()
      | exception _ when Atomic.get t.draining -> ()
  in
  loop ()

let run ?(config = default_config) corpus =
  (* A client disconnecting mid-write must surface as EPIPE on the
     write, not kill the process. *)
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let engine = Engine.create ~config:config.engine corpus in
  let listen_fd = bind_listener config.address in
  let t =
    {
      cfg = config;
      engine;
      listen_fd;
      draining = Atomic.make false;
      listen_closed = Atomic.make false;
      cm = Mutex.create ();
      conns = [];
      conn_threads = [];
      next_conn = 0;
      started_at = Unix.gettimeofday ();
    }
  in
  Engine.start engine;
  if config.install_signals then begin
    Fault.Shutdown.install ();
    (* The callback only flips the atomic and pokes the accept thread
       awake; the accept thread then runs the actual drain.  (OCaml
       signal handlers run at safepoints as ordinary code — the
       constraint is not taking locks the interrupted thread may
       hold, and neither step does.) *)
    Fault.Shutdown.set_graceful (fun _ ->
        Atomic.set t.draining true;
        wake_listener t)
  end;
  (match config.announce with
  | Some oc ->
    Printf.fprintf oc "READY %s\n" (address_to_string config.address);
    flush oc
  | None -> ());
  accept_loop t;
  drain t

(* In-process handle for tests: run the server on a background thread,
   return a stopper that initiates the drain and joins. *)
let run_background ?(config = default_config) corpus =
  let stop_ref = ref (fun () -> ()) in
  let started = Mutex.create () in
  let started_c = Condition.create () in
  let ready = ref false in
  let failed = ref None in
  let config = { config with announce = None; install_signals = false } in
  let signal_started err =
    Mutex.lock started;
    failed := err;
    ready := true;
    Condition.signal started_c;
    Mutex.unlock started
  in
  let setup () =
    Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
    let engine = Engine.create ~config:config.engine corpus in
    let listen_fd = bind_listener config.address in
    let t =
      {
        cfg = config;
        engine;
        listen_fd;
        draining = Atomic.make false;
        listen_closed = Atomic.make false;
        cm = Mutex.create ();
        conns = [];
        conn_threads = [];
        next_conn = 0;
        started_at = Unix.gettimeofday ();
      }
    in
    Engine.start engine;
    stop_ref :=
      (fun () ->
        Atomic.set t.draining true;
        wake_listener t);
    t
  in
  let th =
    Thread.create
      (fun () ->
        (* A setup failure (say, a bad socket path) must surface in the
           caller, not deadlock it waiting for readiness. *)
        match setup () with
        | exception e -> signal_started (Some e)
        | t ->
          signal_started None;
          accept_loop t;
          drain t)
      ()
  in
  Mutex.lock started;
  while not !ready do
    Condition.wait started_c started
  done;
  let err = !failed in
  Mutex.unlock started;
  match err with
  | Some e ->
    Thread.join th;
    raise e
  | None ->
    fun () ->
      !stop_ref ();
      Thread.join th
