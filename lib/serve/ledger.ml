(* The `ephemeral-serve-ledger` renderer, shared by the single-process
   server and the sharded router (which merges per-shard tallies into
   one ledger at drain).

   The ledger splits into two sections on purpose:

   - [deterministic]: a pure function of (corpus manifest, backend,
     queue bound) — byte-identical run to run AND at any shard count,
     which is what CI diffs;
   - [volatile]: tallies and timings that depend on traffic and wall
     clock.  A sharded run records the shard count here, never in the
     deterministic section.

   Hand-rolled line-based JSON, same dialect as the run ledger: stable
   key order, one key per line, so downstream checks can grep
   ["queue_peak":] without a JSON parser. *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_float f =
  if Float.is_nan f || Float.is_integer f then
    Printf.sprintf "%.1f" (if Float.is_nan f then 0. else f)
  else Printf.sprintf "%.6g" f

type volatile = {
  queries : int;
  shed : int;
  expired : int;
  cache_hits : int;
  store_hits : int;
  sweeps : int;
  evictions : int;
  queue_peak : int;
  p50_ms : float;
  p99_ms : float;
  qps : float;
  wall_s : float;
  shards : int option;  (* None = single-process serve *)
}

let of_stats (s : Engine.stats) ~p50_ms ~p99_ms ~qps ~wall_s ~shards =
  {
    queries = s.Engine.queries;
    shed = s.Engine.shed;
    expired = s.Engine.expired;
    cache_hits = s.Engine.cache_hits;
    store_hits = s.Engine.store_hits;
    sweeps = s.Engine.sweeps;
    evictions = s.Engine.evictions;
    queue_peak = s.Engine.queue_peak;
    p50_ms;
    p99_ms;
    qps;
    wall_s;
    shards;
  }

let merge_volatile vs ~wall_s ~shards =
  (* Tallies sum across shards; the queue bound held iff it held in
     every shard, so the merged peak is the max.  Latency percentiles
     do not compose from per-shard percentiles — the router reports
     its own end-to-end histogram instead, so they are zeroed here and
     overridden by the caller when it has one. *)
  List.fold_left
    (fun acc v ->
      {
        queries = acc.queries + v.queries;
        shed = acc.shed + v.shed;
        expired = acc.expired + v.expired;
        cache_hits = acc.cache_hits + v.cache_hits;
        store_hits = acc.store_hits + v.store_hits;
        sweeps = acc.sweeps + v.sweeps;
        evictions = acc.evictions + v.evictions;
        queue_peak = max acc.queue_peak v.queue_peak;
        p50_ms = 0.;
        p99_ms = 0.;
        qps = (if wall_s > 0. then float_of_int (acc.queries + v.queries) /. wall_s else 0.);
        wall_s;
        shards = Some shards;
      })
    {
      queries = 0;
      shed = 0;
      expired = 0;
      cache_hits = 0;
      store_hits = 0;
      sweeps = 0;
      evictions = 0;
      queue_peak = 0;
      p50_ms = 0.;
      p99_ms = 0.;
      qps = 0.;
      wall_s;
      shards = Some shards;
    }
    vs

let render ~backend ~queue_max ~instances (v : volatile) =
  let rows =
    instances
    |> List.map (fun (id, status, detail) ->
           Printf.sprintf
             {|{"id": "%s", "status": "%s", "detail": "%s"}|}
             (json_escape id) (json_escape status) (json_escape detail))
    |> String.concat ", "
  in
  let hit_rate =
    if v.queries > 0 then float_of_int v.cache_hits /. float_of_int v.queries
    else 0.
  in
  String.concat "\n"
    ([
       "{";
       {|  "schema": "ephemeral-serve-ledger/v1",|};
       "  \"deterministic\": {";
       Printf.sprintf {|    "backend": "%s",|} (json_escape backend);
       Printf.sprintf {|    "queue_max": %d,|} queue_max;
       Printf.sprintf {|    "instances": [%s]|} rows;
       "  },";
       "  \"volatile\": {";
     ]
    @ (match v.shards with
      | Some k -> [ Printf.sprintf {|    "shards": %d,|} k ]
      | None -> [])
    @ [
        Printf.sprintf {|    "queries": %d,|} v.queries;
        Printf.sprintf {|    "shed": %d,|} v.shed;
        Printf.sprintf {|    "deadline_exceeded": %d,|} v.expired;
        Printf.sprintf {|    "cache_hits": %d,|} v.cache_hits;
        Printf.sprintf {|    "cache_hit_rate": %s,|} (json_float hit_rate);
        Printf.sprintf {|    "cache_evictions": %d,|} v.evictions;
        Printf.sprintf {|    "store_hits": %d,|} v.store_hits;
        Printf.sprintf {|    "sweeps": %d,|} v.sweeps;
        Printf.sprintf {|    "queue_peak": %d,|} v.queue_peak;
        Printf.sprintf {|    "latency_ms_p50": %s,|} (json_float v.p50_ms);
        Printf.sprintf {|    "latency_ms_p99": %s,|} (json_float v.p99_ms);
        Printf.sprintf {|    "qps": %s,|} (json_float v.qps);
        Printf.sprintf {|    "wall_s": %s|} (json_float v.wall_s);
        "  }";
        "}";
        "";
      ])
