(* Wire protocol of `ephemeral serve`: length-prefixed binary frames.

   A frame is a 4-byte big-endian payload length followed by the
   payload; payloads are capped (MAX_FRAME) so a hostile or broken
   peer cannot make the server allocate unboundedly.  Integers inside
   payloads are big-endian u32 with 0xFFFF_FFFF as the "none /
   unreachable" sentinel (arrival labels are bounded by the lifetime,
   far below it); strings are u16-length-prefixed bytes.

   Encoding is a pure function of the value — no timestamps, no
   process state — which is what makes scripted sessions byte-diffable
   across job counts and backends (the serve-smoke CI gate).

   Frame reads take a deadline: a peer that trickles bytes (slow
   loris) ties up one connection for at most [deadline_s] seconds,
   after which the read reports [`Timeout] and the server closes the
   connection.  Writes are plain blocking writes; a dead peer
   surfaces as EPIPE, which the connection loop treats as a drop. *)

let max_frame = 1 lsl 20 (* 1 MiB *)
let none_u32 = 0xFFFFFFFF

type query = {
  instance : string;
  source : int;
  target : int;  (** meaningful for [Foremost] only *)
  deadline_ms : int;  (** 0 = no deadline *)
}

type request =
  | Ping
  | Health
  | Ready
  | List
  | Stats
  | Foremost of query  (** earliest arrival source -> target *)
  | Arrivals of query  (** the source's full arrival vector *)
  | Reach of query  (** vertices reachable from the source *)
  | Ecc of query  (** temporal eccentricity of the source *)

type error_code =
  | Parse_error
  | Unknown_op
  | Unknown_instance
  | Unavailable
  | Resource_exhausted
  | Deadline_exceeded
  | Shutting_down
  | Too_large
  | Bad_arg
  | Internal

type response =
  | Ok_empty
  | Ok_value of int option  (** foremost / ecc; [None] = unreachable *)
  | Ok_count of int
  | Ok_vector of int array  (** arrivals; [max_int] = unreachable *)
  | Ok_list of (string * string * string) list  (** id, status, detail *)
  | Ok_text of string
  | Error of error_code * string

let error_code_to_string = function
  | Parse_error -> "parse-error"
  | Unknown_op -> "unknown-op"
  | Unknown_instance -> "unknown-instance"
  | Unavailable -> "unavailable"
  | Resource_exhausted -> "resource-exhausted"
  | Deadline_exceeded -> "deadline-exceeded"
  | Shutting_down -> "shutting-down"
  | Too_large -> "too-large"
  | Bad_arg -> "bad-arg"
  | Internal -> "internal"

(* ------------------------------------------------------------------ *)
(* Byte-level helpers *)

let put_u8 buf v = Buffer.add_char buf (Char.chr (v land 0xFF))

let put_u16 buf v =
  if v < 0 || v > 0xFFFF then invalid_arg "Proto: u16 out of range";
  Buffer.add_char buf (Char.chr ((v lsr 8) land 0xFF));
  Buffer.add_char buf (Char.chr (v land 0xFF))

let put_u32 buf v =
  if v < 0 || v > none_u32 then invalid_arg "Proto: u32 out of range";
  Buffer.add_char buf (Char.chr ((v lsr 24) land 0xFF));
  Buffer.add_char buf (Char.chr ((v lsr 16) land 0xFF));
  Buffer.add_char buf (Char.chr ((v lsr 8) land 0xFF));
  Buffer.add_char buf (Char.chr (v land 0xFF))

let put_str buf s =
  put_u16 buf (String.length s);
  Buffer.add_string buf s

(* Encode an arrival-like label: [max_int] (and anything that cannot
   fit a u32) becomes the sentinel. *)
let put_label buf v = put_u32 buf (if v < 0 || v >= none_u32 then none_u32 else v)

exception Short

type cursor = { data : string; mutable pos : int }

let need c k = if c.pos + k > String.length c.data then raise Short

let get_u8 c =
  need c 1;
  let v = Char.code c.data.[c.pos] in
  c.pos <- c.pos + 1;
  v

let get_u16 c =
  need c 2;
  let v = (Char.code c.data.[c.pos] lsl 8) lor Char.code c.data.[c.pos + 1] in
  c.pos <- c.pos + 2;
  v

let get_u32 c =
  need c 4;
  let v =
    (Char.code c.data.[c.pos] lsl 24)
    lor (Char.code c.data.[c.pos + 1] lsl 16)
    lor (Char.code c.data.[c.pos + 2] lsl 8)
    lor Char.code c.data.[c.pos + 3]
  in
  c.pos <- c.pos + 4;
  v

let get_str c =
  let k = get_u16 c in
  need c k;
  let s = String.sub c.data c.pos k in
  c.pos <- c.pos + k;
  s

let get_label c =
  let v = get_u32 c in
  if v = none_u32 then max_int else v

let at_end c = c.pos = String.length c.data

(* ------------------------------------------------------------------ *)
(* Requests *)

let op_ping = 0x01
and op_health = 0x02
and op_ready = 0x03
and op_list = 0x04
and op_stats = 0x05
and op_foremost = 0x10
and op_arrivals = 0x11
and op_reach = 0x12
and op_ecc = 0x13

let encode_query buf q =
  put_str buf q.instance;
  put_u32 buf q.source;
  put_u32 buf q.target;
  put_u32 buf q.deadline_ms

let encode_request r =
  let buf = Buffer.create 32 in
  (match r with
  | Ping -> put_u8 buf op_ping
  | Health -> put_u8 buf op_health
  | Ready -> put_u8 buf op_ready
  | List -> put_u8 buf op_list
  | Stats -> put_u8 buf op_stats
  | Foremost q -> put_u8 buf op_foremost; encode_query buf q
  | Arrivals q -> put_u8 buf op_arrivals; encode_query buf q
  | Reach q -> put_u8 buf op_reach; encode_query buf q
  | Ecc q -> put_u8 buf op_ecc; encode_query buf q);
  Buffer.contents buf

let decode_query c =
  let instance = get_str c in
  let source = get_u32 c in
  let target = get_u32 c in
  let deadline_ms = get_u32 c in
  { instance; source; target; deadline_ms }

let decode_request data =
  let c = { data; pos = 0 } in
  match
    let op = get_u8 c in
    let r =
      if op = op_ping then Some Ping
      else if op = op_health then Some Health
      else if op = op_ready then Some Ready
      else if op = op_list then Some List
      else if op = op_stats then Some Stats
      else if op = op_foremost then Some (Foremost (decode_query c))
      else if op = op_arrivals then Some (Arrivals (decode_query c))
      else if op = op_reach then Some (Reach (decode_query c))
      else if op = op_ecc then Some (Ecc (decode_query c))
      else None
    in
    match r with
    | None ->
      Stdlib.Error (Unknown_op, Printf.sprintf "unknown opcode 0x%02x" op)
    | Some r ->
      if at_end c then Stdlib.Ok r
      else Stdlib.Error (Parse_error, "trailing bytes after request")
  with
  | v -> v
  | exception Short ->
    Stdlib.Error (Parse_error, "truncated request payload")

(* Router support: the routing key (the instance-id operand) read from
   a query-op payload's fixed prefix, without decoding the rest.
   Control ops, unknown opcodes, and payloads too short to carry the
   id answer [None]; the router handles those itself or forwards them
   opaque, so a malformed frame still gets the owning decoder's exact
   error bytes. *)
let peek_instance data =
  let len = String.length data in
  if len < 3 then None
  else
    let op = Char.code data.[0] in
    if op = op_foremost || op = op_arrivals || op = op_reach || op = op_ecc
    then begin
      let k = (Char.code data.[1] lsl 8) lor Char.code data.[2] in
      if len >= 3 + k then Some (String.sub data 3 k) else None
    end
    else None

(* ------------------------------------------------------------------ *)
(* Responses *)

let st_ok_empty = 0x00
and st_ok_value = 0x01
and st_ok_count = 0x02
and st_ok_vector = 0x03
and st_ok_list = 0x04
and st_ok_text = 0x05
and st_error = 0xE0

let error_code_byte = function
  | Parse_error -> 0x01
  | Unknown_op -> 0x02
  | Unknown_instance -> 0x03
  | Unavailable -> 0x04
  | Resource_exhausted -> 0x05
  | Deadline_exceeded -> 0x06
  | Shutting_down -> 0x07
  | Too_large -> 0x08
  | Bad_arg -> 0x09
  | Internal -> 0x0A

let error_code_of_byte = function
  | 0x01 -> Some Parse_error
  | 0x02 -> Some Unknown_op
  | 0x03 -> Some Unknown_instance
  | 0x04 -> Some Unavailable
  | 0x05 -> Some Resource_exhausted
  | 0x06 -> Some Deadline_exceeded
  | 0x07 -> Some Shutting_down
  | 0x08 -> Some Too_large
  | 0x09 -> Some Bad_arg
  | 0x0A -> Some Internal
  | _ -> None

let encode_response r =
  let buf = Buffer.create 64 in
  (match r with
  | Ok_empty -> put_u8 buf st_ok_empty
  | Ok_value v ->
    put_u8 buf st_ok_value;
    (match v with
    | None -> put_u32 buf none_u32
    | Some x -> put_label buf x)
  | Ok_count k ->
    put_u8 buf st_ok_count;
    put_u32 buf k
  | Ok_vector a ->
    put_u8 buf st_ok_vector;
    put_u32 buf (Array.length a);
    Array.iter (fun x -> put_label buf x) a
  | Ok_list rows ->
    put_u8 buf st_ok_list;
    put_u16 buf (List.length rows);
    List.iter
      (fun (id, status, detail) ->
        put_str buf id;
        put_str buf status;
        put_str buf detail)
      rows
  | Ok_text s ->
    put_u8 buf st_ok_text;
    put_str buf s
  | Error (code, msg) ->
    put_u8 buf st_error;
    put_u8 buf (error_code_byte code);
    put_str buf
      (if String.length msg > 0xFFFF then String.sub msg 0 0xFFFF else msg));
  Buffer.contents buf

let decode_response data =
  let c = { data; pos = 0 } in
  match
    let st = get_u8 c in
    if st = st_ok_empty then Stdlib.Ok Ok_empty
    else if st = st_ok_value then begin
      let v = get_u32 c in
      Stdlib.Ok (Ok_value (if v = none_u32 then None else Some v))
    end
    else if st = st_ok_count then Stdlib.Ok (Ok_count (get_u32 c))
    else if st = st_ok_vector then begin
      let n = get_u32 c in
      if n > max_frame / 4 then
        Stdlib.Error "vector length exceeds frame bound"
      else Stdlib.Ok (Ok_vector (Array.init n (fun _ -> get_label c)))
    end
    else if st = st_ok_list then begin
      let k = get_u16 c in
      let rows =
        List.init k (fun _ ->
            let id = get_str c in
            let status = get_str c in
            let detail = get_str c in
            (id, status, detail))
      in
      Stdlib.Ok (Ok_list rows)
    end
    else if st = st_ok_text then Stdlib.Ok (Ok_text (get_str c))
    else if st = st_error then begin
      let code = get_u8 c in
      let msg = get_str c in
      match error_code_of_byte code with
      | Some code -> Stdlib.Ok (Error (code, msg))
      | None -> Stdlib.Error (Printf.sprintf "unknown error code 0x%02x" code)
    end
    else Stdlib.Error (Printf.sprintf "unknown status byte 0x%02x" st)
  with
  | Stdlib.Ok r ->
    if at_end c then Stdlib.Ok r
    else Stdlib.Error "trailing bytes after response"
  | Stdlib.Error _ as e -> e
  | exception Short -> Stdlib.Error "truncated response payload"

(* ------------------------------------------------------------------ *)
(* Framing *)

type read_result =
  | Frame of string
  | Eof
  | Timeout
  | Oversized of int

(* Read exactly [k] bytes with an absolute deadline enforced by
   select(2) before every read(2): a peer can stall between bytes for
   at most the remaining window. *)
let read_exact fd buf ~off ~len ~deadline =
  let rec go off len =
    if len = 0 then `Done
    else begin
      let remaining = deadline -. Unix.gettimeofday () in
      if remaining <= 0. then `Timeout
      else begin
        match Unix.select [ fd ] [] [] remaining with
        | [], _, _ -> `Timeout
        | _ -> (
          match Unix.read fd buf off len with
          | 0 -> `Eof
          | k -> go (off + k) (len - k)
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off len)
      end
    end
  in
  go off len

let read_frame ?(deadline_s = 30.) fd =
  let deadline = Unix.gettimeofday () +. deadline_s in
  let hdr = Bytes.create 4 in
  match read_exact fd hdr ~off:0 ~len:4 ~deadline with
  | `Eof -> Eof
  | `Timeout -> Timeout
  | `Done ->
    let len =
      (Char.code (Bytes.get hdr 0) lsl 24)
      lor (Char.code (Bytes.get hdr 1) lsl 16)
      lor (Char.code (Bytes.get hdr 2) lsl 8)
      lor Char.code (Bytes.get hdr 3)
    in
    if len > max_frame then Oversized len
    else begin
      let payload = Bytes.create len in
      match read_exact fd payload ~off:0 ~len ~deadline with
      | `Eof -> Eof
      | `Timeout -> Timeout
      | `Done -> Frame (Bytes.unsafe_to_string payload)
    end

let write_frame fd payload =
  let len = String.length payload in
  if len > max_frame then invalid_arg "Proto.write_frame: payload too large";
  let b = Bytes.create (4 + len) in
  Bytes.set b 0 (Char.chr ((len lsr 24) land 0xFF));
  Bytes.set b 1 (Char.chr ((len lsr 16) land 0xFF));
  Bytes.set b 2 (Char.chr ((len lsr 8) land 0xFF));
  Bytes.set b 3 (Char.chr (len land 0xFF));
  Bytes.blit_string payload 0 b 4 len;
  let rec go off len =
    if len > 0 then begin
      let k = Unix.write fd b off len in
      go (off + k) (len - k)
    end
  in
  go 0 (4 + len)

(* ------------------------------------------------------------------ *)
(* Deterministic text rendering, for scripted sessions and the soak. *)

let render_response = function
  | Ok_empty -> "ok"
  | Ok_value None -> "-"
  | Ok_value (Some v) -> string_of_int v
  | Ok_count k -> string_of_int k
  | Ok_vector a ->
    String.concat " "
      (Array.to_list
         (Array.map (fun x -> if x = max_int then "-" else string_of_int x) a))
  | Ok_list rows ->
    String.concat "; "
      (List.map
         (fun (id, status, detail) ->
           if detail = "" then Printf.sprintf "%s %s" id status
           else Printf.sprintf "%s %s (%s)" id status detail)
         rows)
  | Ok_text s -> s
  | Error (code, msg) ->
    if msg = "" then Printf.sprintf "error %s" (error_code_to_string code)
    else Printf.sprintf "error %s: %s" (error_code_to_string code) msg
