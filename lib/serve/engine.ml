(* The query engine behind `ephemeral serve`.

   Every query op (foremost, arrivals, reach, ecc) is a readout of one
   (instance, source) arrival row, so the unit of work — and of
   caching and batching — is the row.  Connection threads submit
   (instance, source, deadline) jobs into a bounded admission queue; a
   single dispatcher thread drains it, groups jobs by instance,
   dedupes sources, and computes the missing rows on the global
   {!Exec.Pool}:

   - dense backend: sources packed {!Temporal.Batch.lane_width} per
     word-parallel sweep, one pool task over the lane groups;
   - implicit backend (or [EPHEMERAL_SCALAR_SWEEPS]): one scalar
     {!Foremost.arrivals_borrowed} per source, pooled per source —
     batch arrival matrices are O(n * lanes) and would break the
     implicit backend's O(n)-scratch contract (the same split
     {!Temporal.Distance} makes).

   Robustness properties, each load-bearing for the chaos soak:

   - {b Admission bound.}  The queue never holds more than
     [queue_max] jobs; a submit against a full queue is shed with
     [Resource_exhausted] *before* any allocation proportional to the
     request.  [queue_peak] (exposed in {!stats}) proves the bound
     held over a whole run.
   - {b Deadlines.}  A job carries an absolute deadline; the
     dispatcher re-checks it at every cooperative point — on drain
     from the queue, and per lane-group/sweep inside the pool task —
     so an expired job costs at most one sweep, not a full dispatch
     cycle.  Expired jobs answer [Deadline_exceeded].
   - {b Store cache with retry.}  Rows can persist in a
     {!Store.Objects} store; reads and writes go through
     {!Fault.Retry.with_backoff} with deterministic jitter and a
     wall-time budget, and any persistent failure degrades to a
     recompute (reads) or a skipped publish (writes) — the store is an
     accelerator, never a correctness dependency.
   - {b Drain.}  [drain] stops admission ([Shutting_down]), lets the
     dispatcher flush every queued job, and joins it — no reply is
     ever dropped.

   Determinism: a row is a pure function of the instance labelling
   and the source — backend- and jobs-invariant — so replies are
   byte-identical however queries were batched, shed, or cached.

   Threading: submissions come from many systhreads; the queue is the
   only shared mutable state (mutex + condvar).  The row cache is
   touched only by the dispatcher.  Tickets are single-writer
   (dispatcher) single-reader (the submitting thread). *)

type config = {
  queue_max : int;
  batch_window_s : float;
      (* dispatcher sleeps this long after the first job of a cycle
         arrives, so concurrent clients coalesce into one sweep *)
  cache_max : int;  (* in-memory rows kept (LRU eviction) *)
  store : Store.Objects.t option;
  jitter_seed : int64;  (* retry decorrelation *)
  store_budget_s : float;  (* retry wall-time budget per store op *)
}

let default_config =
  {
    queue_max = 256;
    batch_window_s = 0.;
    cache_max = 4096;
    store = None;
    jitter_seed = 0L;
    store_budget_s = 0.25;
  }

type reply =
  | Row of int array
      (* the (instance, source) arrival row, [max_int] = unreachable;
         shared with the cache — readers must not mutate *)
  | Err of Proto.error_code * string

type ticket = {
  tm : Mutex.t;
  tc : Condition.t;
  mutable result : reply option;
  submitted : float;
}

type job = {
  j_instance : string;
  j_net : Temporal.Tgraph.t;
  j_spec : Corpus.spec option;
  j_source : int;
  j_deadline : float;  (* absolute epoch seconds; infinity = none *)
  j_ticket : ticket;
}

type stats = {
  queries : int;
  shed : int;
  expired : int;
  cache_hits : int;
  store_hits : int;
  sweeps : int;
  evictions : int;
  queue_peak : int;
}

(* ------------------------------------------------------------------ *)
(* LRU row cache

   An intrusive doubly-linked list threaded through the cache nodes,
   plus a hashtable for O(1) key lookup.  The list is cyclic around a
   sentinel: [sentinel.next] is the most recently used node,
   [sentinel.prev] the eviction candidate.  Dispatcher-only — no
   locking. *)

type lru_node = {
  lru_key : string * int;
  lru_row : int array;
  mutable lru_prev : lru_node;
  mutable lru_next : lru_node;
}

let lru_sentinel () =
  let rec s =
    { lru_key = ("", -1); lru_row = [||]; lru_prev = s; lru_next = s }
  in
  s

let lru_unlink node =
  node.lru_prev.lru_next <- node.lru_next;
  node.lru_next.lru_prev <- node.lru_prev

let lru_push_front s node =
  node.lru_next <- s.lru_next;
  node.lru_prev <- s;
  s.lru_next.lru_prev <- node;
  s.lru_next <- node

type t = {
  corpus : Corpus.t;
  cfg : config;
  qm : Mutex.t;
  qc : Condition.t;
  queue : job Queue.t;
  mutable queue_len : int;
  mutable queue_peak : int;
  mutable accepting : bool;
  mutable stopping : bool;
  mutable dispatcher : Thread.t option;
  cache : (string * int, lru_node) Hashtbl.t;
  cache_lru : lru_node;  (* sentinel of the recency list *)
  (* monotonically increasing tallies, dispatcher/submit side *)
  mutable n_queries : int;
  mutable n_shed : int;
  mutable n_expired : int;
  mutable n_cache_hits : int;
  mutable n_store_hits : int;
  mutable n_sweeps : int;
  mutable n_evictions : int;
  c_queries : Obs.Metrics.counter;
  c_shed : Obs.Metrics.counter;
  c_expired : Obs.Metrics.counter;
  c_cache_hits : Obs.Metrics.counter;
  c_evictions : Obs.Metrics.counter;
  c_sweeps : Obs.Metrics.counter;
  g_depth : Obs.Metrics.gauge;
  h_latency : Obs.Metrics.histogram;
}

let create ?(config = default_config) corpus =
  if config.queue_max < 1 then
    invalid_arg "Engine.create: queue_max must be >= 1";
  if config.cache_max < 0 then
    invalid_arg "Engine.create: cache_max must be >= 0";
  {
    corpus;
    cfg = config;
    qm = Mutex.create ();
    qc = Condition.create ();
    queue = Queue.create ();
    queue_len = 0;
    queue_peak = 0;
    accepting = true;
    stopping = false;
    dispatcher = None;
    cache = Hashtbl.create 256;
    cache_lru = lru_sentinel ();
    n_queries = 0;
    n_shed = 0;
    n_expired = 0;
    n_cache_hits = 0;
    n_store_hits = 0;
    n_sweeps = 0;
    n_evictions = 0;
    c_queries = Obs.Metrics.counter "serve.queries";
    c_shed = Obs.Metrics.counter "serve.shed";
    c_expired = Obs.Metrics.counter "serve.deadline_exceeded";
    c_cache_hits = Obs.Metrics.counter "serve.cache_hits";
    c_evictions = Obs.Metrics.counter "serve.cache_evictions";
    c_sweeps = Obs.Metrics.counter "serve.sweeps";
    g_depth = Obs.Metrics.gauge "serve.queue_depth";
    h_latency = Obs.Metrics.histogram "serve.latency_ms";
  }

let corpus t = t.corpus

let stats t =
  Mutex.lock t.qm;
  let s =
    {
      queries = t.n_queries;
      shed = t.n_shed;
      expired = t.n_expired;
      cache_hits = t.n_cache_hits;
      store_hits = t.n_store_hits;
      sweeps = t.n_sweeps;
      evictions = t.n_evictions;
      queue_peak = t.queue_peak;
    }
  in
  Mutex.unlock t.qm;
  s

(* ------------------------------------------------------------------ *)
(* Tickets *)

let resolve t ticket reply =
  Mutex.lock ticket.tm;
  (* First writer wins; the dispatcher is the only writer so this is
     belt and braces. *)
  (match ticket.result with
  | None -> ticket.result <- Some reply
  | Some _ -> ());
  Condition.signal ticket.tc;
  Mutex.unlock ticket.tm;
  Obs.Metrics.observe t.h_latency
    ((Unix.gettimeofday () -. ticket.submitted) *. 1000.)

let await ticket =
  Mutex.lock ticket.tm;
  while ticket.result = None do
    Condition.wait ticket.tc ticket.tm
  done;
  let r = Option.get ticket.result in
  Mutex.unlock ticket.tm;
  r

(* ------------------------------------------------------------------ *)
(* Admission *)

type admission = Admitted of ticket | Rejected of Proto.error_code * string

let submit t ~instance ~source ?deadline_s () =
  match Corpus.find t.corpus instance with
  | None ->
    Rejected (Proto.Unknown_instance, Printf.sprintf "no instance %S" instance)
  | Some { status = Corpus.Failed m; _ } ->
    Rejected
      (Proto.Unavailable, Printf.sprintf "instance %S failed to load: %s" instance m)
  | Some { status = Corpus.Available net; spec; _ } ->
    let n = Temporal.Tgraph.n net in
    if source < 0 || source >= n then
      Rejected
        ( Proto.Bad_arg,
          Printf.sprintf "source %d out of range [0, %d)" source n )
    else begin
      let now = Unix.gettimeofday () in
      let deadline =
        match deadline_s with
        | Some d when d > 0. -> now +. d
        | _ -> infinity
      in
      let ticket =
        {
          tm = Mutex.create ();
          tc = Condition.create ();
          result = None;
          submitted = now;
        }
      in
      let job =
        {
          j_instance = instance;
          j_net = net;
          j_spec = spec;
          j_source = source;
          j_deadline = deadline;
          j_ticket = ticket;
        }
      in
      Mutex.lock t.qm;
      let verdict =
        if not t.accepting then
          Rejected (Proto.Shutting_down, "server is draining")
        else if t.queue_len >= t.cfg.queue_max then begin
          t.n_shed <- t.n_shed + 1;
          Rejected
            ( Proto.Resource_exhausted,
              Printf.sprintf "admission queue full (%d)" t.cfg.queue_max )
        end
        else begin
          Queue.push job t.queue;
          t.queue_len <- t.queue_len + 1;
          if t.queue_len > t.queue_peak then t.queue_peak <- t.queue_len;
          t.n_queries <- t.n_queries + 1;
          Condition.signal t.qc;
          Admitted ticket
        end
      in
      let depth = t.queue_len in
      Mutex.unlock t.qm;
      (match verdict with
      | Admitted _ ->
        Obs.Metrics.incr t.c_queries;
        Obs.Metrics.set t.g_depth (float_of_int depth)
      | Rejected (Proto.Resource_exhausted, _) -> Obs.Metrics.incr t.c_shed
      | Rejected _ -> ());
      verdict
    end

(* ------------------------------------------------------------------ *)
(* Store-backed row persistence (best effort) *)

let encode_row row =
  let buf = Buffer.create (4 + (4 * Array.length row)) in
  Buffer.add_string buf "ROW1";
  let put v =
    let v = if v < 0 || v >= 0xFFFFFFFF then 0xFFFFFFFF else v in
    Buffer.add_char buf (Char.chr ((v lsr 24) land 0xFF));
    Buffer.add_char buf (Char.chr ((v lsr 16) land 0xFF));
    Buffer.add_char buf (Char.chr ((v lsr 8) land 0xFF));
    Buffer.add_char buf (Char.chr (v land 0xFF))
  in
  Array.iter put row;
  Buffer.contents buf

let decode_row ~n bytes =
  if String.length bytes <> 4 + (4 * n) || String.sub bytes 0 4 <> "ROW1" then
    None
  else
    Some
      (Array.init n (fun i ->
           let o = 4 + (4 * i) in
           let v =
             (Char.code bytes.[o] lsl 24)
             lor (Char.code bytes.[o + 1] lsl 16)
             lor (Char.code bytes.[o + 2] lsl 8)
             lor Char.code bytes.[o + 3]
           in
           if v = 0xFFFFFFFF then max_int else v))

let row_key spec ~source ~backend =
  Store.Key.derive
    ~exp_id:
      (Printf.sprintf "serve.row/%s/src=%d" (Corpus.spec_to_string spec) source)
    ~seed:spec.Corpus.seed ~quick:false ~backend

let retryable = function
  | Fault.Inject.Injected { retryable; _ } -> retryable
  | Sys_error _ | Unix.Unix_error _ -> true
  | _ -> false

let with_store_retry t f =
  Fault.Retry.with_backoff ~jitter:0.5 ~jitter_seed:t.cfg.jitter_seed
    ~budget_s:t.cfg.store_budget_s ~retryable
    ~on_retry:(fun _ _ -> ())
    f

let store_get t job =
  match (t.cfg.store, job.j_spec) with
  | None, _ | _, None -> None
  | Some store, Some spec -> (
    let key =
      row_key spec ~source:job.j_source
        ~backend:(Sim.Backend.to_string (Corpus.backend t.corpus))
    in
    match with_store_retry t (fun _ -> Store.Objects.get store ~key) with
    | Some (bytes, entry) -> (
      let n = Temporal.Tgraph.n job.j_net in
      match decode_row ~n bytes with
      | Some row -> Some row
      | None ->
        (* Content address held but the payload is not a row of the
           expected shape (schema drift): quarantine so a fresh put
           repopulates, and treat as a miss. *)
        (try Store.Objects.quarantine store entry with _ -> ());
        None)
    | None -> None
    | exception _ -> None)

let store_put t job row =
  match (t.cfg.store, job.j_spec) with
  | None, _ | _, None -> ()
  | Some store, Some spec -> (
    let key =
      row_key spec ~source:job.j_source
        ~backend:(Sim.Backend.to_string (Corpus.backend t.corpus))
    in
    let meta =
      [
        ("kind", "serve.row");
        ("instance", job.j_instance);
        ("source", string_of_int job.j_source);
      ]
    in
    try
      ignore
        (with_store_retry t (fun _ ->
             Store.Objects.put store ~key ~meta (encode_row row)))
    with _ -> ())

(* ------------------------------------------------------------------ *)
(* Row computation *)

let scalar_only net =
  Temporal.Batch.force_scalar () || Temporal.Tgraph.is_implicit net

(* Compute rows for [sources] of one instance.  [still_wanted src] is
   the cooperative-cancellation probe: checked immediately before each
   sweep, so work for sources whose every waiter has expired is
   skipped.  Returns [rows.(i) = Some row] in [sources] order. *)
let compute_rows net sources ~still_wanted =
  let pool = Exec.Pool.global () in
  let n = Temporal.Tgraph.n net in
  let k = Array.length sources in
  (* Bumped from pool worker domains — must be atomic. *)
  let sweeps = Atomic.make 0 in
  let rows =
    if scalar_only net then
      Exec.Pool.map_range pool ~lo:0 ~hi:k (fun i ->
          let src = sources.(i) in
          if not (still_wanted src) then None
          else begin
            Atomic.incr sweeps;
            let arr = Temporal.Foremost.arrivals_borrowed net src in
            Some (Array.sub arr 0 n)
          end)
    else begin
      let lane_width = Temporal.Batch.lane_width in
      let groups = (k + lane_width - 1) / lane_width in
      let per_group =
        Exec.Pool.map_range pool ~lo:0 ~hi:groups (fun g ->
            let lo = g * lane_width in
            let lanes = min lane_width (k - lo) in
            let srcs = Array.sub sources lo lanes in
            if not (Array.exists still_wanted srcs) then
              Array.make lanes None
            else begin
              Atomic.incr sweeps;
              let b = Temporal.Batch.sweep net ~sources:srcs in
              Array.init lanes (fun lane ->
                  let row = Array.make n 0 in
                  Temporal.Batch.arrivals_into b ~lane row;
                  Some row)
            end)
      in
      Array.concat (Array.to_list per_group)
    end
  in
  (rows, Atomic.get sweeps)

(* One dispatch cycle: drain the queue and answer everything drained.
   Runs in the dispatcher thread (or a test driving the engine
   synchronously); must never raise. *)
let process_pending t =
  Mutex.lock t.qm;
  let jobs = Queue.fold (fun acc j -> j :: acc) [] t.queue in
  Queue.clear t.queue;
  t.queue_len <- 0;
  Mutex.unlock t.qm;
  Obs.Metrics.set t.g_depth 0.;
  let jobs = List.rev jobs in
  (* Group by instance, preserving arrival order inside each group. *)
  let by_instance : (string, job list ref) Hashtbl.t = Hashtbl.create 8 in
  let order = ref [] in
  List.iter
    (fun j ->
      match Hashtbl.find_opt by_instance j.j_instance with
      | Some r -> r := j :: !r
      | None ->
        Hashtbl.add by_instance j.j_instance (ref [ j ]);
        order := j.j_instance :: !order)
    jobs;
  let expired_total = ref 0 in
  let handle_instance id =
    let group = List.rev !(Hashtbl.find by_instance id) in
    let now = Unix.gettimeofday () in
    let expired, live =
      List.partition (fun j -> now > j.j_deadline) group
    in
    List.iter
      (fun j ->
        incr expired_total;
        resolve t j.j_ticket (Err (Proto.Deadline_exceeded, "expired in queue")))
      expired;
    if live <> [] then begin
      (* Cache, then store, then compute. *)
      let cache_hits = ref 0 and store_hits = ref 0 and evictions = ref 0 in
      let misses = ref [] in
      List.iter
        (fun j ->
          match Hashtbl.find_opt t.cache (j.j_instance, j.j_source) with
          | Some node ->
            incr cache_hits;
            (* Touch: a hit moves the node to the recency front, so
               hot rows in a skewed mix outlive one-shot scans. *)
            lru_unlink node;
            lru_push_front t.cache_lru node;
            resolve t j.j_ticket (Row node.lru_row)
          | None -> misses := j :: !misses)
        live;
      let insert_cache key row =
        if t.cfg.cache_max > 0 && not (Hashtbl.mem t.cache key) then begin
          if Hashtbl.length t.cache >= t.cfg.cache_max then begin
            let victim = t.cache_lru.lru_prev in
            if victim != t.cache_lru then begin
              lru_unlink victim;
              Hashtbl.remove t.cache victim.lru_key;
              incr evictions
            end
          end;
          let node =
            {
              lru_key = key;
              lru_row = row;
              lru_prev = t.cache_lru;
              lru_next = t.cache_lru;
            }
          in
          Hashtbl.add t.cache key node;
          lru_push_front t.cache_lru node
        end
      in
      let misses = List.rev !misses in
      let after_store = ref [] in
      List.iter
        (fun j ->
          match store_get t j with
          | Some row ->
            incr store_hits;
            insert_cache (j.j_instance, j.j_source) row;
            resolve t j.j_ticket (Row row)
          | None -> after_store := j :: !after_store)
        misses;
      let pending = List.rev !after_store in
      (* Dedupe sources; remember which jobs wait on each. *)
      let waiters : (int, job list ref) Hashtbl.t = Hashtbl.create 16 in
      let sources = ref [] in
      List.iter
        (fun j ->
          match Hashtbl.find_opt waiters j.j_source with
          | Some r -> r := j :: !r
          | None ->
            Hashtbl.add waiters j.j_source (ref [ j ]);
            sources := j.j_source :: !sources)
        pending;
      let sources = Array.of_list (List.rev !sources) in
      if Array.length sources > 0 then begin
        let net = (List.hd pending).j_net in
        let still_wanted src =
          let now = Unix.gettimeofday () in
          List.exists
            (fun j -> now <= j.j_deadline)
            !(Hashtbl.find waiters src)
        in
        match compute_rows net sources ~still_wanted with
        | rows, sweeps ->
          t.n_sweeps <- t.n_sweeps + sweeps;
          Obs.Metrics.add t.c_sweeps sweeps;
          Array.iteri
            (fun i src ->
              let js = List.rev !(Hashtbl.find waiters src) in
              match rows.(i) with
              | Some row ->
                insert_cache (id, src) row;
                store_put t (List.hd js) row;
                List.iter (fun j -> resolve t j.j_ticket (Row row)) js
              | None ->
                (* Skipped by cooperative cancellation: every waiter
                   had expired when the sweep was due. *)
                List.iter
                  (fun j ->
                    incr expired_total;
                    resolve t j.j_ticket
                      (Err (Proto.Deadline_exceeded, "expired before sweep")))
                  js)
            sources
        | exception e ->
          let msg = Printexc.to_string e in
          Array.iter
            (fun src ->
              List.iter
                (fun j -> resolve t j.j_ticket (Err (Proto.Internal, msg)))
                !(Hashtbl.find waiters src))
            sources
      end;
      Mutex.lock t.qm;
      t.n_cache_hits <- t.n_cache_hits + !cache_hits;
      t.n_store_hits <- t.n_store_hits + !store_hits;
      t.n_evictions <- t.n_evictions + !evictions;
      Mutex.unlock t.qm;
      if !cache_hits > 0 then Obs.Metrics.add t.c_cache_hits !cache_hits;
      if !evictions > 0 then Obs.Metrics.add t.c_evictions !evictions
    end
  in
  (* An exception escaping an instance group must not leave a ticket
     unresolved (the connection thread would hang): answer everything
     in the group with Internal — already-resolved tickets keep their
     first answer. *)
  List.iter
    (fun id ->
      try handle_instance id
      with e ->
        let msg = Printexc.to_string e in
        List.iter
          (fun j -> resolve t j.j_ticket (Err (Proto.Internal, msg)))
          (List.rev !(Hashtbl.find by_instance id)))
    (List.rev !order);
  if !expired_total > 0 then begin
    Mutex.lock t.qm;
    t.n_expired <- t.n_expired + !expired_total;
    Mutex.unlock t.qm;
    Obs.Metrics.add t.c_expired !expired_total
  end

(* ------------------------------------------------------------------ *)
(* Dispatcher lifecycle *)

let dispatcher_loop t =
  let rec loop () =
    Mutex.lock t.qm;
    while t.queue_len = 0 && not t.stopping do
      Condition.wait t.qc t.qm
    done;
    let stop_now = t.stopping && t.queue_len = 0 in
    let draining = t.stopping in
    Mutex.unlock t.qm;
    if stop_now then ()
    else begin
      (* Coalescing window: let concurrent clients pile onto this
         cycle.  Skipped while draining — flush fast. *)
      if t.cfg.batch_window_s > 0. && not draining then
        Thread.delay t.cfg.batch_window_s;
      process_pending t;
      loop ()
    end
  in
  loop ()

let start t =
  Mutex.lock t.qm;
  let already = t.dispatcher <> None in
  Mutex.unlock t.qm;
  if already then invalid_arg "Engine.start: already started";
  let th = Thread.create dispatcher_loop t in
  Mutex.lock t.qm;
  t.dispatcher <- Some th;
  Mutex.unlock t.qm

let stop_accepting t =
  Mutex.lock t.qm;
  t.accepting <- false;
  Mutex.unlock t.qm

let drain t =
  Mutex.lock t.qm;
  t.accepting <- false;
  t.stopping <- true;
  Condition.broadcast t.qc;
  let th = t.dispatcher in
  t.dispatcher <- None;
  Mutex.unlock t.qm;
  match th with
  | Some th -> Thread.join th
  | None ->
    (* Never started (synchronous tests): flush inline so the drain
       contract — no queued job left unanswered — holds regardless. *)
    process_pending t
