(** Shared renderer for the [ephemeral-serve-ledger] artifact.

    The ledger has a [deterministic] section — a pure function of the
    corpus manifest, backend, and queue bound, byte-identical run to
    run and {e at any shard count} — and a [volatile] section of
    traffic tallies and timings.  The single-process {!Server} renders
    one directly from {!Engine.stats}; the sharded {!Router} merges
    per-shard tallies with {!merge_volatile} and renders the same
    shape, so every downstream check (schema tag, [queue_peak] bound,
    CI deterministic-section diff) is shard-count-agnostic. *)

val json_escape : string -> string
val json_float : float -> string

type volatile = {
  queries : int;
  shed : int;
  expired : int;
  cache_hits : int;
  store_hits : int;
  sweeps : int;
  evictions : int;
  queue_peak : int;  (** merged across shards with [max], not [+] *)
  p50_ms : float;
  p99_ms : float;
  qps : float;
  wall_s : float;
  shards : int option;  (** [None] = single-process serve *)
}

val of_stats :
  Engine.stats ->
  p50_ms:float ->
  p99_ms:float ->
  qps:float ->
  wall_s:float ->
  shards:int option ->
  volatile

val merge_volatile : volatile list -> wall_s:float -> shards:int -> volatile
(** Sum tallies, [max] the queue peaks, recompute qps over the merged
    wall clock.  Percentiles are zeroed — per-shard percentiles do not
    compose; the caller overrides them from its own end-to-end
    histogram if it has one. *)

val render :
  backend:string ->
  queue_max:int ->
  instances:(string * string * string) list ->
  volatile ->
  string
(** The full ledger document, trailing newline included.  [instances]
    is {!Corpus.list_rows} output in manifest order. *)
