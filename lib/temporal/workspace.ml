(* Per-domain scratch arrays for the temporal kernels.

   An n-source all-pairs sweep used to allocate two fresh n-arrays per
   source (arrival + predecessor); with trial-level parallelism the
   allocator churn multiplied across domains.  Each domain instead owns
   one lazily grown workspace, fetched through [Domain.DLS] — so the
   same arrays serve every sweep a domain runs, including [Exec.Pool]
   worker domains, and no locking is ever needed. *)

type t = {
  mutable arrival : int array;  (* foremost/flooding arrivals *)
  mutable pred : int array;  (* stream predecessor indices *)
  mutable dist : int array;  (* static BFS distances *)
  mutable queue : int array;  (* static BFS ring queue *)
}

let key : t Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      { arrival = [||]; pred = [||]; dist = [||]; queue = [||] })

(* Grow to the next power of two >= n so a mixed workload of sizes
   settles after O(log) reallocations. *)
let capacity_for n =
  let c = ref 16 in
  while !c < n do
    c := !c * 2
  done;
  !c

(* Growths are per domain (each domain's workspace grows on its own
   schedule), so the counter's value depends on the job count — run
   ledgers file it under the volatile section. *)
let growth_c = Obs.Metrics.counter "kernel.workspace_growths"

let get ~n =
  if n < 0 then invalid_arg "Workspace.get: negative size";
  let ws = Domain.DLS.get key in
  if Array.length ws.arrival < n then begin
    let c = capacity_for n in
    if Obs.Control.enabled () then Obs.Metrics.incr growth_c;
    ws.arrival <- Array.make c 0;
    ws.pred <- Array.make c 0;
    ws.dist <- Array.make c 0;
    ws.queue <- Array.make c 0
  end;
  ws
