(* Per-domain scratch arrays for the temporal kernels.

   An n-source all-pairs sweep used to allocate two fresh n-arrays per
   source (arrival + predecessor); with trial-level parallelism the
   allocator churn multiplied across domains.  Each domain instead owns
   one lazily grown workspace, fetched through [Domain.DLS] — so the
   same arrays serve every sweep a domain runs, including [Exec.Pool]
   worker domains, and no locking is ever needed. *)

type t = {
  mutable arrival : int array;  (* foremost/flooding arrivals *)
  mutable pred : int array;  (* stream predecessor indices *)
  mutable dist : int array;  (* static BFS distances *)
  mutable queue : int array;  (* static BFS ring queue *)
  (* Batch-kernel slots (Batch.sweep): per-vertex lane bitmasks, the
     per-label-group delta accumulator and its dirty stack, the
     lane-strided arrival matrix, and the two per-lane vectors. *)
  mutable lane_reached : int array;  (* one lane-mask word per vertex *)
  mutable lane_delta : int array;  (* current label group's new bits *)
  mutable lane_dirty : int array;  (* vertices touched this group *)
  mutable lane_arrival : int array;  (* arrival.(v * lanes + lane) *)
  mutable lane_counts : int array;  (* per-lane reached counts *)
  mutable lane_ecc : int array;  (* per-lane saturation labels *)
}

let key : t Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      {
        arrival = [||];
        pred = [||];
        dist = [||];
        queue = [||];
        lane_reached = [||];
        lane_delta = [||];
        lane_dirty = [||];
        lane_arrival = [||];
        lane_counts = [||];
        lane_ecc = [||];
      })

(* Grow to the next power of two >= n so a mixed workload of sizes
   settles after O(log) reallocations. *)
let capacity_for n =
  let c = ref 16 in
  while !c < n do
    c := !c * 2
  done;
  !c

(* Growths are per domain (each domain's workspace grows on its own
   schedule), so the counter's value depends on the job count — run
   ledgers file it under the volatile section.  Batch-slot growths
   below feed the same per-domain instrument. *)
let growth_c = Obs.Metrics.counter "kernel.workspace_growths"

let get ~n =
  if n < 0 then invalid_arg "Workspace.get: negative size";
  let ws = Domain.DLS.get key in
  if Array.length ws.arrival < n then begin
    let c = capacity_for n in
    if Obs.Control.enabled () then Obs.Metrics.incr growth_c;
    ws.arrival <- Array.make c 0;
    ws.pred <- Array.make c 0;
    ws.dist <- Array.make c 0;
    ws.queue <- Array.make c 0
  end;
  ws

(* Batch slots grow on their own schedule so scalar-only workloads never
   pay for them.  Capacities are measured in *words*, not vertices: the
   bitset slots hold one lane-mask word per vertex (n words) and the
   arrival matrix holds [lanes] words per vertex (n * lanes words), and
   each is rounded to the next power of two of its own word count —
   never pow2(vertices) * lanes, which is not a power of two and would
   defeat the settle-after-O(log)-growths argument above. *)
let get_batch ~n ~lanes =
  if n < 0 then invalid_arg "Workspace.get_batch: negative size";
  if lanes < 1 then invalid_arg "Workspace.get_batch: lanes must be >= 1";
  let ws = Domain.DLS.get key in
  let matrix_words = n * lanes in
  if
    Array.length ws.lane_reached < n
    || Array.length ws.lane_arrival < matrix_words
  then begin
    if Obs.Control.enabled () then Obs.Metrics.incr growth_c;
    if Array.length ws.lane_reached < n then begin
      let c = capacity_for n in
      ws.lane_reached <- Array.make c 0;
      ws.lane_delta <- Array.make c 0;
      ws.lane_dirty <- Array.make c 0
    end;
    if Array.length ws.lane_arrival < matrix_words then
      ws.lane_arrival <- Array.make (capacity_for matrix_words) 0;
    if Array.length ws.lane_counts < Sys.int_size then begin
      ws.lane_counts <- Array.make Sys.int_size 0;
      ws.lane_ecc <- Array.make Sys.int_size 0
    end
  end;
  ws

(* The word-plane-only variant for arrival-free batch kernels
   ([Batch.sweep_diameter], [Batch.sweep_reach]): grows the n-word
   bitset planes and the Sys.int_size-word per-lane vectors but NEVER
   the n * lanes arrival matrix — the sizing contract the implicit
   backend relies on at n = 10^5+, where a single n * lane_width matrix
   would be 50 MB of scratch per domain for kernels that don't read
   it. *)
let get_batch_planes ~n =
  if n < 0 then invalid_arg "Workspace.get_batch_planes: negative size";
  let ws = Domain.DLS.get key in
  if Array.length ws.lane_reached < n || Array.length ws.lane_counts = 0 then begin
    if Obs.Control.enabled () then Obs.Metrics.incr growth_c;
    if Array.length ws.lane_reached < n then begin
      let c = capacity_for n in
      ws.lane_reached <- Array.make c 0;
      ws.lane_delta <- Array.make c 0;
      ws.lane_dirty <- Array.make c 0
    end;
    if Array.length ws.lane_counts < Sys.int_size then begin
      ws.lane_counts <- Array.make Sys.int_size 0;
      ws.lane_ecc <- Array.make Sys.int_size 0
    end
  end;
  ws
