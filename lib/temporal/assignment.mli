(** Label assignments: how a static graph becomes a temporal network.

    Random assignments realise the paper's models — UNI-CASE (one uniform
    label per edge, Definition 4), the [r]-labels-per-edge experiment of
    §4–5, and the F-CASE extension — while deterministic assignments
    provide fixtures and the OPT-side constructions live in {!Opt}. *)

val uniform_single : Prng.Rng.t -> Sgraph.Graph.t -> a:int -> Tgraph.t
(** UNI-CASE: every edge gets exactly one label, uniform on [{1..a}],
    independently (Definition 4).  With [a = n] this is the Normalized
    U-RTN of §3. *)

val normalized_uniform : Prng.Rng.t -> Sgraph.Graph.t -> Tgraph.t
(** {!uniform_single} with [a = n] — the Normalized U-RTN. *)

val uniform_single_implicit : Prng.Rng.t -> Sgraph.Graph.t -> a:int -> Tgraph.t
(** UNI-CASE on the implicit backend: one [bits64] draw from [rng]
    seeds a derived-label instance ({!Tgraph.of_derived}) whose labels
    are recomputed per query instead of stored — O(1) label memory at
    build time, O(n log n) expected working set under the kernels'
    lazy prefix streams.  [Tgraph.materialize] of the result is
    label-identical to it, so every statistic agrees byte-for-byte
    with the dense twin.  The label values differ from what
    {!uniform_single} would draw from the same [rng] state (different
    site function, same uniform marginal). *)

val uniform_multi_implicit :
  Prng.Rng.t -> Sgraph.Graph.t -> a:int -> r:int -> Tgraph.t
(** [r] i.i.d. uniform labels per edge on the implicit backend;
    collisions collapse on query exactly as {!uniform_multi}'s sets
    do.  @raise Invalid_argument if [r < 1] (a derived instance cannot
    represent label-free edges). *)

val uniform_multi : Prng.Rng.t -> Sgraph.Graph.t -> a:int -> r:int -> Tgraph.t
(** Each edge gets [r] labels drawn i.i.d. uniform on [{1..a}].  Labels
    form a *set*, so collisions collapse (irrelevant for the paper's
    bounds, which only ever ask whether some label hits an interval).
    @raise Invalid_argument if [r < 0]. *)

val of_dist :
  Prng.Rng.t -> Prng.Dist.t -> Sgraph.Graph.t -> a:int -> r:int -> Tgraph.t
(** F-CASE: [r] i.i.d. labels per edge from an arbitrary distribution
    over [{1..a}] (paper §2, Note). *)

val periodic :
  Prng.Rng.t -> Sgraph.Graph.t -> a:int -> period:int -> Tgraph.t
(** Correlated availability: each edge is up at every [period]-th moment
    starting from its own uniformly random phase — duty-cycled radios,
    scheduled ferries.  [⌈(a - phase) / period⌉] labels per edge.
    @raise Invalid_argument if [period < 1]. *)

val bursty :
  Prng.Rng.t -> Sgraph.Graph.t -> a:int -> burst:int -> rate:float -> Tgraph.t
(** Correlated availability: bursts of [burst] consecutive moments; a
    burst starts at each moment with probability [rate] (when no burst
    is running) — the contact-run pattern mobility produces.  Edges can
    end up empty when no burst fires.
    @raise Invalid_argument if [burst < 1] or [rate] outside [\[0,1\]]. *)

val constant : Sgraph.Graph.t -> a:int -> Label.t -> Tgraph.t
(** Every edge carries the same label set — e.g. the "same [d] consecutive
    labels per edge" global-coordination assignment of §1. *)

val of_fun : Sgraph.Graph.t -> a:int -> (int -> Label.t) -> Tgraph.t
(** Arbitrary per-edge assignment by edge id. *)

val all_times : Sgraph.Graph.t -> a:int -> Tgraph.t
(** Every edge available at every time in [{1..a}]: the static-graph
    limit, in which temporal distance collapses to hop distance. *)
