module Graph = Sgraph.Graph
module Metrics = Sgraph.Metrics

type estimate = {
  r : int;
  success_rate : float;
  ci : Stats.Ci.interval;
  trials : int;
  target : float;
}

(* Each probe pre-splits one RNG stream per trial and samples the
   assignments on the domain pool; the count is folded in trial order,
   so results don't depend on the job count.  Inside each trial the
   Treach check runs on the bit-parallel batch kernel (one sweep per
   Batch.lane_width sources, sequential because the trial already
   occupies the pool), so successes pays ⌈n/W⌉ stream sweeps per
   sampled assignment instead of n. *)
let successes rng g ~a ~r ~trials =
  if trials <= 0 then 0
  else begin
    let rngs = Prng.Rng.split_n rng trials in
    Exec.Pool.reduce (Exec.Pool.global ()) ~lo:0 ~hi:trials
      ~map:(fun i ->
        let net = Assignment.uniform_multi rngs.(i) g ~a ~r in
        Reachability.treach net)
      ~fold:(fun acc hit -> if hit then acc + 1 else acc)
      ~init:0
  end

let success_probability rng g ~a ~r ~trials =
  float_of_int (successes rng g ~a ~r ~trials) /. float_of_int trials

let min_r ?r_max rng g ~a ~target ~trials =
  if not (target > 0. && target <= 1.) then
    invalid_arg "Por.min_r: target must be in (0,1]";
  if trials <= 0 then invalid_arg "Por.min_r: trials must be positive";
  let r_max = Option.value r_max ~default:(4 * a) in
  let needed = int_of_float (Float.ceil (target *. float_of_int trials)) in
  let hits r = successes rng g ~a ~r ~trials >= needed in
  (* Exponential ramp-up to find a succeeding r. *)
  let rec bracket r =
    if r > r_max then None
    else if hits r then Some r
    else bracket (2 * r)
  in
  match bracket 1 with
  | None -> None
  | Some hi_start ->
    (* Binary search on [lo, hi]: hi always succeeded at least once. *)
    let rec narrow lo hi =
      if lo >= hi then hi
      else
        let mid = (lo + hi) / 2 in
        if hits mid then narrow lo mid else narrow (mid + 1) hi
    in
    let r = narrow (Stdlib.max 1 (hi_start / 2)) hi_start in
    (* Re-measure at the chosen r with fresh samples for an honest rate. *)
    let final = successes rng g ~a ~r ~trials in
    Some
      {
        r;
        success_rate = float_of_int final /. float_of_int trials;
        ci = Stats.Ci.wilson ~trials final;
        trials;
        target;
      }

let whp_target ~n = 1. -. (1. /. float_of_int n)
let price ~m ~r ~opt = float_of_int (m * r) /. float_of_int opt

type report = {
  graph_name : string;
  n : int;
  m : int;
  estimate : estimate;
  opt_lower : int;
  opt_upper : int;
  por_lower : float;
  por_upper : float;
  thm7_bound : float;
  coupon_bound : float;
}

let report ?r_max rng ~name g ~a ~target ~trials =
  match min_r ?r_max rng g ~a ~target ~trials with
  | None -> None
  | Some estimate ->
    let n = Graph.n g and m = Graph.m g in
    let opt_lower = Opt.lower_bound g in
    let opt_upper =
      if Opt.is_star g then Opt.star_value ~n
      else if Opt.is_clique g then
        Stdlib.min (Opt.clique_value g) (Opt.upper_bound g)
      else Opt.upper_bound g
    in
    let diameter = Metrics.diameter g in
    Some
      {
        graph_name = name;
        n;
        m;
        estimate;
        opt_lower;
        opt_upper;
        por_lower = price ~m ~r:estimate.r ~opt:opt_upper;
        por_upper = price ~m ~r:estimate.r ~opt:opt_lower;
        thm7_bound = Stats.Bounds.thm7_labels ~diameter ~n;
        coupon_bound = Stats.Bounds.coupon_labels ~diameter ~n ~m;
      }
