type result = {
  target : int;
  deadline : int;
  latest : int array;  (* L(v); -1 = unreachable *)
  succ : int array;  (* stream index of the edge realising L(v), or -1 *)
}

let run ?deadline net t =
  let deadline = Option.value deadline ~default:(Tgraph.lifetime net) in
  if deadline <= 0 then
    invalid_arg "Reverse_foremost.run: deadline must be positive";
  let n = Tgraph.n net in
  if t < 0 || t >= n then invalid_arg "Reverse_foremost.run: target out of range";
  let latest = Array.make n (-1) in
  let succ = Array.make n (-1) in
  latest.(t) <- deadline;
  (* Decreasing label order: when edge (u,v,l) is processed, every edge
     with a larger label — the only ones a journey may use after l — has
     already contributed to latest.(v). *)
  let te_src, te_dst, te_label, _ = Tgraph.stream net in
  for i = Array.length te_label - 1 downto 0 do
    let u = te_src.(i) and v = te_dst.(i) and l = te_label.(i) in
    if l <= deadline && l <= latest.(v) && l - 1 > latest.(u) then begin
      latest.(u) <- l - 1;
      succ.(u) <- i
    end
  done;
  { target = t; deadline; latest; succ }

let target r = r.target
let deadline r = r.deadline

let latest_presence r v = if r.latest.(v) < 0 then None else Some r.latest.(v)

let latest_departure r v =
  if v = r.target || r.latest.(v) < 0 then None else Some (r.latest.(v) + 1)

let reachable_count r =
  Array.fold_left (fun acc x -> if x >= 0 then acc + 1 else acc) 0 r.latest

let journey_from net r v =
  if v = r.target then Some []
  else if r.latest.(v) < 0 then None
  else begin
    let rec walk v acc =
      if v = r.target then List.rev acc
      else
        let src, dst, label = Tgraph.time_edge net r.succ.(v) in
        walk dst ({ Journey.src; dst; label } :: acc)
    in
    Some (walk v [])
  end
