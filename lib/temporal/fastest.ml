type result = {
  source : int;
  duration : int array;  (* max_int = unreachable *)
  best_start : int array;  (* departure-window start_time achieving it *)
}

let run net s =
  let n = Tgraph.n net in
  if s < 0 || s >= n then invalid_arg "Fastest.run: source out of range";
  let duration = Array.make n max_int in
  let best_start = Array.make n (-1) in
  duration.(s) <- 0;
  best_start.(s) <- 1;
  (* Candidate departures: distinct labels on arcs leaving s.  A journey
     departing at label l is found exactly by the foremost sweep with
     start_time = l, which can only report arrivals from journeys whose
     first label is >= l; subtracting l therefore never under-estimates,
     and the run at the optimal journey's own departure attains it. *)
  let departures =
    let acc = ref [] in
    Tgraph.iter_crossings_out net s (fun e _ ->
        Tgraph.iter_edge_labels net e (fun l -> acc := l :: !acc));
    List.sort_uniq compare !acc
  in
  List.iter
    (fun depart ->
      let arrival = Foremost.arrivals_borrowed ~start_time:depart net s in
      for v = 0 to n - 1 do
        if v <> s && arrival.(v) < max_int then begin
          let transit = arrival.(v) - depart in
          if transit < duration.(v) then begin
            duration.(v) <- transit;
            best_start.(v) <- depart
          end
        end
      done)
    departures;
  { source = s; duration; best_start }

let source r = r.source
let duration r v = if r.duration.(v) = max_int then None else Some r.duration.(v)

let window r v =
  if v = r.source || r.duration.(v) = max_int then None
  else Some (r.best_start.(v), r.best_start.(v) + r.duration.(v))

let max_duration r =
  let worst = ref 0 and complete = ref true in
  Array.iteri
    (fun v d ->
      if v <> r.source then
        if d = max_int then complete := false
        else if d > !worst then worst := d)
    r.duration;
  if !complete then Some !worst else None

let journey_to net r v =
  if v = r.source then Some []
  else if r.duration.(v) = max_int then None
  else begin
    let res = Foremost.run ~start_time:r.best_start.(v) net r.source in
    Foremost.journey_to net res v
  end
