(** Bit-parallel batched foremost sweeps: one pass over the
    counting-sorted time-edge stream serves up to {!lane_width} sources
    at once, each owning one bit lane of a per-vertex machine word.

    {b Lane layout.}  For a batch of [k] sources, bit [j] (LSB first)
    of [reached v] belongs to lane [j] — source [sources.(j)] — and
    the arrival matrix is lane-strided: entry [v * k + j].  Batches
    over all sources are formed in source order, [lane_width] at a
    time, so source [s] is lane [s mod lane_width] of batch
    [s / lane_width]; a final ragged batch ([n mod lane_width <> 0]
    sources) simply has fewer lanes.

    {b Equivalence.}  Entries of one label are applied against the
    reached state frozen at the previous label and committed together
    (journey labels increase strictly, so same-label chaining is
    impossible), which makes per-lane arrivals bit-for-bit equal to
    {!Foremost.arrivals_borrowed} for the lane's source and
    independent of within-label stream order.  The saturation
    early-exit is output-invariant: a committed arrival is final, so
    once every lane has reached every vertex the remaining stream
    cannot change anything.

    Results borrow the calling domain's {!Workspace} batch slots:
    valid until the next batched sweep on the same domain, and only
    entries for [v < n], [lane < lanes] are meaningful.  Scalar
    foremost sweeps and static BFS use disjoint slots and may run
    while a batch result is still live. *)

val lane_width : int
(** Lanes per machine word: [Sys.int_size] (63 on 64-bit). *)

type t = {
  n : int;  (** vertex count of the swept network *)
  lanes : int;  (** active lanes in this batch, [1 .. lane_width] *)
  start_time : int;
  sources : int array;  (** [sources.(lane)] is the lane's source *)
  arrival : int array;  (** borrowed; entry [v * lanes + lane] *)
  reached : int array;  (** borrowed; per-vertex lane bitmask *)
  reached_counts : int array;  (** borrowed; per-lane reached counts *)
  ecc : int array;
      (** borrowed; per-lane saturation label, [max_int] unsaturated *)
}

val sweep : ?start_time:int -> Tgraph.t -> sources:int array -> t
(** One word-parallel sweep for the given sources (at most
    {!lane_width}; duplicates allowed).  O(M) stream scan with
    saturation early-exit, zero allocation beyond the per-domain
    workspace.
    @raise Invalid_argument on an empty or oversized source array, a
    source out of range, or [start_time < 1]. *)

val sweep_reach : ?start_time:int -> Tgraph.t -> sources:int array -> t
(** Reachability-only sweep: same group-phased plane walk as
    {!sweep_diameter}, returning a result whose {!reached_word},
    {!reached_count}, {!saturated} and {!all_saturated} are exactly a
    {!sweep}'s — but the arrival matrix is never allocated or written,
    so batch scratch stays at O(n) words (the implicit-backend sizing
    contract).  {!arrival}, {!arrivals_into} and {!eccentricity} are
    unsupported on the result.
    @raise Invalid_argument as {!sweep}. *)

val sweep_diameter : ?start_time:int -> Tgraph.t -> sources:int array -> int option
(** The batch's worst eccentricity — [max] over the given sources of
    their max arrival, i.e. what folding {!eccentricity} over a
    {!sweep}'s lanes yields — or [None] if any (source, vertex) pair
    has no journey.  Same group-phased walk as {!sweep} but it skips
    the arrival matrix entirely (arrivals commit in strictly
    increasing label order, so the last committed pair's label is the
    answer), leaving the edge scan as the whole cost.  This is the
    kernel behind {!Distance.instance_diameter}.
    @raise Invalid_argument as {!sweep}. *)

(** {2 Per-lane readout} *)

val lanes : t -> int
val source : t -> int -> int

val arrival : t -> lane:int -> int -> int
(** Earliest arrival at the vertex for the lane's source: the lane's
    source itself holds [start_time - 1], unreachable vertices
    [max_int] — exactly {!Foremost.arrivals_borrowed}'s convention. *)

val arrivals_into : t -> lane:int -> int array -> unit
(** Copy the lane's arrival row into [out.(0 .. n-1)]. *)

val reached_word : t -> int -> int
(** Bitmask of lanes with a journey to the vertex (sources count as
    reaching themselves). *)

val reached_count : t -> lane:int -> int
(** Vertices reached by the lane, its source included. *)

val saturated : t -> lane:int -> bool
val all_saturated : t -> bool

val eccentricity : t -> lane:int -> int option
(** Max arrival over all targets of the lane's source — the label of
    the group that saturated the lane — or [None] while some vertex is
    unreached.  O(1): maintained by the sweep itself. *)

(** {2 All-source batching}

    Sources [0 .. n-1] in {!lane_width}-wide slices, in source order. *)

val batch_count : n:int -> int

val batch_sources : n:int -> int -> int array
(** The sources of one batch; the last batch is ragged when
    [n mod lane_width <> 0].
    @raise Invalid_argument when the batch index is out of range. *)

val iter_batches : ?start_time:int -> Tgraph.t -> (t -> unit) -> unit
(** Sequential batches on the calling domain, in batch order.  The
    callback's argument is borrowed per the workspace discipline. *)

val map_batches : ?start_time:int -> Tgraph.t -> (t -> 'a) -> 'a array
(** One extracted value per batch, computed on the global {!Exec.Pool}
    (inline when already inside a pool task) and returned in batch
    order — so a sequential fold over the result is byte-identical at
    any [--jobs], per the pool's determinism contract.  [f] must copy
    what it keeps: its argument borrows the {e worker} domain's
    workspace. *)

(** {2 Bit utilities} *)

val popcount : int -> int

val ntz : int -> int
(** Number of trailing zeros; the argument must be non-zero (intended
    for isolated low bits [x land (-x)]).
    @raise Invalid_argument on zero. *)

val force_scalar : unit -> bool
(** True when [EPHEMERAL_SCALAR_SWEEPS] is set (to anything but ["0"]
    or the empty string) in the environment at first use: the rebuilt
    all-pairs consumers then take their per-source scalar paths, so CI
    can byte-diff scalar against batched renders on one build. *)
