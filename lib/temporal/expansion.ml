type params = { l1 : int; c2 : int; d : int }

let make_params ~c1 ~c2 ~d ~n =
  if c1 <= 0. then invalid_arg "Expansion.make_params: c1 must be positive";
  if c2 < 1 then invalid_arg "Expansion.make_params: c2 must be >= 1";
  if d < 0 then invalid_arg "Expansion.make_params: d must be >= 0";
  let l1 = Stdlib.max 1 (int_of_float (Float.round (c1 *. log (float_of_int n)))) in
  { l1; c2; d }

let default_params ?(c1 = 2.0) ?(c2 = 6) ~n () =
  let fn = float_of_int n in
  let l1 = Stdlib.max 1. (Float.round (c1 *. log fn)) in
  (* Depth so that l1 · (c2/2)^d ≈ √n: the expected per-layer growth
     factor is about c2/2 once the Chernoff slack is dropped. *)
  let growth = Stdlib.max 1.5 (float_of_int c2 /. 2.) in
  let needed = log (sqrt fn /. l1) /. log growth in
  let d = Stdlib.max 1 (int_of_float (Float.ceil needed)) in
  make_params ~c1 ~c2 ~d ~n

let horizon { l1; c2; d } = (3 * l1) + (2 * d * c2)

let delta { l1; c2; d } i =
  if i < 1 || i > d + 1 then invalid_arg "Expansion.delta: index out of range";
  if i = 1 then (0, l1) else (l1 + ((i - 2) * c2), l1 + ((i - 1) * c2))

let delta_star { l1; c2; d } = (l1 + (d * c2), (2 * l1) + (d * c2))

let delta' { l1; c2; d } i =
  if i < 1 || i > d + 1 then invalid_arg "Expansion.delta': index out of range";
  if i = 1 then ((2 * l1) + (2 * d * c2), (3 * l1) + (2 * d * c2))
  else ((2 * l1) + ((2 * d) - i + 1) * c2, (2 * l1) + ((2 * d) - i + 2) * c2)

type outcome = {
  success : bool;
  journey : Journey.t option;
  arrival : int option;
  forward_layers : int array;
  backward_layers : int array;
}

let run net params ~s ~t =
  let n = Tgraph.n net in
  if s < 0 || s >= n || t < 0 || t >= n then
    invalid_arg "Expansion.run: endpoint out of range";
  let depth = params.d + 1 in
  if s = t then
    {
      success = true;
      journey = Some [];
      arrival = Some 0;
      forward_layers = Array.make depth 0;
      backward_layers = Array.make depth 0;
    }
  else begin
    (* Forward expansion out of s.  fwd_layer.(v) = layer index (1-based)
       or 0; fwd_via_vert/label.(v) = predecessor arc that brought v in. *)
    let fwd_layer = Array.make n 0 in
    let fwd_via_vert = Array.make n (-1) in
    let fwd_via_label = Array.make n (-1) in
    let forward_layers = Array.make depth 0 in
    let expand_forward i frontier =
      let lo, hi = delta params i in
      let next = ref [] in
      List.iter
        (fun w ->
          Tgraph.iter_crossings_out net w (fun e v ->
              if v <> s && fwd_layer.(v) = 0 then begin
                let label = Tgraph.edge_next_label_in net e ~lo ~hi in
                if label < max_int then begin
                  fwd_layer.(v) <- i;
                  fwd_via_vert.(v) <- w;
                  fwd_via_label.(v) <- label;
                  next := v :: !next
                end
              end))
        frontier;
      forward_layers.(i - 1) <- List.length !next;
      !next
    in
    let rec grow_forward i frontier =
      if i > depth then frontier
      else grow_forward (i + 1) (expand_forward i frontier)
    in
    let fwd_last = grow_forward 1 [ s ] in
    (* Backward expansion out of t: bwd_layer.(v) = layer index; a vertex
       v in layer i reaches t starting with the arc to bwd_via_vert.(v)
       at bwd_via_label.(v), whose label is in Δ'_i. *)
    let bwd_layer = Array.make n 0 in
    let bwd_via_vert = Array.make n (-1) in
    let bwd_via_label = Array.make n (-1) in
    let backward_layers = Array.make depth 0 in
    let expand_backward i frontier =
      let lo, hi = delta' params i in
      let next = ref [] in
      List.iter
        (fun w ->
          Tgraph.iter_crossings_in net w (fun e v ->
              if v <> t && bwd_layer.(v) = 0 then begin
                let label = Tgraph.edge_next_label_in net e ~lo ~hi in
                if label < max_int then begin
                  bwd_layer.(v) <- i;
                  bwd_via_vert.(v) <- w;
                  bwd_via_label.(v) <- label;
                  next := v :: !next
                end
              end))
        frontier;
      backward_layers.(i - 1) <- List.length !next;
      !next
    in
    let rec grow_backward i frontier =
      if i > depth then frontier
      else grow_backward (i + 1) (expand_backward i frontier)
    in
    ignore (grow_backward 1 [ t ]);
    (* Matching step: one edge from Γ_{d+1}(s) to Γ'_{d+1}(t) labelled
       within Δ*. *)
    let lo_star, hi_star = delta_star params in
    let matching = ref None in
    List.iter
      (fun u ->
        if !matching = None then
          Tgraph.iter_crossings_out net u (fun e v ->
              if !matching = None && bwd_layer.(v) = depth then begin
                let label =
                  Tgraph.edge_next_label_in net e ~lo:lo_star ~hi:hi_star
                in
                if label < max_int then matching := Some (u, v, label)
              end))
      fwd_last;
    match !matching with
    | None ->
      {
        success = false;
        journey = None;
        arrival = None;
        forward_layers;
        backward_layers;
      }
    | Some (u, v, label_star) ->
      let rec forward_path v acc =
        if v = s then acc
        else
          let w = fwd_via_vert.(v) and label = fwd_via_label.(v) in
          forward_path w ({ Journey.src = w; dst = v; label } :: acc)
      in
      let rec backward_path v acc =
        if v = t then List.rev acc
        else
          let w = bwd_via_vert.(v) and label = bwd_via_label.(v) in
          backward_path w ({ Journey.src = v; dst = w; label } :: acc)
      in
      let journey =
        forward_path u []
        @ [ { Journey.src = u; dst = v; label = label_star } ]
        @ backward_path v []
      in
      {
        success = true;
        journey = Some journey;
        arrival = Journey.arrival journey;
        forward_layers;
        backward_layers;
      }
  end
