type level = {
  arrival : int array;  (* arr_k(v): earliest arrival using <= k edges *)
  pred : (int * int) array;  (* (predecessor, label) realising arr_k(v) *)
}

type result = {
  source : int;
  start_time : int;
  hops : int array;  (* -1 = unreachable *)
  at_hops : int array;  (* earliest arrival using exactly hops.(v) edges *)
  levels : level array;  (* levels.(k) = state after k relaxation rounds *)
}

let run ?(start_time = 1) net s =
  if start_time < 1 then invalid_arg "Shortest.run: start_time must be >= 1";
  let n = Tgraph.n net in
  if s < 0 || s >= n then invalid_arg "Shortest.run: source out of range";
  let hops = Array.make n (-1) in
  let at_hops = Array.make n max_int in
  hops.(s) <- 0;
  at_hops.(s) <- start_time - 1;
  let level0 = Array.make n max_int in
  level0.(s) <- start_time - 1;
  let levels = ref [ { arrival = level0; pred = Array.make n (-1, -1) } ] in
  (* Bellman-Ford-like rounds: round k relaxes every arc against the
     arrivals of round k-1, so levels.(k) holds arr_k exactly.  At most
     n-1 rounds suffice: a minimal-hop (and a foremost) journey can
     always be made simple — cutting a loop keeps labels increasing. *)
  let changed = ref true in
  let k = ref 0 in
  while !changed do
    changed := false;
    incr k;
    let prev = (List.hd !levels).arrival in
    let arrival = Array.copy prev in
    let pred = Array.make n (-1, -1) in
    for v = 0 to n - 1 do
      if prev.(v) < max_int then
        Tgraph.iter_crossings_out net v (fun e target ->
            let label = Tgraph.edge_next_label_after net e prev.(v) in
            if label < arrival.(target) then begin
              arrival.(target) <- label;
              pred.(target) <- (v, label);
              if hops.(target) = -1 then hops.(target) <- !k;
              if hops.(target) = !k then at_hops.(target) <- label;
              changed := true
            end)
    done;
    if !changed then levels := { arrival; pred } :: !levels
  done;
  {
    source = s;
    start_time;
    hops;
    at_hops;
    levels = Array.of_list (List.rev !levels);
  }

let source r = r.source
let hops r v = if r.hops.(v) < 0 then None else Some r.hops.(v)

let arrival_at_best_hops r v =
  if r.hops.(v) < 0 then None
  else if v = r.source then Some 0
  else Some r.at_hops.(v)

let max_hops r =
  let worst = ref 0 and complete = ref true in
  Array.iter
    (fun h -> if h < 0 then complete := false else if h > !worst then worst := h)
    r.hops;
  if !complete then Some !worst else None

let pareto r v =
  if v = r.source then [ (0, 0) ]
  else if r.hops.(v) < 0 then []
  else begin
    (* levels.(k).arrival.(v) = arr_k(v); collect the staircase of
       strict improvements starting at the minimal hop count. *)
    let points = ref [] in
    let last_arrival = ref max_int in
    Array.iteri
      (fun k level ->
        if k >= r.hops.(v) && level.arrival.(v) < !last_arrival then begin
          last_arrival := level.arrival.(v);
          points := (k, level.arrival.(v)) :: !points
        end)
      r.levels;
    List.rev !points
  end

let journey_to _net r v =
  if v = r.source then Some []
  else if r.hops.(v) < 0 then None
  else begin
    (* Walk predecessor links down the levels: at level k the stored
       (u, label) satisfies arr_{k-1}(u) < label, so the suffix recursion
       from (u, k-1) arrives strictly before this step departs — the
       assembled labels are strictly increasing by construction. *)
    let rec walk v k acc =
      if v = r.source && r.levels.(k).arrival.(v) = r.start_time - 1 then acc
      else begin
        (* Find the level at which v's current arrival was set: descend
           while the previous level already had the same arrival. *)
        let rec settle k =
          if k > 0 && r.levels.(k - 1).arrival.(v) = r.levels.(k).arrival.(v)
          then settle (k - 1)
          else k
        in
        let k = settle k in
        let u, label = r.levels.(k).pred.(v) in
        walk u (k - 1) ({ Journey.src = u; dst = v; label } :: acc)
      end
    in
    let start_level = Stdlib.min r.hops.(v) (Array.length r.levels - 1) in
    Some (walk v start_level [])
  end
