module Graph = Sgraph.Graph

let of_fun g ~a f = Tgraph.create g ~lifetime:a (Array.init (Graph.m g) f)

(* Flat fast path: one RNG draw per edge straight into an int array —
   same Array.init draw order as the of_fun route, but no Label.t boxing
   (the normalized U-RTN clique would otherwise allocate m singleton
   arrays per trial). *)
let uniform_single rng g ~a =
  Tgraph.of_flat_arcs g ~lifetime:a
    (Array.init (Graph.m g) (fun _ -> 1 + Prng.Rng.int rng a))

let normalized_uniform rng g = uniform_single rng g ~a:(Graph.n g)

(* Implicit twins: one bits64 draw seeds the whole instance; every
   label is recomputed on demand from (seed, edge id, roll index)
   instead of being stored.  [Tgraph.materialize] of the result is
   label-identical to it — both backends evaluate the same site
   function — which is what the equivalence suite pins.  Note the
   labels are NOT the ones [uniform_single] would draw from the same
   rng (that path consumes m sequential xoshiro outputs); the implicit
   constructors define their own, equally uniform, distribution. *)
let uniform_multi_implicit rng g ~a ~r =
  if r < 1 then invalid_arg "Assignment.uniform_multi_implicit: r must be >= 1";
  Tgraph.of_derived g ~a ~seed:(Prng.Rng.bits64 rng) ~r

let uniform_single_implicit rng g ~a = uniform_multi_implicit rng g ~a ~r:1

let draw_multi rng ~r draw_one =
  Label.of_list (List.init r (fun _ -> draw_one rng))

let uniform_multi rng g ~a ~r =
  if r < 0 then invalid_arg "Assignment.uniform_multi: r must be >= 0";
  of_fun g ~a (fun _ -> draw_multi rng ~r (fun rng -> 1 + Prng.Rng.int rng a))

let of_dist rng dist g ~a ~r =
  if r < 0 then invalid_arg "Assignment.of_dist: r must be >= 0";
  let sampler = Prng.Dist.Sampler.create dist ~a in
  of_fun g ~a (fun _ -> draw_multi rng ~r (Prng.Dist.Sampler.draw sampler))

let periodic rng g ~a ~period =
  if period < 1 then invalid_arg "Assignment.periodic: period must be >= 1";
  of_fun g ~a (fun _ ->
      let phase = 1 + Prng.Rng.int rng period in
      let rec ticks t acc = if t > a then acc else ticks (t + period) (t :: acc) in
      Label.of_list (ticks phase []))

let bursty rng g ~a ~burst ~rate =
  if burst < 1 then invalid_arg "Assignment.bursty: burst must be >= 1";
  if not (rate >= 0. && rate <= 1.) then
    invalid_arg "Assignment.bursty: rate not in [0,1]";
  of_fun g ~a (fun _ ->
      let labels = ref [] in
      let t = ref 1 in
      while !t <= a do
        if Prng.Rng.bernoulli rng rate then begin
          for offset = 0 to burst - 1 do
            if !t + offset <= a then labels := (!t + offset) :: !labels
          done;
          t := !t + burst
        end
        else incr t
      done;
      Label.of_list !labels)

let constant g ~a labels = of_fun g ~a (fun _ -> labels)
let all_times g ~a = constant g ~a (Label.range 1 a)
