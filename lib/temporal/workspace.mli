(** Per-domain reusable scratch for the temporal kernels.

    [get ~n] returns the calling domain's workspace with every scalar
    array grown to at least [n] entries; [get_batch ~n ~lanes]
    additionally grows the batch-kernel slots.  Contents are {e not}
    cleared — each borrowing kernel initialises the prefix it uses —
    and remain valid only until the next kernel on the same domain
    borrows the same slot.  Results that escape (public [run]
    functions returning records) must copy; the borrowed entry points
    ({!Foremost.arrivals_borrowed}, {!Batch.sweep},
    {!Sgraph.Traverse.bfs_into} call sites) are the ones that avoid
    the copy.

    Slot discipline (who may hold what simultaneously):
    - [arrival]/[pred]: the foremost-sweep family (foremost, flooding,
      reverse-foremost style kernels);
    - [dist]/[queue]: static BFS;
    - [lane_*]: the bit-parallel batch sweep ({!Batch}).

    A kernel may therefore run one temporal sweep (scalar {e or}
    batched) and one static BFS concurrently on the same domain (as
    [Reachability] does), but never two temporal sweeps whose results
    it still needs.

    {b Batch-slot capacities are in words.}  The bitset slots hold one
    lane-mask word per vertex and the arrival matrix [lanes] words per
    vertex; each slot is grown to the next power of two of its own
    {e word} count (never [pow2 vertices * lanes], which is not a
    power of two).  Growths increment the per-domain
    ["kernel.workspace_growths"] counter exactly like the scalar
    slots — each domain grows on its own schedule, so run ledgers file
    the counter under the volatile section. *)

type t = {
  mutable arrival : int array;
  mutable pred : int array;
  mutable dist : int array;
  mutable queue : int array;
  mutable lane_reached : int array;
      (** per-vertex bitmask of lanes that reached the vertex *)
  mutable lane_delta : int array;
      (** per-vertex new bits accumulated in the current label group *)
  mutable lane_dirty : int array;
      (** stack of vertices touched in the current label group *)
  mutable lane_arrival : int array;
      (** lane-strided arrival matrix: entry [v * lanes + lane] *)
  mutable lane_counts : int array;  (** per-lane reached-vertex counts *)
  mutable lane_ecc : int array;  (** per-lane saturation labels *)
}

val get : n:int -> t
(** The calling domain's workspace, with the four scalar arrays of
    length >= [n].  Keyed off [Domain.DLS], so [Exec.Pool] worker
    domains each get their own.
    @raise Invalid_argument if [n < 0]. *)

val get_batch : n:int -> lanes:int -> t
(** Like {!get} but growing the batch slots instead: bitset/dirty
    slots to at least [n] words, the arrival matrix to at least
    [n * lanes] words (both rounded to a power of two of the word
    count), and the per-lane vectors to the full word width.  Scalar
    slots are left untouched — batch users that also need a static
    BFS call {!get} separately.
    @raise Invalid_argument if [n < 0] or [lanes < 1]. *)

val get_batch_planes : n:int -> t
(** Like {!get_batch} but for arrival-free batch kernels
    ({!Batch.sweep_diameter}, {!Batch.sweep_reach}): grows the n-word
    bitset planes and the per-lane vectors, {e never} the [n * lanes]
    arrival matrix.  The sizing contract of the implicit backend — no
    temporal kernel scratch exceeds O(n) words on networks whose
    labels are derived on demand.
    @raise Invalid_argument if [n < 0]. *)
