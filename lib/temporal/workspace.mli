(** Per-domain reusable scratch for the temporal kernels.

    [get ~n] returns the calling domain's workspace with every array
    grown to at least [n] entries.  Contents are {e not} cleared — each
    borrowing kernel initialises the prefix it uses — and remain valid
    only until the next kernel on the same domain borrows the same
    slot.  Results that escape (public [run] functions returning
    records) must copy; the borrowed entry points ({!Foremost.
    arrivals_borrowed}, {!Sgraph.Traverse.bfs_into} call sites) are the
    ones that avoid the copy.

    Slot discipline (who may hold what simultaneously):
    - [arrival]/[pred]: the foremost-sweep family (foremost, flooding,
      reverse-foremost style kernels);
    - [dist]/[queue]: static BFS.

    A kernel may therefore run one temporal sweep and one static BFS
    concurrently on the same domain (as [Reachability] does), but never
    two temporal sweeps whose results it still needs. *)

type t = {
  mutable arrival : int array;
  mutable pred : int array;
  mutable dist : int array;
  mutable queue : int array;
}

val get : n:int -> t
(** The calling domain's workspace, with all arrays of length >= [n].
    Keyed off [Domain.DLS], so [Exec.Pool] worker domains each get
    their own.
    @raise Invalid_argument if [n < 0]. *)
