module Traverse = Sgraph.Traverse

let temporally_reachable net u v =
  Foremost.distance (Foremost.run net u) v <> None

(* The per-source scans below borrow both workspace families at once —
   static BFS into [dist]/[queue], the foremost sweep into [arrival] —
   which the Workspace slot discipline explicitly permits. *)
let static_into net u ws =
  Traverse.bfs_into (Tgraph.graph net) u ~dist:ws.Workspace.dist
    ~queue:ws.Workspace.queue

let source_ok net u =
  let n = Tgraph.n net in
  let ws = Workspace.get ~n in
  static_into net u ws;
  let arrival = Foremost.arrivals_borrowed net u in
  let static = ws.Workspace.dist in
  let rec scan v =
    v >= n
    || ((static.(v) = Traverse.unreachable || arrival.(v) < max_int)
        && scan (v + 1))
  in
  scan 0

let treach net =
  let n = Tgraph.n net in
  let rec scan u = u >= n || (source_ok net u && scan (u + 1)) in
  scan 0

let missing_pairs net =
  let n = Tgraph.n net in
  let ws = Workspace.get ~n in
  let missing = ref [] in
  for u = n - 1 downto 0 do
    static_into net u ws;
    let arrival = Foremost.arrivals_borrowed net u in
    let static = ws.Workspace.dist in
    for v = n - 1 downto 0 do
      if v <> u && static.(v) <> Traverse.unreachable && arrival.(v) = max_int
      then missing := (u, v) :: !missing
    done
  done;
  !missing

let count_pairs net ~temporal =
  let n = Tgraph.n net in
  let ws = Workspace.get ~n in
  let count = ref 0 in
  for u = 0 to n - 1 do
    if temporal then begin
      let arrival = Foremost.arrivals_borrowed net u in
      for v = 0 to n - 1 do
        if v <> u && arrival.(v) < max_int then incr count
      done
    end
    else begin
      static_into net u ws;
      let static = ws.Workspace.dist in
      for v = 0 to n - 1 do
        if v <> u && static.(v) <> Traverse.unreachable then incr count
      done
    end
  done;
  !count

let reachable_pair_count net = count_pairs net ~temporal:true
let static_reachable_pair_count net = count_pairs net ~temporal:false

let reachability_ratio net =
  let static = static_reachable_pair_count net in
  if static = 0 then 1.
  else float_of_int (reachable_pair_count net) /. float_of_int static
