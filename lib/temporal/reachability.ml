module Traverse = Sgraph.Traverse

let temporally_reachable net u v =
  Foremost.distance (Foremost.run net u) v <> None

(* The per-source scans borrow both workspace families at once — static
   BFS into [dist]/[queue], the sweep into [arrival] (scalar) or the
   [lane_*] slots (batched) — which the Workspace slot discipline
   explicitly permits. *)
let static_into net u ws =
  Traverse.bfs_into (Tgraph.graph net) u ~dist:ws.Workspace.dist
    ~queue:ws.Workspace.queue

let source_ok net u =
  let n = Tgraph.n net in
  let ws = Workspace.get ~n in
  static_into net u ws;
  let arrival = Foremost.arrivals_borrowed net u in
  let static = ws.Workspace.dist in
  let rec scan v =
    v >= n
    || ((static.(v) = Traverse.unreachable || arrival.(v) < max_int)
        && scan (v + 1))
  in
  scan 0

let treach_scalar net =
  let n = Tgraph.n net in
  let rec scan u = u >= n || (source_ok net u && scan (u + 1)) in
  scan 0

(* Batched Treach: one sweep covers lane_width sources, and a fully
   saturated batch (every lane reached every vertex — the common case
   on instances that do satisfy Treach) passes with no static BFS at
   all.  Only unsaturated lanes pay a BFS plus a bit-probe scan.
   Sequential batches keep the scalar path's early exit, at batch
   granularity. *)
let batch_ok net t =
  let n = Tgraph.n net in
  Batch.all_saturated t
  ||
  let ws = Workspace.get ~n in
  let rec lane_ok lane =
    lane >= Batch.lanes t
    || begin
         (Batch.saturated t ~lane
         ||
         begin
           static_into net (Batch.source t lane) ws;
           let static = ws.Workspace.dist in
           let bit = 1 lsl lane in
           let rec scan v =
             v >= n
             || ((static.(v) = Traverse.unreachable
                 || Batch.reached_word t v land bit <> 0)
                && scan (v + 1))
           in
           scan 0
         end)
         && lane_ok (lane + 1)
       end
  in
  lane_ok 0

let treach net =
  if Batch.force_scalar () then treach_scalar net
  else begin
    (* [sweep_reach], not [sweep]: Treach never reads arrivals, so the
       batch kernel can skip the n * lanes arrival matrix and keep
       scratch at O(n) words — required on implicit instances. *)
    let n = Tgraph.n net in
    let batches = Batch.batch_count ~n in
    let rec scan b =
      b >= batches
      || (batch_ok net (Batch.sweep_reach net ~sources:(Batch.batch_sources ~n b))
         && scan (b + 1))
    in
    scan 0
  end

let missing_pairs net =
  let n = Tgraph.n net in
  if Batch.force_scalar () then begin
    let ws = Workspace.get ~n in
    let missing = ref [] in
    for u = n - 1 downto 0 do
      static_into net u ws;
      let arrival = Foremost.arrivals_borrowed net u in
      let static = ws.Workspace.dist in
      for v = n - 1 downto 0 do
        if v <> u && static.(v) <> Traverse.unreachable && arrival.(v) = max_int
        then missing := (u, v) :: !missing
      done
    done;
    !missing
  end
  else begin
    (* Forward batch/lane/target order with a final reverse keeps the
       scalar path's ascending (u, v) output order.  Arrival-free
       sweeps: only reached bits are probed. *)
    let missing = ref [] in
    for b = 0 to Batch.batch_count ~n - 1 do
      let t = Batch.sweep_reach net ~sources:(Batch.batch_sources ~n b) in
        if not (Batch.all_saturated t) then begin
          let ws = Workspace.get ~n in
          for lane = 0 to Batch.lanes t - 1 do
            if not (Batch.saturated t ~lane) then begin
              let u = Batch.source t lane in
              static_into net u ws;
              let static = ws.Workspace.dist in
              let bit = 1 lsl lane in
              for v = 0 to n - 1 do
                if
                  v <> u
                  && static.(v) <> Traverse.unreachable
                  && Batch.reached_word t v land bit = 0
                then missing := (u, v) :: !missing
              done
            end
          done
        end
    done;
    List.rev !missing
  end

let count_pairs net ~temporal =
  let n = Tgraph.n net in
  if temporal then begin
    if Batch.force_scalar () then begin
      let count = ref 0 in
      for u = 0 to n - 1 do
        let arrival = Foremost.arrivals_borrowed net u in
        for v = 0 to n - 1 do
          if v <> u && arrival.(v) < max_int then incr count
        done
      done;
      !count
    end
    else begin
      (* The sweep maintains per-lane reached counts (source included),
         so a batch costs O(lanes) to read out; arrival-free sweeps
         fanned over the pool. *)
      let per_batch =
        Exec.Pool.map_range (Exec.Pool.global ()) ~lo:0
          ~hi:(Batch.batch_count ~n) (fun b ->
            let t = Batch.sweep_reach net ~sources:(Batch.batch_sources ~n b) in
            let c = ref 0 in
            for lane = 0 to Batch.lanes t - 1 do
              c := !c + Batch.reached_count t ~lane - 1
            done;
            !c)
      in
      Array.fold_left ( + ) 0 per_batch
    end
  end
  else begin
    let ws = Workspace.get ~n in
    let count = ref 0 in
    for u = 0 to n - 1 do
      static_into net u ws;
      let static = ws.Workspace.dist in
      for v = 0 to n - 1 do
        if v <> u && static.(v) <> Traverse.unreachable then incr count
      done
    done;
    !count
  end

let reachable_pair_count net = count_pairs net ~temporal:true
let static_reachable_pair_count net = count_pairs net ~temporal:false

let reachability_ratio net =
  let static = static_reachable_pair_count net in
  if static = 0 then 1.
  else float_of_int (reachable_pair_count net) /. float_of_int static
