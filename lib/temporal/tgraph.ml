module Graph = Sgraph.Graph

(* Two label layouts share one temporal-network type.  [Sets] is the
   general per-edge label-set assignment; [Single] is the flat fast
   path for one-label-per-edge models (UNI-CASE, the normalized U-RTN
   clique), which stores the label as a bare int — no n² one-element
   arrays.  Every kernel-facing query ([edge_next_label_after], …)
   dispatches once and works on unboxed ints either way. *)
type labelling =
  | Sets of Label.t array
  | Single of int array

type t = {
  graph : Graph.t;
  lifetime : int;
  labelling : labelling;
  (* The time-edge stream, counting-sorted by label (stable: ties keep
     emission order — edge id ascending, u->v before v->u). *)
  te_src : int array;
  te_dst : int array;
  te_label : int array;
  te_edge : int array;
}

(* Counting sort by label: one pass to histogram labels 1..lifetime,
   a prefix sum for bucket offsets, then a second emission pass writing
   each stream entry directly into its final slot.  O(M + a) and
   deterministic, versus the seed's O(M log M) closure-comparator sort
   with heapsort-arbitrary tie order and four permutation copies.
   [iter_labels e f] must present each edge's labels in ascending order
   (Label.t is sorted; Single is one label) so stability gives the
   documented tie order. *)
let build_stream g ~lifetime ~total ~iter_labels =
  let directions = if Graph.is_directed g then 1 else 2 in
  let m = Graph.m g in
  let counts = Array.make (lifetime + 1) 0 in
  for e = 0 to m - 1 do
    iter_labels e (fun l -> counts.(l) <- counts.(l) + directions)
  done;
  let sum = ref 0 in
  for l = 1 to lifetime do
    let c = counts.(l) in
    counts.(l) <- !sum;
    sum := !sum + c
  done;
  assert (!sum = total);
  let te_src = Array.make total 0 in
  let te_dst = Array.make total 0 in
  let te_label = Array.make total 0 in
  let te_edge = Array.make total 0 in
  Graph.iter_edges g (fun e u v ->
      iter_labels e (fun l ->
          let pos = counts.(l) in
          counts.(l) <- pos + directions;
          te_src.(pos) <- u;
          te_dst.(pos) <- v;
          te_label.(pos) <- l;
          te_edge.(pos) <- e;
          if directions = 2 then begin
            te_src.(pos + 1) <- v;
            te_dst.(pos + 1) <- u;
            te_label.(pos + 1) <- l;
            te_edge.(pos + 1) <- e
          end));
  (te_src, te_dst, te_label, te_edge)

let create g ~lifetime labels =
  if lifetime <= 0 then invalid_arg "Tgraph.create: lifetime must be positive";
  if Array.length labels <> Graph.m g then
    invalid_arg "Tgraph.create: one label set per edge required";
  Array.iter
    (fun ls ->
      if not (Label.within_lifetime ls lifetime) then
        invalid_arg "Tgraph.create: label beyond the lifetime")
    labels;
  let directions = if Graph.is_directed g then 1 else 2 in
  let total = ref 0 in
  Array.iter (fun ls -> total := !total + (directions * Label.size ls)) labels;
  let te_src, te_dst, te_label, te_edge =
    build_stream g ~lifetime ~total:!total ~iter_labels:(fun e f ->
        Array.iter f (labels.(e) :> int array))
  in
  { graph = g; lifetime; labelling = Sets labels; te_src; te_dst; te_label; te_edge }

let of_flat_arcs g ~lifetime label =
  if lifetime <= 0 then
    invalid_arg "Tgraph.of_flat_arcs: lifetime must be positive";
  if Array.length label <> Graph.m g then
    invalid_arg "Tgraph.of_flat_arcs: one label per edge required";
  Array.iter
    (fun l ->
      if l < 1 then invalid_arg "Tgraph.of_flat_arcs: labels must be positive";
      if l > lifetime then
        invalid_arg "Tgraph.of_flat_arcs: label beyond the lifetime")
    label;
  let directions = if Graph.is_directed g then 1 else 2 in
  let total = directions * Graph.m g in
  let te_src, te_dst, te_label, te_edge =
    build_stream g ~lifetime ~total ~iter_labels:(fun e f -> f label.(e))
  in
  { graph = g; lifetime; labelling = Single label; te_src; te_dst; te_label; te_edge }

let graph t = t.graph
let lifetime t = t.lifetime
let n t = Graph.n t.graph

let labels t e =
  match t.labelling with
  | Sets a -> a.(e)
  | Single l -> Label.singleton l.(e)

let label_count t =
  match t.labelling with
  | Sets a -> Array.fold_left (fun acc ls -> acc + Label.size ls) 0 a
  | Single l -> Array.length l

let time_edge_count t = Array.length t.te_label

let iter_time_edges t f =
  for i = 0 to time_edge_count t - 1 do
    f ~src:t.te_src.(i) ~dst:t.te_dst.(i) ~label:t.te_label.(i)
      ~edge:t.te_edge.(i)
  done

let stream t = (t.te_src, t.te_dst, t.te_label, t.te_edge)

let time_edge t i = (t.te_src.(i), t.te_dst.(i), t.te_label.(i))

(* ---------------------------------------------------------------- *)
(* Per-edge label queries: the scalar kernel interface.  Each returns
   unboxed ints ([max_int] = none) and never allocates, whichever
   labelling backs the network. *)

let edge_label_size t e =
  match t.labelling with Sets a -> Label.size a.(e) | Single _ -> 1

let edge_has_label t e x =
  match t.labelling with
  | Sets a -> Label.mem a.(e) x
  | Single l -> l.(e) = x

let edge_next_label_after t e x =
  match t.labelling with
  | Sets a -> Label.next_after a.(e) x
  | Single l -> if l.(e) > x then l.(e) else max_int

let edge_next_label_in t e ~lo ~hi =
  match t.labelling with
  | Sets a -> Label.next_in a.(e) ~lo ~hi
  | Single l -> if l.(e) > lo && l.(e) <= hi then l.(e) else max_int

let iter_edge_labels t e f =
  match t.labelling with
  | Sets a -> Array.iter f (a.(e) :> int array)
  | Single l -> f l.(e)

(* ---------------------------------------------------------------- *)
(* Crossings.  The CSR adjacency of the underlying graph *is* the
   crossing table — arcs carry edge ids, labels are looked up by id —
   so the iterators read two flat int arrays and allocate nothing. *)

let iter_crossings_out t v f = Graph.iter_out t.graph v f
let iter_crossings_in t v f = Graph.iter_in t.graph v f

let crossings_out t v =
  Array.map (fun (e, target) -> (e, target, labels t e)) (Graph.out_arcs t.graph v)

let crossings_in t v =
  Array.map (fun (e, source) -> (e, source, labels t e)) (Graph.in_arcs t.graph v)

let can_cross_at t ~src ~dst time =
  let found = ref false in
  Graph.iter_out t.graph src (fun e target ->
      if (not !found) && target = dst && edge_has_label t e time then
        found := true);
  !found

let pp ppf t =
  Format.fprintf ppf "temporal network on %a, lifetime=%d, labels=%d"
    Graph.pp t.graph t.lifetime (label_count t)
