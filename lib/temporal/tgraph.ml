module Graph = Sgraph.Graph

(* Three label layouts share one temporal-network type.  [Sets] is the
   general per-edge label-set assignment; [Single] is the flat fast
   path for one-label-per-edge models (UNI-CASE, the normalized U-RTN
   clique), which stores the label as a bare int — no n² one-element
   arrays.  [Derived] stores nothing at all: labels are recomputed per
   query from [(seed, edge, roll)] by [Implicit.Labels], which is what
   lets instances scale past the O(n²·r) materialization wall.  Every
   kernel-facing query ([edge_next_label_after], …) dispatches once and
   works on unboxed ints whichever layout backs the network. *)
type labelling =
  | Sets of Label.t array
  | Single of int array
  | Derived of Implicit.Labels.t

(* The time-edge stream, counting-sorted by label (stable: ties keep
   emission order — edge id ascending, u->v before v->u).  [Full] holds
   the whole stream in four parallel arrays; [Lazy] holds a
   label-bounded prefix that grows on demand and is always a byte
   prefix of what [Full] would hold, so kernels written against
   {!stream_prefix}/{!stream_extend} behave identically on both. *)
type stream_rep =
  | Full of {
      te_src : int array;
      te_dst : int array;
      te_label : int array;
      te_edge : int array;
    }
  | Lazy of Implicit.Stream.t

type t = {
  graph : Graph.t;
  lifetime : int;
  labelling : labelling;
  stream_rep : stream_rep;
}

(* Counting sort by label: one pass to histogram labels 1..lifetime,
   a prefix sum for bucket offsets, then a second emission pass writing
   each stream entry directly into its final slot.  O(M + a) and
   deterministic, versus the seed's O(M log M) closure-comparator sort
   with heapsort-arbitrary tie order and four permutation copies.
   [iter_labels e f] must present each edge's labels in ascending order
   (Label.t is sorted; Single is one label) so stability gives the
   documented tie order. *)
let build_stream g ~lifetime ~total ~iter_labels =
  let directions = if Graph.is_directed g then 1 else 2 in
  let m = Graph.m g in
  let counts = Array.make (lifetime + 1) 0 in
  for e = 0 to m - 1 do
    iter_labels e (fun l -> counts.(l) <- counts.(l) + directions)
  done;
  let sum = ref 0 in
  for l = 1 to lifetime do
    let c = counts.(l) in
    counts.(l) <- !sum;
    sum := !sum + c
  done;
  assert (!sum = total);
  let te_src = Array.make total 0 in
  let te_dst = Array.make total 0 in
  let te_label = Array.make total 0 in
  let te_edge = Array.make total 0 in
  Graph.iter_edges g (fun e u v ->
      iter_labels e (fun l ->
          let pos = counts.(l) in
          counts.(l) <- pos + directions;
          te_src.(pos) <- u;
          te_dst.(pos) <- v;
          te_label.(pos) <- l;
          te_edge.(pos) <- e;
          if directions = 2 then begin
            te_src.(pos + 1) <- v;
            te_dst.(pos + 1) <- u;
            te_label.(pos + 1) <- l;
            te_edge.(pos + 1) <- e
          end));
  Full { te_src; te_dst; te_label; te_edge }

let create g ~lifetime labels =
  if lifetime <= 0 then invalid_arg "Tgraph.create: lifetime must be positive";
  if Array.length labels <> Graph.m g then
    invalid_arg "Tgraph.create: one label set per edge required";
  Array.iter
    (fun ls ->
      if not (Label.within_lifetime ls lifetime) then
        invalid_arg "Tgraph.create: label beyond the lifetime")
    labels;
  let directions = if Graph.is_directed g then 1 else 2 in
  let total = ref 0 in
  Array.iter (fun ls -> total := !total + (directions * Label.size ls)) labels;
  let stream_rep =
    build_stream g ~lifetime ~total:!total ~iter_labels:(fun e f ->
        Array.iter f (labels.(e) :> int array))
  in
  { graph = g; lifetime; labelling = Sets labels; stream_rep }

let of_flat_arcs g ~lifetime label =
  if lifetime <= 0 then
    invalid_arg "Tgraph.of_flat_arcs: lifetime must be positive";
  if Array.length label <> Graph.m g then
    invalid_arg "Tgraph.of_flat_arcs: one label per edge required";
  Array.iter
    (fun l ->
      if l < 1 then invalid_arg "Tgraph.of_flat_arcs: labels must be positive";
      if l > lifetime then
        invalid_arg "Tgraph.of_flat_arcs: label beyond the lifetime")
    label;
  let directions = if Graph.is_directed g then 1 else 2 in
  let total = directions * Graph.m g in
  let stream_rep =
    build_stream g ~lifetime ~total ~iter_labels:(fun e f -> f label.(e))
  in
  { graph = g; lifetime; labelling = Single label; stream_rep }

let of_derived g ~a ~seed ~r =
  let labels = Implicit.Labels.make ~seed ~a ~r in
  {
    graph = g;
    lifetime = a;
    labelling = Derived labels;
    stream_rep = Lazy (Implicit.Stream.create g ~labels ~lifetime:a);
  }

let is_implicit t =
  match t.stream_rep with Full _ -> false | Lazy _ -> true

(* Re-rolling every site of a derived instance yields, by the
   site-independence of [Implicit.Labels.roll], exactly the label
   arrays the dense constructors would have been given — so the stream
   built here is byte-identical to any prefix the [Lazy] form ever
   publishes (same stable sort over the same emission order).  This is
   the dense twin used by the equivalence oracle and by the [dense]
   backend of the scale experiment. *)
let materialize t =
  match t.labelling with
  | Sets _ | Single _ -> t
  | Derived d ->
    let g = t.graph in
    let m = Graph.m g in
    let r = Implicit.Labels.rolls_per_edge d in
    let net =
      if r = 1 then
        of_flat_arcs g ~lifetime:t.lifetime
          (Array.init m (fun e -> Implicit.Labels.roll d ~edge:e ~k:0))
      else begin
        let scratch = Array.make r 0 in
        create g ~lifetime:t.lifetime
          (Array.init m (fun e ->
               let cnt = Implicit.Labels.fill_sorted d ~edge:e scratch in
               Label.of_array (Array.sub scratch 0 cnt)))
      end
    in
    Implicit.Labels.note_bulk_rolls (m * r);
    net

let graph t = t.graph
let lifetime t = t.lifetime
let n t = Graph.n t.graph

let labels t e =
  match t.labelling with
  | Sets a -> a.(e)
  | Single l -> Label.singleton l.(e)
  | Derived d ->
    let acc = ref [] in
    Implicit.Labels.iter d ~edge:e (fun l -> acc := l :: !acc);
    Label.of_list (List.rev !acc)

let label_count t =
  match t.labelling with
  | Sets a -> Array.fold_left (fun acc ls -> acc + Label.size ls) 0 a
  | Single l -> Array.length l
  | Derived d ->
    let m = Graph.m t.graph in
    if Implicit.Labels.rolls_per_edge d = 1 then m
    else begin
      (* Honest O(m·r) count of the distinct supports. *)
      let scratch = Array.make (Implicit.Labels.rolls_per_edge d) 0 in
      let total = ref 0 in
      for e = 0 to m - 1 do
        total := !total + Implicit.Labels.fill_sorted d ~edge:e scratch
      done;
      Implicit.Labels.note_bulk_rolls (m * Implicit.Labels.rolls_per_edge d);
      !total
    end

let materialized_error fn =
  invalid_arg
    (Printf.sprintf
       "Tgraph.%s: derived-label stream is lazily materialized; scan \
        stream_prefix/stream_extend instead, or Tgraph.materialize the \
        instance first"
       fn)

let time_edge_count t =
  match t.stream_rep with
  | Full s -> Array.length s.te_label
  | Lazy _ -> materialized_error "time_edge_count"

let iter_time_edges t f =
  match t.stream_rep with
  | Full s ->
    for i = 0 to Array.length s.te_label - 1 do
      f ~src:s.te_src.(i) ~dst:s.te_dst.(i) ~label:s.te_label.(i)
        ~edge:s.te_edge.(i)
    done
  | Lazy _ -> materialized_error "iter_time_edges"

let stream t =
  match t.stream_rep with
  | Full s -> (s.te_src, s.te_dst, s.te_label, s.te_edge)
  | Lazy _ -> materialized_error "stream"

(* The prefix interface every sweep kernel scans.  On [Full] networks
   the prefix is the whole stream and [stream_extend] is always false;
   on [Lazy] ones the arrays grow (by replacement — grab them again
   after an extend) while remaining byte prefixes of the full stream,
   so resuming a scan at a saved index is always valid. *)

let stream_prefix t =
  match t.stream_rep with
  | Full s -> (s.te_src, s.te_dst, s.te_label, s.te_edge)
  | Lazy st ->
    let v = Implicit.Stream.view st in
    (v.te_src, v.te_dst, v.te_label, v.te_edge)

let stream_prefix_bound t =
  match t.stream_rep with
  | Full _ -> t.lifetime
  | Lazy st -> (Implicit.Stream.view st).bound

let stream_complete t =
  match t.stream_rep with
  | Full _ -> true
  | Lazy st -> (Implicit.Stream.view st).complete

let stream_extend t ~past =
  match t.stream_rep with
  | Full _ -> false
  | Lazy st -> Implicit.Stream.extend st ~past

let time_edge t i =
  match t.stream_rep with
  | Full s -> (s.te_src.(i), s.te_dst.(i), s.te_label.(i))
  | Lazy st ->
    (* Valid for any index a kernel has already scanned: the published
       prefix only ever grows. *)
    let v = Implicit.Stream.view st in
    (v.te_src.(i), v.te_dst.(i), v.te_label.(i))

(* ---------------------------------------------------------------- *)
(* Per-edge label queries: the scalar kernel interface.  Each returns
   unboxed ints ([max_int] = none), whichever labelling backs the
   network; [Derived] recomputes the rolls in O(r) instead of reading
   an array. *)

let edge_label_size t e =
  match t.labelling with
  | Sets a -> Label.size a.(e)
  | Single _ -> 1
  | Derived d -> Implicit.Labels.size d ~edge:e

let edge_has_label t e x =
  match t.labelling with
  | Sets a -> Label.mem a.(e) x
  | Single l -> l.(e) = x
  | Derived d -> Implicit.Labels.has d ~edge:e x

let edge_next_label_after t e x =
  match t.labelling with
  | Sets a -> Label.next_after a.(e) x
  | Single l -> if l.(e) > x then l.(e) else max_int
  | Derived d -> Implicit.Labels.next_after d ~edge:e x

let edge_next_label_in t e ~lo ~hi =
  match t.labelling with
  | Sets a -> Label.next_in a.(e) ~lo ~hi
  | Single l -> if l.(e) > lo && l.(e) <= hi then l.(e) else max_int
  | Derived d -> Implicit.Labels.next_in d ~edge:e ~lo ~hi

let iter_edge_labels t e f =
  match t.labelling with
  | Sets a -> Array.iter f (a.(e) :> int array)
  | Single l -> f l.(e)
  | Derived d -> Implicit.Labels.iter d ~edge:e f

(* ---------------------------------------------------------------- *)
(* Crossings.  The adjacency of the underlying graph *is* the crossing
   table — arcs carry edge ids, labels are looked up by id — so the
   iterators read two flat int arrays (or pure shape arithmetic) and
   allocate nothing. *)

let iter_crossings_out t v f = Graph.iter_out t.graph v f
let iter_crossings_in t v f = Graph.iter_in t.graph v f

let crossings_out t v =
  Array.map (fun (e, target) -> (e, target, labels t e)) (Graph.out_arcs t.graph v)

let crossings_in t v =
  Array.map (fun (e, source) -> (e, source, labels t e)) (Graph.in_arcs t.graph v)

let can_cross_at t ~src ~dst time =
  let found = ref false in
  Graph.iter_out t.graph src (fun e target ->
      if (not !found) && target = dst && edge_has_label t e time then
        found := true);
  !found

let pp ppf t =
  match t.labelling with
  | Derived d ->
    Format.fprintf ppf
      "temporal network on %a, lifetime=%d, derived labels (a=%d, r=%d)"
      Graph.pp t.graph t.lifetime (Implicit.Labels.alpha d)
      (Implicit.Labels.rolls_per_edge d)
  | Sets _ | Single _ ->
    Format.fprintf ppf "temporal network on %a, lifetime=%d, labels=%d"
      Graph.pp t.graph t.lifetime (label_count t)
