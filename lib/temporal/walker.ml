module Rng = Prng.Rng

type trajectory = {
  positions : int array;
  first_visit : int array;
  visited : int;
  cover_time : int option;
  moves : int;
}

let walk ?(laziness = 0.) rng net ~source =
  if not (laziness >= 0. && laziness <= 1.) then
    invalid_arg "Walker.walk: laziness not in [0,1]";
  let n = Tgraph.n net in
  if source < 0 || source >= n then invalid_arg "Walker.walk: source out of range";
  let a = Tgraph.lifetime net in
  let positions = Array.make (a + 1) source in
  let first_visit = Array.make n max_int in
  first_visit.(source) <- 0;
  let visited = ref 1 in
  let cover_time = ref (if n = 1 then Some 0 else None) in
  let moves = ref 0 in
  let current = ref source in
  for t = 1 to a do
    (* Arcs out of the current vertex available exactly now.  Prepending
       in arc order reproduces the historical candidate order exactly —
       the RNG draw below indexes into it, so order is part of the
       determinism contract. *)
    let options = ref [] in
    Tgraph.iter_crossings_out net !current (fun e target ->
        if Tgraph.edge_has_label net e t then options := target :: !options);
    (match !options with
    | [] -> ()
    | candidates ->
      if not (Rng.bernoulli rng laziness) then begin
        let k = List.length candidates in
        let target = List.nth candidates (Rng.int rng k) in
        incr moves;
        current := target;
        if first_visit.(target) = max_int then begin
          first_visit.(target) <- t;
          incr visited;
          if !visited = n && !cover_time = None then cover_time := Some t
        end
      end);
    positions.(t) <- !current
  done;
  {
    positions;
    first_visit;
    visited = !visited;
    cover_time = !cover_time;
    moves = !moves;
  }

let pack ?laziness rng net ~sources =
  let n = Tgraph.n net in
  let earliest = Array.make n max_int in
  List.iter
    (fun source ->
      let trajectory = walk ?laziness rng net ~source in
      Array.iteri
        (fun v t -> if t < earliest.(v) then earliest.(v) <- t)
        trajectory.first_visit)
    sources;
  let visited = ref 0 and cover = ref 0 in
  Array.iter
    (fun t ->
      if t < max_int then begin
        incr visited;
        if t > !cover then cover := t
      end)
    earliest;
  (!visited, if !visited = n then Some !cover else None)

let mean_coverage ?laziness rng net ~trials =
  let n = Tgraph.n net in
  let coverage = ref 0. and covered = ref 0 in
  for _ = 1 to trials do
    let source = Rng.int rng n in
    let trajectory = walk ?laziness rng net ~source in
    coverage := !coverage +. (float_of_int trajectory.visited /. float_of_int n);
    if trajectory.cover_time <> None then incr covered
  done;
  ( !coverage /. float_of_int trials,
    float_of_int !covered /. float_of_int trials )
