(** Foremost journeys (paper, Definition 3): earliest-arrival computation.

    One pass over the time-edge stream in non-decreasing label order:
    a time edge [(u, v, l)] improves [v] whenever [u] is already reached
    strictly before [l] (labels along a journey must strictly increase).
    A single pass is exact precisely because any journey's labels
    increase, so its steps appear in stream order.  Cost: O(M) per source
    over the flat stream arrays built once by {!Tgraph.create}'s counting
    sort. *)

type result
(** Earliest arrivals out of one source, with predecessor links. *)

val run : ?start_time:int -> Tgraph.t -> int -> result
(** [run ?start_time net s] computes earliest arrivals for journeys
    departing at time [>= start_time] (default [1]).
    @raise Invalid_argument on a bad source or [start_time < 1]. *)

val arrivals_borrowed : ?start_time:int -> Tgraph.t -> int -> int array
(** Same sweep into the calling domain's {!Workspace} arrival slot: no
    allocation, no predecessor links.  Only entries [0 .. n-1] are
    meaningful (the array may be longer), and they stay valid only until
    the next temporal sweep on this domain — copy what must escape.
    The all-pairs and estimator loops use this to run n sweeps with
    zero per-source allocation.
    @raise Invalid_argument on a bad source or [start_time < 1]. *)

val source : result -> int
val start_time : result -> int

val distance : result -> int -> int option
(** Temporal distance δ(s, v): [Some 0] for the source itself, [Some l]
    for the earliest arrival label otherwise, [None] if unreachable. *)

val arrival_array : result -> int array
(** Raw arrivals; [max_int] marks unreachable, and the source holds
    [start_time - 1] (its "already there" time). *)

val reachable_count : result -> int
(** Vertices with a journey from the source, the source included. *)

val max_distance : result -> int option
(** Temporal eccentricity of the source: max δ(s, v) over all [v];
    [None] if some vertex is unreachable. *)

val journey_to : Tgraph.t -> result -> int -> Journey.t option
(** Reconstruct a foremost journey to the vertex by predecessor links;
    [Some []] for the source itself, [None] if unreachable.  The result
    always satisfies {!Journey.is_journey} and arrives at δ(s, v). *)

val brute_force_distance : Tgraph.t -> ?start_time:int -> int -> int -> int option
(** Reference implementation: exhaustive search over all journeys (label-
    respecting DFS).  Exponential in principle, fine on the small
    instances the tests use; the property tests pin {!run} against it. *)
