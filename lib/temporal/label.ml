type t = int array

let empty = [||]

let normalise arr =
  Array.iter
    (fun l ->
      if l < 1 then invalid_arg "Label: labels must be positive")
    arr;
  Array.sort compare arr;
  (* Deduplicate in place, then trim. *)
  let n = Array.length arr in
  if n = 0 then [||]
  else begin
    let w = ref 1 in
    for r = 1 to n - 1 do
      if arr.(r) <> arr.(!w - 1) then begin
        arr.(!w) <- arr.(r);
        incr w
      end
    done;
    if !w = n then arr else Array.sub arr 0 !w
  end

let of_array arr = normalise (Array.copy arr)
let of_list labels = normalise (Array.of_list labels)
let singleton l = of_list [ l ]

let range lo hi =
  if lo < 1 then invalid_arg "Label.range: lo must be >= 1";
  if hi < lo then empty else Array.init (hi - lo + 1) (fun i -> lo + i)

let to_list = Array.to_list
let size = Array.length
let is_empty t = Array.length t = 0
let max_label t = if is_empty t then 0 else t.(Array.length t - 1)
let min_label t = if is_empty t then max_int else t.(0)

(* Index of the first element > x, or length if none. *)
let upper_bound t x =
  let lo = ref 0 and hi = ref (Array.length t) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.(mid) <= x then lo := mid + 1 else hi := mid
  done;
  !lo

let mem t x =
  let i = upper_bound t (x - 1) in
  i < Array.length t && t.(i) = x

let first_after t x =
  let i = upper_bound t x in
  if i < Array.length t then Some t.(i) else None

let next_after t x =
  let i = upper_bound t x in
  if i < Array.length t then t.(i) else max_int

let next_in t ~lo ~hi =
  let i = upper_bound t lo in
  if i < Array.length t && t.(i) <= hi then t.(i) else max_int

let count_in t ~lo ~hi =
  if hi <= lo then 0 else upper_bound t hi - upper_bound t lo

let any_in t ~lo ~hi =
  let i = upper_bound t lo in
  if i < Array.length t && t.(i) <= hi then Some t.(i) else None

let union a b = normalise (Array.append a b)
let within_lifetime t a = max_label t <= a
let pp ppf t = Fmt.pf ppf "{%a}" Fmt.(array ~sep:(any ",") int) t
