type result = {
  source : int;
  start_time : int;
  arrival : int array;
  pred : int array;  (* index into the time-edge stream, or -1 *)
}

(* The flat kernel: one pass over the raw stream arrays.  [arrival] and
   [pred] are caller-provided (length >= n); only slots 0..n-1 are
   touched.  Unsafe accesses are fine — stream endpoints were validated
   at Tgraph construction and i ranges over the stream length.

   Early exit: the stream is label-sorted and arrivals only ever
   decrease, so once every vertex is reached and the current label has
   passed the maximum arrival, no remaining entry can satisfy
   [label < arrival.(dst)] — the sweep is done.  The bound is computed
   once when the last vertex is reached (conservative: later
   improvements may lower the true maximum, which only delays the
   exit, never corrupts it).  On dense fast-spreading instances such
   as the normalized U-RTN clique this skips almost the entire
   stream.

   The pass scans {!Tgraph.stream_prefix}, not {!Tgraph.stream}: on
   dense networks the prefix is the whole stream and the outer loop
   runs once; on implicit ones an exhausted prefix is extended and the
   scan resumes at the same index (prefixes are byte-stable), so the
   entries visited — and hence every probe — are identical to what the
   dense stream would have produced.  An extension is requested only
   while it can still matter: some vertex unreached, or the arrival
   bound strictly beyond what the prefix already covers. *)
(* Kernel probes, updated once per sweep after the hot loop (never
   inside it) and only while Obs.Control is on — the disabled path
   costs one atomic load per sweep. *)
let sweeps_c = Obs.Metrics.counter "kernel.sweeps"
let scanned_c = Obs.Metrics.counter "kernel.edges_scanned"
let early_c = Obs.Metrics.counter "kernel.early_exits"

let sweep net ~start_time ~s ~arrival ~pred =
  let n = Tgraph.n net in
  for v = 0 to n - 1 do
    Array.unsafe_set arrival v max_int;
    Array.unsafe_set pred v (-1)
  done;
  arrival.(s) <- start_time - 1;
  let unreached = ref (n - 1) in
  let bound = ref max_int in
  let i = ref 0 in
  let finished = ref false in
  let exhausted = ref false in
  (* "scanned the complete stream to its end" — for probe parity *)
  while not !finished do
    let te_src, te_dst, te_label, _ = Tgraph.stream_prefix net in
    let prefix_bound = Tgraph.stream_prefix_bound net in
    let total = Array.length te_label in
    while
      !i < total && (!unreached > 0 || Array.unsafe_get te_label !i < !bound)
    do
      let label = Array.unsafe_get te_label !i in
      let src = Array.unsafe_get te_src !i in
      if Array.unsafe_get arrival src < label then begin
        let dst = Array.unsafe_get te_dst !i in
        if label < Array.unsafe_get arrival dst then begin
          if Array.unsafe_get arrival dst = max_int then begin
            decr unreached;
            if !unreached = 0 then begin
              (* Last vertex just reached: arrivals are now all finite. *)
              let worst = ref 0 in
              for v = 0 to n - 1 do
                if Array.unsafe_get arrival v > !worst && v <> dst then
                  worst := Array.unsafe_get arrival v
              done;
              bound := Stdlib.max !worst label
            end
          end;
          Array.unsafe_set arrival dst label;
          Array.unsafe_set pred dst !i
        end
      end;
      incr i
    done;
    if !i < total then
      (* Early exit inside the prefix; later labels are larger still. *)
      finished := true
    else begin
      (* Entries beyond the prefix carry labels > prefix_bound, so they
         only matter while some vertex is unreached or the arrival
         bound still admits label prefix_bound + 1. *)
      let need_more = !unreached > 0 || !bound > prefix_bound + 1 in
      if need_more then begin
        if not (Tgraph.stream_extend net ~past:prefix_bound) then begin
          (* Extension refused: the stream is complete and we scanned
             it to its end. *)
          finished := true;
          exhausted := true
        end
      end
      else begin
        finished := true;
        (* A dense prefix is the whole stream, so ending exactly at its
           end is exhaustion (the historical [i = total] rule).  An
           implicit sweep that stops at a prefix edge counts as early:
           racing builders may have published a deeper view than this
           sweep consumed, so any rule reading the view here would be
           jobs-dependent — and the probe must stay byte-identical at
           any --jobs. *)
        exhausted := not (Tgraph.is_implicit net)
      end
    end
  done;
  if Obs.Control.enabled () then begin
    Obs.Metrics.incr sweeps_c;
    Obs.Metrics.add scanned_c !i;
    if not !exhausted then Obs.Metrics.incr early_c
  end

let check_args ~start_time net s =
  if start_time < 1 then invalid_arg "Foremost.run: start_time must be >= 1";
  let n = Tgraph.n net in
  if s < 0 || s >= n then invalid_arg "Foremost.run: source out of range"

let run ?(start_time = 1) net s =
  check_args ~start_time net s;
  let n = Tgraph.n net in
  let arrival = Array.make n max_int in
  let pred = Array.make n (-1) in
  sweep net ~start_time ~s ~arrival ~pred;
  { source = s; start_time; arrival; pred }

let arrivals_borrowed ?(start_time = 1) net s =
  check_args ~start_time net s;
  let ws = Workspace.get ~n:(Tgraph.n net) in
  sweep net ~start_time ~s ~arrival:ws.arrival ~pred:ws.pred;
  ws.arrival

let source r = r.source
let start_time r = r.start_time

let distance r v =
  if v = r.source then Some 0
  else if r.arrival.(v) = max_int then None
  else Some r.arrival.(v)

let arrival_array r = Array.copy r.arrival

let reachable_count r =
  Array.fold_left (fun acc a -> if a < max_int then acc + 1 else acc) 0 r.arrival

let max_distance r =
  let worst = ref 0 and complete = ref true in
  Array.iteri
    (fun v a ->
      if v <> r.source then
        if a = max_int then complete := false
        else if a > !worst then worst := a)
    r.arrival;
  if !complete then Some !worst else None

let journey_to net r v =
  if v = r.source then Some []
  else if r.arrival.(v) = max_int then None
  else begin
    let rec walk v acc =
      if v = r.source then acc
      else
        let src, dst, label = Tgraph.time_edge net r.pred.(v) in
        walk src ({ Journey.src; dst; label } :: acc)
    in
    Some (walk v [])
  end

let brute_force_distance net ?(start_time = 1) s t =
  if s = t then Some 0
  else begin
    let best = ref max_int in
    (* DFS over label-respecting walks, pruned by the best arrival so far;
       exponential in the worst case — a reference oracle, not a tool. *)
    let rec explore v time =
      Tgraph.iter_crossings_out net v (fun e target ->
          Tgraph.iter_edge_labels net e (fun label ->
              if label > time && label < !best then
                if target = t then best := label else explore target label))
    in
    explore s (start_time - 1);
    if !best = max_int then None else Some !best
  end
