type result = {
  source : int;
  delta : int;
  start_time : int;
  arrivals : int array array;  (* per vertex: sorted distinct arrivals *)
  preds : (int * int) array array;
      (* per vertex, parallel to arrivals: (predecessor vertex, the
         predecessor's arrival used), or (-1, -1) for a fresh launch
         from the source *)
}

(* Growable sorted-append buffers, one per vertex, with parallel
   predecessor records. *)
module Buffer_ = struct
  type t = {
    mutable data : int array;
    mutable pred : (int * int) array;
    mutable size : int;
  }

  let create () = { data = Array.make 4 0; pred = Array.make 4 (-1, -1); size = 0 }

  let push b x pred =
    if b.size = Array.length b.data then begin
      let grown = Array.make (2 * b.size) 0 in
      Array.blit b.data 0 grown 0 b.size;
      b.data <- grown;
      let grown_pred = Array.make (2 * b.size) (-1, -1) in
      Array.blit b.pred 0 grown_pred 0 b.size;
      b.pred <- grown_pred
    end;
    b.data.(b.size) <- x;
    b.pred.(b.size) <- pred;
    b.size <- b.size + 1

  let last b = if b.size = 0 then min_int else b.data.(b.size - 1)

  (* Smallest element in [lo, hi], if any.  Sorted ascending. *)
  let find_in b ~lo ~hi =
    let l = ref 0 and r = ref b.size in
    while !l < !r do
      let mid = (!l + !r) / 2 in
      if b.data.(mid) < lo then l := mid + 1 else r := mid
    done;
    if !l < b.size && b.data.(!l) <= hi then Some b.data.(!l) else None

  let to_array b = Array.sub b.data 0 b.size
  let preds b = Array.sub b.pred 0 b.size
end

let run ?(start_time = 1) ~delta net s =
  if delta < 1 then invalid_arg "Restless.run: delta must be >= 1";
  if start_time < 1 then invalid_arg "Restless.run: start_time must be >= 1";
  let n = Tgraph.n net in
  if s < 0 || s >= n then invalid_arg "Restless.run: source out of range";
  let buffers = Array.init n (fun _ -> Buffer_.create ()) in
  (* Sweep in non-decreasing label order: every arrival strictly below
     the current label is already recorded, which is all the usability
     check consults (it needs arrivals in [l - delta, l - 1]). *)
  Tgraph.iter_time_edges net (fun ~src ~dst ~label ~edge:_ ->
      let via_relay =
        Buffer_.find_in buffers.(src) ~lo:(label - delta) ~hi:(label - 1)
      in
      let pred =
        match via_relay with
        | Some arrival -> Some (src, arrival)
        | None -> if src = s && label >= start_time then Some (-1, -1) else None
      in
      match pred with
      | Some pred when Buffer_.last buffers.(dst) <> label ->
        Buffer_.push buffers.(dst) label pred
      | _ -> ());
  {
    source = s;
    delta;
    start_time;
    arrivals = Array.map Buffer_.to_array buffers;
    preds = Array.map Buffer_.preds buffers;
  }

let source r = r.source
let delta r = r.delta

let distance r v =
  if v = r.source then Some 0
  else if Array.length r.arrivals.(v) = 0 then None
  else Some r.arrivals.(v).(0)

let reachable_count r =
  let count = ref 1 in
  Array.iteri
    (fun v a -> if v <> r.source && Array.length a > 0 then incr count)
    r.arrivals;
  !count

(* Index of [x] in the sorted array, assuming presence. *)
let index_of arr x =
  let l = ref 0 and r = ref (Array.length arr) in
  while !l < !r do
    let mid = (!l + !r) / 2 in
    if arr.(mid) < x then l := mid + 1 else r := mid
  done;
  !l

let journey_to r v =
  if v = r.source then Some []
  else if Array.length r.arrivals.(v) = 0 then None
  else begin
    let rec walk v arrival acc =
      let i = index_of r.arrivals.(v) arrival in
      match r.preds.(v).(i) with
      | -1, -1 ->
        (* Launched straight from the source. *)
        { Journey.src = r.source; dst = v; label = arrival } :: acc
      | u, used ->
        walk u used ({ Journey.src = u; dst = v; label = arrival } :: acc)
    in
    Some (walk v r.arrivals.(v).(0) [])
  end

let is_restless r journey =
  let rec check = function
    | (a : Journey.step) :: (b :: _ as rest) ->
      b.label > a.label && b.label <= a.label + r.delta && check rest
    | _ -> true
  in
  check journey

let path_exists_exhaustive ~delta net ~s ~t =
  if delta < 1 then invalid_arg "Restless: delta must be >= 1";
  let n = Tgraph.n net in
  if n > 20 then invalid_arg "Restless.path_exists_exhaustive: network too large";
  if s < 0 || s >= n || t < 0 || t >= n then
    invalid_arg "Restless: endpoint out of range";
  if s = t then true
  else begin
    let found = ref false in
    let rec explore v time visited =
      if not !found then
        Tgraph.iter_crossings_out net v (fun e target ->
            if visited land (1 lsl target) = 0 then
              Tgraph.iter_edge_labels net e (fun label ->
                  let ok =
                    if v = s && time = 0 then label > 0
                    else label > time && label <= time + delta
                  in
                  if ok && not !found then
                    if target = t then found := true
                    else explore target label (visited lor (1 lsl target))))
    in
    explore s 0 (1 lsl s);
    !found
  end
