module Graph = Sgraph.Graph

type window = { from_time : int; until_time : int }
type schedule = window array  (* sorted, disjoint, non-adjacent *)

let schedule_of_list pairs =
  List.iter
    (fun (from_time, until_time) ->
      if from_time < 1 then invalid_arg "Windows: window start must be >= 1";
      if until_time < from_time then invalid_arg "Windows: empty window")
    pairs;
  let sorted = List.sort compare pairs in
  let rec merge = function
    | (f1, u1) :: (f2, u2) :: rest when f2 <= u1 + 1 ->
      merge ((f1, Stdlib.max u1 u2) :: rest)
    | w :: rest -> w :: merge rest
    | [] -> []
  in
  Array.of_list
    (List.map (fun (from_time, until_time) -> { from_time; until_time })
       (merge sorted))

let schedule_windows s = Array.to_list s

let schedule_duration s =
  Array.fold_left (fun acc w -> acc + w.until_time - w.from_time + 1) 0 s

let first_available_after s t =
  (* First window with until_time > t. *)
  let lo = ref 0 and hi = ref (Array.length s) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if s.(mid).until_time <= t then lo := mid + 1 else hi := mid
  done;
  if !lo >= Array.length s then None
  else Some (Stdlib.max (t + 1) s.(!lo).from_time)

let schedule_of_labels labels =
  schedule_of_list (List.map (fun l -> (l, l)) (Label.to_list labels))

let labels_of_schedule s =
  Label.of_list
    (List.concat_map
       (fun w ->
         List.init (w.until_time - w.from_time + 1) (fun i -> w.from_time + i))
       (Array.to_list s))

type t = {
  graph : Graph.t;
  lifetime : int;
  schedules : schedule array;
}

let create g ~lifetime schedules =
  if lifetime <= 0 then invalid_arg "Windows.create: lifetime must be positive";
  if Array.length schedules <> Graph.m g then
    invalid_arg "Windows.create: one schedule per edge required";
  Array.iter
    (fun s ->
      Array.iter
        (fun w ->
          if w.until_time > lifetime then
            invalid_arg "Windows.create: window beyond the lifetime")
        s)
    schedules;
  { graph = g; lifetime; schedules }

let graph t = t.graph
let lifetime t = t.lifetime
let schedule t e = t.schedules.(e)

let to_tgraph t =
  Tgraph.create t.graph ~lifetime:t.lifetime
    (Array.map labels_of_schedule t.schedules)

let of_tgraph net =
  let g = Tgraph.graph net in
  {
    graph = g;
    lifetime = Tgraph.lifetime net;
    schedules =
      Array.init (Graph.m g) (fun e -> schedule_of_labels (Tgraph.labels net e));
  }

(* A plain binary min-heap of (key, vertex) pairs; stale entries are
   skipped on pop (lazy deletion), as usual for array-based Dijkstra. *)
module Heap = struct
  type t = {
    mutable data : (int * int) array;
    mutable size : int;
  }

  let create () = { data = Array.make 16 (0, 0); size = 0 }

  let push h entry =
    if h.size = Array.length h.data then begin
      let grown = Array.make (2 * h.size) (0, 0) in
      Array.blit h.data 0 grown 0 h.size;
      h.data <- grown
    end;
    h.data.(h.size) <- entry;
    h.size <- h.size + 1;
    let i = ref (h.size - 1) in
    while !i > 0 && fst h.data.((!i - 1) / 2) > fst h.data.(!i) do
      let parent = (!i - 1) / 2 in
      let tmp = h.data.(parent) in
      h.data.(parent) <- h.data.(!i);
      h.data.(!i) <- tmp;
      i := parent
    done

  let pop h =
    if h.size = 0 then None
    else begin
      let top = h.data.(0) in
      h.size <- h.size - 1;
      h.data.(0) <- h.data.(h.size);
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let left = (2 * !i) + 1 and right = (2 * !i) + 2 in
        let smallest = ref !i in
        if left < h.size && fst h.data.(left) < fst h.data.(!smallest) then
          smallest := left;
        if right < h.size && fst h.data.(right) < fst h.data.(!smallest) then
          smallest := right;
        if !smallest = !i then continue := false
        else begin
          let tmp = h.data.(!i) in
          h.data.(!i) <- h.data.(!smallest);
          h.data.(!smallest) <- tmp;
          i := !smallest
        end
      done;
      Some top
    end
end

let earliest_arrival ?(start_time = 1) t s =
  if start_time < 1 then
    invalid_arg "Windows.earliest_arrival: start_time must be >= 1";
  let n = Graph.n t.graph in
  if s < 0 || s >= n then invalid_arg "Windows.earliest_arrival: bad source";
  let arrival = Array.make n max_int in
  arrival.(s) <- start_time - 1;
  let heap = Heap.create () in
  Heap.push heap (start_time - 1, s);
  let continue = ref true in
  while !continue do
    match Heap.pop heap with
    | None -> continue := false
    | Some (key, u) ->
      if key = arrival.(u) then
        Graph.iter_out t.graph u (fun e v ->
            match first_available_after t.schedules.(e) arrival.(u) with
            | Some when_crossing when when_crossing < arrival.(v) ->
              arrival.(v) <- when_crossing;
              Heap.push heap (when_crossing, v)
            | _ -> ())
  done;
  arrival.(s) <- 0;
  arrival
