(** Temporal networks [G = (V, E, L)] (paper, Definition 1).

    A static graph plus a label assignment and a lifetime [a] (the network
    is ephemeral: no label exceeds [a]).  Construction builds the
    *time-edge* stream — every [(u, v, l)] triple with [l ∈ L_{(u,v)}],
    both directions for undirected edges — with a stable counting sort by
    label (O(M + a), no comparator), which is what makes foremost-journey
    computation a single linear sweep.  Ties within a label are in edge-id
    order, [u→v] before [v→u], deterministically.

    The stream and the crossing tables are flat int arrays (the crossing
    table is the CSR adjacency of the underlying graph: arcs carry edge
    ids, labels are looked up per id).  Hot paths use the non-allocating
    iterators and scalar per-edge label queries below; the tuple/[Label.t]
    accessors allocate per call and exist for convenience and tests. *)

type t

val create : Sgraph.Graph.t -> lifetime:int -> Label.t array -> t
(** [create g ~lifetime labels] with [labels.(e)] the label set of edge
    id [e].
    @raise Invalid_argument if the array length differs from [m g], if
    the lifetime is non-positive, or if any label exceeds the lifetime. *)

val of_flat_arcs : Sgraph.Graph.t -> lifetime:int -> int array -> t
(** [of_flat_arcs g ~lifetime label] builds a single-label-per-edge
    network from a bare int array, [label.(e)] being the one label of
    edge [e].  Equivalent to [create] with singleton label sets but
    allocates no [Label.t] values — the fast path for UNI-CASE
    assignments such as the normalized U-RTN clique, where [create]
    would box [m] one-element arrays.  Takes ownership of [label].
    @raise Invalid_argument on a non-positive lifetime, a length
    mismatch, or a label outside [1..lifetime]. *)

val graph : t -> Sgraph.Graph.t
val lifetime : t -> int

val n : t -> int
(** Vertex count of the underlying graph. *)

val labels : t -> int -> Label.t
(** Label set of an edge id.  Allocates on single-label networks
    (builds the singleton on demand) — hot paths should use the scalar
    queries below instead. *)

val label_count : t -> int
(** Total number of labels over all edges — the quantity compared against
    [OPT] in the Price of Randomness. *)

val time_edge_count : t -> int
(** Number of directed time edges in the sweep stream (undirected edges
    contribute both directions per label). *)

val iter_time_edges : t -> (src:int -> dst:int -> label:int -> edge:int -> unit) -> unit
(** Iterate the stream in non-decreasing label order. *)

val time_edge : t -> int -> int * int * int
(** [time_edge t i] is the [i]-th stream entry as [(src, dst, label)]. *)

val stream : t -> int array * int array * int array * int array
(** [(src, dst, label, edge)] — the four parallel stream arrays, borrowed
    (do {e not} mutate), sorted by label.  The raw representation for
    flat kernel loops such as the foremost sweep. *)

(** {2 Scalar per-edge label queries}

    Allocation-free on both labellings; [max_int] is the "none"
    sentinel. *)

val edge_label_size : t -> int -> int

val edge_has_label : t -> int -> int -> bool
(** [edge_has_label t e x] — is [x ∈ L_e]? *)

val edge_next_label_after : t -> int -> int -> int
(** Smallest label of edge [e] strictly greater than the argument,
    [max_int] when none. *)

val edge_next_label_in : t -> int -> lo:int -> hi:int -> int
(** Smallest label of edge [e] in [(lo, hi]], [max_int] when none. *)

val iter_edge_labels : t -> int -> (int -> unit) -> unit
(** All labels of edge [e], ascending. *)

(** {2 Crossings} *)

val iter_crossings_out : t -> int -> (int -> int -> unit) -> unit
(** [iter_crossings_out t v f] calls [f edge target] for each arc leaving
    [v], in edge-id order, without allocating. *)

val iter_crossings_in : t -> int -> (int -> int -> unit) -> unit
(** [f edge source] for each arc entering [v]. *)

val crossings_out : t -> int -> (int * int * Label.t) array
(** [crossings_out t v] lists [(edge id, target, labels)] for each arc
    leaving [v].  Allocates a fresh array per call — use
    {!iter_crossings_out} plus the scalar queries on hot paths. *)

val crossings_in : t -> int -> (int * int * Label.t) array
(** [(edge id, source, labels)] for each arc entering [v] (allocates). *)

val can_cross_at : t -> src:int -> dst:int -> int -> bool
(** Is some arc [src → dst] available exactly at the given time? *)

val pp : Format.formatter -> t -> unit
