(** Temporal networks [G = (V, E, L)] (paper, Definition 1).

    A static graph plus a label assignment and a lifetime [a] (the network
    is ephemeral: no label exceeds [a]).  Construction builds the
    *time-edge* stream — every [(u, v, l)] triple with [l ∈ L_{(u,v)}],
    both directions for undirected edges — with a stable counting sort by
    label (O(M + a), no comparator), which is what makes foremost-journey
    computation a single linear sweep.  Ties within a label are in edge-id
    order, [u→v] before [v→u], deterministically.

    The stream and the crossing tables are flat int arrays (the crossing
    table is the adjacency of the underlying graph: arcs carry edge
    ids, labels are looked up per id).  Hot paths use the non-allocating
    iterators and scalar per-edge label queries below; the tuple/[Label.t]
    accessors allocate per call and exist for convenience and tests.

    {b Backends.}  A network is either {e dense} — labels stored in
    arrays, the full stream materialized at construction — or
    {e implicit} ({!of_derived}): labels recomputed per query from
    [(seed, edge, roll)], the stream materialized lazily as a growing
    label-bounded prefix.  Both present the same interface; kernels
    written against {!stream_prefix}/{!stream_extend} run unchanged on
    either, and {!materialize} converts an implicit instance into its
    byte-identical dense twin.  Only the whole-stream accessors
    ({!stream}, {!iter_time_edges}, {!time_edge_count}) refuse implicit
    networks, with an error that names the fix. *)

type t

val create : Sgraph.Graph.t -> lifetime:int -> Label.t array -> t
(** [create g ~lifetime labels] with [labels.(e)] the label set of edge
    id [e].
    @raise Invalid_argument if the array length differs from [m g], if
    the lifetime is non-positive, or if any label exceeds the lifetime. *)

val of_flat_arcs : Sgraph.Graph.t -> lifetime:int -> int array -> t
(** [of_flat_arcs g ~lifetime label] builds a single-label-per-edge
    network from a bare int array, [label.(e)] being the one label of
    edge [e].  Equivalent to [create] with singleton label sets but
    allocates no [Label.t] values — the fast path for UNI-CASE
    assignments such as the normalized U-RTN clique, where [create]
    would box [m] one-element arrays.  Takes ownership of [label].
    @raise Invalid_argument on a non-positive lifetime, a length
    mismatch, or a label outside [1..lifetime]. *)

val of_derived : Sgraph.Graph.t -> a:int -> seed:int64 -> r:int -> t
(** [of_derived g ~a ~seed ~r] is the implicit-backend constructor: a
    temporal network whose edge labels are the [r] uniform draws over
    [{1..a}] derived from [SplitMix64(seed, edge_id)] on demand
    ({!Implicit.Labels}), with lifetime [a].  O(1) label memory; the
    time-edge stream materializes lazily ({!stream_prefix}).
    @raise Invalid_argument unless [a >= 1] and [r >= 1]. *)

val materialize : t -> t
(** The dense twin: the identity on dense networks; on an implicit one,
    rolls every label once and builds the fully-materialized network —
    byte-identical stream and labelling to what the dense constructors
    produce for the same rolls.  Costs the O(m·r) memory the implicit
    form exists to avoid; for tests, small instances, and consumers
    that genuinely need the whole stream. *)

val is_implicit : t -> bool
(** True on {!of_derived} networks (lazily-materialized stream). *)

val graph : t -> Sgraph.Graph.t
val lifetime : t -> int

val n : t -> int
(** Vertex count of the underlying graph. *)

val labels : t -> int -> Label.t
(** Label set of an edge id.  Allocates on single-label networks
    (builds the singleton on demand) — hot paths should use the scalar
    queries below instead. *)

val label_count : t -> int
(** Total number of labels over all edges — the quantity compared against
    [OPT] in the Price of Randomness. *)

val time_edge_count : t -> int
(** Number of directed time edges in the sweep stream (undirected edges
    contribute both directions per label).
    @raise Invalid_argument on implicit networks — the stream is never
    fully materialized there; use {!materialize} first. *)

val iter_time_edges : t -> (src:int -> dst:int -> label:int -> edge:int -> unit) -> unit
(** Iterate the stream in non-decreasing label order.
    @raise Invalid_argument on implicit networks; use {!materialize}
    or the prefix interface. *)

val time_edge : t -> int -> int * int * int
(** [time_edge t i] is the [i]-th stream entry as [(src, dst, label)].
    On implicit networks, valid for any index inside the current
    prefix — in particular for every predecessor index a kernel has
    produced. *)

val stream : t -> int array * int array * int array * int array
(** [(src, dst, label, edge)] — the four parallel stream arrays, borrowed
    (do {e not} mutate), sorted by label.  The raw representation for
    flat kernel loops such as the foremost sweep.
    @raise Invalid_argument on implicit networks; scan
    {!stream_prefix} / {!stream_extend} instead. *)

(** {2 Prefix stream interface}

    What sweep kernels scan.  On dense networks the prefix is the whole
    stream and never extends; on implicit ones it is the entries with
    label [<= stream_prefix_bound], a byte prefix of the full stream
    that grows under {!stream_extend} — so a kernel that exhausts the
    prefix re-grabs the arrays and resumes at its saved index. *)

val stream_prefix : t -> int array * int array * int array * int array
(** Current prefix arrays [(src, dst, label, edge)], borrowed.  Extends
    replace the arrays — re-grab after {!stream_extend}. *)

val stream_prefix_bound : t -> int
(** Every stream entry with label [<= stream_prefix_bound t] is in the
    current prefix.  Equals [lifetime] on dense networks. *)

val stream_complete : t -> bool
(** Is the current prefix the whole stream?  Always true on dense. *)

val stream_extend : t -> past:int -> bool
(** [stream_extend t ~past] ensures the prefix reaches strictly past
    label bound [past] (the bound of the view the caller exhausted).
    Returns [false] iff the stream is complete and holds nothing beyond
    [past].  Always [false] on dense networks. *)

(** {2 Scalar per-edge label queries}

    Allocation-free on both labellings; [max_int] is the "none"
    sentinel. *)

val edge_label_size : t -> int -> int

val edge_has_label : t -> int -> int -> bool
(** [edge_has_label t e x] — is [x ∈ L_e]? *)

val edge_next_label_after : t -> int -> int -> int
(** Smallest label of edge [e] strictly greater than the argument,
    [max_int] when none. *)

val edge_next_label_in : t -> int -> lo:int -> hi:int -> int
(** Smallest label of edge [e] in [(lo, hi]], [max_int] when none. *)

val iter_edge_labels : t -> int -> (int -> unit) -> unit
(** All labels of edge [e], ascending. *)

(** {2 Crossings} *)

val iter_crossings_out : t -> int -> (int -> int -> unit) -> unit
(** [iter_crossings_out t v f] calls [f edge target] for each arc leaving
    [v], in edge-id order, without allocating. *)

val iter_crossings_in : t -> int -> (int -> int -> unit) -> unit
(** [f edge source] for each arc entering [v]. *)

val crossings_out : t -> int -> (int * int * Label.t) array
(** [crossings_out t v] lists [(edge id, target, labels)] for each arc
    leaving [v].  Allocates a fresh array per call — use
    {!iter_crossings_out} plus the scalar queries on hot paths. *)

val crossings_in : t -> int -> (int * int * Label.t) array
(** [(edge id, source, labels)] for each arc entering [v] (allocates). *)

val can_cross_at : t -> src:int -> dst:int -> int -> bool
(** Is some arc [src → dst] available exactly at the given time? *)

val pp : Format.formatter -> t -> unit
