(* The borrowed workspace array may be longer than n; loops below bound
   themselves by n explicitly. *)
let harmonic_from_arrivals ~n ~skip arrivals =
  let total = ref 0. in
  for v = 0 to n - 1 do
    let a = arrivals.(v) in
    if v <> skip && a > 0 && a < max_int then
      total := !total +. (1. /. float_of_int a)
  done;
  !total

let normalise net totals =
  let n = Tgraph.n net in
  let scale = if n <= 1 then 1. else 1. /. float_of_int (n - 1) in
  Array.map (fun x -> x *. scale) totals

(* Per-lane harmonic total off the batched arrival matrix, target order
   ascending — the same float-add order as the scalar row scan, so the
   batched index is bit-identical. *)
let harmonic_lane ~n t lane =
  let skip = Batch.source t lane in
  let total = ref 0. in
  for v = 0 to n - 1 do
    let a = Batch.arrival t ~lane v in
    if v <> skip && a > 0 && a < max_int then
      total := !total +. (1. /. float_of_int a)
  done;
  !total

(* The closeness indices read full arrival rows, which the batched path
   gets from [Batch.sweep]'s n * lanes arrival matrix; on implicit
   instances they take the per-source scalar path instead so kernel
   scratch stays O(n) (same float-add order, so results are
   bit-identical either way). *)
let scalar_only net = Batch.force_scalar () || Tgraph.is_implicit net

let out_closeness net =
  let n = Tgraph.n net in
  let totals =
    if scalar_only net then
      Array.init n (fun u ->
          harmonic_from_arrivals ~n ~skip:u (Foremost.arrivals_borrowed net u))
    else
      Array.concat
        (Array.to_list
           (Batch.map_batches net (fun t ->
                Array.init (Batch.lanes t) (harmonic_lane ~n t))))
  in
  normalise net totals

let in_closeness net =
  let n = Tgraph.n net in
  let totals = Array.make n 0. in
  if scalar_only net then
    for u = 0 to n - 1 do
      let arrivals = Foremost.arrivals_borrowed net u in
      for v = 0 to n - 1 do
        let a = arrivals.(v) in
        if v <> u && a > 0 && a < max_int then
          totals.(v) <- totals.(v) +. (1. /. float_of_int a)
      done
    done
  else
    (* Sequential batches, lanes in source order: each totals slot sees
       the exact add sequence of the scalar u-loop, keeping the floats
       bit-identical. *)
    Batch.iter_batches net (fun t ->
        for lane = 0 to Batch.lanes t - 1 do
          let u = Batch.source t lane in
          for v = 0 to n - 1 do
            let a = Batch.arrival t ~lane v in
            if v <> u && a > 0 && a < max_int then
              totals.(v) <- totals.(v) +. (1. /. float_of_int a)
          done
        done);
  normalise net totals

let broadcast_time net =
  Array.init (Tgraph.n net) (fun u ->
      match (Flooding.run net u).completion_time with
      | Some t -> t
      | None -> max_int)

let best_broadcaster net =
  let times = broadcast_time net in
  let best = ref 0 in
  Array.iteri (fun v t -> if t < times.(!best) then best := v) times;
  (!best, times.(!best))

let reach_counts net =
  let n = Tgraph.n net in
  if Batch.force_scalar () then
    Array.init n (fun u ->
        let arrivals = Foremost.arrivals_borrowed net u in
        let count = ref 0 in
        for v = 0 to n - 1 do
          if arrivals.(v) < max_int then incr count
        done;
        !count)
  else
    (* Counts need no arrivals: arrival-free sweeps over the pool. *)
    Array.concat
      (Array.to_list
         (Exec.Pool.map_range (Exec.Pool.global ()) ~lo:0
            ~hi:(Batch.batch_count ~n) (fun b ->
              let t = Batch.sweep_reach net ~sources:(Batch.batch_sources ~n b) in
              Array.init (Batch.lanes t) (fun lane ->
                  Batch.reached_count t ~lane))))

let rank scores =
  let order = Array.init (Array.length scores) Fun.id in
  Array.sort
    (fun a b ->
      match Float.compare scores.(b) scores.(a) with
      | 0 -> compare a b
      | c -> c)
    order;
  order

let betweenness net =
  let n = Tgraph.n net in
  let credit = Array.make n 0. in
  let pairs = ref 0 in
  for s = 0 to n - 1 do
    let res = Foremost.run net s in
    for t = 0 to n - 1 do
      if t <> s then
        match Foremost.journey_to net res t with
        | None | Some [] -> ()
        | Some journey ->
          incr pairs;
          List.iter
            (fun (step : Journey.step) ->
              if step.dst <> t then
                credit.(step.dst) <- credit.(step.dst) +. 1.)
            journey
    done
  done;
  if !pairs = 0 then credit
  else Array.map (fun c -> c /. float_of_int !pairs) credit

let cover_by_time net ~deadline =
  if deadline < 0 then invalid_arg "Centrality.cover_by_time: negative deadline";
  let n = Tgraph.n net in
  (* ball.(s) = vertices informed by flooding from s within the
     deadline. *)
  let ball =
    Array.init n (fun s ->
        let result = Flooding.run net s in
        Array.map (fun t -> t <= deadline) result.informed_time)
  in
  let covered = Array.make n false in
  let remaining = ref n in
  let sources = ref [] in
  while !remaining > 0 do
    (* Pick the source covering the most uncovered vertices; every
       vertex covers at least itself, so progress is guaranteed. *)
    let best = ref 0 and best_gain = ref (-1) in
    for s = 0 to n - 1 do
      let gain = ref 0 in
      for v = 0 to n - 1 do
        if ball.(s).(v) && not covered.(v) then incr gain
      done;
      if !gain > !best_gain then begin
        best := s;
        best_gain := !gain
      end
    done;
    sources := !best :: !sources;
    for v = 0 to n - 1 do
      if ball.(!best).(v) && not covered.(v) then begin
        covered.(v) <- true;
        decr remaining
      end
    done
  done;
  List.rev !sources

let broadcast_cover net = cover_by_time net ~deadline:(Tgraph.lifetime net)
