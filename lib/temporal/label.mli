(** Time-label sets [L_e ⊆ {1..a}] attached to edges (paper, Definition 1).

    Represented as sorted arrays of distinct positive integers; every
    constructor normalises, so all downstream algorithms may assume the
    invariant. *)

type t = private int array
(** Sorted, duplicate-free, all entries [>= 1]. *)

val empty : t

val of_list : int list -> t
(** Sorts and deduplicates.
    @raise Invalid_argument on a non-positive label. *)

val of_array : int array -> t
(** Same from an array (the input is not mutated). *)

val singleton : int -> t

val range : int -> int -> t
(** [range lo hi] is [{lo, .., hi}] (empty if [hi < lo]).
    @raise Invalid_argument if [lo < 1]. *)

val to_list : t -> int list
val size : t -> int
val is_empty : t -> bool

val max_label : t -> int
(** [0] when empty. *)

val min_label : t -> int
(** [max_int] when empty. *)

val mem : t -> int -> bool
(** Binary search. *)

val first_after : t -> int -> int option
(** [first_after t x] is the smallest label strictly greater than [x] —
    the primitive behind "cross this edge as early as possible after
    arriving at time [x]". *)

val count_in : t -> lo:int -> hi:int -> int
(** Number of labels in the half-open interval [(lo, hi]] — the interval
    shape [Δ_i] used throughout the Expansion Process analysis. *)

val any_in : t -> lo:int -> hi:int -> int option
(** Smallest label in [(lo, hi]], if any. *)

val next_after : t -> int -> int
(** Allocation-free {!first_after}: the smallest label strictly greater
    than the argument, or [max_int] when none — the sentinel kernels
    compare against directly instead of matching an option. *)

val next_in : t -> lo:int -> hi:int -> int
(** Allocation-free {!any_in}: smallest label in [(lo, hi]], [max_int]
    when none. *)

val union : t -> t -> t
val within_lifetime : t -> int -> bool
(** All labels [<= a]? *)

val pp : Format.formatter -> t -> unit
