module Maxflow = Flow.Maxflow

let validate net ~s ~t =
  let n = Tgraph.n net in
  if s < 0 || s >= n || t < 0 || t >= n then
    invalid_arg "Disjoint: endpoint out of range";
  if s = t then invalid_arg "Disjoint: s = t"

let max_edge_disjoint net ~s ~t =
  validate net ~s ~t;
  let expanded = Expanded.build net in
  let node_count = Expanded.node_count expanded in
  (* One extra node as a dedicated sink keeps the mapping trivial even
     when t has no arrival events. *)
  let flow = Maxflow.create (node_count + 1) in
  let sink = node_count in
  Array.iter
    (fun arc ->
      match arc with
      | Expanded.Wait { from_id; to_id } ->
        ignore (Maxflow.add_edge flow ~src:from_id ~dst:to_id ~capacity:max_int)
      | Expanded.Travel { from_id; to_id; stream_index = _ } ->
        ignore (Maxflow.add_edge flow ~src:from_id ~dst:to_id ~capacity:1))
    (Expanded.arcs expanded);
  (* Every arrival event of t drains into the sink. *)
  for id = 0 to node_count - 1 do
    let v, time = Expanded.node expanded id in
    if v = t && time > 0 then
      ignore (Maxflow.add_edge flow ~src:id ~dst:sink ~capacity:max_int)
  done;
  Maxflow.max_flow flow ~source:(Expanded.start_node expanded s) ~sink

(* --------------------------------------------------------------- *)
(* Exhaustive vertex-disjointness machinery (small n only) *)

(* All inclusion-minimal internal-vertex masks of simple temporal
   (s,t)-paths. *)
let internal_masks net ~s ~t =
  let masks = ref [] in
  let rec explore v time visited mask =
    Tgraph.iter_crossings_out net v (fun e target ->
        Tgraph.iter_edge_labels net e (fun label ->
            if label > time then begin
              if target = t then masks := mask :: !masks
              else if visited land (1 lsl target) = 0 then
                explore target label
                  (visited lor (1 lsl target))
                  (mask lor (1 lsl target))
            end))
  in
  explore s 0 (1 lsl s) 0;
  (* Keep only minimal masks: a superset mask never helps packing or
     separating. *)
  let all = List.sort_uniq compare !masks in
  List.filter
    (fun mask ->
      not
        (List.exists
           (fun other -> other <> mask && other land mask = other)
           all))
    all

let max_vertex_disjoint_exhaustive net ~s ~t =
  validate net ~s ~t;
  let masks = Array.of_list (internal_masks net ~s ~t) in
  let count = Array.length masks in
  (* Branch and bound over pairwise-disjoint subsets of masks. *)
  let best = ref 0 in
  let rec pack index used chosen =
    if chosen + (count - index) > !best then
      if index = count then best := Stdlib.max !best chosen
      else begin
        if masks.(index) land used = 0 then
          pack (index + 1) (used lor masks.(index)) (chosen + 1);
        pack (index + 1) used chosen
      end
  in
  pack 0 0 0;
  !best

(* Is there an (s,t)-journey avoiding the blocked vertex set? *)
let reachable_avoiding net ~s ~t blocked =
  let n = Tgraph.n net in
  let arrival = Array.make n max_int in
  arrival.(s) <- 0;
  Tgraph.iter_time_edges net (fun ~src ~dst ~label ~edge:_ ->
      if
        blocked land (1 lsl src) = 0
        && blocked land (1 lsl dst) = 0
        && arrival.(src) < label
        && label < arrival.(dst)
      then arrival.(dst) <- label);
  arrival.(t) < max_int

let min_vertex_separator_exhaustive net ~s ~t =
  validate net ~s ~t;
  let n = Tgraph.n net in
  if n > 20 then
    invalid_arg "Disjoint.min_vertex_separator_exhaustive: network too large";
  let internal =
    List.filter (fun v -> v <> s && v <> t) (List.init n Fun.id)
  in
  let rec subsets_of_size k = function
    | [] -> if k = 0 then [ 0 ] else []
    | v :: rest ->
      if k = 0 then [ 0 ]
      else
        List.map (fun mask -> mask lor (1 lsl v)) (subsets_of_size (k - 1) rest)
        @ subsets_of_size k rest
  in
  let rec search k =
    if k > List.length internal then max_int
    else if
      List.exists
        (fun blocked -> not (reachable_avoiding net ~s ~t blocked))
        (subsets_of_size k internal)
    then k
    else search (k + 1)
  in
  search 0

(* A 6-vertex directed network exhibiting the temporal Menger gap,
   found by exhaustive search over random small instances and verified
   by the test suite: the (0,5)-journeys have internal vertex sets
   {3,4}, {2,4} and {2,3} — pairwise intersecting, so no two journeys
   are vertex-disjoint — yet no single vertex hits all three, so the
   minimum temporal separator has size 2. *)
let menger_gap_example () =
  let s = 0 and t = 5 in
  let edges =
    [
      ((5, 4), [ 1 ]);
      ((5, 2), [ 3 ]);
      ((5, 1), [ 2 ]);
      ((4, 5), [ 7 ]);
      ((3, 4), [ 5 ]);
      ((3, 2), [ 3 ]);
      ((3, 0), [ 2 ]);
      ((2, 5), [ 5 ]);
      ((2, 4), [ 6 ]);
      ((1, 5), [ 6 ]);
      ((0, 3), [ 2 ]);
      ((0, 2), [ 5 ]);
    ]
  in
  let g =
    Sgraph.Graph.create Directed ~n:6 (List.map fst edges)
  in
  let labels =
    Array.of_list (List.map (fun (_, ls) -> Label.of_list ls) edges)
  in
  (Tgraph.create g ~lifetime:7 labels, s, t)
