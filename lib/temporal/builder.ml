module Graph = Sgraph.Graph

type t = {
  kind : Graph.kind;
  n : int;
  edges : (int * int, int list ref) Hashtbl.t;
}

let create kind ~n =
  if n < 0 then invalid_arg "Builder.create: negative vertex count";
  { kind; n; edges = Hashtbl.create 16 }

let canonical t u v =
  if u < 0 || u >= t.n || v < 0 || v >= t.n then
    invalid_arg "Builder: endpoint out of range";
  if u = v then invalid_arg "Builder: self-loop";
  match t.kind with
  | Graph.Directed -> (u, v)
  | Graph.Undirected -> if u < v then (u, v) else (v, u)

let add_edge t u v labels =
  List.iter
    (fun l -> if l < 1 then invalid_arg "Builder: labels must be positive")
    labels;
  let key = canonical t u v in
  match Hashtbl.find_opt t.edges key with
  (* O(|labels|) accumulation: order is irrelevant — Label.of_list
     normalises at build time — so rev_append beats rebuilding the
     existing list. *)
  | Some existing -> existing := List.rev_append labels !existing
  | None -> Hashtbl.add t.edges key (ref labels)

let add_label t u v l = add_edge t u v [ l ]
let edge_count t = Hashtbl.length t.edges

let label_count t =
  Hashtbl.fold
    (fun _ labels acc ->
      acc + Label.size (Label.of_list !labels))
    t.edges 0

let build ?lifetime t =
  let pairs = Hashtbl.fold (fun key labels acc -> (key, !labels) :: acc) t.edges [] in
  (* Deterministic edge order regardless of hash internals. *)
  let pairs = List.sort compare pairs in
  let g = Graph.create t.kind ~n:t.n (List.map fst pairs) in
  let label_sets = Array.of_list (List.map (fun (_, ls) -> Label.of_list ls) pairs) in
  let max_label =
    Array.fold_left (fun acc ls -> Stdlib.max acc (Label.max_label ls)) 1 label_sets
  in
  let lifetime = Option.value lifetime ~default:max_label in
  Tgraph.create g ~lifetime label_sets
