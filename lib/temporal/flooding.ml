type result = {
  source : int;
  informed_time : int array;
  informed_count : int;
  completion_time : int option;
  transmissions : int;
}

(* Transmission counting consumes every stream entry, so on implicit
   networks the lazy prefix is extended all the way to the lifetime —
   flooding pays the O(total stream) memory the reachability kernels
   avoid.  That is inherent to the statistic (every label of every
   edge can carry a transmission), not an implementation choice; the
   scan is still a single pass that resumes across extensions. *)
let iter_stream_all net f =
  let i = ref 0 in
  let continue_ = ref true in
  while !continue_ do
    let te_src, te_dst, te_label, _ = Tgraph.stream_prefix net in
    let prefix_bound = Tgraph.stream_prefix_bound net in
    let total = Array.length te_label in
    while !i < total do
      f
        ~src:(Array.unsafe_get te_src !i)
        ~dst:(Array.unsafe_get te_dst !i)
        ~label:(Array.unsafe_get te_label !i);
      incr i
    done;
    if not (Tgraph.stream_extend net ~past:prefix_bound) then continue_ := false
  done

let run ?(start_time = 1) net s =
  if start_time < 1 then invalid_arg "Flooding.run: start_time must be >= 1";
  let n = Tgraph.n net in
  if s < 0 || s >= n then invalid_arg "Flooding.run: source out of range";
  let informed_time = Array.make n max_int in
  informed_time.(s) <- start_time - 1;
  let transmissions = ref 0 in
  (* Sweeping the label-sorted stream reproduces the protocol exactly:
     an arc with label l carries the message iff its source was informed
     strictly before l, and stream order guarantees every informing event
     before time l has already been applied. *)
  iter_stream_all net (fun ~src ~dst ~label ->
      if informed_time.(src) < label then begin
        incr transmissions;
        if label < informed_time.(dst) then informed_time.(dst) <- label
      end);
  let informed_count = ref 0 and completion = ref 0 in
  Array.iter
    (fun t ->
      if t < max_int then begin
        incr informed_count;
        if t > !completion then completion := t
      end)
    informed_time;
  {
    source = s;
    informed_time;
    informed_count = !informed_count;
    completion_time = (if !informed_count = n then Some !completion else None);
    transmissions = !transmissions;
  }

(* Flooding's informed times obey the same relaxation as foremost
   arrivals, so completion time is just the max over the borrowed
   arrival array — no result record, no transmission counting. *)
let broadcast_time net s =
  let n = Tgraph.n net in
  if s < 0 || s >= n then invalid_arg "Flooding.run: source out of range";
  let arrival = Foremost.arrivals_borrowed net s in
  let completion = ref 0 and all = ref true in
  for v = 0 to n - 1 do
    let t = arrival.(v) in
    if t = max_int then all := false else if t > !completion then completion := t
  done;
  if !all then Some !completion else None

let run_budgeted ?(start_time = 1) ~k net s =
  if k < 0 then invalid_arg "Flooding.run_budgeted: k must be >= 0";
  if start_time < 1 then
    invalid_arg "Flooding.run_budgeted: start_time must be >= 1";
  let n = Tgraph.n net in
  if s < 0 || s >= n then invalid_arg "Flooding.run_budgeted: source out of range";
  let informed_time = Array.make n max_int in
  informed_time.(s) <- start_time - 1;
  let remaining = Array.make n k in
  let transmissions = ref 0 in
  (* Same sweep as [run]; a vertex simply stops forwarding once its
     budget is spent.  The stream order makes "earliest k opportunities"
     the ones consumed. *)
  iter_stream_all net (fun ~src ~dst ~label ->
      if informed_time.(src) < label && remaining.(src) > 0 then begin
        remaining.(src) <- remaining.(src) - 1;
        incr transmissions;
        if label < informed_time.(dst) then informed_time.(dst) <- label
      end);
  let informed_count = ref 0 and completion = ref 0 in
  Array.iter
    (fun t ->
      if t < max_int then begin
        incr informed_count;
        if t > !completion then completion := t
      end)
    informed_time;
  {
    source = s;
    informed_time;
    informed_count = !informed_count;
    completion_time = (if !informed_count = n then Some !completion else None);
    transmissions = !transmissions;
  }
