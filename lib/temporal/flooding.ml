type result = {
  source : int;
  informed_time : int array;
  informed_count : int;
  completion_time : int option;
  transmissions : int;
}

let run ?(start_time = 1) net s =
  if start_time < 1 then invalid_arg "Flooding.run: start_time must be >= 1";
  let n = Tgraph.n net in
  if s < 0 || s >= n then invalid_arg "Flooding.run: source out of range";
  let informed_time = Array.make n max_int in
  informed_time.(s) <- start_time - 1;
  let transmissions = ref 0 in
  (* Sweeping the label-sorted stream reproduces the protocol exactly:
     an arc with label l carries the message iff its source was informed
     strictly before l, and stream order guarantees every informing event
     before time l has already been applied. *)
  Tgraph.iter_time_edges net (fun ~src ~dst ~label ~edge:_ ->
      if informed_time.(src) < label then begin
        incr transmissions;
        if label < informed_time.(dst) then informed_time.(dst) <- label
      end);
  let informed_count = ref 0 and completion = ref 0 in
  Array.iter
    (fun t ->
      if t < max_int then begin
        incr informed_count;
        if t > !completion then completion := t
      end)
    informed_time;
  {
    source = s;
    informed_time;
    informed_count = !informed_count;
    completion_time = (if !informed_count = n then Some !completion else None);
    transmissions = !transmissions;
  }

(* Flooding's informed times obey the same relaxation as foremost
   arrivals, so completion time is just the max over the borrowed
   arrival array — no result record, no transmission counting. *)
let broadcast_time net s =
  let n = Tgraph.n net in
  if s < 0 || s >= n then invalid_arg "Flooding.run: source out of range";
  let arrival = Foremost.arrivals_borrowed net s in
  let completion = ref 0 and all = ref true in
  for v = 0 to n - 1 do
    let t = arrival.(v) in
    if t = max_int then all := false else if t > !completion then completion := t
  done;
  if !all then Some !completion else None

let run_budgeted ?(start_time = 1) ~k net s =
  if k < 0 then invalid_arg "Flooding.run_budgeted: k must be >= 0";
  if start_time < 1 then
    invalid_arg "Flooding.run_budgeted: start_time must be >= 1";
  let n = Tgraph.n net in
  if s < 0 || s >= n then invalid_arg "Flooding.run_budgeted: source out of range";
  let informed_time = Array.make n max_int in
  informed_time.(s) <- start_time - 1;
  let remaining = Array.make n k in
  let transmissions = ref 0 in
  (* Same sweep as [run]; a vertex simply stops forwarding once its
     budget is spent.  The stream order makes "earliest k opportunities"
     the ones consumed. *)
  Tgraph.iter_time_edges net (fun ~src ~dst ~label ~edge:_ ->
      if informed_time.(src) < label && remaining.(src) > 0 then begin
        remaining.(src) <- remaining.(src) - 1;
        incr transmissions;
        if label < informed_time.(dst) then informed_time.(dst) <- label
      end);
  let informed_count = ref 0 and completion = ref 0 in
  Array.iter
    (fun t ->
      if t < max_int then begin
        incr informed_count;
        if t > !completion then completion := t
      end)
    informed_time;
  {
    source = s;
    informed_time;
    informed_count = !informed_count;
    completion_time = (if !informed_count = n then Some !completion else None);
    transmissions = !transmissions;
  }
