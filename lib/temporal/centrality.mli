(** Temporal centrality indices.

    Rankings of vertices by how well they disseminate or collect
    information under the network's availability schedule — the natural
    "who should originate the message" question on top of §3.5's
    protocol.  All indices are exact; the closeness and reach-count
    families run on the bit-parallel {!Batch} kernel (one stream sweep
    per {!Batch.lane_width} sources, float accumulation in the scalar
    order so values are bit-identical to the per-source paths), the
    flooding/journey-based ones on one pass per vertex. *)

val out_closeness : Tgraph.t -> float array
(** [out_closeness net] assigns each [u] the normalised harmonic
    closeness [ (1/(n-1)) · Σ_{v≠u} 1/δ(u,v) ] with [1/∞ = 0].  In
    [\[0, 1\]]; higher = reaches others earlier. *)

val in_closeness : Tgraph.t -> float array
(** Same over distances *into* each vertex: [Σ 1/δ(v,u)]. *)

val broadcast_time : Tgraph.t -> int array
(** Per source, the completion time of flooding from it ([max_int] when
    it cannot inform everyone) — temporal eccentricity as a centrality. *)

val best_broadcaster : Tgraph.t -> int * int
(** [(vertex, completion_time)] minimising {!broadcast_time}; the time
    is [max_int] when no vertex can inform everyone. *)

val reach_counts : Tgraph.t -> int array
(** Number of vertices each vertex can reach by a journey (itself
    included). *)

val rank : float array -> int array
(** Vertices sorted by descending score (ties by index). *)

val betweenness : Tgraph.t -> float array
(** Witness-journey betweenness: for every ordered reachable pair, one
    foremost journey is reconstructed and each *internal* vertex on it
    is credited; scores are normalised by the number of reachable pairs
    (so they sum to the mean internal-path length).  A pragmatic,
    deterministic variant of temporal betweenness — exact counting over
    all foremost journeys is #P-hard territory. *)

val cover_by_time : Tgraph.t -> deadline:int -> int list
(** Greedy minimum-ish set of sources whose floods jointly inform every
    vertex by [deadline] (classic ln n-approximate set cover over
    foremost balls).  Returns sources in pick order; a suffix of
    never-covered vertices (unreachable by anyone within the deadline)
    each appear as their own source.
    @raise Invalid_argument if [deadline < 0]. *)

val broadcast_cover : Tgraph.t -> int list
(** {!cover_by_time} at the network's full lifetime: how many
    simultaneous originators the schedule needs at all. *)
