(** Temporal distances of a network instance.

    The paper's Temporal Diameter (Definition 5) is the *expectation* of
    the instance quantity computed here — the maximum temporal distance
    over all ordered vertex pairs; the expectation itself is estimated by
    [Sim.Estimators] over sampled instances.

    All-pairs quantities run on the bit-parallel {!Batch} kernel: one
    stream sweep per {!Batch.lane_width} sources, fanned over the
    global [Exec.Pool] in fixed batch order, so results are exact and
    byte-identical at any [--jobs].  The per-source scalar paths stay
    live behind {!Batch.force_scalar} and as explicit [_scalar]
    references for benches and equivalence tests. *)

val distance : Tgraph.t -> int -> int -> int option
(** δ(u, v) for a single pair; [None] when no journey exists. *)

val eccentricity : Tgraph.t -> int -> int option
(** Max δ(s, v) over all [v]; [None] if some vertex is unreachable. *)

val instance_diameter : Tgraph.t -> int option
(** Max δ over all ordered pairs — one {e batched} foremost pass per
    {!Batch.lane_width} sources, so O(⌈n/W⌉·M) word operations instead
    of the scalar path's O(n·M); [None] as soon as one pair is
    temporally disconnected. *)

val instance_diameter_scalar : Tgraph.t -> int option
(** The per-source reference path (one scalar sweep per source).  Same
    result as {!instance_diameter}, pinned by tests; the bench's
    batched-vs-scalar section measures one against the other. *)

val instance_diameter_sampled : Prng.Rng.t -> Tgraph.t -> sources:int -> int option
(** Same maximum restricted to [sources] distinct random source vertices
    (each still checked against *all* targets) — an unbiased lower bound
    that concentrates fast on symmetric instances such as the clique.
    The sampled sources share batched sweeps ({!Batch.lane_width} per
    pass).  Retained for comparison studies; the E-series tables now
    use the exact {!instance_diameter} throughout. *)

val worst_over_sources : Tgraph.t -> int list -> int option
(** Max eccentricity over an explicit source list (scalar sweeps);
    [Some 0] on the empty list. *)

val all_pairs : Tgraph.t -> int array array
(** [all_pairs net] has δ(u, v) at [(u, v)], [max_int] when unreachable
    and [0] on the diagonal.  Batched. *)

val average : Tgraph.t -> float
(** Mean δ over ordered reachable pairs [u <> v]; [nan] when none.
    Batched; integer accumulation, so identical to the scalar loop. *)
