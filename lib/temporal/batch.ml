(* Bit-parallel batched foremost sweeps: up to [lane_width] sources per
   pass, one bit lane each, over the same counting-sorted time-edge
   stream the scalar kernel walks.

   Layout.  Each vertex owns ONE machine word per batch: bit [j] of
   [reached.(v)] says "lane [j]'s source has a journey to [v] arriving
   strictly before the label group being processed".  A time edge
   (u, v, l) then advances all lanes at once:

     add = reached.(u) land (lnot reached.(v))

   Strict label increase along journeys is what makes the word trick
   sound, and it is enforced by *group-phased* processing: all entries
   of one label [l] are applied against the reached state frozen at the
   end of label [l - 1] ([reached]), accumulating their new bits into a
   separate [delta] plane; only when the group ends are the deltas
   committed (arrivals recorded at [l], [reached] updated).  An entry
   can therefore never chain with another entry of its own label — the
   same guarantee the scalar kernel gets from its [arrival.(u) < l]
   comparison — so within-label stream order cannot affect the result,
   and batch arrivals are bit-for-bit the scalar sweep's.

   Early exit.  A lane saturates when its reached count hits [n]; the
   label of the group that saturated it is recorded as the lane's
   eccentricity (the arrival of its last-reached vertex).  Arrivals
   only ever extend to *new* vertices — a committed arrival is final,
   because a later entry carries a later label — so once the popcount
   of the saturated-lane mask reaches the batch width there is nothing
   left for the stream to say and the sweep stops.  On the normalized
   clique this fires after O(log n) label groups, exactly like the
   scalar bound-based exit, but its cost is shared by all lanes.

   Probes (updated once per sweep, after the hot loop, only while
   Obs.Control is on): kernel.batch_sweeps, kernel.batch_edges_scanned
   and kernel.lane_saturations.  All three are functions of the
   instance and batch composition alone — never of scheduling — so run
   ledgers file them under the deterministic section. *)

let lane_width = Sys.int_size

(* Bit helpers on OCaml's native ints.  Masks with bit 62 set do not
   fit a 63-bit literal, so popcount splits into two halves narrow
   enough for 32-bit SWAR; [ntz] expects a power of two. *)

let pop32 x =
  let x = x - ((x lsr 1) land 0x55555555) in
  let x = (x land 0x33333333) + ((x lsr 2) land 0x33333333) in
  let x = (x + (x lsr 4)) land 0x0F0F0F0F in
  (* OCaml ints don't truncate the multiply at 32 bits, so mask the
     summed byte out explicitly (counts fit: <= 32 per half). *)
  ((x * 0x01010101) lsr 24) land 0xFF

let popcount x = pop32 (x land 0x7FFFFFFF) + pop32 ((x lsr 31) land 0xFFFFFFFF)

let ntz b =
  if b = 0 then invalid_arg "Batch.ntz: zero";
  let n = ref 0 and x = ref b in
  if !x land 0x7FFFFFFF = 0 then begin
    n := !n + 31;
    x := !x lsr 31
  end;
  if !x land 0xFFFF = 0 then begin
    n := !n + 16;
    x := !x lsr 16
  end;
  if !x land 0xFF = 0 then begin
    n := !n + 8;
    x := !x lsr 8
  end;
  if !x land 0xF = 0 then begin
    n := !n + 4;
    x := !x lsr 4
  end;
  if !x land 0x3 = 0 then begin
    n := !n + 2;
    x := !x lsr 2
  end;
  if !x land 0x1 = 0 then incr n;
  !n

(* All [k] low bits set, valid for 1 <= k <= lane_width (1 lsl
   lane_width is unspecified, so the full word is spelled -1). *)
let full_mask k = if k >= lane_width then -1 else (1 lsl k) - 1

type t = {
  n : int;
  lanes : int;
  start_time : int;
  sources : int array;
  arrival : int array;
  reached : int array;
  reached_counts : int array;
  ecc : int array;
}

let sweeps_c = Obs.Metrics.counter "kernel.batch_sweeps"
let scanned_c = Obs.Metrics.counter "kernel.batch_edges_scanned"
let sat_c = Obs.Metrics.counter "kernel.lane_saturations"

let sweep ?(start_time = 1) net ~sources =
  if start_time < 1 then invalid_arg "Batch.sweep: start_time must be >= 1";
  let n = Tgraph.n net in
  let k = Array.length sources in
  if k < 1 || k > lane_width then
    invalid_arg "Batch.sweep: need 1 .. lane_width sources";
  Array.iter
    (fun s -> if s < 0 || s >= n then invalid_arg "Batch.sweep: source out of range")
    sources;
  let ws = Workspace.get_batch ~n ~lanes:k in
  let reached = ws.Workspace.lane_reached in
  let delta = ws.Workspace.lane_delta in
  let dirty = ws.Workspace.lane_dirty in
  let arrival = ws.Workspace.lane_arrival in
  let counts = ws.Workspace.lane_counts in
  let ecc = ws.Workspace.lane_ecc in
  Array.fill reached 0 n 0;
  Array.fill delta 0 n 0;
  Array.fill arrival 0 (n * k) max_int;
  Array.fill counts 0 k 0;
  Array.fill ecc 0 k max_int;
  let unsat = ref (full_mask k) in
  for lane = 0 to k - 1 do
    let s = Array.unsafe_get sources lane in
    reached.(s) <- reached.(s) lor (1 lsl lane);
    arrival.((s * k) + lane) <- start_time - 1;
    counts.(lane) <- counts.(lane) + 1;
    if counts.(lane) = n then begin
      (* Saturated at birth: n = 1.  Mirror the scalar eccentricity
         convention (max over an empty set of targets) of 0. *)
      ecc.(lane) <- 0;
      unsat := !unsat land lnot (1 lsl lane)
    end
  done;
  let i = ref 0 in
  let ndirty = ref 0 in
  (* Scan the stream prefix; on implicit networks an exhausted prefix
     is extended and the scan resumes at the same index (prefixes are
     byte-stable), so the entries visited are exactly the dense
     stream's.  The label-bound cut can never split a label group — a
     prefix holds ALL entries up to its bound — so the group-phased
     commit discipline is unaffected. *)
  let continue_ = ref true in
  while !continue_ do
    let te_src, te_dst, te_label, _ = Tgraph.stream_prefix net in
    let prefix_bound = Tgraph.stream_prefix_bound net in
    let total = Array.length te_label in
    (* Entries below the departure horizon can never start a journey and
       nothing is reached before them; skip them outright. *)
    while !i < total && Array.unsafe_get te_label !i < start_time do
      incr i
    done;
    while !i < total && !unsat <> 0 do
      let l = Array.unsafe_get te_label !i in
      (* Phase 1: apply every entry of the group against the frozen
         pre-group state. *)
      while
        !i < total && Array.unsafe_get te_label !i = l
      do
        let src = Array.unsafe_get te_src !i in
        let g = Array.unsafe_get reached src in
        if g <> 0 then begin
          let dst = Array.unsafe_get te_dst !i in
          let add =
            g
            land lnot (Array.unsafe_get reached dst lor Array.unsafe_get delta dst)
          in
          if add <> 0 then begin
            if Array.unsafe_get delta dst = 0 then begin
              Array.unsafe_set dirty !ndirty dst;
              incr ndirty
            end;
            Array.unsafe_set delta dst (Array.unsafe_get delta dst lor add)
          end
        end;
        incr i
      done;
      (* Phase 2: commit the group — record arrivals at l, fold the
         deltas into the reached plane, retire saturated lanes. *)
      for j = 0 to !ndirty - 1 do
        let v = Array.unsafe_get dirty j in
        let add = Array.unsafe_get delta v in
        Array.unsafe_set delta v 0;
        Array.unsafe_set reached v (Array.unsafe_get reached v lor add);
        (* Walk the word lane by lane instead of isolate-and-ntz per set
           bit: on dense groups (the common case on the clique, where one
           label delivers most lanes to a vertex at once) the shift walk
           is a handful of ops per arrival where ntz extraction costs
           ~15, and it still stops at the highest set bit when the word
           is sparse.  This loop writes every all-pairs arrival exactly
           once, so it is the sweep's real inner loop — the edge scan
           above touches ~W times fewer entries. *)
        let rem = ref add in
        let base = v * k in
        let lane = ref 0 in
        while !rem <> 0 do
          if !rem land 1 <> 0 then begin
            Array.unsafe_set arrival (base + !lane) l;
            let c = Array.unsafe_get counts !lane + 1 in
            Array.unsafe_set counts !lane c;
            if c = n then begin
              Array.unsafe_set ecc !lane l;
              unsat := !unsat land lnot (1 lsl !lane)
            end
          end;
          rem := !rem lsr 1;
          incr lane
        done
      done;
      ndirty := 0
    done;
    if !unsat = 0 || not (Tgraph.stream_extend net ~past:prefix_bound) then
      continue_ := false
  done;
  if Obs.Control.enabled () then begin
    Obs.Metrics.incr sweeps_c;
    Obs.Metrics.add scanned_c !i;
    Obs.Metrics.add sat_c (popcount (full_mask k land lnot !unsat))
  end;
  {
    n;
    lanes = k;
    start_time;
    sources;
    arrival;
    reached;
    reached_counts = counts;
    ecc;
  }

let lanes t = t.lanes
let source t lane = t.sources.(lane)
let arrival t ~lane v = t.arrival.((v * t.lanes) + lane)
let reached_word t v = t.reached.(v)
let reached_count t ~lane = t.reached_counts.(lane)
let saturated t ~lane = t.reached_counts.(lane) = t.n

let all_saturated t =
  let rec scan lane =
    lane >= t.lanes || (t.reached_counts.(lane) = t.n && scan (lane + 1))
  in
  scan 0

let eccentricity t ~lane =
  let e = t.ecc.(lane) in
  if e = max_int then None else Some e

let arrivals_into t ~lane out =
  let k = t.lanes in
  for v = 0 to t.n - 1 do
    Array.unsafe_set out v (Array.unsafe_get t.arrival ((v * k) + lane))
  done

(* Eccentricity-only sweep: same group-phased walk as [sweep], but it
   never touches the arrival matrix.  The outputs instance_diameter
   needs are just (a) did every lane saturate and (b) the label of the
   last committed arrival — which IS the batch's worst eccentricity,
   because arrivals commit in strictly increasing label order, so the
   final new (vertex, lane) pair carries the maximum arrival.  That
   reduces the per-group commit to one popcount per dirty vertex
   against a single remaining-pairs counter: no n*k fill, no per-bit
   lane walk, no per-lane counts.  The sweep's cost collapses to the
   edge scan, which is what makes exact all-pairs diameters cheap
   enough for E1b's n = 2048. *)
let sweep_diameter ?(start_time = 1) net ~sources =
  if start_time < 1 then
    invalid_arg "Batch.sweep_diameter: start_time must be >= 1";
  let n = Tgraph.n net in
  let k = Array.length sources in
  if k < 1 || k > lane_width then
    invalid_arg "Batch.sweep_diameter: need 1 .. lane_width sources";
  Array.iter
    (fun s ->
      if s < 0 || s >= n then
        invalid_arg "Batch.sweep_diameter: source out of range")
    sources;
  let ws = Workspace.get_batch_planes ~n in
  let reached = ws.Workspace.lane_reached in
  let delta = ws.Workspace.lane_delta in
  let dirty = ws.Workspace.lane_dirty in
  Array.fill reached 0 n 0;
  Array.fill delta 0 n 0;
  (* Unreached (vertex, lane) pairs left; each lane's own source counts
     as reached from the start (even under duplicate sources the pairs
     are distinct, one per lane). *)
  let remaining = ref ((n * k) - k) in
  for lane = 0 to k - 1 do
    let s = Array.unsafe_get sources lane in
    reached.(s) <- reached.(s) lor (1 lsl lane)
  done;
  let worst = ref 0 in
  let i = ref 0 in
  let ndirty = ref 0 in
  let continue_ = ref true in
  while !continue_ do
    let te_src, te_dst, te_label, _ = Tgraph.stream_prefix net in
    let prefix_bound = Tgraph.stream_prefix_bound net in
    let total = Array.length te_label in
    while !i < total && Array.unsafe_get te_label !i < start_time do
      incr i
    done;
    while !i < total && !remaining > 0 do
      let l = Array.unsafe_get te_label !i in
      while !i < total && Array.unsafe_get te_label !i = l do
        let src = Array.unsafe_get te_src !i in
        let g = Array.unsafe_get reached src in
        if g <> 0 then begin
          let dst = Array.unsafe_get te_dst !i in
          let add =
            g
            land lnot (Array.unsafe_get reached dst lor Array.unsafe_get delta dst)
          in
          if add <> 0 then begin
            if Array.unsafe_get delta dst = 0 then begin
              Array.unsafe_set dirty !ndirty dst;
              incr ndirty
            end;
            Array.unsafe_set delta dst (Array.unsafe_get delta dst lor add)
          end
        end;
        incr i
      done;
      if !ndirty > 0 then begin
        (* Something committed at this label; if it turns out to be the
           last commit, [l] is the max arrival of the whole batch. *)
        worst := l;
        for j = 0 to !ndirty - 1 do
          let v = Array.unsafe_get dirty j in
          let add = Array.unsafe_get delta v in
          Array.unsafe_set delta v 0;
          Array.unsafe_set reached v (Array.unsafe_get reached v lor add);
          remaining := !remaining - popcount add
        done;
        ndirty := 0
      end
    done;
    if !remaining = 0 || not (Tgraph.stream_extend net ~past:prefix_bound) then
      continue_ := false
  done;
  if Obs.Control.enabled () then begin
    Obs.Metrics.incr sweeps_c;
    Obs.Metrics.add scanned_c !i;
    let sat =
      if !remaining = 0 then k
      else begin
        (* Lane j saturated iff bit j survives an AND over every
           vertex's word; only the incomplete path pays this O(n). *)
        let acc = ref (full_mask k) in
        for v = 0 to n - 1 do
          acc := !acc land Array.unsafe_get reached v
        done;
        popcount !acc
      end
    in
    Obs.Metrics.add sat_c sat
  end;
  if !remaining = 0 then Some !worst else None

(* Reachability-only sweep: the same plane walk as [sweep_diameter],
   but it returns a full result record so the reachability consumers
   can read [reached_word]/[reached_count]/[saturated] per lane.
   Per-lane counts are recovered once at the end with one shift walk
   over the reached plane (O(n) words) instead of being maintained per
   commit, and the arrival matrix is never touched — the result's
   [arrival] is empty and [arrival]/[arrivals_into]/[eccentricity] are
   unsupported on it.  Like [sweep_diameter] this keeps batch scratch
   at O(n) words, which is what [Reachability] needs to run on
   implicit instances at n = 10^5+. *)
let sweep_reach ?(start_time = 1) net ~sources =
  if start_time < 1 then
    invalid_arg "Batch.sweep_reach: start_time must be >= 1";
  let n = Tgraph.n net in
  let k = Array.length sources in
  if k < 1 || k > lane_width then
    invalid_arg "Batch.sweep_reach: need 1 .. lane_width sources";
  Array.iter
    (fun s ->
      if s < 0 || s >= n then
        invalid_arg "Batch.sweep_reach: source out of range")
    sources;
  let ws = Workspace.get_batch_planes ~n in
  let reached = ws.Workspace.lane_reached in
  let delta = ws.Workspace.lane_delta in
  let dirty = ws.Workspace.lane_dirty in
  let counts = ws.Workspace.lane_counts in
  let ecc = ws.Workspace.lane_ecc in
  Array.fill reached 0 n 0;
  Array.fill delta 0 n 0;
  Array.fill counts 0 k 0;
  Array.fill ecc 0 k max_int;
  let remaining = ref ((n * k) - k) in
  for lane = 0 to k - 1 do
    let s = Array.unsafe_get sources lane in
    reached.(s) <- reached.(s) lor (1 lsl lane)
  done;
  let i = ref 0 in
  let ndirty = ref 0 in
  let continue_ = ref true in
  while !continue_ do
    let te_src, te_dst, te_label, _ = Tgraph.stream_prefix net in
    let prefix_bound = Tgraph.stream_prefix_bound net in
    let total = Array.length te_label in
    while !i < total && Array.unsafe_get te_label !i < start_time do
      incr i
    done;
    while !i < total && !remaining > 0 do
      let l = Array.unsafe_get te_label !i in
      while !i < total && Array.unsafe_get te_label !i = l do
        let src = Array.unsafe_get te_src !i in
        let g = Array.unsafe_get reached src in
        if g <> 0 then begin
          let dst = Array.unsafe_get te_dst !i in
          let add =
            g
            land lnot (Array.unsafe_get reached dst lor Array.unsafe_get delta dst)
          in
          if add <> 0 then begin
            if Array.unsafe_get delta dst = 0 then begin
              Array.unsafe_set dirty !ndirty dst;
              incr ndirty
            end;
            Array.unsafe_set delta dst (Array.unsafe_get delta dst lor add)
          end
        end;
        incr i
      done;
      for j = 0 to !ndirty - 1 do
        let v = Array.unsafe_get dirty j in
        let add = Array.unsafe_get delta v in
        Array.unsafe_set delta v 0;
        Array.unsafe_set reached v (Array.unsafe_get reached v lor add);
        remaining := !remaining - popcount add
      done;
      ndirty := 0
    done;
    if !remaining = 0 || not (Tgraph.stream_extend net ~past:prefix_bound) then
      continue_ := false
  done;
  (* Recover per-lane reached counts from the plane in one pass. *)
  for v = 0 to n - 1 do
    let rem = ref (Array.unsafe_get reached v) in
    let lane = ref 0 in
    while !rem <> 0 do
      if !rem land 1 <> 0 then
        Array.unsafe_set counts !lane (Array.unsafe_get counts !lane + 1);
      rem := !rem lsr 1;
      incr lane
    done
  done;
  if Obs.Control.enabled () then begin
    Obs.Metrics.incr sweeps_c;
    Obs.Metrics.add scanned_c !i;
    let sat = ref 0 in
    for lane = 0 to k - 1 do
      if counts.(lane) = n then incr sat
    done;
    Obs.Metrics.add sat_c !sat
  end;
  {
    n;
    lanes = k;
    start_time;
    sources;
    arrival = [||];
    reached;
    reached_counts = counts;
    ecc;
  }

(* ------------------------------------------------------------------ *)
(* Batching sources 0 .. n-1. *)

let batch_count ~n = (n + lane_width - 1) / lane_width

let batch_sources ~n b =
  let lo = b * lane_width in
  if lo < 0 || lo >= n then invalid_arg "Batch.batch_sources: batch out of range";
  Array.init (Stdlib.min lane_width (n - lo)) (fun j -> lo + j)

let iter_batches ?start_time net f =
  let n = Tgraph.n net in
  for b = 0 to batch_count ~n - 1 do
    f (sweep ?start_time net ~sources:(batch_sources ~n b))
  done

let map_batches ?start_time net f =
  let n = Tgraph.n net in
  Exec.Pool.map_range (Exec.Pool.global ()) ~lo:0 ~hi:(batch_count ~n)
    (fun b -> f (sweep ?start_time net ~sources:(batch_sources ~n b)))

(* ------------------------------------------------------------------ *)
(* Scalar escape hatch: one env probe at startup, so CI can byte-diff
   the batched renders against the per-source path on the same build. *)

let force_scalar_v =
  lazy
    (match Sys.getenv_opt "EPHEMERAL_SCALAR_SWEEPS" with
    | None | Some "" | Some "0" -> false
    | Some _ -> true)

let force_scalar () = Lazy.force force_scalar_v
