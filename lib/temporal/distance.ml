let distance net u v =
  let res = Foremost.run net u in
  Foremost.distance res v

(* Eccentricity over borrowed workspace arrivals: max over v <> s, None
   if any vertex is unreached.  Zero allocation per source. *)
let ecc_borrowed net s =
  let n = Tgraph.n net in
  let arrival = Foremost.arrivals_borrowed net s in
  let worst = ref 0 and complete = ref true in
  for v = 0 to n - 1 do
    if v <> s then begin
      let a = arrival.(v) in
      if a = max_int then complete := false
      else if a > !worst then worst := a
    end
  done;
  if !complete then Some !worst else None

let eccentricity net s = ecc_borrowed net s

let worst_over_sources net sources =
  let rec scan worst = function
    | [] -> Some worst
    | s :: rest -> (
      match ecc_borrowed net s with
      | None -> None
      | Some e -> scan (Stdlib.max worst e) rest)
  in
  scan 0 sources

let instance_diameter net =
  (* Inline loop rather than materialising the source list: the bench's
     hot path (build + all-pairs eccentricity per trial). *)
  let n = Tgraph.n net in
  let rec scan worst s =
    if s >= n then Some worst
    else
      match ecc_borrowed net s with
      | None -> None
      | Some e -> scan (Stdlib.max worst e) (s + 1)
  in
  scan 0 0

let instance_diameter_sampled rng net ~sources =
  let n = Tgraph.n net in
  let k = Stdlib.min sources n in
  let picks = Prng.Sample.choose_distinct rng ~k ~n in
  worst_over_sources net (Array.to_list picks)

let all_pairs net =
  let n = Tgraph.n net in
  Array.init n (fun u ->
      let arrival = Foremost.arrivals_borrowed net u in
      let row = Array.sub arrival 0 n in
      row.(u) <- 0;
      row)

let average net =
  let n = Tgraph.n net in
  let total = ref 0 and pairs = ref 0 in
  for u = 0 to n - 1 do
    let arrival = Foremost.arrivals_borrowed net u in
    for v = 0 to n - 1 do
      if v <> u && arrival.(v) < max_int then begin
        total := !total + arrival.(v);
        incr pairs
      end
    done
  done;
  if !pairs = 0 then Float.nan else float_of_int !total /. float_of_int !pairs
