let distance net u v =
  let res = Foremost.run net u in
  Foremost.distance res v

(* Eccentricity over borrowed workspace arrivals: max over v <> s, None
   if any vertex is unreached.  Zero allocation per source. *)
let ecc_borrowed net s =
  let n = Tgraph.n net in
  let arrival = Foremost.arrivals_borrowed net s in
  let worst = ref 0 and complete = ref true in
  for v = 0 to n - 1 do
    if v <> s then begin
      let a = arrival.(v) in
      if a = max_int then complete := false
      else if a > !worst then worst := a
    end
  done;
  if !complete then Some !worst else None

let eccentricity net s = ecc_borrowed net s

let worst_over_sources net sources =
  let rec scan worst = function
    | [] -> Some worst
    | s :: rest -> (
      match ecc_borrowed net s with
      | None -> None
      | Some e -> scan (Stdlib.max worst e) rest)
  in
  scan 0 sources

(* The per-source path, kept as the reference implementation: the bench
   measures the batched kernel against it and the batch suite pins the
   two bit-for-bit ([Batch.force_scalar] also reroutes here). *)
let instance_diameter_scalar net =
  let n = Tgraph.n net in
  let rec scan worst s =
    if s >= n then Some worst
    else
      match ecc_borrowed net s with
      | None -> None
      | Some e -> scan (Stdlib.max worst e) (s + 1)
  in
  scan 0 0

let instance_diameter net =
  if Batch.force_scalar () then instance_diameter_scalar net
  else begin
    (* One eccentricity-only sweep per lane_width sources, fanned over
       the domain pool; the sequential fold keeps the max in batch
       order (and hence byte-identical output at any --jobs). *)
    let n = Tgraph.n net in
    let per_batch =
      Exec.Pool.map_range (Exec.Pool.global ()) ~lo:0
        ~hi:(Batch.batch_count ~n) (fun b ->
          Batch.sweep_diameter net ~sources:(Batch.batch_sources ~n b))
    in
    Array.fold_left
      (fun acc w ->
        match (acc, w) with
        | Some a, Some b -> Some (Stdlib.max a b)
        | _ -> None)
      (Some 0) per_batch
  end

let instance_diameter_sampled rng net ~sources =
  let n = Tgraph.n net in
  let k = Stdlib.min sources n in
  let picks = Prng.Sample.choose_distinct rng ~k ~n in
  if Batch.force_scalar () then worst_over_sources net (Array.to_list picks)
  else begin
    (* All sampled sources ride one sweep per lane_width of them —
       sequentially, because this runs inside per-trial pool tasks. *)
    let worst = ref (Some 0) in
    let off = ref 0 in
    while !worst <> None && !off < k do
      let width = Stdlib.min Batch.lane_width (k - !off) in
      let w =
        Batch.sweep_diameter net ~sources:(Array.sub picks !off width)
      in
      (match (!worst, w) with
      | Some a, Some b -> worst := Some (Stdlib.max a b)
      | _ -> worst := None);
      off := !off + width
    done;
    !worst
  end

(* The all-pairs matrix and the average both read full arrival rows, so
   their batched paths go through [Batch.sweep]'s n * lanes arrival
   matrix.  On implicit instances that scratch is exactly what the
   backend promises never to allocate, so they take the per-source
   scalar path instead (O(n) workspace; the n² output of [all_pairs]
   is the caller's ask, not an intermediate). *)
let scalar_only net = Batch.force_scalar () || Tgraph.is_implicit net

let all_pairs net =
  let n = Tgraph.n net in
  if scalar_only net then
    Array.init n (fun u ->
        let arrival = Foremost.arrivals_borrowed net u in
        let row = Array.sub arrival 0 n in
        row.(u) <- 0;
        row)
  else begin
    let rows =
      Batch.map_batches net (fun t ->
          Array.init (Batch.lanes t) (fun lane ->
              let row = Array.make n 0 in
              Batch.arrivals_into t ~lane row;
              row.(Batch.source t lane) <- 0;
              row))
    in
    Array.concat (Array.to_list rows)
  end

let average net =
  let n = Tgraph.n net in
  let total = ref 0 and pairs = ref 0 in
  if scalar_only net then
    for u = 0 to n - 1 do
      let arrival = Foremost.arrivals_borrowed net u in
      for v = 0 to n - 1 do
        if v <> u && arrival.(v) < max_int then begin
          total := !total + arrival.(v);
          incr pairs
        end
      done
    done
  else begin
    (* Integer partial sums per batch commute exactly, so pooled batches
       reproduce the scalar totals to the last bit. *)
    let per_batch =
      Batch.map_batches net (fun t ->
          let bt = ref 0 and bp = ref 0 in
          for lane = 0 to Batch.lanes t - 1 do
            let u = Batch.source t lane in
            for v = 0 to n - 1 do
              let a = Batch.arrival t ~lane v in
              if v <> u && a < max_int then begin
                bt := !bt + a;
                incr bp
              end
            done
          done;
          (!bt, !bp))
    in
    Array.iter
      (fun (bt, bp) ->
        total := !total + bt;
        pairs := !pairs + bp)
      per_batch
  end;
  if !pairs = 0 then Float.nan else float_of_int !total /. float_of_int !pairs
