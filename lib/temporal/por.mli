(** The Price of Randomness (paper, Definition 8).

    [r(n)] is the least number of i.i.d. uniform labels per edge that
    strongly guarantees temporal reachability w.h.p.; the Price of
    Randomness is [PoR(G) = m·r(n) / OPT].  This module estimates [r(n)]
    by Monte-Carlo search over empirical success probabilities, and
    assembles PoR values against the OPT bounds of {!Opt}. *)

type estimate = {
  r : int;  (** least label count whose success rate met the target *)
  success_rate : float;  (** empirical success probability at [r] *)
  ci : Stats.Ci.interval;  (** Wilson interval at [r] *)
  trials : int;
  target : float;
}

val success_probability :
  Prng.Rng.t -> Sgraph.Graph.t -> a:int -> r:int -> trials:int -> float
(** Empirical probability that [r] uniform labels per edge satisfy
    [Treach], over freshly sampled assignments.  Trials pre-split one
    RNG stream each and run on the process-wide domain pool
    ({!Exec.Pool.global}); results are independent of the job count. *)

val min_r :
  ?r_max:int ->
  Prng.Rng.t ->
  Sgraph.Graph.t ->
  a:int ->
  target:float ->
  trials:int ->
  estimate option
(** [min_r rng g ~a ~target ~trials] searches for the least [r] whose
    empirical [Treach] rate reaches [target]: exponential ramp-up to
    bracket, then binary search (success probability is monotone in [r]
    in distribution, up to sampling noise).  [None] if even
    [r_max] (default [4·a]) fails — e.g. a disconnected graph. *)

val whp_target : n:int -> float
(** The paper's "with high probability" bar instantiated at finite [n]:
    [1 - 1/n] (Definition 7 with [a = 1]). *)

val price : m:int -> r:int -> opt:int -> float
(** [m·r / OPT]. *)

type report = {
  graph_name : string;
  n : int;
  m : int;
  estimate : estimate;
  opt_lower : int;  (** [n - 1] *)
  opt_upper : int;  (** [2(n-1)], or the exact value when known *)
  por_lower : float;  (** PoR against [opt_upper] (conservative) *)
  por_upper : float;  (** PoR against [opt_lower] *)
  thm7_bound : float;  (** [2·d(G)·ln n] *)
  coupon_bound : float;  (** coupon-collector refinement *)
}

val report :
  ?r_max:int ->
  Prng.Rng.t ->
  name:string ->
  Sgraph.Graph.t ->
  a:int ->
  target:float ->
  trials:int ->
  report option
(** Bundle an estimate with the theoretical bounds for one graph; uses
    the exact OPT for cliques and stars, the spanning-tree bound
    otherwise. *)
