(* A single-task barrier pool.  Workers park on [work] between tasks;
   a task is published by bumping [gen] (the task generation each worker
   last saw is its resume token).  Chunks are claimed from [task.next]
   with fetch-and-add; the caller participates in draining, then waits
   on [finished] until every claimed chunk has completed.

   Chunk granularity: a few chunks per domain balances load (trial
   costs vary — e.g. disconnected instances bail early) against
   claim/complete traffic. *)

type task = {
  length : int;
  chunk : int;
  run_chunk : int -> int -> unit; (* run_chunk lo hi, hi exclusive *)
  next : int Atomic.t;
  mutable pending : int; (* chunks not yet completed; guarded by [m] *)
  mutable failed : (exn * Printexc.raw_backtrace) option; (* guarded by [m] *)
  ctx : (string * int) option; (* caller's open span, for path nesting *)
}

type t = {
  jobs : int;
  m : Mutex.t;
  work : Condition.t;
  finished : Condition.t;
  mutable task : task option;
  mutable gen : int;
  mutable stop : bool;
  mutable workers : unit Domain.t array;
}

let jobs t = t.jobs

(* Set while a domain (worker or caller) is executing chunks: nested
   map_range calls detect it and fall back to inline execution. *)
let inside_task : bool ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref false)

let in_task () = !(Domain.DLS.get inside_task)

let chunks_per_domain = 4

(* Probes, all gated on Obs.Control at the use site: outstanding
   chunks of the current task (queue depth), wall nanoseconds each
   participant spent draining (busy time — the caller and every worker
   own one counter), and the wall latency of whole tasks. *)
let queue_depth_g = Obs.Metrics.gauge "pool.queue_depth"
let task_ms_h = Obs.Metrics.histogram "pool.task_ms"
let caller_busy_c = Obs.Metrics.counter "pool.busy_ns.caller"

let worker_busy_counter i =
  Obs.Metrics.counter (Printf.sprintf "pool.busy_ns.worker%d" i)

let drain t task ~busy =
  let inside = Domain.DLS.get inside_task in
  let was_inside = !inside in
  inside := true;
  let enabled = Obs.Control.enabled () in
  let t0 = if enabled then Obs.Clock.now () else 0L in
  Obs.Span.with_context task.ctx (fun () ->
      let rec claim () =
        let lo = Atomic.fetch_and_add task.next task.chunk in
        if lo < task.length then begin
          let hi = Stdlib.min task.length (lo + task.chunk) in
          (* Once one chunk failed the task's result is dead: skip the
             work, but still retire the chunk so completion counts up. *)
          (if task.failed = None then
             try task.run_chunk lo hi with
             | e ->
               let bt = Printexc.get_raw_backtrace () in
               Mutex.lock t.m;
               if task.failed = None then task.failed <- Some (e, bt);
               Mutex.unlock t.m);
          Mutex.lock t.m;
          task.pending <- task.pending - 1;
          if enabled then
            Obs.Metrics.set queue_depth_g (float_of_int task.pending);
          if task.pending = 0 then Condition.broadcast t.finished;
          Mutex.unlock t.m;
          claim ()
        end
      in
      claim ());
  if enabled then
    Obs.Metrics.add busy (Int64.to_int (Obs.Clock.elapsed_ns ~since:t0));
  inside := was_inside

let rec worker_loop t ~worker ~busy seen =
  Mutex.lock t.m;
  while t.gen = seen && not t.stop do
    Condition.wait t.work t.m
  done;
  if t.stop then Mutex.unlock t.m
  else begin
    let gen = t.gen in
    (* The task may already be complete and cleared by the time a slow
       waker gets here; there is then nothing left to claim. *)
    let task = t.task in
    Mutex.unlock t.m;
    (match task with
    | None -> ()
    | Some task ->
      if Fault.Inject.poison_worker ~worker ~generation:gen then
        (* A poisoned worker sits this task out.  Correctness is
           unaffected — the caller always drains — it just runs on
           fewer domains. *)
        Obs.Metrics.incr (Obs.Metrics.counter "pool.workers_poisoned")
      else
        (* [drain] already routes run_chunk exceptions into
           [task.failed]; anything escaping here is pool machinery
           breaking.  Contain it so the domain survives for future
           tasks instead of dying silently mid-queue. *)
        try drain t task ~busy with
        | e ->
          Obs.Metrics.incr (Obs.Metrics.counter "pool.worker_exceptions");
          Obs.Log.warn_once "pool.worker"
            "pool worker %d crashed outside task isolation: %s" worker
            (Printexc.to_string e));
    worker_loop t ~worker ~busy gen
  end

let create ~jobs =
  let jobs = Stdlib.max 1 jobs in
  let t =
    {
      jobs;
      m = Mutex.create ();
      work = Condition.create ();
      finished = Condition.create ();
      task = None;
      gen = 0;
      stop = false;
      workers = [||];
    }
  in
  t.workers <-
    Array.init (jobs - 1) (fun i ->
        Domain.spawn (fun () ->
            (* Created on the worker domain, so the counter registers
               in the worker's own shard. *)
            let busy = worker_busy_counter i in
            worker_loop t ~worker:i ~busy 0));
  t

let shutdown t =
  Mutex.lock t.m;
  let workers = t.workers in
  t.stop <- true;
  t.workers <- [||];
  Condition.broadcast t.work;
  Mutex.unlock t.m;
  (* A worker that died to an unexpected exception must not wedge
     shutdown for the rest. *)
  Array.iter (fun d -> try Domain.join d with _ -> ()) workers

let run t task =
  Mutex.lock t.m;
  t.task <- Some task;
  t.gen <- t.gen + 1;
  Condition.broadcast t.work;
  Mutex.unlock t.m;
  drain t task ~busy:caller_busy_c;
  Mutex.lock t.m;
  while task.pending > 0 do
    Condition.wait t.finished t.m
  done;
  t.task <- None;
  Mutex.unlock t.m;
  match task.failed with
  | Some (e, bt) -> Printexc.raise_with_backtrace e bt
  | None -> ()

(* In-order sequential loop: the jobs = 1 / nested / tiny-range path. *)
let seq_map ~lo ~hi f =
  let a = Array.make (hi - lo) (f lo) in
  for i = lo + 1 to hi - 1 do
    a.(i - lo) <- f i
  done;
  a

let parallel t ~lo ~hi run_chunk =
  let length = hi - lo in
  let chunk =
    Stdlib.max 1 ((length + (t.jobs * chunks_per_domain) - 1) / (t.jobs * chunks_per_domain))
  in
  let pending = (length + chunk - 1) / chunk in
  let enabled = Obs.Control.enabled () in
  if enabled then begin
    Obs.Metrics.incr (Obs.Metrics.counter "pool.tasks");
    Obs.Metrics.add (Obs.Metrics.counter "pool.chunks") pending
  end;
  let t0 = if enabled then Obs.Clock.now () else 0L in
  run t
    {
      length;
      chunk;
      run_chunk;
      next = Atomic.make 0;
      pending;
      failed = None;
      ctx = (if enabled then Obs.Span.context () else None);
    };
  if enabled then
    Obs.Metrics.observe task_ms_h
      (Obs.Clock.ns_to_ms (Obs.Clock.elapsed_ns ~since:t0))

let sequential t ~lo ~hi =
  hi - lo <= 1 || t.jobs = 1 || !(Domain.DLS.get inside_task)

let map_range t ~lo ~hi f =
  if hi <= lo then [||]
  else if sequential t ~lo ~hi then seq_map ~lo ~hi f
  else begin
    let results = Array.make (hi - lo) None in
    parallel t ~lo ~hi (fun clo chi ->
        for i = clo to chi - 1 do
          results.(i) <- Some (f (lo + i))
        done);
    Array.map (function Some v -> v | None -> assert false) results
  end

let iter_range t ~lo ~hi f =
  if hi <= lo then ()
  else if sequential t ~lo ~hi then
    for i = lo to hi - 1 do
      f i
    done
  else
    parallel t ~lo ~hi (fun clo chi ->
        for i = clo to chi - 1 do
          f (lo + i)
        done)

let reduce t ~lo ~hi ~map ~fold ~init =
  Array.fold_left fold init (map_range t ~lo ~hi map)

(* ------------------------------------------------------------------ *)
(* Process-wide pool *)

let global_m = Mutex.create ()
let global_pool : t option ref = ref None

let set_jobs = Config.set_jobs

let global () =
  Mutex.lock global_m;
  let want = Config.jobs () in
  let pool =
    match !global_pool with
    | Some p when p.jobs = want -> p
    | prev ->
      Option.iter shutdown prev;
      let p = create ~jobs:want in
      global_pool := Some p;
      p
  in
  Mutex.unlock global_m;
  pool

let () =
  at_exit (fun () ->
      Mutex.lock global_m;
      let p = !global_pool in
      global_pool := None;
      Mutex.unlock global_m;
      Option.iter shutdown p)
