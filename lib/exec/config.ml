(* The runtime refuses to spawn more than ~128 domains; stay far below
   so a typo'd EPHEMERAL_JOBS can't wedge the process. *)
let max_jobs = 64

let clamp n = if n < 1 then 1 else if n > max_jobs then max_jobs else n
let recommended () = clamp (Domain.recommended_domain_count ())

let parse s =
  match int_of_string_opt (String.trim s) with
  | Some n when n >= 1 -> Ok (clamp n)
  | Some n -> Error (Printf.sprintf "non-positive job count %d" n)
  | None -> Error (Printf.sprintf "not an integer: %S" s)

let env_jobs () =
  match Sys.getenv_opt "EPHEMERAL_JOBS" with
  | None -> None
  | Some s -> (
    match parse s with
    | Ok n -> Some n
    | Error reason ->
      Obs.Log.warn_once "exec.env_jobs"
        "ignoring EPHEMERAL_JOBS (%s); using the recommended domain count"
        reason;
      None)

let override : int option Atomic.t = Atomic.make None
let set_jobs n = Atomic.set override (Some (clamp n))

let jobs () =
  match Atomic.get override with
  | Some n -> n
  | None -> ( match env_jobs () with Some n -> n | None -> recommended ())
