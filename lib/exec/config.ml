(* The runtime refuses to spawn more than ~128 domains; stay far below
   so a typo'd EPHEMERAL_JOBS can't wedge the process. *)
let max_jobs = 64

let clamp n = if n < 1 then 1 else if n > max_jobs then max_jobs else n
let recommended () = clamp (Domain.recommended_domain_count ())

let env_jobs () =
  match Sys.getenv_opt "EPHEMERAL_JOBS" with
  | None -> None
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n when n >= 1 -> Some (clamp n)
    | Some _ | None -> None)

let override : int option Atomic.t = Atomic.make None
let set_jobs n = Atomic.set override (Some (clamp n))

let jobs () =
  match Atomic.get override with
  | Some n -> n
  | None -> ( match env_jobs () with Some n -> n | None -> recommended ())
