(** Job-count resolution for the domain pool.

    The effective job count is, in priority order:

    + an explicit {!set_jobs} (the CLI's [--jobs N]),
    + the [EPHEMERAL_JOBS] environment variable,
    + [Domain.recommended_domain_count ()].

    Values are clamped to [\[1, max_jobs\]]; a malformed or non-positive
    environment value (e.g. [abc], [0], [-3]) falls back to the
    recommended count with a single stderr warning rather than raising
    or spawning a zero-domain pool, so a bad shell profile can never
    break a run. *)

val max_jobs : int
(** Upper clamp on the job count (well under the runtime's domain
    limit). *)

val parse : string -> (int, string) result
(** Parse a job count as the [EPHEMERAL_JOBS] resolution does:
    [Ok n] clamped to [\[1, max_jobs\]] for a positive integer,
    [Error reason] for anything malformed or non-positive. *)

val recommended : unit -> int
(** [Domain.recommended_domain_count], clamped. *)

val jobs : unit -> int
(** The effective job count under the resolution order above. *)

val set_jobs : int -> unit
(** Override the job count for the rest of the process (clamped to
    [\[1, max_jobs\]]).  Takes effect on the next {!Pool.global}
    call. *)
