(** Fixed-size domain pool with a chunked work queue over index ranges.

    A pool of [jobs] domains total: the calling domain plus [jobs - 1]
    spawned workers that park on a condition variable between tasks, so
    per-task overhead is a couple of mutex operations rather than a
    domain spawn.  One task runs at a time; its index range is cut into
    chunks (a few per domain) claimed off a shared atomic counter, so a
    slow chunk doesn't idle the rest of the pool.

    {b Determinism contract.}  [map_range] writes slot [i] of the result
    from [f i] no matter which domain ran it and returns the array in
    index order, and [reduce] folds that array sequentially left to
    right — so as long as [f i] depends only on [i] (e.g. on a
    pre-split per-trial RNG, never on a stream shared across indices),
    the result is byte-identical at any job count.  See DESIGN.md
    "Parallel execution".

    Worker domains propagate the caller's open {!Obs.Span} context, so
    spans opened inside [f] record the same nested path ("e1/trial")
    they would under sequential execution.

    Calls from inside a pool task (nested parallelism) degrade to
    sequential execution in the calling domain rather than deadlock.

    {b Fault isolation.}  A task exception is captured per chunk and
    re-raised in the caller; the queue itself never wedges — remaining
    chunks are retired unrun and workers return to their parking loop.
    Under an armed {!Fault.Plan}, a worker may be {e poisoned} for a
    task ([Fault.Inject.poison_worker]): it skips that task entirely
    (counted in ["pool.workers_poisoned"]).  Correctness is unaffected
    because the caller always participates in draining; the task just
    runs on fewer domains.  An exception escaping the pool machinery
    itself is contained (["pool.worker_exceptions"], warn-once) so the
    domain survives for future tasks, and {!shutdown} joins dead
    workers without raising.

    {b Probes} (recorded only while {!Obs.Control.enabled} is on):
    ["pool.tasks"] and ["pool.chunks"] count submissions;
    ["pool.queue_depth"] gauges the current task's outstanding chunks;
    ["pool.task_ms"] is a histogram of whole-task wall latency; and
    ["pool.busy_ns.caller"] / ["pool.busy_ns.workerN"] accumulate the
    wall nanoseconds each participant spent draining chunks, so a
    trace-less run still shows how evenly work spread across
    domains. *)

type t

val create : jobs:int -> t
(** [create ~jobs] spawns [max 1 jobs - 1] worker domains.  [jobs = 1]
    never spawns and runs everything inline. *)

val jobs : t -> int

val shutdown : t -> unit
(** Join all workers.  Idempotent; the pool must be idle. *)

val in_task : unit -> bool
(** Whether the calling domain is currently executing a pool task
    (workers while draining, and callers participating in their own
    task).  Nested parallel calls use this to fall back inline;
    [Sim.Runner] uses it to checkpoint only top-level map calls. *)

val map_range : t -> lo:int -> hi:int -> (int -> 'a) -> 'a array
(** [map_range t ~lo ~hi f] is [[| f lo; ...; f (hi - 1) |]], with the
    calls distributed over the pool.  Empty when [hi <= lo].  If any
    [f i] raises, the first exception (in claim order) is re-raised in
    the caller once every running chunk has finished; remaining
    unclaimed chunks are skipped. *)

val iter_range : t -> lo:int -> hi:int -> (int -> unit) -> unit
(** [map_range] without results.  [f]'s side effects must be safe to
    run concurrently (e.g. each [i] writing a distinct array slot). *)

val reduce :
  t -> lo:int -> hi:int -> map:(int -> 'a) -> fold:('b -> 'a -> 'b) -> init:'b -> 'b
(** [reduce t ~lo ~hi ~map ~fold ~init] maps in parallel, then folds
    the results {e sequentially in index order} — associativity of
    [fold] is not required, and float accumulation matches the
    sequential loop bit for bit. *)

(** {2 Process-wide pool}

    Shared by every trial-parallel call site ([Sim.Runner],
    [Temporal.Por]).  Sized by {!Config.jobs} and rebuilt lazily when
    that changes ([--jobs], {!set_jobs}); shut down automatically at
    exit. *)

val global : unit -> t

val set_jobs : int -> unit
(** [Config.set_jobs]: resize the global pool from the next {!global}
    call on. *)
