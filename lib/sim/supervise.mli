(** Supervised trial execution: retries, deadlines, degradation.

    With supervision {!active} (a non-default {!config} or an armed
    {!Fault.Plan}), {!Runner} routes every trial through {!run_trial}:
    the trial becomes [result]-typed, failed attempts are retried up
    to [max_retries] times, and every attempt runs against a
    [Prng.Rng.copy] of the trial's pristine pre-split stream — so a
    trial that succeeds on attempt [k] computes bit-identically to one
    that succeeds immediately, and a faulted run with retries renders
    byte-identically to the fault-free run at any [--jobs].

    {b Deadlines} are cooperative (OCaml code cannot be preempted).
    The per-attempt [trial_timeout] is checked after the attempt
    completes; an overrunning attempt is discarded and retried (under
    an armed delay plan the retry can genuinely clear it).  The
    per-run [run_deadline] (measured from {!configure}) is checked
    before each attempt: once it passes, remaining trials fail fast
    with a non-retryable error.

    {b Degradation.}  When a trial exhausts its retries, [Runner]
    either raises {!Trial_failed} (default: the run aborts, the CLI
    exits non-zero) or, under [keep_going], drops the failed trials,
    records them here, and lets the experiment finish on the partial
    sample — tables are then flagged degraded and bootstrap CIs
    widened by {!ci_widen}.

    Retries and terminal failures are counted in ["trials.retried"]
    and ["trials.failed"] (always live, like the fault counters). *)

type failure = { trial : int; attempts : int; message : string }

type config = {
  max_retries : int;  (** Extra attempts after the first, per trial. *)
  trial_timeout : float option;  (** Seconds per attempt. *)
  run_deadline : float option;  (** Seconds from {!configure}. *)
  keep_going : bool;  (** Degrade instead of aborting. *)
}

val default : config
(** No retries, no deadlines, abort on failure — and, with no fault
    plan armed, supervision entirely out of the trial path. *)

exception Trial_failed of failure
(** Raised (by [Runner]'s gather, in the calling domain) when a trial
    exhausts retries and [keep_going] is off. *)

exception Trial_timeout of { trial : int; seconds : float }

exception Run_deadline_exceeded

val configure : config -> unit
(** Install [c] process-wide, stamp the run deadline, and reset the
    per-run degradation record. *)

val current : unit -> config
val active : unit -> bool

val reset_run : unit -> unit
(** Clear the per-run degradation record (between experiments). *)

val run_trial :
  trial:int -> Prng.Rng.t -> (Prng.Rng.t -> 'a) -> ('a, failure) result
(** One supervised trial under the current config.  [rng0] is the
    trial's pristine pre-split stream; each attempt gets a fresh copy
    of it.  Injection (an armed plan's [before_trial]) runs per
    attempt.  Never raises: the terminal failure is returned. *)

(** {2 Run-level degradation record}

    Filled in by [Runner]'s gather; read by [Report] to annotate
    outcomes and by experiments to widen CIs. *)

val note_planned : int -> unit
val note_failures : failure list -> unit
val failures : unit -> failure list
val degraded : unit -> bool

val ci_widen : unit -> float
(** [sqrt (planned / completed)] — how much dropping failed trials
    loosened a mean's confidence interval.  [1.0] on a clean run. *)
