type t = {
  id : string;
  title : string;
  paper_ref : string;
  run : quick:bool -> seed:int -> Outcome.t;
}

let all =
  [
    {
      id = "e1";
      title = "Temporal diameter of the normalized U-RTN clique";
      paper_ref = "Theorems 3-4 + Omega(log n) remark (section 3)";
      run = Exp_clique_diameter.run;
    };
    {
      id = "e2";
      title = "Expansion Process: success, arrival time, layer growth";
      paper_ref = "Algorithm 1, Figure 1, Theorems 1-3";
      run = Exp_expansion.run;
    };
    {
      id = "e3";
      title = "Temporal diameter vs lifetime";
      paper_ref = "Theorem 5 (section 3.6)";
      run = Exp_lifetime.run;
    };
    {
      id = "e4";
      title = "Price of Randomness on the star";
      paper_ref = "Theorem 6, Figure 2 (section 4)";
      run = Exp_star_por.run;
    };
    {
      id = "e5";
      title = "Price of Randomness in general graphs + Claim 1 boxes";
      paper_ref = "Theorems 7-8, Claim 1, Figure 3 (section 5)";
      run = Exp_general_por.run;
    };
    {
      id = "e6";
      title = "Erdos-Renyi connectivity threshold";
      paper_ref = "substrate of Theorem 5's proof";
      run = Exp_gnp.run;
    };
    {
      id = "e7";
      title = "Random phone-call model vs flooding";
      paper_ref = "section 1.1 and section 3.5";
      run = Exp_phonecall.run;
    };
    {
      id = "e8";
      title = "F-CASE label distributions";
      paper_ref = "section 2, Note after Definition 4";
      run = Exp_fcase.run;
    };
    {
      id = "e9";
      title = "Journey taxonomy (foremost/fastest/shortest/reverse)";
      paper_ref = "extension; discrete analogue of Bui-Xuan et al. [6]";
      run = Exp_taxonomy.run;
    };
    {
      id = "e10";
      title = "Temporal routing capacity and the Menger gap";
      paper_ref = "extension; connectivity axis of Kempe et al. [19]";
      run = Exp_capacity.run;
    };
    {
      id = "e11";
      title = "Label redundancy: greedy pruning vs OPT";
      paper_ref = "extension; minimal labelings of Mertzios et al. [21]";
      run = Exp_redundancy.run;
    };
    {
      id = "e12";
      title = "Flooding on edge-Markovian evolving graphs";
      paper_ref = "related work; Clementi et al. [8] (section 1.2)";
      run = Exp_markovian.run;
    };
    {
      id = "e13";
      title = "Availability design: backbone + random labels";
      paper_ref = "section 6 (the paper's stated research direction)";
      run = Exp_design.run;
    };
    {
      id = "e14";
      title = "Robustness under targeted and random vertex loss";
      paper_ref = "extension; the hostile framing inverted";
      run = Exp_robustness.run;
    };
    {
      id = "e15";
      title = "Restless dissemination: bounded waiting";
      paper_ref = "extension; restless temporal walks";
      run = Exp_restless.run;
    };
    {
      id = "e16";
      title = "Mobility traces vs the uniform-time null model";
      paper_ref = "the introduction's motivation, trace-driven";
      run = Exp_mobility.run;
    };
    {
      id = "e17";
      title = "Random walks riding the availability schedule";
      paper_ref = "related work; Avin et al. [2] (section 1.2)";
      run = Exp_walks.run;
    };
    {
      id = "e18";
      title = "Jamming the designs: adversarial label removal";
      paper_ref = "sections 1 and 6, combined adversarially";
      run = Exp_jamming.run;
    };
    {
      id = "e19";
      title = "Performance scaling of the core algorithms";
      paper_ref = "systems evaluation of the implementation";
      run = Exp_perf.run;
    };
    {
      id = "e20";
      title = "Departure slack: latest viable launches";
      paper_ref = "Theorem 2's symmetry, measured directly";
      run = Exp_slack.run;
    };
    {
      id = "e21";
      title = "Budgeted flooding: trimming section 3.5's messages";
      paper_ref = "sections 3.5 + 1.1, message complexity";
      run = Exp_budget.run;
    };
    {
      id = "e22";
      title = "Seed stability of the suite's estimates";
      paper_ref = "reproducibility meta-check";
      run = Exp_stability.run;
    };
    {
      id = "e23";
      title = "Temporal diameter at scale: derived-label instances";
      paper_ref = "Theorems 3-4 at n the dense representation cannot hold";
      run = Exp_implicit_scale.run;
    };
  ]

let find id =
  let id = String.lowercase_ascii id in
  match List.find_opt (fun e -> e.id = id) all with
  | Some e -> Some e
  | None ->
    (* Forgiving lookup: "E1", "exp1", "ed1" all mean e1 — any spelling
       whose digits name an experiment. *)
    let digits =
      String.to_seq id
      |> Seq.filter (fun c -> c >= '0' && c <= '9')
      |> String.of_seq
    in
    if digits = "" then None
    else List.find_opt (fun e -> e.id = "e" ^ digits) all

let default_seed = 20140623 (* SPAA'14 opening day *)
