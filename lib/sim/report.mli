(** Rendering and persisting experiment outcomes. *)

val print_outcome : Experiments.t -> Outcome.t -> unit
(** Header (id, title, paper reference) then the rendered outcome, to
    stdout. *)

val run_and_print : quick:bool -> seed:int -> Experiments.t -> Outcome.t
(** Run, print, and also return the outcome (so callers can persist
    it).  When [Obs.Control.enabled], the run is wrapped in an
    [Obs.Span] named after the experiment id and counted in
    ["sim.experiments"]. *)

val ensure_dir : string -> unit
(** Create a directory and any missing parents ([mkdir -p]). *)

val save_csv : dir:string -> Experiments.t -> Outcome.t -> string list
(** Write each table as [<dir>/<id>_<k>.csv]; returns the paths.
    Creates [dir] if missing. *)

val save_markdown : dir:string -> Experiments.t -> Outcome.t -> string
(** Write all tables and notes as [<dir>/<id>.md]; returns the path. *)
