(** Rendering and persisting experiment outcomes. *)

val print_outcome : Experiments.t -> Outcome.t -> unit
(** Header (id, title, paper reference) then the rendered outcome, to
    stdout. *)

val run_and_print : quick:bool -> seed:int -> Experiments.t -> Outcome.t
(** Run, print, and also return the outcome (so callers can persist
    it).  When [Obs.Control.enabled], the run is wrapped in an
    [Obs.Span] named after the experiment id and counted in
    ["sim.experiments"].  Resets the {!Supervise} per-run record
    first; if the run then drops trials under [--keep-going], every
    table is marked degraded ({!Stats.Table.set_degraded}) and a
    leading DEGRADED note is added — callers should not cache such an
    outcome. *)

val annotate_degraded : Outcome.t -> Outcome.t
(** Apply the degradation record of the current {!Supervise} run to an
    outcome: no-op when the run was clean; otherwise marks every table
    degraded and prepends a DEGRADED note.  [run_and_print] applies
    this automatically; exposed for drivers (the chaos soak) that run
    experiments without printing. *)

val ensure_dir : string -> unit
(** Create a directory and any missing parents ([mkdir -p]). *)

val save_csv : dir:string -> Experiments.t -> Outcome.t -> string list
(** Write each table as [<dir>/<id>_<k>.csv]; returns the paths.
    Creates [dir] if missing. *)

val save_markdown : dir:string -> Experiments.t -> Outcome.t -> string
(** Write all tables and notes as [<dir>/<id>.md]; returns the path. *)
