(* The machine-readable flight record of one `ephemeral run`: a single
   JSON document with everything needed to audit or compare the run —
   code fingerprint, inputs, telemetry snapshot — published atomically
   (Fsio.write_atomic), so a crashed run never leaves a torn report.

   Schema stability is the contract that makes reports diffable: the
   document splits into a "deterministic" object, byte-identical for
   the same (code, seed, quick, experiments) at ANY --jobs — the
   determinism claim, machine-checkable per run — and a "volatile"
   object for everything scheduling-dependent (timings, per-domain
   scratch growth, pool accounting).  Keys appear in both sections
   regardless of job count: known scheduling instruments are emitted
   even when absent from the snapshot, so -j1 and -j4 reports have
   identical key sets.

   Which counters are scheduling-dependent is a closed, curated list:
   pool accounting (including per-worker busy time, aggregated here
   into one number so the key set doesn't depend on worker count),
   sink drops, and workspace growths (one per domain that touched the
   kernel).  Everything else — trials, sweeps, edges scanned, faults,
   store hits — is part of the deterministic contract. *)

let volatile_counter name =
  let has_prefix p =
    String.length name >= String.length p
    && String.sub name 0 (String.length p) = p
  in
  has_prefix "pool." || has_prefix "obs." || name = "kernel.workspace_growths"

let busy_prefix = "pool.busy_ns."

let is_busy name =
  String.length name >= String.length busy_prefix
  && String.sub name 0 (String.length busy_prefix) = busy_prefix

(* Known scheduling instruments, emitted with a zero default so the
   volatile key set matches across job counts (-j1 never submits a
   pool task; -j4 never runs without one). *)
let known_scheduling =
  [ "kernel.workspace_growths"; "obs.sink_dropped"; "pool.chunks";
    "pool.tasks"; "pool.worker_exceptions"; "pool.workers_poisoned" ]

let known_gauges = [ "pool.queue_depth" ]

let known_histograms =
  [ "pool.task_ms"; "store.hit_ms"; "store.miss_ms"; "supervise.retry_ms" ]

(* ------------------------------------------------------------------ *)
(* JSON assembly.  Hand-built on a Buffer like the store manifest:
   keys are sorted before emission, so equal data means equal bytes. *)

let jstr s = Printf.sprintf "\"%s\"" (Obs.Sink.json_escape s)

let jfloat x =
  if Float.is_nan x || x = Float.infinity || x = Float.neg_infinity then "null"
  else Printf.sprintf "%.6g" x

let jobj fields =
  "{" ^ String.concat "," (List.map (fun (k, v) -> jstr k ^ ":" ^ v) fields)
  ^ "}"

let jarr items = "[" ^ String.concat "," items ^ "]"

let histo_json (h : Obs.Metrics.histo_summary) =
  jobj
    [
      ("count", string_of_int h.h_count);
      ("sum", jfloat h.h_sum);
      ("min", if h.h_count = 0 then "null" else jfloat h.h_min);
      ("max", if h.h_count = 0 then "null" else jfloat h.h_max);
      ("p50", jfloat h.p50);
      ("p90", jfloat h.p90);
      ("p99", jfloat h.p99);
    ]

let empty_histo : Obs.Metrics.histo_summary =
  {
    h_count = 0;
    h_sum = 0.;
    h_min = Float.infinity;
    h_max = Float.neg_infinity;
    p50 = Float.nan;
    p90 = Float.nan;
    p99 = Float.nan;
  }

(* Union of [known] names (with a default) and the observed pairs,
   sorted by name. *)
let with_defaults known default present =
  let all =
    List.sort_uniq compare (known @ List.map fst present)
  in
  List.map
    (fun name ->
      (name, Option.value (List.assoc_opt name present) ~default))
    all

let build ~seed ~quick ~backend ~jobs ~experiments ~status ~wall_ns =
  let snapshot = Obs.Metrics.snapshot () in
  let counters =
    List.filter_map
      (function n, Obs.Metrics.Counter_v v -> Some (n, v) | _ -> None)
      snapshot
  in
  let gauges =
    List.filter_map
      (function n, Obs.Metrics.Gauge_v v -> Some (n, v) | _ -> None)
      snapshot
  in
  let histograms =
    List.filter_map
      (function n, Obs.Metrics.Histogram_v h -> Some (n, h) | _ -> None)
      snapshot
  in
  let det_counters =
    List.filter (fun (n, _) -> not (volatile_counter n)) counters
  in
  let scheduling =
    with_defaults known_scheduling 0
      (List.filter (fun (n, _) -> volatile_counter n && not (is_busy n)) counters)
  in
  let pool_busy_ns =
    List.fold_left
      (fun acc (n, v) -> if is_busy n then acc + v else acc)
      0 counters
  in
  let spans = Obs.Span.totals () in
  let failed_trials = List.length (Supervise.failures ()) in
  let deterministic =
    jobj
      [
        ("fingerprint", jstr (Store.Key.fingerprint ()));
        ("sources", string_of_int (Store.Key.fingerprinted_sources ()));
        ("seed", string_of_int seed);
        ("quick", string_of_bool quick);
        (* The instance representation is a run input like the seed:
           label-identical across backends by construction, but the
           implicit.* roll/query counters below legitimately differ,
           so the field keeps deterministic sections comparable only
           within one backend. *)
        ("backend", jstr backend);
        ("experiments", jarr (List.map jstr experiments));
        ("status", jstr status);
        ("failed_trials", string_of_int failed_trials);
        ( "counters",
          jobj (List.map (fun (n, v) -> (n, string_of_int v)) det_counters) );
        ( "span_counts",
          jobj
            (List.map
               (fun (name, (t : Obs.Span.totals)) ->
                 (name, string_of_int t.count))
               spans) );
      ]
  in
  let volatile =
    jobj
      [
        ("jobs", string_of_int jobs);
        ("wall_ns", Printf.sprintf "%Ld" wall_ns);
        ("pool_busy_ns", string_of_int pool_busy_ns);
        ( "scheduling",
          jobj (List.map (fun (n, v) -> (n, string_of_int v)) scheduling) );
        ( "gauges",
          jobj
            (List.map
               (fun (n, v) -> (n, jfloat v))
               (with_defaults known_gauges 0. gauges)) );
        ( "spans",
          jobj
            (List.map
               (fun (name, (t : Obs.Span.totals)) ->
                 ( name,
                   jobj
                     [
                       ("total_ns", Printf.sprintf "%Ld" t.total_ns);
                       ("minor_words", Printf.sprintf "%.0f" t.minor_words);
                       ("major_words", Printf.sprintf "%.0f" t.major_words);
                     ] ))
               spans) );
        ( "histograms",
          jobj
            (List.map
               (fun (n, h) -> (n, histo_json h))
               (with_defaults known_histograms empty_histo histograms)) );
      ]
  in
  jobj
    [
      ("schema", jstr "ephemeral-run-ledger");
      ("version", "1");
      ("deterministic", deterministic);
      ("volatile", volatile);
    ]
  ^ "\n"

let write ~path ~seed ~quick ~backend ~jobs ~experiments ~status ~wall_ns =
  Store.Fsio.write_atomic path
    (build ~seed ~quick ~backend ~jobs ~experiments ~status ~wall_ns)
