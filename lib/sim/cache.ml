(* Whole-experiment outcome caching on top of lib/store.

   The key pins experiment id, seed, quick flag, backend tag and the
   build-time code fingerprint (Store.Key); the value is the
   Codec-encoded outcome.  Because every experiment is byte-deterministic in those
   inputs (the PR 2 contract), a hit is provably equal to a fresh run
   — rendered tables, CSVs and Markdown included.

   A decode failure (stale format version, bad CRC) quarantines the
   object and reads as a miss, so corruption can cost time, never
   correctness. *)

module Objects = Store.Objects

let key (exp : Experiments.t) ~seed ~quick =
  Store.Key.derive ~exp_id:exp.id ~seed ~quick ~backend:(Backend.tag ())

let counters () =
  (* Register both so a --metrics summary always shows the pair. *)
  (Obs.Metrics.counter "store.hits", Obs.Metrics.counter "store.misses")

(* Hit/miss latency: how long a lookup took end to end — read, CRC
   verify and decode on a hit; usually one failed manifest probe on a
   miss.  Split by outcome so `--metrics` shows whether the cache is
   earning its keep. *)
let hit_ms_h = Obs.Metrics.histogram "store.hit_ms"
let miss_ms_h = Obs.Metrics.histogram "store.miss_ms"

let record ?since hit =
  if Obs.Control.enabled () then begin
    let hits, misses = counters () in
    Obs.Metrics.incr (if hit then hits else misses);
    Option.iter
      (fun t0 ->
        Obs.Metrics.observe
          (if hit then hit_ms_h else miss_ms_h)
          (Obs.Clock.ns_to_ms (Obs.Clock.elapsed_ns ~since:t0)))
      since
  end

let to_codec (o : Outcome.t) : Store.Codec.outcome =
  { tables = o.tables; notes = o.notes; plots = o.plots }

let of_codec (c : Store.Codec.outcome) : Outcome.t =
  { tables = c.tables; notes = c.notes; plots = c.plots }

let get store exp ~seed ~quick =
  let since = Obs.Clock.now () in
  match Objects.get store ~key:(key exp ~seed ~quick) with
  | None ->
    record ~since false;
    None
  | Some (bytes, entry) ->
    (match Store.Codec.decode_outcome bytes with
    | Ok c ->
      let outcome = of_codec c in
      record ~since true;
      Some outcome
    | Error _ ->
      Objects.quarantine store entry;
      record ~since false;
      None)

let put store exp ~seed ~quick outcome =
  (* Publishing is an optimization: once the store has degraded
     (persistent IO failure earlier in the run) skip it entirely, and
     a persistent failure here degrades rather than failing the run —
     the outcome has already been computed and printed. *)
  if not (Store.Fsio.degraded ()) then
    match
      Objects.put store
        ~key:(key exp ~seed ~quick)
        ~meta:(Store.Key.meta ~exp_id:exp.id ~seed ~quick ~backend:(Backend.tag ()))
        (Store.Codec.encode_outcome (to_codec outcome))
    with
    | (_ : Objects.entry) -> ()
    | exception Sys_error msg -> Store.Fsio.degrade ~what:("cache publish: " ^ msg)
