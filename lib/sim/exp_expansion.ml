module Table = Stats.Table
module Summary = Stats.Summary
module Rng = Prng.Rng
open Temporal

let scaling_table ~quick rng =
  let sizes = if quick then [ 64; 128 ] else [ 64; 128; 256; 512; 1024 ] in
  let table =
    Table.create
      ~title:"E2a: Expansion Process on the normalized U-RTN clique (defaults)"
      ~columns:
        [ "n"; "l1"; "c2"; "d"; "horizon"; "attempts"; "success"; "mean arrival";
          "foremost"; "arrival/ln n" ]
  in
  List.iter
    (fun n ->
      let params = Expansion.default_params ~n () in
      let instances = if quick then 5 else 10 in
      let pairs = if quick then 10 else 20 in
      let stats =
        Estimators.expansion (Rng.split rng) ~n ~params ~instances
          ~pairs_per_instance:pairs
      in
      let mean_arrival = Summary.mean stats.arrival in
      Table.add_row table
        [
          Int n;
          Int params.l1;
          Int params.c2;
          Int params.d;
          Int stats.horizon;
          Int stats.attempts;
          Pct stats.success_rate;
          Float (mean_arrival, 1);
          Float (Summary.mean stats.flooding_arrival, 1);
          Float (mean_arrival /. log (float_of_int n), 2);
        ])
    sizes;
  table

let ablation_table ~quick rng =
  let n = if quick then 128 else 256 in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "E2b: ablation over c1 (window width constant), n = %d" n)
      ~columns:[ "c1"; "l1"; "d"; "horizon"; "success"; "mean arrival" ]
  in
  List.iter
    (fun c1 ->
      let params = Expansion.default_params ~c1 ~n () in
      let stats =
        Estimators.expansion (Rng.split rng) ~n ~params
          ~instances:(if quick then 5 else 10)
          ~pairs_per_instance:(if quick then 10 else 20)
      in
      Table.add_row table
        [
          Float (c1, 2);
          Int params.l1;
          Int params.d;
          Int stats.horizon;
          Pct stats.success_rate;
          Float (Summary.mean stats.arrival, 1);
        ])
    [ 0.25; 0.5; 1.0; 2.0; 4.0 ];
  table

let depth_table ~quick rng =
  let n = if quick then 128 else 256 in
  let table =
    Table.create
      ~title:(Printf.sprintf "E2d: ablation over the depth d, n = %d" n)
      ~columns:[ "d"; "l1"; "horizon"; "success"; "mean arrival" ]
  in
  List.iter
    (fun d ->
      let params = Expansion.make_params ~c1:2.0 ~c2:6 ~d ~n in
      let stats =
        Estimators.expansion (Rng.split rng) ~n ~params
          ~instances:(if quick then 5 else 10)
          ~pairs_per_instance:(if quick then 10 else 20)
      in
      Table.add_row table
        [
          Int d;
          Int params.l1;
          Int (Expansion.horizon params);
          Pct stats.success_rate;
          Float (Summary.mean stats.arrival, 1);
        ])
    [ 0; 1; 2; 3; 4 ];
  table

let layers_table ~quick rng =
  let n = if quick then 256 else 1024 in
  let params = Expansion.default_params ~n () in
  let g = Sgraph.Gen.clique Directed n in
  let depth = params.d + 1 in
  let fwd = Array.init depth (fun _ -> Summary.create ()) in
  let bwd = Array.init depth (fun _ -> Summary.create ()) in
  let samples = if quick then 10 else 20 in
  let per_sample =
    Runner.map rng ~trials:samples (fun _ trial_rng ->
        let net = Assignment.normalized_uniform trial_rng g in
        let s = Rng.int trial_rng n in
        let t = (s + 1 + Rng.int trial_rng (n - 1)) mod n in
        let outcome = Expansion.run net params ~s ~t in
        (outcome.forward_layers, outcome.backward_layers))
  in
  Array.iter
    (fun (forward, backward) ->
      Array.iteri (fun i size -> Summary.add_int fwd.(i) size) forward;
      Array.iteri (fun i size -> Summary.add_int bwd.(i) size) backward)
    per_sample;
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "E2c: mean layer sizes |Gamma_i| (Figure 1), n = %d, %d runs" n
           samples)
      ~columns:[ "layer i"; "|G_i(s)|"; "|G'_i(t)|"; "growth vs prev" ]
  in
  for i = 0 to depth - 1 do
    let growth =
      if i = 0 then Float.nan
      else Summary.mean fwd.(i) /. Float.max 1. (Summary.mean fwd.(i - 1))
    in
    Table.add_row table
      [
        Int (i + 1);
        Float (Summary.mean fwd.(i), 1);
        Float (Summary.mean bwd.(i), 1);
        (if Float.is_nan growth then Str "-" else Float (growth, 2));
      ]
  done;
  table

(* The proof's own constants (c1 >= 33, c1*c2 >= 1024) produce windows so
   wide they only fit inside the lifetime at four-digit n; run them where
   they first fit, as a faithfulness exhibit. *)
let paper_constants_table ~quick rng =
  let table =
    Table.create
      ~title:"E2e: Algorithm 1 with the proof's own constants (c1=33, c2=32)"
      ~columns:[ "n"; "l1"; "d"; "horizon"; "fits lifetime"; "success" ]
  in
  let sizes = if quick then [ 768 ] else [ 1024 ] in
  List.iter
    (fun n ->
      let params = Expansion.make_params ~c1:33. ~c2:32 ~d:1 ~n in
      let horizon = Expansion.horizon params in
      let stats =
        Estimators.expansion (Rng.split rng) ~n ~params ~instances:3
          ~pairs_per_instance:5
      in
      Table.add_row table
        [
          Int n;
          Int params.l1;
          Int params.d;
          Int horizon;
          Str (if horizon <= n then "yes" else "NO");
          Pct stats.success_rate;
        ])
    sizes;
  table

let run ~quick ~seed =
  let rng = Rng.create seed in
  let tables =
    [ scaling_table ~quick rng; ablation_table ~quick rng;
      depth_table ~quick rng; layers_table ~quick rng;
      paper_constants_table ~quick rng ]
  in
  let notes =
    [
      "Theorem 3: success probability should approach 1 as n grows, with \
       arrival <= horizon = 3*l1 + 2*d*c2 = Theta(log n)";
      "E2b: the proof needs c1 >= 33 for its union bound; in practice the \
       success curve turns on at much smaller c1 — small windows simply \
       leave |Gamma_1| empty";
      "E2c: per-layer growth should sit near c2 — the drift E|Gamma_{i+1}| \
       ~ c2*|Gamma_i| of section 3.2; the proof's (c2/8, 3c2/4) band is \
       what survives its Chernoff slack";
      "E2d: the depth has a working band — d too small leaves the final \
       layers short of the sqrt(n) matching mass at very large n, while d \
       too deep (here d = 4 at n = 256) exhausts the fresh-vertex pool, \
       later layers empty out, and the matching fails: exactly why the \
       analysis stops expanding at Theta(sqrt n)";
    ]
  in
  Outcome.make ~notes tables
