module Table = Stats.Table
module Summary = Stats.Summary

let sizes ~quick = if quick then [ 8; 16; 32; 64 ] else [ 8; 16; 32; 64; 128; 256; 512 ]
let trials_for ~quick n = if quick then Stdlib.max 8 (1024 / n) else Stdlib.max 12 (8192 / n)

let run ~quick ~seed =
  let rng = Prng.Rng.create seed in
  let table =
    Table.create ~title:"E1: temporal diameter of the normalized U-RTN directed clique"
      ~columns:
        [ "n"; "trials"; "mean TD"; "sd"; "boot 95% CI"; "min"; "max";
          "TD/ln n"; "TD/log2 n"; "disconn" ]
  in
  let points = ref [] in
  let last_samples = ref [||] in
  let last_n = ref 0 in
  List.iter
    (fun n ->
      let trials = trials_for ~quick n in
      let stats =
        (* Per-size phase span: shows up in traces as e.g. "e1/n=64",
           with the runner's per-trial spans nested one deeper. *)
        Obs.Span.with_span (Printf.sprintf "n=%d" n) (fun () ->
            Estimators.clique_temporal_diameter (Prng.Rng.split rng) ~n ~a:n
              ~trials)
      in
      let mean = Summary.mean stats.summary in
      let ln_n = log (float_of_int n) in
      let ci =
        (* ci_widen is 1.0 on a clean run (bit-identical CI); under
           --keep-going with dropped trials it owns up to the thinner
           sample. *)
        Stats.Bootstrap.mean_interval ~widen:(Supervise.ci_widen ())
          (Prng.Rng.split rng) stats.samples
      in
      points := (float_of_int n, mean) :: !points;
      last_samples := stats.samples;
      last_n := n;
      Table.add_row table
        [
          Int n;
          Int trials;
          Float (mean, 2);
          Float (Summary.stddev stats.summary, 2);
          Str (Printf.sprintf "[%.1f, %.1f]" ci.lo ci.hi);
          Float (Summary.min stats.summary, 0);
          Float (Summary.max stats.summary, 0);
          Float (mean /. ln_n, 3);
          Float (mean /. (ln_n /. log 2.), 3);
          Int stats.disconnected;
        ])
    (sizes ~quick);
  (* Large-n corroboration, exact since the bit-parallel batch kernel:
     each trial's all-pairs diameter costs ceil(n/W) word-parallel
     stream sweeps instead of n scalar ones, so the former
     sampled-source estimates are now true max-pair diameters.  (The
     pre-batch "sources" column is gone: nothing is sampled any more.) *)
  let exact_table =
    let table =
      Table.create
        ~title:"E1b: exact temporal diameters at larger n (batched kernel)"
        ~columns:[ "n"; "trials"; "mean TD"; "sd"; "TD/ln n"; "disconn" ]
    in
    let sizes = if quick then [ 256 ] else [ 1024; 2048 ] in
    List.iter
      (fun n ->
        let trials = if quick then 4 else 5 in
        let stats =
          Obs.Span.with_span (Printf.sprintf "exact/n=%d" n) (fun () ->
              Estimators.clique_temporal_diameter (Prng.Rng.split rng) ~n ~a:n
                ~trials)
        in
        let mean = Summary.mean stats.summary in
        Table.add_row table
          [
            Int n;
            Int trials;
            Float (mean, 1);
            Float (Summary.stddev stats.summary, 2);
            Float (mean /. log (float_of_int n), 3);
            Int stats.disconnected;
          ])
      sizes;
    table
  in
  let points = List.rev !points in
  let fit = Stats.Regression.fit_log points in
  let notes =
    [
      Format.asprintf
        "fit TD = alpha + gamma*ln n: %a — Theorem 4 predicts gamma = Theta(1), \
         i.e. TD/ln n stabilising"
        Stats.Regression.pp_fit fit;
      "every instance of the clique is temporally connected (each pair has its \
       direct arc), so 'disconn' must be 0 throughout";
    ]
  in
  let plot =
    Stats.Ascii_plot.render ~x_label:"ln n" ~y_label:"mean TD"
      ~title:"E1: mean temporal diameter vs ln n"
      (List.map (fun (n, td) -> (log n, td)) points)
  in
  let histogram =
    let samples = !last_samples in
    let lo = Array.fold_left Float.min Float.infinity samples in
    let hi = Array.fold_left Float.max Float.neg_infinity samples in
    if hi <= lo then ""
    else begin
      let h = Stats.Histogram.create ~lo ~hi:(hi +. 1.) ~bins:8 in
      Array.iter (Stats.Histogram.add h) samples;
      Printf.sprintf
        "E1: distribution of instance diameters at n = %d (right-skewed: a max over pairs)\n%s"
        !last_n (Stats.Histogram.render h)
    end
  in
  let notes =
    notes
    @ [ "E1b is exact: the bit-parallel batch kernel packs \
         Batch.lane_width sources per stream sweep, so the all-pairs \
         diameter at n = 2048 costs ~n/63 sweeps and the old \
         sampled-source lower estimate (6 sources per instance) is \
         retired along with its 'sources' column" ]
  in
  Outcome.make ~notes ~plots:[ plot; histogram ] [ table; exact_table ]
