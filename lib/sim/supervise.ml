(* Supervised trial execution: bounded retries, deadlines, and the
   --keep-going degradation contract, layered under Runner.

   The determinism keystone: every attempt of trial i runs against
   [Rng.copy] of the trial's pristine pre-split stream, so a trial
   that succeeds on attempt 3 computes bit-identically to one that
   succeeds on attempt 0 — which is why a faulted run with retries
   renders byte-identically to the fault-free run at any --jobs.

   Deadlines are cooperative: OCaml code cannot be preempted, so the
   per-trial timeout is checked after the attempt (a too-slow attempt
   is discarded and retried — under an armed delay plan a retry can
   genuinely clear it) and the per-run deadline before each attempt
   (once it passes, remaining trials fail fast without running). *)

type failure = { trial : int; attempts : int; message : string }

type config = {
  max_retries : int;
  trial_timeout : float option;  (* seconds per attempt *)
  run_deadline : float option;  (* seconds from [configure] *)
  keep_going : bool;
}

let default =
  { max_retries = 0; trial_timeout = None; run_deadline = None; keep_going = false }

exception Trial_failed of failure

exception Trial_timeout of { trial : int; seconds : float }
exception Run_deadline_exceeded

let () =
  Printexc.register_printer (function
    | Trial_failed f ->
      Some
        (Printf.sprintf "Sim.Supervise.Trial_failed(trial %d, %d attempt%s: %s)"
           f.trial f.attempts
           (if f.attempts = 1 then "" else "s")
           f.message)
    | Trial_timeout { trial; seconds } ->
      Some (Printf.sprintf "Sim.Supervise.Trial_timeout(trial %d, %.3fs)" trial seconds)
    | Run_deadline_exceeded -> Some "Sim.Supervise.Run_deadline_exceeded"
    | _ -> None)

(* ------------------------------------------------------------------ *)
(* Process-wide configuration and per-run degradation record. *)

let cfg = Atomic.make default
let deadline_ns : int64 option Atomic.t = Atomic.make None

let m = Mutex.create ()
let run_failures : failure list ref = ref []
let run_planned = ref 0
let run_failed = ref 0

let reset_run () =
  Mutex.lock m;
  run_failures := [];
  run_planned := 0;
  run_failed := 0;
  Mutex.unlock m

let configure c =
  Atomic.set cfg c;
  Atomic.set deadline_ns
    (Option.map
       (fun s -> Int64.add (Obs.Clock.now ()) (Int64.of_float (s *. 1e9)))
       c.run_deadline);
  reset_run ()

let current () = Atomic.get cfg
let active () = Atomic.get cfg <> default || Fault.Inject.armed ()

let note_planned n =
  Mutex.lock m;
  run_planned := !run_planned + n;
  Mutex.unlock m

let note_failures fs =
  Mutex.lock m;
  run_failures := !run_failures @ fs;
  run_failed := !run_failed + List.length fs;
  Mutex.unlock m

let failures () =
  Mutex.lock m;
  let fs = !run_failures in
  Mutex.unlock m;
  fs

let degraded () = failures () <> []

(* sqrt(planned / completed): the CI half-width of a mean shrinks like
   1/sqrt(n), so this is the factor by which losing trials loosened
   it.  1.0 on a clean run, so clean output is untouched. *)
let ci_widen () =
  Mutex.lock m;
  let planned = !run_planned and failed = !run_failed in
  Mutex.unlock m;
  if failed = 0 || planned <= failed then 1.0
  else sqrt (float_of_int planned /. float_of_int (planned - failed))

(* ------------------------------------------------------------------ *)

let retryable_exn = function
  | Fault.Inject.Injected { retryable; _ } -> retryable
  | Run_deadline_exceeded -> false
  | Trial_timeout _ -> true
  | Out_of_memory | Stack_overflow -> false
  | _ -> true (* a real trial exception may be environmental; retry it *)

let check_run_deadline () =
  match Atomic.get deadline_ns with
  | Some limit when Obs.Clock.now () > limit -> raise Run_deadline_exceeded
  | _ -> ()

let retried = lazy (Obs.Metrics.counter "trials.retried")
let failed = lazy (Obs.Metrics.counter "trials.failed")

(* Wall milliseconds of retry attempts (attempt >= 1) — with Obs on,
   the histogram shows what rerunning trials actually cost a faulted
   run.  Lazy like the counters: a clean run never registers it. *)
let retry_ms = lazy (Obs.Metrics.histogram "supervise.retry_ms")

let run_trial ~trial rng0 f =
  let c = Atomic.get cfg in
  let attempt_once k =
    check_run_deadline ();
    Fault.Inject.before_trial ~trial ~attempt:k;
    (* The copy replays the pristine stream, so every attempt computes
       the same value — the retried run stays byte-identical. *)
    let rng = Prng.Rng.copy rng0 in
    match c.trial_timeout with
    | None -> f rng
    | Some limit ->
      let t0 = Obs.Clock.now () in
      let v = f rng in
      let elapsed = Obs.Clock.ns_to_s (Obs.Clock.elapsed_ns ~since:t0) in
      if elapsed > limit then raise (Trial_timeout { trial; seconds = elapsed });
      v
  in
  let rec go k =
    let timed = k > 0 && Obs.Control.enabled () in
    let t0 = if timed then Obs.Clock.now () else 0L in
    let observe_retry () =
      if timed then
        Obs.Metrics.observe (Lazy.force retry_ms)
          (Obs.Clock.ns_to_ms (Obs.Clock.elapsed_ns ~since:t0))
    in
    match attempt_once k with
    | v ->
      observe_retry ();
      Ok v
    | exception e ->
      observe_retry ();
      if k < c.max_retries && retryable_exn e then begin
        Obs.Metrics.incr (Lazy.force retried);
        go (k + 1)
      end
      else begin
        Obs.Metrics.incr (Lazy.force failed);
        Error { trial; attempts = k + 1; message = Printexc.to_string e }
      end
  in
  go 0
