(** E23 — Temporal diameter at scale on derived-label instances.

    E1's Theorem 3/4 check pushed past the dense memory wall: exact
    all-pairs temporal diameters of normalized U-RTN directed cliques
    at [n = 10^4] and [10^5] (where the materialized time-edge stream
    would be ~10^10 entries), plus an opt-in sampled row at [10^6]
    behind [EPHEMERAL_IMPLICIT_XL].  Each trial is one 64-bit seed;
    dense and implicit backends realise label-identical instances
    from it, so the quick-mode table (sizes both can afford) is
    byte-identical under either backend — CI diffs exactly that.
    Full-mode sizes follow the active {!Backend}. *)

val run : quick:bool -> seed:int -> Outcome.t
