module Table = Stats.Table
module Rng = Prng.Rng
open Temporal

(* Median wall time of [repeats] runs of [f], in seconds, on the
   monotonic clock (Sys.time would report CPU time and undercount
   anything that waits). *)
let time_median ~repeats f =
  let samples =
    Array.init repeats (fun _ ->
        let start = Obs.Clock.now () in
        ignore (Sys.opaque_identity (f ()));
        Obs.Clock.ns_to_s (Obs.Clock.elapsed_ns ~since:start))
  in
  Stats.Quantile.median samples

let run ~quick ~seed =
  let rng = Rng.create seed in
  let sizes = if quick then [ 64; 128 ] else [ 64; 128; 256; 512 ] in
  let repeats = if quick then 3 else 5 in
  let table =
    Table.create
      ~title:"E19: algorithm cost scaling on the U-RTN directed clique"
      ~columns:
        [ "n"; "time edges M"; "build ms"; "foremost ms"; "ns/time-edge";
          "all-pairs TD ms"; "treach ms" ]
  in
  List.iter
    (fun n ->
      let g = Sgraph.Gen.clique Directed n in
      let net = Assignment.normalized_uniform (Rng.split rng) g in
      let m = Tgraph.time_edge_count net in
      let build_s =
        time_median ~repeats (fun () ->
            Assignment.normalized_uniform (Rng.split rng) g)
      in
      let foremost_s = time_median ~repeats (fun () -> Foremost.run net 0) in
      let diameter_s =
        time_median ~repeats:(Stdlib.max 1 (repeats - 2)) (fun () ->
            Distance.instance_diameter net)
      in
      let treach_s = time_median ~repeats (fun () -> Reachability.treach net) in
      Table.add_row table
        [
          Int n;
          Int m;
          Float (1e3 *. build_s, 2);
          Float (1e3 *. foremost_s, 3);
          Float (1e9 *. foremost_s /. float_of_int m, 1);
          Float (1e3 *. diameter_s, 1);
          Float (1e3 *. treach_s, 1);
        ])
    sizes;
  let notes =
    [
      "ns/time-edge should stay roughly flat: the foremost sweep is O(M) \
       over the flat stream built once by Tgraph.create's O(M + a) \
       counting sort, so doubling n quadruples M and the sweep time \
       together";
      "all-pairs TD = ceil(n/W) bit-parallel batch sweeps (W = \
       Batch.lane_width sources share one word per vertex), so the n \
       scalar sweeps of the old kernel collapse by a factor ~W while \
       staying bit-identical; construction (counting sort + CSR \
       crossings) dominates single queries, which is why the API builds \
       the stream once and reuses it";
      "unlike every other table, these numbers are timings (median wall \
       time on the monotonic clock): shapes are stable, absolute values \
       move with the machine";
    ]
  in
  Outcome.make ~notes [ table ]
