(** Registry of all reproduction experiments.

    Each entry maps one of the paper's results to a runnable experiment;
    [quick] trades scale for speed (used by the test suite and the CLI's
    [--quick] flag), and [seed] pins the randomness. *)

type t = {
  id : string;  (** e.g. ["e1"] *)
  title : string;
  paper_ref : string;  (** the theorem/figure/section reproduced *)
  run : quick:bool -> seed:int -> Outcome.t;
}

val all : t list
(** In id order, e1 .. e10. *)

val find : string -> t option
(** Lookup by id, case-insensitively and forgiving of decoration:
    any spelling whose digits name an experiment resolves (["E1"],
    ["exp1"], ["ed1"] all mean [e1]). *)

val default_seed : int
