module Table = Stats.Table
module Summary = Stats.Summary

(* E23 extends E1's Theorem 3-4 check to sizes the dense
   representation cannot reach: at n = 10^5 the directed clique's
   time-edge stream alone is ~10^10 entries (hundreds of GB), while
   the derived-label backend holds O(n log n) expected entries (the
   lazy prefix up to the ~3.7 ln n diameter).  Every trial draws one
   64-bit seed; dense and implicit realise label-identical instances
   from it, so in quick mode — where both backends can afford the
   sizes — the rendered table is byte-identical under either, which
   CI diffs directly.  Full-mode sizes follow the active backend:
   the implicit arm runs the large-n sweep, the dense arm stops where
   materialization stays affordable. *)

let quick_sizes = [ 512; 2048 ]
let full_sizes_implicit = [ 10_000; 100_000 ]
let full_sizes_dense = [ 2048; 4096 ]

let trials_for ~quick n =
  if quick then if n <= 512 then 4 else 2
  else if n <= 4096 then 4
  else if n <= 10_000 then 3
  else 1

(* The XL row: sampled-source diameter at n = 10^6 (m = 10^12 label
   sites — the roll pass alone is hours on one core), strictly behind
   the EPHEMERAL_IMPLICIT_XL opt-in.  Sampled because even ceil(n/W)
   exact sweeps are out of reach; 8 sources give a lower estimate
   whose TD/ln n still lands on the Theorem 4 plateau. *)
let xl_n = 1_000_000
let xl_sources = 8

let add_size_row table points rng ~quick ~sample n =
  let trials = trials_for ~quick n in
  let stats =
    Obs.Span.with_span (Printf.sprintf "n=%d" n) (fun () ->
        Estimators.derived_clique_diameter (Prng.Rng.split rng) ~n ~sample
          ~trials)
  in
  let mean = Summary.mean stats.summary in
  let ln_n = log (float_of_int n) in
  if sample = None then points := (float_of_int n, mean) :: !points;
  Table.add_row table
    [
      Int n;
      Int trials;
      Str
        (match sample with
        | None -> "exact"
        | Some k -> Printf.sprintf "sampled(%d)" k);
      Float (mean, 2);
      Float (Summary.stddev stats.summary, 2);
      Float (mean /. ln_n, 3);
      Int stats.disconnected;
    ]

let run ~quick ~seed =
  let rng = Prng.Rng.create seed in
  let sizes =
    if quick then quick_sizes
    else
      match Backend.current () with
      | Backend.Implicit -> full_sizes_implicit
      | Backend.Dense -> full_sizes_dense
  in
  let table =
    Table.create
      ~title:
        "E23: temporal diameter of the normalized U-RTN clique at scale \
         (derived-label instances)"
      ~columns:[ "n"; "trials"; "stat"; "mean TD"; "sd"; "TD/ln n"; "disconn" ]
  in
  let points = ref [] in
  List.iter (add_size_row table points rng ~quick ~sample:None) sizes;
  if Backend.xl_enabled () && not quick then
    add_size_row table points rng ~quick ~sample:(Some xl_sources) xl_n;
  let points = List.rev !points in
  let fit = Stats.Regression.fit_log points in
  let notes =
    [
      Format.asprintf
        "fit TD = alpha + gamma*ln n: %a — Theorem 4's Theta(log n) diameter, \
         now checked exactly at sizes where the answer is ~%.0f over a stream \
         of ~n^2 label sites"
        Stats.Regression.pp_fit fit
        (match List.rev points with (_, td) :: _ -> td | [] -> 0.);
      "each trial is one 64-bit seed; labels are derived from it on demand, \
       so the instance representation (a run-mode choice recorded in the \
       ledger) changes memory and time but never a number in this table";
      "the clique is always temporally connected (every pair keeps its \
       direct arc), so 'disconn' must be 0 throughout";
    ]
  in
  let plot =
    Stats.Ascii_plot.render ~x_label:"ln n" ~y_label:"mean TD"
      ~title:"E23: mean temporal diameter vs ln n"
      (List.map (fun (n, td) -> (log n, td)) points)
  in
  Outcome.make ~notes ~plots:[ plot ] [ table ]
