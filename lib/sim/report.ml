let header (exp : Experiments.t) =
  Printf.sprintf "=== %s: %s ===\n(reproduces: %s)\n" (String.uppercase_ascii exp.id)
    exp.title exp.paper_ref

let print_outcome exp outcome =
  print_string (header exp);
  print_newline ();
  print_string (Outcome.render outcome);
  print_newline ()

let run_and_print ~quick ~seed (exp : Experiments.t) =
  let outcome =
    if not (Obs.Control.enabled ()) then exp.run ~quick ~seed
    else begin
      Obs.Metrics.incr (Obs.Metrics.counter "sim.experiments");
      Obs.Span.with_span exp.id (fun () -> exp.run ~quick ~seed)
    end
  in
  print_outcome exp outcome;
  outcome

let ensure_dir = Store.Fsio.ensure_dir

(* Reports publish atomically (tmp + fsync + rename): an interrupted
   or crashing run never leaves a truncated CSV/Markdown file at the
   advertised path — at worst a stale previous version. *)

let save_csv ~dir (exp : Experiments.t) (outcome : Outcome.t) =
  ensure_dir dir;
  List.mapi
    (fun k table ->
      let path = Filename.concat dir (Printf.sprintf "%s_%d.csv" exp.id k) in
      Store.Fsio.write_atomic path (Stats.Table.to_csv table);
      path)
    outcome.tables

let save_markdown ~dir (exp : Experiments.t) (outcome : Outcome.t) =
  ensure_dir dir;
  let path = Filename.concat dir (exp.id ^ ".md") in
  let buf = Buffer.create 1024 in
  Printf.bprintf buf "# %s: %s\n\nReproduces: %s\n\n"
    (String.uppercase_ascii exp.id) exp.title exp.paper_ref;
  List.iter
    (fun table -> Buffer.add_string buf (Stats.Table.to_markdown table ^ "\n"))
    outcome.tables;
  List.iter (fun note -> Printf.bprintf buf "- %s\n" note) outcome.notes;
  Store.Fsio.write_atomic path (Buffer.contents buf);
  path
