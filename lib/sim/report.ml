let header (exp : Experiments.t) =
  Printf.sprintf "=== %s: %s ===\n(reproduces: %s)\n" (String.uppercase_ascii exp.id)
    exp.title exp.paper_ref

let print_outcome exp outcome =
  print_string (header exp);
  print_newline ();
  print_string (Outcome.render outcome);
  print_newline ()

let run_and_print ~quick ~seed (exp : Experiments.t) =
  let outcome =
    if not (Obs.Control.enabled ()) then exp.run ~quick ~seed
    else begin
      Obs.Metrics.incr (Obs.Metrics.counter "sim.experiments");
      Obs.Span.with_span exp.id (fun () -> exp.run ~quick ~seed)
    end
  in
  print_outcome exp outcome;
  outcome

(* mkdir -p: create every missing component, tolerating races with a
   concurrent creator. *)
let rec ensure_dir dir =
  if not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if parent <> dir then ensure_dir parent;
    try Sys.mkdir dir 0o755 with
    | Sys_error _ when Sys.file_exists dir -> ()
  end

let save_csv ~dir (exp : Experiments.t) (outcome : Outcome.t) =
  ensure_dir dir;
  List.mapi
    (fun k table ->
      let path = Filename.concat dir (Printf.sprintf "%s_%d.csv" exp.id k) in
      let oc = open_out path in
      output_string oc (Stats.Table.to_csv table);
      close_out oc;
      path)
    outcome.tables

let save_markdown ~dir (exp : Experiments.t) (outcome : Outcome.t) =
  ensure_dir dir;
  let path = Filename.concat dir (exp.id ^ ".md") in
  let oc = open_out path in
  Printf.fprintf oc "# %s: %s\n\nReproduces: %s\n\n"
    (String.uppercase_ascii exp.id) exp.title exp.paper_ref;
  List.iter
    (fun table -> output_string oc (Stats.Table.to_markdown table ^ "\n"))
    outcome.tables;
  List.iter (fun note -> Printf.fprintf oc "- %s\n" note) outcome.notes;
  close_out oc;
  path
