let header (exp : Experiments.t) =
  Printf.sprintf "=== %s: %s ===\n(reproduces: %s)\n" (String.uppercase_ascii exp.id)
    exp.title exp.paper_ref

let print_outcome exp outcome =
  print_string (header exp);
  print_newline ();
  print_string (Outcome.render outcome);
  print_newline ()

(* A --keep-going run that dropped trials must say so everywhere the
   outcome is seen: every table gets the degraded marker (ASCII, CSV
   and Markdown renders all carry it) and the notes lead with an
   explicit DEGRADED line naming the damage. *)
let annotate_degraded (outcome : Outcome.t) =
  match Supervise.failures () with
  | [] -> outcome
  | fails ->
    List.iter Stats.Table.set_degraded outcome.tables;
    let first = List.hd fails in
    let note =
      Printf.sprintf
        "DEGRADED: %d trial%s failed after bounded retries and were excluded; \
         bootstrap CIs widened by %.2fx; first: trial %d after %d attempt%s (%s)"
        (List.length fails)
        (if List.length fails = 1 then "" else "s")
        (Supervise.ci_widen ()) first.trial first.attempts
        (if first.attempts = 1 then "" else "s")
        first.message
    in
    { outcome with notes = note :: outcome.notes }

let run_and_print ~quick ~seed (exp : Experiments.t) =
  (* Each experiment owns its degradation record: failures reported on
     e3's tables must be e3's, not leftovers from e1. *)
  Supervise.reset_run ();
  let outcome =
    if not (Obs.Control.enabled ()) then exp.run ~quick ~seed
    else begin
      Obs.Metrics.incr (Obs.Metrics.counter "sim.experiments");
      Obs.Span.with_span exp.id (fun () -> exp.run ~quick ~seed)
    end
  in
  let outcome = annotate_degraded outcome in
  print_outcome exp outcome;
  outcome

let ensure_dir = Store.Fsio.ensure_dir

(* Reports publish atomically (tmp + fsync + rename): an interrupted
   or crashing run never leaves a truncated CSV/Markdown file at the
   advertised path — at worst a stale previous version. *)

let save_csv ~dir (exp : Experiments.t) (outcome : Outcome.t) =
  ensure_dir dir;
  List.mapi
    (fun k table ->
      let path = Filename.concat dir (Printf.sprintf "%s_%d.csv" exp.id k) in
      Store.Fsio.write_atomic path (Stats.Table.to_csv table);
      path)
    outcome.tables

let save_markdown ~dir (exp : Experiments.t) (outcome : Outcome.t) =
  ensure_dir dir;
  let path = Filename.concat dir (exp.id ^ ".md") in
  let buf = Buffer.create 1024 in
  Printf.bprintf buf "# %s: %s\n\nReproduces: %s\n\n"
    (String.uppercase_ascii exp.id) exp.title exp.paper_ref;
  List.iter
    (fun table -> Buffer.add_string buf (Stats.Table.to_markdown table ^ "\n"))
    outcome.tables;
  List.iter (fun note -> Printf.bprintf buf "- %s\n" note) outcome.notes;
  Store.Fsio.write_atomic path (Buffer.contents buf);
  path
