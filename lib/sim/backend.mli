(** Process-wide choice of temporal-instance representation.

    [Dense] stores per-edge label arrays and the full counting-sorted
    time-edge stream; [Implicit] keeps only [(seed, topology, a, r)]
    and recomputes labels on demand behind a lazy prefix stream
    ({!Temporal.Tgraph.of_derived}).  For the same seed the two
    realise label-identical instances, so every statistic agrees
    byte-for-byte — the backend trades memory and time, never
    numbers.

    Set once from the CLI before experiments run.  The mode (via
    {!tag}) is folded into store cache keys and recorded in the run
    ledger, so cached outcomes never cross backends. *)

type t = Dense | Implicit

val set : t -> unit
val current : unit -> t

val to_string : t -> string
(** ["dense"] / ["implicit"]. *)

val of_string : string -> t option
(** Case-insensitive inverse of {!to_string}; [None] otherwise. *)

val all : t list

val xl_enabled : unit -> bool
(** True when [EPHEMERAL_IMPLICIT_XL] is set (to anything but ["0"] or
    empty): e23 then adds its sampled [n = 10^6] row — an opt-in
    costing hours of label rolls. *)

val tag : unit -> string
(** The cache-key / ledger spelling of the active mode: {!to_string}
    of {!current}, with ["+xl"] appended when {!xl_enabled}. *)
