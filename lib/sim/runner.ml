(* When telemetry is on, every trial runs inside an Obs span named
   "trial" — nested under the experiment's span (see Report), so the
   trace shows e.g. "e1/trial" — and bumps the "sim.trials" counter.
   The disabled path is the bare loop: same RNG splits, no clock reads,
   no allocation. *)

let foreach rng ~trials f =
  if not (Obs.Control.enabled ()) then
    for i = 0 to trials - 1 do
      f i (Prng.Rng.split rng)
    done
  else begin
    let trial_count = Obs.Metrics.counter "sim.trials" in
    for i = 0 to trials - 1 do
      let trial_rng = Prng.Rng.split rng in
      Obs.Span.with_span "trial" (fun () ->
          Obs.Metrics.incr trial_count;
          f i trial_rng)
    done
  end

let collect rng ~trials f =
  if not (Obs.Control.enabled ()) then
    List.init trials (fun _ -> f (Prng.Rng.split rng))
  else begin
    let trial_count = Obs.Metrics.counter "sim.trials" in
    List.init trials (fun _ ->
        let trial_rng = Prng.Rng.split rng in
        Obs.Span.with_span "trial" (fun () ->
            Obs.Metrics.incr trial_count;
            f trial_rng))
  end

let summarize rng ~trials f =
  let summary = Stats.Summary.create () in
  foreach rng ~trials (fun _ trial_rng -> Stats.Summary.add summary (f trial_rng));
  summary

let count rng ~trials f =
  let hits = ref 0 in
  foreach rng ~trials (fun _ trial_rng -> if f trial_rng then incr hits);
  !hits
