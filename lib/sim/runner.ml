(* Trial execution over the process-wide domain pool.

   [map] is the parallel primitive: it pre-splits one child stream per
   trial with Rng.split_n — drawing exactly the per-iteration splits
   the sequential loop would — hands the indexed trials to
   Exec.Pool, and returns results in trial order.  Because trial i's
   stream and result slot depend only on i, the gathered array is
   byte-identical at any job count, and identical to the sequential
   loop it replaced.  collect/summarize/count fold that ordered array
   in the calling domain, so even float accumulation (Welford in
   Stats.Summary) matches the sequential order exactly.

   When supervision is active (a non-default Supervise config or an
   armed Fault plan), each trial runs through [Supervise.run_trial]:
   result-typed, retried within bounds, every attempt on a copy of the
   trial's pristine stream.  The gather then either extracts values
   (all Ok — bit-identical to the unsupervised array), raises
   Supervise.Trial_failed, or — under keep-going — drops the failed
   slots, records the failures for Report/ci_widen, and returns the
   partial array in trial order.  The unsupervised path stays lean:
   no stream copies, no retry machinery, just an [Ok] wrapper per
   slot.

   When a Store.Checkpoint context is active (ephemeral run --resume),
   each top-level [map] call claims the next checkpoint slot and runs
   through [map_resumable]: trials are processed in chunks whose
   bounds depend only on [trials], each finished chunk is persisted,
   and chunks already on disk are loaded instead of recomputed.
   Loading is sound precisely because of the determinism contract
   above — a persisted value is bit-identical to what recomputation
   would produce.  Chunks containing failed trials are never saved
   (only clean values may be replayed into a later run); nested map
   calls (inside a pool task) never claim slots, so the slot sequence
   is the deterministic sequence of top-level calls.

   [foreach] stays sequential and unsupervised: its closures mutate
   caller state freely (shared summaries, accumulator refs), so a
   retry after a partial mutation would be unsound.  Heavy experiments
   use [map].

   When telemetry is on, every *executed* trial runs inside an Obs
   span named "trial" — nested under the experiment's span even when
   the trial executes on a pool worker (the pool forwards the caller's
   span context) — and bumps the "sim.trials" counter.  Trials loaded
   from a checkpoint are not executed and leave both untouched (that
   is what lets CI assert a resumed run did less work).  The disabled
   path adds no clock reads and no instrumentation allocation. *)

(* Run trials [lo, hi) into their slots of [results].  Each index
   writes a distinct slot, so the writes are domain-safe. *)
let exec_range pool rngs f ~lo ~hi (results : (_, Supervise.failure) result option array)
    =
  let supervised = Supervise.active () in
  let run i =
    if supervised then Supervise.run_trial ~trial:i rngs.(i) (f i)
    else Ok (f i rngs.(i))
  in
  let body =
    if not (Obs.Control.enabled ()) then fun i -> results.(i) <- Some (run i)
    else begin
      let trial_count = Obs.Metrics.counter "sim.trials" in
      fun i ->
        Obs.Span.with_span "trial" (fun () ->
            Obs.Metrics.incr trial_count;
            results.(i) <- Some (run i))
    end
  in
  Exec.Pool.iter_range pool ~lo ~hi body

(* Gather: all-Ok extracts in place; failures either abort (first
   failure in trial order, so the error is deterministic too) or, with
   keep-going, drop their slots and are recorded for the report. *)
let gather (results : ('a, Supervise.failure) result option array) =
  let fails = ref [] in
  Array.iter
    (function
      | Some (Ok _) -> ()
      | Some (Error f) -> fails := f :: !fails
      | None -> assert false)
    results;
  match List.rev !fails with
  | [] -> Array.map (function Some (Ok v) -> v | _ -> assert false) results
  | first :: _ as fails ->
    Supervise.note_failures fails;
    if (Supervise.current ()).keep_going then
      Array.to_seq results
      |> Seq.filter_map (function Some (Ok v) -> Some v | _ -> None)
      |> Array.of_seq
    else raise (Supervise.Trial_failed first)

let chunk_clean results ~lo ~hi =
  let clean = ref true in
  for i = lo to hi - 1 do
    match results.(i) with Some (Ok _) -> () | _ -> clean := false
  done;
  !clean

let map_resumable slot rng ~trials f =
  if trials <= 0 then [||]
  else begin
    if Supervise.active () then Supervise.note_planned trials;
    let rngs = Prng.Rng.split_n rng trials in
    let pool = Exec.Pool.global () in
    let results = Array.make trials None in
    let chunk = Store.Checkpoint.chunk_size ~trials in
    let lo = ref 0 in
    while !lo < trials do
      let clo = !lo in
      let chi = Stdlib.min trials (clo + chunk) in
      (match Store.Checkpoint.load_chunk slot ~lo:clo ~hi:chi with
      | Some values when Array.length values = chi - clo ->
        Array.iteri (fun k v -> results.(clo + k) <- Some (Ok v)) values
      | Some _ | None ->
        exec_range pool rngs f ~lo:clo ~hi:chi results;
        (* Persist only clean chunks: a saved chunk is replayed as
           values into later runs, so failures must never enter it. *)
        if chunk_clean results ~lo:clo ~hi:chi then
          Store.Checkpoint.save_chunk slot ~lo:clo ~hi:chi
            (Array.init (chi - clo) (fun k ->
                 match results.(clo + k) with
                 | Some (Ok v) -> v
                 | _ -> assert false)));
      lo := chi
    done;
    gather results
  end

let map rng ~trials f =
  if trials <= 0 then [||]
  else begin
    (* Only top-level calls claim a slot: nested maps (running inside a
       pool task) execute inline and are covered by their parent's
       chunk, and claiming here would desynchronize the call counter
       between job counts. *)
    match
      if Exec.Pool.in_task () then None else Store.Checkpoint.next_slot ~trials
    with
    | Some slot -> map_resumable slot rng ~trials f
    | None ->
      if Supervise.active () then Supervise.note_planned trials;
      let rngs = Prng.Rng.split_n rng trials in
      let pool = Exec.Pool.global () in
      let results = Array.make trials None in
      exec_range pool rngs f ~lo:0 ~hi:trials results;
      gather results
  end

let foreach rng ~trials f =
  if not (Obs.Control.enabled ()) then
    for i = 0 to trials - 1 do
      f i (Prng.Rng.split rng)
    done
  else begin
    let trial_count = Obs.Metrics.counter "sim.trials" in
    for i = 0 to trials - 1 do
      let trial_rng = Prng.Rng.split rng in
      Obs.Span.with_span "trial" (fun () ->
          Obs.Metrics.incr trial_count;
          f i trial_rng)
    done
  end

let collect rng ~trials f = Array.to_list (map rng ~trials (fun _ trial_rng -> f trial_rng))

let summarize rng ~trials f =
  let values = map rng ~trials (fun _ trial_rng -> f trial_rng) in
  let summary = Stats.Summary.create () in
  Array.iter (Stats.Summary.add summary) values;
  summary

let count rng ~trials f =
  let hits = map rng ~trials (fun _ trial_rng -> f trial_rng) in
  Array.fold_left (fun acc hit -> if hit then acc + 1 else acc) 0 hits
