(* Trial execution over the process-wide domain pool.

   [map] is the parallel primitive: it pre-splits one child stream per
   trial with Rng.split_n — drawing exactly the per-iteration splits
   the sequential loop would — hands the indexed trials to
   Exec.Pool, and returns results in trial order.  Because trial i's
   stream and result slot depend only on i, the gathered array is
   byte-identical at any job count, and identical to the sequential
   loop it replaced.  collect/summarize/count fold that ordered array
   in the calling domain, so even float accumulation (Welford in
   Stats.Summary) matches the sequential order exactly.

   When a Store.Checkpoint context is active (ephemeral run --resume),
   each top-level [map] call claims the next checkpoint slot and runs
   through [map_resumable]: trials are processed in chunks whose
   bounds depend only on [trials], each finished chunk is persisted,
   and chunks already on disk are loaded instead of recomputed.
   Loading is sound precisely because of the determinism contract
   above — a persisted value is bit-identical to what recomputation
   would produce.  Nested map calls (inside a pool task) never claim
   slots, so the slot sequence is the deterministic sequence of
   top-level calls.

   [foreach] stays sequential: its closures mutate caller state freely
   (shared summaries, accumulator refs), which is exactly what cannot
   be handed to worker domains.  Heavy experiments use [map].

   When telemetry is on, every *executed* trial runs inside an Obs
   span named "trial" — nested under the experiment's span even when
   the trial executes on a pool worker (the pool forwards the caller's
   span context) — and bumps the "sim.trials" counter.  Trials loaded
   from a checkpoint are not executed and leave both untouched (that
   is what lets CI assert a resumed run did less work).  The disabled
   path adds no clock reads and no instrumentation allocation. *)

(* Run trials [lo, hi) into their slots of [results].  Each index
   writes a distinct slot, so the writes are domain-safe. *)
let exec_range pool rngs f ~lo ~hi (results : _ option array) =
  let body =
    if not (Obs.Control.enabled ()) then fun i -> results.(i) <- Some (f i rngs.(i))
    else begin
      let trial_count = Obs.Metrics.counter "sim.trials" in
      fun i ->
        Obs.Span.with_span "trial" (fun () ->
            Obs.Metrics.incr trial_count;
            results.(i) <- Some (f i rngs.(i)))
    end
  in
  Exec.Pool.iter_range pool ~lo ~hi body

let extract results = Array.map (function Some v -> v | None -> assert false) results

let map_resumable slot rng ~trials f =
  if trials <= 0 then [||]
  else begin
    let rngs = Prng.Rng.split_n rng trials in
    let pool = Exec.Pool.global () in
    let results = Array.make trials None in
    let chunk = Store.Checkpoint.chunk_size ~trials in
    let lo = ref 0 in
    while !lo < trials do
      let clo = !lo in
      let chi = Stdlib.min trials (clo + chunk) in
      (match Store.Checkpoint.load_chunk slot ~lo:clo ~hi:chi with
      | Some values when Array.length values = chi - clo ->
        Array.iteri (fun k v -> results.(clo + k) <- Some v) values
      | Some _ | None ->
        exec_range pool rngs f ~lo:clo ~hi:chi results;
        Store.Checkpoint.save_chunk slot ~lo:clo ~hi:chi
          (Array.init (chi - clo) (fun k -> Option.get results.(clo + k))));
      lo := chi
    done;
    extract results
  end

let map rng ~trials f =
  if trials <= 0 then [||]
  else begin
    (* Only top-level calls claim a slot: nested maps (running inside a
       pool task) execute inline and are covered by their parent's
       chunk, and claiming here would desynchronize the call counter
       between job counts. *)
    match
      if Exec.Pool.in_task () then None else Store.Checkpoint.next_slot ~trials
    with
    | Some slot -> map_resumable slot rng ~trials f
    | None ->
      let rngs = Prng.Rng.split_n rng trials in
      let pool = Exec.Pool.global () in
      if not (Obs.Control.enabled ()) then
        Exec.Pool.map_range pool ~lo:0 ~hi:trials (fun i -> f i rngs.(i))
      else begin
        let trial_count = Obs.Metrics.counter "sim.trials" in
        Exec.Pool.map_range pool ~lo:0 ~hi:trials (fun i ->
            Obs.Span.with_span "trial" (fun () ->
                Obs.Metrics.incr trial_count;
                f i rngs.(i)))
      end
  end

let foreach rng ~trials f =
  if not (Obs.Control.enabled ()) then
    for i = 0 to trials - 1 do
      f i (Prng.Rng.split rng)
    done
  else begin
    let trial_count = Obs.Metrics.counter "sim.trials" in
    for i = 0 to trials - 1 do
      let trial_rng = Prng.Rng.split rng in
      Obs.Span.with_span "trial" (fun () ->
          Obs.Metrics.incr trial_count;
          f i trial_rng)
    done
  end

let collect rng ~trials f = Array.to_list (map rng ~trials (fun _ trial_rng -> f trial_rng))

let summarize rng ~trials f =
  let values = map rng ~trials (fun _ trial_rng -> f trial_rng) in
  let summary = Stats.Summary.create () in
  Array.iter (Stats.Summary.add summary) values;
  summary

let count rng ~trials f =
  let hits = map rng ~trials (fun _ trial_rng -> f trial_rng) in
  Array.fold_left (fun acc hit -> if hit then acc + 1 else acc) 0 hits
