(* Trial execution over the process-wide domain pool.

   [map] is the parallel primitive: it pre-splits one child stream per
   trial with Rng.split_n — drawing exactly the per-iteration splits
   the sequential loop would — hands the indexed trials to
   Exec.Pool.map_range, and returns results in trial order.  Because
   trial i's stream and result slot depend only on i, the gathered
   array is byte-identical at any job count, and identical to the
   sequential loop it replaced.  collect/summarize/count fold that
   ordered array in the calling domain, so even float accumulation
   (Welford in Stats.Summary) matches the sequential order exactly.

   [foreach] stays sequential: its closures mutate caller state freely
   (shared summaries, accumulator refs), which is exactly what cannot
   be handed to worker domains.  Heavy experiments use [map].

   When telemetry is on, every trial runs inside an Obs span named
   "trial" — nested under the experiment's span even when the trial
   executes on a pool worker (the pool forwards the caller's span
   context) — and bumps the "sim.trials" counter.  The disabled path
   adds no clock reads and no instrumentation allocation. *)

let map rng ~trials f =
  if trials <= 0 then [||]
  else begin
    let rngs = Prng.Rng.split_n rng trials in
    let pool = Exec.Pool.global () in
    if not (Obs.Control.enabled ()) then
      Exec.Pool.map_range pool ~lo:0 ~hi:trials (fun i -> f i rngs.(i))
    else begin
      let trial_count = Obs.Metrics.counter "sim.trials" in
      Exec.Pool.map_range pool ~lo:0 ~hi:trials (fun i ->
          Obs.Span.with_span "trial" (fun () ->
              Obs.Metrics.incr trial_count;
              f i rngs.(i)))
    end
  end

let foreach rng ~trials f =
  if not (Obs.Control.enabled ()) then
    for i = 0 to trials - 1 do
      f i (Prng.Rng.split rng)
    done
  else begin
    let trial_count = Obs.Metrics.counter "sim.trials" in
    for i = 0 to trials - 1 do
      let trial_rng = Prng.Rng.split rng in
      Obs.Span.with_span "trial" (fun () ->
          Obs.Metrics.incr trial_count;
          f i trial_rng)
    done
  end

let collect rng ~trials f = Array.to_list (map rng ~trials (fun _ trial_rng -> f trial_rng))

let summarize rng ~trials f =
  let values = map rng ~trials (fun _ trial_rng -> f trial_rng) in
  let summary = Stats.Summary.create () in
  Array.iter (Stats.Summary.add summary) values;
  summary

let count rng ~trials f =
  let hits = map rng ~trials (fun _ trial_rng -> f trial_rng) in
  Array.fold_left (fun acc hit -> if hit then acc + 1 else acc) 0 hits
