(** Machine-readable run ledger: one JSON document per [ephemeral run]
    ([--report FILE]), published atomically via {!Store.Fsio.write_atomic}.

    The document has two top-level objects beside [schema]/[version]:

    - ["deterministic"] — byte-identical across job counts for the
      same code, seed, scale and experiment selection: the code
      fingerprint, run inputs, exit status, failed-trial count,
      job-count-invariant counters (trials, kernel sweeps and edges
      scanned, faults, store hits/misses) and per-span-path counts.
    - ["volatile"] — everything scheduling may legitimately change:
      jobs, wall time, pool accounting (per-worker busy nanoseconds
      aggregated into one [pool_busy_ns]), per-domain workspace
      growths, span timings/allocations, and latency histograms.

    Both sections emit known instruments even when unused, so -j1 and
    -j4 reports carry identical key sets — CI diffs the deterministic
    object verbatim.  Caveat: under a fault plan with worker poisoning
    the injected-fault counters depend on which domains exist, so the
    deterministic section is only comparable between runs of the same
    plan and job count. *)

val build :
  seed:int ->
  quick:bool ->
  backend:string ->
  jobs:int ->
  experiments:string list ->
  status:string ->
  wall_ns:int64 ->
  string
(** Assemble the document (trailing newline included) from the current
    {!Obs.Metrics.snapshot}, {!Obs.Span.totals} and
    {!Supervise.failures}.  [status] is ["ok"], ["degraded"] or
    ["failed"]; [backend] is {!Backend.tag} — a run input recorded in
    the deterministic section (the [implicit.*] counters differ
    across backends even though every table agrees, so deterministic
    sections compare only within one backend). *)

val write :
  path:string ->
  seed:int ->
  quick:bool ->
  backend:string ->
  jobs:int ->
  experiments:string list ->
  status:string ->
  wall_ns:int64 ->
  unit
(** [build] then publish atomically at [path] (tmp + fsync + rename).
    Raises [Sys_error] if the path is unwritable. *)
