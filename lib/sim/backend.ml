(* Which temporal-instance representation the suite builds: dense
   (materialized label arrays and a full counting-sorted stream — the
   original backend) or implicit (derived labels recomputed from a
   64-bit seed, lazy prefix streams — O(n) working set on the
   normalized clique instead of O(n^2)).

   The selection is a process-wide mode, set once from the CLI before
   any experiment runs; experiments consult it when they build
   instances.  Both backends realise the SAME instance for the same
   seed — Tgraph.materialize of a derived net is label-identical to
   it — so switching backends changes memory and time, never a
   number.  The mode is part of every cache key (Store.Key) and is
   recorded in the run ledger, so outcomes computed under one backend
   are never served to a run under the other, even though they would
   agree. *)

type t = Dense | Implicit

let mode = Atomic.make Dense
let set b = Atomic.set mode b
let current () = Atomic.get mode
let to_string = function Dense -> "dense" | Implicit -> "implicit"

let of_string s =
  match String.lowercase_ascii s with
  | "dense" -> Some Dense
  | "implicit" -> Some Implicit
  | _ -> None

let all = [ Dense; Implicit ]

(* The XL gate: EPHEMERAL_IMPLICIT_XL=1 unlocks the sampled n = 10^6
   row of e23 (hours of label rolls on one core — strictly opt-in).
   It changes rendered output, so it must be part of the cache key;
   [tag] is the key/ledger spelling that folds it in. *)
let xl_enabled () =
  match Sys.getenv_opt "EPHEMERAL_IMPLICIT_XL" with
  | Some "" | Some "0" | None -> false
  | Some _ -> true

let tag () =
  to_string (current ()) ^ if xl_enabled () then "+xl" else ""
