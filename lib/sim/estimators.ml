module Graph = Sgraph.Graph
module Rng = Prng.Rng
open Temporal

(* Every estimator follows one shape: Runner.map produces a pure
   per-trial value on the pool, then a sequential fold over the ordered
   array rebuilds the aggregates in trial order.  Keeping the float
   adds in that fold (never on the workers) makes the numbers
   bit-identical to the old sequential loops at any job count. *)

type diameter_stats = {
  trials : int;
  summary : Stats.Summary.t;
  samples : float array;
  disconnected : int;
}

let diameter_stats_of ~trials per_trial =
  let summary = Stats.Summary.create () in
  (* Preallocate at the trial count and trim once: no cons cell and no
     List.rev pass per sample. *)
  let samples = Array.make trials 0. in
  let filled = ref 0 in
  let disconnected = ref 0 in
  Array.iter
    (function
      | Some d ->
        Stats.Summary.add_int summary d;
        samples.(!filled) <- float_of_int d;
        incr filled
      | None -> incr disconnected)
    per_trial;
  {
    trials;
    summary;
    samples = (if !filled = trials then samples else Array.sub samples 0 !filled);
    disconnected = !disconnected;
  }

let temporal_diameter rng g ~a ~r ~trials =
  diameter_stats_of ~trials
    (Runner.map rng ~trials (fun _ trial_rng ->
         let net = Assignment.uniform_multi trial_rng g ~a ~r in
         Distance.instance_diameter net))

let clique_temporal_diameter rng ~n ~a ~trials =
  temporal_diameter rng (Sgraph.Gen.clique Directed n) ~a ~r:1 ~trials

(* Backend-dispatched clique estimator (e23): each trial draws ONE
   bits64 seed and realises the derived instance either lazily
   (Implicit) or as its materialized dense twin (Dense).  Both arms
   see label-identical instances — Tgraph.materialize re-evaluates
   the same site function — so the resulting stats are byte-equal
   across backends; only memory and time differ.  The topology
   follows the backend too: an O(1) arithmetic clique vs the O(n^2)
   CSR build (part of the dense cost being measured).  [sample]
   switches the per-instance statistic from the exact all-pairs
   diameter to a max over that many random sources (used only for
   the XL row, where even ceil(n/W) full sweeps are too dear). *)
let derived_clique_diameter rng ~n ~sample ~trials =
  let implicit_mode = Backend.current () = Backend.Implicit in
  let g =
    if implicit_mode then Sgraph.Gen.clique_implicit Directed n
    else Sgraph.Gen.clique Directed n
  in
  diameter_stats_of ~trials
    (Runner.map rng ~trials (fun _ trial_rng ->
         let net = Assignment.uniform_single_implicit trial_rng g ~a:n in
         let net = if implicit_mode then net else Tgraph.materialize net in
         match sample with
         | None -> Distance.instance_diameter net
         | Some sources ->
           Distance.instance_diameter_sampled trial_rng net ~sources))

let flooding_time rng g ~a ~r ~trials =
  let per_trial =
    Runner.map rng ~trials (fun _ trial_rng ->
        let net = Assignment.uniform_multi trial_rng g ~a ~r in
        let source = Rng.int trial_rng (Graph.n g) in
        Flooding.broadcast_time net source)
  in
  let summary = Stats.Summary.create () in
  let incomplete = ref 0 in
  Array.iter
    (function
      | Some t -> Stats.Summary.add_int summary t
      | None -> incr incomplete)
    per_trial;
  (summary, !incomplete)

type expansion_stats = {
  attempts : int;
  success_rate : float;
  arrival : Stats.Summary.t;
  flooding_arrival : Stats.Summary.t;
  horizon : int;
}

(* Per (instance, pair): did the expansion succeed, its arrival time if
   so, and the foremost-flooding arrival for the same pair. *)
type pair_outcome = {
  po_success : bool;
  po_arrival : int option;
  po_flooding : int option;
}

let expansion rng ~n ~params ~instances ~pairs_per_instance =
  let g = Sgraph.Gen.clique Directed n in
  let per_instance =
    Runner.map rng ~trials:instances (fun _ trial_rng ->
        let net = Assignment.normalized_uniform trial_rng g in
        List.init pairs_per_instance (fun _ ->
            let s = Rng.int trial_rng n in
            let t = (s + 1 + Rng.int trial_rng (n - 1)) mod n in
            let outcome = Expansion.run net params ~s ~t in
            {
              po_success = outcome.Expansion.success;
              po_arrival = (if outcome.Expansion.success then outcome.Expansion.arrival else None);
              po_flooding = Foremost.distance (Foremost.run net s) t;
            }))
  in
  let attempts = ref 0 and successes = ref 0 in
  let arrival = Stats.Summary.create () in
  let flooding_arrival = Stats.Summary.create () in
  Array.iter
    (List.iter (fun po ->
         incr attempts;
         if po.po_success then begin
           incr successes;
           Option.iter (fun x -> Stats.Summary.add_int arrival x) po.po_arrival
         end;
         Option.iter (fun d -> Stats.Summary.add_int flooding_arrival d) po.po_flooding))
    per_instance;
  {
    attempts = !attempts;
    success_rate = float_of_int !successes /. float_of_int (Stdlib.max 1 !attempts);
    arrival;
    flooding_arrival;
    horizon = Expansion.horizon params;
  }

let gnp_connectivity rng ~n ~p ~trials =
  let hits =
    Runner.count rng ~trials (fun trial_rng ->
        Sgraph.Components.is_connected (Sgraph.Gen.gnp trial_rng ~n ~p))
  in
  float_of_int hits /. float_of_int trials
