(** Whole-experiment outcome caching on top of [lib/store].

    Keys pin experiment id, seed, quick flag and the build-time code
    fingerprint; values are [Store.Codec]-encoded outcomes.  Because
    experiments are byte-deterministic in exactly those inputs, a hit
    renders identically to a fresh run.  Served by
    [ephemeral run --cache]. *)

val key : Experiments.t -> seed:int -> quick:bool -> string
(** The store key — also the checkpoint run key for [--resume]. *)

val get : Store.Objects.t -> Experiments.t -> seed:int -> quick:bool -> Outcome.t option
(** Decode the cached outcome, if any.  A stale or corrupt object is
    quarantined and read as a miss.  Bumps ["store.hits"] /
    ["store.misses"] when telemetry is on. *)

val put : Store.Objects.t -> Experiments.t -> seed:int -> quick:bool -> Outcome.t -> unit

val to_codec : Outcome.t -> Store.Codec.outcome
val of_codec : Store.Codec.outcome -> Outcome.t
