module Table = Stats.Table
module Rng = Prng.Rng
open Temporal

let min_r_table ~quick rng =
  let sizes = if quick then [ 16; 32; 64 ] else [ 16; 32; 64; 128; 256 ] in
  let trials = if quick then 15 else 40 in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "E4a: minimal r for whp reachability on the star K_{1,n-1} (%d \
            trials per probe)"
           trials)
      ~columns:
        [ "n"; "target"; "min r"; "rate @ r"; "r/ln n"; "PoR=r/2"; "thm7 2d*ln n" ]
  in
  let points = ref [] in
  List.iter
    (fun n ->
      let g = Sgraph.Gen.star n in
      let target = Por.whp_target ~n in
      match Por.min_r (Rng.split rng) g ~a:n ~target ~trials with
      | None -> Table.add_row table [ Int n; Float (target, 3); Str "-"; Str "-"; Str "-"; Str "-"; Str "-" ]
      | Some est ->
        let ln_n = log (float_of_int n) in
        points := (float_of_int n, float_of_int est.r) :: !points;
        Table.add_row table
          [
            Int n;
            Float (target, 3);
            Int est.r;
            Pct est.success_rate;
            Float (float_of_int est.r /. ln_n, 2);
            Float (float_of_int est.r /. 2., 1);
            Float (Stats.Bounds.thm7_labels ~diameter:2 ~n, 1);
          ])
    sizes;
  (table, List.rev !points)

(* Probability that a fixed leaf pair (u1, u2) of the star has a 2-split
   journey: a label of {u1,c} in (0, n/2) and one of {c,u2} in (n/2, n) —
   the event driving Theorem 6(a). *)
let two_split_table ~quick rng =
  let n = if quick then 32 else 64 in
  let trials = if quick then 300 else 2000 in
  let g = Sgraph.Gen.star n in
  let e1 = Option.get (Sgraph.Graph.find_edge g 0 1) in
  let e2 = Option.get (Sgraph.Graph.find_edge g 0 2) in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "E4b: 2-split journey probability for a fixed leaf pair (star, n = \
            %d, %d trials)"
           n trials)
      ~columns:[ "r"; "measured"; "theory (1-2^-r)^2"; "journey exists" ]
  in
  List.iter
    (fun r ->
      let per_trial =
        Runner.map rng ~trials (fun _ trial_rng ->
            let net = Assignment.uniform_multi trial_rng g ~a:n ~r in
            let half = n / 2 in
            let first = Label.any_in (Tgraph.labels net e1) ~lo:0 ~hi:half in
            let second = Label.any_in (Tgraph.labels net e2) ~lo:half ~hi:n in
            ( first <> None && second <> None,
              Reachability.temporally_reachable net 1 2 ))
      in
      let split_hits = ref 0 and journey_hits = ref 0 in
      Array.iter
        (fun (split, journey) ->
          if split then incr split_hits;
          if journey then incr journey_hits)
        per_trial;
      let theory =
        let miss = Float.pow 0.5 (float_of_int r) in
        (1. -. miss) ** 2.
      in
      Table.add_row table
        [
          Int r;
          Pct (float_of_int !split_hits /. float_of_int trials);
          Pct theory;
          Pct (float_of_int !journey_hits /. float_of_int trials);
        ])
    [ 1; 2; 4; 8; 16 ];
  table

(* The full success curves behind the min-r search: P(Treach) as a
   function of r, one series per n — the "figure" version of table (a). *)
let success_curves ~quick rng =
  let sizes = if quick then [ 16; 64 ] else [ 16; 64; 256 ] in
  let trials = if quick then 30 else 80 in
  let series =
    List.map
      (fun n ->
        let g = Sgraph.Gen.star n in
        ( Printf.sprintf "n=%d" n,
          List.map
            (fun r ->
              ( float_of_int r,
                Por.success_probability (Rng.split rng) g ~a:n ~r ~trials ))
            [ 1; 2; 3; 4; 6; 8; 10; 12; 16 ] ))
      sizes
  in
  Stats.Ascii_plot.render_series ~x_label:"r (labels per edge)"
    ~y_label:"P(Treach)"
    ~title:"E4c: reachability probability vs r on stars (threshold drifts \
            right as ln n)"
    series

let run ~quick ~seed =
  let rng = Rng.create seed in
  let table_a, points = min_r_table ~quick rng in
  let table_b = two_split_table ~quick rng in
  let curves = success_curves ~quick rng in
  let notes =
    match points with
    | _ :: _ :: _ ->
      let fit = Stats.Regression.fit_log points in
      [
        Format.asprintf
          "fit min_r = alpha + beta*ln n: %a — Theorem 6 predicts beta > 0 \
           (r = Theta(log n) already at diameter 2)"
          Stats.Regression.pp_fit fit;
        "OPT for the star is exactly 2m (labels {1,2} per edge), so PoR = \
         m*r/OPT = r/2";
      ]
    | _ -> [ "too few successful sizes to fit" ]
  in
  Outcome.make ~notes ~plots:[ curves ] [ table_a; table_b ]
