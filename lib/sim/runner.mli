(** Trial execution with reproducible randomness.

    Each trial gets its *own* stream split off the experiment's root
    stream, so trial [i] sees identical randomness no matter what other
    trials consumed — results are stable under reordering, sub-sampling
    and parallel execution.

    {b Parallelism and determinism.}  [map], [collect], [summarize] and
    [count] run trials on the process-wide domain pool
    ({!Exec.Pool.global}, sized by [--jobs] / [EPHEMERAL_JOBS]).  All
    per-trial streams are pre-split with [Rng.split_n] — the exact
    splits a sequential loop would draw — and results are gathered in
    trial-index order before any reduction, so output is byte-identical
    at every job count, including [--jobs 1].  [foreach] alone stays
    sequential in the calling domain: its callback is free to mutate
    shared caller state.

    {b Checkpointing and resume.}  When a {!Store.Checkpoint} context
    is active ([ephemeral run --resume]), each top-level [map] call
    claims a checkpoint slot and runs through {!map_resumable}: trials
    execute in chunks whose bounds depend only on [trials], finished
    chunks are persisted as they complete, and chunks already on disk
    are loaded instead of recomputed.  Loading is sound because of the
    determinism contract — the persisted value is bit-identical to
    what recomputation would produce — so an interrupted-then-resumed
    run renders byte-identically to an uninterrupted one, at any job
    count.  Nested [map] calls (inside a pool task) never claim slots.

    {b Supervision.}  When {!Supervise.active} (a non-default config
    or an armed {!Fault.Plan}), every trial runs through
    [Supervise.run_trial]: bounded retries, per-attempt timeout,
    per-run deadline — each attempt against a fresh [Rng.copy] of the
    trial's pre-split stream, so a retried run stays byte-identical at
    any job count.  A trial that exhausts retries either aborts the
    map with {!Supervise.Trial_failed} (raised in the calling domain,
    for the first failed trial in index order) or, under
    [keep_going], is dropped: the map returns the surviving values in
    trial order and records the failures for [Report] to flag.  Under
    a checkpoint context, only chunks with every trial [Ok] are
    persisted — a saved chunk is replayed as plain values later, so
    failures never enter one.

    When [Obs.Control.enabled], every {e executed} trial additionally
    runs inside an [Obs.Span] named ["trial"] (nested under the
    enclosing experiment's span, even on pool workers) and increments
    the ["sim.trials"] counter; trials loaded from a checkpoint touch
    neither.  Instrumentation never touches the RNG stream, so traced
    and untraced runs produce identical results. *)

val map : Prng.Rng.t -> trials:int -> (int -> Prng.Rng.t -> 'a) -> 'a array
(** [map rng ~trials f] evaluates [f i rng_i] for [i = 0 .. trials-1]
    on the domain pool and returns the results in index order.  [f]
    must not mutate shared state (beyond Obs instrumentation, which is
    domain-safe). *)

val map_resumable :
  Store.Checkpoint.slot -> Prng.Rng.t -> trials:int -> (int -> Prng.Rng.t -> 'a) -> 'a array
(** [map] against an explicit checkpoint slot: chunks of
    [Store.Checkpoint.chunk_size ~trials] trials are loaded from the
    slot when present and executed-then-saved when not.  The result is
    identical to [map rng ~trials f]; only the work done differs.
    [map] delegates here automatically for top-level calls under an
    active context — call this directly only in tests or custom
    drivers that manage slots themselves. *)

val foreach : Prng.Rng.t -> trials:int -> (int -> Prng.Rng.t -> unit) -> unit
(** [foreach rng ~trials f] runs [f i rng_i] for [i = 0 .. trials-1],
    sequentially, in the calling domain.  Unsupervised: its closures
    may mutate caller state, so a retry after a partial mutation would
    be unsound — fault plans target [map]-based experiments. *)

val collect : Prng.Rng.t -> trials:int -> (Prng.Rng.t -> 'a) -> 'a list

val summarize : Prng.Rng.t -> trials:int -> (Prng.Rng.t -> float) -> Stats.Summary.t
(** Trials run in parallel; the summary is folded sequentially in
    trial order, so even float accumulation matches a sequential run
    bit for bit. *)

val count : Prng.Rng.t -> trials:int -> (Prng.Rng.t -> bool) -> int
(** Number of trials returning [true]. *)
