(** Trial execution with reproducible randomness.

    Each trial gets its *own* stream split off the experiment's root
    stream, so trial [i] sees identical randomness no matter what other
    trials consumed — results are stable under reordering, sub-sampling
    and (hypothetically) parallel execution.

    When [Obs.Control.enabled], every trial additionally runs inside an
    [Obs.Span] named ["trial"] (nested under the enclosing experiment's
    span) and increments the ["sim.trials"] counter; instrumentation
    never touches the RNG stream, so traced and untraced runs produce
    identical results. *)

val foreach : Prng.Rng.t -> trials:int -> (int -> Prng.Rng.t -> unit) -> unit
(** [foreach rng ~trials f] runs [f i rng_i] for [i = 0 .. trials-1]. *)

val collect : Prng.Rng.t -> trials:int -> (Prng.Rng.t -> 'a) -> 'a list

val summarize : Prng.Rng.t -> trials:int -> (Prng.Rng.t -> float) -> Stats.Summary.t

val count : Prng.Rng.t -> trials:int -> (Prng.Rng.t -> bool) -> int
(** Number of trials returning [true]. *)
