(** Trial execution with reproducible randomness.

    Each trial gets its *own* stream split off the experiment's root
    stream, so trial [i] sees identical randomness no matter what other
    trials consumed — results are stable under reordering, sub-sampling
    and parallel execution.

    {b Parallelism and determinism.}  [map], [collect], [summarize] and
    [count] run trials on the process-wide domain pool
    ({!Exec.Pool.global}, sized by [--jobs] / [EPHEMERAL_JOBS]).  All
    per-trial streams are pre-split with [Rng.split_n] — the exact
    splits a sequential loop would draw — and results are gathered in
    trial-index order before any reduction, so output is byte-identical
    at every job count, including [--jobs 1].  [foreach] alone stays
    sequential in the calling domain: its callback is free to mutate
    shared caller state.

    When [Obs.Control.enabled], every trial additionally runs inside an
    [Obs.Span] named ["trial"] (nested under the enclosing experiment's
    span, even on pool workers) and increments the ["sim.trials"]
    counter; instrumentation never touches the RNG stream, so traced
    and untraced runs produce identical results. *)

val map : Prng.Rng.t -> trials:int -> (int -> Prng.Rng.t -> 'a) -> 'a array
(** [map rng ~trials f] evaluates [f i rng_i] for [i = 0 .. trials-1]
    on the domain pool and returns the results in index order.  [f]
    must not mutate shared state (beyond Obs instrumentation, which is
    domain-safe). *)

val foreach : Prng.Rng.t -> trials:int -> (int -> Prng.Rng.t -> unit) -> unit
(** [foreach rng ~trials f] runs [f i rng_i] for [i = 0 .. trials-1],
    sequentially, in the calling domain. *)

val collect : Prng.Rng.t -> trials:int -> (Prng.Rng.t -> 'a) -> 'a list

val summarize : Prng.Rng.t -> trials:int -> (Prng.Rng.t -> float) -> Stats.Summary.t
(** Trials run in parallel; the summary is folded sequentially in
    trial order, so even float accumulation matches a sequential run
    bit for bit. *)

val count : Prng.Rng.t -> trials:int -> (Prng.Rng.t -> bool) -> int
(** Number of trials returning [true]. *)
