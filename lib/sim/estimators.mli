(** Monte-Carlo estimators of the paper's statistical quantities. *)

type diameter_stats = {
  trials : int;
  summary : Stats.Summary.t;
      (** instance temporal diameters over connected instances *)
  samples : float array;
      (** the raw per-instance diameters behind [summary], for
          distribution-aware post-processing (bootstrap CIs,
          quantiles) *)
  disconnected : int;
      (** instances in which some ordered pair had no journey at all
          (their diameter is undefined / infinite) *)
}

val temporal_diameter :
  Prng.Rng.t ->
  Sgraph.Graph.t ->
  a:int ->
  r:int ->
  trials:int ->
  diameter_stats
(** Sample [trials] assignments of [r] i.i.d. uniform labels per edge on
    [{1..a}] and compute each instance's exact max-pair temporal distance
    — the quantity whose expectation is the Temporal Diameter
    (Definition 5).  Each instance diameter runs on the bit-parallel
    batch kernel (ceil(n/W) sweeps instead of n), which keeps exact
    all-pairs affordable at n in the thousands. *)

val clique_temporal_diameter :
  Prng.Rng.t -> n:int -> a:int -> trials:int -> diameter_stats
(** {!temporal_diameter} on the directed clique with [r = 1]: the
    (normalized when [a = n]) U-RTN of §3. *)

val derived_clique_diameter :
  Prng.Rng.t -> n:int -> sample:int option -> trials:int -> diameter_stats
(** Normalized U-RTN directed-clique diameters on the {e active}
    {!Backend}: each trial draws one 64-bit seed and realises the
    derived instance lazily (Implicit) or as its materialized dense
    twin (Dense) — label-identical either way, so the stats are
    byte-equal across backends.  [sample = Some k] replaces the exact
    all-pairs diameter by the max eccentricity over [k] random
    sources (a lower estimate, for sizes where even the batched exact
    kernel is too dear). *)

val flooding_time :
  Prng.Rng.t ->
  Sgraph.Graph.t ->
  a:int ->
  r:int ->
  trials:int ->
  Stats.Summary.t * int
(** Mean §3.5-protocol broadcast completion time from a random source on
    sampled assignments; the [int] counts trials that failed to inform
    everyone. *)

type expansion_stats = {
  attempts : int;
  success_rate : float;
  arrival : Stats.Summary.t;  (** over successful attempts *)
  flooding_arrival : Stats.Summary.t;
      (** optimal (foremost) arrival at the same targets, for comparison *)
  horizon : int;
}

val expansion :
  Prng.Rng.t ->
  n:int ->
  params:Temporal.Expansion.params ->
  instances:int ->
  pairs_per_instance:int ->
  expansion_stats
(** Run Algorithm 1 on fresh normalized U-RTN directed cliques, for
    random (s ≠ t) pairs, recording success rate and the arrival-time gap
    to the true foremost journey. *)

val gnp_connectivity :
  Prng.Rng.t -> n:int -> p:float -> trials:int -> float
(** Empirical probability that [G(n,p)] is connected. *)
