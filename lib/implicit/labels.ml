(* Derived labels: a temporal assignment that is never stored.  An
   instance is just [(seed, a, r)]; edge [e]'s label multiset is the
   [r] uniform draws over {1..a} obtained by hashing [(seed, e, k)]
   with SplitMix64, so every query recomputes its answer in O(r) time
   and O(1) memory.  Same constants and finalizer as [Prng.Splitmix64],
   but stateless: the whole chain lives in local [Int64]s, which the
   native compiler unboxes — no per-roll allocation.

   Site-independence contract: roll [k] of edge [e] depends only on
   [(seed, e, k)] — never on query order, domain, or how many other
   edges were rolled first.  That is what makes the derived labelling
   provably identical to a materialized array of the same rolls, and
   what keeps every consumer byte-deterministic at any [--jobs]. *)

let golden = 0x9E3779B97F4A7C15L
let mix_1 = 0xBF58476D1CE4E5B9L
let mix_2 = 0x94D049BB133111EBL

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) mix_1 in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) mix_2 in
  Int64.logxor z (Int64.shift_right_logical z 31)

type t = { seed : int64; a : int; r : int }

let make ~seed ~a ~r =
  if a < 1 then invalid_arg "Implicit.Labels.make: need a >= 1";
  if r < 1 then invalid_arg "Implicit.Labels.make: need r >= 1";
  { seed; a; r }

let seed t = t.seed
let alpha t = t.a
let rolls_per_edge t = t.r

(* Roll 0 of edge [e] is literally the [(e+1)]-th output of the
   SplitMix64 stream seeded at [seed]; rolls 1..r-1 rehash that output
   with the roll index.  The top 63 bits feed the modulus, so the bias
   against any value in {1..a} is < a / 2^63 — immaterial here, and in
   any case both backends use this exact function, so equivalence is
   exact, not merely statistical. *)
let roll t ~edge ~k =
  let z = mix64 (Int64.add t.seed (Int64.mul golden (Int64.of_int (edge + 1)))) in
  let z =
    if k = 0 then z
    else mix64 (Int64.add z (Int64.mul golden (Int64.of_int k)))
  in
  1 + Int64.to_int (Int64.rem (Int64.shift_right_logical z 1) (Int64.of_int t.a))

(* Probes: one [crossing_queries] tick per scalar query answered from
   derived labels, [label_rolls] ticks for the hashes it took.  Updated
   after the (tiny) per-query loop and only while Obs.Control is on.
   Query counts depend only on the work a run performs, never on domain
   interleaving, so both counters land in the run ledger's
   deterministic section. *)
let rolls_c = Obs.Metrics.counter "implicit.label_rolls"
let queries_c = Obs.Metrics.counter "implicit.crossing_queries"

let note_query t =
  if Obs.Control.enabled () then begin
    Obs.Metrics.incr queries_c;
    Obs.Metrics.add rolls_c t.r
  end

let note_bulk_rolls count =
  if Obs.Control.enabled () then Obs.Metrics.add rolls_c count

(* Scalar query set, mirroring [Label.t]'s *set* semantics: the r rolls
   of an edge form a multiset, and queries see its distinct support
   (exactly what [Label.of_array] keeps after sort + dedup). *)

let has t ~edge x =
  let found = ref false in
  for k = 0 to t.r - 1 do
    if roll t ~edge ~k = x then found := true
  done;
  note_query t;
  !found

let next_after t ~edge x =
  let best = ref max_int in
  for k = 0 to t.r - 1 do
    let l = roll t ~edge ~k in
    if l > x && l < !best then best := l
  done;
  note_query t;
  !best

let next_in t ~edge ~lo ~hi =
  let l = next_after t ~edge lo in
  if l <= hi then l else max_int

let size t ~edge =
  if t.r = 1 then begin
    note_query t;
    1
  end
  else begin
    (* Count distinct rolls: for each roll, is it the first occurrence? *)
    let distinct = ref 0 in
    for k = 0 to t.r - 1 do
      let l = roll t ~edge ~k in
      let first = ref true in
      for j = 0 to k - 1 do
        if roll t ~edge ~k:j = l then first := false
      done;
      if !first then incr distinct
    done;
    note_query t;
    !distinct
  end

(* Distinct rolls in ascending order — the order [Label.t] presents.
   O(r log r) with one small allocation; only convenience paths use
   it. *)
let iter t ~edge f =
  if t.r = 1 then begin
    note_query t;
    f (roll t ~edge ~k:0)
  end
  else begin
    let buf = Array.init t.r (fun k -> roll t ~edge ~k) in
    Array.sort compare buf;
    let prev = ref 0 in
    Array.iter
      (fun l ->
        if l <> !prev then f l;
        prev := l)
      buf;
    note_query t
  end

(* The sorted distinct rolls of [edge] written into [buf] (length
   >= r); returns how many there are.  The allocation-free workhorse
   behind the stream builder's per-edge collect. *)
let fill_sorted t ~edge buf =
  if t.r = 1 then begin
    buf.(0) <- roll t ~edge ~k:0;
    1
  end
  else begin
    for k = 0 to t.r - 1 do
      buf.(k) <- roll t ~edge ~k
    done;
    (* Insertion sort: r is small (paper regimes use r <= O(log n)). *)
    for k = 1 to t.r - 1 do
      let x = buf.(k) in
      let j = ref (k - 1) in
      while !j >= 0 && buf.(!j) > x do
        buf.(!j + 1) <- buf.(!j);
        decr j
      done;
      buf.(!j + 1) <- x
    done;
    let w = ref 1 in
    for k = 1 to t.r - 1 do
      if buf.(k) <> buf.(!w - 1) then begin
        buf.(!w) <- buf.(k);
        incr w
      end
    done;
    !w
  end
