(** Derived temporal labels: [(seed, a, r)] instead of an array.

    Edge [e]'s labels are the [r] uniform draws over [{1..a}] produced
    by hashing [(seed, e, k)] with SplitMix64 — recomputed on every
    query in O(r) time and O(1) memory, never stored.  Roll 0 of edge
    [e] is the [(e+1)]-th output of the SplitMix64 stream seeded at
    [seed].

    Site independence: a roll depends only on [(seed, edge, k)], never
    on evaluation order or domain — which is why a derived labelling is
    byte-identical to the materialized array of the same rolls, and why
    consumers stay deterministic at any [--jobs].

    Queries follow {!Temporal.Label}'s set semantics: the [r] rolls form
    a multiset and queries see its distinct support, exactly what
    [Label.of_array] would keep after sort + dedup. *)

type t

val make : seed:int64 -> a:int -> r:int -> t
(** @raise Invalid_argument unless [a >= 1] and [r >= 1]. *)

val seed : t -> int64
val alpha : t -> int
val rolls_per_edge : t -> int

val roll : t -> edge:int -> k:int -> int
(** The [k]-th raw roll of [edge], in [{1..a}].  Pure. *)

val has : t -> edge:int -> int -> bool
(** Does some roll of [edge] equal the given label? *)

val next_after : t -> edge:int -> int -> int
(** Smallest roll of [edge] strictly greater than the bound, or
    [max_int] if none — the crossing query of the kernel interface. *)

val next_in : t -> edge:int -> lo:int -> hi:int -> int
(** Smallest roll in [(lo, hi]], or [max_int]. *)

val size : t -> edge:int -> int
(** Number of distinct rolls of [edge]. *)

val iter : t -> edge:int -> (int -> unit) -> unit
(** Distinct rolls of [edge], ascending — the order a [Label.t] would
    present them in. *)

val fill_sorted : t -> edge:int -> int array -> int
(** [fill_sorted t ~edge buf] writes the sorted distinct rolls of
    [edge] into [buf] (length [>= r]) and returns their count.
    Allocation-free; the stream builder's per-edge workhorse.  Does not
    tick the query probes — bulk passes account via
    {!note_bulk_rolls}. *)

val note_bulk_rolls : int -> unit
(** Add to the [implicit.label_rolls] probe (gated on [Obs.Control]) —
    used by bulk passes that roll many edges outside the per-query
    accounting. *)
