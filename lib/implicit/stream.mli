(** Lazily-materialized prefix of a derived time-edge stream.

    A {!view} with [bound = B] holds exactly the stream entries with
    label [<= B], byte-identical to the corresponding prefix of the
    dense counting-sorted stream (label ascending, ties in emission
    order: edge id ascending, u->v before v->u).  Views for growing
    bounds are byte prefixes of each other, so kernels keep their
    stream indices across {!extend} and resume scanning exactly where
    they stopped.

    Views are immutable and published through an [Atomic]; builders
    serialize on a mutex and follow a fixed doubling bound schedule, so
    each prefix step is built exactly once per instance regardless of
    how many domains race — the [implicit.label_rolls] probe stays
    deterministic at any [--jobs]. *)

type view = {
  bound : int;  (** every entry with label [<= bound] is present *)
  complete : bool;  (** [bound >= lifetime]: this is the whole stream *)
  te_src : int array;
  te_dst : int array;
  te_label : int array;
  te_edge : int array;
}

type t

val create : Sgraph.Graph.t -> labels:Labels.t -> lifetime:int -> t
(** No rolls happen here; the first {!extend} builds the first prefix.
    @raise Invalid_argument if [lifetime < 1]. *)

val graph : t -> Sgraph.Graph.t
val labels : t -> Labels.t
val lifetime : t -> int

val view : t -> view
(** The currently published prefix (initially empty with [bound = 0]).
    Lock-free. *)

val extend : t -> past:int -> bool
(** [extend t ~past] ensures the published prefix reaches strictly past
    bound [past] (or is complete).  Returns [false] iff the stream is
    complete and holds nothing beyond [past] — i.e. there is nothing
    left to scan for a caller that has consumed a view with that
    bound. *)

val force_complete : t -> view
(** Extend to the full lifetime and return the complete stream. *)
